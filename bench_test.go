// Benchmarks regenerating the paper's evaluation artefacts. One benchmark
// per table/figure (scaled-down configurations; see EXPERIMENTS.md for the
// full-scale runs via cmd/ftexperiments), plus micro-benchmarks for the
// synthesis algorithms and the online scheduler, whose "very low overhead"
// (§1) is itself a claim worth measuring.
package ftsched_test

import (
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/experiments"
)

// BenchmarkFig9a regenerates Fig. 9a (no-fault utility of FTQS/FTSS/FTSF
// across application sizes).
func BenchmarkFig9a(b *testing.B) {
	cfg := experiments.Fig9Config{
		Sizes:       []int{10, 30, 50},
		AppsPerSize: 2,
		Scenarios:   200,
		M:           24,
		Seed:        1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig9b regenerates the fault panels of Fig. 9: FTQS evaluated
// under 1..3 injected faults (the static baselines at 3).
func BenchmarkFig9b(b *testing.B) {
	// The Fig9 harness produces both panels; panel (b) is the fault-
	// injection half. Benchmark it separately through a pre-synthesised
	// application so the measured work is the faulty-scenario evaluation.
	rng := rand.New(rand.NewSource(4))
	app, err := ftsched.Generate(rng, ftsched.DefaultGenConfig(30))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 24})
	if err != nil {
		b.Skip("generated instance unschedulable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for faults := 1; faults <= 3; faults++ {
			st, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{
				Scenarios: 500, Faults: faults, Seed: int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if st.HardViolations != 0 {
				b.Fatal("hard violation")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (utility and synthesis runtime as
// the quasi-static tree grows).
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Table1Config{
		Apps:      2,
		Processes: 30,
		Ms:        []int{1, 8, 34},
		Scenarios: 200,
		Seed:      2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkCruiseController regenerates the CC case study (k = 2,
// µ = 10% WCET, 39 schedules).
func BenchmarkCruiseController(b *testing.B) {
	cfg := experiments.CCConfig{Scenarios: 500, M: 39, Seed: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CruiseController(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TreeNodes != 39 {
			b.Fatal("tree size drifted")
		}
	}
}

// BenchmarkFTSS measures static synthesis across the paper's size sweep.
func BenchmarkFTSS(b *testing.B) {
	for _, n := range []int{10, 30, 50} {
		b.Run(sizeName(n), func(b *testing.B) {
			app := genApp(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ftsched.FTSS(app); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFTQS measures tree synthesis for growing tree bounds (the
// runtime column of Table 1).
func BenchmarkFTQS(b *testing.B) {
	app := genApp(b, 30)
	for _, m := range []int{2, 8, 34} {
		b.Run("M"+sizeName(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFTQSWorkers measures parallel tree synthesis against the
// serial baseline on a 30-process application at the Table 1 tree bound.
// The synthesised tree is identical for every worker count; only the
// wall-clock differs. Record results in EXPERIMENTS.md together with the
// machine's core count — on a single-core host the worker counts tie and
// the speedup over older revisions comes from suffix memoisation alone.
func BenchmarkFTQSWorkers(b *testing.B) {
	app := genApp(b, 30)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("W"+sizeName(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 34, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFTSF measures the baseline synthesis.
func BenchmarkFTSF(b *testing.B) {
	app := genApp(b, 30)
	if _, err := ftsched.FTSF(app); err != nil {
		b.Skip("baseline unschedulable on this instance")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftsched.FTSF(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineScheduler measures one full simulated cycle through the
// quasi-static tree — the per-cycle cost an embedded online scheduler
// would pay (paper §1: "the online overhead of quasi-static scheduling is
// very low").
func BenchmarkOnlineScheduler(b *testing.B) {
	app := ftsched.CruiseController()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 39})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	scs := make([]ftsched.Scenario, 64)
	for i := range scs {
		var err error
		if scs[i], err = ftsched.SampleScenario(app, rng, i%3, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ftsched.Run(tree, scs[i%len(scs)])
		if err != nil {
			b.Fatal(err)
		}
		if len(r.HardViolations) != 0 {
			b.Fatal("hard violation")
		}
	}
}

// BenchmarkMonteCarlo measures the evaluation engine itself (1000
// scenarios per iteration).
func BenchmarkMonteCarlo(b *testing.B) {
	app := genApp(b, 30)
	s, err := ftsched.FTSS(app)
	if err != nil {
		b.Fatal(err)
	}
	tree := ftsched.StaticTree(app, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{
			Scenarios: 1000, Faults: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloObs measures the observability overhead on the full
// evaluation path: 2000 cruise-controller scenarios per iteration through
// one dispatcher, uninstrumented vs a NopSink vs the live Metrics
// collector. The live-sink column must stay within 10% of the plain one
// (asserted offline from BENCH_obs.json; see EXPERIMENTS.md).
func BenchmarkMonteCarloObs(b *testing.B) {
	app := ftsched.CruiseController()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 39})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		sink ftsched.Sink
	}{
		{"Plain", nil},
		{"NopSink", ftsched.NopSink{}},
		{"LiveSink", ftsched.NewMetrics()},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{
					Scenarios: 2000, Faults: 1, Seed: 7, Sink: c.sink,
				})
				if err != nil {
					b.Fatal(err)
				}
				if st.HardViolations != 0 {
					b.Fatal("hard violation")
				}
			}
		})
	}
}

func genApp(b *testing.B, n int) *ftsched.Application {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 50; attempt++ {
		app, err := ftsched.Generate(rng, ftsched.DefaultGenConfig(n))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ftsched.FTSS(app); err == nil {
			return app
		}
	}
	b.Fatal("no schedulable instance")
	return nil
}

func sizeName(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// BenchmarkOptimalDP measures the exact subset-DP optimiser (the quality
// yardstick) across instance sizes.
func BenchmarkOptimalDP(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		b.Run(sizeName(n), func(b *testing.B) {
			app := genApp(b, n)
			if _, _, err := ftsched.OptimalSchedule(app); err != nil {
				b.Skip("instance outside optimiser scope")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ftsched.OptimalSchedule(app); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
