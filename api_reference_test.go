package ftsched_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ftsched"
)

// Compile-time references for the facade's alias types and constants: they
// must stay usable as the declared kinds from outside the module.
var (
	_ ftsched.Kind            = ftsched.Hard
	_ ftsched.UtilityFunction = ftsched.MustStepUtility([]ftsched.Time{1}, []float64{1})
	_ ftsched.UtilityPoint
	_ ftsched.Entry
	_ ftsched.FSchedule
	_ ftsched.MCStats
	_ ftsched.GenConfig
	_ ftsched.TraceEvent
	_ *ftsched.Dispatcher
	_ *ftsched.Metrics
	_ ftsched.Sink              = ftsched.NopSink{}
	_ [3]ftsched.ProcessOutcome = [...]ftsched.ProcessOutcome{ftsched.NotScheduled, ftsched.Completed, ftsched.AbandonedByFault}
	_ ftsched.TraceEventKind
	_ [3]ftsched.RecoveryKind = [...]ftsched.RecoveryKind{ftsched.RecoverReExecution, ftsched.RecoverRestart, ftsched.RecoverCheckpoint}
	_ ftsched.RecoveryModel
	_ *ftsched.RecoveryError
)

// TestAPITreeLifecycle exercises the persistence, tracing and reporting
// surface end to end: synthesise, serialise both formats, reload, verify,
// trace a cycle, render it, and compare against the online-rescheduling
// upper bound.
func TestAPITreeLifecycle(t *testing.T) {
	app := ftsched.PaperFig1()
	s, err := ftsched.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if rep := ftsched.TimingReport(app, s, app.K()); !strings.Contains(rep, "deadline") {
		t.Errorf("timing report: %q", rep)
	}

	var tree *ftsched.Tree
	tree, err = ftsched.FTQS(app, ftsched.FTQSOptions{M: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The arena invariants the aliases expose: the root Node has no
	// parent; every Arc child is a valid NodeID.
	var root ftsched.Node = tree.Nodes[0]
	if root.Parent != ftsched.NoNode {
		t.Error("root has a parent")
	}
	for _, a := range tree.Arcs {
		var arc ftsched.Arc = a
		var child ftsched.NodeID = arc.Child
		if int(child) <= 0 || int(child) >= len(tree.Nodes) {
			t.Errorf("arc child %d out of range", child)
		}
	}

	// Serialisation round trips, both formats.
	for name, write := range map[string]func(*bytes.Buffer) error{
		"json":    func(b *bytes.Buffer) error { return ftsched.WriteTree(b, tree) },
		"compact": func(b *bytes.Buffer) error { return ftsched.WriteTreeCompact(b, tree) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ftsched.ReadTree(&buf, app)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Size() != tree.Size() {
			t.Errorf("%s round trip: %d != %d nodes", name, back.Size(), tree.Size())
		}
		if err := ftsched.VerifyTree(back); err != nil {
			t.Errorf("%s round trip failed verification: %v", name, err)
		}
	}

	// Trace one faulty cycle and render it.
	rng := rand.New(rand.NewSource(6))
	sc, err := ftsched.SampleScenario(app, rng, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var res ftsched.RunResult
	var events []ftsched.TraceEvent
	res, events, err = ftsched.RunTrace(tree, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(res.HardViolations) != 0 {
		t.Fatalf("trace: %d events, violations %v", len(events), res.HardViolations)
	}
	var gantt bytes.Buffer
	if err := ftsched.WriteGantt(&gantt, app, events, 0, 60); err != nil {
		t.Fatal(err)
	}
	if gantt.Len() == 0 {
		t.Error("empty Gantt chart")
	}

	// The idealised online rescheduler bounds the tree from above (up to
	// simulation noise) and reports its synthesis cost.
	var rr ftsched.RescheduleResult = ftsched.RunOnlineReschedule(app, s, sc)
	if rr.Reschedules == 0 {
		t.Error("online comparator never resynthesised")
	}

	if _, err := ftsched.StepUtility([]ftsched.Time{10}, []float64{5}); err != nil {
		t.Error(err)
	}
}
