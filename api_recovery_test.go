package ftsched_test

import (
	"bytes"
	"errors"
	"testing"

	"ftsched"
)

// TestPublicRecoveryPipeline drives the recovery-model surface end to end
// through the facade: build the three models, attach a checkpoint model to
// the paper's Fig. 1 application, synthesise, persist (v4), dispatch and
// evaluate — and check the canonical model stays byte-identical.
func TestPublicRecoveryPipeline(t *testing.T) {
	if !ftsched.ReExecutionModel().IsCanonical() {
		t.Fatal("re-execution model is not canonical")
	}
	restart := ftsched.RestartModel(25)
	if restart.Kind != ftsched.RecoverRestart || restart.Latency != 25 {
		t.Fatalf("restart constructor diverged: %+v", restart)
	}
	cp := ftsched.CheckpointModel(40, 3, 7)
	if cp.Kind != ftsched.RecoverCheckpoint {
		t.Fatalf("checkpoint constructor diverged: %+v", cp)
	}
	var kind ftsched.RecoveryKind = ftsched.RecoverReExecution
	if kind.String() != "re-execution" {
		t.Fatalf("kind string: %q", kind.String())
	}
	parsed, err := ftsched.ParseRecoverySpec("checkpoint:40:3:7")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != cp {
		t.Fatalf("recovery-spec parse diverged: %v vs %v", parsed, cp)
	}
	var recErr *ftsched.RecoveryError
	if _, err := ftsched.ParseRecoverySpec("checkpoint:0:0:0"); err == nil {
		t.Fatal("checkpoint spacing 0 accepted")
	}
	if err := ftsched.RestartModel(-1).Validate(); !errors.As(err, &recErr) || recErr.Field != "Latency" {
		t.Fatalf("negative latency: got %v, want *RecoveryError on latency", err)
	}

	base := ftsched.PaperFig1()
	var m ftsched.RecoveryModel = ftsched.CheckpointModel(40, 3, 7)
	app, err := base.WithRecovery(m)
	if err != nil {
		t.Fatal(err)
	}
	if app.Recovery() != m || !app.HasRecovery() {
		t.Fatalf("recovery accessor diverged: %v", app.Recovery())
	}

	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ftsched.VerifyTree(tree); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ftsched.WriteTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ftsched-tree/v4"`)) {
		t.Fatalf("tree of a checkpointing application did not encode as v4: %.80s", buf.String())
	}
	back, err := ftsched.ReadTree(bytes.NewReader(buf.Bytes()), app)
	if err != nil {
		t.Fatal(err)
	}
	// The same bytes must refuse to bind to the canonical application: the
	// guard bounds bake in the checkpoint overheads.
	if _, err := ftsched.ReadTree(bytes.NewReader(buf.Bytes()), base); err == nil {
		t.Fatal("v4 tree bound to an application without its recovery model")
	}

	st, err := ftsched.MonteCarlo(back, ftsched.MCConfig{Scenarios: 800, Faults: 1, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.HardViolations != 0 {
		t.Fatalf("%d hard violations under the checkpoint model", st.HardViolations)
	}

	// The application JSON round-trips the model exactly, and the canonical
	// application's encoding carries no recovery member at all.
	buf.Reset()
	if err := ftsched.EncodeApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"recovery"`)) {
		t.Fatal("checkpointing application encoded without a recovery member")
	}
	decoded, err := ftsched.DecodeApplication(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Recovery() != m {
		t.Fatalf("recovery did not round-trip: %v", decoded.Recovery())
	}
	buf.Reset()
	if err := ftsched.EncodeApplication(&buf, base); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"recovery"`)) {
		t.Fatal("canonical application encoded a recovery member")
	}
}
