package ftsched_test

import (
	"fmt"

	"ftsched"
)

// Example synthesises a static fault-tolerant schedule for the paper's
// running example and prints its expected utility.
func Example() {
	app := ftsched.PaperFig1()
	s, err := ftsched.FTSS(app)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Format(app))
	fmt.Printf("expected utility: %.0f\n", ftsched.ExpectedUtility(app, s))
	// Output:
	// P1(f=1) P3 P2(f=1)
	// expected utility: 60
}

// ExampleFTQS builds a quasi-static tree and shows its size and memory
// footprint.
func ExampleFTQS() {
	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d schedules, root: %s\n", tree.Size(), tree.Root().Schedule.Format(app))
	if err := ftsched.VerifyTree(tree); err != nil {
		panic(err)
	}
	fmt.Println("verified")
	// Output:
	// 4 schedules, root: P1(f=1) P3 P2(f=1)
	// verified
}

// ExampleFTQS_options shows the full synthesis configuration: the tree
// bound M, the Monte-Carlo effort behind each candidate's gain estimate,
// and Workers, which fans candidate generation out over a bounded pool of
// goroutines. The tree is identical for every worker count — Workers: 1
// forces the fully serial path, 0 uses one goroutine per CPU — so the
// option is purely a wall-clock knob.
func ExampleFTQS_options() {
	app := ftsched.PaperFig1()
	opts := ftsched.FTQSOptions{
		M:             12,
		EvalScenarios: 16,
		Workers:       4,
	}
	tree, err := ftsched.FTQS(app, opts)
	if err != nil {
		panic(err)
	}
	serial, err := ftsched.FTQS(app, ftsched.FTQSOptions{
		M:             12,
		EvalScenarios: 16,
		Workers:       1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d schedules, identical to serial: %v\n",
		tree.Size(), tree.Format() == serial.Format())
	// Output:
	// 3 schedules, identical to serial: true
}

// ExampleMonteCarlo_workers runs the same Monte-Carlo evaluation
// sequentially and over four goroutines: the batch engine derives every
// scenario from (Seed, index) and folds statistics in fixed block order,
// so the two runs return bit-identical MCStats.
func ExampleMonteCarlo_workers() {
	app := ftsched.PaperFig8()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		panic(err)
	}
	cfg := ftsched.MCConfig{Scenarios: 10000, Faults: 1, Seed: 7, Workers: 1}
	serial, err := ftsched.MonteCarlo(tree, cfg)
	if err != nil {
		panic(err)
	}
	cfg.Workers = 4
	parallel, err := ftsched.MonteCarlo(tree, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("identical stats: %v\n", serial == parallel)
	fmt.Printf("hard violations: %d\n", parallel.HardViolations)
	// Output:
	// identical stats: true
	// hard violations: 0
}

// ExampleRun executes one deterministic scenario — a transient fault hits
// the hard process P1, which re-executes inside its recovery slack and
// still meets its deadline.
func ExampleRun() {
	app := ftsched.PaperFig1()
	s, err := ftsched.FTSS(app)
	if err != nil {
		panic(err)
	}
	tree := ftsched.StaticTree(app, s)

	sc := ftsched.Scenario{
		Durations: make([]ftsched.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(ftsched.ProcessID(id)).AET
	}
	p1 := app.IDByName("P1")
	sc.FaultsAt[p1] = 1
	sc.NFaults = 1

	r, err := ftsched.Run(tree, sc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P1 completed at %d (deadline %d), re-executions %d, violations %d\n",
		r.CompletionTimes[p1], app.Proc(p1).Deadline, r.Recoveries, len(r.HardViolations))
	// Output:
	// P1 completed at 110 (deadline 180), re-executions 1, violations 0
}

// ExampleOptimalSchedule compares FTSS against the exact optimum on the
// paper's running example (they coincide there).
func ExampleOptimalSchedule() {
	app := ftsched.PaperFig1()
	_, best, err := ftsched.OptimalSchedule(app)
	if err != nil {
		panic(err)
	}
	s, err := ftsched.FTSS(app)
	if err != nil {
		panic(err)
	}
	fmt.Printf("FTSS %.0f of optimal %.0f\n", ftsched.ExpectedUtility(app, s), best)
	// Output:
	// FTSS 60 of optimal 60
}
