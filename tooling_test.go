package ftsched_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestTooling folds `go vet ./...` and a gofmt check into the tier-1 gate
// (`go test ./...`), so vet regressions and formatting drift fail CI
// without a separate pipeline step. Skipped with -short.
func TestTooling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs external tooling")
	}
	t.Run("vet", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "./...")
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("go vet ./...: %v\n%s", err, b)
		}
	})
	t.Run("gofmt", func(t *testing.T) {
		gofmt, err := exec.LookPath("gofmt")
		if err != nil {
			gofmt = filepath.Join(runtime.GOROOT(), "bin", "gofmt")
		}
		b, err := exec.Command(gofmt, "-l", ".").CombinedOutput()
		if err != nil {
			t.Fatalf("gofmt -l .: %v\n%s", err, b)
		}
		if out := strings.TrimSpace(string(b)); out != "" {
			t.Errorf("files need gofmt:\n%s", out)
		}
	})
}
