// Deployment: the full production workflow for a quasi-static tree —
// synthesise off-line, trim the arcs that don't pay, audit the safety
// guards, persist to storage, load it back (as the embedded target would),
// re-verify, and run. Every step uses the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ftsched"
)

func main() {
	app := ftsched.CruiseController()
	fmt.Println(app)

	// 1. Synthesise with a generous tree bound.
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 39})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised: %d schedules, %d bytes of tables\n",
		tree.Size(), tree.MemoryFootprint())

	// 2. Trim: replay a fixed scenario set and drop every switch arc
	// whose measured effect is non-positive. Safety cannot degrade —
	// staying on the current schedule is always covered by its slack.
	removed, err := ftsched.TrimTree(tree, ftsched.TrimConfig{Scenarios: 400, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trimmed: %d arcs removed, %d schedules and %d bytes remain\n",
		removed, tree.Size(), tree.MemoryFootprint())

	// 3. Audit: every guard must keep the hard deadlines at its upper
	// bound, budgets must be consistent, prefixes shared.
	if err := ftsched.VerifyTree(tree); err != nil {
		log.Fatal(err)
	}
	fmt.Println("audited: all switch guards safe")

	// 4. Persist (here to a buffer; a real deployment writes a file the
	// target firmware embeds).
	var store bytes.Buffer
	if err := ftsched.WriteTree(&store, tree); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored: %d bytes of JSON\n", store.Len())

	// 5. Load on the "target" and re-verify before trusting it.
	loaded, err := ftsched.ReadTree(&store, app)
	if err != nil {
		log.Fatal(err)
	}
	if err := ftsched.VerifyTree(loaded); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded and re-verified")

	// 6. Run: 20 000 cycles per fault count, hard deadlines audited.
	for faults := 0; faults <= app.K(); faults++ {
		st, err := ftsched.MonteCarlo(loaded, ftsched.MCConfig{
			Scenarios: 20000, Faults: faults, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if st.HardViolations != 0 {
			log.Fatalf("hard violations with %d faults", faults)
		}
		fmt.Printf("faults=%d: mean utility %.1f (min %.1f), %.2f switches/cycle\n",
			faults, st.MeanUtility, st.MinUtility, st.MeanSwitches)
	}
}
