// Quickstart: build a three-process application (the paper's running
// example), synthesise a static fault-tolerant schedule and a quasi-static
// tree, and compare them by simulation.
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	// One hard control process feeding two soft processes; one transient
	// fault must be tolerated per 300 ms cycle, re-execution costs 10 ms.
	app := ftsched.NewApplication("quickstart", 300, 1, 10)
	p1 := app.AddProcess(ftsched.Process{
		Name: "Control", Kind: ftsched.Hard,
		BCET: 30, AET: 50, WCET: 70, Deadline: 180,
	})
	p2 := app.AddProcess(ftsched.Process{
		Name: "Logging", Kind: ftsched.Soft,
		BCET: 30, AET: 50, WCET: 70,
		// Worth 40 if done within 90 ms, 20 within 200 ms, 10 within
		// 250 ms, nothing later.
		Utility: ftsched.MustStepUtility(
			[]ftsched.Time{90, 200, 250}, []float64{40, 20, 10}),
	})
	p3 := app.AddProcess(ftsched.Process{
		Name: "Display", Kind: ftsched.Soft,
		BCET: 40, AET: 60, WCET: 80,
		Utility: ftsched.MustStepUtility(
			[]ftsched.Time{110, 150, 220}, []float64{40, 30, 10}),
	})
	app.MustAddEdge(p1, p2)
	app.MustAddEdge(p1, p3)
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(app)

	// A single static fault-tolerant schedule (FTSS).
	static, err := ftsched.FTSS(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstatic f-schedule:", static.Format(app))
	fmt.Printf("expected no-fault utility: %.0f\n", ftsched.ExpectedUtility(app, static))

	// A quasi-static tree: the online scheduler switches between
	// precalculated schedules based on observed completion times and
	// faults.
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquasi-static tree (%d schedules):\n%s\n", tree.Size(), tree.Format())

	// Compare by Monte-Carlo simulation, with and without faults.
	for faults := 0; faults <= app.K(); faults++ {
		cfg := ftsched.MCConfig{Scenarios: 10000, Faults: faults, Seed: 1}
		st, err := ftsched.MonteCarlo(ftsched.StaticTree(app, static), cfg)
		if err != nil {
			log.Fatal(err)
		}
		qt, err := ftsched.MonteCarlo(tree, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("faults=%d: static utility %.1f, quasi-static %.1f (+%.1f%%), violations %d/%d\n",
			faults, st.MeanUtility, qt.MeanUtility,
			100*(qt.MeanUtility-st.MeanUtility)/st.MeanUtility,
			st.HardViolations, qt.HardViolations)
	}
}
