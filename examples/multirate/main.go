// Multirate: two process graphs with different periods are merged over
// their hyper-period (paper §2: "If process graphs have different periods,
// they are combined into a hyper-graph capturing all process activations
// for the hyper-period") and scheduled as one fault-tolerant application.
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	// Fast 100 ms control loop: hard sampling + control, soft telemetry.
	fast := ftsched.NewApplication("fast", 100, 0, 0)
	sample := fast.AddProcess(ftsched.Process{
		Name: "Sample", Kind: ftsched.Hard,
		BCET: 5, AET: 8, WCET: 12, Deadline: 40,
	})
	control := fast.AddProcess(ftsched.Process{
		Name: "Control", Kind: ftsched.Hard,
		BCET: 8, AET: 12, WCET: 18, Deadline: 70,
	})
	telemetry := fast.AddProcess(ftsched.Process{
		Name: "Telemetry", Kind: ftsched.Soft,
		BCET: 5, AET: 10, WCET: 16,
		Utility: ftsched.MustStepUtility([]ftsched.Time{60, 95}, []float64{15, 5}),
	})
	fast.MustAddEdge(sample, control)
	fast.MustAddEdge(control, telemetry)
	if err := fast.Validate(); err != nil {
		log.Fatal(err)
	}

	// Slow 300 ms supervisory loop: one hard watchdog, one soft planner.
	slow := ftsched.NewApplication("slow", 300, 0, 0)
	watchdog := slow.AddProcess(ftsched.Process{
		Name: "Watchdog", Kind: ftsched.Hard,
		BCET: 6, AET: 10, WCET: 15, Deadline: 290,
	})
	planner := slow.AddProcess(ftsched.Process{
		Name: "Planner", Kind: ftsched.Soft,
		BCET: 20, AET: 35, WCET: 55,
		Utility: ftsched.MustStepUtility([]ftsched.Time{200, 290}, []float64{40, 15}),
	})
	slow.MustAddEdge(watchdog, planner)
	if err := slow.Validate(); err != nil {
		log.Fatal(err)
	}

	// Merge over the 300 ms hyper-period: the fast graph is replicated
	// three times with shifted releases, deadlines and utilities. One
	// transient fault per hyper-period, µ = 5 ms.
	app, err := ftsched.Merge("multirate", 1, 5, fast, slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(app)
	fmt.Printf("hyper-period %d, %d process activations\n\n", app.Period(), app.N())

	s, err := ftsched.FTSS(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("f-schedule over the hyper-period:")
	fmt.Println(" ", s.Format(app))
	fmt.Printf("expected utility per hyper-period: %.1f\n\n", ftsched.ExpectedUtility(app, s))

	// Releases are honoured: the second activation of Sample cannot start
	// before 100 ms.
	id := app.IDByName("fast/Sample#1")
	fmt.Printf("fast/Sample#1: release %d, deadline %d\n",
		app.Proc(id).Release, app.Proc(id).Deadline)

	// Simulate with a fault.
	st, err := ftsched.MonteCarlo(ftsched.StaticTree(app, s),
		ftsched.MCConfig{Scenarios: 10000, Faults: 1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated mean utility with 1 fault/hyper-period: %.1f (violations %d)\n",
		st.MeanUtility, st.HardViolations)
}
