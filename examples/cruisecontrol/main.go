// Cruise control: the paper's real-life case study. A 32-process vehicle
// cruise controller (9 hard actuator-critical processes, k = 2 transient
// faults per 200 ms cycle, µ = 10% of each WCET) is synthesised with all
// three algorithms and evaluated under fault injection.
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	app := ftsched.CruiseController()
	fmt.Println(app)
	fmt.Println()

	// The pessimistic static schedule: sized for the worst case, so some
	// soft diagnostics are dropped outright.
	static, err := ftsched.FTSS(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FTSS schedule:")
	fmt.Println(" ", static.Format(app))
	dropped := static.Dropped(app)
	fmt.Printf("  %d of %d processes dropped off-line\n\n", len(dropped), app.N())

	// The baseline: value-maximal order patched with recovery slack.
	bf, err := ftsched.FTSF(app)
	if err != nil {
		log.Fatal(err)
	}

	// The quasi-static tree with the paper's 39 schedules.
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 39})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FTQS tree: %d schedules\n\n", tree.Size())

	var base float64
	fmt.Println("mean utility over 20000 scenarios (hard deadlines audited):")
	fmt.Printf("%-7s %9s %9s %9s\n", "faults", "FTQS", "FTSS", "FTSF")
	for faults := 0; faults <= app.K(); faults++ {
		cfg := ftsched.MCConfig{Scenarios: 20000, Faults: faults, Seed: 9}
		q, err := ftsched.MonteCarlo(tree, cfg)
		if err != nil {
			log.Fatal(err)
		}
		s, err := ftsched.MonteCarlo(ftsched.StaticTree(app, static), cfg)
		if err != nil {
			log.Fatal(err)
		}
		b, err := ftsched.MonteCarlo(ftsched.StaticTree(app, bf), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if q.HardViolations+s.HardViolations+b.HardViolations > 0 {
			log.Fatal("hard deadline violated — scheduler bug")
		}
		if faults == 0 {
			base = q.MeanUtility
		}
		fmt.Printf("%-7d %9.1f %9.1f %9.1f\n", faults, q.MeanUtility, s.MeanUtility, b.MeanUtility)
		if faults > 0 {
			fmt.Printf("        FTQS degradation vs no-fault: %.1f%%\n",
				100*(base-q.MeanUtility)/base)
		}
	}
}
