// Overload: demonstrates dropping and stale-value semantics. The period is
// tightened until the worst-case fault scenario no longer fits all soft
// processes; the scheduler must choose which soft process to sacrifice,
// and the utility of its successors degrades through the stale-value
// coefficients α (paper §2.1: α_i = (1 + Σ α_preds) / (1 + |preds|)).
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func build(period ftsched.Time) *ftsched.Application {
	app := ftsched.NewApplication(fmt.Sprintf("overload-T%d", period), period, 1, 10)
	sense := app.AddProcess(ftsched.Process{
		Name: "Sense", Kind: ftsched.Hard,
		BCET: 30, AET: 50, WCET: 70, Deadline: 180,
	})
	// Preprocess feeds Fuse; dropping Preprocess halves Fuse's value.
	pre := app.AddProcess(ftsched.Process{
		Name: "Preprocess", Kind: ftsched.Soft,
		BCET: 30, AET: 50, WCET: 70,
		Utility: ftsched.MustStepUtility([]ftsched.Time{120, 250}, []float64{30, 10}),
	})
	fuse := app.AddProcess(ftsched.Process{
		Name: "Fuse", Kind: ftsched.Soft,
		BCET: 40, AET: 60, WCET: 80,
		Utility: ftsched.MustStepUtility([]ftsched.Time{200, 330}, []float64{60, 20}),
	})
	app.MustAddEdge(sense, pre)
	app.MustAddEdge(pre, fuse)
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}
	return app
}

func main() {
	// Generous period: everything fits, every process runs fresh.
	for _, period := range []ftsched.Time{400, 330, 260} {
		app := build(period)
		s, err := ftsched.FTSS(app)
		if err != nil {
			fmt.Printf("T=%d: unschedulable (%v)\n\n", period, err)
			continue
		}
		fmt.Printf("T=%d: %s\n", period, s.Format(app))
		fmt.Printf("      expected utility %.1f\n", ftsched.ExpectedUtility(app, s))

		// Show the realised utility of one average-case cycle, including
		// the stale degradation when Preprocess is dropped.
		st, err := ftsched.MonteCarlo(ftsched.StaticTree(app, s),
			ftsched.MCConfig{Scenarios: 5000, Faults: 0, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("      simulated mean utility %.1f (violations %d)\n",
			st.MeanUtility, st.HardViolations)
		if !s.Contains(app.IDByName("Preprocess")) && s.Contains(app.IDByName("Fuse")) {
			fmt.Println("      Preprocess dropped -> Fuse runs on a stale input, α = 1/2,")
			fmt.Println("      so Fuse is worth half its nominal utility this cycle.")
		}
		fmt.Println()
	}
}
