// Fault tolerance: executes hand-picked fault scenarios against a
// quasi-static tree, showing in-slack re-execution, run-time dropping of a
// soft process, and guarded schedule switches — while the hard deadline
// holds in every case.
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	app := ftsched.PaperFig1() // P1 hard (d=180), P2/P3 soft, k=1, µ=10
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(app)
	fmt.Printf("tree with %d schedules; root: %s\n\n",
		tree.Size(), tree.Root().Schedule.Format(app))

	p1 := app.IDByName("P1")
	p2 := app.IDByName("P2")
	p3 := app.IDByName("P3")

	scenario := func(name string, durs map[ftsched.ProcessID]ftsched.Time,
		faults map[ftsched.ProcessID]int) {
		sc := ftsched.Scenario{
			Durations: make([]ftsched.Time, app.N()),
			FaultsAt:  make([]int, app.N()),
		}
		for id := 0; id < app.N(); id++ {
			sc.Durations[id] = app.Proc(ftsched.ProcessID(id)).AET
		}
		for id, d := range durs {
			sc.Durations[id] = d
		}
		for id, f := range faults {
			sc.FaultsAt[id] = f
			sc.NFaults += f
		}
		if err := sc.Validate(app); err != nil {
			log.Fatal(err)
		}
		r, err := ftsched.Run(tree, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", name)
		for id := 0; id < app.N(); id++ {
			p := app.Proc(ftsched.ProcessID(id))
			switch r.Outcomes[id] {
			case ftsched.Completed:
				fmt.Printf("  %-3s completed at %3d", p.Name, r.CompletionTimes[id])
				if p.Kind == ftsched.Hard {
					fmt.Printf("  (deadline %d ok)", p.Deadline)
				}
				fmt.Println()
			case ftsched.AbandonedByFault:
				fmt.Printf("  %-3s abandoned after a fault (no recovery budget)\n", p.Name)
			default:
				fmt.Printf("  %-3s not scheduled this cycle\n", p.Name)
			}
		}
		fmt.Printf("  utility %.1f, switches %d, re-executions %d, hard violations %d\n\n",
			r.Utility, r.Switches, r.Recoveries, len(r.HardViolations))
	}

	scenario("1) no faults, average execution times", nil, nil)
	scenario("2) P1 finishes early (BCET): tree switches to the early-order schedule",
		map[ftsched.ProcessID]ftsched.Time{p1: 30}, nil)
	scenario("3) transient fault hits P1: re-executed inside the recovery slack",
		nil, map[ftsched.ProcessID]int{p1: 1})
	scenario("4) fault hits P3 (no recovery budget): dropped at run time",
		nil, map[ftsched.ProcessID]int{p3: 1})
	scenario("5) fault hits P2 late in the cycle",
		map[ftsched.ProcessID]ftsched.Time{p1: 65}, map[ftsched.ProcessID]int{p2: 1})
}
