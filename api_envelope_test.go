package ftsched_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ftsched"
)

// fig8Tree synthesises the paper's Fig. 8 tree through the facade.
func fig8Tree(t *testing.T) (*ftsched.Application, *ftsched.Tree) {
	t.Helper()
	app := ftsched.PaperFig8()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	return app, tree
}

// TestEnvelopeFacade drives the out-of-model containment layer end to end
// through the facade: a WCET overrun under each policy, the typed strict
// error, and the violation vocabulary.
func TestEnvelopeFacade(t *testing.T) {
	app, tree := fig8Tree(t)
	rng := rand.New(rand.NewSource(1))
	sc, err := ftsched.SampleScenario(app, rng, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	soft := app.SoftIDs()[0]
	sc.Durations[soft] = app.Proc(soft).WCET + 25

	var policy ftsched.DegradePolicy = ftsched.PolicyShedSoft
	d, err := ftsched.NewDispatcher(tree, ftsched.WithEnvelope(ftsched.EnvelopeConfig{Policy: policy}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("overrun under PolicyShedSoft did not degrade")
	}
	var kinds []ftsched.ViolationKind
	for _, ev := range res.Violations {
		var e ftsched.ViolationEvent = ev
		kinds = append(kinds, e.Kind)
	}
	overruns := 0
	for _, k := range kinds {
		switch k {
		case ftsched.WCETOverrun:
			overruns++
		case ftsched.ExtraFault, ftsched.BudgetExhausted, ftsched.TimeRegression:
			// Legal vocabulary; nothing to assert for this scenario.
		}
	}
	if overruns != 1 {
		t.Fatalf("recorded %d WCETOverrun events, want 1 (violations %v)", overruns, res.Violations)
	}
	if len(res.HardViolations) != 0 {
		t.Fatalf("hard violations %v under PolicyShedSoft", res.HardViolations)
	}

	// Best effort records without intervening.
	d, err = ftsched.NewDispatcher(tree, ftsched.WithEnvelope(ftsched.EnvelopeConfig{Policy: ftsched.PolicyBestEffort}))
	if err != nil {
		t.Fatal(err)
	}
	if res, err = d.Run(sc); err != nil || res.Degraded {
		t.Fatalf("best effort: err=%v degraded=%v", err, res.Degraded)
	}

	// Strict returns the typed error, which round-trips through JSON.
	d, err = ftsched.NewDispatcher(tree, ftsched.WithEnvelope(ftsched.EnvelopeConfig{Policy: ftsched.PolicyStrict}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run(sc)
	var envErr *ftsched.EnvelopeError
	if !errors.As(err, &envErr) {
		t.Fatalf("strict run returned %T (%v), want *EnvelopeError", err, err)
	}
	data, err := json.Marshal(envErr)
	if err != nil {
		t.Fatal(err)
	}
	var back ftsched.EnvelopeError
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, envErr) {
		t.Fatal("EnvelopeError did not survive a JSON round-trip")
	}
}

// TestChaosFacade runs a seeded chaos campaign through the facade and
// checks the containment contract plus report determinism.
func TestChaosFacade(t *testing.T) {
	_, tree := fig8Tree(t)
	cfg := ftsched.ChaosConfig{
		Cycles:        400,
		Seed:          9,
		Policy:        ftsched.PolicyShedSoft,
		BaseFaults:    1,
		OverrunProb:   0.3,
		OverrunFactor: 1.8,
		BurstProb:     0.3,
		ExtraFaults:   2,
		SoftOnly:      true,
	}
	var campaign *ftsched.ChaosCampaign
	campaign, err := ftsched.NewChaosCampaign(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rep *ftsched.ChaosReport
	rep, err = campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Panics != 0 || rep.Breaches != 0 || rep.InModelMisses != 0 || rep.DetectionGaps != 0 {
		t.Fatalf("containment contract violated: %+v", rep)
	}
	if rep.Overruns == 0 || rep.ExtraFaults == 0 {
		t.Fatalf("vacuous campaign: %+v", rep)
	}
	var rec ftsched.ChaosCycleRecord = rep.Records[0]
	if rec.Cycle != 0 {
		t.Fatalf("records out of order: first is cycle %d", rec.Cycle)
	}

	again, err := ftsched.RunChaos(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Fatal("RunChaos diverged from an identically-seeded campaign")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ftsched.RunChaosContext(ctx, tree, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
}
