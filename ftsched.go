// Package ftsched synthesises fault-tolerant schedules for embedded
// applications with mixed soft and hard real-time constraints, implementing
// the quasi-static scheduling approach of
//
//	V. Izosimov, P. Pop, P. Eles, Z. Peng:
//	"Scheduling of Fault-Tolerant Embedded Systems with Soft and Hard
//	Timing Constraints", DATE 2008, pp. 915-920.
//
// Applications are directed acyclic graphs of non-preemptable processes on
// a single computation node. Hard processes carry deadlines that must hold
// under up to K transient faults (tolerated by re-execution with recovery
// overhead µ); soft processes carry non-increasing time/utility functions
// and may be dropped, degrading their successors through stale-value
// coefficients.
//
// The library offers three synthesis algorithms:
//
//   - FTSS — a static f-schedule with shared recovery slack that
//     guarantees the hard deadlines in the worst case while maximising the
//     expected utility (paper §5.2);
//   - FTQS — a quasi-static tree of f-schedules with guarded switch arcs
//     derived by interval partitioning; a trivial online scheduler follows
//     the tree, adapting to observed completion times and faults
//     (paper §5.1);
//   - FTSF — the straightforward baseline used in the paper's evaluation.
//
// Synthesised schedules and trees are executed and evaluated by the
// Monte-Carlo simulator in Run/MonteCarlo. The package is a thin facade
// over the internal packages; everything needed to build, synthesise,
// simulate, serialise and benchmark lives here.
//
// # Quick start
//
//	app := ftsched.NewApplication("demo", 300, 1, 10)
//	p1 := app.AddProcess(ftsched.Process{Name: "P1", Kind: ftsched.Hard,
//		BCET: 30, AET: 50, WCET: 70, Deadline: 180})
//	p2 := app.AddProcess(ftsched.Process{Name: "P2", Kind: ftsched.Soft,
//		BCET: 30, AET: 50, WCET: 70,
//		Utility: ftsched.MustStepUtility([]ftsched.Time{90, 200}, []float64{40, 20})})
//	app.MustAddEdge(p1, p2)
//	if err := app.Validate(); err != nil { ... }
//	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 16})
//	stats, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 10000})
package ftsched

import (
	"context"
	"io"
	"net/http"

	"ftsched/internal/appio"
	"ftsched/internal/apps"
	"ftsched/internal/baseline"
	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/optimal"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
	"ftsched/internal/sim"
	"ftsched/internal/utility"

	"math/rand"
)

// Core model types.
type (
	// Time is the discrete time base of the library (milliseconds in the
	// paper's examples).
	Time = model.Time
	// ProcessID identifies a process within its application.
	ProcessID = model.ProcessID
	// Kind classifies a process as Hard or Soft.
	Kind = model.Kind
	// Process describes one node of the application graph.
	Process = model.Process
	// Application is a validated process graph plus fault parameters.
	Application = model.Application
	// UtilityFunction is a non-increasing time/utility function U(t).
	UtilityFunction = utility.Function
	// UtilityPoint is a breakpoint of a tabulated utility function.
	UtilityPoint = utility.Point
)

// Platform types. An application is canonically bound to a single
// unit-speed computation node (the paper's model); WithPlatform attaches a
// heterogeneous set of cores plus a process→core mapping, and the whole
// pipeline — synthesis, certification, dispatch, energy accounting —
// honours the per-core speed and power parameters.
type (
	// CoreID addresses a core within its platform.
	CoreID = model.CoreID
	// Core is one processing core: relative speed plus active/idle power.
	Core = model.Core
	// Platform is a validated, immutable set of cores.
	Platform = model.Platform
	// Mapping assigns every process a primary and a recovery core.
	Mapping = model.Mapping
)

// NewPlatform validates and builds a platform from its cores.
func NewPlatform(cores ...Core) (*Platform, error) { return model.NewPlatform(cores...) }

// SingleCorePlatform returns the canonical single-core platform every
// application without an explicit platform is bound to (speed 1, active
// power 1, idle power 0) — the paper's single computation node.
func SingleCorePlatform() *Platform { return model.SingleCore() }

// BiasedMapping returns the deterministic default mapping: primaries
// round-robin over the lowest-active-power cores, every re-execution on the
// fastest core.
func BiasedMapping(app *Application, p *Platform) Mapping { return model.BiasedMapping(app, p) }

// ParseCoreSpec parses a "name:speed:powerActive:powerIdle,..." platform
// description (the ftgen -core-spec flag syntax).
func ParseCoreSpec(spec string) (*Platform, error) { return appio.ParseCoreSpec(spec) }

// Recovery-model types. An application canonically recovers by
// re-execution with overhead µ (the paper's model); WithRecovery attaches
// a different model — full restart after a fixed latency, or
// checkpoint-and-rollback — and the whole pipeline (synthesis, worst-case
// analysis, certification, dispatch, chaos) honours its per-attempt and
// per-fault costs.
type (
	// RecoveryKind discriminates the closed set of recovery models.
	RecoveryKind = model.RecoveryKind
	// RecoveryModel describes how a faulted process attempt is recovered;
	// its zero value is the canonical re-execution model.
	RecoveryModel = model.RecoveryModel
	// RecoveryError reports an invalid recovery-model parameter.
	RecoveryError = model.RecoveryError
)

// The recovery model kinds.
const (
	RecoverReExecution = model.RecoverReExecution
	RecoverRestart     = model.RecoverRestart
	RecoverCheckpoint  = model.RecoverCheckpoint
)

// ReExecutionModel returns the canonical re-execution recovery model.
func ReExecutionModel() RecoveryModel { return model.ReExecutionModel() }

// RestartModel returns a full-restart recovery model: every fault costs the
// fixed latency plus a complete re-run.
func RestartModel(latency Time) RecoveryModel { return model.RestartModel(latency) }

// CheckpointModel returns a checkpoint-and-rollback recovery model:
// checkpoints every spacing time units (each costing overhead), a fault
// rolls back to the last checkpoint for rollback plus the final segment.
func CheckpointModel(spacing, overhead, rollback Time) RecoveryModel {
	return model.CheckpointModel(spacing, overhead, rollback)
}

// ParseRecoverySpec parses a "reexec" / "restart:LATENCY" /
// "checkpoint:SPACING:OVERHEAD:ROLLBACK" recovery-model description (the
// CLI -recovery flag syntax).
func ParseRecoverySpec(spec string) (RecoveryModel, error) { return appio.ParseRecoverySpec(spec) }

// Schedule types.
type (
	// Entry is one scheduled process with its recovery budget.
	Entry = schedule.Entry
	// FSchedule is a fault-tolerant static schedule.
	FSchedule = schedule.FSchedule
	// Tree is a quasi-static tree of f-schedules.
	Tree = core.Tree
	// Node is one schedule of a quasi-static tree.
	Node = core.Node
	// NodeID addresses a node within its tree (the root is 0).
	NodeID = core.NodeID
	// Arc is a guarded switch between schedules.
	Arc = core.Arc
	// FTQSOptions tunes the tree synthesis.
	FTQSOptions = core.FTQSOptions
	// Dispatcher is the compiled, allocation-free online scheduler for a
	// tree; use it instead of Run when simulating many cycles.
	Dispatcher = runtime.Dispatcher
)

// NoNode is the sentinel NodeID (e.g. the root's parent).
const NoNode = core.NoNode

// Simulation types.
type (
	// Scenario fixes execution times and fault victims for one cycle.
	Scenario = sim.Scenario
	// RunResult is the outcome of executing one scenario.
	RunResult = sim.Result
	// ProcessOutcome records how a process ended in a simulated cycle.
	ProcessOutcome = sim.ProcessOutcome
	// RescheduleResult is the outcome (and cost profile) of the purely
	// online rescheduling comparator.
	RescheduleResult = sim.RescheduleResult
	// TraceEvent is one timestamped event of a simulated cycle.
	TraceEvent = sim.TraceEvent
	// TraceEventKind classifies trace events.
	TraceEventKind = sim.TraceEventKind
	// MCConfig parametrises a Monte-Carlo evaluation.
	MCConfig = sim.MCConfig
	// MCStats aggregates a Monte-Carlo evaluation.
	MCStats = sim.MCStats
	// GenConfig parametrises the random application generator.
	GenConfig = gen.Config
)

// Process kinds.
const (
	Hard = model.Hard
	Soft = model.Soft
)

// Simulated process outcomes.
const (
	// NotScheduled: dropped off-line or skipped after a switch.
	NotScheduled = sim.NotScheduled
	// Completed: ran to completion, possibly after re-execution.
	Completed = sim.Completed
	// AbandonedByFault: hit by a fault with no recovery budget left.
	AbandonedByFault = sim.AbandonedByFault
)

// NoProcess is the sentinel for "no process".
const NoProcess = model.NoProcess

// ErrUnschedulable is returned when no schedule can guarantee the hard
// deadlines under k faults.
var ErrUnschedulable = core.ErrUnschedulable

// UnschedulableError is the typed form of ErrUnschedulable: synthesis
// failures carry the offending process (NoProcess when the period itself is
// exceeded), the violated bound and the worst-case completion that violates
// it. errors.Is(err, ErrUnschedulable) keeps matching; errors.As extracts
// the detail.
type UnschedulableError = core.UnschedulableError

// Graceful-degradation errors. Malformed inputs to the runtime layer
// surface as typed errors instead of panics; errors.As extracts the
// detail.
type (
	// MalformedTreeError reports a tree that failed the structural audit
	// at dispatcher construction (out-of-range node IDs, missing
	// schedules, cyclic parent links, inconsistent guard segments).
	MalformedTreeError = runtime.MalformedTreeError
	// ScenarioSizeError reports a scenario whose per-process slices do
	// not match the application.
	ScenarioSizeError = runtime.ScenarioSizeError
	// SampleError reports a scenario-sampling request the application
	// cannot satisfy (fault count out of bounds, empty victim pool).
	SampleError = sim.SampleError
	// MCConfigError reports the MCConfig field an evaluation rejected
	// (non-positive Scenarios, negative Faults or Workers), carrying the
	// field name and the offending value.
	MCConfigError = sim.ConfigError
)

// Out-of-model containment types. A dispatcher built with WithEnvelope
// detects events the paper's fault model excludes — WCET overruns, faults
// beyond the bound k, mid-cycle time regressions — records them on
// RunResult.Violations, and applies the configured DegradePolicy. See
// internal/runtime for the exact detection and shedding semantics.
type (
	// DegradePolicy selects how an envelope reacts to the first
	// out-of-model event of a cycle.
	DegradePolicy = runtime.DegradePolicy
	// ViolationKind classifies one envelope event.
	ViolationKind = runtime.ViolationKind
	// ViolationEvent is one envelope event of a cycle (kind, process,
	// detection time, magnitude).
	ViolationEvent = runtime.ViolationEvent
	// EnvelopeConfig configures the containment layer for WithEnvelope.
	EnvelopeConfig = runtime.EnvelopeConfig
	// EnvelopeError is the typed error PolicyStrict returns when a cycle
	// leaves the fault model; its Events round-trip through JSON.
	EnvelopeError = runtime.EnvelopeError
)

// Degrade policies.
const (
	// PolicyStrict aborts the cycle with a typed *EnvelopeError.
	PolicyStrict = runtime.PolicyStrict
	// PolicyShedSoft drops remaining soft work and finishes the hard
	// processes on a precomputed emergency suffix schedule.
	PolicyShedSoft = runtime.PolicyShedSoft
	// PolicyBestEffort keeps dispatching and records the violations.
	PolicyBestEffort = runtime.PolicyBestEffort
)

// Envelope event kinds.
const (
	// WCETOverrun: an execution exceeded the process WCET.
	WCETOverrun = runtime.WCETOverrun
	// ExtraFault: a fault was consumed beyond the application bound k.
	ExtraFault = runtime.ExtraFault
	// BudgetExhausted: a process was abandoned out of recovery budget
	// (in-model, informational — recorded on every dispatcher).
	BudgetExhausted = runtime.BudgetExhausted
	// TimeRegression: an execution reported a negative duration.
	TimeRegression = runtime.TimeRegression
)

// WithEnvelope attaches the out-of-model containment layer to a
// dispatcher: detection of WCET overruns, >k faults and time regressions,
// plus the configured degrade policy. PolicyShedSoft precomputes the
// emergency hard-only suffix schedules at construction time, so the shed
// path stays allocation-free per cycle.
func WithEnvelope(cfg EnvelopeConfig) DispatcherOption { return runtime.WithEnvelope(cfg) }

// Chaos types. A chaos campaign adversarially proves the containment
// layer by injecting out-of-model scenarios (overruns, fault bursts
// beyond k, stuck processes, time regressions) through the real compiled
// dispatcher and scoring the containment contract on every cycle; see
// internal/chaos for the contract and determinism guarantees.
type (
	// ChaosConfig parametrises a chaos campaign (cycles, seed, policy,
	// injection probabilities and magnitudes, victim targeting, sink).
	ChaosConfig = chaos.Config
	// ChaosReport aggregates a campaign: per-kind event totals and the
	// contract scores (breaches, in-model misses, detection gaps,
	// panics), plus every per-cycle record. Reports are bit-identical
	// for a given seed across worker counts and reruns.
	ChaosReport = chaos.Report
	// ChaosCycleRecord is the deterministic record of one campaign cycle.
	ChaosCycleRecord = chaos.CycleRecord
	// ChaosCampaign is a compiled campaign, reusable across runs.
	ChaosCampaign = chaos.Campaign
	// ChaosConfigError reports the ChaosConfig field a campaign rejected,
	// carrying the field name and the offending value.
	ChaosConfigError = chaos.ConfigError
)

// NewChaosCampaign validates cfg and compiles tree with the envelope
// under test; the campaign can then be run repeatedly.
func NewChaosCampaign(tree *Tree, cfg ChaosConfig) (*ChaosCampaign, error) {
	return chaos.New(tree, cfg)
}

// RunChaos compiles and executes a chaos campaign against tree. The
// returned error is a validation error — containment findings (panics,
// breaches, misses) are scored on the report, never returned as errors.
// It is RunChaosContext with a background context.
func RunChaos(tree *Tree, cfg ChaosConfig) (*ChaosReport, error) {
	return RunChaosContext(context.Background(), tree, cfg)
}

// RunChaosContext is RunChaos honouring cancellation.
func RunChaosContext(ctx context.Context, tree *Tree, cfg ChaosConfig) (*ChaosReport, error) {
	return chaos.RunContext(ctx, tree, cfg)
}

// Certification types. Certify enumerates every fault pattern up to the
// bound, crossed with extreme execution-time corners, and executes all of
// it through the real compiled dispatcher; see internal/certify for the
// enumeration and canonicalisation details.
type (
	// CertifyConfig parameterises a certification run (fault bound,
	// workers, scenario budget, bisection depth, sink).
	CertifyConfig = certify.Config
	// CertifyReport summarises what a certification run explored: mode,
	// pattern/scenario counts, worst hard-deadline slack, and the
	// utility-minimising fault placement.
	CertifyReport = certify.Report
	// Counterexample is a concrete hard-deadline-missing execution found
	// by Certify: the exact scenario, the violated process and deadline,
	// and the tree path taken. appio can serialise it for ftsim -replay.
	Counterexample = certify.Counterexample
	// CounterexampleError wraps a Counterexample as the error Certify
	// returns when certification fails.
	CounterexampleError = certify.CounterexampleError
	// CertifyConfigError reports the CertifyConfig field a certification
	// rejected, carrying the field name and the offending value.
	CertifyConfigError = certify.ConfigError
)

// Observability types. A Sink receives counter increments and histogram
// samples from synthesis, dispatch and simulation; Metrics is the built-in
// atomic collector. Instrumentation never alters results: every tree,
// schedule and statistic is bit-identical with or without a sink.
type (
	// Sink consumes instrumentation events. Implementations must be safe
	// for concurrent use and should never block; see internal/obs for the
	// contract.
	Sink = obs.Sink
	// Counter identifies a monotonic event counter (e.g. dispatch cycles).
	Counter = obs.Counter
	// HistogramMetric identifies a value distribution (e.g. hard-deadline
	// slack per completed process).
	HistogramMetric = obs.Histogram
	// Metrics is the built-in Sink: fixed atomic counters and power-of-two
	// bucket histograms, allocation-free on the event path.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics collector,
	// keyed by the stable metric names.
	MetricsSnapshot = obs.Snapshot
	// DispatcherOption configures NewDispatcher (see WithSink).
	DispatcherOption = runtime.Option
)

// NopSink is a Sink that discards every event; passing NopSink{} anywhere
// a Sink is accepted is equivalent to passing nil.
type NopSink = obs.NopSink

// NewMetrics returns an empty metrics collector ready to be passed as the
// Sink of FTQSOptions, MCConfig, TrimConfig or WithSink.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WithSink routes a dispatcher's per-cycle events (cycles, switches, guard
// search depth, faults absorbed/abandoned, hard-deadline slack) to s. A nil
// or NopSink sink leaves the dispatcher uninstrumented; RunInto stays
// allocation-free either way.
func WithSink(s Sink) DispatcherOption { return runtime.WithSink(s) }

// MetricsHandler returns an http.Handler exposing m in Prometheus text
// format under /metrics, as JSON expvars under /debug/vars, and the pprof
// profiles under /debug/pprof/.
func MetricsHandler(m *Metrics) http.Handler { return obs.Handler(m) }

// ServeMetrics starts an HTTP server for MetricsHandler(m) on addr (":0"
// picks a free port) and returns the bound address and a shutdown function.
// The ftsim and ftexperiments -metrics-addr flags are thin wrappers over
// it.
func ServeMetrics(addr string, m *Metrics) (string, func() error, error) {
	return obs.Serve(addr, m)
}

// NewApplication creates an empty application with period T, fault bound k
// and default recovery overhead µ. Add processes and edges, then Validate.
func NewApplication(name string, period Time, k int, mu Time) *Application {
	return model.NewApplication(name, period, k, mu)
}

// Merge combines validated multi-rate applications into one application
// over their hyper-period (LCM of the periods), replicating activations
// with shifted releases, deadlines and utility functions.
func Merge(name string, k int, mu Time, graphs ...*Application) (*Application, error) {
	return model.Merge(name, k, mu, graphs...)
}

// StepUtility builds a staircase utility function: vs[i] up to and
// including ts[i], then 0 after the last step.
func StepUtility(ts []Time, vs []float64) (UtilityFunction, error) {
	return utility.NewStep(ts, vs)
}

// MustStepUtility is StepUtility that panics on invalid input.
func MustStepUtility(ts []Time, vs []float64) UtilityFunction {
	return utility.MustStep(ts, vs)
}

// LinearDropUtility builds a utility worth v0 until tStart, decaying
// linearly to zero at tEnd.
func LinearDropUtility(v0 float64, tStart, tEnd Time) (UtilityFunction, error) {
	return utility.NewLinearDrop(v0, tStart, tEnd)
}

// FTSS synthesises the static fault-tolerant schedule of §5.2.
func FTSS(app *Application) (*FSchedule, error) { return core.FTSS(app) }

// FTQS synthesises a quasi-static tree of at most opts.M schedules (§5.1).
// The synthesis fans candidate sub-schedule generation out over
// opts.Workers goroutines (default: one per CPU) and memoises identical
// suffix syntheses across the tree; the resulting tree is identical for
// every worker count. It is FTQSContext with a background context.
func FTQS(app *Application, opts FTQSOptions) (*Tree, error) {
	return FTQSContext(context.Background(), app, opts)
}

// FTQSContext is FTQS honouring cancellation: the coordinator checks ctx
// before each node expansion, so synthesis aborts within one expansion and
// returns ctx.Err() with all worker goroutines reaped.
func FTQSContext(ctx context.Context, app *Application, opts FTQSOptions) (*Tree, error) {
	return core.FTQSContext(ctx, app, opts)
}

// FTSF synthesises the paper's baseline: a value-maximal non-fault-tolerant
// schedule patched with recovery slack for the hard processes.
func FTSF(app *Application) (*FSchedule, error) { return baseline.FTSF(app) }

// VerifyTree statically audits a quasi-static tree: structural invariants,
// fault-budget consistency, and the safety of every switch guard (hard
// deadlines hold when a switch is taken at the guard's upper bound). Use
// it before deploying a tree that was stored, transferred or modified.
func VerifyTree(tree *Tree) error { return core.VerifyTree(tree) }

// OptimalSchedule computes the utility-optimal static f-schedule by exact
// dynamic programming, for release-free applications with at most
// optimal.MaxProcesses (20) processes — a quality yardstick for FTSS.
func OptimalSchedule(app *Application) (*FSchedule, float64, error) {
	res, err := optimal.Schedule(app)
	if err != nil {
		return nil, 0, err
	}
	return res.Schedule, res.Utility, nil
}

// ExpectedUtility evaluates the no-fault expected utility of a schedule
// under average execution times — the paper's static figure of merit.
func ExpectedUtility(app *Application, s *FSchedule) float64 {
	return schedule.ExpectedUtility(app, s)
}

// CheckSchedulable verifies the worst-case fault scenario of a schedule:
// every hard deadline and the period hold with up to k faults from start.
func CheckSchedulable(app *Application, entries []Entry, start Time, k int) error {
	return schedule.CheckSchedulable(app, entries, start, k)
}

// TimingReport renders a per-entry timing table (starts, finishes,
// worst-case completions under k faults, deadlines and laxities).
func TimingReport(app *Application, s *FSchedule, k int) string {
	return schedule.TimingReport(app, s, k)
}

// StaticTree wraps a static schedule as a one-node tree so it can be
// simulated by Run/MonteCarlo.
func StaticTree(app *Application, s *FSchedule) *Tree { return sim.StaticTree(app, s) }

// SampleScenario draws random execution times and fault victims. It
// returns a *SampleError when faults is outside [0, app.K()] or positive
// with an empty (non-nil) candidate pool.
func SampleScenario(app *Application, rng *rand.Rand, faults int, candidates []ProcessID) (Scenario, error) {
	return sim.Sample(app, rng, faults, candidates)
}

// Run executes one scenario against a tree with the online scheduler. It
// returns a *MalformedTreeError for a structurally broken tree and a
// *ScenarioSizeError for mis-sized scenario slices.
func Run(tree *Tree, sc Scenario) (RunResult, error) { return sim.Run(tree, sc) }

// NewDispatcher compiles a tree's switch guards into a binary-searchable
// dispatch table and returns a reusable, allocation-free online scheduler.
// The tree must not be mutated while the dispatcher is in use. Pass
// WithSink to instrument its cycles. A tree failing the structural audit
// (core.VerifyStructure) yields a *MalformedTreeError, never a panic.
func NewDispatcher(tree *Tree, opts ...DispatcherOption) (*Dispatcher, error) {
	return runtime.NewDispatcher(tree, opts...)
}

// MustNewDispatcher is NewDispatcher for trees known to be well-formed
// (freshly synthesised or already verified); it panics on a malformed
// tree.
func MustNewDispatcher(tree *Tree, opts ...DispatcherOption) *Dispatcher {
	return runtime.MustNewDispatcher(tree, opts...)
}

// Certify exhaustively certifies a tree against up to CertifyConfig.
// MaxFaults transient faults (default: the application bound k): every
// canonical fault pattern is crossed with extreme execution-time corners
// (BCET/WCET plus bisection-located behaviour boundaries) and executed
// through the real compiled dispatcher. It returns a report of what was
// explored and, when an execution misses a hard deadline, a
// *CounterexampleError carrying the exact scenario for replay with
// ftsim -replay. Results are identical for any worker count. It is
// CertifyContext with a background context.
func Certify(tree *Tree, cfg CertifyConfig) (CertifyReport, error) {
	return CertifyContext(context.Background(), tree, cfg)
}

// CertifyContext is Certify honouring cancellation, checked before every
// scenario; on cancellation ctx.Err() is returned.
func CertifyContext(ctx context.Context, tree *Tree, cfg CertifyConfig) (CertifyReport, error) {
	return certify.CertifyContext(ctx, tree, cfg)
}

// MonteCarlo evaluates a tree over cfg.Scenarios random scenarios on the
// batch evaluation engine: scenario blocks are spread over
// MCConfig.Workers goroutines and statistics stream into fixed
// accumulators, so throughput scales to millions of scenarios without
// per-scenario allocation and MCStats is bit-identical for any worker
// count (see docs/PERFORMANCE.md). It is MonteCarloContext with a
// background context.
func MonteCarlo(tree *Tree, cfg MCConfig) (MCStats, error) {
	return MonteCarloContext(context.Background(), tree, cfg)
}

// MonteCarloContext is MonteCarlo honouring cancellation: every worker
// checks ctx before each scenario block, so the evaluation unwinds within
// one block per worker and returns ctx.Err(); partial statistics are
// discarded.
func MonteCarloContext(ctx context.Context, tree *Tree, cfg MCConfig) (MCStats, error) {
	return sim.MonteCarloContext(ctx, tree, cfg)
}

// TrimConfig parametrises simulation-based arc trimming.
type TrimConfig = sim.TrimConfig

// TrimTree removes switch arcs whose measured effect on the mean utility
// is non-positive (paired Monte-Carlo replay), pruning nodes that become
// unreachable. An extension beyond the paper: interval partitioning prices
// arcs with an estimate, and trimming removes the marginal arcs that the
// estimate got wrong. Safety is unaffected. Returns the number of arcs
// removed. It is TrimTreeContext with a background context.
func TrimTree(tree *Tree, cfg TrimConfig) (int, error) {
	return TrimTreeContext(context.Background(), tree, cfg)
}

// TrimTreeContext is TrimTree honouring cancellation, checked before every
// scenario replay. On cancellation every already-disabled arc is restored —
// the tree is left exactly as passed in — and (0, ctx.Err()) is returned.
func TrimTreeContext(ctx context.Context, tree *Tree, cfg TrimConfig) (int, error) {
	return sim.TrimContext(ctx, tree, cfg)
}

// RunOnlineReschedule executes one scenario with the idealised purely
// online scheduler the paper argues against (§1): the remaining schedule
// is re-synthesised after every completion. It upper-bounds the utility a
// quasi-static tree can reach and reports the synthesis overhead the tree
// avoids.
func RunOnlineReschedule(app *Application, root *FSchedule, sc Scenario) RescheduleResult {
	return sim.RunOnlineReschedule(app, root, sc)
}

// Generate builds a random benchmark application (paper §6 setup).
func Generate(rng *rand.Rand, cfg GenConfig) (*Application, error) { return gen.Generate(rng, cfg) }

// DefaultGenConfig returns the paper's generator parameters for n
// processes.
func DefaultGenConfig(n int) GenConfig { return gen.Default(n) }

// CruiseController builds the 32-process vehicle cruise controller of the
// paper's case study (9 hard processes, k = 2, µ = 10% WCET).
func CruiseController() *Application { return apps.CruiseController() }

// PaperFig1 builds the paper's running example (Fig. 1 application).
func PaperFig1() *Application { return apps.Fig1() }

// PaperFig8 builds the paper's Fig. 8 application G2.
func PaperFig8() *Application { return apps.Fig8() }

// EncodeApplication writes an application as JSON.
func EncodeApplication(w io.Writer, app *Application) error {
	return appio.EncodeApplication(w, app)
}

// DecodeApplication reads and validates a JSON application.
func DecodeApplication(r io.Reader) (*Application, error) {
	return appio.DecodeApplication(r)
}

// WriteDOT renders the process graph in Graphviz format.
func WriteDOT(w io.Writer, app *Application) error { return appio.WriteDOT(w, app) }

// WriteTreeDOT renders a quasi-static tree in Graphviz format.
func WriteTreeDOT(w io.Writer, tree *Tree) error { return appio.WriteTreeDOT(w, tree) }

// WriteTree persists a quasi-static tree as JSON (paired with the
// application's JSON encoding; process references are by name).
func WriteTree(w io.Writer, tree *Tree) error { return appio.EncodeTree(w, tree) }

// WriteTreeCompact persists a quasi-static tree in the compact v2 format:
// interned process names, suffix-only schedules and a flat arc arena.
// ReadTree loads both formats transparently.
func WriteTreeCompact(w io.Writer, tree *Tree) error { return appio.EncodeTreeCompact(w, tree) }

// ReadTree loads a stored quasi-static tree and rebinds it to the
// application. Run VerifyTree on the result before trusting it.
func ReadTree(r io.Reader, app *Application) (*Tree, error) { return appio.DecodeTree(r, app) }

// RunTrace is Run with full event recording, for visualisation.
func RunTrace(tree *Tree, sc Scenario) (RunResult, []TraceEvent, error) {
	return sim.RunTrace(tree, sc)
}

// WriteGantt renders a recorded trace as a time-scaled ASCII Gantt chart.
func WriteGantt(w io.Writer, app *Application, events []TraceEvent, span Time, width int) error {
	return appio.WriteGantt(w, app, events, span, width)
}
