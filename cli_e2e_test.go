package ftsched_test

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
)

// TestCLIEndToEnd builds the real binaries and exercises the documented
// workflows: generate → schedule → simulate, fixtures, DOT output, and the
// failure paths. Skipped with -short.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	ftgen := build("ftgen")
	ftsched := build("ftsched")
	ftsim := build("ftsim")

	run := func(binary string, wantOK bool, args ...string) string {
		cmd := exec.Command(binary, args...)
		b, err := cmd.CombinedOutput()
		if wantOK && err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		if !wantOK && err == nil {
			t.Fatalf("%s %v: expected failure\n%s", filepath.Base(binary), args, b)
		}
		return string(b)
	}

	// Generate an application to a file.
	appFile := filepath.Join(bin, "app.json")
	out := run(ftgen, true, "-n", "14", "-seed", "3", "-o", appFile)
	if !strings.Contains(out, "generated") {
		t.Errorf("ftgen output: %q", out)
	}
	if fi, err := os.Stat(appFile); err != nil || fi.Size() == 0 {
		t.Fatalf("ftgen produced no file: %v", err)
	}

	// Schedule it with each algorithm.
	for _, algo := range []string{"ftss", "ftsf", "ftqs"} {
		out := run(ftsched, true, "-app", appFile, "-algo", algo, "-m", "6")
		if !strings.Contains(out, "gen-n14") {
			t.Errorf("ftsched %s output: %q", algo, out)
		}
	}

	// Fixture + verification + DOT.
	out = run(ftsched, true, "-fixture", "fig1", "-algo", "ftqs", "-m", "4", "-verify")
	if !strings.Contains(out, "verified") {
		t.Errorf("verify output missing: %q", out)
	}
	out = run(ftsched, true, "-fixture", "fig8", "-algo", "ftqs", "-m", "4", "-format", "dot")
	if !strings.Contains(out, "digraph") {
		t.Errorf("dot output: %q", out)
	}

	// Simulate with trace.
	out = run(ftsim, true, "-fixture", "fig1", "-m", "6", "-scenarios", "200", "-trace")
	for _, want := range []string{"FTQS", "FTSS", "norm%", "sample scenario"} {
		if !strings.Contains(out, want) {
			t.Errorf("ftsim output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "viol") && strings.Contains(out, " 1\n") {
		// Just a guard that the violation column exists; actual zero
		// violations are asserted by the harness internally.
		_ = out
	}

	// Failure paths exit non-zero.
	run(ftsched, false, "-fixture", "nope")
	run(ftsched, false, "-fixture", "fig1", "-algo", "weird")
	run(ftsim, false, "-app", filepath.Join(bin, "missing.json"))
	run(ftgen, false, "-n", "-3")

	// A negative worker count is rejected by MCConfig.Validate with the
	// typed field diagnostic, surfaced verbatim by the CLI.
	out = run(ftsim, false, "-fixture", "fig1", "-m", "4", "-scenarios", "100", "-workers", "-2")
	if !strings.Contains(out, "MCConfig.Workers must be non-negative (got -2)") {
		t.Errorf("negative -workers diagnostic missing:\n%s", out)
	}

	// The evaluation itself is worker-count invariant: the Monte-Carlo
	// table printed with one and with four workers must be byte-identical.
	mc1 := run(ftsim, true, "-fixture", "fig1", "-m", "6", "-scenarios", "500", "-workers", "1")
	mc4 := run(ftsim, true, "-fixture", "fig1", "-m", "6", "-scenarios", "500", "-workers", "4")
	if mc1 != mc4 {
		t.Errorf("-workers changed the evaluation output:\n1 worker:\n%s\n4 workers:\n%s", mc1, mc4)
	}

	// The README's "Command-line tools" section, verbatim (argument for
	// argument; binaries are prebuilt instead of `go run`). Run from the
	// temp dir so the documented relative path app.json resolves there.
	runIn := func(binary string, args ...string) string {
		cmd := exec.Command(binary, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		return string(b)
	}
	runIn(ftgen, "-n", "30", "-seed", "7", "-o", "app.json")
	serial := runIn(ftsched, "-app", "app.json", "-algo", "ftqs", "-m", "16")
	parallel := runIn(ftsched, "-app", "app.json", "-algo", "ftqs", "-m", "16", "-workers", "4")
	if !strings.Contains(serial, "quasi-static tree: 16 schedules") {
		t.Errorf("README ftqs command output: %q", serial)
	}
	// The -workers flag is documented as a pure wall-clock knob: the
	// printed tree must be byte-identical to the serial run.
	if serial != parallel {
		t.Errorf("-workers 4 changed the synthesised tree:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestChaosCLIEndToEnd runs the README's "Chaos campaigns" walkthrough
// verbatim (argument for argument; the binary is prebuilt instead of
// `go run`) and asserts the documented exit codes: 5 when hard misses
// trace only to out-of-model injection, 0 when clamping contains them,
// and 5 again when the exported cycle is replayed (out-of-model scenario,
// not a certification counterexample). Skipped with -short.
func TestChaosCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	ftsim := filepath.Join(bin, "ftsim")
	cmd := exec.Command("go", "build", "-o", ftsim, "./cmd/ftsim")
	cmd.Env = os.Environ()
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ftsim: %v\n%s", err, b)
	}

	run := func(wantExit int, args ...string) string {
		cmd := exec.Command(ftsim, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("ftsim %v: %v\n%s", args, err, b)
			}
			code = ee.ExitCode()
		}
		if code != wantExit {
			t.Fatalf("ftsim %v: exit %d, want %d\n%s", args, code, wantExit, b)
		}
		return string(b)
	}

	out := run(5, "-fixture", "fig8", "-chaos", "-chaos-seed", "42", "-policy", "shed-soft")
	for _, want := range []string{
		"chaos campaign: 1000 cycles, seed 42, policy shed-soft",
		"breaches 0, detection gaps 0, panics 0",
		"hard misses only under out-of-model injection",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
	rerun := run(5, "-fixture", "fig8", "-chaos", "-chaos-seed", "42", "-policy", "shed-soft")
	if out != rerun {
		t.Errorf("same seed produced different campaign output:\n%s\nvs\n%s", out, rerun)
	}

	out = run(0, "-fixture", "fig8", "-chaos", "-chaos-seed", "42", "-policy", "shed-soft", "-clamp")
	if !strings.Contains(out, "chaos: clean") || !strings.Contains(out, "misses:    hard 0") {
		t.Errorf("clamped campaign not clean:\n%s", out)
	}

	out = run(5, "-fixture", "fig8", "-chaos", "-chaos-seed", "42", "-ce-out", "bad-cycle.json")
	if !strings.Contains(out, "written to bad-cycle.json") {
		t.Errorf("ce-out output:\n%s", out)
	}
	if fi, err := os.Stat(filepath.Join(bin, "bad-cycle.json")); err != nil || fi.Size() == 0 {
		t.Fatalf("ce-out produced no file: %v", err)
	}

	out = run(5, "-fixture", "fig8", "-replay", "bad-cycle.json", "-policy", "shed-soft")
	for _, want := range []string{
		"scenario is out-of-model",
		"envelope event:",
		"hard violation reproduced:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}

	// Strict policy on the same campaign: typed aborts, no misses blamed
	// on the policy, still exit 5 (hard work left unrun is a miss, but an
	// out-of-model one).
	out = run(5, "-fixture", "fig8", "-chaos", "-chaos-seed", "42", "-policy", "strict")
	if !strings.Contains(out, "strict errors") || strings.Contains(out, "strict errors 0\n") {
		t.Errorf("strict campaign raised no typed errors:\n%s", out)
	}
}

// TestHeteroCLIEndToEnd runs the README's "Heterogeneous platforms"
// walkthrough verbatim (argument for argument; binaries are prebuilt
// instead of `go run`): generate a mapped application from a core spec,
// synthesise and verify a v3 tree, and evaluate it from the stored file.
// Skipped with -short.
func TestHeteroCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	ftgen := build("ftgen")
	ftsched := build("ftsched")
	ftsim := build("ftsim")

	run := func(binary string, args ...string) string {
		cmd := exec.Command(binary, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		return string(b)
	}

	run(ftgen, "-n", "12", "-seed", "5", "-core-spec", "lp:1:1:0.05,hp:2:3:0.15", "-o", "het.json")
	out := run(ftsched, "-app", "het.json", "-algo", "ftqs", "-m", "8", "-verify",
		"-tree-format", "compact", "-tree-out", "het-tree.json")
	if !strings.Contains(out, "tree verified") {
		t.Errorf("hetero synthesis output: %q", out)
	}
	data, err := os.ReadFile(filepath.Join(bin, "het-tree.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format":"ftsched-tree/v3"`) ||
		!strings.Contains(string(data), `"platform"`) {
		t.Errorf("stored mapped tree is not v3 with a platform:\n%.200s", data)
	}
	out = run(ftsim, "-app", "het.json", "-tree", "het-tree.json", "-scenarios", "20000", "-workers", "4")
	for _, want := range []string{"loaded and verified tree", "FTQS", "norm%"} {
		if !strings.Contains(out, want) {
			t.Errorf("hetero ftsim output missing %q:\n%s", want, out)
		}
	}
	// The documented shorthand: -cores 2 builds a uniform two-core platform.
	run(ftgen, "-n", "12", "-seed", "5", "-cores", "2", "-o", "uni.json")
	uni, err := os.ReadFile(filepath.Join(bin, "uni.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(uni), `"platform"`) {
		t.Errorf("-cores 2 application carries no platform:\n%.200s", uni)
	}
}

// TestRecoveryCLIEndToEnd runs the README's "Recovery models" walkthrough
// verbatim (argument for argument; binaries are prebuilt instead of
// `go run`): generate a checkpointing application, synthesise and verify
// a v4 tree, evaluate it from the stored file, and attach a model to a
// fixture via -recovery. Skipped with -short.
func TestRecoveryCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	ftgen := build("ftgen")
	ftsched := build("ftsched")
	ftsim := build("ftsim")

	run := func(binary string, args ...string) string {
		cmd := exec.Command(binary, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		return string(b)
	}

	run(ftgen, "-n", "12", "-seed", "7", "-recovery", "checkpoint:40:3:7", "-o", "cp.json")
	app, err := os.ReadFile(filepath.Join(bin, "cp.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(app), `"model": "checkpoint"`) {
		t.Errorf("generated application carries no checkpoint model:\n%.300s", app)
	}
	out := run(ftsched, "-app", "cp.json", "-algo", "ftqs", "-m", "8", "-verify",
		"-tree-format", "compact", "-tree-out", "cp-tree.json")
	if !strings.Contains(out, "tree verified") {
		t.Errorf("recovery synthesis output: %q", out)
	}
	tree, err := os.ReadFile(filepath.Join(bin, "cp-tree.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tree), `"format":"ftsched-tree/v4"`) ||
		!strings.Contains(string(tree), `"recovery"`) {
		t.Errorf("stored recovering tree is not v4 with a recovery model:\n%.200s", tree)
	}
	out = run(ftsim, "-app", "cp.json", "-tree", "cp-tree.json", "-scenarios", "20000", "-workers", "4")
	for _, want := range []string{"loaded and verified tree", "FTQS", "norm%"} {
		if !strings.Contains(out, want) {
			t.Errorf("recovery ftsim output missing %q:\n%s", want, out)
		}
	}
	// Attaching a model to a fixture on the command line.
	out = run(ftsim, "-fixture", "fig1", "-recovery", "checkpoint:40:3:7", "-m", "8", "-scenarios", "5000")
	if !strings.Contains(out, "paper-fig1") || !strings.Contains(out, "FTQS") {
		t.Errorf("fixture recovery ftsim output:\n%s", out)
	}
	// A malformed spec is a typed, actionable failure.
	cmd := exec.Command(ftsim, "-fixture", "fig1", "-recovery", "checkpoint:0:0:0")
	if b, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("checkpoint:0:0:0 accepted:\n%s", b)
	} else if !strings.Contains(string(b), "recovery") {
		t.Errorf("rejection does not name the recovery field:\n%s", b)
	}
}

// TestServeCLIEndToEnd runs the README's "Scheduling as a service"
// walkthrough verbatim (argument for argument; binaries are prebuilt
// instead of `go run`, and the listen address is an ephemeral port read
// back from ftserved's startup line instead of the documented 8433, so
// parallel test runs cannot collide). It asserts the documented
// contract: the remote FTQS table rows are byte-identical to a local
// run, ftload records the latency histogram to BENCH_serve.json, and a
// SIGTERM drain ends with "drained, bye" and exit 0. Skipped with
// -short.
func TestServeCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	ftserved := build("ftserved")
	ftsim := build("ftsim")
	ftload := build("ftload")

	// go run ./cmd/ftserved -addr 127.0.0.1:8433
	served := exec.Command(ftserved, "-addr", "127.0.0.1:0")
	stderr, err := served.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := served.Start(); err != nil {
		t.Fatalf("starting ftserved: %v", err)
	}
	defer served.Process.Kill()
	rd := bufio.NewReader(stderr)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("reading ftserved startup line: %v", err)
	}
	m := regexp.MustCompile(`on (http://[^/]+)/v1/`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("ftserved startup line: %q", line)
	}
	base := m[1]
	drained := make(chan string, 1)
	go func() {
		rest, _ := io.ReadAll(rd)
		drained <- string(rest)
	}()

	run := func(binary string, args ...string) string {
		cmd := exec.Command(binary, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		return string(b)
	}

	// go run ./cmd/ftsim -fixture fig1 -scenarios 2000 -remote <base>
	remote := run(ftsim, "-fixture", "fig1", "-scenarios", "2000", "-remote", base)
	for _, want := range []string{"FTQS tree:", "(remote " + base, "baselines (FTSS, FTSF) are local-only", "norm%"} {
		if !strings.Contains(remote, want) {
			t.Errorf("remote ftsim output missing %q:\n%s", want, remote)
		}
	}
	// The README promises the remote FTQS rows are byte-identical to a
	// local run's (default -m matches).
	local := run(ftsim, "-fixture", "fig1", "-scenarios", "2000")
	rows := 0
	tableRow := regexp.MustCompile(`^FTQS\s+\d+\s`)
	for _, l := range strings.Split(remote, "\n") {
		if tableRow.MatchString(l) {
			rows++
			if !strings.Contains(local, l+"\n") {
				t.Errorf("remote row not in local output:\n%q\nlocal:\n%s", l, local)
			}
		}
	}
	if rows == 0 {
		t.Errorf("no FTQS rows in remote output:\n%s", remote)
	}

	// go run ./cmd/ftload -addr <base> -devices 200 -requests 10 -batch 32 -out BENCH_serve.json
	out := run(ftload, "-addr", base, "-devices", "200", "-requests", "10", "-batch", "32", "-out", "BENCH_serve.json")
	for _, want := range []string{" ok, ", "0 errors", "scenarios/sec", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("ftload output missing %q:\n%s", want, out)
		}
	}
	bench, err := os.ReadFile(filepath.Join(bin, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"devices": 200`, `"scenarios_per_sec"`, `"p99"`, `"errors": 0`} {
		if !strings.Contains(string(bench), want) {
			t.Errorf("BENCH_serve.json missing %q:\n%s", want, bench)
		}
	}

	// SIGTERM drains and exits 0.
	if err := served.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	tail := <-drained
	if err := served.Wait(); err != nil {
		t.Fatalf("ftserved drain exit: %v\nstderr tail:\n%s", err, tail)
	}
	for _, want := range []string{"draining", "drained, bye"} {
		if !strings.Contains(tail, want) {
			t.Errorf("ftserved drain log missing %q:\n%s", want, tail)
		}
	}
}
