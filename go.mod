module ftsched

go 1.22
