package ftsched_test

import (
	"errors"
	"testing"

	"ftsched"
)

// The functional-option constructors must produce configs the engines
// accept unchanged, and reject bad values at construction time with the
// same typed errors the engines themselves return.

func TestNewMCConfig(t *testing.T) {
	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := ftsched.MustNewDispatcher(tree)

	var _ ftsched.MCOption = ftsched.MCFaults(1)
	cfg, err := ftsched.NewMCConfig(500,
		ftsched.MCFaults(1),
		ftsched.MCSeed(7),
		ftsched.MCWorkers(2),
		ftsched.MCSink(ftsched.NopSink{}),
		ftsched.MCDispatcher(d),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scenarios != 500 || cfg.Faults != 1 || cfg.Seed != 7 || cfg.Workers != 2 || cfg.Dispatcher != d {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// The constructed config evaluates identically to a literal one.
	want, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 500, Faults: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ftsched.MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("constructed config diverges:\n got %+v\nwant %+v", got, want)
	}

	var mcErr *ftsched.MCConfigError
	if _, err := ftsched.NewMCConfig(0); !errors.As(err, &mcErr) || mcErr.Field != "Scenarios" {
		t.Fatalf("NewMCConfig(0) = %v, want *MCConfigError on Scenarios", err)
	}
}

func TestNewCertifyConfig(t *testing.T) {
	var _ ftsched.CertifyOption = ftsched.CertifySink(nil)
	cfg, err := ftsched.NewCertifyConfig(
		ftsched.CertifyMaxFaults(1),
		ftsched.CertifyWorkers(2),
		ftsched.CertifyBudget(10000),
		ftsched.CertifyMaxBoundaries(2),
		ftsched.CertifySink(ftsched.NopSink{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxFaults != 1 || cfg.Workers != 2 || cfg.Budget != 10000 || cfg.MaxBoundaries != 2 {
		t.Fatalf("options not applied: %+v", cfg)
	}

	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ftsched.Certify(tree, cfg); err != nil {
		t.Fatalf("constructed config rejected by Certify: %v", err)
	}

	var cErr *ftsched.CertifyConfigError
	if _, err := ftsched.NewCertifyConfig(ftsched.CertifyBudget(-1)); !errors.As(err, &cErr) || cErr.Field != "Budget" {
		t.Fatalf("CertifyBudget(-1) = %v, want *CertifyConfigError on Budget", err)
	}
}

func TestNewChaosConfig(t *testing.T) {
	var _ ftsched.ChaosOption = ftsched.ChaosClamp()
	cfg, err := ftsched.NewChaosConfig(50,
		ftsched.ChaosSeed(42),
		ftsched.ChaosWorkers(2),
		ftsched.ChaosPolicy(ftsched.PolicyShedSoft),
		ftsched.ChaosClamp(),
		ftsched.ChaosBaseFaults(1),
		ftsched.ChaosOverruns(0.3, 2.0),
		ftsched.ChaosBursts(0.2, 2),
		ftsched.ChaosStuck(0.1),
		ftsched.ChaosRegressions(0.1),
		ftsched.ChaosCorrelated(),
		ftsched.ChaosSoftTargetsOnly(),
		ftsched.ChaosSink(ftsched.NopSink{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Policy != ftsched.PolicyShedSoft || !cfg.Clamp ||
		cfg.OverrunFactor != 2.0 || cfg.ExtraFaults != 2 || !cfg.Correlated || !cfg.SoftOnly {
		t.Fatalf("options not applied: %+v", cfg)
	}

	app := ftsched.PaperFig8()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ftsched.RunChaos(tree, cfg)
	if err != nil {
		t.Fatalf("constructed config rejected by RunChaos: %v", err)
	}
	if rep.Cycles != 50 {
		t.Fatalf("campaign ran %d cycles, want 50", rep.Cycles)
	}

	var chErr *ftsched.ChaosConfigError
	if _, err := ftsched.NewChaosConfig(100, ftsched.ChaosOverruns(0.5, 1.0)); !errors.As(err, &chErr) || chErr.Field != "OverrunFactor" {
		t.Fatalf("ChaosOverruns(0.5, 1.0) = %v, want *ChaosConfigError on OverrunFactor", err)
	}
	if _, err := ftsched.NewChaosConfig(0); !errors.As(err, &chErr) || chErr.Field != "Cycles" {
		t.Fatalf("NewChaosConfig(0) = %v, want *ChaosConfigError on Cycles", err)
	}
}
