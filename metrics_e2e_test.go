package ftsched_test

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpointEndToEnd builds the real ftsim binary, runs it with
// -metrics-addr on an ephemeral port, and scrapes the live endpoints while
// the simulation is still running: the Prometheus text page, the expvar
// JSON, and a pprof handler. Skipped with -short.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and serves HTTP")
	}
	bin := filepath.Join(t.TempDir(), "ftsim")
	if b, err := exec.Command("go", "build", "-o", bin, "./cmd/ftsim").CombinedOutput(); err != nil {
		t.Fatalf("building ftsim: %v\n%s", err, b)
	}

	// A scenario count large enough that the process is still simulating
	// while the test scrapes; it is killed afterwards.
	cmd := exec.Command(bin,
		"-fixture", "cc", "-m", "16", "-scenarios", "5000000",
		"-metrics-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The address line is printed before any work starts.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		re := regexp.MustCompile(`metrics: http://([^/]+)/metrics`)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				return
			}
		}
		close(addrCh)
	}()
	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok {
			t.Fatal("ftsim exited without printing the metrics address")
		}
		addr = a
	case <-time.After(30 * time.Second):
		t.Fatal("no metrics address within 30s")
	}

	get := func(path string) string {
		t.Helper()
		client := http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# HELP ftsched_ftqs_nodes_expanded_total",
		"# TYPE ftsched_dispatch_cycles_total counter",
		"ftsched_montecarlo_utility_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%.600s", want, metrics)
		}
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "ftsched") {
		t.Errorf("/debug/vars missing ftsched:\n%.400s", vars)
	}
	if prof := get("/debug/pprof/cmdline"); !strings.Contains(prof, "ftsim") {
		t.Errorf("/debug/pprof/cmdline unexpected: %q", prof)
	}
}
