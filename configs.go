package ftsched

// Validated config constructors. The literal-struct forms (MCConfig{...},
// CertifyConfig{...}, ChaosConfig{...}) remain fully supported — every
// engine entry point applies the same Validate — but these constructors
// surface invalid values at construction time with the typed
// *MCConfigError / *CertifyConfigError / *ChaosConfigError the engines
// return, so misconfigurations fail where they are written rather than
// where they are run. ftserved request decoding applies the identical
// Validate methods to wire payloads, so a config rejected here is rejected
// with the same field diagnostics over the API.

// MCOption configures NewMCConfig.
type MCOption func(*MCConfig)

// MCFaults fixes the injected fault count per scenario (default 0).
func MCFaults(n int) MCOption { return func(c *MCConfig) { c.Faults = n } }

// MCSeed fixes the scenario-sampling seed (default 0; statistics are
// bit-identical for a given seed across worker counts).
func MCSeed(seed int64) MCOption { return func(c *MCConfig) { c.Seed = seed } }

// MCWorkers sets the evaluation goroutines (default: one per CPU).
func MCWorkers(n int) MCOption { return func(c *MCConfig) { c.Workers = n } }

// MCSink routes evaluation instrumentation to s.
func MCSink(s Sink) MCOption { return func(c *MCConfig) { c.Sink = s } }

// MCDispatcher evaluates through a pre-compiled dispatcher instead of
// compiling one per call; it must have been compiled from the same tree
// the evaluation runs against.
func MCDispatcher(d *Dispatcher) MCOption { return func(c *MCConfig) { c.Dispatcher = d } }

// NewMCConfig builds a validated Monte-Carlo configuration: scenarios per
// evaluation plus options. Invalid values return the typed *MCConfigError
// naming the offending field; the returned config is normalised (Workers 0
// resolved to the CPU count).
func NewMCConfig(scenarios int, opts ...MCOption) (MCConfig, error) {
	cfg := MCConfig{Scenarios: scenarios}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Validate()
}

// CertifyOption configures NewCertifyConfig.
type CertifyOption func(*CertifyConfig)

// CertifyMaxFaults bounds the certified fault count (default: the
// application bound k).
func CertifyMaxFaults(n int) CertifyOption { return func(c *CertifyConfig) { c.MaxFaults = n } }

// CertifyWorkers sets the certification goroutines (default: one per CPU;
// the verdict and report are identical for any value).
func CertifyWorkers(n int) CertifyOption { return func(c *CertifyConfig) { c.Workers = n } }

// CertifyBudget caps the exhaustive scenario budget before certification
// falls back to corner sampling.
func CertifyBudget(n int64) CertifyOption { return func(c *CertifyConfig) { c.Budget = n } }

// CertifyMaxBoundaries bounds the bisection-located behaviour boundaries
// explored per process.
func CertifyMaxBoundaries(n int) CertifyOption {
	return func(c *CertifyConfig) { c.MaxBoundaries = n }
}

// CertifySink routes certification instrumentation to s.
func CertifySink(s Sink) CertifyOption { return func(c *CertifyConfig) { c.Sink = s } }

// NewCertifyConfig builds a validated certification configuration. Invalid
// values return the typed *CertifyConfigError naming the offending field;
// the returned config is normalised (zero Workers, Budget and
// MaxBoundaries resolved to their defaults).
func NewCertifyConfig(opts ...CertifyOption) (CertifyConfig, error) {
	var cfg CertifyConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Validate()
}

// ChaosOption configures NewChaosConfig.
type ChaosOption func(*ChaosConfig)

// ChaosSeed fixes the campaign seed (reports are bit-identical for a given
// seed across worker counts).
func ChaosSeed(seed int64) ChaosOption { return func(c *ChaosConfig) { c.Seed = seed } }

// ChaosWorkers sets the campaign goroutines (default: one per CPU).
func ChaosWorkers(n int) ChaosOption { return func(c *ChaosConfig) { c.Workers = n } }

// ChaosPolicy selects the degrade policy under test (default
// PolicyStrict, the zero value; campaigns usually want PolicyShedSoft).
func ChaosPolicy(p DegradePolicy) ChaosOption { return func(c *ChaosConfig) { c.Policy = p } }

// ChaosClamp truncates injected out-of-model durations at WCET (watchdog
// semantics).
func ChaosClamp() ChaosOption { return func(c *ChaosConfig) { c.Clamp = true } }

// ChaosBaseFaults sets the in-model faults injected every cycle before any
// out-of-model burst.
func ChaosBaseFaults(n int) ChaosOption { return func(c *ChaosConfig) { c.BaseFaults = n } }

// ChaosOverruns injects WCET overruns: per-cycle probability and the
// overrun duration as a multiple of WCET (> 1).
func ChaosOverruns(prob, factor float64) ChaosOption {
	return func(c *ChaosConfig) { c.OverrunProb, c.OverrunFactor = prob, factor }
}

// ChaosBursts injects fault bursts beyond the bound k: per-cycle
// probability and the extra faults per burst (> 0).
func ChaosBursts(prob float64, extra int) ChaosOption {
	return func(c *ChaosConfig) { c.BurstProb, c.ExtraFaults = prob, extra }
}

// ChaosStuck injects stuck processes — the victim's execution consumes
// the whole period, an extreme overrun — with the given per-cycle
// probability.
func ChaosStuck(prob float64) ChaosOption { return func(c *ChaosConfig) { c.StuckProb = prob } }

// ChaosRegressions injects negative-duration time regressions with the
// given per-cycle probability.
func ChaosRegressions(prob float64) ChaosOption {
	return func(c *ChaosConfig) { c.RegressionProb = prob }
}

// ChaosCorrelated aims a whole fault burst at one victim instead of
// spreading it.
func ChaosCorrelated() ChaosOption { return func(c *ChaosConfig) { c.Correlated = true } }

// ChaosSoftTargetsOnly restricts injection victims to soft processes.
func ChaosSoftTargetsOnly() ChaosOption { return func(c *ChaosConfig) { c.SoftOnly = true } }

// ChaosSink routes campaign instrumentation to s.
func ChaosSink(s Sink) ChaosOption { return func(c *ChaosConfig) { c.Sink = s } }

// NewChaosConfig builds a validated chaos-campaign configuration: cycles
// per campaign plus options. Invalid values return the typed
// *ChaosConfigError naming the offending field; the returned config is
// normalised (Workers 0 resolved to the CPU count).
func NewChaosConfig(cycles int, opts ...ChaosOption) (ChaosConfig, error) {
	cfg := ChaosConfig{Cycles: cycles}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Validate()
}
