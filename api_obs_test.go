package ftsched_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ftsched"
)

// countingSink is a minimal third-party Sink implementation: the facade's
// Sink, Counter and HistogramMetric aliases are all an importer needs.
type countingSink struct {
	adds, observes int64
}

func (s *countingSink) Add(_ ftsched.Counter, delta int64)             { s.adds += delta }
func (s *countingSink) Observe(h ftsched.HistogramMetric, v int64)     { s.ObserveN(h, v, 1) }
func (s *countingSink) ObserveN(_ ftsched.HistogramMetric, _, n int64) { s.observes += n }

// TestFacadeObservability drives the whole observability surface through
// the facade: a collector fed by synthesis, dispatch, Monte-Carlo and
// trimming, exported over HTTP, with results bit-identical to an
// uninstrumented run.
func TestFacadeObservability(t *testing.T) {
	app := ftsched.CruiseController()
	plainTree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}

	m := ftsched.NewMetrics()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 16, Sink: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree.Nodes, plainTree.Nodes) || !reflect.DeepEqual(tree.Arcs, plainTree.Arcs) {
		t.Error("sink changed the synthesised tree")
	}

	// One dispatcher, explicitly instrumented, reused by the evaluation.
	d := ftsched.MustNewDispatcher(tree, ftsched.WithSink(m))
	cfg := ftsched.MCConfig{Scenarios: 300, Faults: 1, Seed: 11, Dispatcher: d, Sink: m}
	st, err := ftsched.MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 300, Faults: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, plain) {
		t.Error("instrumentation changed the Monte-Carlo statistics")
	}

	if _, err := ftsched.TrimTree(tree, ftsched.TrimConfig{Scenarios: 20, Seed: 2, Sink: m}); err != nil {
		t.Fatal(err)
	}

	var snap ftsched.MetricsSnapshot = m.Snapshot()
	for _, name := range []string{
		"ftsched_ftqs_nodes_expanded_total",
		"ftsched_dispatch_cycles_total",
		"ftsched_montecarlo_scenarios_total",
		"ftsched_trim_arcs_evaluated_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s not populated", name)
		}
	}
	if snap.Histograms["ftsched_montecarlo_utility"].Count == 0 {
		t.Error("utility histogram not populated")
	}

	// HTTP export: Prometheus text, expvar JSON, pprof.
	srv := httptest.NewServer(ftsched.MetricsHandler(m))
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "ftsched_dispatch_cycles_total") {
		t.Errorf("/metrics missing dispatch counter:\n%.400s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "ftsched") {
		t.Errorf("/debug/vars missing ftsched var:\n%.400s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}

	// ServeMetrics binds a real listener and shuts down cleanly.
	addr, shutdown, err := ftsched.ServeMetrics("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}

	// A NopSink behaves like no sink at all; a custom Sink receives events.
	if _, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 50, Seed: 1, Sink: ftsched.NopSink{}}); err != nil {
		t.Fatal(err)
	}
	cs := &countingSink{}
	var opt ftsched.DispatcherOption = ftsched.WithSink(cs)
	_ = ftsched.MustNewDispatcher(tree, opt)
	if _, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 50, Seed: 1, Sink: cs}); err != nil {
		t.Fatal(err)
	}
	if cs.adds == 0 || cs.observes == 0 {
		t.Errorf("custom sink saw adds=%d observes=%d", cs.adds, cs.observes)
	}
}

// TestFacadeContextEntryPoints exercises the context-aware variants and the
// typed unschedulability error through the facade alone.
func TestFacadeContextEntryPoints(t *testing.T) {
	app := ftsched.CruiseController()
	ctx := context.Background()
	tree, err := ftsched.FTQSContext(ctx, app, ftsched.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ftsched.MonteCarloContext(ctx, tree, ftsched.MCConfig{Scenarios: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ftsched.TrimTreeContext(ctx, tree, ftsched.TrimConfig{Scenarios: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ftsched.FTQSContext(cancelled, app, ftsched.FTQSOptions{M: 12}); !errors.Is(err, context.Canceled) {
		t.Errorf("FTQSContext: %v, want context.Canceled", err)
	}
	if _, err := ftsched.MonteCarloContext(cancelled, tree, ftsched.MCConfig{Scenarios: 100}); !errors.Is(err, context.Canceled) {
		t.Errorf("MonteCarloContext: %v, want context.Canceled", err)
	}
	if _, err := ftsched.TrimTreeContext(cancelled, tree, ftsched.TrimConfig{Scenarios: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("TrimTreeContext: %v, want context.Canceled", err)
	}

	// Typed unschedulability: the sentinel still matches, the detail is
	// extractable.
	bad := ftsched.NewApplication("bad", 1000, 2, 10)
	bad.AddProcess(ftsched.Process{Name: "H", Kind: ftsched.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := bad.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err = ftsched.FTQS(bad, ftsched.FTQSOptions{M: 4})
	if !errors.Is(err, ftsched.ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
	var ue *ftsched.UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnschedulableError", err)
	}
	if ue.Process == ftsched.NoProcess || ue.WorstCase <= ue.Deadline {
		t.Errorf("detail = %+v", ue)
	}
}
