// Package client is the Go client of the ftserved scheduling service:
// typed wrappers over the ftsched-api/v1 wire contract (internal/serveapi)
// used by the command-line tools' remote modes (ftsim -remote, ftload) and
// available to embedders that talk to a shared ftserved process instead of
// linking the engines.
//
// Every non-2xx response decodes into the typed *serveapi.Error the server
// guarantees, so callers branch on Kind (rate_limited, overloaded,
// draining, unknown_tree, ...) exactly like the admission contract
// documents — transport failures are the only other error class.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ftsched/internal/serveapi"
)

// Client talks to one ftserved base URL. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base   string
	tenant string
	httpc  *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithTenant sets the tenant header sent with every request; unset means
// the server's default tenant.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// WithHTTPClient replaces the underlying http.Client (timeouts, proxies,
// connection pools). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// New builds a client for an ftserved base URL such as
// "http://127.0.0.1:8433".
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, httpc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// post issues one API call: marshal, send, decode — non-2xx bodies decode
// into the typed wire error.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.tenant != "" {
		hreq.Header.Set(serveapi.TenantHeader, c.tenant)
	}
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if hresp.StatusCode/100 != 2 {
		var er serveapi.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Err.Kind == "" {
			// The typed-error contract says this cannot happen against a
			// real ftserved; surface whatever intermediary produced it.
			return fmt.Errorf("client: %s: http %d: %.200s", path, hresp.StatusCode, data)
		}
		werr := er.Err
		return &werr
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Synthesize compiles (or fetches from the server cache) the quasi-static
// tree for an application.
func (c *Client) Synthesize(ctx context.Context, req serveapi.SynthesizeRequest) (*serveapi.SynthesizeResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.SynthesizeResponse
	if err := c.post(ctx, "/v1/synthesize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Eval runs a Monte-Carlo evaluation against a compiled tree.
func (c *Client) Eval(ctx context.Context, req serveapi.EvalRequest) (*serveapi.EvalResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.EvalResponse
	if err := c.post(ctx, "/v1/eval", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Certify certifies a compiled tree; a failed certification is a 200 with
// Certified false and the replayable counterexample, not an error.
func (c *Client) Certify(ctx context.Context, req serveapi.CertifyRequest) (*serveapi.CertifyResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.CertifyResponse
	if err := c.post(ctx, "/v1/certify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Chaos runs a chaos campaign against a compiled tree.
func (c *Client) Chaos(ctx context.Context, req serveapi.ChaosRequest) (*serveapi.ChaosResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.ChaosResponse
	if err := c.post(ctx, "/v1/chaos", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Dispatch executes a batch of operation cycles through the compiled
// dispatcher and returns the positional per-cycle outcomes.
func (c *Client) Dispatch(ctx context.Context, req serveapi.DispatchRequest) (*serveapi.DispatchResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.DispatchResponse
	if err := c.post(ctx, "/v1/dispatch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reload hot-recompiles the tree behind a key and swaps it in atomically.
func (c *Client) Reload(ctx context.Context, req serveapi.ReloadRequest) (*serveapi.ReloadResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.ReloadResponse
	if err := c.post(ctx, "/v1/reload", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the server health summary.
func (c *Client) Health(ctx context.Context) (*serveapi.HealthResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: healthz: %w", err)
	}
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: healthz: %w", err)
	}
	defer hresp.Body.Close()
	var resp serveapi.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: decoding healthz: %w", err)
	}
	return &resp, nil
}
