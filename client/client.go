// Package client is the Go client of the ftserved scheduling service:
// typed wrappers over the ftsched-api/v1 wire contract (internal/serveapi)
// used by the command-line tools' remote modes (ftsim -remote, ftload) and
// available to embedders that talk to a shared ftserved process instead of
// linking the engines.
//
// Every non-2xx response decodes into the typed *serveapi.Error the server
// guarantees, so callers branch on Kind (rate_limited, overloaded,
// draining, unknown_tree, ...) exactly like the admission contract
// documents. Failures below the contract — connection resets, truncated
// or corrupted bodies, per-attempt timeouts — surface as *TransportError.
//
// With a RetryPolicy (see WithRetryPolicy / DefaultRetryPolicy) the
// client heals transient failures itself: capped exponential backoff
// with full jitter over retryable wire errors (rate_limited, overloaded,
// draining — honoring their RetryAfterMillis) and all transport errors,
// plus a per-endpoint circuit breaker with half-open probing. Calls that
// stay retryable to the end return a *RetryExhaustedError carrying the
// per-attempt trace; non-retryable errors return bare on first sight.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
)

// DefaultRequestTimeout bounds a single HTTP attempt when the caller
// does not supply an http.Client of their own. A hung server then
// surfaces as a retryable *TransportError instead of blocking forever.
const DefaultRequestTimeout = 30 * time.Second

// Client talks to one ftserved base URL. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base   string
	tenant string
	httpc  *http.Client
	retry  RetryPolicy
	sink   obs.Sink

	mu       sync.Mutex
	breakers map[string]*breaker

	// Injection points for deterministic tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
	rand  func() float64
}

// Option configures a Client.
type Option func(*Client)

// WithTenant sets the tenant header sent with every request; unset means
// the server's default tenant.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// WithHTTPClient replaces the underlying http.Client (timeouts, proxies,
// connection pools). The default is a client with DefaultRequestTimeout.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetryPolicy enables self-healing under the given policy (unset
// backoff knobs are defaulted). Without this option the client makes
// exactly one attempt per call.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithMetrics routes the Client* obs counters and histograms to a sink
// (e.g. *obs.Metrics). The default discards them.
func WithMetrics(sink obs.Sink) Option { return func(c *Client) { c.sink = sink } }

// New builds a client for an ftserved base URL such as
// "http://127.0.0.1:8433".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:     base,
		httpc:    &http.Client{Timeout: DefaultRequestTimeout},
		sink:     obs.NopSink{},
		breakers: make(map[string]*breaker),
		now:      time.Now,
		sleep:    sleepCtx,
		rand:     jitter,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// post issues one API call under the retry policy: marshal once, then
// attempt (send, decode) as often as the policy allows — non-2xx bodies
// decode into the typed wire error, everything below the contract
// becomes a *TransportError.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	return c.doRetry(ctx, path, func() error {
		return c.attempt(ctx, path, body, resp)
	})
}

// attempt performs one try of an API call against a fresh body reader.
func (c *Client) attempt(ctx context.Context, path string, body []byte, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.tenant != "" {
		hreq.Header.Set(serveapi.TenantHeader, c.tenant)
	}
	if deadline, ok := ctx.Deadline(); ok {
		// Ship the caller's remaining budget so the server can cancel
		// engine work it cannot answer in time (see serveapi.DeadlineHeader).
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			hreq.Header.Set(serveapi.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's own context expired or was canceled: not a
			// server fault, never retried.
			return fmt.Errorf("client: %s: %w", path, ctx.Err())
		}
		// Connection refused/reset or the per-attempt http.Client
		// timeout: below the wire contract, safe to retry.
		return &TransportError{Path: path, Err: err}
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("client: reading %s response: %w", path, ctx.Err())
		}
		// Connection reset mid-body.
		return &TransportError{Path: path, Err: fmt.Errorf("reading response: %w", err)}
	}
	if hresp.StatusCode/100 != 2 {
		var er serveapi.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Err.Kind == "" {
			// The typed-error contract says a real ftserved cannot
			// produce this, so treat it as wire damage (or an
			// intermediary) and let the policy retry it.
			return &TransportError{Path: path,
				Err: fmt.Errorf("http %d with untyped body: %.200s", hresp.StatusCode, data)}
		}
		werr := er.Err
		return &werr
	}
	if err := json.Unmarshal(data, resp); err != nil {
		// Truncated or corrupted 2xx body: the response is lost but the
		// SHA-256 tree cache makes the re-ask idempotent.
		return &TransportError{Path: path, Err: fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// Synthesize compiles (or fetches from the server cache) the quasi-static
// tree for an application.
func (c *Client) Synthesize(ctx context.Context, req serveapi.SynthesizeRequest) (*serveapi.SynthesizeResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.SynthesizeResponse
	if err := c.post(ctx, "/v1/synthesize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Eval runs a Monte-Carlo evaluation against a compiled tree.
func (c *Client) Eval(ctx context.Context, req serveapi.EvalRequest) (*serveapi.EvalResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.EvalResponse
	if err := c.post(ctx, "/v1/eval", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Certify certifies a compiled tree; a failed certification is a 200 with
// Certified false and the replayable counterexample, not an error.
func (c *Client) Certify(ctx context.Context, req serveapi.CertifyRequest) (*serveapi.CertifyResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.CertifyResponse
	if err := c.post(ctx, "/v1/certify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Chaos runs a chaos campaign against a compiled tree.
func (c *Client) Chaos(ctx context.Context, req serveapi.ChaosRequest) (*serveapi.ChaosResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.ChaosResponse
	if err := c.post(ctx, "/v1/chaos", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Dispatch executes a batch of operation cycles through the compiled
// dispatcher and returns the positional per-cycle outcomes.
func (c *Client) Dispatch(ctx context.Context, req serveapi.DispatchRequest) (*serveapi.DispatchResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.DispatchResponse
	if err := c.post(ctx, "/v1/dispatch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reload hot-recompiles the tree behind a key and swaps it in atomically.
func (c *Client) Reload(ctx context.Context, req serveapi.ReloadRequest) (*serveapi.ReloadResponse, error) {
	req.Format = serveapi.FormatV1
	var resp serveapi.ReloadResponse
	if err := c.post(ctx, "/v1/reload", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the server health summary.
func (c *Client) Health(ctx context.Context) (*serveapi.HealthResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: healthz: %w", err)
	}
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: healthz: %w", err)
	}
	defer hresp.Body.Close()
	var resp serveapi.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: decoding healthz: %w", err)
	}
	return &resp, nil
}
