package client

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"ftsched/internal/appio"
	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/serve"
	"ftsched/internal/serveapi"
)

// TestRecoveryRoundTripsThroughClient: a recovering application travels
// through the typed client unchanged — it derives its own SHA-256 tree key
// (distinct from the canonical application's) and evaluates clean by key
// reference.
func TestRecoveryRoundTripsThroughClient(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()

	encode := func(app *model.Application) []byte {
		var buf bytes.Buffer
		if err := appio.EncodeApplication(&buf, app); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := apps.Fig1()
	cp, err := base.WithRecovery(model.CheckpointModel(40, 3, 7))
	if err != nil {
		t.Fatal(err)
	}

	synth := func(app *model.Application) *serveapi.SynthesizeResponse {
		resp, err := c.Synthesize(ctx, serveapi.SynthesizeRequest{
			Format: serveapi.FormatV1, App: encode(app),
			Options: serveapi.FTQSOptionsJSON{M: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	canonical := synth(base)
	recovering := synth(cp)
	if canonical.TreeKey == recovering.TreeKey {
		t.Fatalf("recovery model not part of the tree key: %s", canonical.TreeKey)
	}

	eval, err := c.Eval(ctx, serveapi.EvalRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: recovering.TreeKey},
		Config:  serveapi.MCConfigJSON{Scenarios: 400, Faults: 1, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eval.Stats.HardViolations != 0 || eval.Stats.MeanRecoveries == 0 {
		t.Fatalf("wire evaluation under checkpoint: %+v", eval.Stats)
	}
}
