package client

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
)

// RetryPolicy shapes the client's self-healing behavior: capped
// exponential backoff with full jitter around retryable failures, plus a
// per-endpoint circuit breaker that fails fast while a backend is known
// to be sick and probes it half-open after a cooldown.
//
// The zero value means "no retries, no breaker" (one attempt, exactly
// the pre-resilience client). DefaultRetryPolicy is the recommended
// starting point; withDefaults fills unset knobs of a partially
// specified policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<=1 means no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the backoff budget for
	// attempt n (0-based retry count) is BaseDelay·Multiplier^n, capped
	// at MaxDelay, and the actual sleep is uniform in [0, budget) —
	// "full jitter". A typed error's RetryAfterMillis floors the sleep.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (defaults to 2).
	Multiplier float64
	// BreakerThreshold opens an endpoint's breaker after this many
	// consecutive transport-level failures (0 disables the breaker).
	// Typed wire errors never trip the breaker: a server answering 429s
	// is sick but alive, and its RetryAfterMillis is the better signal.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// letting a single half-open probe through.
	BreakerCooldown time.Duration
}

// DefaultRetryPolicy is the policy CLIs use unless told otherwise:
// 5 attempts, 25ms–2s full-jitter backoff, breaker at 5 consecutive
// transport failures with a 500ms cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      5,
		BaseDelay:        25 * time.Millisecond,
		MaxDelay:         2 * time.Second,
		Multiplier:       2,
		BreakerThreshold: 5,
		BreakerCooldown:  500 * time.Millisecond,
	}
}

// withDefaults fills unset backoff knobs so a partially specified policy
// (say, only MaxAttempts) behaves sanely.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	return p
}

// backoff returns the jittered sleep before retry n (0-based), flooring
// at the server's RetryAfterMillis hint when one was given.
func (p RetryPolicy) backoff(n int, retryAfter time.Duration, rnd func() float64) time.Duration {
	budget := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(n))
	if max := float64(p.MaxDelay); budget > max {
		budget = max
	}
	wait := time.Duration(rnd() * budget)
	if wait < retryAfter {
		wait = retryAfter
	}
	return wait
}

// RetryableKind reports whether a typed wire-error kind is safe to retry:
// the request was refused without side effects (admission control,
// drain) — never validation or semantic failures, which would fail the
// same way forever. In particular invalid_config is never retried.
func RetryableKind(kind string) bool {
	switch kind {
	case serveapi.KindRateLimited, serveapi.KindOverloaded, serveapi.KindDraining:
		return true
	}
	return false
}

// retryable classifies an attempt error: typed wire errors by kind,
// transport-level failures (resets, truncations, per-attempt timeouts)
// always — the wire gives no evidence the request was processed, and
// every API call is idempotent under the SHA-256 tree cache.
func retryable(err error) (retryAfter time.Duration, ok bool) {
	switch e := err.(type) {
	case *serveapi.Error:
		return time.Duration(e.RetryAfterMillis) * time.Millisecond, RetryableKind(e.Kind)
	case *TransportError:
		return 0, true
	case *breakerOpenError:
		return e.remaining, true
	}
	return 0, false
}

// TransportError wraps a failure below the wire contract: connection
// errors, resets mid-body, truncated or corrupted response JSON, and
// per-attempt timeouts. It unwraps to the underlying error.
type TransportError struct {
	// Path is the API path the attempt targeted.
	Path string
	// Err is the underlying transport or decode error.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("client: %s: transport: %v", e.Path, e.Err)
}

// Unwrap supports errors.Is/As on the underlying cause.
func (e *TransportError) Unwrap() error { return e.Err }

// breakerOpenError is the attempt "failure" recorded when the endpoint's
// breaker fails a call fast without touching the network.
type breakerOpenError struct {
	path      string
	remaining time.Duration
}

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("client: %s: circuit breaker open (retry in %v)", e.path, e.remaining)
}

// AttemptTrace records one attempt of a retried call, in order.
type AttemptTrace struct {
	// Err is what the attempt failed with.
	Err error
	// Wait is how long the client backed off after this attempt
	// (0 for the final one).
	Wait time.Duration
}

// RetryExhaustedError reports a call that stayed retryable to the end:
// attempts ran out or the context expired mid-backoff. It unwraps to the
// last attempt's error, so errors.As against *serveapi.Error and
// *TransportError keeps working. Non-retryable failures are returned
// bare, never wrapped.
type RetryExhaustedError struct {
	// Path is the API path of the call.
	Path string
	// Attempts holds the per-attempt traces in order.
	Attempts []AttemptTrace
	// Err is the last attempt's error.
	Err error
}

// Error implements error, summarizing the attempt trail.
func (e *RetryExhaustedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client: %s: retries exhausted after %d attempts: %v", e.Path, len(e.Attempts), e.Err)
	if n := len(e.Attempts); n > 1 {
		b.WriteString(" (trace:")
		for i, a := range e.Attempts {
			fmt.Fprintf(&b, " #%d %v", i+1, a.Err)
			if a.Wait > 0 {
				fmt.Fprintf(&b, " +%v", a.Wait.Round(time.Millisecond))
			}
		}
		b.WriteString(")")
	}
	return b.String()
}

// Unwrap supports errors.Is/As on the final attempt's error.
func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker. Only transport-level
// failures count against it; typed wire errors are proof of a live
// server and reset the streak.
type breaker struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call may proceed. In half-open state exactly
// one probe is admitted at a time; everyone else fails fast until the
// probe reports back.
func (b *breaker) allow(now time.Time, cooldown time.Duration, sink obs.Sink) (remaining time.Duration, probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return 0, false, true
	case breakerOpen:
		if since := now.Sub(b.openedAt); since < cooldown {
			return cooldown - since, false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		sink.Add(obs.ClientBreakerProbes, 1)
		return 0, true, true
	default: // half-open
		if b.probing {
			return cooldown, false, false
		}
		b.probing = true
		sink.Add(obs.ClientBreakerProbes, 1)
		return 0, true, true
	}
}

// onSuccess closes the breaker (a typed wire error counts as success
// here: the server is alive).
func (b *breaker) onSuccess(sink obs.Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		sink.Add(obs.ClientBreakerClosed, 1)
	}
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// onTransportFailure records a transport-level failure, opening the
// breaker at the threshold or re-opening it when a probe fails.
func (b *breaker) onTransportFailure(now time.Time, threshold int, sink obs.Sink) {
	if threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		sink.Add(obs.ClientBreakerOpened, 1)
	case breakerClosed:
		if b.fails >= threshold {
			b.state = breakerOpen
			b.openedAt = now
			sink.Add(obs.ClientBreakerOpened, 1)
		}
	}
}

// breakerFor returns the endpoint's breaker, creating it lazily.
func (c *Client) breakerFor(path string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[path]
	if b == nil {
		b = &breaker{}
		c.breakers[path] = b
	}
	return b
}

// doRetry runs one API call under the retry policy and breaker.
// attempt performs a single try and returns its error; it must be safe
// to call repeatedly (post re-creates the body reader each time).
func (c *Client) doRetry(ctx context.Context, path string, attempt func() error) error {
	c.sink.Add(obs.ClientRequests, 1)
	p := c.retry
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	br := c.breakerFor(path)
	var trace []AttemptTrace
	for n := 0; ; n++ {
		var err error
		if p.BreakerThreshold > 0 {
			if remaining, _, ok := br.allow(c.now(), p.BreakerCooldown, c.sink); !ok {
				c.sink.Add(obs.ClientBreakerFastFails, 1)
				err = &breakerOpenError{path: path, remaining: remaining}
			}
		}
		if err == nil {
			c.sink.Add(obs.ClientAttempts, 1)
			err = attempt()
			switch err.(type) {
			case nil, *serveapi.Error:
				// The wire contract answered: the server is alive.
				if p.BreakerThreshold > 0 {
					br.onSuccess(c.sink)
				}
			case *TransportError:
				br.onTransportFailure(c.now(), p.BreakerThreshold, c.sink)
			default:
				// Caller-side failure (context canceled, encode error):
				// no verdict on the server, breaker untouched.
			}
		}
		if err == nil {
			c.sink.Observe(obs.ClientAttemptsPerRequest, int64(n)+1)
			return nil
		}
		trace = append(trace, AttemptTrace{Err: err})
		fail := func(final error) error {
			c.sink.Observe(obs.ClientAttemptsPerRequest, int64(len(trace)))
			return final
		}
		retryAfter, ok := retryable(err)
		if !ok {
			// Non-retryable errors surface bare so callers keep
			// type-asserting *serveapi.Error directly.
			return fail(err)
		}
		if n+1 >= max {
			c.sink.Add(obs.ClientRetriesExhausted, 1)
			return fail(&RetryExhaustedError{Path: path, Attempts: trace, Err: err})
		}
		wait := p.backoff(n, retryAfter, c.rand)
		if deadline, has := ctx.Deadline(); has && c.now().Add(wait).After(deadline) {
			// The backoff would outlive the caller's deadline: honoring
			// it cannot succeed, so report exhaustion now.
			c.sink.Add(obs.ClientRetriesExhausted, 1)
			return fail(&RetryExhaustedError{Path: path, Attempts: trace, Err: err})
		}
		trace[len(trace)-1].Wait = wait
		c.sink.Add(obs.ClientRetries, 1)
		c.sink.Observe(obs.ClientRetryWaitMillis, wait.Milliseconds())
		if serr := c.sleep(ctx, wait); serr != nil {
			c.sink.Add(obs.ClientRetriesExhausted, 1)
			return fail(&RetryExhaustedError{Path: path, Attempts: trace, Err: err})
		}
	}
}

// sleepCtx sleeps for d or until the context is done, returning the
// context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// jitter is the default full-jitter source.
func jitter() float64 { return rand.Float64() }
