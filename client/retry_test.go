package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
)

// newTestClient builds a client with deterministic time, sleep and
// jitter: rand always returns 1 (backoff = full budget), sleep records
// waits without sleeping, now is a settable fake clock.
func newTestClient(base string, clock *time.Time, waits *[]time.Duration, opts ...Option) *Client {
	c := New(base, opts...)
	c.now = func() time.Time { return *clock }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if waits != nil {
			*waits = append(*waits, d)
		}
		*clock = clock.Add(d)
		return ctx.Err()
	}
	c.rand = func() float64 { return 1 }
	return c
}

// errServer answers every /v1/ POST with the given typed wire error and
// counts attempts.
func errServer(kind string, code int, retryMS int64) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(serveapi.ErrorResponse{
			Format: serveapi.FormatV1,
			Err: serveapi.Error{Code: code, Kind: kind, Message: "test " + kind,
				RetryAfterMillis: retryMS},
		})
	}))
	return srv, &hits
}

// kindHTTPCode picks a plausible HTTP status for each kind so the table
// round-trips realistic responses.
func kindHTTPCode(kind string) int {
	switch kind {
	case serveapi.KindRateLimited:
		return http.StatusTooManyRequests
	case serveapi.KindOverloaded, serveapi.KindDraining:
		return http.StatusServiceUnavailable
	case serveapi.KindInternal:
		return http.StatusInternalServerError
	case serveapi.KindUnknownTree:
		return http.StatusNotFound
	case serveapi.KindUnschedulable, serveapi.KindCounterexample:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// TestKindTaxonomyRetryClassification is the satellite contract: every
// kind of the serveapi taxonomy is explicitly classified, round-trips
// the wire through a retrying client, and invalid_config is never
// retried.
func TestKindTaxonomyRetryClassification(t *testing.T) {
	wantRetryable := map[string]bool{
		serveapi.KindBadRequest:     false,
		serveapi.KindUnknownFormat:  false,
		serveapi.KindInvalidConfig:  false,
		serveapi.KindInvalidApp:     false,
		serveapi.KindUnknownTree:    false,
		serveapi.KindUnschedulable:  false,
		serveapi.KindCounterexample: false,
		serveapi.KindRateLimited:    true,
		serveapi.KindOverloaded:     true,
		serveapi.KindDraining:       true,
		serveapi.KindInternal:       false,
	}
	kinds := serveapi.AllKinds()
	if len(wantRetryable) != len(kinds) {
		t.Fatalf("classification table has %d kinds, taxonomy has %d — classify the new kind", len(wantRetryable), len(kinds))
	}
	const attempts = 3
	for _, kind := range kinds {
		want, classified := wantRetryable[kind]
		if !classified {
			t.Errorf("kind %q is not in the classification table", kind)
			continue
		}
		if got := RetryableKind(kind); got != want {
			t.Errorf("RetryableKind(%q) = %v, want %v", kind, got, want)
		}

		srv, hits := errServer(kind, kindHTTPCode(kind), 5)
		clock := time.Unix(0, 0)
		c := newTestClient(srv.URL, &clock, nil,
			WithRetryPolicy(RetryPolicy{MaxAttempts: attempts, BreakerThreshold: 0}))
		_, err := c.Eval(context.Background(), serveapi.EvalRequest{})
		srv.Close()
		if err == nil {
			t.Fatalf("kind %q: call unexpectedly succeeded", kind)
		}

		// The typed error must round-trip the wire intact either way.
		var werr *serveapi.Error
		if !errors.As(err, &werr) {
			t.Fatalf("kind %q: error %T does not unwrap to *serveapi.Error", kind, err)
		}
		if werr.Kind != kind || werr.Code != kindHTTPCode(kind) {
			t.Errorf("kind %q round-tripped as kind=%q code=%d", kind, werr.Kind, werr.Code)
		}

		if want {
			if got := hits.Load(); got != attempts {
				t.Errorf("kind %q: %d attempts, want %d (retryable)", kind, got, attempts)
			}
			var rex *RetryExhaustedError
			if !errors.As(err, &rex) {
				t.Errorf("kind %q: exhausted retries returned %T, want *RetryExhaustedError", kind, err)
			} else if len(rex.Attempts) != attempts {
				t.Errorf("kind %q: trace has %d attempts, want %d", kind, len(rex.Attempts), attempts)
			}
		} else {
			if got := hits.Load(); got != 1 {
				t.Errorf("kind %q: %d attempts, want exactly 1 (non-retryable)", kind, got)
			}
			if _, bare := err.(*serveapi.Error); !bare {
				t.Errorf("kind %q: non-retryable error surfaced as %T, want bare *serveapi.Error", kind, err)
			}
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(serveapi.ErrorResponse{
				Format: serveapi.FormatV1,
				Err:    serveapi.Error{Code: 503, Kind: serveapi.KindOverloaded, RetryAfterMillis: 7},
			})
			return
		}
		_ = json.NewEncoder(w).Encode(serveapi.HealthResponse{Format: serveapi.FormatV1, Status: "ok"})
	}))
	defer srv.Close()

	m := obs.NewMetrics()
	clock := time.Unix(0, 0)
	var waits []time.Duration
	c := newTestClient(srv.URL, &clock, &waits,
		WithRetryPolicy(DefaultRetryPolicy()), WithMetrics(m))
	if _, err := c.Eval(context.Background(), serveapi.EvalRequest{}); err != nil {
		t.Fatalf("Eval with 2 transient 503s: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	for i, w := range waits {
		if w < 7*time.Millisecond {
			t.Errorf("backoff %d = %v, below the server's RetryAfterMillis floor", i, w)
		}
	}
	if got := m.Counter(obs.ClientRetries); got != 2 {
		t.Errorf("ClientRetries = %d, want 2", got)
	}
	if got := m.Counter(obs.ClientAttempts); got != 3 {
		t.Errorf("ClientAttempts = %d, want 3", got)
	}
	if got := m.Counter(obs.ClientRequests); got != 1 {
		t.Errorf("ClientRequests = %d, want 1", got)
	}
}

func TestBackoffShape(t *testing.T) {
	p := DefaultRetryPolicy()
	// Full budget (rand = 1) grows geometrically and caps at MaxDelay.
	one := func() float64 { return 1 }
	if got := p.backoff(0, 0, one); got != p.BaseDelay {
		t.Errorf("backoff(0) = %v, want %v", got, p.BaseDelay)
	}
	if got := p.backoff(1, 0, one); got != 2*p.BaseDelay {
		t.Errorf("backoff(1) = %v, want %v", got, 2*p.BaseDelay)
	}
	if got := p.backoff(30, 0, one); got != p.MaxDelay {
		t.Errorf("backoff(30) = %v, want cap %v", got, p.MaxDelay)
	}
	// Full jitter: rand = 0 sleeps 0 unless the server set a floor.
	zero := func() float64 { return 0 }
	if got := p.backoff(0, 0, zero); got != 0 {
		t.Errorf("backoff with rand=0 = %v, want 0", got)
	}
	if got := p.backoff(0, 42*time.Millisecond, zero); got != 42*time.Millisecond {
		t.Errorf("backoff floor = %v, want 42ms", got)
	}
}

func TestContextDeadlineStopsBackoff(t *testing.T) {
	srv, hits := errServer(serveapi.KindOverloaded, 503, 60_000)
	defer srv.Close()

	// The fake clock must agree with the real one here: the context
	// deadline is real, the backoff arithmetic uses the fake now().
	clock := time.Now()
	c := newTestClient(srv.URL, &clock, nil, WithRetryPolicy(DefaultRetryPolicy()))
	ctx, cancel := context.WithDeadline(context.Background(), clock.Add(time.Second))
	defer cancel()
	_, err := c.Eval(ctx, serveapi.EvalRequest{})
	var rex *RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("error = %v (%T), want *RetryExhaustedError", err, err)
	}
	// The 60s RetryAfterMillis floor outlives the 1s deadline: exactly
	// one attempt, no sleep.
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (backoff exceeds deadline)", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			panic(http.ErrAbortHandler) // transport-level failure
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serveapi.HealthResponse{Format: serveapi.FormatV1, Status: "ok"})
	}))
	defer srv.Close()

	m := obs.NewMetrics()
	clock := time.Unix(0, 0)
	policy := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: time.Second}
	c := newTestClient(srv.URL, &clock, nil, WithRetryPolicy(policy), WithMetrics(m))
	ctx := context.Background()

	// Three consecutive transport failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Eval(ctx, serveapi.EvalRequest{}); err == nil {
			t.Fatal("expected transport failure")
		}
	}
	if got := m.Counter(obs.ClientBreakerOpened); got != 1 {
		t.Fatalf("ClientBreakerOpened = %d, want 1", got)
	}

	// While open, calls fail fast without touching the network.
	before := hits.Load()
	_, err := c.Eval(ctx, serveapi.EvalRequest{})
	if err == nil {
		t.Fatal("expected fast-fail while breaker open")
	}
	if hits.Load() != before {
		t.Fatal("open breaker let a request reach the server")
	}
	if got := m.Counter(obs.ClientBreakerFastFails); got != 1 {
		t.Errorf("ClientBreakerFastFails = %d, want 1", got)
	}

	// After the cooldown a single probe goes through; it fails, so the
	// breaker re-opens.
	clock = clock.Add(2 * time.Second)
	if _, err := c.Eval(ctx, serveapi.EvalRequest{}); err == nil {
		t.Fatal("expected probe failure")
	}
	if got := m.Counter(obs.ClientBreakerProbes); got != 1 {
		t.Errorf("ClientBreakerProbes = %d, want 1", got)
	}
	if got := m.Counter(obs.ClientBreakerOpened); got != 2 {
		t.Errorf("ClientBreakerOpened = %d, want 2 (probe failure re-opens)", got)
	}

	// Heal the server; after another cooldown the next probe succeeds
	// and closes the breaker.
	healthy.Store(true)
	clock = clock.Add(2 * time.Second)
	if _, err := c.Eval(ctx, serveapi.EvalRequest{}); err != nil {
		t.Fatalf("probe against healthy server: %v", err)
	}
	if got := m.Counter(obs.ClientBreakerClosed); got != 1 {
		t.Errorf("ClientBreakerClosed = %d, want 1", got)
	}
	if _, err := c.Eval(ctx, serveapi.EvalRequest{}); err != nil {
		t.Fatalf("call after breaker closed: %v", err)
	}
}

func TestBreakerRidesThroughOutage(t *testing.T) {
	// With retries enabled, a call arriving while the breaker is open
	// waits out the cooldown via fast-fail attempts and succeeds once
	// the endpoint heals — the self-healing path the chaos soak leans on.
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serveapi.HealthResponse{Format: serveapi.FormatV1, Status: "ok"})
	}))
	defer srv.Close()

	clock := time.Unix(0, 0)
	policy := RetryPolicy{MaxAttempts: 10, BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond}
	c := newTestClient(srv.URL, &clock, nil, WithRetryPolicy(policy))
	// Trip the breaker, then heal the server: the fake sleep advances
	// the fake clock, so fast-fail backoffs walk past the cooldown and
	// the half-open probe lands on the healed server.
	healthy.Store(false)
	go func() { healthy.Store(true) }()
	if _, err := c.Eval(context.Background(), serveapi.EvalRequest{}); err != nil {
		// Racing the heal above can legitimately exhaust; accept both
		// but require the error to be typed when it happens.
		var rex *RetryExhaustedError
		if !errors.As(err, &rex) {
			t.Fatalf("error = %v (%T), want success or *RetryExhaustedError", err, err)
		}
	}
}

func TestDefaultTimeoutAndInjectableHTTPClient(t *testing.T) {
	c := New("http://127.0.0.1:1")
	if c.httpc.Timeout != DefaultRequestTimeout {
		t.Errorf("default http.Client timeout = %v, want %v", c.httpc.Timeout, DefaultRequestTimeout)
	}
	custom := &http.Client{Timeout: 5 * time.Second}
	c = New("http://127.0.0.1:1", WithHTTPClient(custom))
	if c.httpc != custom {
		t.Error("WithHTTPClient did not install the caller's http.Client")
	}
}

func TestDeadlineHeaderPropagation(t *testing.T) {
	var gotHeader atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(serveapi.DeadlineHeader))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serveapi.HealthResponse{Format: serveapi.FormatV1, Status: "ok"})
	}))
	defer srv.Close()

	c := New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Eval(ctx, serveapi.EvalRequest{}); err != nil {
		t.Fatalf("Eval: %v", err)
	}
	h, _ := gotHeader.Load().(string)
	if h == "" {
		t.Fatal("request with a context deadline carried no DeadlineHeader")
	}

	// Without a deadline the header is absent.
	if _, err := c.Eval(context.Background(), serveapi.EvalRequest{}); err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if h, _ := gotHeader.Load().(string); h != "" {
		t.Errorf("request without a deadline carried DeadlineHeader %q", h)
	}
}

func TestTransportErrorRetriesAndExhausts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()

	m := obs.NewMetrics()
	clock := time.Unix(0, 0)
	c := newTestClient(srv.URL, &clock, nil,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BreakerThreshold: 0}), WithMetrics(m))
	_, err := c.Eval(context.Background(), serveapi.EvalRequest{})
	var rex *RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("error = %v (%T), want *RetryExhaustedError", err, err)
	}
	var terr *TransportError
	if !errors.As(err, &terr) {
		t.Fatalf("exhausted error does not unwrap to *TransportError: %v", err)
	}
	if len(rex.Attempts) != 3 {
		t.Errorf("trace has %d attempts, want 3", len(rex.Attempts))
	}
	if got := m.Counter(obs.ClientRetriesExhausted); got != 1 {
		t.Errorf("ClientRetriesExhausted = %d, want 1", got)
	}
}

func TestCallerCancellationIsNotRetried(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	c := New(srv.URL, WithRetryPolicy(DefaultRetryPolicy()))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := c.Eval(ctx, serveapi.EvalRequest{})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	var rex *RetryExhaustedError
	if errors.As(err, &rex) {
		t.Fatalf("caller cancellation was retried: %v", err)
	}
}
