// Command ftgen generates random benchmark applications following the
// experimental setup of Izosimov et al. (DATE 2008) §6 and writes them as
// JSON.
//
// Usage:
//
//	ftgen -n 30 -seed 7 -o app.json
//	ftgen -n 20 -k 2 -mu 10 -hard 0.4        # to stdout
//	ftgen -n 20 -cores 2                     # homogeneous two-core platform
//	ftgen -n 20 -core-spec lp:1:1:0.05,hp:2:3:0.15
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ftsched/internal/appio"
	"ftsched/internal/cli"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
)

func main() {
	var (
		n        = flag.Int("n", 20, "number of processes")
		seed     = flag.Int64("seed", 1, "random seed")
		k        = flag.Int("k", 3, "maximum number of transient faults per cycle")
		mu       = flag.Int64("mu", 15, "recovery overhead µ")
		hard     = flag.Float64("hard", 0.5, "fraction of hard processes")
		out      = flag.String("o", "-", "output file (- for stdout)")
		ensure   = flag.Bool("schedulable", true, "regenerate until FTSS finds a fault-tolerant schedule")
		attempts = flag.Int("attempts", 50, "regeneration attempts when -schedulable is set")
		edgeProb = flag.Float64("edges", 0.15, "dependency probability per forward pair (layered shape)")
		shape    = flag.String("shape", "layered", "graph shape: layered, sp (series-parallel), chains")
		slackLo  = flag.Float64("slack-min", 0.95, "minimum period slack over the worst-case load")
		slackHi  = flag.Float64("slack-max", 1.15, "maximum period slack over the worst-case load")
		cores    = flag.Int("cores", 0, "homogeneous platform with this many unit cores (0 keeps the canonical single-core model)")
		coreSpec = flag.String("core-spec", "", "heterogeneous platform, name:speed:powerActive:powerIdle per core, comma-separated (overrides -cores)")
		recSpec  = flag.String("recovery", "", cli.RecoveryFlagUsage)
	)
	flag.Parse()

	var plat *model.Platform
	switch {
	case *coreSpec != "":
		var perr error
		plat, perr = appio.ParseCoreSpec(*coreSpec)
		if perr != nil {
			fatal(perr)
		}
	case *cores > 0:
		var perr error
		plat, perr = appio.UniformPlatform(*cores)
		if perr != nil {
			fatal(perr)
		}
	case *cores < 0:
		fatal(fmt.Errorf("-cores must be non-negative (got %d)", *cores))
	}

	cfg := gen.Default(*n)
	cfg.K = *k
	cfg.Mu = model.Time(*mu)
	cfg.HardRatio = *hard
	cfg.EdgeProb = *edgeProb
	cfg.PeriodSlackMin = *slackLo
	cfg.PeriodSlackMax = *slackHi
	switch *shape {
	case "layered", "":
		cfg.Shape = gen.Layered
	case "sp", "series-parallel":
		cfg.Shape = gen.SeriesParallel
	case "chains":
		cfg.Shape = gen.Chains
	default:
		fatal(fmt.Errorf("unknown shape %q (want layered, sp or chains)", *shape))
	}

	rng := rand.New(rand.NewSource(*seed))
	var app *model.Application
	var err error
	for i := 0; ; i++ {
		app, err = gen.Generate(rng, cfg)
		if err != nil {
			fatal(err)
		}
		// The platform is attached before the schedulability probe, so
		// -schedulable certifies the application on the platform it ships
		// with, not on the canonical single-core model.
		if plat != nil {
			app, err = app.WithPlatform(plat, model.BiasedMapping(app, plat))
			if err != nil {
				fatal(err)
			}
		}
		// The recovery model, too, is attached before the probe: the
		// generated application is certified under the model it ships with.
		app, err = cli.ApplyRecoverySpec(app, *recSpec)
		if err != nil {
			fatal(err)
		}
		if !*ensure {
			break
		}
		if _, serr := core.FTSS(app); serr == nil {
			break
		}
		if i+1 >= *attempts {
			fatal(fmt.Errorf("no schedulable application in %d attempts", *attempts))
		}
	}

	w, done, err := cli.OutputWriter(*out)
	if err != nil {
		fatal(err)
	}
	defer done()
	if err := appio.EncodeApplication(w, app); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s\n", app)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftgen:", err)
	os.Exit(1)
}
