// Command ftsim evaluates the three scheduling algorithms on an
// application by Monte-Carlo simulation: mean utility under 0..k injected
// transient faults, schedule switches, re-executions, and a hard-deadline
// audit. It also replays certification counterexamples (-replay) against
// a tree, rendering the offending cycle as a Gantt chart, and runs seeded
// chaos campaigns (-chaos) that push the dispatcher outside the fault
// model — WCET overruns, >k fault bursts — and score the containment
// contract of the selected degrade policy.
//
// Usage:
//
//	ftsim -fixture cc -m 39 -scenarios 20000
//	ftsim -fixture cc -scenarios 1000000 -workers 4
//	ftsim -app app.json -scenarios 5000 -seed 7
//	ftsim -fixture fig1 -tree tree.json -replay ce.json
//	ftsim -fixture fig8 -chaos -chaos-seed 42 -policy shed-soft
//	ftsim -fixture fig8 -chaos -chaos-faults 3 -ce-out bad-cycle.json
//	ftsim -fixture cc -remote http://127.0.0.1:8433 -scenarios 20000
//	ftsim -fixture fig8 -chaos -remote http://127.0.0.1:8433
//
// With -remote the FTQS table rows (or the chaos campaign) run through an
// ftserved process over the ftsched-api/v1 wire; results are bit-identical
// to the in-process path. The FTSS/FTSF baseline rows are local-only.
//
// Exit status — this table is the canonical reference; scripts and CI
// gate on these codes:
//
//	0  success: nothing to report (chaos: campaign ran clean)
//	1  errors — I/O, synthesis failure, or a chaos contract violation
//	   (a panic, a detection gap, an in-model miss, or a hard miss the
//	   policy promised to absorb)
//	2  flag parse errors (from package flag)
//	3  a loaded tree failed verification (pass -force to replay against
//	   it anyway)
//	4  a replayed counterexample reproduced a hard violation with an
//	   in-model scenario (durations within [BCET,WCET], faults <= k):
//	   a genuine certification counterexample
//	5  hard deadlines missed only under out-of-model injection: the
//	   chaos campaign's misses all trace to injected overruns or >k
//	   bursts the policy does not promise to absorb, or the replayed
//	   scenario itself violates the fault model
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"math/rand"

	"ftsched/client"
	"ftsched/internal/appio"
	"ftsched/internal/baseline"
	"ftsched/internal/chaos"
	"ftsched/internal/cli"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// Distinct exit codes so scripts can tell "bad tree" from "bad anything".
// The package comment above holds the canonical table.
const (
	exitErr        = 1
	exitBadTree    = 3
	exitReproduced = 4
	exitOutOfModel = 5
)

// shutdownMetrics stops the -metrics-addr server; every exit path goes
// through exit() so in-flight scrapes are flushed before the process dies
// instead of racing run completion.
var shutdownMetrics func() error

func exit(code int) {
	if shutdownMetrics != nil {
		if err := shutdownMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "ftsim: metrics shutdown:", err)
		}
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftsim:", err)
	exit(exitErr)
}

func main() {
	var (
		fixture     = flag.String("fixture", "", "built-in application: fig1, fig4c, fig8, cc")
		appPath     = flag.String("app", "", "JSON application file")
		m           = flag.Int("m", 16, "maximum quasi-static tree size")
		scenarios   = flag.Int("scenarios", 5000, "Monte-Carlo scenarios per configuration")
		seed        = flag.Int64("seed", 1, "simulation seed")
		workers     = flag.Int("workers", 0, "evaluation goroutines for Monte-Carlo and chaos (0: all CPUs; results are identical for any value)")
		trace       = flag.Bool("trace", false, "render one sample scenario per fault count as a Gantt chart")
		treeIn      = flag.String("tree", "", "load a stored quasi-static tree (JSON) instead of synthesising one; it is verified before use")
		replay      = flag.String("replay", "", "replay a certification counterexample (JSON from ftsched -certify) against the tree and exit")
		force       = flag.Bool("force", false, "with -replay: replay even when the tree fails verification")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars and /debug/pprof on this address (e.g. :8080) for the lifetime of the run")
		remote      = flag.String("remote", "", "base URL of an ftserved (e.g. http://127.0.0.1:8433): run the FTQS table (or -chaos) through the service instead of in-process")
		tenant      = flag.String("tenant", "", "with -remote: tenant to account the requests against (X-FTSched-Tenant)")
		retries     = flag.Int("retries", 5, "with -remote: total attempts per request through the self-healing client (1 = no retries); retryable rejections and wire faults are retried with capped full-jitter backoff")
		retryBase   = flag.Duration("retry-base", 25*time.Millisecond, "with -remote: base backoff delay between retries")

		chaosMode   = flag.Bool("chaos", false, "run a seeded chaos campaign (out-of-model injection) instead of the Monte-Carlo table")
		chaosCycles = flag.Int("chaos-cycles", 1000, "chaos: cycles per campaign")
		chaosSeed   = flag.Int64("chaos-seed", 0, "chaos: campaign seed (0: use -seed)")
		chaosOver   = flag.Float64("chaos-overrun", 0.25, "chaos: per-cycle WCET-overrun probability")
		chaosFactor = flag.Float64("chaos-overrun-factor", 2.0, "chaos: overrun duration as a multiple of WCET")
		chaosBurst  = flag.Float64("chaos-burst", 0.25, "chaos: per-cycle probability of a fault burst exceeding k")
		chaosFaults = flag.Int("chaos-faults", 2, "chaos: faults beyond k per burst")
		chaosTarget = flag.String("chaos-target", "soft", "chaos: victim pool, soft or any")
		policyName  = flag.String("policy", "", "degrade policy for -chaos and -replay: strict, shed-soft or best-effort (chaos default: shed-soft; replay default: no envelope)")
		clamp       = flag.Bool("clamp", false, "with a policy: truncate out-of-model durations at WCET (watchdog semantics)")
		ceOut       = flag.String("ce-out", "", "chaos: write the first offending cycle as a replayable counterexample JSON file")
		recSpec     = flag.String("recovery", "", cli.RecoveryFlagUsage)
	)
	flag.Parse()

	metrics, err := cli.ServeMetrics("ftsim", *metricsAddr)
	if err != nil {
		fatal(err)
	}
	shutdownMetrics = metrics.Shutdown
	sink := metrics.Sink()
	if metrics != nil {
		// A signal mid-run exits through exit(), which flushes the metrics
		// endpoint gracefully — the final scrape still observes everything
		// the run recorded before the interrupt.
		go func() {
			s := <-cli.NotifySignals()
			fmt.Fprintf(os.Stderr, "ftsim: %v: flushing metrics and exiting\n", s)
			exit(exitErr)
		}()
	}

	app, err := cli.LoadApp(*fixture, *appPath)
	if err != nil {
		fatal(err)
	}
	app, err = cli.ApplyRecoverySpec(app, *recSpec)
	if err != nil {
		fatal(err)
	}
	fmt.Println(app)

	// The chaos configuration is shared by the local and -remote paths;
	// build it once so both campaigns score the same injection mix.
	var chaosCfg chaos.Config
	if *chaosMode {
		if *chaosTarget != "soft" && *chaosTarget != "any" {
			fatal(fmt.Errorf("-chaos-target must be soft or any, got %q", *chaosTarget))
		}
		csd := *chaosSeed
		if csd == 0 {
			csd = *seed
		}
		pol := runtime.PolicyShedSoft
		if *policyName != "" {
			if err := pol.UnmarshalText([]byte(*policyName)); err != nil {
				fatal(err)
			}
		}
		chaosCfg = chaos.Config{
			Cycles:        *chaosCycles,
			Seed:          csd,
			Workers:       *workers,
			Policy:        pol,
			Clamp:         *clamp,
			BaseFaults:    min(1, app.K()),
			OverrunProb:   *chaosOver,
			OverrunFactor: *chaosFactor,
			BurstProb:     *chaosBurst,
			ExtraFaults:   *chaosFaults,
			SoftOnly:      *chaosTarget == "soft",
			Sink:          sink,
		}
	}

	if *remote != "" {
		if *treeIn != "" || *replay != "" || *trace || *ceOut != "" {
			fatal(fmt.Errorf("-remote supports the Monte-Carlo table and -chaos only (not -tree, -replay, -trace or -ce-out)"))
		}
		runRemote(app, *remote, *tenant, *m, *scenarios, *seed, *workers, *retries, *retryBase, *chaosMode, chaosCfg)
		return
	}

	ftss, err := core.FTSS(app)
	if err != nil {
		fatal(err)
	}
	var tree *core.Tree
	if *treeIn != "" {
		f, err := os.Open(*treeIn)
		if err != nil {
			fatal(err)
		}
		tree, err = appio.DecodeTree(f, app)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := core.VerifyTree(tree); err != nil {
			// One-line diagnostic and a distinct status: scripts gate
			// deployment on this exit code, and the full issue list is a
			// VerifyError away (ftsched -verify prints it).
			fmt.Fprintf(os.Stderr, "ftsim: tree %s failed verification: %s\n", *treeIn, cli.FirstLine(err))
			if *replay == "" || !*force {
				exit(exitBadTree)
			}
			fmt.Fprintln(os.Stderr, "ftsim: -force: replaying against the unverified tree")
		} else {
			fmt.Printf("loaded and verified tree from %s\n", *treeIn)
		}
	} else {
		tree, err = core.FTQSFromRoot(app, ftss, core.FTQSOptions{M: *m, Sink: sink})
		if err != nil {
			fatal(err)
		}
	}

	if *replay != "" {
		replayCounterexample(app, tree, *replay, *policyName, *clamp)
		return
	}

	if *chaosMode {
		runChaosCampaign(app, tree, chaosCfg, *ceOut)
		return
	}

	trees := []struct {
		name string
		t    *core.Tree
	}{
		{"FTQS", tree},
		{"FTSS", sim.StaticTree(app, ftss)},
	}
	ftsf, err := baseline.FTSF(app)
	if err != nil {
		fmt.Printf("FTSF baseline: unschedulable (%v) — omitted\n", err)
		fmt.Printf("FTQS tree: %d schedules; FTSS: %d entries\n\n", tree.Size(), len(ftss.Entries))
	} else {
		trees = append(trees, struct {
			name string
			t    *core.Tree
		}{"FTSF", sim.StaticTree(app, ftsf)})
		fmt.Printf("FTQS tree: %d schedules; FTSS: %d entries; FTSF: %d entries\n\n",
			tree.Size(), len(ftss.Entries), len(ftsf.Entries))
	}

	// One compiled dispatcher per tree, shared by the k+1 fault
	// configurations (and carrying the metrics sink when one is serving).
	dispatchers := make([]*runtime.Dispatcher, len(trees))
	for i, tr := range trees {
		dispatchers[i], err = runtime.NewDispatcher(tr.t, runtime.WithSink(sink))
		if err != nil {
			fatal(err)
		}
	}

	var base float64
	printTableHeader()
	for f := 0; f <= app.K(); f++ {
		for i, tr := range trees {
			st, err := sim.MonteCarlo(tr.t, sim.MCConfig{
				Scenarios: *scenarios, Faults: f, Seed: *seed, Workers: *workers,
				Dispatcher: dispatchers[i], Sink: sink,
			})
			if err != nil {
				fatal(err)
			}
			if tr.name == "FTQS" && f == 0 {
				base = st.MeanUtility
			}
			printTableRow(tr.name, f, st, base)
		}
	}

	if *trace {
		rng := rand.New(rand.NewSource(*seed))
		for f := 0; f <= app.K(); f++ {
			sc, err := sim.Sample(app, rng, f, nil)
			if err != nil {
				fatal(err)
			}
			res, events, err := sim.RunTrace(tree, sc)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nsample scenario with %d fault(s): utility %.1f, %d switch(es)\n",
				f, res.Utility, res.Switches)
			if err := appio.WriteGantt(os.Stdout, app, events, 0, 84); err != nil {
				fatal(err)
			}
		}
	}
	exit(0)
}

// replayCounterexample re-executes a counterexample through the tree's
// real dispatcher — under a containment envelope when a policy is named —
// and renders the cycle. A reproduced hard violation exits with
// exitReproduced when the scenario is in-model, and with exitOutOfModel
// when the scenario itself leaves the fault model (chaos exports do), so
// scripts can tell a certification bug from an injection artefact.
func replayCounterexample(app *model.Application, tree *core.Tree, path, policyName string, clamp bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sc, ce, err := appio.DecodeCounterexample(f, app)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying counterexample from %s: %d fault(s)", path, sc.NFaults)
	if ce.Proc != "" {
		fmt.Printf(", expected violation on %s (deadline %d, completion %d)", ce.Proc, ce.Deadline, ce.Completion)
	}
	fmt.Println()
	inModel := sc.Validate(app) == nil
	if !inModel {
		fmt.Println("scenario is out-of-model (injected overruns or faults beyond k)")
	}

	var opts []runtime.Option
	if policyName != "" {
		var pol runtime.DegradePolicy
		if err := pol.UnmarshalText([]byte(policyName)); err != nil {
			fatal(err)
		}
		fmt.Printf("containment envelope attached: policy %s\n", pol)
		opts = append(opts, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: pol, Clamp: clamp}))
	}
	d, err := runtime.NewDispatcher(tree, opts...)
	if err != nil {
		fatal(err)
	}
	res, events, err := d.RunTrace(sc)
	var envErr *runtime.EnvelopeError
	if errors.As(err, &envErr) {
		if gerr := appio.WriteGantt(os.Stdout, app, events, 0, 84); gerr != nil {
			fatal(gerr)
		}
		fmt.Printf("strict envelope abort: %v\n", envErr)
		exit(exitOutOfModel)
	}
	if err != nil {
		fatal(err)
	}
	if err := appio.WriteGantt(os.Stdout, app, events, 0, 84); err != nil {
		fatal(err)
	}
	for _, ev := range res.Violations {
		fmt.Printf("envelope event: %s on %s at %d (magnitude %d)\n",
			ev.Kind, app.Proc(ev.Proc).Name, ev.At, ev.Magnitude)
	}
	if res.Degraded {
		fmt.Println("cycle degraded: remaining soft work shed, hard processes on emergency suffix")
	}
	if len(res.HardViolations) > 0 {
		for _, v := range res.HardViolations {
			p := app.Proc(v)
			fmt.Printf("hard violation reproduced: %s (deadline %d, completion %d)\n",
				p.Name, p.Deadline, res.CompletionTimes[v])
		}
		if inModel {
			exit(exitReproduced)
		}
		exit(exitOutOfModel)
	}
	fmt.Println("no hard violation in this replay (tree or scenario differs from the certified run)")
	exit(0)
}

// runChaosCampaign executes a seeded out-of-model injection campaign and
// scores the containment contract. Exit: 1 on any contract violation
// (panic, detection gap, in-model miss, breach), exitOutOfModel when hard
// deadlines were missed only under injections the policy does not promise
// to absorb, 0 when the campaign ran clean.
func runChaosCampaign(app *model.Application, tree *core.Tree, cfg chaos.Config, cePath string) {
	c, err := chaos.New(tree, cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}
	reportChaos(rep, cfg)

	if cePath != "" {
		if err := exportChaosCounterexample(app, tree, c, rep, cfg, cePath); err != nil {
			fatal(err)
		}
	}
	chaosExit(rep)
}

// reportChaos prints the campaign summary — identical for a local run and
// a -remote one (the report travels the wire losslessly).
func reportChaos(rep *chaos.Report, cfg chaos.Config) {
	clampNote := ""
	if cfg.Clamp {
		clampNote = ", clamp"
	}
	fmt.Printf("chaos campaign: %d cycles, seed %d, policy %s%s, target %s\n",
		rep.Cycles, cfg.Seed, cfg.Policy, clampNote, map[bool]string{true: "soft", false: "any"}[cfg.SoftOnly])
	fmt.Printf("injected:  %d cycles (overruns %d, >k bursts %d, regressions %d)\n",
		rep.Injected, rep.Overruns, rep.ExtraFaults, rep.TimeRegressions)
	fmt.Printf("envelope:  degraded %d, budget exhausted %d, strict errors %d\n",
		rep.Degraded, rep.BudgetExhausted, rep.StrictErrors)
	fmt.Printf("misses:    hard %d (in-model %d)\n", rep.HardMisses, rep.InModelMisses)
	fmt.Printf("contract:  breaches %d, detection gaps %d, panics %d\n",
		rep.Breaches, rep.DetectionGaps, rep.Panics)
}

// chaosExit maps a campaign report to the canonical exit table.
func chaosExit(rep *chaos.Report) {
	switch {
	case rep.Panics+rep.Breaches+rep.DetectionGaps+rep.InModelMisses > 0:
		fmt.Println("chaos: CONTRACT VIOLATED")
		exit(exitErr)
	case rep.HardMisses > 0:
		fmt.Println("chaos: hard misses only under out-of-model injection (not absorbed by policy)")
		exit(exitOutOfModel)
	default:
		fmt.Println("chaos: clean")
		exit(0)
	}
}

func printTableHeader() {
	fmt.Printf("%-6s %-7s %10s %8s %9s %9s %9s %9s %6s\n",
		"algo", "faults", "utility", "norm%", "p5", "p95", "switches", "recov", "viol")
}

func printTableRow(name string, f int, st sim.MCStats, base float64) {
	fmt.Printf("%-6s %-7d %10.2f %8.1f %9.1f %9.1f %9.2f %9.2f %6d\n",
		name, f, st.MeanUtility, stats.Ratio(st.MeanUtility, base),
		st.P05, st.P95, st.MeanSwitches, st.MeanRecoveries, st.HardViolations)
}

// runRemote drives the run through an ftserved process instead of the
// in-process engines: synthesise (or fetch from the server cache) the FTQS
// tree once, then evaluate per fault count — or run the chaos campaign —
// over the ftsched-api/v1 wire. Results are bit-identical to the local
// path (the wire determinism contract), so the printed table matches a
// local FTQS run row for row. The FTSS/FTSF baselines are local-only
// constructions the service does not expose; rerun without -remote for
// the full comparison table.
func runRemote(app *model.Application, baseURL, tenant string, m, scenarios int, seed int64, workers, retries int, retryBase time.Duration, chaosMode bool, chaosCfg chaos.Config) {
	var opts []client.Option
	if tenant != "" {
		opts = append(opts, client.WithTenant(tenant))
	}
	if retries > 1 {
		// The self-healing client rides out admission rejections, wire
		// faults and server restarts; results are byte-identical to a
		// fault-free run because retries are idempotent under the
		// server's SHA-256 tree cache.
		policy := client.DefaultRetryPolicy()
		policy.MaxAttempts = retries
		policy.BaseDelay = retryBase
		opts = append(opts, client.WithRetryPolicy(policy))
	}
	cl := client.New(baseURL, opts...)

	var buf bytes.Buffer
	if err := appio.EncodeApplication(&buf, app); err != nil {
		fatal(err)
	}
	ctx := context.Background()
	syn, err := cl.Synthesize(ctx, serveapi.SynthesizeRequest{
		App:     buf.Bytes(),
		Options: serveapi.FTQSOptionsJSON{M: m, Workers: workers},
	})
	if err != nil {
		fatal(err)
	}
	how := "server cache hit"
	if !syn.CacheHit {
		how = fmt.Sprintf("compiled in %.0fms", syn.CompileMillis)
	}
	fmt.Printf("FTQS tree: %d schedules (remote %s, %s)\n", syn.Nodes, baseURL, how)
	fmt.Printf("baselines (FTSS, FTSF) are local-only; rerun without -remote for the full table\n\n")

	if chaosMode {
		resp, err := cl.Chaos(ctx, serveapi.ChaosRequest{
			TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
			Config:  serveapi.ChaosConfigJSONOf(chaosCfg),
		})
		if err != nil {
			fatal(err)
		}
		reportChaos(resp.Report, chaosCfg)
		chaosExit(resp.Report)
	}

	var base float64
	printTableHeader()
	for f := 0; f <= app.K(); f++ {
		resp, err := cl.Eval(ctx, serveapi.EvalRequest{
			TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
			Config:  serveapi.MCConfigJSON{Scenarios: scenarios, Faults: f, Seed: seed, Workers: workers},
		})
		if err != nil {
			fatal(err)
		}
		st := resp.Stats.Stats()
		if f == 0 {
			base = st.MeanUtility
		}
		printTableRow("FTQS", f, st, base)
	}
	exit(0)
}

// exportChaosCounterexample writes the first offending cycle — a contract
// breach if any, else the first hard miss — as a replayable
// counterexample record (ftsim -replay reads it back; the scenario
// re-derivation is exact, see chaos.Campaign.Scenario).
func exportChaosCounterexample(app *model.Application, tree *core.Tree, c *chaos.Campaign, rep *chaos.Report, cfg chaos.Config, path string) error {
	pick := -1
	for _, rec := range rep.Records {
		if rec.Breach || rec.InModelMiss || rec.Panic != "" {
			pick = rec.Cycle
			break
		}
		if pick < 0 && rec.HardMiss {
			pick = rec.Cycle
		}
	}
	if pick < 0 {
		fmt.Println("ce-out: no offending cycle to export (campaign clean)")
		return nil
	}
	sc, err := c.Scenario(pick)
	if err != nil {
		return err
	}
	// Re-run the cycle through an identically-configured dispatcher to
	// recover the completion times the record does not store.
	d, err := runtime.NewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: cfg.Policy, Clamp: cfg.Clamp}))
	if err != nil {
		return err
	}
	res, err := d.Run(sc)
	var envErr *runtime.EnvelopeError
	if err != nil && !errors.As(err, &envErr) {
		return err
	}
	proc, completion := model.NoProcess, model.Time(0)
	if len(res.HardViolations) > 0 {
		proc = res.HardViolations[0]
		completion = res.CompletionTimes[proc]
	}
	ce := appio.NewCounterexample(app, sc, proc, completion, nil)
	ce.Violations = appio.NewViolationRecords(app, rep.Records[pick].Violations)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := appio.EncodeCounterexample(f, ce); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("ce-out: cycle %d written to %s (replay: ftsim -replay %s -policy %s)\n",
		pick, path, path, cfg.Policy)
	return nil
}
