// Command ftsim evaluates the three scheduling algorithms on an
// application by Monte-Carlo simulation: mean utility under 0..k injected
// transient faults, schedule switches, re-executions, and a hard-deadline
// audit. It also replays certification counterexamples (-replay) against
// a tree, rendering the offending cycle as a Gantt chart.
//
// Usage:
//
//	ftsim -fixture cc -m 39 -scenarios 20000
//	ftsim -app app.json -scenarios 5000 -seed 7
//	ftsim -fixture fig1 -tree tree.json -replay ce.json
//
// Exit status: 0 on success, 1 on errors, 2 on flag errors (from package
// flag), 3 when a loaded tree fails verification (pass -force to replay
// against it anyway), 4 when a replayed counterexample reproduces a hard
// violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"math/rand"

	"ftsched/internal/appio"
	"ftsched/internal/baseline"
	"ftsched/internal/cli"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// Distinct exit codes so scripts can tell "bad tree" from "bad anything".
const (
	exitErr        = 1
	exitBadTree    = 3
	exitReproduced = 4
)

// shutdownMetrics stops the -metrics-addr server; every exit path goes
// through exit() so in-flight scrapes are flushed before the process dies
// instead of racing run completion.
var shutdownMetrics func() error

func exit(code int) {
	if shutdownMetrics != nil {
		if err := shutdownMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "ftsim: metrics shutdown:", err)
		}
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftsim:", err)
	exit(exitErr)
}

func main() {
	var (
		fixture     = flag.String("fixture", "", "built-in application: fig1, fig4c, fig8, cc")
		appPath     = flag.String("app", "", "JSON application file")
		m           = flag.Int("m", 16, "maximum quasi-static tree size")
		scenarios   = flag.Int("scenarios", 5000, "Monte-Carlo scenarios per configuration")
		seed        = flag.Int64("seed", 1, "simulation seed")
		trace       = flag.Bool("trace", false, "render one sample scenario per fault count as a Gantt chart")
		treeIn      = flag.String("tree", "", "load a stored quasi-static tree (JSON) instead of synthesising one; it is verified before use")
		replay      = flag.String("replay", "", "replay a certification counterexample (JSON from ftsched -certify) against the tree and exit")
		force       = flag.Bool("force", false, "with -replay: replay even when the tree fails verification")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars and /debug/pprof on this address (e.g. :8080) for the lifetime of the run")
	)
	flag.Parse()

	var sink obs.Sink
	if *metricsAddr != "" {
		collector := obs.NewMetrics()
		addr, shutdown, err := obs.Serve(*metricsAddr, collector)
		if err != nil {
			fatal(err)
		}
		shutdownMetrics = shutdown
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", addr)
		sink = collector
	}

	app, err := cli.LoadApp(*fixture, *appPath)
	if err != nil {
		fatal(err)
	}
	fmt.Println(app)

	ftss, err := core.FTSS(app)
	if err != nil {
		fatal(err)
	}
	var tree *core.Tree
	if *treeIn != "" {
		f, err := os.Open(*treeIn)
		if err != nil {
			fatal(err)
		}
		tree, err = appio.DecodeTree(f, app)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := core.VerifyTree(tree); err != nil {
			// One-line diagnostic and a distinct status: scripts gate
			// deployment on this exit code, and the full issue list is a
			// VerifyError away (ftsched -verify prints it).
			fmt.Fprintf(os.Stderr, "ftsim: tree %s failed verification: %s\n", *treeIn, cli.FirstLine(err))
			if *replay == "" || !*force {
				exit(exitBadTree)
			}
			fmt.Fprintln(os.Stderr, "ftsim: -force: replaying against the unverified tree")
		} else {
			fmt.Printf("loaded and verified tree from %s\n", *treeIn)
		}
	} else {
		tree, err = core.FTQSFromRoot(app, ftss, core.FTQSOptions{M: *m, Sink: sink})
		if err != nil {
			fatal(err)
		}
	}

	if *replay != "" {
		replayCounterexample(app, tree, *replay)
		return
	}

	trees := []struct {
		name string
		t    *core.Tree
	}{
		{"FTQS", tree},
		{"FTSS", sim.StaticTree(app, ftss)},
	}
	ftsf, err := baseline.FTSF(app)
	if err != nil {
		fmt.Printf("FTSF baseline: unschedulable (%v) — omitted\n", err)
		fmt.Printf("FTQS tree: %d schedules; FTSS: %d entries\n\n", tree.Size(), len(ftss.Entries))
	} else {
		trees = append(trees, struct {
			name string
			t    *core.Tree
		}{"FTSF", sim.StaticTree(app, ftsf)})
		fmt.Printf("FTQS tree: %d schedules; FTSS: %d entries; FTSF: %d entries\n\n",
			tree.Size(), len(ftss.Entries), len(ftsf.Entries))
	}

	// One compiled dispatcher per tree, shared by the k+1 fault
	// configurations (and carrying the metrics sink when one is serving).
	dispatchers := make([]*runtime.Dispatcher, len(trees))
	for i, tr := range trees {
		dispatchers[i], err = runtime.NewDispatcher(tr.t, runtime.WithSink(sink))
		if err != nil {
			fatal(err)
		}
	}

	var base float64
	fmt.Printf("%-6s %-7s %10s %8s %9s %9s %9s %9s %6s\n",
		"algo", "faults", "utility", "norm%", "p5", "p95", "switches", "recov", "viol")
	for f := 0; f <= app.K(); f++ {
		for i, tr := range trees {
			st, err := sim.MonteCarlo(tr.t, sim.MCConfig{
				Scenarios: *scenarios, Faults: f, Seed: *seed,
				Dispatcher: dispatchers[i], Sink: sink,
			})
			if err != nil {
				fatal(err)
			}
			if tr.name == "FTQS" && f == 0 {
				base = st.MeanUtility
			}
			fmt.Printf("%-6s %-7d %10.2f %8.1f %9.1f %9.1f %9.2f %9.2f %6d\n",
				tr.name, f, st.MeanUtility, stats.Ratio(st.MeanUtility, base),
				st.P05, st.P95, st.MeanSwitches, st.MeanRecoveries, st.HardViolations)
		}
	}

	if *trace {
		rng := rand.New(rand.NewSource(*seed))
		for f := 0; f <= app.K(); f++ {
			sc, err := sim.Sample(app, rng, f, nil)
			if err != nil {
				fatal(err)
			}
			res, events, err := sim.RunTrace(tree, sc)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nsample scenario with %d fault(s): utility %.1f, %d switch(es)\n",
				f, res.Utility, res.Switches)
			if err := appio.WriteGantt(os.Stdout, app, events, 0, 84); err != nil {
				fatal(err)
			}
		}
	}
	exit(0)
}

// replayCounterexample re-executes a certification counterexample through
// the tree's real dispatcher and renders the cycle, exiting with
// exitReproduced when the hard violation shows up again.
func replayCounterexample(app *model.Application, tree *core.Tree, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sc, ce, err := appio.DecodeCounterexample(f, app)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying counterexample from %s: %d fault(s)", path, sc.NFaults)
	if ce.Proc != "" {
		fmt.Printf(", expected violation on %s (deadline %d, completion %d)", ce.Proc, ce.Deadline, ce.Completion)
	}
	fmt.Println()
	res, events, err := sim.RunTrace(tree, sc)
	if err != nil {
		fatal(err)
	}
	if err := appio.WriteGantt(os.Stdout, app, events, 0, 84); err != nil {
		fatal(err)
	}
	if len(res.HardViolations) > 0 {
		for _, v := range res.HardViolations {
			p := app.Proc(v)
			fmt.Printf("hard violation reproduced: %s (deadline %d, completion %d)\n",
				p.Name, p.Deadline, res.CompletionTimes[v])
		}
		exit(exitReproduced)
	}
	fmt.Println("no hard violation in this replay (tree or scenario differs from the certified run)")
	exit(0)
}
