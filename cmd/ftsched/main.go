// Command ftsched synthesises fault-tolerant schedules: the static FTSS
// f-schedule, the FTSF baseline, or the FTQS quasi-static tree, for a JSON
// application or a built-in fixture.
//
// Usage:
//
//	ftsched -fixture fig1 -algo ftqs -m 12
//	ftsched -app app.json -algo ftss
//	ftsched -fixture cc -algo ftqs -m 39 -format dot > tree.dot
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ftsched/internal/appio"
	"ftsched/internal/baseline"
	"ftsched/internal/certify"
	"ftsched/internal/cli"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/schedule"
	"ftsched/internal/sim"
)

func main() {
	var (
		fixture = flag.String("fixture", "", "built-in application: fig1, fig4c, fig8, cc")
		appPath = flag.String("app", "", "JSON application file")
		algo    = flag.String("algo", "ftqs", "algorithm: ftss, ftsf, ftqs")
		m       = flag.Int("m", 16, "maximum quasi-static tree size (ftqs)")
		format  = flag.String("format", "text", "output format: text, dot")
		out     = flag.String("o", "-", "output file (- for stdout)")
		workers = flag.Int("workers", 0, "goroutines for the FTQS synthesis (0 = all CPUs, 1 = serial; the tree is identical for any value)")
		verify  = flag.Bool("verify", false, "audit the synthesised tree (ftqs only)")
		trim    = flag.Int("trim", 0, "trim arcs by paired simulation with this many scenarios per fault count (ftqs only)")
		treeOut = flag.String("tree-out", "", "also write the synthesised tree as JSON (ftqs only)")
		treeFmt = flag.String("tree-format", "json", "encoding for -tree-out: json (self-describing v1, single-core only) or compact (v2; v3 when the application carries a platform)")
		stats   = flag.Bool("stats", false, "print synthesis instrumentation counters to stderr (ftqs only)")
		doCert  = flag.Bool("certify", false, "exhaustively certify the result against <= -certify-faults faults through the compiled dispatcher")
		certFl  = flag.Int("certify-faults", 0, "fault bound for -certify (0 = the application's k)")
		ceOut   = flag.String("ce-out", "", "write the certification counterexample, if any, as JSON for ftsim -replay")
		recSpec = flag.String("recovery", "", cli.RecoveryFlagUsage)
	)
	flag.Parse()

	app, err := cli.LoadApp(*fixture, *appPath)
	if err != nil {
		fatal(err)
	}
	app, err = cli.ApplyRecoverySpec(app, *recSpec)
	if err != nil {
		fatal(err)
	}
	w, done, err := cli.OutputWriter(*out)
	if err != nil {
		fatal(err)
	}
	defer done()

	switch *algo {
	case "ftss", "ftsf":
		var s *schedule.FSchedule
		if *algo == "ftss" {
			s, err = core.FTSS(app)
		} else {
			s, err = baseline.FTSF(app)
		}
		if err != nil {
			fatal(err)
		}
		if *doCert {
			certifyTree(app, sim.StaticTree(app, s), *certFl, *workers, *ceOut)
		}
		if *format == "dot" {
			tree := sim.StaticTree(app, s)
			if err := appio.WriteTreeDOT(w, tree); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Fprintf(w, "%s\n", app)
		fmt.Fprintf(w, "schedule: %s\n", s.Format(app))
		fmt.Fprintf(w, "expected no-fault utility: %.2f\n\n", schedule.ExpectedUtility(app, s))
		fmt.Fprint(w, schedule.TimingReport(app, s, app.K()))
	case "ftqs":
		var collector *obs.Metrics
		var sink obs.Sink
		if *stats {
			collector = obs.NewMetrics()
			sink = collector
		}
		tree, err := core.FTQS(app, core.FTQSOptions{M: *m, Workers: *workers, Sink: sink})
		if err != nil {
			fatal(err)
		}
		if *trim > 0 {
			removed, err := sim.Trim(tree, sim.TrimConfig{Scenarios: *trim, Seed: 1, Sink: sink})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trimmed %d arcs; %d schedules remain\n", removed, tree.Size())
		}
		if collector != nil {
			printStats(collector)
		}
		if *treeOut != "" {
			encode := appio.EncodeTree
			switch *treeFmt {
			case "json":
			case "compact":
				encode = appio.EncodeTreeCompact
			default:
				fatal(fmt.Errorf("unknown tree format %q (want json or compact)", *treeFmt))
			}
			f, err := os.Create(*treeOut)
			if err != nil {
				fatal(err)
			}
			if err := encode(f, tree); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tree written to %s\n", *treeOut)
		}
		if *verify {
			if err := core.VerifyTree(tree); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "tree verified: all switch guards safe")
		}
		if *doCert {
			certifyTree(app, tree, *certFl, *workers, *ceOut)
		}
		if *format == "dot" {
			if err := appio.WriteTreeDOT(w, tree); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Fprintf(w, "%s\n", app)
		fmt.Fprintf(w, "quasi-static tree: %d schedules, %d bytes\n",
			tree.Size(), tree.MemoryFootprint())
		fmt.Fprint(w, tree.Format())
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want ftss, ftsf or ftqs)", *algo))
	}
}

// certifyTree runs the exhaustive certification engine and reports the
// verdict on stderr. A counterexample is written to ceOut (when set) in
// the format ftsim -replay consumes, and exits with status 1.
func certifyTree(app *model.Application, tree *core.Tree, maxFaults, workers int, ceOut string) {
	start := time.Now()
	rep, err := certify.Certify(tree, certify.Config{MaxFaults: maxFaults, Workers: workers})
	elapsed := time.Since(start)
	var ceErr *certify.CounterexampleError
	switch {
	case errors.As(err, &ceErr):
		ce := &ceErr.Counterexample
		fmt.Fprintf(os.Stderr, "certification FAILED: %s\n", err)
		if ceOut != "" {
			f, err := os.Create(ceOut)
			if err != nil {
				fatal(err)
			}
			enc := appio.NewCounterexample(app, ce.Scenario, ce.Proc, ce.Completion, ce.Path)
			if err := appio.EncodeCounterexample(f, enc); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "counterexample written to %s (replay: ftsim -replay %s)\n", ceOut, ceOut)
		}
		os.Exit(1)
	case err != nil:
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"certified: no hard deadline missed under <= %d faults (%s mode, %d patterns [+%d pruned], %d scenarios, %d bisection probes, %v)\n",
		rep.MaxFaults, rep.Mode, rep.Patterns, rep.PatternsPruned, rep.Scenarios, rep.BisectionRuns, elapsed.Round(time.Microsecond))
	if rep.WorstSlackProc != model.NoProcess {
		fmt.Fprintf(os.Stderr, "  worst hard slack: %d (process %s); minimum utility: %.2f\n",
			rep.WorstSlack, app.Proc(rep.WorstSlackProc).Name, rep.MinUtility)
	}
}

// printStats writes every non-zero counter of the run to stderr, sorted by
// name, so synthesis behaviour (memoisation hit rate, candidate rejection,
// worker utilisation) is inspectable without standing up the HTTP exporter.
func printStats(m *obs.Metrics) {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name, v := range snap.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(os.Stderr, "synthesis stats:")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-40s %d\n", name, snap.Counters[name])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftsched:", err)
	os.Exit(1)
}
