// Command ftload soaks an ftserved process with a fleet of simulated
// embedded devices and records the latency distribution of the batch
// dispatch path — the service-layer benchmark behind BENCH_serve.json.
//
// Each device is one goroutine with its own deterministic in-model cycle
// stream (seeded per device, sampled through the same scenario engine the
// evaluator uses). Devices synthesise the shared tree once, then issue
// batch dispatch requests back to back; every request's wall-clock
// latency lands in the histogram, and admission rejections (HTTP 429/503
// with typed bodies) are counted separately from transport or server
// errors, so a run against a rate-limited server still reports honest
// numbers.
//
// Usage:
//
//	ftload -devices 100 -requests 50 -batch 64 -fixture fig1
//	ftload -addr http://127.0.0.1:8433 -devices 10000 -requests 10
//	ftload -devices 1000 -out BENCH_serve.json
//
// Without -addr, ftload boots an in-process ftserved on a loopback port
// and soaks that — the self-contained mode CI uses.
//
// Exit status: 0 when every request completed or was rejected with a
// typed admission error and at least one request succeeded; 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ftsched/client"
	"ftsched/internal/appio"
	"ftsched/internal/cli"
	"ftsched/internal/model"
	"ftsched/internal/serve"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftload:", err)
	os.Exit(1)
}

// Result is the BENCH_serve.json schema.
type Result struct {
	Fixture   string  `json:"fixture"`
	Devices   int     `json:"devices"`
	Requests  int     `json:"requests_per_device"`
	Batch     int     `json:"cycles_per_batch"`
	Elapsed   float64 `json:"elapsed_sec"`
	OK        int64   `json:"ok"`
	Rejected  int64   `json:"rejected_admission"`
	Errors    int64   `json:"errors"`
	Scenarios int64   `json:"scenarios_dispatched"`
	// ScenariosPerSec is dispatched cycles per wall-clock second across
	// the whole fleet.
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	// Latency quantiles of successful batch dispatch requests.
	LatencyMS LatencyMS `json:"latency_ms"`
}

// LatencyMS is the latency summary, in milliseconds.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running ftserved (empty: boot one in-process)")
		fixture  = flag.String("fixture", "fig1", "built-in application the fleet dispatches against: fig1, fig4c, fig8, cc")
		devices  = flag.Int("devices", 64, "simulated devices (one goroutine each)")
		requests = flag.Int("requests", 20, "batch dispatch requests per device")
		batch    = flag.Int("batch", 64, "cycles per batch request")
		m        = flag.Int("m", 8, "quasi-static tree size for the shared application")
		seed     = flag.Int64("seed", 1, "base seed; device d draws its cycles from seed+d")
		workers  = flag.Int("workers", 1, "server-side worker hint per batch (the soak measures concurrency across devices, not within one batch)")
		out      = flag.String("out", "", "write the JSON benchmark record here (default: stdout summary only)")
	)
	flag.Parse()

	app, err := cli.LoadApp(*fixture, "")
	if err != nil {
		fatal(err)
	}

	base := *addr
	if base == "" {
		srv := serve.New(serve.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "ftload: booted in-process ftserved on %s\n", base)
	}

	// One shared transport sized for the fleet: the soak measures the
	// server, not a starved client connection pool.
	transport := &http.Transport{
		MaxIdleConns:        *devices,
		MaxIdleConnsPerHost: *devices,
		IdleConnTimeout:     90 * time.Second,
	}
	httpc := &http.Client{Transport: transport, Timeout: 120 * time.Second}
	c := client.New(base, client.WithHTTPClient(httpc))

	var appBuf bytes.Buffer
	if err := appio.EncodeApplication(&appBuf, app); err != nil {
		fatal(err)
	}
	ctx := context.Background()
	syn, err := c.Synthesize(ctx, serveapi.SynthesizeRequest{
		App: appBuf.Bytes(), Options: serveapi.FTQSOptionsJSON{M: *m},
	})
	if err != nil {
		fatal(fmt.Errorf("synthesize: %w", err))
	}
	fmt.Fprintf(os.Stderr, "ftload: tree %s (%d nodes), %d devices x %d requests x %d cycles\n",
		syn.TreeKey[:12], syn.Nodes, *devices, *requests, *batch)

	type deviceStats struct {
		lat      []time.Duration
		ok       int64
		rejected int64
		errs     int64
	}
	stats := make([]deviceStats, *devices)
	var wg sync.WaitGroup
	start := time.Now()
	for d := 0; d < *devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			st := &stats[d]
			st.lat = make([]time.Duration, 0, *requests)
			cycles := sampleCycles(app, *seed+int64(d), *batch)
			req := serveapi.DispatchRequest{
				TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
				Cycles:  cycles,
				Workers: *workers,
			}
			for r := 0; r < *requests; r++ {
				t0 := time.Now()
				_, err := c.Dispatch(ctx, req)
				elapsed := time.Since(t0)
				switch werr, ok := err.(*serveapi.Error); {
				case err == nil:
					st.ok++
					st.lat = append(st.lat, elapsed)
				case ok && (werr.Kind == serveapi.KindRateLimited || werr.Kind == serveapi.KindOverloaded || werr.Kind == serveapi.KindDraining):
					st.rejected++
				default:
					st.errs++
				}
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Fixture: *fixture, Devices: *devices, Requests: *requests, Batch: *batch,
		Elapsed: elapsed.Seconds(),
	}
	var all []time.Duration
	for i := range stats {
		res.OK += stats[i].ok
		res.Rejected += stats[i].rejected
		res.Errors += stats[i].errs
		all = append(all, stats[i].lat...)
	}
	res.Scenarios = res.OK * int64(*batch)
	res.ScenariosPerSec = float64(res.Scenarios) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.LatencyMS = LatencyMS{
		P50: quantileMS(all, 0.50),
		P95: quantileMS(all, 0.95),
		P99: quantileMS(all, 0.99),
	}
	if len(all) > 0 {
		res.LatencyMS.Max = float64(all[len(all)-1]) / float64(time.Millisecond)
	}

	fmt.Printf("requests: %d ok, %d rejected (admission), %d errors in %.2fs\n",
		res.OK, res.Rejected, res.Errors, res.Elapsed)
	fmt.Printf("dispatch: %d cycles, %.0f scenarios/sec\n", res.Scenarios, res.ScenariosPerSec)
	fmt.Printf("latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		res.LatencyMS.P50, res.LatencyMS.P95, res.LatencyMS.P99, res.LatencyMS.Max)

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ftload: wrote %s\n", *out)
	}
	if res.Errors > 0 || res.OK == 0 {
		os.Exit(1)
	}
}

// quantileMS reads the q-quantile (nearest-rank) from a sorted latency
// slice, in milliseconds; an empty slice yields 0.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// sampleCycles draws one device's in-model batch deterministically: the
// same seed always yields the same cycles, so soak runs are reproducible.
func sampleCycles(app *model.Application, seed int64, n int) []serveapi.CycleJSON {
	var rng sim.RNG
	var sc sim.Scenario
	cycles := make([]serveapi.CycleJSON, n)
	for i := 0; i < n; i++ {
		rng.Reseed(sim.ScenarioSeed(seed, i))
		if err := sim.SampleRNGInto(&sc, app, &rng, i%(app.K()+1), nil); err != nil {
			fatal(err)
		}
		cycles[i] = serveapi.CycleJSONOf(sim.Scenario{
			Durations: append([]model.Time(nil), sc.Durations...),
			FaultsAt:  append([]int(nil), sc.FaultsAt...),
			NFaults:   sc.NFaults,
		})
	}
	return cycles
}
