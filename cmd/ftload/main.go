// Command ftload soaks an ftserved process with a fleet of simulated
// embedded devices and records the latency distribution of the batch
// dispatch path — the service-layer benchmark behind BENCH_serve.json
// and, in -chaos mode, the resilience benchmark behind
// BENCH_resilience.json.
//
// Each device is one goroutine with its own deterministic in-model cycle
// stream (seeded per device, sampled through the same scenario engine the
// evaluator uses). Devices synthesise the shared tree once, then issue
// batch dispatch requests back to back through the self-healing client:
// admission rejections (typed 429/503) are waited out per the server's
// RetryAfterMillis hint, transport faults are retried with capped
// full-jitter backoff, and only requests that stay failed after the
// client gives up count against the run.
//
// In -chaos mode ftload boots the in-process server behind a seeded
// faultwire injector (-fault-spec, -fault-seed), kills the server with
// prejudice mid-run — dropping every in-flight connection and the whole
// compiled-tree cache — and restarts it on the same port. Dispatch
// requests embed the application next to the tree key, so the restarted
// server recompiles the identical tree (SHA-256 keys make the retry
// idempotent) and the soak completes with zero lost responses.
//
// Usage:
//
//	ftload -devices 100 -requests 50 -batch 64 -fixture fig1
//	ftload -addr http://127.0.0.1:8433 -devices 10000 -requests 10
//	ftload -devices 1000 -out BENCH_serve.json
//	ftload -chaos -fault-spec 'latency:p=0.1,ms=5;reset:p=0.05;truncate:p=0.03;corrupt:p=0.03;error:p=0.05' -out BENCH_resilience.json
//
// Without -addr, ftload boots an in-process ftserved on a loopback port
// and soaks that — the self-contained mode CI uses. -chaos requires the
// in-process server (it must be able to kill it).
//
// Exit status: 0 when every request completed (or, outside -chaos, was
// rejected with a typed admission error after well-behaved retries) and
// at least one request succeeded; in -chaos mode additionally zero lost
// responses; 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/client"
	"ftsched/internal/appio"
	"ftsched/internal/cli"
	"ftsched/internal/faultwire"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/serve"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftload:", err)
	os.Exit(1)
}

// Result is the BENCH_serve.json / BENCH_resilience.json schema.
type Result struct {
	Fixture   string  `json:"fixture"`
	Devices   int     `json:"devices"`
	Requests  int     `json:"requests_per_device"`
	Batch     int     `json:"cycles_per_batch"`
	Elapsed   float64 `json:"elapsed_sec"`
	OK        int64   `json:"ok"`
	Rejected  int64   `json:"rejected_admission"`
	Errors    int64   `json:"errors"`
	Scenarios int64   `json:"scenarios_dispatched"`
	// ScenariosPerSec is dispatched cycles per wall-clock second across
	// the whole fleet (the goodput figure).
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	// Retries counts client-side retry attempts across the fleet.
	Retries int64 `json:"retries"`
	// Latency quantiles of successful batch dispatch requests, as the
	// client observed them — retry backoff included.
	LatencyMS LatencyMS `json:"latency_ms"`

	// Chaos-soak extras (present only with -chaos).
	Chaos bool `json:"chaos,omitempty"`
	// FaultSpec and FaultSeed reproduce the injected-fault schedule.
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// InjectedFaults counts wire faults the injector actually fired.
	InjectedFaults int64 `json:"injected_faults,omitempty"`
	// Restarts counts hard kill+restart cycles of the server.
	Restarts int `json:"restarts,omitempty"`
	// BreakerOpens counts client circuit-breaker open transitions.
	BreakerOpens int64 `json:"breaker_opens,omitempty"`
	// Lost counts responses never obtained — the soak's headline is
	// that this stays zero through faults and a server crash.
	Lost int64 `json:"lost_responses"`
	// Availability is OK / (OK + Lost + Errors).
	Availability float64 `json:"availability"`
}

// LatencyMS is the latency summary, in milliseconds.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// localServer owns the in-process ftserved: a fixed loopback port, an
// optional faultwire injector that survives restarts (the fault schedule
// keeps advancing), and a kill/start pair the chaos soak drives. A kill
// is deliberately brutal — Close drops in-flight connections and the
// replacement server starts with an empty tree cache, exactly what a
// crashed process would look like to the fleet.
type localServer struct {
	cfg      serve.Config
	injector *faultwire.Injector

	mu      sync.Mutex
	addr    string
	httpSrv *http.Server
}

// start listens (first call picks the port, restarts reuse it) and
// serves a fresh serve.Server behind the injector.
func (ls *localServer) start() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	addr := ls.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ls.addr = ln.Addr().String()
	handler := serve.New(ls.cfg).Handler()
	if ls.injector != nil {
		handler = ls.injector.Middleware(handler)
	}
	ls.httpSrv = &http.Server{Handler: handler}
	go func(s *http.Server) { _ = s.Serve(ln) }(ls.httpSrv)
	return nil
}

// kill closes the listener and every in-flight connection.
func (ls *localServer) kill() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.httpSrv != nil {
		_ = ls.httpSrv.Close()
		ls.httpSrv = nil
	}
}

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running ftserved (empty: boot one in-process)")
		fixture  = flag.String("fixture", "fig1", "built-in application the fleet dispatches against: fig1, fig4c, fig8, cc")
		devices  = flag.Int("devices", 64, "simulated devices (one goroutine each)")
		requests = flag.Int("requests", 20, "batch dispatch requests per device")
		batch    = flag.Int("batch", 64, "cycles per batch request")
		m        = flag.Int("m", 8, "quasi-static tree size for the shared application")
		seed     = flag.Int64("seed", 1, "base seed; device d draws its cycles from seed+d")
		workers  = flag.Int("workers", 1, "server-side worker hint per batch (the soak measures concurrency across devices, not within one batch)")
		out      = flag.String("out", "", "write the JSON benchmark record here (default: stdout summary only)")

		chaosMode = flag.Bool("chaos", false, "resilience soak: inject wire faults and kill+restart the in-process server mid-run")
		faultSpec = flag.String("fault-spec", "latency:p=0.1,ms=5;error:p=0.05;reset:p=0.04;truncate:p=0.03;corrupt:p=0.03",
			"faultwire spec for -chaos (see internal/faultwire)")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the injected-fault schedule (-chaos)")
		restarts  = flag.Int("restarts", 1, "hard kill+restart cycles of the server during a -chaos soak")
	)
	flag.Parse()

	if *chaosMode && *addr != "" {
		fatal(errors.New("-chaos needs the in-process server (it kills and restarts it); drop -addr"))
	}

	app, err := cli.LoadApp(*fixture, "")
	if err != nil {
		fatal(err)
	}

	var local *localServer
	base := *addr
	if base == "" {
		local = &localServer{cfg: serve.Config{}}
		if *chaosMode {
			spec, err := faultwire.ParseSpec(*faultSpec)
			if err != nil {
				fatal(err)
			}
			local.injector = faultwire.New(spec, *faultSeed, nil)
		}
		if err := local.start(); err != nil {
			fatal(err)
		}
		base = "http://" + local.addr
		fmt.Fprintf(os.Stderr, "ftload: booted in-process ftserved on %s\n", base)
	}

	// One shared transport sized for the fleet: the soak measures the
	// server, not a starved client connection pool.
	transport := &http.Transport{
		MaxIdleConns:        *devices,
		MaxIdleConnsPerHost: *devices,
		IdleConnTimeout:     90 * time.Second,
	}
	httpc := &http.Client{Transport: transport, Timeout: 120 * time.Second}
	clientM := obs.NewMetrics()
	c := client.New(base,
		client.WithHTTPClient(httpc),
		client.WithRetryPolicy(client.DefaultRetryPolicy()),
		client.WithMetrics(clientM),
	)

	var appBuf bytes.Buffer
	if err := appio.EncodeApplication(&appBuf, app); err != nil {
		fatal(err)
	}
	opts := serveapi.FTQSOptionsJSON{M: *m}
	ctx := context.Background()
	syn, err := c.Synthesize(ctx, serveapi.SynthesizeRequest{App: appBuf.Bytes(), Options: opts})
	if err != nil {
		fatal(fmt.Errorf("synthesize: %w", err))
	}
	fmt.Fprintf(os.Stderr, "ftload: tree %s (%d nodes), %d devices x %d requests x %d cycles\n",
		syn.TreeKey[:12], syn.Nodes, *devices, *requests, *batch)

	// The tree reference devices dispatch against. The chaos soak embeds
	// the application: a freshly restarted server has an empty cache, and
	// the embedded app lets it recompile the byte-identical tree (same
	// SHA-256 key) instead of answering unknown_tree.
	ref := serveapi.TreeRef{TreeKey: syn.TreeKey}
	if *chaosMode {
		ref.App = appBuf.Bytes()
		ref.Options = &opts
	}

	// The killer goroutine watches fleet progress and spreads -restarts
	// hard kills across the middle of the run.
	total := int64(*devices) * int64(*requests)
	var completed atomic.Int64
	killerDone := make(chan struct{})
	restartsDone := 0
	if *chaosMode && *restarts > 0 {
		go func() {
			defer close(killerDone)
			for k := 1; k <= *restarts; k++ {
				at := total * int64(k) / int64(*restarts+1)
				for completed.Load() < at {
					time.Sleep(10 * time.Millisecond)
				}
				fmt.Fprintf(os.Stderr, "ftload: killing server (restart %d/%d, %d/%d responses in)\n",
					k, *restarts, completed.Load(), total)
				local.kill()
				time.Sleep(150 * time.Millisecond)
				if err := local.start(); err != nil {
					fatal(fmt.Errorf("restarting server: %w", err))
				}
				restartsDone++
			}
		}()
	} else {
		close(killerDone)
	}

	type deviceStats struct {
		lat      []time.Duration
		ok       int64
		rejected int64
		errs     int64
		lost     int64
	}
	stats := make([]deviceStats, *devices)
	var wg sync.WaitGroup
	start := time.Now()
	for d := 0; d < *devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			st := &stats[d]
			st.lat = make([]time.Duration, 0, *requests)
			cycles := sampleCycles(app, *seed+int64(d), *batch)
			req := serveapi.DispatchRequest{TreeRef: ref, Cycles: cycles, Workers: *workers}
			for r := 0; r < *requests; r++ {
				t0 := time.Now()
				err := dispatchOnce(ctx, c, req, *chaosMode)
				elapsed := time.Since(t0)
				completed.Add(1)
				switch {
				case err == nil:
					st.ok++
					st.lat = append(st.lat, elapsed)
				case isAdmission(err):
					// A well-behaved client already waited out every
					// RetryAfterMillis hint; a rejection that still
					// stands is the server's honest "not now".
					st.rejected++
				case *chaosMode:
					st.lost++
				default:
					st.errs++
				}
			}
		}(d)
	}
	wg.Wait()
	<-killerDone
	elapsed := time.Since(start)

	res := Result{
		Fixture: *fixture, Devices: *devices, Requests: *requests, Batch: *batch,
		Elapsed: elapsed.Seconds(),
		Retries: clientM.Counter(obs.ClientRetries),
	}
	var all []time.Duration
	for i := range stats {
		res.OK += stats[i].ok
		res.Rejected += stats[i].rejected
		res.Errors += stats[i].errs
		res.Lost += stats[i].lost
		all = append(all, stats[i].lat...)
	}
	res.Scenarios = res.OK * int64(*batch)
	res.ScenariosPerSec = float64(res.Scenarios) / elapsed.Seconds()
	if denom := res.OK + res.Lost + res.Errors; denom > 0 {
		res.Availability = float64(res.OK) / float64(denom)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.LatencyMS = LatencyMS{
		P50: quantileMS(all, 0.50),
		P95: quantileMS(all, 0.95),
		P99: quantileMS(all, 0.99),
	}
	if len(all) > 0 {
		res.LatencyMS.Max = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	if *chaosMode {
		res.Chaos = true
		res.FaultSpec = *faultSpec
		res.FaultSeed = *faultSeed
		res.Restarts = restartsDone
		res.BreakerOpens = clientM.Counter(obs.ClientBreakerOpened)
		if local.injector != nil {
			res.InjectedFaults = local.injector.Injected()
		}
	}

	fmt.Printf("requests: %d ok, %d rejected (admission), %d errors, %d lost in %.2fs\n",
		res.OK, res.Rejected, res.Errors, res.Lost, res.Elapsed)
	fmt.Printf("dispatch: %d cycles, %.0f scenarios/sec, %d client retries\n",
		res.Scenarios, res.ScenariosPerSec, res.Retries)
	fmt.Printf("latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		res.LatencyMS.P50, res.LatencyMS.P95, res.LatencyMS.P99, res.LatencyMS.Max)
	if *chaosMode {
		fmt.Printf("chaos:    %d injected faults, %d restarts, %d breaker opens, availability %.4f\n",
			res.InjectedFaults, res.Restarts, res.BreakerOpens, res.Availability)
	}

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ftload: wrote %s\n", *out)
	}
	if res.Errors > 0 || res.OK == 0 || res.Lost > 0 {
		os.Exit(1)
	}
}

// dispatchOnce issues one dispatch through the self-healing client. In
// chaos mode a response is never abandoned while the server might come
// back: exhausted retry rounds re-enter with a pause (the policy inside
// each round already did the fine-grained backoff), bounded well above
// the restart window so a genuinely dead server still terminates the
// soak.
func dispatchOnce(ctx context.Context, c *client.Client, req serveapi.DispatchRequest, chaos bool) error {
	rounds := 1
	if chaos {
		rounds = 40
	}
	var err error
	for i := 0; i < rounds; i++ {
		_, err = c.Dispatch(ctx, req)
		if err == nil {
			return nil
		}
		var rex *client.RetryExhaustedError
		if !errors.As(err, &rex) {
			// Non-retryable: more rounds cannot change the answer.
			return err
		}
		if chaos && i+1 < rounds {
			time.Sleep(100 * time.Millisecond)
		}
	}
	return err
}

// isAdmission reports whether an error is (or exhausted retries on) a
// typed admission rejection.
func isAdmission(err error) bool {
	var werr *serveapi.Error
	if !errors.As(err, &werr) {
		return false
	}
	switch werr.Kind {
	case serveapi.KindRateLimited, serveapi.KindOverloaded, serveapi.KindDraining:
		return true
	}
	return false
}

// quantileMS reads the q-quantile (nearest-rank) from a sorted latency
// slice, in milliseconds; an empty slice yields 0.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// sampleCycles draws one device's in-model batch deterministically: the
// same seed always yields the same cycles, so soak runs are reproducible.
func sampleCycles(app *model.Application, seed int64, n int) []serveapi.CycleJSON {
	var rng sim.RNG
	var sc sim.Scenario
	cycles := make([]serveapi.CycleJSON, n)
	for i := 0; i < n; i++ {
		rng.Reseed(sim.ScenarioSeed(seed, i))
		if err := sim.SampleRNGInto(&sc, app, &rng, i%(app.K()+1), nil); err != nil {
			fatal(err)
		}
		cycles[i] = serveapi.CycleJSONOf(sim.Scenario{
			Durations: append([]model.Time(nil), sc.Durations...),
			FaultsAt:  append([]int(nil), sc.FaultsAt...),
			NFaults:   sc.NFaults,
		})
	}
	return cycles
}
