// Command ftexperiments regenerates the evaluation of Izosimov et al.
// (DATE 2008): Fig. 9a, Fig. 9b, Table 1 and the cruise-controller case
// study, plus beyond-the-paper studies (overhead, optgap, hardratio,
// ftcost, chaos).
//
// Usage:
//
//	ftexperiments -exp all                      # CI-sized defaults
//	ftexperiments -exp fig9 -apps 50 -scenarios 20000   # paper-sized
//	ftexperiments -exp table1 -apps 50 -scenarios 20000
//	ftexperiments -exp cc -scenarios 20000
//	ftexperiments -exp energy                   # heterogeneous-platform study
//	ftexperiments -exp chaos -scenarios 5000    # out-of-model containment
//
// See EXPERIMENTS.md for recorded outputs and their comparison to the
// paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ftsched/internal/cli"
	"ftsched/internal/experiments"
)

// shutdownMetrics stops the -metrics-addr server; every exit path goes
// through exit() so in-flight scrapes are flushed before the process dies.
var shutdownMetrics func() error

func exit(code int) {
	if shutdownMetrics != nil {
		if err := shutdownMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "ftexperiments: metrics shutdown:", err)
		}
	}
	os.Exit(code)
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: fig9, table1, cc, all")
		apps        = flag.Int("apps", 0, "applications per configuration (0 = default)")
		scenarios   = flag.Int("scenarios", 0, "Monte-Carlo scenarios (0 = default)")
		seed        = flag.Int64("seed", 0, "random seed (0 = default)")
		m           = flag.Int("m", 0, "FTQS tree bound for fig9/cc (0 = default)")
		trim        = flag.Bool("trim", false, "apply simulation-based arc trimming (table1)")
		workers     = flag.Int("workers", 0, "goroutines for FTQS synthesis and Monte-Carlo evaluation (0 = all CPUs, 1 = serial; results are identical for any value)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars and /debug/pprof on this address (e.g. :8080) for the lifetime of the run")
	)
	flag.Parse()

	metrics, err := cli.ServeMetrics("ftexperiments", *metricsAddr)
	if err != nil {
		fatal(err)
	}
	shutdownMetrics = metrics.Shutdown
	sink := metrics.Sink()
	if metrics != nil {
		// A signal mid-run flushes the metrics endpoint before exiting, so
		// the final scrape still observes the completed experiments'
		// counters instead of racing a torn-down listener.
		go func() {
			s := <-cli.NotifySignals()
			fmt.Fprintf(os.Stderr, "ftexperiments: %v: flushing metrics and exiting\n", s)
			fatal(fmt.Errorf("interrupted by %v", s))
		}()
	}

	runFig9 := func() {
		cfg := experiments.DefaultFig9()
		if *apps > 0 {
			cfg.AppsPerSize = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Fig9(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps/size, %d scenarios, M=%d, %s)\n\n",
			cfg.AppsPerSize, cfg.Scenarios, cfg.M, time.Since(t0).Round(time.Millisecond))
	}
	runTable1 := func() {
		cfg := experiments.DefaultTable1()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		cfg.Trim = *trim
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}
	runCC := func() {
		cfg := experiments.DefaultCC()
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.CruiseController(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d scenarios, %s)\n\n", cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runOverhead := func() {
		cfg := experiments.DefaultOverhead()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Overhead(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runOptGap := func() {
		cfg := experiments.DefaultOptGap()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.OptGap(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runHardRatio := func() {
		cfg := experiments.DefaultHardRatio()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.HardRatio(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps × %d processes per point, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runFTCost := func() {
		cfg := experiments.DefaultFTCost()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.FTCost(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runEnergy := func() {
		cfg := experiments.DefaultEnergy()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Energy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d generated apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runRecovery := func() {
		cfg := experiments.DefaultRecovery()
		if *apps > 0 {
			cfg.Apps = *apps
		}
		if *scenarios > 0 {
			cfg.Scenarios = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Recovery(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d generated apps × %d processes, %d scenarios, %s)\n\n",
			cfg.Apps, cfg.Processes, cfg.Scenarios, time.Since(t0).Round(time.Millisecond))
	}

	runChaos := func() {
		cfg := experiments.DefaultChaos()
		if *scenarios > 0 {
			cfg.Cycles = *scenarios
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *m > 0 {
			cfg.M = *m
		}
		cfg.Workers = *workers
		cfg.Sink = sink
		t0 := time.Now()
		res, err := experiments.Chaos(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d cycles per policy, seed %d, %s)\n\n",
			cfg.Cycles, cfg.Seed, time.Since(t0).Round(time.Millisecond))
	}

	switch *exp {
	case "fig9", "fig9a", "fig9b":
		runFig9()
	case "table1":
		runTable1()
	case "cc", "cruise":
		runCC()
	case "overhead":
		runOverhead()
	case "optgap":
		runOptGap()
	case "hardratio":
		runHardRatio()
	case "ftcost":
		runFTCost()
	case "energy":
		runEnergy()
	case "recovery":
		runRecovery()
	case "chaos":
		runChaos()
	case "all":
		runFig9()
		runTable1()
		runCC()
		runOverhead()
		runOptGap()
		runHardRatio()
		runFTCost()
		runEnergy()
		runRecovery()
		runChaos()
	default:
		fatal(fmt.Errorf("unknown experiment %q (want fig9, table1, cc, overhead, optgap, hardratio, ftcost, energy, recovery, chaos or all)", *exp))
	}
	exit(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftexperiments:", err)
	exit(1)
}
