// Command ftserved is the long-running scheduling service: one process
// owning a bounded cache of compiled quasi-static trees, serving
// synthesis, Monte-Carlo evaluation, certification, chaos campaigns,
// hot reloads and per-cycle dispatch decisions to many tenants over the
// versioned ftsched-api/v1 HTTP/JSON contract (see internal/serveapi).
//
// Usage:
//
//	ftserved -addr :8433
//	ftserved -addr :8433 -metrics-addr :8080
//	ftserved -addr :8433 -rate 100 -burst 200 -max-inflight 32
//	ftserved -addr :8433 -cache 128 -max-workers 4
//	ftserved -addr :8433 -shed-after 50 -shed-window 10s
//	ftserved -addr :8433 -fault-spec 'reset:p=0.05;corrupt:p=0.03' -fault-seed 7
//
// Endpoints (all POST bodies carry {"format":"ftsched-api/v1",...}):
//
//	POST /v1/synthesize   compile (or fetch) a tree; returns its tree_key
//	POST /v1/eval         Monte-Carlo evaluation of a tree
//	POST /v1/certify      exhaustive certification (counterexample on failure)
//	POST /v1/chaos        seeded out-of-model chaos campaign
//	POST /v1/dispatch     batch per-cycle dispatch decisions
//	POST /v1/reload       re-synthesise + atomically swap a cached tree
//	GET  /v1/healthz      drain state, cache size, tenants, in-flight
//	GET  /v1/tenants/{t}/metrics   per-tenant Prometheus exposition
//
// Admission control is per tenant (the X-FTSched-Tenant header): an empty
// token bucket rejects with HTTP 429 and a retry-after hint, a full
// in-flight cap with HTTP 503 — always as typed JSON error bodies, never
// dropped connections. With -shed-after, sustained admission pressure
// degrades the server gracefully: expensive endpoints (certify, chaos,
// then synthesize/reload) are shed with retryable typed 503s while
// dispatch and eval stay up, and /v1/healthz walks ok → degraded →
// draining. With -fault-spec, a deterministic seeded fault injector
// (internal/faultwire) wraps the API — latency, typed errors, connection
// resets, truncated and corrupted bodies — for resilience testing of
// clients; health and metrics endpoints stay clean.
// On SIGTERM/SIGINT the server drains: new requests
// get a typed 503 "draining", accepted requests run to completion, and
// the -metrics-addr endpoint flushes in-flight scrapes before the process
// exits.
//
// Exit status: 0 after a clean drain, 1 on serve or drain errors,
// 2 on flag parse errors (from package flag).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ftsched/internal/cli"
	"ftsched/internal/faultwire"
	"ftsched/internal/obs"
	"ftsched/internal/serve"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftserved:", err)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8433", "listen address for the scheduling API")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars and /debug/pprof on this address (e.g. :8080)")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "maximum compiled trees held in the cache (LRU beyond it)")
		rate        = flag.Float64("rate", 0, "per-tenant admission rate (requests/second; 0 = unlimited)")
		burst       = flag.Float64("burst", 0, "per-tenant burst (token bucket size; 0 = max(rate, 1))")
		maxInflight = flag.Int("max-inflight", 0, "per-tenant concurrent request cap (0 = unlimited)")
		maxWorkers  = flag.Int("max-workers", 0, "clamp per-request worker hints to this many goroutines (0 = no clamp; results are identical for any value)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for accepted requests before giving up")
		shedAfter   = flag.Int("shed-after", 0, "admission rejections within -shed-window that degrade the server and shed expensive endpoints (0 = never shed)")
		shedWindow  = flag.Duration("shed-window", 10*time.Second, "sliding window for -shed-after")
		faultSpec   = flag.String("fault-spec", "", "inject deterministic wire faults on API requests (e.g. 'latency:p=0.1,ms=20;reset:p=0.05'; see internal/faultwire)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed of the -fault-spec injection schedule")
	)
	flag.Parse()

	metrics, err := cli.ServeMetrics("ftserved", *metricsAddr)
	if err != nil {
		fatal(err)
	}

	var collector *obs.Metrics
	if metrics != nil {
		collector = metrics.Collector
	}
	srv := serve.New(serve.Config{
		CacheSize: *cacheSize,
		Limits: serve.Limits{
			RatePerSec:  *rate,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
		},
		Metrics:    collector,
		MaxWorkers: *maxWorkers,
		Overload: serve.OverloadConfig{
			Window:       *shedWindow,
			DegradeAfter: *shedAfter,
		},
	})

	handler := srv.Handler()
	if *faultSpec != "" {
		spec, err := faultwire.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		handler = faultwire.New(spec, *faultSeed, srv.Metrics()).Middleware(handler)
		fmt.Fprintf(os.Stderr, "ftserved: injecting wire faults (spec %q, seed %d)\n", *faultSpec, *faultSeed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ftserved: serving ftsched-api/v1 on http://%s/v1/\n", ln.Addr())

	sig := cli.NotifySignals()
	select {
	case err := <-serveErr:
		_ = metrics.Shutdown()
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ftserved: %v: draining (timeout %s)\n", s, *drainWait)
	}

	// Drain order is the graceful-shutdown contract: stop admitting (typed
	// 503s, not dropped connections), wait out accepted requests, close the
	// API listener, and flush the metrics endpoint last so a final scrape
	// can still observe the fully drained counters.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(ctx)
	shutdownErr := httpSrv.Shutdown(ctx)
	metricsErr := metrics.Shutdown()
	for _, err := range []error{drainErr, shutdownErr, metricsErr} {
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "ftserved: drained, bye")
}
