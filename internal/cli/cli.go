// Package cli contains shared plumbing for the command-line tools: fixture
// resolution and application loading.
package cli

import (
	"fmt"
	"os"
	"strings"

	"ftsched/internal/appio"
	"ftsched/internal/apps"
	"ftsched/internal/model"
)

// FirstLine reduces a (possibly multi-line) error to its first line, for
// the one-line diagnostics the CLIs print before exiting; a multi-issue
// *core.VerifyError renders its headline count this way.
func FirstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// LoadApp resolves the application to operate on: a named built-in fixture
// ("fig1", "fig8", "cc") or a JSON file path. Exactly one of fixture and
// path must be non-empty.
func LoadApp(fixture, path string) (*model.Application, error) {
	switch {
	case fixture != "" && path != "":
		return nil, fmt.Errorf("cli: pass either -fixture or -app, not both")
	case fixture != "":
		switch fixture {
		case "fig1":
			return apps.Fig1(), nil
		case "fig4c":
			return apps.Fig1ReducedPeriod(), nil
		case "fig8":
			return apps.Fig8(), nil
		case "cc", "cruise":
			return apps.CruiseController(), nil
		default:
			return nil, fmt.Errorf("cli: unknown fixture %q (want fig1, fig4c, fig8 or cc)", fixture)
		}
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return appio.DecodeApplication(f)
	default:
		return nil, fmt.Errorf("cli: pass -fixture <name> or -app <file.json>")
	}
}

// ApplyRecoverySpec parses a -recovery flag value and attaches the
// resulting model to the application. The empty spec (and the explicit
// "reexec") leaves the application on the canonical re-execution model,
// unchanged.
func ApplyRecoverySpec(app *model.Application, spec string) (*model.Application, error) {
	m, err := appio.ParseRecoverySpec(spec)
	if err != nil {
		return nil, err
	}
	if m.IsCanonical() {
		return app, nil
	}
	return app.WithRecovery(m)
}

// RecoveryFlagUsage is the shared help text of the -recovery flag.
const RecoveryFlagUsage = "recovery model: reexec, restart:LATENCY or checkpoint:SPACING:OVERHEAD:ROLLBACK (default: the application's own)"

// OutputWriter opens the output target: "-" or "" means stdout.
func OutputWriter(path string) (*os.File, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
