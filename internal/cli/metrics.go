package cli

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ftsched/internal/obs"
)

// MetricsServer is one tool's -metrics-addr observability server. The nil
// MetricsServer (no -metrics-addr flag) is fully usable: Sink returns nil
// and Shutdown is a no-op, so tools thread it unconditionally.
type MetricsServer struct {
	// Collector is the live metrics sink the tool instruments into.
	Collector *obs.Metrics
	// Addr is the bound address (host:port).
	Addr     string
	shutdown func() error
}

// ServeMetrics starts the observability endpoint shared by all the tools
// (Prometheus /metrics, expvar /debug/vars, pprof /debug/pprof/) and
// prints the canonical one-line pointer to stderr. An empty addr returns
// (nil, nil): the flag was not set.
//
// The returned server's Shutdown drains gracefully (obs.Serve's
// contract): in-flight scrapes complete before it returns. Tools must
// call it on every exit path — including signals, see NotifySignals — so
// the final counter values are never lost to a torn-down listener.
func ServeMetrics(tool, addr string) (*MetricsServer, error) {
	if addr == "" {
		return nil, nil
	}
	collector := obs.NewMetrics()
	bound, shutdown, err := obs.Serve(addr, collector)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: metrics: http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", tool, bound)
	return &MetricsServer{Collector: collector, Addr: bound, shutdown: shutdown}, nil
}

// Sink returns the collector as an obs.Sink; nil-safe (a nil server
// yields a nil sink, which every instrumented subsystem treats as
// disabled).
func (m *MetricsServer) Sink() obs.Sink {
	if m == nil {
		return nil
	}
	return m.Collector
}

// Shutdown flushes and stops the metrics server; nil-safe and idempotent.
func (m *MetricsServer) Shutdown() error {
	if m == nil || m.shutdown == nil {
		return nil
	}
	return m.shutdown()
}

// NotifySignals relays SIGINT and SIGTERM to the returned channel — the
// shared signal plumbing for tools that must flush metrics (and, for
// ftserved, drain accepted requests) before exiting instead of dying
// mid-scrape.
func NotifySignals() chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}
