package cli

import (
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/appio"
	"ftsched/internal/apps"
)

func TestLoadAppFixtures(t *testing.T) {
	cases := map[string]int{"fig1": 3, "fig4c": 3, "fig8": 5, "cc": 32, "cruise": 32}
	for name, n := range cases {
		app, err := LoadApp(name, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.N() != n {
			t.Errorf("%s: N = %d, want %d", name, app.N(), n)
		}
	}
}

func TestLoadAppErrors(t *testing.T) {
	if _, err := LoadApp("", ""); err == nil {
		t.Error("neither fixture nor path should fail")
	}
	if _, err := LoadApp("fig1", "x.json"); err == nil {
		t.Error("both fixture and path should fail")
	}
	if _, err := LoadApp("nope", ""); err == nil {
		t.Error("unknown fixture should fail")
	}
	if _, err := LoadApp("", "/nonexistent/x.json"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadAppFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := appio.EncodeApplication(f, apps.Fig1()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	app, err := LoadApp("", path)
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 3 {
		t.Errorf("N = %d", app.N())
	}
}

func TestOutputWriter(t *testing.T) {
	w, done, err := OutputWriter("")
	if err != nil || w != os.Stdout {
		t.Error("empty path must map to stdout")
	}
	done()
	w, done, err = OutputWriter("-")
	if err != nil || w != os.Stdout {
		t.Error("- must map to stdout")
	}
	done()
	path := filepath.Join(t.TempDir(), "out.txt")
	w, done, err = OutputWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString("hello"); err != nil {
		t.Fatal(err)
	}
	done()
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Error("file output broken")
	}
	if _, _, err := OutputWriter("/nonexistent-dir/x"); err == nil {
		t.Error("uncreatable path should fail")
	}
}
