package experiments

import (
	"strings"
	"testing"
)

func TestEnergyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := EnergyConfig{
		Apps:      1,
		Processes: 8,
		M:         8,
		Scenarios: 200,
		Faults:    1,
		Seed:      11,
	}
	res, err := Energy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three fixtures + one generated app, each on two platforms.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		single, hetero := res.Rows[i], res.Rows[i+1]
		if single.Platform != "1-core" || hetero.Platform != "lp+hp" || single.App != hetero.App {
			t.Fatalf("row pairing broken: %+v / %+v", single, hetero)
		}
		// Canonical platform: energy is busy time — all active, no idle,
		// and the single nominal core carries everything.
		if single.MeanIdle != 0 || single.MeanEnergy != single.MeanActive {
			t.Errorf("%s 1-core: energy split %v active %v idle %v", single.App,
				single.MeanEnergy, single.MeanActive, single.MeanIdle)
		}
		if len(single.CoreEnergy) != 1 || len(hetero.CoreEnergy) != 2 {
			t.Errorf("%s: per-core splits %d/%d, want 1/2", single.App,
				len(single.CoreEnergy), len(hetero.CoreEnergy))
		}
		// The LP+HP platform burns idle power, so it can never be free.
		if hetero.MeanIdle <= 0 || hetero.MeanEnergy <= single.MeanEnergy {
			t.Errorf("%s lp+hp: energy %v (idle %v) not above 1-core %v", hetero.App,
				hetero.MeanEnergy, hetero.MeanIdle, single.MeanEnergy)
		}
		// Both deployments must certify at least one fault.
		if single.CertifiedK < 1 || hetero.CertifiedK < 1 {
			t.Errorf("%s: certified k %d/%d", single.App, single.CertifiedK, hetero.CertifiedK)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Energy on heterogeneous platforms") || !strings.Contains(out, "lp=") {
		t.Errorf("Format output incomplete:\n%s", out)
	}
}
