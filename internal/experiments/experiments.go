// Package experiments reproduces every table and figure of the evaluation
// section (§6) of Izosimov et al. (DATE 2008):
//
//   - Fig. 9a — normalised utility of FTQS, FTSS and FTSF in the no-fault
//     scenario, over application sizes 10..50;
//   - Fig. 9b — normalised utility of FTQS under 0..3 faults (with the
//     3-fault curves of FTSS and FTSF), over the same sizes;
//   - Table 1 — utility (normalised to FTSS) and synthesis runtime as the
//     quasi-static tree grows through M ∈ {1, 2, 8, 13, 23, 34, 79, 89};
//   - the cruise-controller case study (k = 2, µ = 10% WCET, 39 schedules).
//
// The paper simulates 20 000 execution scenarios per configuration on 450
// generated applications; the configs below default to CI-friendly sizes
// and scale up via their fields (see EXPERIMENTS.md for the settings used
// to produce the recorded results).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ftsched/internal/apps"
	"ftsched/internal/baseline"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/report"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// synthesise builds the three competitors for one application. M bounds
// the FTQS tree. FTSF may fail where FTSS succeeds — its value-maximal
// order can leave a hard process beyond rescue once the k-fault recovery
// slack is patched in, no matter how many soft processes are dropped; in
// that case ftsf is nil and the caller scores the baseline as delivering
// zero utility (the system cannot be deployed with that schedule).
func synthesise(app *model.Application, m, workers int, sink obs.Sink) (ftqs, ftss, ftsf *core.Tree, err error) {
	root, err := core.FTSS(app)
	if err != nil {
		return nil, nil, nil, err
	}
	tree, err := core.FTQSFromRoot(app, root, core.FTQSOptions{M: m, Workers: workers, Sink: sink})
	if err != nil {
		return nil, nil, nil, err
	}
	bf, err := baseline.FTSF(app)
	if err != nil {
		return tree, sim.StaticTree(app, root), nil, nil
	}
	return tree, sim.StaticTree(app, root), sim.StaticTree(app, bf), nil
}

// meanUtility runs the Monte-Carlo evaluation and fails on any hard
// violation — the experiments double as an end-to-end safety check.
// workers spreads the evaluation over goroutines (0 = GOMAXPROCS);
// results are identical for any value.
func meanUtility(tree *core.Tree, scenarios, faults int, seed int64, workers int, sink obs.Sink) (float64, error) {
	st, err := sim.MonteCarlo(tree, sim.MCConfig{Scenarios: scenarios, Faults: faults, Seed: seed, Workers: workers, Sink: sink})
	if err != nil {
		return 0, err
	}
	if st.HardViolations > 0 {
		return 0, fmt.Errorf("experiments: %d hard-deadline violations (faults=%d)", st.HardViolations, faults)
	}
	return st.MeanUtility, nil
}

// generateSchedulable draws applications until FTSS succeeds (unschedulable
// random instances are regenerated, as in the paper's methodology of
// evaluating schedulable applications).
func generateSchedulable(rng *rand.Rand, cfg gen.Config, maxAttempts int) (*model.Application, error) {
	for i := 0; i < maxAttempts; i++ {
		app, err := gen.Generate(rng, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := core.FTSS(app); err == nil {
			return app, nil
		}
	}
	return nil, fmt.Errorf("experiments: no schedulable application in %d attempts", maxAttempts)
}

// ---------------------------------------------------------------------------
// Fig. 9 (both panels)
// ---------------------------------------------------------------------------

// Fig9Config parametrises the Fig. 9 reproduction. The paper: sizes 10..50
// step 5, 50 applications per size (450 total), k = 3, µ = 15 ms, 20 000
// scenarios.
type Fig9Config struct {
	Sizes       []int
	AppsPerSize int
	Scenarios   int
	M           int // FTQS tree bound
	Seed        int64
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS). Results are
	// identical for any value; see core.FTQSOptions.Workers and
	// sim.MCConfig.Workers.
	Workers int
	// Sink receives synthesis and simulation events from every run of
	// the experiment (nil disables instrumentation; results are
	// identical either way).
	Sink obs.Sink
}

// DefaultFig9 returns a configuration that finishes in seconds; pass the
// paper's numbers (AppsPerSize 50, Scenarios 20000) for the full run.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Sizes:       []int{10, 15, 20, 25, 30, 35, 40, 45, 50},
		AppsPerSize: 5,
		Scenarios:   500,
		M:           32,
		Seed:        1,
	}
}

// Fig9Row is one application-size point of Fig. 9: mean utilities
// normalised to FTQS in the no-fault scenario (= 100).
type Fig9Row struct {
	Size int
	// Panel (a): no-fault utilities.
	FTQS0, FTSS0, FTSF0 float64
	// Panel (b): FTQS under 1..3 faults, static alternatives at 3 faults.
	FTQS1, FTQS2, FTQS3 float64
	FTSS3, FTSF3        float64
	Apps                int
	// FTSFFailed counts applications the FTSF baseline could not
	// schedule at all (scored as zero utility).
	FTSFFailed int
}

// Fig9Result aggregates both panels.
type Fig9Result struct {
	Rows []Fig9Row
	Cfg  Fig9Config
}

// Fig9 reproduces both panels of the paper's Fig. 9.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Fig9Result{Cfg: cfg}
	for _, size := range cfg.Sizes {
		row := Fig9Row{Size: size}
		acc := make(map[string][]float64)
		for a := 0; a < cfg.AppsPerSize; a++ {
			app, err := generateSchedulable(rng, gen.Default(size), 50)
			if err != nil {
				return nil, err
			}
			ftqs, ftss, ftsf, err := synthesise(app, cfg.M, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			seed := rng.Int63()
			base, err := meanUtility(ftqs, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				continue // degenerate: no utility at all; skip
			}
			add := func(key string, tree *core.Tree, faults int) error {
				if tree == nil {
					acc[key] = append(acc[key], 0)
					return nil
				}
				u, err := meanUtility(tree, cfg.Scenarios, faults, seed, cfg.Workers, cfg.Sink)
				if err != nil {
					return err
				}
				acc[key] = append(acc[key], stats.Ratio(u, base))
				return nil
			}
			if ftsf == nil {
				row.FTSFFailed++
			}
			if err := add("ftqs0", ftqs, 0); err != nil {
				return nil, err
			}
			if err := add("ftss0", ftss, 0); err != nil {
				return nil, err
			}
			if err := add("ftsf0", ftsf, 0); err != nil {
				return nil, err
			}
			for f := 1; f <= 3 && f <= app.K(); f++ {
				if err := add(fmt.Sprintf("ftqs%d", f), ftqs, f); err != nil {
					return nil, err
				}
			}
			if app.K() >= 3 {
				if err := add("ftss3", ftss, 3); err != nil {
					return nil, err
				}
				if err := add("ftsf3", ftsf, 3); err != nil {
					return nil, err
				}
			}
			row.Apps++
		}
		row.FTQS0 = stats.Mean(acc["ftqs0"])
		row.FTSS0 = stats.Mean(acc["ftss0"])
		row.FTSF0 = stats.Mean(acc["ftsf0"])
		row.FTQS1 = stats.Mean(acc["ftqs1"])
		row.FTQS2 = stats.Mean(acc["ftqs2"])
		row.FTQS3 = stats.Mean(acc["ftqs3"])
		row.FTSS3 = stats.Mean(acc["ftss3"])
		row.FTSF3 = stats.Mean(acc["ftsf3"])
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders both panels as aligned text tables followed by ASCII
// charts (the tables are the canonical data view; the charts make the
// trends scannable in a terminal).
func (r *Fig9Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 9a — utility normalised to FTQS (%), no faults\n")
	sb.WriteString("size   FTQS   FTSS   FTSF\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%4d  %5.1f  %5.1f  %5.1f\n", row.Size, row.FTQS0, row.FTSS0, row.FTSF0)
	}
	sb.WriteString("\nFig. 9b — utility normalised to FTQS no-fault (%), with faults\n")
	sb.WriteString("size   FTQS/0 FTQS/1 FTQS/2 FTQS/3 FTSS/3 FTSF/3\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%4d   %5.1f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f\n",
			row.Size, row.FTQS0, row.FTQS1, row.FTQS2, row.FTQS3, row.FTSS3, row.FTSF3)
	}

	labels := make([]string, len(r.Rows))
	pick := func(f func(Fig9Row) float64) []float64 {
		ys := make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			ys[i] = f(row)
		}
		return ys
	}
	for i, row := range r.Rows {
		labels[i] = fmt.Sprint(row.Size)
	}
	a := &report.LineChart{
		Title:   "\nFig. 9a (chart)",
		XLabels: labels,
		YLabel:  "utility normalised to FTQS (%), x: application size",
		Series: []report.Series{
			{Name: "FTQS", Y: pick(func(r Fig9Row) float64 { return r.FTQS0 })},
			{Name: "FTSS", Y: pick(func(r Fig9Row) float64 { return r.FTSS0 })},
			{Name: "FTSF", Y: pick(func(r Fig9Row) float64 { return r.FTSF0 })},
		},
	}
	if s, err := a.Render(); err == nil {
		sb.WriteString(s)
	}
	b := &report.LineChart{
		Title:   "\nFig. 9b (chart)",
		XLabels: labels,
		YLabel:  "FTQS utility under 0-3 faults (%), x: application size",
		Series: []report.Series{
			{Name: "0 faults", Y: pick(func(r Fig9Row) float64 { return r.FTQS0 })},
			{Name: "1", Y: pick(func(r Fig9Row) float64 { return r.FTQS1 })},
			{Name: "2", Y: pick(func(r Fig9Row) float64 { return r.FTQS2 })},
			{Name: "3", Y: pick(func(r Fig9Row) float64 { return r.FTQS3 })},
		},
	}
	if s, err := b.Render(); err == nil {
		sb.WriteString(s)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

// Table1Config parametrises the tree-size experiment. The paper: 50
// applications with 30 processes each, 50/50 hard/soft, tree sizes
// {1, 2, 8, 13, 23, 34, 79, 89}.
type Table1Config struct {
	Apps      int
	Processes int
	Ms        []int
	Scenarios int
	Seed      int64
	// Trim enables simulation-based arc trimming after synthesis (an
	// extension beyond the paper; see sim.Trim). It restores the
	// monotone utility-vs-tree-size shape that estimation noise can
	// otherwise bend downwards for large M.
	Trim bool
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Sink receives synthesis and simulation events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultTable1 returns a CI-friendly configuration.
func DefaultTable1() Table1Config {
	return Table1Config{
		Apps:      5,
		Processes: 30,
		Ms:        []int{1, 2, 8, 13, 23, 34, 79, 89},
		Scenarios: 500,
		Seed:      2,
	}
}

// Table1Row is one tree-size row: utilities normalised to the FTSS
// schedule's no-fault utility (M = 1, 0 faults = 100), plus the mean
// synthesis runtime.
type Table1Row struct {
	Nodes     int // requested M
	MeanNodes float64
	Util      [4]float64 // 0..3 faults
	Runtime   time.Duration
	// MemoryBytes is the mean estimated storage for the tree's schedule
	// tables — the resource Table 1's M bound actually trades against.
	MemoryBytes float64
}

// Table1Result aggregates the rows.
type Table1Result struct {
	Rows []Table1Row
	Cfg  Table1Config
}

// Table1 reproduces the paper's Table 1.
func Table1(cfg Table1Config) (*Table1Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type appCase struct {
		app  *model.Application
		root *core.Tree // FTSS as a static tree
		base float64    // FTSS no-fault utility
		seed int64
	}
	var cases []appCase
	for i := 0; i < cfg.Apps; i++ {
		c := gen.Default(cfg.Processes)
		c.HardRatio = 0.5
		app, err := generateSchedulable(rng, c, 50)
		if err != nil {
			return nil, err
		}
		root, err := core.FTSS(app)
		if err != nil {
			return nil, err
		}
		seed := rng.Int63()
		st := sim.StaticTree(app, root)
		base, err := meanUtility(st, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			i--
			continue
		}
		cases = append(cases, appCase{app: app, root: st, base: base, seed: seed})
	}
	res := &Table1Result{Cfg: cfg}
	for _, m := range cfg.Ms {
		row := Table1Row{Nodes: m}
		var utils [4][]float64
		for _, c := range cases {
			t0 := time.Now()
			tree, err := core.FTQSFromRoot(c.app, c.root.Root().Schedule,
				core.FTQSOptions{M: m, Workers: cfg.Workers, Sink: cfg.Sink})
			if err != nil {
				return nil, err
			}
			if cfg.Trim {
				if _, err := sim.Trim(tree, sim.TrimConfig{Scenarios: 200, Seed: c.seed + 1, Sink: cfg.Sink}); err != nil {
					return nil, err
				}
			}
			row.Runtime += time.Since(t0)
			row.MeanNodes += float64(tree.Size())
			row.MemoryBytes += float64(tree.MemoryFootprint())
			for f := 0; f <= 3 && f <= c.app.K(); f++ {
				u, err := meanUtility(tree, cfg.Scenarios, f, c.seed, cfg.Workers, cfg.Sink)
				if err != nil {
					return nil, err
				}
				utils[f] = append(utils[f], stats.Ratio(u, c.base))
			}
		}
		for f := 0; f < 4; f++ {
			row.Util[f] = stats.Mean(utils[f])
		}
		n := len(cases)
		if n > 0 {
			row.Runtime /= time.Duration(n)
			row.MeanNodes /= float64(n)
			row.MemoryBytes /= float64(n)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the table like the paper's Table 1.
func (r *Table1Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table 1 — utility normalised to FTSS (%) vs tree size\n")
	sb.WriteString("nodes(M)  built   0f     1f     2f     3f    runtime     memory\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7d  %6.1f %6.1f %6.1f %6.1f %6.1f   %8s %7.0fB\n",
			row.Nodes, row.MeanNodes, row.Util[0], row.Util[1], row.Util[2], row.Util[3],
			row.Runtime.Round(time.Millisecond), row.MemoryBytes)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Cruise controller case study
// ---------------------------------------------------------------------------

// CCConfig parametrises the case study. The paper: k = 2, µ = 10% WCET,
// FTQS with 39 schedules.
type CCConfig struct {
	Scenarios int
	M         int
	Seed      int64
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Sink receives synthesis and simulation events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultCC mirrors the paper's setup with a CI-friendly scenario count.
func DefaultCC() CCConfig { return CCConfig{Scenarios: 2000, M: 39, Seed: 3} }

// CCResult holds the case-study outcomes.
type CCResult struct {
	Cfg CCConfig
	// Mean utilities (absolute) per algorithm and fault count.
	FTQS, FTSS, FTSF [3]float64
	// ImprovementOverFTSS/FTSF: FTQS no-fault gain in percent.
	ImprovementOverFTSS, ImprovementOverFTSF float64
	// Degradation1/2: FTQS utility drop with 1 and 2 faults, in percent
	// of its no-fault utility.
	Degradation1, Degradation2 float64
	TreeNodes                  int
}

// CruiseController reproduces the paper's CC case study.
func CruiseController(cfg CCConfig) (*CCResult, error) {
	app := apps.CruiseController()
	ftqs, ftss, ftsf, err := synthesise(app, cfg.M, cfg.Workers, cfg.Sink)
	if err != nil {
		return nil, err
	}
	res := &CCResult{Cfg: cfg, TreeNodes: ftqs.Size()}
	for f := 0; f <= 2; f++ {
		if res.FTQS[f], err = meanUtility(ftqs, cfg.Scenarios, f, cfg.Seed, cfg.Workers, cfg.Sink); err != nil {
			return nil, err
		}
		if res.FTSS[f], err = meanUtility(ftss, cfg.Scenarios, f, cfg.Seed, cfg.Workers, cfg.Sink); err != nil {
			return nil, err
		}
		if res.FTSF[f], err = meanUtility(ftsf, cfg.Scenarios, f, cfg.Seed, cfg.Workers, cfg.Sink); err != nil {
			return nil, err
		}
	}
	res.ImprovementOverFTSS = stats.Ratio(res.FTQS[0], res.FTSS[0]) - 100
	res.ImprovementOverFTSF = stats.Ratio(res.FTQS[0], res.FTSF[0]) - 100
	res.Degradation1 = 100 - stats.Ratio(res.FTQS[1], res.FTQS[0])
	res.Degradation2 = 100 - stats.Ratio(res.FTQS[2], res.FTQS[0])
	return res, nil
}

// Format renders the case-study summary.
func (r *CCResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Cruise controller (32 processes, 9 hard, k=2, µ=10% WCET)\n")
	fmt.Fprintf(&sb, "tree size: %d schedules\n", r.TreeNodes)
	sb.WriteString("faults   FTQS     FTSS     FTSF\n")
	for f := 0; f <= 2; f++ {
		fmt.Fprintf(&sb, "%5d  %7.1f  %7.1f  %7.1f\n", f, r.FTQS[f], r.FTSS[f], r.FTSF[f])
	}
	fmt.Fprintf(&sb, "FTQS improvement over FTSS (no faults): %+.1f%%\n", r.ImprovementOverFTSS)
	fmt.Fprintf(&sb, "FTQS improvement over FTSF (no faults): %+.1f%%\n", r.ImprovementOverFTSF)
	fmt.Fprintf(&sb, "FTQS degradation with 1 fault: %.1f%%, with 2 faults: %.1f%%\n",
		r.Degradation1, r.Degradation2)
	return sb.String()
}
