package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/obs"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// OverheadConfig parametrises the quasi-static vs purely-online comparison
// (paper §1: "the online overhead of quasi-static scheduling is very low,
// compared to traditional online scheduling approaches"). This experiment
// is not a table in the paper, but it substantiates the claim the whole
// approach rests on.
type OverheadConfig struct {
	Apps      int
	Processes int
	M         int
	Scenarios int
	Seed      int64
	// Workers bounds the FTQS synthesis goroutines (0 = GOMAXPROCS).
	Workers int
	// Sink receives synthesis events (nil disables instrumentation;
	// results are identical either way).
	Sink obs.Sink
}

// DefaultOverhead returns a CI-friendly configuration.
func DefaultOverhead() OverheadConfig {
	return OverheadConfig{Apps: 5, Processes: 30, M: 32, Scenarios: 200, Seed: 4}
}

// OverheadResult aggregates the comparison.
type OverheadResult struct {
	Cfg OverheadConfig
	// Utilities normalised to the ideal online rescheduler (= 100).
	UtilFTSS, UtilFTQS, UtilIdeal float64
	// TreeCycleTime is the mean wall-clock time of executing one full
	// cycle through the quasi-static tree (simulation bookkeeping
	// included, so it over-states the pure scheduler cost).
	TreeCycleTime time.Duration
	// IdealSynthesisTime is the mean wall-clock time the online
	// rescheduler spends synthesising schedules per cycle.
	IdealSynthesisTime time.Duration
	// OverheadFactor is IdealSynthesisTime / TreeCycleTime.
	OverheadFactor float64
}

// Overhead runs the comparison: FTSS (no adaptation), FTQS (table-driven
// adaptation) and the ideal rescheduler (full re-synthesis per step), on
// no-fault scenarios.
func Overhead(cfg OverheadConfig) (*OverheadResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &OverheadResult{Cfg: cfg}
	var uS, uQ, uI []float64
	var treeTime, synthTime time.Duration
	cycles := 0
	for a := 0; a < cfg.Apps; a++ {
		app, err := generateSchedulable(rng, gen.Default(cfg.Processes), 50)
		if err != nil {
			return nil, err
		}
		root, err := core.FTSS(app)
		if err != nil {
			return nil, err
		}
		tree, err := core.FTQSFromRoot(app, root, core.FTQSOptions{M: cfg.M, Workers: cfg.Workers, Sink: cfg.Sink})
		if err != nil {
			return nil, err
		}
		static := sim.StaticTree(app, root)
		var sumS, sumQ, sumI float64
		for i := 0; i < cfg.Scenarios; i++ {
			sc, err := sim.Sample(app, rng, 0, nil)
			if err != nil {
				return nil, err
			}
			rs, err := sim.Run(static, sc)
			if err != nil {
				return nil, err
			}
			sumS += rs.Utility
			t0 := time.Now()
			rq, err := sim.Run(tree, sc)
			if err != nil {
				return nil, err
			}
			treeTime += time.Since(t0)
			sumQ += rq.Utility
			ri := sim.RunOnlineReschedule(app, root, sc)
			synthTime += ri.SynthesisTime
			sumI += ri.Utility
			if len(rq.HardViolations)+len(ri.HardViolations) > 0 {
				return nil, fmt.Errorf("experiments: hard violation in overhead run")
			}
			cycles++
		}
		n := float64(cfg.Scenarios)
		base := sumI / n
		if base == 0 {
			continue
		}
		uS = append(uS, stats.Ratio(sumS/n, base))
		uQ = append(uQ, stats.Ratio(sumQ/n, base))
		uI = append(uI, 100)
	}
	res.UtilFTSS = stats.Mean(uS)
	res.UtilFTQS = stats.Mean(uQ)
	res.UtilIdeal = stats.Mean(uI)
	if cycles > 0 {
		res.TreeCycleTime = treeTime / time.Duration(cycles)
		res.IdealSynthesisTime = synthTime / time.Duration(cycles)
	}
	if res.TreeCycleTime > 0 {
		res.OverheadFactor = float64(res.IdealSynthesisTime) / float64(res.TreeCycleTime)
	}
	return res, nil
}

// Format renders the comparison.
func (r *OverheadResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Quasi-static vs purely online rescheduling (no-fault scenarios)\n")
	fmt.Fprintf(&sb, "utility (ideal = 100):  FTSS %.1f   FTQS(M=%d) %.1f   ideal %.1f\n",
		r.UtilFTSS, r.Cfg.M, r.UtilFTQS, r.UtilIdeal)
	fmt.Fprintf(&sb, "per-cycle cost: tree execution %v, online synthesis %v (%.0fx)\n",
		r.TreeCycleTime, r.IdealSynthesisTime, r.OverheadFactor)
	return sb.String()
}
