package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run scaled-down configurations and assert the
// paper's qualitative findings (the "shape": who wins, in which order, and
// how utility degrades), not absolute numbers.

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := Fig9Config{
		Sizes:       []int{10, 20, 30},
		AppsPerSize: 3,
		Scenarios:   300,
		M:           24,
		Seed:        11,
	}
	res, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var sumFTSS, sumFTSF float64
	for _, row := range res.Rows {
		// FTQS is the normalisation base: exactly 100 in panel (a).
		if row.FTQS0 < 99.9 || row.FTQS0 > 100.1 {
			t.Errorf("size %d: FTQS0 = %g, want 100", row.Size, row.FTQS0)
		}
		// Paper: FTQS beats FTSS by 11-18%, FTSS beats FTSF by 20-70%.
		// Scaled down we only require the ordering with slack for
		// Monte-Carlo noise; on lightly loaded instances FTSF's
		// no-fault-optimised order can locally edge out FTSS, so the
		// FTSS-vs-FTSF ordering is asserted on the average below.
		if row.FTSS0 > 100.5 {
			t.Errorf("size %d: FTSS0 = %g beats FTQS", row.Size, row.FTSS0)
		}
		sumFTSS += row.FTSS0
		sumFTSF += row.FTSF0
		// Panel (b): utility decreases with the number of faults.
		if !(row.FTQS1 <= row.FTQS0+0.5 && row.FTQS2 <= row.FTQS1+0.5 && row.FTQS3 <= row.FTQS2+0.5) {
			t.Errorf("size %d: fault degradation not monotone: %g %g %g %g",
				row.Size, row.FTQS0, row.FTQS1, row.FTQS2, row.FTQS3)
		}
		// FTQS under 3 faults still beats FTSF under 3 faults (paper:
		// "FTQS is constantly better than the static alternatives").
		if row.FTSF3 > row.FTQS3+1 {
			t.Errorf("size %d: FTSF3 = %g beats FTQS3 = %g", row.Size, row.FTSF3, row.FTQS3)
		}
	}
	if sumFTSF > sumFTSS {
		t.Errorf("FTSF (%.1f) beats FTSS (%.1f) on average", sumFTSF, sumFTSS)
	}
	out := res.Format()
	if !strings.Contains(out, "Fig. 9a") || !strings.Contains(out, "Fig. 9b") {
		t.Error("Format output incomplete")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := Table1Config{
		Apps:      3,
		Processes: 30,
		Ms:        []int{1, 2, 8, 23},
		Scenarios: 300,
		Seed:      5,
	}
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Row M=1 is the FTSS baseline: 100 at no faults, decreasing with
	// fault count (paper row 1: 100, 93, 88, 82).
	r0 := res.Rows[0]
	if r0.Util[0] < 99.9 || r0.Util[0] > 100.1 {
		t.Errorf("M=1 no-fault = %g, want 100", r0.Util[0])
	}
	for f := 1; f < 4; f++ {
		if r0.Util[f] > r0.Util[f-1]+0.5 {
			t.Errorf("M=1: utility must not rise with faults: %v", r0.Util)
		}
	}
	// Larger trees give (weakly) more utility in the no-fault scenario,
	// with the largest tree strictly better than the baseline.
	prev := 0.0
	for _, row := range res.Rows {
		if row.Util[0] < prev-1.5 { // small Monte-Carlo tolerance
			t.Errorf("utility fell when M grew: %v", res.Rows)
		}
		prev = row.Util[0]
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Util[0] <= 100.5 {
		t.Errorf("M=23 gives %g, want clear improvement over FTSS", last.Util[0])
	}
	// Runtime grows with tree size (paper: 0.62 s to 38.79 s).
	if last.Runtime < res.Rows[0].Runtime {
		t.Errorf("runtime should grow with M: %v vs %v", last.Runtime, res.Rows[0].Runtime)
	}
	if !strings.Contains(res.Format(), "Table 1") {
		t.Error("Format output incomplete")
	}
}

func TestCruiseControllerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := CCConfig{Scenarios: 1500, M: 39, Seed: 3}
	res, err := CruiseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeNodes != 39 {
		t.Errorf("tree nodes = %d, want 39", res.TreeNodes)
	}
	// Paper: FTQS improves 14% over FTSS, 81% over FTSF (no faults);
	// utility drops 4% with 1 fault and 9% with 2. We require the
	// qualitative shape: positive improvements, graceful degradation.
	if res.ImprovementOverFTSS <= 0 {
		t.Errorf("no improvement over FTSS: %+.1f%%", res.ImprovementOverFTSS)
	}
	if res.ImprovementOverFTSF <= res.ImprovementOverFTSS {
		t.Errorf("FTSF must trail FTSS: %+.1f%% vs %+.1f%%",
			res.ImprovementOverFTSF, res.ImprovementOverFTSS)
	}
	if res.Degradation1 < 0 || res.Degradation2 < res.Degradation1 {
		t.Errorf("degradation not monotone: %g then %g", res.Degradation1, res.Degradation2)
	}
	if res.Degradation2 > 50 {
		t.Errorf("degradation with 2 faults suspiciously large: %g%%", res.Degradation2)
	}
	if !strings.Contains(res.Format(), "Cruise controller") {
		t.Error("Format output incomplete")
	}
}
