package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/obs"
	"ftsched/internal/stats"
)

// FTCostConfig parametrises the price-of-fault-tolerance sweep: an
// extension experiment answering "how much no-fault utility does
// guaranteeing k faults cost?". For each fault bound k the same workloads
// are re-parametrised and re-synthesised; the no-fault utility of the
// k-tolerant tree is compared against the fault-oblivious quasi-static
// scheduler (k = 0 — effectively Cortés et al. [3], the paper's
// non-fault-tolerant predecessor).
type FTCostConfig struct {
	Ks        []int
	Apps      int
	Processes int
	M         int
	Scenarios int
	Seed      int64
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Sink receives synthesis and simulation events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultFTCost returns a CI-friendly configuration.
func DefaultFTCost() FTCostConfig {
	return FTCostConfig{
		Ks:        []int{0, 1, 2, 3, 4},
		Apps:      5,
		Processes: 30,
		M:         32,
		Scenarios: 500,
		Seed:      9,
	}
}

// FTCostRow is one point of the sweep.
type FTCostRow struct {
	K int
	// Utility is the mean no-fault utility of the k-tolerant FTQS tree,
	// normalised to the k = 0 tree (= 100): the price of the reserved
	// recovery slack and the pessimistic drops it forces.
	Utility float64
	// DroppedPct is the mean percentage of soft processes the k-tolerant
	// root drops.
	DroppedPct float64
	Apps       int
}

// FTCostResult aggregates the sweep.
type FTCostResult struct {
	Rows []FTCostRow
	Cfg  FTCostConfig
}

// FTCost runs the sweep. Workloads are generated once per app slot with
// the largest k (so the period accommodates every setting identically) and
// re-parametrised per k via model.Application.WithFaults.
func FTCost(cfg FTCostConfig) (*FTCostResult, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: FTCost needs at least one k")
	}
	maxK := cfg.Ks[0]
	for _, k := range cfg.Ks {
		if k < 0 {
			return nil, fmt.Errorf("experiments: negative k")
		}
		if k > maxK {
			maxK = k
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &FTCostResult{Cfg: cfg}
	acc := make(map[int][]float64)
	drops := make(map[int][]float64)
	apps := make(map[int]int)
	for a := 0; a < cfg.Apps; a++ {
		gcfg := gen.Default(cfg.Processes)
		gcfg.K = maxK
		base, err := generateSchedulable(rng, gcfg, 50)
		if err != nil {
			return nil, err
		}
		seed := rng.Int63()
		var zero float64
		ok := true
		utils := make(map[int]float64)
		dr := make(map[int]float64)
		for _, k := range cfg.Ks {
			app, err := base.WithFaults(k, base.Mu())
			if err != nil {
				return nil, err
			}
			tree, err := core.FTQS(app, core.FTQSOptions{M: cfg.M, Workers: cfg.Workers, Sink: cfg.Sink})
			if err != nil {
				ok = false
				break
			}
			u, err := meanUtility(tree, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			utils[k] = u
			if k == 0 {
				zero = u
			}
			nSoft := len(app.SoftIDs())
			if nSoft > 0 {
				dropped := 0
				for _, id := range app.SoftIDs() {
					if !tree.Root().Schedule.Contains(id) {
						dropped++
					}
				}
				dr[k] = 100 * float64(dropped) / float64(nSoft)
			}
		}
		if !ok || zero == 0 {
			continue
		}
		for _, k := range cfg.Ks {
			acc[k] = append(acc[k], stats.Ratio(utils[k], zero))
			drops[k] = append(drops[k], dr[k])
			apps[k]++
		}
	}
	for _, k := range cfg.Ks {
		res.Rows = append(res.Rows, FTCostRow{
			K:          k,
			Utility:    stats.Mean(acc[k]),
			DroppedPct: stats.Mean(drops[k]),
			Apps:       apps[k],
		})
	}
	return res, nil
}

// Format renders the sweep.
func (r *FTCostResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Price of fault tolerance — no-fault utility vs fault bound k\n")
	sb.WriteString("(normalised to the fault-oblivious quasi-static scheduler, k=0)\n")
	sb.WriteString("  k   utility   root-dropped-soft%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%3d   %6.1f   %6.1f%%\n", row.K, row.Utility, row.DroppedPct)
	}
	return sb.String()
}
