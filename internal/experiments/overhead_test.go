package experiments

import (
	"strings"
	"testing"
)

func TestOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := OverheadConfig{Apps: 3, Processes: 20, M: 24, Scenarios: 60, Seed: 4}
	res, err := Overhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering: FTSS <= FTQS <= ideal (= 100), with tolerance for
	// Monte-Carlo noise.
	if res.UtilFTSS > res.UtilFTQS+1 {
		t.Errorf("FTSS %g beats FTQS %g", res.UtilFTSS, res.UtilFTQS)
	}
	if res.UtilFTQS > 100.5 {
		t.Errorf("FTQS %g beats the ideal upper bound", res.UtilFTQS)
	}
	if res.UtilIdeal != 100 {
		t.Errorf("ideal = %g, want 100", res.UtilIdeal)
	}
	// The whole point: online re-synthesis costs much more than walking
	// the tree.
	if res.OverheadFactor < 2 {
		t.Errorf("overhead factor = %.1f, expected online rescheduling to be much slower", res.OverheadFactor)
	}
	if !strings.Contains(res.Format(), "purely online") {
		t.Error("Format output incomplete")
	}
}
