package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/obs"
	"ftsched/internal/optimal"
	"ftsched/internal/schedule"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// OptGapConfig parametrises the optimality-gap experiment: FTSS and FTQS
// scored against the exact subset-DP optimum (internal/optimal) on small
// instances — quality evidence the paper could not report.
type OptGapConfig struct {
	Apps      int
	Processes int // <= optimal.MaxProcesses
	M         int // FTQS tree bound
	Scenarios int // Monte-Carlo scenarios for the FTQS comparison
	K         int
	Seed      int64
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Sink receives synthesis and simulation events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultOptGap returns a CI-friendly configuration.
func DefaultOptGap() OptGapConfig {
	return OptGapConfig{Apps: 30, Processes: 12, M: 24, Scenarios: 400, K: 2, Seed: 6}
}

// OptGapResult aggregates the experiment.
type OptGapResult struct {
	Cfg OptGapConfig
	// StaticRatio is Σ FTSS utility / Σ optimal utility (expected
	// no-fault utility at average execution times) in percent.
	StaticRatio float64
	// SimulatedFTSS/FTQS/Optimal are mean simulated no-fault utilities
	// normalised to the simulated optimal schedule (= 100). FTQS may
	// exceed 100: the optimum is a single static schedule, while the
	// tree adapts online.
	SimulatedFTSS, SimulatedFTQS float64
	Apps                         int
}

// OptGap runs the experiment.
func OptGap(cfg OptGapConfig) (*OptGapResult, error) {
	if cfg.Processes > optimal.MaxProcesses {
		return nil, fmt.Errorf("experiments: %d processes exceed the exact-DP limit %d",
			cfg.Processes, optimal.MaxProcesses)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &OptGapResult{Cfg: cfg}
	var sumOpt, sumFTSS float64
	var simS, simQ []float64
	for i := 0; i < cfg.Apps; i++ {
		gcfg := gen.Default(cfg.Processes)
		gcfg.K = cfg.K
		app, err := generateSchedulable(rng, gcfg, 50)
		if err != nil {
			return nil, err
		}
		opt, err := optimal.Schedule(app)
		if err != nil {
			continue
		}
		ftss, err := core.FTSS(app)
		if err != nil {
			continue
		}
		tree, err := core.FTQSFromRoot(app, ftss, core.FTQSOptions{M: cfg.M, Workers: cfg.Workers, Sink: cfg.Sink})
		if err != nil {
			return nil, err
		}
		sumOpt += opt.Utility
		sumFTSS += schedule.ExpectedUtility(app, ftss)

		seed := rng.Int63()
		base, err := meanUtility(sim.StaticTree(app, opt.Schedule), cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			continue
		}
		us, err := meanUtility(sim.StaticTree(app, ftss), cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
		if err != nil {
			return nil, err
		}
		uq, err := meanUtility(tree, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
		if err != nil {
			return nil, err
		}
		simS = append(simS, stats.Ratio(us, base))
		simQ = append(simQ, stats.Ratio(uq, base))
		res.Apps++
	}
	if sumOpt > 0 {
		res.StaticRatio = 100 * sumFTSS / sumOpt
	}
	res.SimulatedFTSS = stats.Mean(simS)
	res.SimulatedFTQS = stats.Mean(simQ)
	return res, nil
}

// Format renders the result.
func (r *OptGapResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Optimality gap on %d-process instances (%d apps, exact subset DP)\n",
		r.Cfg.Processes, r.Apps)
	fmt.Fprintf(&sb, "static expected utility:  FTSS reaches %.1f%% of the optimal schedule\n", r.StaticRatio)
	fmt.Fprintf(&sb, "simulated no-fault mean (optimal static = 100): FTSS %.1f, FTQS(M=%d) %.1f\n",
		r.SimulatedFTSS, r.Cfg.M, r.SimulatedFTQS)
	return sb.String()
}
