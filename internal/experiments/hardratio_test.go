package experiments

import (
	"strings"
	"testing"
)

func TestHardRatioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := HardRatioConfig{
		Ratios:    []float64{0.25, 0.75},
		Apps:      3,
		Processes: 20,
		M:         16,
		Scenarios: 200,
		Seed:      8,
	}
	res, err := HardRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Apps == 0 {
			t.Fatalf("ratio %.2f: no usable apps", row.Ratio)
		}
		// FTQS is the base: FTSS can never exceed it meaningfully.
		if row.FTSS > 101 {
			t.Errorf("ratio %.2f: FTSS %g beats FTQS", row.Ratio, row.FTSS)
		}
		if row.RootDropPct < 0 || row.RootDropPct > 100 {
			t.Errorf("ratio %.2f: drop%% = %g", row.Ratio, row.RootDropPct)
		}
	}
	if !strings.Contains(res.Format(), "mix sweep") {
		t.Error("Format output incomplete")
	}
}
