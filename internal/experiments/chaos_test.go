package experiments

import (
	"strings"
	"testing"

	"ftsched/internal/runtime"
)

func TestChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := ChaosConfig{Cycles: 400, Seed: 11, M: 16}
	res, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		rep := row.Report
		if rep.Cycles != cfg.Cycles {
			t.Errorf("%s: %d cycles, want %d", row.Policy, rep.Cycles, cfg.Cycles)
		}
		if rep.Injected == 0 || rep.Overruns == 0 || rep.ExtraFaults == 0 {
			t.Errorf("%s (clamp=%v): vacuous campaign %+v", row.Policy, row.Clamp, rep)
		}
		switch row.Policy {
		case runtime.PolicyStrict:
			if rep.StrictErrors == 0 {
				t.Error("strict policy raised no typed errors")
			}
		case runtime.PolicyShedSoft:
			if rep.Degraded == 0 {
				t.Error("shed-soft policy never degraded")
			}
			if row.Clamp && rep.HardMisses != 0 {
				t.Errorf("clamped shed-soft missed %d hard deadlines", rep.HardMisses)
			}
		}
	}
	out := res.Format()
	for _, want := range []string{"containment", "shed-soft", "best-effort", "strict"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
}
