package experiments

import (
	"strings"
	"testing"
)

func TestFTCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := FTCostConfig{
		Ks:        []int{0, 2, 4},
		Apps:      3,
		Processes: 20,
		M:         16,
		Scenarios: 200,
		Seed:      9,
	}
	res, err := FTCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].K != 0 || res.Rows[0].Utility < 99.9 || res.Rows[0].Utility > 100.1 {
		t.Errorf("k=0 row must be the base 100, got %+v", res.Rows[0])
	}
	// Tolerating more faults can only cost no-fault utility (weakly).
	prev := 200.0
	for _, row := range res.Rows {
		if row.Apps == 0 {
			t.Fatalf("k=%d: no usable apps", row.K)
		}
		if row.Utility > prev+2 { // small Monte-Carlo tolerance
			t.Errorf("utility rose with larger k: %+v", res.Rows)
		}
		prev = row.Utility
	}
	if !strings.Contains(res.Format(), "Price of fault tolerance") {
		t.Error("Format output incomplete")
	}
}

func TestFTCostValidation(t *testing.T) {
	if _, err := FTCost(FTCostConfig{}); err == nil {
		t.Error("empty Ks accepted")
	}
	if _, err := FTCost(FTCostConfig{Ks: []int{-1}, Apps: 1, Processes: 5, M: 2, Scenarios: 10}); err == nil {
		t.Error("negative k accepted")
	}
}
