package experiments

import (
	"fmt"
	"strings"

	"ftsched/internal/apps"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// ChaosConfig parametrises the out-of-model containment evaluation: a
// seeded chaos campaign (WCET overruns and >k fault bursts aimed at soft
// processes) on the paper's Fig. 8 application, run once per degrade
// policy and once more with watchdog clamping. The paper's guarantees
// stop at its fault model; this experiment measures what each policy
// still delivers beyond it.
type ChaosConfig struct {
	Cycles int
	Seed   int64
	// M bounds the Fig. 8 quasi-static tree.
	M int
	// Workers bounds the campaign goroutines (0 = GOMAXPROCS; reports
	// are bit-identical for any value).
	Workers int
	// Sink receives dispatch and chaos events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultChaos returns a CI-friendly configuration.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{Cycles: 2000, Seed: 11, M: 16}
}

// ChaosRow is one policy's campaign outcome.
type ChaosRow struct {
	Policy runtime.DegradePolicy
	Clamp  bool
	Report *chaos.Report
}

// ChaosResult aggregates the per-policy campaigns.
type ChaosResult struct {
	Cfg  ChaosConfig
	Rows []ChaosRow
}

// Chaos runs the containment comparison. The containment contract itself
// — no panics, no detection gaps, no in-model misses, no misses the
// policy promised to absorb — is enforced here: a violation is an error,
// not a table row.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: cfg.M, Sink: cfg.Sink})
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Cfg: cfg}
	for _, row := range []struct {
		policy runtime.DegradePolicy
		clamp  bool
	}{
		{runtime.PolicyStrict, false},
		{runtime.PolicyShedSoft, false},
		{runtime.PolicyShedSoft, true},
		{runtime.PolicyBestEffort, false},
	} {
		rep, err := chaos.Run(tree, chaos.Config{
			Cycles:        cfg.Cycles,
			Seed:          cfg.Seed,
			Workers:       cfg.Workers,
			Policy:        row.policy,
			Clamp:         row.clamp,
			BaseFaults:    1,
			OverrunProb:   0.25,
			OverrunFactor: 2.0,
			BurstProb:     0.25,
			ExtraFaults:   2,
			SoftOnly:      true,
			Sink:          cfg.Sink,
		})
		if err != nil {
			return nil, err
		}
		if n := rep.Panics + rep.Breaches + rep.DetectionGaps + rep.InModelMisses; n > 0 {
			return nil, fmt.Errorf("experiments: containment contract violated under %s (clamp=%v): %d panics, %d breaches, %d gaps, %d in-model misses",
				row.policy, row.clamp, rep.Panics, rep.Breaches, rep.DetectionGaps, rep.InModelMisses)
		}
		rep.Records = nil // the table needs totals only
		res.Rows = append(res.Rows, ChaosRow{Policy: row.policy, Clamp: row.clamp, Report: rep})
	}
	return res, nil
}

// Format renders the comparison.
func (r *ChaosResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Out-of-model containment under soft-aimed chaos (paper Fig. 8)\n")
	fmt.Fprintf(&sb, "%-12s %-6s %9s %9s %9s %8s %7s %11s\n",
		"policy", "clamp", "injected", "overruns", ">k burst", "degraded", "strict", "hard-misses")
	for _, row := range r.Rows {
		clamp := "no"
		if row.Clamp {
			clamp = "yes"
		}
		rep := row.Report
		fmt.Fprintf(&sb, "%-12s %-6s %9d %9d %9d %8d %7d %11d\n",
			row.Policy, clamp, rep.Injected, rep.Overruns, rep.ExtraFaults,
			rep.Degraded, rep.StrictErrors, rep.HardMisses)
	}
	sb.WriteString("(zero panics, detection gaps, in-model misses and absorbable misses: enforced)\n")
	return sb.String()
}
