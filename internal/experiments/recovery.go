package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/sim"
)

// RecoveryConfig parametrises the recovery-model study: an extension
// experiment beyond the paper (which recovers exclusively by re-execution
// with overhead µ) answering "what do utility, energy and the certified
// fault bound look like when the same application recovers by full restart
// or by checkpoint-and-rollback instead?". Each workload is synthesised and
// evaluated once per recovery model through the same FTQS pipeline and the
// same compiled dispatcher.
type RecoveryConfig struct {
	// Apps is the number of generated applications evaluated on top of the
	// two paper fixtures (Fig. 1, Fig. 8).
	Apps int
	// Processes is the size of each generated application.
	Processes int
	// M bounds the FTQS tree.
	M int
	// Scenarios is the Monte-Carlo sample per configuration.
	Scenarios int
	// Faults is the number of faults injected per scenario, clamped to each
	// application's k.
	Faults int
	Seed   int64
	// Workers bounds synthesis, evaluation and certification goroutines
	// (0 = GOMAXPROCS); results are identical for any value.
	Workers int
	// Sink receives synthesis, simulation and certification events (nil
	// disables instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultRecovery returns a CI-friendly configuration.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		Apps:      2,
		Processes: 10,
		M:         16,
		Scenarios: 500,
		Faults:    1,
		Seed:      13,
	}
}

// RecoveryRow is one (application, recovery model) evaluation.
type RecoveryRow struct {
	App string
	// Model names the recovery model variant ("reexec", "restart",
	// "checkpoint"); Params is its rendered parameter list.
	Model  string
	Params string
	// Schedulable reports whether FTSS found a fault-tolerant schedule
	// under this model; a false row carries no evaluation numbers. A model
	// with heavier worst-case recovery than the paper's re-execution can
	// push a tight application over its deadlines — that is a result of the
	// study, not an error.
	Schedulable bool
	// Utility is the mean Monte-Carlo utility under the configured fault
	// injection; Faults echoes the clamped per-application count.
	Utility float64
	Faults  int
	// MeanEnergy is the mean per-cycle platform energy over the same
	// scenarios (checkpoint overheads count as active time).
	MeanEnergy float64
	// MeanRecoveries is the mean number of recoveries actually taken.
	MeanRecoveries float64
	// CertifiedK is the largest fault count in [1, k] for which the
	// exhaustive certification engine proves every hard deadline, or 0 if
	// only the fault-free nominal is guaranteed.
	CertifiedK int
}

// RecoveryResult aggregates the study.
type RecoveryResult struct {
	Rows []RecoveryRow
	Cfg  RecoveryConfig
}

// StudyModels derives the three recovery models the study compares for one
// application, deterministically from its own parameters:
//
//   - reexec: the paper's canonical model (per-fault overhead µ);
//   - restart: a full restart costing twice µ — a node reboot is slower
//     than the paper's warm re-execution;
//   - checkpoint: segments of half the largest WCET (so every long process
//     takes at least one checkpoint), per-checkpoint overhead of at most
//     µ/2, rollback cost µ — recovery re-runs only the last segment.
func StudyModels(app *model.Application) []struct {
	Name  string
	Model model.RecoveryModel
} {
	mu := app.Mu()
	if mu <= 0 {
		mu = 1
	}
	var maxWCET model.Time
	for id := 0; id < app.N(); id++ {
		if w := app.Proc(model.ProcessID(id)).WCET; w > maxWCET {
			maxWCET = w
		}
	}
	spacing := maxWCET/2 + 1
	overhead := mu / 2
	if overhead >= spacing {
		overhead = spacing - 1
	}
	return []struct {
		Name  string
		Model model.RecoveryModel
	}{
		{"reexec", model.ReExecutionModel()},
		{"restart", model.RestartModel(2 * mu)},
		{"checkpoint", model.CheckpointModel(spacing, overhead, mu)},
	}
}

// Recovery runs the study: paper fixtures first, then generated
// applications, each under the three recovery models of StudyModels.
func Recovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	type workload struct {
		name string
		app  *model.Application
	}
	loads := []workload{
		{"paper-fig1", apps.Fig1()},
		{"paper-fig8", apps.Fig8()},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for a := 0; a < cfg.Apps; a++ {
		app, err := generateSchedulable(rng, gen.Default(cfg.Processes), 50)
		if err != nil {
			return nil, err
		}
		loads = append(loads, workload{fmt.Sprintf("gen-%02d", a), app})
	}
	res := &RecoveryResult{Cfg: cfg}
	for _, wl := range loads {
		seed := cfg.Seed + int64(len(res.Rows))
		for _, sm := range StudyModels(wl.app) {
			app := wl.app
			if !sm.Model.IsCanonical() {
				var err error
				app, err = app.WithRecovery(sm.Model)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s under %s: %w", wl.name, sm.Name, err)
				}
			}
			row, err := recoveryRow(wl.name, sm.Name, app, cfg, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %s: %w", wl.name, sm.Name, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func recoveryRow(name, modelName string, app *model.Application, cfg RecoveryConfig, seed int64) (RecoveryRow, error) {
	params := fmt.Sprintf("µ=%d", app.Mu())
	if app.HasRecovery() {
		params = app.Recovery().String()
	}
	tree, err := core.FTQS(app, core.FTQSOptions{M: cfg.M, Workers: cfg.Workers, Sink: cfg.Sink})
	if err != nil {
		if errors.Is(err, core.ErrUnschedulable) {
			return RecoveryRow{App: name, Model: modelName, Params: params}, nil
		}
		return RecoveryRow{}, err
	}
	faults := cfg.Faults
	if faults > app.K() {
		faults = app.K()
	}
	st, err := sim.MonteCarlo(tree, sim.MCConfig{
		Scenarios: cfg.Scenarios, Faults: faults, Seed: seed,
		Workers: cfg.Workers, Sink: cfg.Sink,
	})
	if err != nil {
		return RecoveryRow{}, err
	}
	if st.HardViolations > 0 {
		return RecoveryRow{}, fmt.Errorf("%d hard-deadline violations (faults=%d)", st.HardViolations, faults)
	}
	ck, err := certifiedK(tree, cfg.Workers, cfg.Sink)
	if err != nil {
		return RecoveryRow{}, err
	}
	return RecoveryRow{
		App: name, Model: modelName, Params: params,
		Schedulable: true,
		Utility:     st.MeanUtility, Faults: faults,
		MeanEnergy:     st.MeanEnergy,
		MeanRecoveries: st.MeanRecoveries,
		CertifiedK:     ck,
	}, nil
}

// Format renders the study.
func (r *RecoveryResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Recovery models — re-execution vs restart vs checkpoint-rollback\n")
	sb.WriteString("(same FTQS pipeline and compiled dispatcher per model; restart pays 2µ per fault,\n")
	sb.WriteString(" checkpointing pays per-segment overheads up front but re-runs only the last segment)\n")
	sb.WriteString("app           model        params                                             flt   utility     energy    recov   cert-k\n")
	for _, row := range r.Rows {
		if !row.Schedulable {
			fmt.Fprintf(&sb, "%-13s %-10s   %-47s  unschedulable under this model\n",
				row.App, row.Model, row.Params)
			continue
		}
		fmt.Fprintf(&sb, "%-13s %-10s   %-47s  %3d   %7.2f   %8.1f   %6.2f   %6d\n",
			row.App, row.Model, row.Params, row.Faults,
			row.Utility, row.MeanEnergy, row.MeanRecoveries, row.CertifiedK)
	}
	return sb.String()
}
