package experiments

import (
	"strings"
	"testing"
)

func TestOptGapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	cfg := OptGapConfig{Apps: 10, Processes: 10, M: 16, Scenarios: 200, K: 2, Seed: 6}
	res, err := OptGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps < 5 {
		t.Fatalf("only %d usable apps", res.Apps)
	}
	// FTSS can never beat the optimum statically.
	if res.StaticRatio > 100.0001 {
		t.Errorf("static ratio %.2f%% exceeds 100%%", res.StaticRatio)
	}
	if res.StaticRatio < 60 {
		t.Errorf("static ratio %.2f%% suspiciously low", res.StaticRatio)
	}
	// In simulation the tree adapts; it must not trail FTSS.
	if res.SimulatedFTQS < res.SimulatedFTSS-1 {
		t.Errorf("FTQS %.1f trails FTSS %.1f in simulation", res.SimulatedFTQS, res.SimulatedFTSS)
	}
	if !strings.Contains(res.Format(), "Optimality gap") {
		t.Error("Format output incomplete")
	}
}
