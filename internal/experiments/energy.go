package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"ftsched/internal/apps"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// EnergyConfig parametrises the heterogeneous-platform study: an extension
// experiment beyond the paper (which assumes a single computation node)
// answering "what do utility, energy and the certified fault bound look
// like when the same application runs on a low-power core with recoveries
// offloaded to a high-performance core?". Each workload is synthesised and
// evaluated twice — on the canonical single-core platform and on the
// two-core LP+HP platform with the deterministic biased mapping — through
// the same FTQS pipeline and the same mapped dispatcher.
type EnergyConfig struct {
	// Apps is the number of generated applications evaluated on top of the
	// three fixtures (Fig. 1, Fig. 8, cruise controller).
	Apps int
	// Processes is the size of each generated application.
	Processes int
	// M bounds the FTQS tree.
	M int
	// Scenarios is the Monte-Carlo sample per configuration.
	Scenarios int
	// Faults is the number of faults injected per scenario, clamped to each
	// application's k.
	Faults int
	Seed   int64
	// Workers bounds synthesis, evaluation and certification goroutines
	// (0 = GOMAXPROCS); results are identical for any value.
	Workers int
	// Sink receives synthesis, simulation and certification events (nil
	// disables instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultEnergy returns a CI-friendly configuration.
func DefaultEnergy() EnergyConfig {
	return EnergyConfig{
		Apps:      2,
		Processes: 10,
		M:         16,
		Scenarios: 500,
		Faults:    1,
		Seed:      11,
	}
}

// HeteroPlatform is the reference two-core platform of the study: a
// low-power unit-speed core and a high-performance core twice as fast at
// three times the active power. The biased mapping places every primary on
// the LP core and every re-execution on the HP core, so the energy price
// of fault tolerance is paid only when faults actually occur.
func HeteroPlatform() *model.Platform {
	return model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
}

// EnergyRow is one (application, platform) evaluation.
type EnergyRow struct {
	App      string
	Platform string
	// Utility is the mean Monte-Carlo utility under the configured fault
	// injection; Faults echoes the clamped per-application count.
	Utility float64
	Faults  int
	// MeanEnergy is the mean per-cycle platform energy over the same
	// scenarios, split into its active and idle summands.
	MeanEnergy, MeanActive, MeanIdle float64
	// Cores and CoreEnergy give the per-core energy split of the nominal
	// (all-AET, fault-free) cycle through the compiled dispatcher.
	Cores      []string
	CoreEnergy []float64
	// CertifiedK is the largest fault count in [1, k] for which the
	// exhaustive certification engine proves every hard deadline, or 0 if
	// only the fault-free nominal is guaranteed.
	CertifiedK int
}

// EnergyResult aggregates the study.
type EnergyResult struct {
	Rows []EnergyRow
	Cfg  EnergyConfig
}

// Energy runs the study: fixtures first, then generated applications, each
// on the canonical platform and on HeteroPlatform.
func Energy(cfg EnergyConfig) (*EnergyResult, error) {
	type workload struct {
		name string
		app  *model.Application
	}
	loads := []workload{
		{"paper-fig1", apps.Fig1()},
		{"paper-fig8", apps.Fig8()},
		{"cruise-ctrl", apps.CruiseController()},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for a := 0; a < cfg.Apps; a++ {
		app, err := generateSchedulable(rng, gen.Default(cfg.Processes), 50)
		if err != nil {
			return nil, err
		}
		loads = append(loads, workload{fmt.Sprintf("gen-%02d", a), app})
	}
	hetero := HeteroPlatform()
	res := &EnergyResult{Cfg: cfg}
	for _, wl := range loads {
		seed := cfg.Seed + int64(len(res.Rows))
		single, err := energyRow(wl.name, "1-core", wl.app, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on 1-core: %w", wl.name, err)
		}
		res.Rows = append(res.Rows, single)
		mapped, err := wl.app.WithPlatform(hetero, model.BiasedMapping(wl.app, hetero))
		if err != nil {
			return nil, err
		}
		het, err := energyRow(wl.name, "lp+hp", mapped, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on lp+hp: %w", wl.name, err)
		}
		res.Rows = append(res.Rows, het)
	}
	return res, nil
}

func energyRow(name, platName string, app *model.Application, cfg EnergyConfig, seed int64) (EnergyRow, error) {
	tree, err := core.FTQS(app, core.FTQSOptions{M: cfg.M, Workers: cfg.Workers, Sink: cfg.Sink})
	if err != nil {
		return EnergyRow{}, err
	}
	faults := cfg.Faults
	if faults > app.K() {
		faults = app.K()
	}
	st, err := sim.MonteCarlo(tree, sim.MCConfig{
		Scenarios: cfg.Scenarios, Faults: faults, Seed: seed,
		Workers: cfg.Workers, Sink: cfg.Sink,
	})
	if err != nil {
		return EnergyRow{}, err
	}
	if st.HardViolations > 0 {
		return EnergyRow{}, fmt.Errorf("%d hard-deadline violations (faults=%d)", st.HardViolations, faults)
	}
	nominal, err := nominalCoreEnergy(tree)
	if err != nil {
		return EnergyRow{}, err
	}
	ck, err := certifiedK(tree, cfg.Workers, cfg.Sink)
	if err != nil {
		return EnergyRow{}, err
	}
	plat := app.Platform()
	cores := make([]string, plat.NCores())
	for c := range cores {
		cores[c] = plat.Core(model.CoreID(c)).Name
	}
	return EnergyRow{
		App: name, Platform: platName,
		Utility: st.MeanUtility, Faults: faults,
		MeanEnergy: st.MeanEnergy, MeanActive: st.MeanEnergyActive, MeanIdle: st.MeanEnergyIdle,
		Cores: cores, CoreEnergy: nominal,
		CertifiedK: ck,
	}, nil
}

// nominalCoreEnergy runs the all-AET fault-free cycle through the compiled
// dispatcher and returns the per-core energy split.
func nominalCoreEnergy(tree *core.Tree) ([]float64, error) {
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		return nil, err
	}
	app := tree.App
	sc := runtime.Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for i := range sc.Durations {
		sc.Durations[i] = app.Proc(model.ProcessID(i)).AET
	}
	res, err := d.Run(sc)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res.CoreEnergy))
	copy(out, res.CoreEnergy)
	return out, nil
}

// certifiedK finds the largest fault count in [1, k] the exhaustive
// certification engine proves safe, descending from k; a counterexample
// demotes to the next bound, any other failure aborts. (The engine treats
// MaxFaults 0 as "use k", so the fault-free nominal — guaranteed by FTSS
// schedulability — is reported as 0 without a run.)
func certifiedK(tree *core.Tree, workers int, sink obs.Sink) (int, error) {
	for f := tree.App.K(); f >= 1; f-- {
		_, err := certify.Certify(tree, certify.Config{MaxFaults: f, Workers: workers, Sink: sink})
		if err == nil {
			return f, nil
		}
		var ce *certify.CounterexampleError
		if !errors.As(err, &ce) {
			return 0, err
		}
	}
	return 0, nil
}

// Format renders the study.
func (r *EnergyResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Energy on heterogeneous platforms — biased mapping\n")
	sb.WriteString("(primaries on the low-power core, re-executions on the high-performance core;\n")
	sb.WriteString(" energy = Σ busy·P_active + idle·P_idle per core; nominal = all-AET fault-free cycle)\n")
	sb.WriteString("app           platform   flt   utility     energy     active       idle   cert-k   nominal per-core\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row.Cores))
		for c := range row.Cores {
			parts[c] = fmt.Sprintf("%s=%.1f", row.Cores[c], row.CoreEnergy[c])
		}
		fmt.Fprintf(&sb, "%-13s %-8s   %3d   %7.2f   %8.1f   %8.1f   %8.1f   %6d   %s\n",
			row.App, row.Platform, row.Faults, row.Utility,
			row.MeanEnergy, row.MeanActive, row.MeanIdle,
			row.CertifiedK, strings.Join(parts, " "))
	}
	return sb.String()
}
