package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ftsched/internal/gen"
	"ftsched/internal/obs"
	"ftsched/internal/stats"
)

// HardRatioConfig parametrises the hard/soft-mix sensitivity sweep: an
// extension experiment beyond the paper (whose Table 1 fixes 50/50). It
// answers "where does quasi-static scheduling pay off?" — with no soft
// processes there is no utility to gain; with no hard processes there is
// no worst-case pressure forcing the pessimistic drops that revival
// recovers.
type HardRatioConfig struct {
	Ratios    []float64
	Apps      int
	Processes int
	M         int
	Scenarios int
	Seed      int64
	// Workers bounds both the FTQS synthesis goroutines and the
	// Monte-Carlo evaluation goroutines (0 = GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Sink receives synthesis and simulation events (nil disables
	// instrumentation; results are identical either way).
	Sink obs.Sink
}

// DefaultHardRatio returns a CI-friendly configuration.
func DefaultHardRatio() HardRatioConfig {
	return HardRatioConfig{
		Ratios:    []float64{0.1, 0.25, 0.5, 0.75, 0.9},
		Apps:      5,
		Processes: 30,
		M:         32,
		Scenarios: 500,
		Seed:      8,
	}
}

// HardRatioRow is one point of the sweep: FTSS and FTSF normalised to the
// FTQS no-fault utility (= 100), plus the fraction of soft processes the
// FTSS root drops (the revival headroom).
type HardRatioRow struct {
	Ratio        float64
	FTSS, FTSF   float64
	RootDropPct  float64
	Apps         int
	FTSFFailures int
}

// HardRatioResult aggregates the sweep.
type HardRatioResult struct {
	Rows []HardRatioRow
	Cfg  HardRatioConfig
}

// HardRatio runs the sweep.
func HardRatio(cfg HardRatioConfig) (*HardRatioResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &HardRatioResult{Cfg: cfg}
	for _, ratio := range cfg.Ratios {
		row := HardRatioRow{Ratio: ratio}
		var ftssAcc, ftsfAcc, dropAcc []float64
		for a := 0; a < cfg.Apps; a++ {
			gcfg := gen.Default(cfg.Processes)
			gcfg.HardRatio = ratio
			app, err := generateSchedulable(rng, gcfg, 50)
			if err != nil {
				return nil, err
			}
			ftqs, ftss, ftsf, err := synthesise(app, cfg.M, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			seed := rng.Int63()
			base, err := meanUtility(ftqs, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				continue
			}
			us, err := meanUtility(ftss, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
			if err != nil {
				return nil, err
			}
			ftssAcc = append(ftssAcc, stats.Ratio(us, base))
			if ftsf == nil {
				row.FTSFFailures++
				ftsfAcc = append(ftsfAcc, 0)
			} else {
				ub, err := meanUtility(ftsf, cfg.Scenarios, 0, seed, cfg.Workers, cfg.Sink)
				if err != nil {
					return nil, err
				}
				ftsfAcc = append(ftsfAcc, stats.Ratio(ub, base))
			}
			nSoft := len(app.SoftIDs())
			if nSoft > 0 {
				dropped := 0
				for _, id := range app.SoftIDs() {
					if !ftss.Root().Schedule.Contains(id) {
						dropped++
					}
				}
				dropAcc = append(dropAcc, 100*float64(dropped)/float64(nSoft))
			}
			row.Apps++
		}
		row.FTSS = stats.Mean(ftssAcc)
		row.FTSF = stats.Mean(ftsfAcc)
		row.RootDropPct = stats.Mean(dropAcc)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the sweep.
func (r *HardRatioResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Hard/soft mix sweep — utility normalised to FTQS (%), no faults\n")
	sb.WriteString("hard%   FTSS   FTSF   root-dropped-soft%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%4.0f%%  %5.1f  %5.1f   %5.1f%%\n",
			100*row.Ratio, row.FTSS, row.FTSF, row.RootDropPct)
	}
	return sb.String()
}
