package model

import "math/bits"

// ProcSet is a bitset over ProcessID, sized for one application. It is the
// canonical representation of executed/dropped process state across the
// synthesis and runtime layers: membership tests are branch-free word
// operations, copies are a handful of words, and — unlike a
// map[ProcessID]bool — iteration is deterministic (ascending ID order) and
// allocation-free.
type ProcSet []uint64

// NewProcSet returns an empty set with capacity for n processes.
func NewProcSet(n int) ProcSet { return make(ProcSet, (n+63)/64) }

// Has reports whether id is in the set.
func (s ProcSet) Has(id ProcessID) bool {
	return s[uint(id)>>6]&(1<<(uint(id)&63)) != 0
}

// Add inserts id.
func (s ProcSet) Add(id ProcessID) { s[uint(id)>>6] |= 1 << (uint(id) & 63) }

// Remove deletes id.
func (s ProcSet) Remove(id ProcessID) { s[uint(id)>>6] &^= 1 << (uint(id) & 63) }

// Clear empties the set in place.
func (s ProcSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of processes in the set.
func (s ProcSet) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of the set.
func (s ProcSet) Clone() ProcSet {
	cp := make(ProcSet, len(s))
	copy(cp, s)
	return cp
}

// CopyFrom overwrites the set with src (the sets must be the same size).
func (s ProcSet) CopyFrom(src ProcSet) { copy(s, src) }

// AddAll inserts every id of the slice.
func (s ProcSet) AddAll(ids []ProcessID) {
	for _, id := range ids {
		s.Add(id)
	}
}

// AppendIDs appends the members in ascending ID order to buf and returns
// the extended slice (pass buf[:0] to reuse a scratch buffer).
func (s ProcSet) AppendIDs(buf []ProcessID) []ProcessID {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, ProcessID(wi*64+b))
			w &= w - 1
		}
	}
	return buf
}

// procKeyWords is the inline capacity of a ProcKey: sets over up to
// procKeyWords*64 processes produce keys without heap allocation.
const procKeyWords = 4

// ProcKey is a comparable snapshot of a ProcSet, usable as a map key.
// Applications with at most 256 processes (every paper benchmark, and
// everything the generator produces by default) fit the inline words and
// the key is built allocation-free; larger sets spill the remaining words
// into a string, which allocates but stays correct and comparable.
type ProcKey struct {
	w     [procKeyWords]uint64
	spill string
}

// Key snapshots the set into a comparable value.
func (s ProcSet) Key() ProcKey {
	var k ProcKey
	n := len(s)
	if n > procKeyWords {
		n = procKeyWords
	}
	for i := 0; i < n; i++ {
		k.w[i] = s[i]
	}
	if len(s) > procKeyWords {
		b := make([]byte, 0, (len(s)-procKeyWords)*8)
		for _, w := range s[procKeyWords:] {
			for i := 0; i < 8; i++ {
				b = append(b, byte(w>>(8*uint(i))))
			}
		}
		k.spill = string(b)
	}
	return k
}
