package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ftsched/internal/utility"
)

func u(v float64, until Time) utility.Function {
	return utility.MustStep([]Time{until}, []float64{v})
}

// fig1App builds the application of the paper's Fig. 1: P1 hard (d=180),
// P2 and P3 soft, edges P1->P2 and P1->P3, T=300, k=1, µ=10.
func fig1App(t *testing.T) (*Application, [3]ProcessID) {
	t.Helper()
	a := NewApplication("fig1", 300, 1, 10)
	p1 := a.AddProcess(Process{Name: "P1", Kind: Hard, BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	p2 := a.AddProcess(Process{Name: "P2", Kind: Soft, BCET: 30, AET: 50, WCET: 70, Utility: u(40, 90)})
	p3 := a.AddProcess(Process{Name: "P3", Kind: Soft, BCET: 40, AET: 60, WCET: 80, Utility: u(40, 110)})
	a.MustAddEdge(p1, p2)
	a.MustAddEdge(p1, p3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a, [3]ProcessID{p1, p2, p3}
}

func TestFig1Application(t *testing.T) {
	a, ids := fig1App(t)
	if a.N() != 3 {
		t.Fatalf("N = %d, want 3", a.N())
	}
	if got := a.Proc(ids[0]).Deadline; got != 180 {
		t.Errorf("P1 deadline = %d, want 180", got)
	}
	if a.Period() != 300 || a.K() != 1 || a.Mu() != 10 {
		t.Errorf("T/k/µ = %d/%d/%d, want 300/1/10", a.Period(), a.K(), a.Mu())
	}
	if got := len(a.HardIDs()); got != 1 {
		t.Errorf("hard count = %d, want 1", got)
	}
	if got := len(a.SoftIDs()); got != 2 {
		t.Errorf("soft count = %d, want 2", got)
	}
	if got := a.Topo()[0]; got != ids[0] {
		t.Errorf("topo[0] = %d, want P1", got)
	}
	if len(a.Sources()) != 1 {
		t.Errorf("sources = %v, want [P1]", a.Sources())
	}
	if a.IsPolar() {
		t.Error("fig1 graph has two sinks; IsPolar should be false")
	}
	if got := a.IDByName("P3"); got != ids[2] {
		t.Errorf("IDByName(P3) = %d, want %d", got, ids[2])
	}
	if got := a.IDByName("nope"); got != NoProcess {
		t.Errorf("IDByName(nope) = %d, want NoProcess", got)
	}
	if got := a.TotalWCET(); got != 220 {
		t.Errorf("TotalWCET = %d, want 220", got)
	}
	if !strings.Contains(a.String(), "3 processes") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestMuOfOverride(t *testing.T) {
	a := NewApplication("mu", 100, 1, 15)
	p1 := a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 50})
	p2 := a.AddProcess(Process{Name: "B", Kind: Hard, BCET: 1, AET: 2, WCET: 30, Deadline: 90, Mu: 3})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.MuOf(p1); got != 15 {
		t.Errorf("MuOf(A) = %d, want default 15", got)
	}
	if got := a.MuOf(p2); got != 3 {
		t.Errorf("MuOf(B) = %d, want override 3", got)
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mod func(*Application)) error {
		a := NewApplication("x", 100, 1, 5)
		mod(a)
		return a.Validate()
	}
	cases := []struct {
		name string
		mod  func(*Application)
	}{
		{"empty", func(a *Application) {}},
		{"hard without deadline", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1})
		}},
		{"soft without utility", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Soft, BCET: 1, AET: 1, WCET: 1})
		}},
		{"zero wcet", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, Deadline: 10})
		}},
		{"bcet > aet", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 5, AET: 2, WCET: 9, Deadline: 10})
		}},
		{"aet > wcet", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 12, WCET: 9, Deadline: 10})
		}},
		{"duplicate names", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
		}},
		{"empty name", func(a *Application) {
			a.AddProcess(Process{Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
		}},
		{"negative release", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10, Release: -1})
		}},
		{"negative per-process mu", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10, Mu: -2})
		}},
		{"unknown kind", func(a *Application) {
			a.AddProcess(Process{Name: "A", Kind: Kind(9), BCET: 1, AET: 1, WCET: 1})
		}},
		{"cycle", func(a *Application) {
			x := a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
			y := a.AddProcess(Process{Name: "B", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
			a.MustAddEdge(x, y)
			a.MustAddEdge(y, x)
		}},
	}
	for _, c := range cases {
		if err := mk(c.mod); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	if err := mk(func(a *Application) {
		a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	}); err != nil {
		t.Errorf("minimal valid app rejected: %v", err)
	}

	bad := NewApplication("neg", -5, 1, 5)
	bad.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := bad.Validate(); err == nil {
		t.Error("negative period should fail")
	}
	bad2 := NewApplication("negk", 5, -1, 5)
	bad2.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := bad2.Validate(); err == nil {
		t.Error("negative k should fail")
	}
	bad3 := NewApplication("negmu", 5, 1, -5)
	bad3.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := bad3.Validate(); err == nil {
		t.Error("negative µ should fail")
	}
}

func TestEdgeErrors(t *testing.T) {
	a := NewApplication("e", 100, 0, 1)
	x := a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	y := a.AddProcess(Process{Name: "B", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := a.AddEdge(x, x); err == nil {
		t.Error("self-loop should fail")
	}
	if err := a.AddEdge(x, ProcessID(99)); err == nil {
		t.Error("out-of-range target should fail")
	}
	if err := a.AddEdge(ProcessID(-1), y); err == nil {
		t.Error("out-of-range source should fail")
	}
	if err := a.AddEdge(x, y); err != nil {
		t.Fatal(err)
	}
	if err := a.AddEdge(x, y); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestMutationAfterValidatePanics(t *testing.T) {
	a := NewApplication("m", 100, 0, 1)
	a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddProcess after Validate should panic")
		}
	}()
	a.AddProcess(Process{Name: "B", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
}

func TestUseBeforeValidatePanics(t *testing.T) {
	a := NewApplication("m", 100, 0, 1)
	a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	defer func() {
		if recover() == nil {
			t.Error("Topo before Validate should panic")
		}
	}()
	_ = a.Topo()
}

func TestStaleCoefficientsViaApplication(t *testing.T) {
	// Diamond: A -> {B, C} -> D; drop B.
	a := NewApplication("d", 1000, 0, 1)
	pa := a.AddProcess(Process{Name: "A", Kind: Soft, BCET: 1, AET: 1, WCET: 1, Utility: u(1, 10)})
	pb := a.AddProcess(Process{Name: "B", Kind: Soft, BCET: 1, AET: 1, WCET: 1, Utility: u(1, 10)})
	pc := a.AddProcess(Process{Name: "C", Kind: Soft, BCET: 1, AET: 1, WCET: 1, Utility: u(1, 10)})
	pd := a.AddProcess(Process{Name: "D", Kind: Soft, BCET: 1, AET: 1, WCET: 1, Utility: u(1, 10)})
	a.MustAddEdge(pa, pb)
	a.MustAddEdge(pa, pc)
	a.MustAddEdge(pb, pd)
	a.MustAddEdge(pc, pd)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	status := []utility.StaleStatus{utility.Executed, utility.Dropped, utility.Executed, utility.Executed}
	alpha, err := a.StaleCoefficients(status)
	if err != nil {
		t.Fatal(err)
	}
	// αA = 1, αB = 0, αC = (1+1)/2 = 1, αD = (1+0+1)/3 = 2/3.
	want := []float64{1, 0, 1, 2.0 / 3.0}
	for i := range want {
		if math.Abs(alpha[i]-want[i]) > 1e-12 {
			t.Errorf("alpha[%d] = %g, want %g", i, alpha[i], want[i])
		}
	}
}

func TestMergeHyperPeriod(t *testing.T) {
	g1 := NewApplication("g1", 100, 1, 5)
	a1 := g1.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 50})
	b1 := g1.AddProcess(Process{Name: "B", Kind: Soft, BCET: 1, AET: 2, WCET: 3, Utility: u(10, 60)})
	g1.MustAddEdge(a1, b1)
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}

	g2 := NewApplication("g2", 150, 1, 5)
	g2.AddProcess(Process{Name: "C", Kind: Soft, BCET: 2, AET: 4, WCET: 6, Utility: u(20, 80)})
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}

	m, err := Merge("merged", 2, 5, g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 300 {
		t.Fatalf("hyper-period = %d, want lcm(100,150)=300", m.Period())
	}
	// g1 replicated 3x (6 processes), g2 replicated 2x (2 processes).
	if m.N() != 8 {
		t.Fatalf("N = %d, want 8", m.N())
	}
	// Check the second activation of A: release 100, deadline 150.
	a2 := m.IDByName("g1/A#1")
	if a2 == NoProcess {
		t.Fatal("g1/A#1 not found")
	}
	p := m.Proc(a2)
	if p.Release != 100 || p.Deadline != 150 {
		t.Errorf("A#1 release/deadline = %d/%d, want 100/150", p.Release, p.Deadline)
	}
	// Check the shifted utility of B#2 (third activation, offset 200):
	// worth 10 up to absolute time 260.
	b3 := m.IDByName("g1/B#2")
	if b3 == NoProcess {
		t.Fatal("g1/B#2 not found")
	}
	ub := m.Proc(b3).Utility
	if got := ub.Value(260); got != 10 {
		t.Errorf("U_B#2(260) = %g, want 10", got)
	}
	if got := ub.Value(261); got != 0 {
		t.Errorf("U_B#2(261) = %g, want 0", got)
	}
	// Edges replicated inside each activation.
	if got := len(m.Succs(a2)); got != 1 {
		t.Errorf("A#1 successors = %d, want 1", got)
	}
	if m.K() != 2 {
		t.Errorf("merged k = %d, want 2", m.K())
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge("m", 1, 1); err == nil {
		t.Error("Merge with no applications should fail")
	}
	g := NewApplication("g", 100, 1, 5)
	g.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if _, err := Merge("m", 1, 1, g); err == nil {
		t.Error("Merge with unvalidated application should fail")
	}
}

func TestMergeSingleGraphKeepsNames(t *testing.T) {
	g := NewApplication("g", 100, 1, 5)
	g.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 10})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := Merge("m", 1, 5, g)
	if err != nil {
		t.Fatal(err)
	}
	if m.IDByName("g/A") == NoProcess {
		t.Errorf("single-activation process should keep plain name, have %q", m.Proc(0).Name)
	}
}

func TestKindString(t *testing.T) {
	if Hard.String() != "hard" || Soft.String() != "soft" {
		t.Error("Kind.String mismatch")
	}
	if got := Kind(7).String(); got != "Kind(7)" {
		t.Errorf("Kind(7).String() = %q", got)
	}
}

// TestTopoOrderProperty: for random DAGs, Topo returns each process exactly
// once and never places a successor before its predecessor.
func TestTopoOrderProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a := NewApplication("r", 10000, 1, 1)
		perm := rng.Perm(n) // hide the natural order
		ids := make([]ProcessID, n)
		for i := 0; i < n; i++ {
			ids[i] = a.AddProcess(Process{
				Name: "P" + string(rune('A'+perm[i]%26)) + string(rune('0'+i%10)) + string(rune('a'+i/10)),
				Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 9000,
			})
		}
		// Random edges respecting the hidden order perm.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					lo, hi := i, j
					if perm[lo] > perm[hi] {
						lo, hi = hi, lo
					}
					_ = a.AddEdge(ids[lo], ids[hi])
				}
			}
		}
		if err := a.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		topo := a.Topo()
		if len(topo) != n {
			return false
		}
		pos := make(map[ProcessID]int, n)
		for i, id := range topo {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for id := 0; id < n; id++ {
			for _, s := range a.Succs(ProcessID(id)) {
				if pos[ProcessID(id)] >= pos[s] {
					return false
				}
			}
			if a.Rank(ProcessID(id)) != pos[ProcessID(id)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
