package model

import "fmt"

// RecoveryKind selects how a failed execution attempt is recovered.
type RecoveryKind uint8

const (
	// RecoverReExecution is the paper's model: a failed attempt is
	// re-executed from scratch after the recovery overhead µ (the
	// application default or a per-process override). The zero value, and
	// the canonical model everywhere.
	RecoverReExecution RecoveryKind = iota
	// RecoverRestart models full-node restart (Abdi et al.,
	// arXiv:1705.02412): a fault restarts the whole process after a fixed
	// node-restart latency, independent of how far the attempt got. It is
	// re-execution with the global restart latency in place of µ.
	RecoverRestart
	// RecoverCheckpoint models checkpoint-and-rollback (Persya & Nair,
	// arXiv:1001.3756): an attempt takes a checkpoint every Spacing time
	// units of execution (each costing Overhead), and a fault rolls back
	// only to the last checkpoint — after the Rollback cost, only the
	// final segment of the attempt is re-executed.
	RecoverCheckpoint
)

// String implements fmt.Stringer.
func (k RecoveryKind) String() string {
	switch k {
	case RecoverReExecution:
		return "re-execution"
	case RecoverRestart:
		return "restart"
	case RecoverCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecoveryKind(%d)", int(k))
	}
}

// RecoveryModel is a closed sum over the three classic recovery
// primitives. The zero value is canonical re-execution; Restart uses
// Latency only; Checkpoint uses Spacing/Overhead/Rollback only. Validate
// enforces exactly that, so an invalid mixture can never reach the
// schedulers.
//
// All fields are wall-clock Time units measured on the core the affected
// execution runs on (checkpointing instruments the attempt itself, so its
// segment geometry lives in scaled wall time).
type RecoveryModel struct {
	// Kind selects the recovery primitive.
	Kind RecoveryKind
	// Latency is the fixed node-restart latency (Restart only).
	Latency Time
	// Spacing is the execution time between checkpoints (Checkpoint only,
	// must be positive).
	Spacing Time
	// Overhead is the cost of taking one checkpoint (Checkpoint only,
	// must be smaller than Spacing — a checkpoint that costs as much as
	// the work it protects can never pay off, and the bound keeps
	// AttemptTime within 2× of the raw duration so decoded values cannot
	// overflow the clock).
	Overhead Time
	// Rollback is the cost of restoring the last checkpoint after a
	// fault (Checkpoint only).
	Rollback Time
}

// ReExecutionModel returns the canonical re-execution model.
func ReExecutionModel() RecoveryModel { return RecoveryModel{} }

// RestartModel returns a full-restart model with the given latency.
func RestartModel(latency Time) RecoveryModel {
	return RecoveryModel{Kind: RecoverRestart, Latency: latency}
}

// CheckpointModel returns a checkpoint-rollback model.
func CheckpointModel(spacing, overhead, rollback Time) RecoveryModel {
	return RecoveryModel{Kind: RecoverCheckpoint, Spacing: spacing, Overhead: overhead, Rollback: rollback}
}

// RecoveryError is the typed diagnostic RecoveryModel.Validate returns:
// the offending field and the violated constraint.
type RecoveryError struct {
	// Field names the offending RecoveryModel field ("Kind", "Latency",
	// "Spacing", "Overhead", "Rollback").
	Field string
	// Msg describes the violation.
	Msg string
}

// Error implements error.
func (e *RecoveryError) Error() string {
	return fmt.Sprintf("model: recovery %s: %s", e.Field, e.Msg)
}

// IsCanonical reports whether the model is the paper's re-execution
// default. Serialisation omits canonical models so pre-recovery documents
// round-trip byte-identically.
func (m RecoveryModel) IsCanonical() bool { return m == RecoveryModel{} }

// Validate checks the per-kind field constraints.
func (m RecoveryModel) Validate() error {
	zero := func(field string, v Time) *RecoveryError {
		if v != 0 {
			return &RecoveryError{Field: field, Msg: fmt.Sprintf("not used by the %s model (got %d)", m.Kind, v)}
		}
		return nil
	}
	switch m.Kind {
	case RecoverReExecution:
		for _, c := range []struct {
			field string
			v     Time
		}{{"Latency", m.Latency}, {"Spacing", m.Spacing}, {"Overhead", m.Overhead}, {"Rollback", m.Rollback}} {
			if err := zero(c.field, c.v); err != nil {
				return err
			}
		}
	case RecoverRestart:
		if m.Latency < 0 {
			return &RecoveryError{Field: "Latency", Msg: fmt.Sprintf("must be non-negative (got %d)", m.Latency)}
		}
		for _, c := range []struct {
			field string
			v     Time
		}{{"Spacing", m.Spacing}, {"Overhead", m.Overhead}, {"Rollback", m.Rollback}} {
			if err := zero(c.field, c.v); err != nil {
				return err
			}
		}
	case RecoverCheckpoint:
		if m.Spacing <= 0 {
			return &RecoveryError{Field: "Spacing", Msg: fmt.Sprintf("must be positive (got %d)", m.Spacing)}
		}
		if m.Overhead < 0 {
			return &RecoveryError{Field: "Overhead", Msg: fmt.Sprintf("must be non-negative (got %d)", m.Overhead)}
		}
		if m.Overhead >= m.Spacing {
			return &RecoveryError{Field: "Overhead", Msg: fmt.Sprintf("must be smaller than Spacing %d (got %d)", m.Spacing, m.Overhead)}
		}
		if m.Rollback < 0 {
			return &RecoveryError{Field: "Rollback", Msg: fmt.Sprintf("must be non-negative (got %d)", m.Rollback)}
		}
		if err := zero("Latency", m.Latency); err != nil {
			return err
		}
	default:
		return &RecoveryError{Field: "Kind", Msg: fmt.Sprintf("unknown recovery kind %d", int(m.Kind))}
	}
	return nil
}

// Checkpoints returns how many checkpoints an attempt executing for d time
// units takes: one every Spacing units, none at completion (the result is
// the attempt's outcome, not a checkpoint). Zero for non-checkpoint models.
func (m RecoveryModel) Checkpoints(d Time) Time {
	if m.Kind != RecoverCheckpoint || d <= 0 {
		return 0
	}
	return (d - 1) / m.Spacing // ceil(d/Spacing) - 1
}

// AttemptTime converts an execution duration into the wall-clock time of
// one fault-free attempt: the duration plus the checkpoint overheads taken
// along the way. Identity for re-execution and restart.
func (m RecoveryModel) AttemptTime(d Time) Time {
	if m.Kind != RecoverCheckpoint || d <= 0 {
		return d
	}
	return d + (d-1)/m.Spacing*m.Overhead
}

// ResumeTime returns the execution re-run after a fault hit an attempt of
// duration d: the full duration for re-execution and restart (all progress
// is lost), and only the final segment after the last checkpoint for the
// checkpoint model. The final segment contains no further checkpoints, so
// every subsequent fault re-runs the same segment.
func (m RecoveryModel) ResumeTime(d Time) Time {
	if m.Kind != RecoverCheckpoint || d <= 0 {
		return d
	}
	return d - (d-1)/m.Spacing*m.Spacing
}

// WorstResumeTime bounds ResumeTime over every duration in [0, d]: d
// itself for re-execution and restart, min(Spacing, d) for checkpoints
// (a final segment never exceeds the spacing). Static analysis uses this
// worst-case-within-segment bound; simulation uses the sampled duration's
// exact ResumeTime.
func (m RecoveryModel) WorstResumeTime(d Time) Time {
	if m.Kind != RecoverCheckpoint {
		return d
	}
	if d > m.Spacing {
		return m.Spacing
	}
	return d
}

// String summarises the model.
func (m RecoveryModel) String() string {
	switch m.Kind {
	case RecoverReExecution:
		return "re-execution"
	case RecoverRestart:
		return fmt.Sprintf("restart(latency=%d)", m.Latency)
	case RecoverCheckpoint:
		return fmt.Sprintf("checkpoint(spacing=%d, overhead=%d, rollback=%d)", m.Spacing, m.Overhead, m.Rollback)
	default:
		return m.Kind.String()
	}
}
