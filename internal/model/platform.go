package model

import (
	"fmt"
	"math"
)

// CoreID identifies a core within its Platform. IDs are dense indices in
// [0, NCores).
type CoreID int

// Core describes one computation core of a (possibly heterogeneous)
// platform, in the style of the FEST/EnSuRe low-power/high-performance
// split: a relative speed factor and active/idle power draws.
type Core struct {
	// Name is a human-readable identifier, unique within the platform.
	Name string
	// Speed is the relative speed factor of the core. Execution times in
	// the application model are nominal (speed 1.0); a process placed on
	// this core runs for ceil(t/Speed) time units. Speed must be positive
	// and finite.
	Speed float64
	// PowerActive is the power drawn while the core executes a process,
	// in energy units per (wall-clock) time unit. Must be non-negative
	// and finite.
	PowerActive float64
	// PowerIdle is the power drawn while the core is idle within the
	// operation cycle. Must be non-negative and finite.
	PowerIdle float64
}

// Platform is an immutable set of cores. The zero-cost canonical platform
// is SingleCore(): one core with speed 1 and unit active power, which
// reproduces the paper's single computation node exactly.
type Platform struct {
	cores []Core
}

// NewPlatform builds a platform from the given cores. It validates every
// core and returns an error naming the offending core and field.
func NewPlatform(cores ...Core) (*Platform, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("model: platform needs at least one core")
	}
	names := make(map[string]bool, len(cores))
	for i, c := range cores {
		if c.Name == "" {
			return nil, fmt.Errorf("model: core %d has an empty name", i)
		}
		if names[c.Name] {
			return nil, fmt.Errorf("model: duplicate core name %q", c.Name)
		}
		names[c.Name] = true
		if err := checkCoreValues(c); err != nil {
			return nil, fmt.Errorf("model: core %q: %w", c.Name, err)
		}
	}
	p := &Platform{cores: append([]Core(nil), cores...)}
	return p, nil
}

// MustNewPlatform is NewPlatform that panics on error; intended for
// statically-known fixtures.
func MustNewPlatform(cores ...Core) *Platform {
	p, err := NewPlatform(cores...)
	if err != nil {
		panic(err)
	}
	return p
}

func checkCoreValues(c Core) error {
	switch {
	case math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0):
		return fmt.Errorf("speed must be finite (got %v)", c.Speed)
	case c.Speed <= 0:
		return fmt.Errorf("speed must be positive (got %v)", c.Speed)
	case math.IsNaN(c.PowerActive) || math.IsInf(c.PowerActive, 0):
		return fmt.Errorf("power-active must be finite (got %v)", c.PowerActive)
	case c.PowerActive < 0:
		return fmt.Errorf("power-active must be non-negative (got %v)", c.PowerActive)
	case math.IsNaN(c.PowerIdle) || math.IsInf(c.PowerIdle, 0):
		return fmt.Errorf("power-idle must be finite (got %v)", c.PowerIdle)
	case c.PowerIdle < 0:
		return fmt.Errorf("power-idle must be non-negative (got %v)", c.PowerIdle)
	}
	return nil
}

// SingleCore returns the canonical single-node platform of the paper: one
// core named "cpu" with speed 1, active power 1 and idle power 0. Every
// application without an explicit platform behaves as if mapped to it.
func SingleCore() *Platform {
	return MustNewPlatform(Core{Name: "cpu", Speed: 1, PowerActive: 1, PowerIdle: 0})
}

// NCores returns the number of cores.
func (p *Platform) NCores() int { return len(p.cores) }

// Core returns (a copy of) the core with the given ID.
func (p *Platform) Core(id CoreID) Core {
	if id < 0 || int(id) >= len(p.cores) {
		panic(fmt.Sprintf("model: core id %d out of range [0,%d)", id, len(p.cores)))
	}
	return p.cores[id]
}

// IsDefault reports whether the platform is indistinguishable from the
// canonical SingleCore() platform: one core with speed 1. Power parameters
// do not affect timing, so a platform is "default" for scheduling purposes
// iff it has one core at speed 1; serialisation additionally requires the
// canonical power values (see IsCanonical).
func (p *Platform) IsDefault() bool {
	return len(p.cores) == 1 && p.cores[0].Speed == 1
}

// IsCanonical reports whether the platform is exactly SingleCore(): one
// core with speed 1, active power 1 and idle power 0. Only canonical
// platforms may be omitted from serialised applications and trees.
func (p *Platform) IsCanonical() bool {
	return len(p.cores) == 1 &&
		p.cores[0].Speed == 1 &&
		p.cores[0].PowerActive == 1 &&
		p.cores[0].PowerIdle == 0
}

// Scale converts a nominal duration to wall-clock time on the given core:
// ceil(t/Speed), with an exact fast path for speed-1 cores so the canonical
// platform is bit-identical to the pre-platform model.
func (p *Platform) Scale(id CoreID, t Time) Time {
	s := p.Core(id).Speed
	if s == 1 || t <= 0 {
		return t
	}
	return Time(math.Ceil(float64(t) / s))
}

// FastestCore returns the core with the highest speed factor; ties break
// to the lowest ID. It is the canonical target for re-executions in the
// FEST/EnSuRe-style biased mapping.
func (p *Platform) FastestCore() CoreID {
	best := CoreID(0)
	for i := 1; i < len(p.cores); i++ {
		if p.cores[i].Speed > p.cores[best].Speed {
			best = CoreID(i)
		}
	}
	return best
}

// LowestPowerCore returns the core with the lowest active power; ties
// break to the lowest ID. It is the canonical first target for primaries.
func (p *Platform) LowestPowerCore() CoreID {
	best := CoreID(0)
	for i := 1; i < len(p.cores); i++ {
		if p.cores[i].PowerActive < p.cores[best].PowerActive {
			best = CoreID(i)
		}
	}
	return best
}

// Equal reports whether two platforms have identical core lists.
func (p *Platform) Equal(q *Platform) bool {
	if p == nil || q == nil {
		return p == q
	}
	if len(p.cores) != len(q.cores) {
		return false
	}
	for i := range p.cores {
		if p.cores[i] != q.cores[i] {
			return false
		}
	}
	return true
}

// String summarises the platform.
func (p *Platform) String() string {
	s := fmt.Sprintf("platform: %d cores [", len(p.cores))
	for i, c := range p.cores {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s(speed=%g,P=%g/%g)", c.Name, c.Speed, c.PowerActive, c.PowerIdle)
	}
	return s + "]"
}

// Mapping assigns every process a primary core and a recovery core for its
// re-executions. Slices are indexed by ProcessID.
type Mapping struct {
	// Primary[id] is the core the first attempt of process id runs on.
	Primary []CoreID
	// Recovery[id] is the core re-executions of process id run on after a
	// fault (the FEST/EnSuRe pattern places these on the fast core).
	Recovery []CoreID
}

// BiasedMapping builds the deterministic FEST/EnSuRe-style mapping for an
// application on a platform: primaries round-robin (by ProcessID) across
// the cores sharing the minimal active power, re-executions all on the
// fastest core. On a single-core platform every assignment is core 0, so
// the mapping is behaviour-neutral.
func BiasedMapping(a *Application, p *Platform) Mapping {
	n := a.N()
	m := Mapping{
		Primary:  make([]CoreID, n),
		Recovery: make([]CoreID, n),
	}
	minPower := p.cores[p.LowestPowerCore()].PowerActive
	var lowPower []CoreID
	for i, c := range p.cores {
		if c.PowerActive == minPower {
			lowPower = append(lowPower, CoreID(i))
		}
	}
	rec := p.FastestCore()
	for id := 0; id < n; id++ {
		m.Primary[id] = lowPower[id%len(lowPower)]
		m.Recovery[id] = rec
	}
	return m
}
