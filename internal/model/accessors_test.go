package model

import (
	"testing"

	"ftsched/internal/utility"
)

func TestAccessors(t *testing.T) {
	a, ids := fig1App(t)
	if a.Name() != "fig1" {
		t.Errorf("Name = %q", a.Name())
	}
	if got := a.UtilityOf(ids[0]); got == nil {
		t.Error("UtilityOf(hard) must return a function")
	} else if got.Value(0) != 0 {
		t.Error("hard process utility must be zero")
	}
	if got := a.UtilityOf(ids[1]); got.Value(0) != 40 {
		t.Errorf("UtilityOf(P2)(0) = %g, want 40", got.Value(0))
	}
	if got := a.Preds(ids[1]); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("Preds(P2) = %v", got)
	}
	if got := a.Succs(ids[0]); len(got) != 2 {
		t.Errorf("Succs(P1) = %v", got)
	}
	if a.Rank(ids[0]) != 0 {
		t.Errorf("Rank(P1) = %d", a.Rank(ids[0]))
	}
}

func TestAccessorPanics(t *testing.T) {
	a, _ := fig1App(t)
	for name, f := range map[string]func(){
		"Proc":    func() { a.Proc(ProcessID(99)) },
		"Preds":   func() { a.Preds(ProcessID(-1)) },
		"Succs":   func() { a.Succs(ProcessID(99)) },
		"Rank":    func() { a.Rank(ProcessID(99)) },
		"MustAdd": func() { b := NewApplication("x", 10, 0, 1); b.MustAddEdge(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWithFaults(t *testing.T) {
	a, _ := fig1App(t)
	b, err := a.WithFaults(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 0 || b.Mu() != 5 {
		t.Errorf("WithFaults produced k=%d µ=%d", b.K(), b.Mu())
	}
	if b.N() != a.N() || len(b.Succs(0)) != len(a.Succs(0)) {
		t.Error("WithFaults lost structure")
	}
	// Original untouched.
	if a.K() != 1 {
		t.Error("WithFaults mutated the original")
	}
	// Invalid parameters are rejected through Validate.
	if _, err := a.WithFaults(-1, 5); err == nil {
		t.Error("negative k accepted")
	}
	// Unvalidated receiver panics.
	raw := NewApplication("raw", 10, 0, 1)
	raw.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 5})
	defer func() {
		if recover() == nil {
			t.Error("WithFaults on unvalidated application should panic")
		}
	}()
	_, _ = raw.WithFaults(1, 1)
}

func TestUtilityHelpers(t *testing.T) {
	tb := utility.MustTable(utility.Step, utility.Point{T: 10, V: 5})
	if len(tb.Points()) != 1 || tb.Mode() != utility.Step {
		t.Error("Points/Mode accessors broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic on invalid input")
		}
	}()
	utility.MustTable(utility.Step)
}
