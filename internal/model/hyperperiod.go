package model

import (
	"fmt"

	"ftsched/internal/utility"
)

// Merge combines several validated applications (each representing one
// process graph G_k with its own period T_Gk) into a single application over
// the hyper-period LCM(T_G1, ..., T_Gn), as described in §2 of the paper:
// "If process graphs have different periods, they are combined into a
// hyper-graph capturing all process activations for the hyper-period."
//
// The j-th activation (j = 0, 1, ...) of a process P from a graph with
// period T_G appears as a process named "P#j" with
//
//   - Release  = P.Release + j·T_G (it cannot start before its period begins)
//   - Deadline = P.Deadline + j·T_G (hard processes)
//   - Utility  = U(t - j·T_G) (soft processes)
//
// Edges are replicated within each activation. The fault bound k and the
// default µ of the merged application are given by the caller: the model
// assumes at most k faults per operation cycle of the merged application,
// i.e. per hyper-period.
func Merge(name string, k int, mu Time, apps ...*Application) (*Application, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("model: Merge needs at least one application")
	}
	hyper := Time(1)
	for _, g := range apps {
		if !g.validated {
			return nil, fmt.Errorf("model: Merge requires validated applications (%q is not)", g.name)
		}
		hyper = lcm(hyper, g.period)
	}
	merged := NewApplication(name, hyper, k, mu)
	for _, g := range apps {
		reps := int(hyper / g.period)
		for j := 0; j < reps; j++ {
			offset := Time(j) * g.period
			ids := make([]ProcessID, g.N())
			for i := 0; i < g.N(); i++ {
				p := g.Proc(ProcessID(i))
				suffix := ""
				if reps > 1 {
					suffix = fmt.Sprintf("#%d", j)
				}
				np := Process{
					Name:    g.name + "/" + p.Name + suffix,
					Kind:    p.Kind,
					BCET:    p.BCET,
					AET:     p.AET,
					WCET:    p.WCET,
					Mu:      p.Mu,
					Release: p.Release + offset,
				}
				if p.Kind == Hard {
					np.Deadline = p.Deadline + offset
				} else if p.Utility != nil {
					if offset == 0 {
						np.Utility = p.Utility
					} else {
						np.Utility = utility.Shifted{F: p.Utility, By: offset}
					}
				}
				ids[i] = merged.AddProcess(np)
			}
			for i := 0; i < g.N(); i++ {
				for _, s := range g.Succs(ProcessID(i)) {
					if err := merged.AddEdge(ids[i], ids[s]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	// Carry a shared platform (and the per-instance mappings) through the
	// merge. Mixing applications mapped to different platforms has no
	// defined semantics.
	var plat *Platform
	for _, g := range apps {
		if !g.HasPlatform() {
			continue
		}
		if plat == nil {
			plat = g.platform
		} else if !plat.Equal(g.platform) {
			return nil, fmt.Errorf("model: Merge requires a common platform (%q differs)", g.name)
		}
	}
	if plat != nil {
		m := Mapping{
			Primary:  make([]CoreID, 0, merged.N()),
			Recovery: make([]CoreID, 0, merged.N()),
		}
		for _, g := range apps {
			reps := int(hyper / g.period)
			for j := 0; j < reps; j++ {
				for i := 0; i < g.N(); i++ {
					m.Primary = append(m.Primary, g.CoreOf(ProcessID(i)))
					m.Recovery = append(m.Recovery, g.RecoveryCoreOf(ProcessID(i)))
				}
			}
		}
		return merged.WithPlatform(plat, m)
	}
	return merged, nil
}

func gcd(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b Time) Time {
	return a / gcd(a, b) * b
}
