// Package model defines the application model of Izosimov et al.
// (DATE 2008), Section 2: a set of directed, acyclic, polar process graphs
// mapped to a single computation node.
//
// Each process P_i has a best-case execution time (BCET) t_i^b, an
// average-case execution time (AET) t_i^e and a worst-case execution time
// (WCET) t_i^w; communication time is folded into the execution times.
// Processes are non-preemptable. A process is either hard — it carries an
// individual deadline d_i that must be met in every scenario including the
// worst-case fault scenario — or soft, in which case it carries a
// non-increasing time/utility function U_i(t) and may be dropped.
//
// The application tolerates at most K transient faults per operation cycle,
// recovering by re-execution with a recovery overhead µ (a global default
// that can be overridden per process, as in the cruise-controller case study
// where µ is 10% of each process's WCET).
package model

import (
	"errors"
	"fmt"

	"ftsched/internal/utility"
)

// Time is the discrete time base (milliseconds); see utility.Time.
type Time = utility.Time

// ProcessID identifies a process within its Application. IDs are dense
// indices in [0, N). After Validate, IDs are guaranteed to be stable; the
// topological order is available separately via Topo.
type ProcessID int

// NoProcess is the sentinel for "no process".
const NoProcess ProcessID = -1

// Kind classifies a process as hard or soft real-time.
type Kind int

const (
	// Hard processes carry deadlines that must be guaranteed under any
	// combination of up to K faults.
	Hard Kind = iota
	// Soft processes carry time/utility functions and may be dropped.
	Soft
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Hard:
		return "hard"
	case Soft:
		return "soft"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Process is one node of the application graph.
type Process struct {
	// Name is a human-readable identifier, unique within the application.
	Name string
	// Kind selects hard or soft semantics.
	Kind Kind
	// BCET <= AET <= WCET are the execution-time bounds, in Time units.
	// WCET must be positive.
	BCET, AET, WCET Time
	// Deadline is the individual hard deadline d_i; required for hard
	// processes, ignored for soft ones.
	Deadline Time
	// Utility is the time/utility function U_i(t); required for soft
	// processes, ignored for hard ones.
	Utility utility.Function
	// Mu overrides the application-wide recovery overhead for this
	// process when positive (used by the cruise-controller case study,
	// where µ is 10% of each WCET). Zero means "use the application µ"
	// unless MuExplicit is set.
	Mu Time
	// MuExplicit marks Mu as an explicit override even when it is zero,
	// so a genuine zero-overhead recovery is expressible. Without it the
	// legacy convention applies: Mu > 0 overrides, Mu == 0 inherits.
	MuExplicit bool
	// Release is the earliest start time of the process. It is zero for
	// ordinary applications and j·T_G for the j-th hyper-period instance
	// of a process from a graph with period T_G (see Merge).
	Release Time
}

// Application is a validated, topologically analysed process graph together
// with the platform/fault parameters of the model.
//
// Build one with NewApplication, AddProcess and AddEdge, then call Validate
// before handing it to the schedulers. All accessor methods after Validate
// are read-only; Application values are safe for concurrent readers.
type Application struct {
	name   string
	period Time
	k      int
	mu     Time

	procs []Process
	succ  [][]ProcessID
	pred  [][]ProcessID

	// platform and the mapping slices are nil for the canonical
	// single-core model; see WithPlatform.
	platform *Platform
	primCore []CoreID
	recCore  []CoreID

	// recovery is the fault-recovery model; the zero value is the paper's
	// re-execution-with-µ. See WithRecovery.
	recovery RecoveryModel

	validated bool
	topo      []ProcessID
	rank      []int // rank[id] = position of id in topo order
}

// canonicalPlatform backs Platform() for applications without an explicit
// platform, so callers never see nil.
var canonicalPlatform = SingleCore()

// NewApplication creates an empty application.
//
// period is the operation cycle T of the application (all schedules must
// complete within it, even in the worst-case fault scenario); k is the
// maximum number of transient faults per cycle; mu is the default recovery
// overhead µ.
func NewApplication(name string, period Time, k int, mu Time) *Application {
	return &Application{name: name, period: period, k: k, mu: mu}
}

// AddProcess appends a process and returns its ID. It must be called before
// Validate.
func (a *Application) AddProcess(p Process) ProcessID {
	a.mustBeMutable()
	a.procs = append(a.procs, p)
	a.succ = append(a.succ, nil)
	a.pred = append(a.pred, nil)
	return ProcessID(len(a.procs) - 1)
}

// AddEdge records a data dependency from -> to: the output of from is an
// input of to, so to cannot start before from has terminated (or been
// dropped, in which case to consumes a stale value).
func (a *Application) AddEdge(from, to ProcessID) error {
	a.mustBeMutable()
	if err := a.checkID(from); err != nil {
		return err
	}
	if err := a.checkID(to); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("model: self-loop on %s", a.procs[from].Name)
	}
	for _, s := range a.succ[from] {
		if s == to {
			return fmt.Errorf("model: duplicate edge %s -> %s", a.procs[from].Name, a.procs[to].Name)
		}
	}
	a.succ[from] = append(a.succ[from], to)
	a.pred[to] = append(a.pred[to], from)
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for statically-known
// fixtures.
func (a *Application) MustAddEdge(from, to ProcessID) {
	if err := a.AddEdge(from, to); err != nil {
		panic(err)
	}
}

func (a *Application) mustBeMutable() {
	if a.validated {
		panic("model: application mutated after Validate")
	}
}

func (a *Application) checkID(id ProcessID) error {
	if id < 0 || int(id) >= len(a.procs) {
		return fmt.Errorf("model: process id %d out of range [0,%d)", id, len(a.procs))
	}
	return nil
}

// Validate checks the structural and numeric invariants of the model and
// freezes the application:
//
//   - at least one process; period, µ > 0; K >= 0
//   - 0 <= BCET <= AET <= WCET, WCET > 0, for every process
//   - hard processes have a positive deadline; soft processes have a
//     utility function
//   - names are unique and non-empty
//   - the graph is acyclic
//
// On success the topological order is computed and the application becomes
// immutable.
func (a *Application) Validate() error {
	if a.validated {
		return nil
	}
	if len(a.procs) == 0 {
		return errors.New("model: application has no processes")
	}
	if a.period <= 0 {
		return fmt.Errorf("model: period must be positive (got %d)", a.period)
	}
	if a.k < 0 {
		return fmt.Errorf("model: fault bound k must be non-negative (got %d)", a.k)
	}
	if a.mu < 0 {
		return fmt.Errorf("model: recovery overhead µ must be non-negative (got %d)", a.mu)
	}
	names := make(map[string]bool, len(a.procs))
	for id, p := range a.procs {
		if p.Name == "" {
			return fmt.Errorf("model: process %d has an empty name", id)
		}
		if names[p.Name] {
			return fmt.Errorf("model: duplicate process name %q", p.Name)
		}
		names[p.Name] = true
		if p.WCET <= 0 {
			return fmt.Errorf("model: %s: WCET must be positive (got %d)", p.Name, p.WCET)
		}
		if p.BCET < 0 || p.BCET > p.AET || p.AET > p.WCET {
			return fmt.Errorf("model: %s: need 0 <= BCET <= AET <= WCET (got %d, %d, %d)",
				p.Name, p.BCET, p.AET, p.WCET)
		}
		if p.Mu < 0 {
			return &ProcessMuError{Process: p.Name, Mu: p.Mu, Explicit: p.MuExplicit}
		}
		if p.Release < 0 {
			return fmt.Errorf("model: %s: release must be non-negative (got %d)", p.Name, p.Release)
		}
		switch p.Kind {
		case Hard:
			if p.Deadline <= 0 {
				return fmt.Errorf("model: hard process %s needs a positive deadline", p.Name)
			}
		case Soft:
			if p.Utility == nil {
				return fmt.Errorf("model: soft process %s needs a utility function", p.Name)
			}
		default:
			return fmt.Errorf("model: %s: unknown kind %d", p.Name, p.Kind)
		}
	}
	topo, err := a.topoSort()
	if err != nil {
		return err
	}
	a.topo = topo
	a.rank = make([]int, len(a.procs))
	for i, id := range topo {
		a.rank[id] = i
	}
	a.validated = true
	return nil
}

// topoSort runs Kahn's algorithm, detecting cycles. Among ready nodes the
// smallest ID is taken first so the order is deterministic.
func (a *Application) topoSort() ([]ProcessID, error) {
	n := len(a.procs)
	indeg := make([]int, n)
	for id := range a.procs {
		indeg[id] = len(a.pred[id])
	}
	// A simple ordered ready set; n is small (tens of processes).
	var ready []ProcessID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, ProcessID(id))
		}
	}
	order := make([]ProcessID, 0, n)
	for len(ready) > 0 {
		// Pick the smallest ID for determinism.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, id)
		for _, s := range a.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("model: process graph has a cycle")
	}
	return order, nil
}

func (a *Application) mustBeValidated() {
	if !a.validated {
		panic("model: application used before Validate")
	}
}

// Name returns the application name.
func (a *Application) Name() string { return a.name }

// Period returns the operation cycle T.
func (a *Application) Period() Time { return a.period }

// K returns the maximum number of transient faults per cycle.
func (a *Application) K() int { return a.k }

// Mu returns the default recovery overhead µ.
func (a *Application) Mu() Time { return a.mu }

// N returns the number of processes.
func (a *Application) N() int { return len(a.procs) }

// Proc returns (a copy of) the process with the given ID.
func (a *Application) Proc(id ProcessID) Process {
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.procs[id]
}

// ProcessMuError is the typed Validate diagnostic for an invalid
// per-process recovery overhead override.
type ProcessMuError struct {
	// Process is the offending process name.
	Process string
	// Mu is the rejected value.
	Mu Time
	// Explicit reports whether the override was marked MuExplicit.
	Explicit bool
}

// Error implements error.
func (e *ProcessMuError) Error() string {
	return fmt.Sprintf("model: %s: per-process µ must be non-negative (got %d)", e.Process, e.Mu)
}

// MuOf returns the effective recovery overhead of a process: its own Mu
// when the override is in effect (MuExplicit, or positive under the legacy
// convention), the application default otherwise. A MuExplicit zero is a
// genuine zero-overhead recovery.
func (a *Application) MuOf(id ProcessID) Time {
	p := a.Proc(id)
	if p.MuExplicit || p.Mu > 0 {
		return p.Mu
	}
	return a.mu
}

// UtilityOf returns the utility function of a process; hard processes (and
// soft processes without a function, which Validate rejects) yield
// utility.Zero.
func (a *Application) UtilityOf(id ProcessID) utility.Function {
	p := a.Proc(id)
	if p.Kind == Soft && p.Utility != nil {
		return p.Utility
	}
	return utility.Zero{}
}

// Succs returns the direct successors of id. The returned slice must not be
// modified.
func (a *Application) Succs(id ProcessID) []ProcessID {
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.succ[id]
}

// Preds returns the direct predecessors DP(P_id). The returned slice must
// not be modified.
func (a *Application) Preds(id ProcessID) []ProcessID {
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.pred[id]
}

// Topo returns a topological order of the process IDs. The returned slice
// must not be modified.
func (a *Application) Topo() []ProcessID {
	a.mustBeValidated()
	return a.topo
}

// Rank returns the position of id in the topological order.
func (a *Application) Rank(id ProcessID) int {
	a.mustBeValidated()
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.rank[id]
}

// HardIDs returns the IDs of all hard processes, in ID order.
func (a *Application) HardIDs() []ProcessID {
	var out []ProcessID
	for id := range a.procs {
		if a.procs[id].Kind == Hard {
			out = append(out, ProcessID(id))
		}
	}
	return out
}

// SoftIDs returns the IDs of all soft processes, in ID order.
func (a *Application) SoftIDs() []ProcessID {
	var out []ProcessID
	for id := range a.procs {
		if a.procs[id].Kind == Soft {
			out = append(out, ProcessID(id))
		}
	}
	return out
}

// Sources returns the processes without predecessors.
func (a *Application) Sources() []ProcessID {
	var out []ProcessID
	for id := range a.procs {
		if len(a.pred[id]) == 0 {
			out = append(out, ProcessID(id))
		}
	}
	return out
}

// Sinks returns the processes without successors.
func (a *Application) Sinks() []ProcessID {
	var out []ProcessID
	for id := range a.procs {
		if len(a.succ[id]) == 0 {
			out = append(out, ProcessID(id))
		}
	}
	return out
}

// IsPolar reports whether the graph has exactly one source and one sink, as
// the paper's model assumes. The schedulers do not require polarity; the
// predicate is provided so callers can check conformance.
func (a *Application) IsPolar() bool {
	return len(a.Sources()) == 1 && len(a.Sinks()) == 1
}

// StaleCoefficients computes the stale-value coefficients α for all
// processes given their execution status, visiting them in topological
// order. See utility.Coefficients.
func (a *Application) StaleCoefficients(status []utility.StaleStatus) ([]float64, error) {
	a.mustBeValidated()
	order := make([]int, len(a.topo))
	for i, id := range a.topo {
		order[i] = int(id)
	}
	preds := make([][]int, len(a.procs))
	for id := range a.procs {
		ps := make([]int, len(a.pred[id]))
		for i, p := range a.pred[id] {
			ps[i] = int(p)
		}
		preds[id] = ps
	}
	return utility.Coefficients(order, preds, status)
}

// WithFaults returns a copy of the (validated) application with a different
// fault bound k and default recovery overhead µ. Baseline schedulers use it
// to synthesise non-fault-tolerant schedules (k = 0) for the same workload.
// The platform and mapping, if any, carry over unchanged.
func (a *Application) WithFaults(k int, mu Time) (*Application, error) {
	a.mustBeValidated()
	cp := NewApplication(a.name, a.period, k, mu)
	for _, p := range a.procs {
		cp.AddProcess(p)
	}
	for id := range a.procs {
		for _, s := range a.succ[id] {
			if err := cp.AddEdge(ProcessID(id), s); err != nil {
				return nil, err
			}
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	cp.platform = a.platform
	cp.primCore = a.primCore
	cp.recCore = a.recCore
	cp.recovery = a.recovery
	return cp, nil
}

// Recovery returns the application's fault-recovery model. Applications
// built without WithRecovery report the canonical re-execution model.
func (a *Application) Recovery() RecoveryModel { return a.recovery }

// HasRecovery reports whether a non-canonical recovery model was attached
// via WithRecovery. Serialisation uses it to keep canonical re-execution
// applications byte-identical to the pre-recovery format.
func (a *Application) HasRecovery() bool { return !a.recovery.IsCanonical() }

// WithRecovery returns a copy of the (validated) application using the
// given recovery model. The platform, mapping and fault parameters carry
// over unchanged; the model is validated with RecoveryModel.Validate.
func (a *Application) WithRecovery(m RecoveryModel) (*Application, error) {
	a.mustBeValidated()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cp, err := a.WithFaults(a.k, a.mu)
	if err != nil {
		return nil, err
	}
	cp.recovery = m
	return cp, nil
}

// RecoveryOverhead returns the fixed per-fault overhead paid before a
// process resumes after a fault: µ for re-execution, the restart latency
// for restart, and the rollback cost for checkpoints.
func (a *Application) RecoveryOverhead(id ProcessID) Time {
	switch a.recovery.Kind {
	case RecoverRestart:
		return a.recovery.Latency
	case RecoverCheckpoint:
		return a.recovery.Rollback
	default:
		return a.MuOf(id)
	}
}

// WorstRecoveryCost returns the worst-case wall-clock cost one fault on
// the process adds to the schedule: the per-fault overhead plus the
// longest possible re-run. Re-execution and restart re-run the whole WCET
// on the recovery core; a checkpoint rollback re-runs at most one segment
// (min(Spacing, scaled WCET)) on the primary core, where the checkpoint
// state lives.
func (a *Application) WorstRecoveryCost(id ProcessID) Time {
	p := a.Proc(id)
	plat := a.Platform()
	switch a.recovery.Kind {
	case RecoverRestart:
		return plat.Scale(a.RecoveryCoreOf(id), p.WCET) + a.recovery.Latency
	case RecoverCheckpoint:
		return a.recovery.WorstResumeTime(plat.Scale(a.CoreOf(id), p.WCET)) + a.recovery.Rollback
	default:
		return plat.Scale(a.RecoveryCoreOf(id), p.WCET) + a.MuOf(id)
	}
}

// Platform returns the platform the application is mapped to. Applications
// built without WithPlatform report the canonical single-core platform.
func (a *Application) Platform() *Platform {
	if a.platform == nil {
		return canonicalPlatform
	}
	return a.platform
}

// HasPlatform reports whether an explicit platform was attached via
// WithPlatform. Serialisation uses it to keep canonical single-core
// applications byte-identical to the pre-platform format.
func (a *Application) HasPlatform() bool { return a.platform != nil }

// CoreOf returns the primary core of a process: the core its first
// execution attempt runs on. Core 0 without an explicit mapping.
func (a *Application) CoreOf(id ProcessID) CoreID {
	if a.primCore == nil {
		return 0
	}
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.primCore[id]
}

// RecoveryCoreOf returns the core re-executions of a process run on after
// a fault. Core 0 without an explicit mapping.
func (a *Application) RecoveryCoreOf(id ProcessID) CoreID {
	if a.recCore == nil {
		return 0
	}
	if err := a.checkID(id); err != nil {
		panic(err)
	}
	return a.recCore[id]
}

// ProcMapping returns a copy of the process→core mapping (for
// serialisation). Without an explicit mapping every assignment is core 0.
func (a *Application) ProcMapping() Mapping {
	n := len(a.procs)
	m := Mapping{Primary: make([]CoreID, n), Recovery: make([]CoreID, n)}
	copy(m.Primary, a.primCore)
	copy(m.Recovery, a.recCore)
	return m
}

// WithPlatform returns a copy of the (validated) application mapped onto
// the given platform. The mapping must assign every process a primary and
// a recovery core within the platform's core range; BiasedMapping builds
// the canonical one.
func (a *Application) WithPlatform(p *Platform, m Mapping) (*Application, error) {
	a.mustBeValidated()
	if p == nil {
		return nil, errors.New("model: WithPlatform needs a platform")
	}
	n := len(a.procs)
	if len(m.Primary) != n || len(m.Recovery) != n {
		return nil, fmt.Errorf("model: mapping covers %d/%d primaries and %d/%d recoveries",
			len(m.Primary), n, len(m.Recovery), n)
	}
	for id := 0; id < n; id++ {
		if c := m.Primary[id]; c < 0 || int(c) >= p.NCores() {
			return nil, fmt.Errorf("model: %s: primary core %d out of range [0,%d)",
				a.procs[id].Name, c, p.NCores())
		}
		if c := m.Recovery[id]; c < 0 || int(c) >= p.NCores() {
			return nil, fmt.Errorf("model: %s: recovery core %d out of range [0,%d)",
				a.procs[id].Name, c, p.NCores())
		}
	}
	cp, err := a.WithFaults(a.k, a.mu)
	if err != nil {
		return nil, err
	}
	cp.platform = p
	cp.primCore = append([]CoreID(nil), m.Primary...)
	cp.recCore = append([]CoreID(nil), m.Recovery...)
	return cp, nil
}

// TotalWCET returns the sum of all WCETs — a lower bound on the no-fault
// length of any schedule that drops nothing.
func (a *Application) TotalWCET() Time {
	var sum Time
	for _, p := range a.procs {
		sum += p.WCET
	}
	return sum
}

// IDByName returns the process with the given name, or NoProcess.
func (a *Application) IDByName(name string) ProcessID {
	for id := range a.procs {
		if a.procs[id].Name == name {
			return ProcessID(id)
		}
	}
	return NoProcess
}

// String summarises the application.
func (a *Application) String() string {
	return fmt.Sprintf("app %q: %d processes (%d hard, %d soft), T=%d, k=%d, µ=%d",
		a.name, len(a.procs), len(a.HardIDs()), len(a.SoftIDs()), a.period, a.k, a.mu)
}
