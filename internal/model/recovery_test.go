package model

import (
	"errors"
	"strings"
	"testing"
)

func TestRecoveryModelValidate(t *testing.T) {
	cases := []struct {
		name  string
		m     RecoveryModel
		field string // "" = valid
	}{
		{"canonical", ReExecutionModel(), ""},
		{"restart", RestartModel(25), ""},
		{"restart zero latency", RestartModel(0), ""},
		{"checkpoint", CheckpointModel(40, 3, 7), ""},
		{"checkpoint zero overhead", CheckpointModel(40, 0, 7), ""},
		{"negative latency", RestartModel(-1), "Latency"},
		{"reexec with latency", RecoveryModel{Kind: RecoverReExecution, Latency: 3}, "Latency"},
		{"restart with spacing", RecoveryModel{Kind: RecoverRestart, Spacing: 3}, "Spacing"},
		{"checkpoint zero spacing", CheckpointModel(0, 0, 0), "Spacing"},
		{"checkpoint negative spacing", CheckpointModel(-4, 0, 0), "Spacing"},
		{"overhead at spacing", CheckpointModel(10, 10, 0), "Overhead"},
		{"negative rollback", CheckpointModel(10, 1, -2), "Rollback"},
		{"unknown kind", RecoveryModel{Kind: RecoveryKind(99)}, "Kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var rerr *RecoveryError
			if !errors.As(err, &rerr) {
				t.Fatalf("Validate() = %v, want *RecoveryError", err)
			}
			if rerr.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", rerr.Field, tc.field, err)
			}
		})
	}
}

func TestRecoveryModelTiming(t *testing.T) {
	re := ReExecutionModel()
	rs := RestartModel(25)
	cp := CheckpointModel(10, 2, 7)

	// Re-execution and restart leave attempt durations untouched and re-run
	// everything.
	for _, m := range []RecoveryModel{re, rs} {
		for _, d := range []Time{0, 1, 9, 10, 11, 35} {
			if got := m.AttemptTime(d); got != d {
				t.Fatalf("%v.AttemptTime(%d) = %d, want %d", m, d, got, d)
			}
			if got := m.ResumeTime(d); got != d {
				t.Fatalf("%v.ResumeTime(%d) = %d, want %d", m, d, got, d)
			}
			if got := m.WorstResumeTime(d); got != d {
				t.Fatalf("%v.WorstResumeTime(%d) = %d, want %d", m, d, got, d)
			}
		}
	}

	// Checkpointing: a checkpoint every full 10 units completed before the
	// end (none at completion itself), 2 overhead each; the resume re-runs
	// only the final segment.
	cpCases := []struct {
		d, checkpoints, attempt, resume Time
	}{
		{1, 0, 1, 1},
		{9, 0, 9, 9},
		{10, 0, 10, 10}, // completion is not a checkpoint
		{11, 1, 13, 1},
		{20, 1, 22, 10},
		{21, 2, 25, 1},
		{35, 3, 41, 5},
	}
	for _, tc := range cpCases {
		if got := Time(cp.Checkpoints(tc.d)); got != tc.checkpoints {
			t.Errorf("Checkpoints(%d) = %d, want %d", tc.d, got, tc.checkpoints)
		}
		if got := cp.AttemptTime(tc.d); got != tc.attempt {
			t.Errorf("AttemptTime(%d) = %d, want %d", tc.d, got, tc.attempt)
		}
		if got := cp.ResumeTime(tc.d); got != tc.resume {
			t.Errorf("ResumeTime(%d) = %d, want %d", tc.d, got, tc.resume)
		}
	}
	// The static bound dominates every in-range resume.
	for d := Time(1); d <= 35; d++ {
		if cp.ResumeTime(d) > cp.WorstResumeTime(35) {
			t.Fatalf("ResumeTime(%d) = %d exceeds WorstResumeTime(35) = %d",
				d, cp.ResumeTime(d), cp.WorstResumeTime(35))
		}
	}
	if got := cp.WorstResumeTime(6); got != 6 {
		t.Errorf("WorstResumeTime(6) = %d, want 6 (shorter than a full segment)", got)
	}
	if got := cp.WorstResumeTime(35); got != 10 {
		t.Errorf("WorstResumeTime(35) = %d, want the full segment 10", got)
	}
	if !strings.Contains(cp.String(), "spacing=10") {
		t.Errorf("String() = %q", cp.String())
	}
}

func TestApplicationWithRecovery(t *testing.T) {
	a, ids := fig1App(t)
	if a.HasRecovery() || !a.Recovery().IsCanonical() {
		t.Fatal("fresh application is not canonical")
	}
	cp := CheckpointModel(40, 3, 7)
	b, err := a.WithRecovery(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !b.HasRecovery() || b.Recovery() != cp {
		t.Fatalf("Recovery() = %v, want %v", b.Recovery(), cp)
	}
	if a.HasRecovery() {
		t.Fatal("WithRecovery mutated the receiver")
	}
	if _, err := a.WithRecovery(CheckpointModel(0, 0, 0)); err == nil {
		t.Fatal("invalid model accepted")
	}
	// WithFaults preserves the model.
	c, err := b.WithFaults(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovery() != cp {
		t.Fatalf("WithFaults dropped the recovery model: %v", c.Recovery())
	}

	// Per-fault overheads and worst-case recovery items, per model. Fig. 1:
	// µ=10, P1 WCET 70.
	p1 := ids[0]
	if got := a.RecoveryOverhead(p1); got != 10 {
		t.Errorf("canonical RecoveryOverhead = %d, want µ=10", got)
	}
	if got := a.WorstRecoveryCost(p1); got != 80 {
		t.Errorf("canonical WorstRecoveryCost = %d, want 70+10", got)
	}
	rs, err := a.WithRecovery(RestartModel(25))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.RecoveryOverhead(p1); got != 25 {
		t.Errorf("restart RecoveryOverhead = %d, want 25", got)
	}
	if got := rs.WorstRecoveryCost(p1); got != 95 {
		t.Errorf("restart WorstRecoveryCost = %d, want 70+25", got)
	}
	if got := b.RecoveryOverhead(p1); got != 7 {
		t.Errorf("checkpoint RecoveryOverhead = %d, want rollback 7", got)
	}
	// Worst resume within WCET 70 under spacing 40 is one full segment.
	if got := b.WorstRecoveryCost(p1); got != 47 {
		t.Errorf("checkpoint WorstRecoveryCost = %d, want min(40,70)+7", got)
	}
}

func TestMuExplicitZero(t *testing.T) {
	a := NewApplication("mu0", 100, 1, 15)
	p1 := a.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 50})
	p2 := a.AddProcess(Process{Name: "B", Kind: Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 60, Mu: 0, MuExplicit: true})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.MuOf(p1); got != 15 {
		t.Errorf("MuOf(A) = %d, want the application default 15", got)
	}
	if got := a.MuOf(p2); got != 0 {
		t.Errorf("MuOf(B) = %d, want the explicit 0", got)
	}

	// A negative µ yields the typed diagnostic carrying the explicit flag.
	bad := NewApplication("mu-", 100, 1, 15)
	bad.AddProcess(Process{Name: "A", Kind: Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 50, Mu: -4, MuExplicit: true})
	err := bad.Validate()
	var merr *ProcessMuError
	if !errors.As(err, &merr) {
		t.Fatalf("Validate() = %v, want *ProcessMuError", err)
	}
	if merr.Process != "A" || merr.Mu != -4 || !merr.Explicit {
		t.Fatalf("ProcessMuError = %+v", merr)
	}
}
