// Package report renders monochrome ASCII charts for terminal output. The
// experiment harness prints them next to (never instead of) the numeric
// tables: identity is carried by fixed per-series glyphs rather than
// colour, every chart has a single y axis, a legend names the series, and
// the grid stays recessive.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of a chart. Glyphs are assigned by position in the
// chart's Series slice, in a fixed order — never reshuffled when a series
// is removed.
type Series struct {
	Name string
	Y    []float64
}

// MaxSeries bounds the series count: beyond four, glyph identity stops
// being readable — fold extra series into another chart.
const MaxSeries = 4

// glyphs is the fixed series-identity order (the monochrome analogue of a
// categorical palette; at most four series are direct-labelled).
var glyphs = [MaxSeries]byte{'o', '*', '+', 'x'}

// LineChart plots series over a shared ordinal x axis.
type LineChart struct {
	// Title names the chart (and, for a single series, the series: no
	// legend box is printed then).
	Title string
	// XLabels label the ordinal x positions (e.g. application sizes).
	XLabels []string
	// YLabel names the y axis.
	YLabel string
	// Series are the lines, at most MaxSeries, each with len(XLabels)
	// values. NaN values are skipped (gaps).
	Series []Series
	// Width and Height size the plot area in characters; zero selects
	// 60×12.
	Width, Height int
}

// Render draws the chart.
func (c *LineChart) Render() (string, error) {
	if len(c.Series) == 0 || len(c.Series) > MaxSeries {
		return "", fmt.Errorf("report: need 1..%d series (got %d)", MaxSeries, len(c.Series))
	}
	nx := len(c.XLabels)
	if nx == 0 {
		return "", fmt.Errorf("report: no x positions")
	}
	for _, s := range c.Series {
		if len(s.Y) != nx {
			return "", fmt.Errorf("report: series %q has %d values for %d x positions", s.Name, len(s.Y), nx)
		}
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 12
	}

	// y range over all finite values, padded slightly.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi {
		return "", fmt.Errorf("report: no finite values")
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	span := hi - lo
	lo -= 0.05 * span
	hi += 0.05 * span
	span = hi - lo

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(i int) int {
		if nx == 1 {
			return w / 2
		}
		return i * (w - 1) / (nx - 1)
	}
	row := func(v float64) int {
		r := int(math.Round((hi - v) / span * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	// Recessive grid: tick columns only.
	for i := 0; i < nx; i++ {
		x := col(i)
		for r := 0; r < h; r++ {
			grid[r][x] = '.'
		}
	}
	for si, s := range c.Series {
		g := glyphs[si]
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			grid[row(v)][col(i)] = g
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	if len(c.Series) > 1 {
		sb.WriteString("  legend:")
		for si, s := range c.Series {
			fmt.Fprintf(&sb, "  %c %s", glyphs[si], s.Name)
		}
		sb.WriteByte('\n')
	}
	yw := 8
	for r := 0; r < h; r++ {
		label := ""
		switch r {
		case 0:
			label = trimNum(hi)
		case h - 1:
			label = trimNum(lo)
		case (h - 1) / 2:
			label = trimNum((hi + lo) / 2)
		}
		fmt.Fprintf(&sb, "%*s |%s\n", yw, label, string(grid[r]))
	}
	// x labels: first, middle, last to keep the axis recessive.
	axis := []byte(strings.Repeat(" ", w))
	place := func(i int) {
		lbl := c.XLabels[i]
		x := col(i) - len(lbl)/2
		if x < 0 {
			x = 0
		}
		if x+len(lbl) > w {
			x = w - len(lbl)
		}
		copy(axis[x:], lbl)
	}
	place(0)
	if nx > 2 {
		place(nx / 2)
	}
	if nx > 1 {
		place(nx - 1)
	}
	fmt.Fprintf(&sb, "%*s +%s\n", yw, "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%*s  %s\n", yw, "", string(axis))
	if c.YLabel != "" {
		fmt.Fprintf(&sb, "%*s  (y: %s)\n", yw, "", c.YLabel)
	}
	return sb.String(), nil
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}
