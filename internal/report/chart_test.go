package report

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	c := &LineChart{
		Title:   "demo",
		XLabels: []string{"10", "20", "30"},
		YLabel:  "utility %",
		Series: []Series{
			{Name: "FTQS", Y: []float64{100, 100, 100}},
			{Name: "FTSS", Y: []float64{85, 88, 90}},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "legend:", "o FTQS", "* FTSS", "(y: utility %)", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Highest value appears on an earlier line than the lowest.
	oIdx := strings.Index(out, "o")
	sIdx := strings.Index(out, "*")
	if oIdx > sIdx {
		t.Errorf("series order inverted on the y axis:\n%s", out)
	}
}

func TestLineChartSingleSeriesNoLegend(t *testing.T) {
	c := &LineChart{
		Title:   "one",
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "X", Y: []float64{1, 2}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "legend") {
		t.Error("single series must not print a legend box")
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := (&LineChart{XLabels: []string{"a"}}).Render(); err == nil {
		t.Error("no series accepted")
	}
	too := make([]Series, MaxSeries+1)
	for i := range too {
		too[i] = Series{Name: "s", Y: []float64{1}}
	}
	if _, err := (&LineChart{XLabels: []string{"a"}, Series: too}).Render(); err == nil {
		t.Error("too many series accepted")
	}
	if _, err := (&LineChart{Series: []Series{{Y: nil}}}).Render(); err == nil {
		t.Error("no x positions accepted")
	}
	if _, err := (&LineChart{XLabels: []string{"a", "b"}, Series: []Series{{Y: []float64{1}}}}).Render(); err == nil {
		t.Error("length mismatch accepted")
	}
	nan := []Series{{Name: "n", Y: []float64{math.NaN(), math.NaN()}}}
	if _, err := (&LineChart{XLabels: []string{"a", "b"}, Series: nan}).Render(); err == nil {
		t.Error("all-NaN series accepted")
	}
}

func TestLineChartGapsAndFlat(t *testing.T) {
	c := &LineChart{
		XLabels: []string{"a", "b", "c"},
		Series:  []Series{{Name: "s", Y: []float64{5, math.NaN(), 5}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "o") != 2 {
		t.Errorf("expected two plotted points:\n%s", out)
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	c := &LineChart{XLabels: []string{"only"}, Series: []Series{{Name: "s", Y: []float64{3}}}}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "only") {
		t.Errorf("single-point chart broken:\n%s", out)
	}
}
