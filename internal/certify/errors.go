package certify

import (
	"fmt"

	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// Counterexample is one concrete execution that misses a hard deadline:
// the full scenario to replay, the violated process and deadline, the
// utility realised, and the tree path the dispatcher took.
type Counterexample struct {
	// Scenario is the exact input that produced the violation.
	Scenario runtime.Scenario
	// Proc is the violated hard process; Deadline its bound; Completion
	// the observed completion time (0 when the process never ran).
	Proc       model.ProcessID
	Deadline   model.Time
	Completion model.Time
	// Path is the sequence of tree node IDs visited, starting at the
	// root (0); each further element is a switch target in order.
	Path []int
	// Utility is the total utility of the violating cycle.
	Utility float64
	// PatternIndex and ScenarioIndex locate the scenario in the
	// deterministic enumeration order, for reproducibility notes.
	PatternIndex, ScenarioIndex int
}

// CounterexampleError is returned by Certify when an explored execution
// misses a hard deadline. It is a certification verdict, not an engine
// failure: the report alongside it is still valid for what was explored.
type CounterexampleError struct {
	Counterexample Counterexample
}

// Error implements error.
func (e *CounterexampleError) Error() string {
	ce := &e.Counterexample
	return fmt.Sprintf(
		"certify: counterexample with %d fault(s): process %d misses deadline %d (completion %d) [pattern %d, scenario %d]",
		ce.Scenario.NFaults, ce.Proc, ce.Deadline, ce.Completion, ce.PatternIndex, ce.ScenarioIndex)
}
