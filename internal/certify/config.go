package certify

import (
	"fmt"
	goruntime "runtime"
)

// ConfigError reports a Config field that fails validation, carrying the
// field name and the rejected value so CLIs, the library facade and the
// ftserved wire decoder can react to the specific field instead of parsing
// a message — the same discipline as sim.ConfigError.
type ConfigError struct {
	// Field is the Config field name ("MaxFaults", "Workers", "Budget").
	Field string
	// Value is the rejected value.
	Value int64
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("certify: Config.%s must be non-negative (got %d)", e.Field, e.Value)
}

// Validate normalises the configuration and rejects impossible values with
// a *ConfigError: negative MaxFaults, Workers or Budget. Zero values keep
// their documented defaults (MaxFaults 0 = the application bound k,
// resolved by the engine; Workers 0 = GOMAXPROCS; Budget 0 = ~2M
// scenarios; MaxBoundaries 0 = 4, negative = bisection disabled). The
// fault upper bound depends on the application and is checked by Certify
// itself. Every certification entry point applies Validate — library,
// CLI and ftserved request decoding reject bad input identically.
func (c Config) Validate() (Config, error) {
	if c.MaxFaults < 0 {
		return c, &ConfigError{Field: "MaxFaults", Value: int64(c.MaxFaults)}
	}
	if c.Workers < 0 {
		return c, &ConfigError{Field: "Workers", Value: int64(c.Workers)}
	}
	if c.Workers == 0 {
		c.Workers = goruntime.GOMAXPROCS(0)
	}
	if c.Budget < 0 {
		return c, &ConfigError{Field: "Budget", Value: c.Budget}
	}
	if c.Budget == 0 {
		c.Budget = defaultBudget
	}
	if c.MaxBoundaries == 0 {
		c.MaxBoundaries = defaultMaxBoundaries
	}
	return c, nil
}
