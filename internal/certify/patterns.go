package certify

import (
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// pattern is one canonical fault placement: counts[p] faults aimed at
// process p's first execution attempts, total faults.
type pattern struct {
	counts []int
	total  int
}

// patternKey is the comparable canonical form of a capped pattern,
// mirroring the bitset canonicalisation of the synthesis memoisation
// (core.suffixKey): level t holds the set of processes hit by at least t
// faults. Two inline ProcKeys cover every k <= 2 configuration (all the
// paper's); deeper levels spill into a byte string, which stays correct
// and comparable for any k.
type patternKey struct {
	l1, l2 model.ProcKey
	rest   string
}

// keyOf snapshots capped counts into a patternKey. scratch must be an
// empty ProcSet sized for the application; it is clobbered.
func keyOf(counts []int, maxCount int, scratch model.ProcSet) patternKey {
	var k patternKey
	var rest []byte
	for level := 1; level <= maxCount; level++ {
		scratch.Clear()
		any := false
		for p, c := range counts {
			if c >= level {
				scratch.Add(model.ProcessID(p))
				any = true
			}
		}
		if !any {
			break
		}
		switch level {
		case 1:
			k.l1 = scratch.Key()
		case 2:
			k.l2 = scratch.Key()
		default:
			for _, w := range scratch {
				for i := 0; i < 8; i++ {
					rest = append(rest, byte(w>>(8*uint(i))))
				}
			}
		}
	}
	k.rest = string(rest)
	return k
}

// maxAttempts computes, per process, the most execution attempts any node
// of the tree grants it (1 + its largest recovery budget). Faults beyond
// this bound never materialise, which is exactly the symmetry the pattern
// canonicalisation collapses.
func maxAttempts(tree *core.Tree) []int {
	att := make([]int, tree.App.N())
	for i := range tree.Nodes {
		sched := tree.Nodes[i].Schedule
		if sched == nil {
			continue
		}
		for _, e := range sched.Entries {
			if a := 1 + e.Recoveries; a > att[e.Proc] {
				att[e.Proc] = a
			}
		}
	}
	return att
}

// enumeratePatterns generates every canonical fault multiset over the
// candidate victims with sizes 0..maxFaults, capping per-victim counts at
// the attempt bound and deduplicating on the bitset key. It returns the
// surviving patterns in deterministic enumeration order and the number of
// raw patterns pruned as equivalent.
func enumeratePatterns(n int, candidates []model.ProcessID, maxFaults int, attempts []int) (patterns []pattern, pruned int) {
	seen := make(map[patternKey]bool)
	scratch := model.NewProcSet(n)
	counts := make([]int, n)
	// Multisets are generated as non-decreasing victim sequences, so each
	// raw multiset appears exactly once.
	var rec func(start, left int)
	rec = func(start, left int) {
		if left == 0 {
			capped := make([]int, n)
			total := 0
			for p, c := range counts {
				if c > attempts[p] {
					c = attempts[p]
				}
				capped[p] = c
				total += c
			}
			k := keyOf(capped, maxFaults, scratch)
			if seen[k] {
				pruned++
				return
			}
			seen[k] = true
			patterns = append(patterns, pattern{counts: capped, total: total})
			return
		}
		for ci := start; ci < len(candidates); ci++ {
			counts[candidates[ci]]++
			rec(ci, left-1)
			counts[candidates[ci]]--
		}
	}
	for size := 0; size <= maxFaults; size++ {
		rec(0, size)
	}
	return patterns, pruned
}

// rootCandidates returns the distinct processes of the root f-schedule in
// schedule order — the only processes a fault can hit before the first
// switch, and (because every node shares the root's prefix reachability)
// the victim universe certification needs to cover.
func rootCandidates(tree *core.Tree) []model.ProcessID {
	entries := tree.Root().Schedule.Entries
	seen := make(map[model.ProcessID]bool, len(entries))
	out := make([]model.ProcessID, 0, len(entries))
	for _, e := range entries {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			out = append(out, e.Proc)
		}
	}
	return out
}
