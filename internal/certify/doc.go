// Package certify exhaustively certifies a quasi-static tree against the
// real online dispatcher: it enumerates every fault pattern with up to k
// transient faults, crosses each pattern with extreme execution-time
// corners, executes every resulting scenario through runtime.Dispatcher —
// the deployed interpreter, not a re-implementation — and either reports
// that no explored execution misses a hard deadline or returns a typed
// *CounterexampleError carrying the offending scenario, ready for replay
// with ftsim -replay.
//
// # What is enumerated
//
// Fault patterns are multisets of victim processes (the processes of the
// root f-schedule) of size 0..MaxFaults. Faults beyond a victim's maximum
// re-execution attempts can never materialise — a process abandoned after
// its last recovery never runs again — so patterns are canonicalised by
// capping each victim's count at its attempt bound and deduplicated on a
// bitset key (the same ProcKey snapshots the synthesis memoisation uses);
// the pruned count is reported and counted on obs.CertifyPatternsPruned.
//
// Execution-time corners per process are its BCET and WCET plus
// deadline-adjacent boundary times: per-process bisection (all other
// processes pinned at WCET, no faults) locates the durations where the
// dispatcher's discrete behaviour — final node, switch count, completions,
// violations — changes, and both sides of each change point become
// corners. Guard thresholds and deadline boundaries are step functions of
// the durations, so these are exactly the interesting times between the
// two extremes.
//
// # Modes
//
// When patterns x (product of per-process corner counts) fits the
// configured Budget, every combination runs ("exhaustive" mode — the
// paper-sized applications land here). Otherwise the engine degrades,
// explicitly, to "frontier" mode: for every pattern it runs the all-BCET
// and all-WCET profiles plus every single-process corner deviation against
// both backgrounds. The report says which mode ran; there is no silent
// truncation.
//
// # Determinism
//
// Patterns are distributed over a worker pool with the same strided
// assignment the Monte-Carlo evaluator uses; per-pattern exploration is
// sequential and outcomes are folded in pattern order, so the report — and
// the counterexample, chosen as the lowest (pattern, scenario) index — is
// identical for any worker count.
package certify
