package certify

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// BenchmarkCertify measures a full certification pass over each fixture:
// pattern enumeration, corner bisection and the complete scenario sweep
// through the compiled dispatcher. Fig1/Fig8 run exhaustive mode, the
// cruise controller the frontier degradation.
func BenchmarkCertify(b *testing.B) {
	for _, tc := range []struct {
		name string
		app  *model.Application
		m    int
	}{
		{"Fig1", apps.Fig1(), 12},
		{"Fig8", apps.Fig8(), 16},
		{"CruiseController", apps.CruiseController(), 39},
	} {
		tree, err := core.FTQS(tc.app, core.FTQSOptions{M: tc.m})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := Certify(tree, Config{})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Scenarios == 0 {
					b.Fatal("empty certification")
				}
			}
		})
	}
}
