package certify

import (
	"context"
	"sort"

	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// pathSig is the discrete behaviour signature bisection compares: two
// durations with equal signatures drove the dispatcher through the same
// switching decisions with the same outcome counts, so no guard or
// deadline boundary lies strictly between them (as observed at this probe
// resolution).
type pathSig struct {
	finalNode  int
	switches   int
	violations int
	completed  int
}

func sigOf(res *runtime.Result) pathSig {
	s := pathSig{
		finalNode:  res.FinalNode,
		switches:   res.Switches,
		violations: len(res.HardViolations),
	}
	for _, o := range res.Outcomes {
		if o == runtime.Completed {
			s.completed++
		}
	}
	return s
}

// prober runs zero-fault probe scenarios for corner bisection, reusing one
// scenario and result buffer.
type prober struct {
	d    *runtime.Dispatcher
	sc   runtime.Scenario
	res  runtime.Result
	runs int64
}

func newProber(d *runtime.Dispatcher, n int) *prober {
	p := &prober{d: d}
	p.sc.Durations = make([]model.Time, n)
	p.sc.FaultsAt = make([]int, n)
	return p
}

// probe executes one zero-fault scenario with process p at duration t and
// every other process at WCET, and returns the signature.
func (pr *prober) probe(app *model.Application, p int, t model.Time) (pathSig, error) {
	for id := 0; id < len(pr.sc.Durations); id++ {
		pr.sc.Durations[id] = app.Proc(model.ProcessID(id)).WCET
	}
	pr.sc.Durations[p] = t
	if err := pr.d.RunInto(&pr.res, pr.sc); err != nil {
		return pathSig{}, err
	}
	pr.runs++
	return sigOf(&pr.res), nil
}

// cornerSets builds the per-process execution-time corner lists: BCET and
// WCET always, plus both sides of every behaviour change point bisection
// finds (up to maxBoundaries change points per process). Lists are sorted
// ascending and deduplicated; enumeration order is deterministic.
func cornerSets(ctx context.Context, d *runtime.Dispatcher, app *model.Application, maxBoundaries int) ([][]model.Time, int64, error) {
	n := app.N()
	corners := make([][]model.Time, n)
	pr := newProber(d, n)
	rec := app.Recovery()
	for p := 0; p < n; p++ {
		if err := ctx.Err(); err != nil {
			return nil, pr.runs, err
		}
		proc := app.Proc(model.ProcessID(p))
		set := []model.Time{proc.BCET, proc.WCET}
		if maxBoundaries > 0 && proc.WCET > proc.BCET {
			sLo, err := pr.probe(app, p, proc.BCET)
			if err != nil {
				return nil, pr.runs, err
			}
			sHi, err := pr.probe(app, p, proc.WCET)
			if err != nil {
				return nil, pr.runs, err
			}
			found := 0
			var rec func(lo, hi model.Time, a, b pathSig) error
			rec = func(lo, hi model.Time, a, b pathSig) error {
				if a == b || found >= maxBoundaries {
					return nil
				}
				if hi-lo == 1 {
					// A change point between adjacent durations: both
					// sides are corners.
					set = append(set, lo, hi)
					found++
					return nil
				}
				mid := lo + (hi-lo)/2
				sMid, err := pr.probe(app, p, mid)
				if err != nil {
					return err
				}
				if err := rec(lo, mid, a, sMid); err != nil {
					return err
				}
				return rec(mid, hi, sMid, b)
			}
			if err := rec(proc.BCET, proc.WCET, sLo, sHi); err != nil {
				return nil, pr.runs, err
			}
		}
		// A checkpointing recovery model makes the fault path a sawtooth in
		// the sampled duration: the final (re-run) segment resets at every
		// multiple of Spacing — worst at the multiple itself, shortest just
		// past it — and the attempt pays one more overhead. The zero-fault
		// probes above cannot observe that boundary (it only matters when a
		// fault hits), so both sides of the largest segment boundaries
		// strictly inside (BCET, WCET) are added as corners unconditionally,
		// under the same per-process cap as bisection.
		if rec.Kind == model.RecoverCheckpoint && maxBoundaries > 0 {
			s := rec.Spacing
			added := 0
			for m := (proc.WCET - 1) / s; m >= 1 && added < maxBoundaries; m-- {
				b := m * s
				if b <= proc.BCET {
					break
				}
				if b >= proc.WCET {
					continue
				}
				set = append(set, b, b+1)
				added++
			}
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		uniq := set[:0]
		for i, t := range set {
			if i == 0 || t != uniq[len(uniq)-1] {
				uniq = append(uniq, t)
			}
		}
		corners[p] = uniq
	}
	return corners, pr.runs, nil
}
