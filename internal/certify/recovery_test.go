package certify

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
)

// recoveryStudy pairs each fixture with per-app restart and checkpoint
// models that keep it schedulable (restart latency µ matches the canonical
// worst case exactly; checkpoint spacing covers half the longest WCET).
func recoveryStudy(t testing.TB, app *model.Application) []*model.Application {
	t.Helper()
	var maxW model.Time
	for _, id := range app.Topo() {
		if w := app.Proc(id).WCET; w > maxW {
			maxW = w
		}
	}
	spacing := maxW/2 + 1
	overhead := app.Mu() / 2
	if overhead >= spacing {
		overhead = spacing - 1
	}
	out := []*model.Application{app}
	for _, m := range []model.RecoveryModel{
		model.RestartModel(app.Mu()),
		model.CheckpointModel(spacing, overhead, app.Mu()),
	} {
		withRec, err := app.WithRecovery(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, withRec)
	}
	return out
}

// TestCertifyRecoveryModelsClean: Fig. 1 and Fig. 8 trees synthesised under
// each recovery model certify counterexample-free at the full fault bound,
// and the reports stay bit-identical across worker counts.
func TestCertifyRecoveryModelsClean(t *testing.T) {
	for _, base := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 12},
		{apps.Fig8(), 16},
	} {
		for _, app := range recoveryStudy(t, base.app) {
			tree := synthesize(t, app, base.m)
			var want Report
			for i, workers := range []int{1, 4} {
				rep, err := Certify(tree, Config{Workers: workers})
				if err != nil {
					t.Fatalf("%s under %v: %v", app.Name(), app.Recovery(), err)
				}
				if rep.Scenarios == 0 || rep.Patterns == 0 {
					t.Fatalf("%s under %v: empty exploration %+v", app.Name(), app.Recovery(), rep)
				}
				if rep.WorstSlack < 0 {
					t.Errorf("%s under %v: negative worst slack %d", app.Name(), app.Recovery(), rep.WorstSlack)
				}
				if i == 0 {
					want = rep
					continue
				}
				if !reflect.DeepEqual(rep, want) {
					t.Errorf("%s under %v: report diverged across workers:\n%+v\n%+v",
						app.Name(), app.Recovery(), rep, want)
				}
			}
		}
	}
}

// TestCertifyCheckpointUnsafe: the probe must CATCH a checkpoint model whose
// rollback makes the tree unsafe — the counterexample replays to the same
// violation (the "replayable CE" half of the contract).
func TestCertifyCheckpointUnsafe(t *testing.T) {
	// One hard process, WCET 30, k=2, deadline 60: checkpoint(10,2,3) is
	// schedulable exactly at the deadline (34 + 2×13 = 60), so rollback 4
	// overshoots by 2 — but only on the two-fault path.
	a := model.NewApplication("cp-unsafe", 1000, 2, 5)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 10, AET: 25, WCET: 30, Deadline: 60})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	app, err := a.WithRecovery(model.CheckpointModel(10, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	tree := &core.Tree{
		App: app,
		Nodes: []core.Node{{
			Schedule:       &schedule.FSchedule{Entries: []schedule.Entry{{Proc: p1, Recoveries: 2}}},
			Parent:         core.NoNode,
			DroppedOnFault: model.NoProcess,
		}},
	}
	rep, err := Certify(tree, Config{})
	if err == nil {
		t.Fatalf("unsafe checkpoint tree certified clean: %+v", rep)
	}
	var ceErr *CounterexampleError
	if !errors.As(err, &ceErr) {
		t.Fatalf("certification failed without a counterexample: %v", err)
	}
	ce := &ceErr.Counterexample
	if ce.Scenario.NFaults != 2 {
		t.Errorf("counterexample uses %d faults, want the 2-fault path", ce.Scenario.NFaults)
	}
	// The counterexample replays to the same hard violation.
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(ce.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HardViolations) == 0 || res.HardViolations[0] != ce.Proc {
		t.Errorf("replay violations %v, want leading %d", res.HardViolations, ce.Proc)
	}
}

// TestCheckpointCornerSet: the corner generator must place probes on both
// sides of every checkpoint-spacing multiple strictly inside (BCET, WCET) —
// the sawtooth in the fault-path resume time is invisible to pure
// bisection.
func TestCheckpointCornerSet(t *testing.T) {
	a := model.NewApplication("corners", 1000, 1, 5)
	a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 12, AET: 30, WCET: 45, Deadline: 900})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	app, err := a.WithRecovery(model.CheckpointModel(10, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	tree := &core.Tree{
		App: app,
		Nodes: []core.Node{{
			Schedule:       &schedule.FSchedule{Entries: []schedule.Entry{{Proc: 0, Recoveries: 1}}},
			Parent:         core.NoNode,
			DroppedOnFault: model.NoProcess,
		}},
	}
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	sets, _, err := cornerSets(context.Background(), d, app, defaultMaxBoundaries)
	if err != nil {
		t.Fatal(err)
	}
	got := sets[0]
	// Spacing multiples inside (12, 45): 20, 30, 40 — each contributes both
	// b and b+1.
	for _, want := range []model.Time{20, 21, 30, 31, 40, 41} {
		i := sort.Search(len(got), func(i int) bool { return got[i] >= want })
		if i >= len(got) || got[i] != want {
			t.Errorf("corner set %v lacks the checkpoint boundary %d", got, want)
		}
	}
	// Still sorted, deduplicated and inside [BCET, WCET].
	for i := range got {
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("corner set not strictly increasing: %v", got)
		}
		if got[i] < 12 || got[i] > 45 {
			t.Fatalf("corner %d outside [BCET, WCET]: %v", got[i], got)
		}
	}
}
