package certify

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// Default engine limits.
const (
	// defaultBudget bounds the number of scenarios exhaustive mode may
	// enumerate before the engine degrades, explicitly, to frontier mode.
	defaultBudget = int64(1) << 21
	// defaultMaxBoundaries caps the behaviour change points bisection
	// collects per process.
	defaultMaxBoundaries = 4
)

// Config parameterises a certification run. The zero value asks for the
// full fault bound, one worker per CPU, and the default scenario budget.
type Config struct {
	// MaxFaults is the largest fault-pattern size explored; 0 means the
	// application bound k. Values above k are rejected.
	MaxFaults int
	// Workers is the worker-pool size; 0 means GOMAXPROCS. The report and
	// any counterexample are identical for every worker count.
	Workers int
	// Budget caps the scenarios exhaustive mode may plan; above it the
	// engine switches to frontier mode (never silently truncates). 0 means
	// the default (~2M).
	Budget int64
	// MaxBoundaries caps the bisection change points collected per
	// process; 0 means the default (4), negative disables bisection.
	MaxBoundaries int
	// Sink receives certification counters and histograms, and is routed
	// into the dispatcher the scenarios execute on.
	Sink obs.Sink
}

// Report summarises what a certification run explored, whether it ended in
// a certificate or a counterexample.
type Report struct {
	// Mode is "exhaustive" (every pattern x corner combination ran) or
	// "frontier" (extreme profiles plus single-process deviations).
	Mode string
	// MaxFaults is the resolved fault bound that was certified.
	MaxFaults int
	// Patterns counts canonical fault patterns explored; PatternsPruned
	// counts raw patterns collapsed into them by canonicalisation.
	Patterns       int
	PatternsPruned int
	// Scenarios counts dispatcher executions performed (excluding the
	// bisection probes, reported separately as BisectionRuns).
	Scenarios     int64
	BisectionRuns int64
	// WorstSlack is the minimum hard-deadline slack observed over every
	// explored scenario, and WorstSlackProc the process realising it;
	// WorstSlackProc is model.NoProcess when no hard process completed.
	// Slack at or below zero comes with a counterexample.
	WorstSlack     model.Time
	WorstSlackProc model.ProcessID
	// MinUtility is the lowest cycle utility observed and
	// MinUtilityFaultsAt the fault placement (per-process counts) that
	// produced it — the utility-minimising adversary within the explored
	// set.
	MinUtility         float64
	MinUtilityFaultsAt []int
}

// patternOutcome is one worker's summary of one fault pattern, folded
// sequentially (in pattern order) after the pool drains so the result is
// independent of worker count.
type patternOutcome struct {
	scenarios  int64
	haveSlack  bool
	worstSlack model.Time
	worstProc  model.ProcessID
	minUtility float64
	ce         *Counterexample // lowest-scenario-index violation, if any
}

// Certify certifies tree against up to cfg.MaxFaults transient faults by
// exhaustive adversarial execution through the compiled dispatcher. It
// returns a *CounterexampleError if any explored scenario misses a hard
// deadline — the Report is still valid for what was explored — and a
// *runtime.MalformedTreeError if the tree does not compile.
func Certify(tree *core.Tree, cfg Config) (Report, error) {
	return CertifyContext(context.Background(), tree, cfg)
}

// CertifyContext is Certify with cancellation: the context is checked
// before every scenario and the context error is returned on cancellation.
func CertifyContext(ctx context.Context, tree *core.Tree, cfg Config) (Report, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return Report{}, err
	}
	d, err := runtime.NewDispatcher(tree, runtime.WithSink(cfg.Sink))
	if err != nil {
		return Report{}, err
	}
	app := tree.App
	n := app.N()

	maxFaults := cfg.MaxFaults
	if maxFaults == 0 {
		maxFaults = app.K()
	}
	if maxFaults > app.K() {
		return Report{}, fmt.Errorf("certify: MaxFaults %d outside [0, k=%d]", cfg.MaxFaults, app.K())
	}
	workers := cfg.Workers
	budget := cfg.Budget
	maxBoundaries := cfg.MaxBoundaries
	var sink obs.Sink
	if obs.Live(cfg.Sink) {
		sink = cfg.Sink
	}

	corners, bisRuns, err := cornerSets(ctx, d, app, maxBoundaries)
	if err != nil {
		return Report{}, err
	}
	if sink != nil {
		sink.Add(obs.CertifyBisectionRuns, bisRuns)
	}

	patterns, pruned := enumeratePatterns(n, rootCandidates(tree), maxFaults, maxAttempts(tree))

	// Mode decision: exhaustive iff patterns x (product of corner counts)
	// fits the budget, computed overflow-safely.
	combos := int64(len(patterns))
	exhaustive := combos > 0
	for _, cs := range corners {
		if combos > budget {
			exhaustive = false
			break
		}
		combos *= int64(len(cs))
	}
	if combos > budget {
		exhaustive = false
	}
	mode := "exhaustive"
	if !exhaustive {
		mode = "frontier"
	}

	outcomes := make([]patternOutcome, len(patterns))
	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		workerErr error
	)
	fail := func(err error) { errOnce.Do(func() { workerErr = err }) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := newExplorer(d, app, corners, exhaustive)
			for pi := w; pi < len(patterns); pi += workers {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := ex.explore(ctx, &patterns[pi], &outcomes[pi]); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if workerErr != nil {
		return Report{}, workerErr
	}

	// Sequential fold in pattern order: worker count cannot change the
	// report or the counterexample choice.
	rep := Report{
		Mode:           mode,
		MaxFaults:      maxFaults,
		Patterns:       len(patterns),
		PatternsPruned: pruned,
		BisectionRuns:  bisRuns,
		WorstSlackProc: model.NoProcess,
		MinUtility:     math.Inf(1),
	}
	var ce *Counterexample
	cePattern := -1
	for pi := range outcomes {
		o := &outcomes[pi]
		rep.Scenarios += o.scenarios
		if o.haveSlack {
			if rep.WorstSlackProc == model.NoProcess || o.worstSlack < rep.WorstSlack {
				rep.WorstSlack = o.worstSlack
				rep.WorstSlackProc = o.worstProc
			}
			if sink != nil {
				sink.Observe(obs.CertifyWorstSlack, int64(o.worstSlack))
			}
		}
		if o.scenarios > 0 && o.minUtility < rep.MinUtility {
			rep.MinUtility = o.minUtility
			rep.MinUtilityFaultsAt = append(rep.MinUtilityFaultsAt[:0], patterns[pi].counts...)
		}
		if ce == nil && o.ce != nil {
			ce = o.ce
			cePattern = pi
		}
	}
	if sink != nil {
		sink.Add(obs.CertifyPatterns, int64(len(patterns)))
		sink.Add(obs.CertifyPatternsPruned, int64(pruned))
		sink.Add(obs.CertifyScenarios, rep.Scenarios)
	}
	if math.IsInf(rep.MinUtility, 1) {
		rep.MinUtility = 0
	}

	if ce != nil {
		ce.PatternIndex = cePattern
		// One trace re-run recovers the tree path the dispatcher took.
		_, events, err := d.RunTrace(ce.Scenario)
		if err != nil {
			return rep, err
		}
		ce.Path = []int{0}
		for _, ev := range events {
			if ev.Kind == runtime.TraceSwitch {
				ce.Path = append(ce.Path, ev.Node)
			}
		}
		return rep, &CounterexampleError{Counterexample: *ce}
	}
	return rep, nil
}

// explorer is one worker's reusable scenario state.
type explorer struct {
	d          *runtime.Dispatcher
	app        *model.Application
	corners    [][]model.Time
	exhaustive bool
	sc         runtime.Scenario
	res        runtime.Result
	idx        []int
	hardIDs    []model.ProcessID
}

func newExplorer(d *runtime.Dispatcher, app *model.Application, corners [][]model.Time, exhaustive bool) *explorer {
	n := app.N()
	return &explorer{
		d:          d,
		app:        app,
		corners:    corners,
		exhaustive: exhaustive,
		sc:         runtime.Scenario{Durations: make([]model.Time, n)},
		idx:        make([]int, n),
		hardIDs:    app.HardIDs(),
	}
}

// explore runs every scenario of one fault pattern and summarises it into
// out. The scenario enumeration order is deterministic, so out.ce (the
// lowest-index violation) is too.
func (ex *explorer) explore(ctx context.Context, pat *pattern, out *patternOutcome) error {
	// FaultsAt is read-only to the dispatcher, so the pattern's counts are
	// shared, not copied.
	ex.sc.FaultsAt = pat.counts
	ex.sc.NFaults = pat.total
	out.minUtility = math.Inf(1)
	out.worstProc = model.NoProcess
	if ex.exhaustive {
		return ex.exploreExhaustive(ctx, out)
	}
	return ex.exploreFrontier(ctx, out)
}

// runOne executes the currently-loaded scenario and folds it into out.
func (ex *explorer) runOne(ctx context.Context, out *patternOutcome) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	scenarioIdx := int(out.scenarios)
	if err := ex.d.RunInto(&ex.res, ex.sc); err != nil {
		return err
	}
	out.scenarios++
	for _, h := range ex.hardIDs {
		if ex.res.Outcomes[h] != runtime.Completed {
			continue
		}
		slack := ex.app.Proc(h).Deadline - ex.res.CompletionTimes[h]
		if !out.haveSlack || slack < out.worstSlack {
			out.haveSlack = true
			out.worstSlack = slack
			out.worstProc = h
		}
	}
	if ex.res.Utility < out.minUtility {
		out.minUtility = ex.res.Utility
	}
	if len(ex.res.HardViolations) > 0 && out.ce == nil {
		proc := ex.res.HardViolations[0]
		var completion model.Time
		if ex.res.Outcomes[proc] == runtime.Completed {
			completion = ex.res.CompletionTimes[proc]
		}
		sc := runtime.Scenario{
			Durations: append([]model.Time(nil), ex.sc.Durations...),
			FaultsAt:  append([]int(nil), ex.sc.FaultsAt...),
			NFaults:   ex.sc.NFaults,
		}
		out.ce = &Counterexample{
			Scenario:      sc,
			Proc:          proc,
			Deadline:      ex.app.Proc(proc).Deadline,
			Completion:    completion,
			Utility:       ex.res.Utility,
			ScenarioIndex: scenarioIdx,
		}
	}
	return nil
}

// exploreExhaustive crosses the pattern with every corner combination via
// an odometer over the per-process corner lists (last process varies
// fastest).
func (ex *explorer) exploreExhaustive(ctx context.Context, out *patternOutcome) error {
	n := len(ex.corners)
	for p := 0; p < n; p++ {
		ex.idx[p] = 0
		ex.sc.Durations[p] = ex.corners[p][0]
	}
	for {
		if err := ex.runOne(ctx, out); err != nil {
			return err
		}
		p := n - 1
		for p >= 0 {
			ex.idx[p]++
			if ex.idx[p] < len(ex.corners[p]) {
				ex.sc.Durations[p] = ex.corners[p][ex.idx[p]]
				break
			}
			ex.idx[p] = 0
			ex.sc.Durations[p] = ex.corners[p][0]
			p--
		}
		if p < 0 {
			return nil
		}
	}
}

// exploreFrontier runs the all-BCET and all-WCET profiles plus every
// single-process corner deviation against both backgrounds (skipping
// deviations equal to the background, which the profiles already cover).
func (ex *explorer) exploreFrontier(ctx context.Context, out *patternOutcome) error {
	n := ex.app.N()
	setAll := func(wcet bool) {
		for p := 0; p < n; p++ {
			proc := ex.app.Proc(model.ProcessID(p))
			if wcet {
				ex.sc.Durations[p] = proc.WCET
			} else {
				ex.sc.Durations[p] = proc.BCET
			}
		}
	}
	setAll(false)
	if err := ex.runOne(ctx, out); err != nil {
		return err
	}
	setAll(true)
	if err := ex.runOne(ctx, out); err != nil {
		return err
	}
	for p := 0; p < n; p++ {
		proc := ex.app.Proc(model.ProcessID(p))
		for _, c := range ex.corners[p] {
			if c != proc.BCET {
				setAll(false)
				ex.sc.Durations[p] = c
				if err := ex.runOne(ctx, out); err != nil {
					return err
				}
			}
			if c != proc.WCET {
				setAll(true)
				ex.sc.Durations[p] = c
				if err := ex.runOne(ctx, out); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
