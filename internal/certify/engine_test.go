package certify

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
)

func synthesize(t testing.TB, app *model.Application, m int) *core.Tree {
	t.Helper()
	tree, err := core.FTQS(app, core.FTQSOptions{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestCertifyFixturesClean: every built-in application's synthesised tree
// must certify with zero counterexamples at the full fault bound — this is
// the library's core guarantee exercised end to end through the compiled
// dispatcher. Run with -race, this is also the engine's concurrency test.
func TestCertifyFixturesClean(t *testing.T) {
	for _, tc := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 12},
		{apps.Fig8(), 16},
		{apps.CruiseController(), 24},
	} {
		rep, err := Certify(synthesize(t, tc.app, tc.m), Config{})
		if err != nil {
			t.Errorf("%s: %v", tc.app.Name(), err)
			continue
		}
		if rep.Scenarios == 0 || rep.Patterns == 0 {
			t.Errorf("%s: empty exploration %+v", tc.app.Name(), rep)
		}
		// Slack 0 (completion exactly at the deadline) is legal; negative
		// slack would have come with a counterexample.
		if rep.WorstSlackProc == model.NoProcess || rep.WorstSlack < 0 {
			t.Errorf("%s: implausible worst slack %d (proc %d)",
				tc.app.Name(), rep.WorstSlack, rep.WorstSlackProc)
		}
	}
}

// TestCertifyWorkerDeterminism: the report must be bit-identical for every
// worker count, in both modes.
func TestCertifyWorkerDeterminism(t *testing.T) {
	tree := synthesize(t, apps.CruiseController(), 24)
	for _, budget := range []int64{0, 50} { // default => exhaustive-or-frontier, 50 => frontier
		var want Report
		for i, workers := range []int{1, 2, 7, 16} {
			rep, err := Certify(tree, Config{Workers: workers, Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rep
				continue
			}
			if !reflect.DeepEqual(rep, want) {
				t.Fatalf("budget %d workers %d: report diverged:\n%+v\n%+v", budget, workers, rep, want)
			}
		}
	}
}

// TestCertifyFrontierMode: a tiny budget must flip the engine to frontier
// mode, reported explicitly, with fewer scenarios than exhaustive.
func TestCertifyFrontierMode(t *testing.T) {
	tree := synthesize(t, apps.Fig1(), 12)
	full, err := Certify(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Mode != "exhaustive" {
		t.Fatalf("default mode = %q, want exhaustive", full.Mode)
	}
	small, err := Certify(tree, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.Mode != "frontier" {
		t.Errorf("tiny-budget mode = %q, want frontier", small.Mode)
	}
	if small.Scenarios == 0 || small.Scenarios >= full.Scenarios {
		t.Errorf("frontier scenarios = %d, exhaustive = %d", small.Scenarios, full.Scenarios)
	}
}

// unsafeTree schedules every process with zero recoveries: structurally
// valid, semantically unsafe under any fault.
func unsafeTree(app *model.Application) *core.Tree {
	entries := make([]schedule.Entry, app.N())
	for id := 0; id < app.N(); id++ {
		entries[id] = schedule.Entry{Proc: model.ProcessID(id)}
	}
	return &core.Tree{
		App: app,
		Nodes: []core.Node{{
			Schedule:       &schedule.FSchedule{Entries: entries},
			Parent:         core.NoNode,
			DroppedOnFault: model.NoProcess,
		}},
	}
}

// TestCertifyCounterexampleDeterministic: the counterexample must be the
// lowest (pattern, scenario) violation regardless of worker count, and its
// scenario must replay to the same violation.
func TestCertifyCounterexampleDeterministic(t *testing.T) {
	app := apps.Fig1()
	tree := unsafeTree(app)
	var want *CounterexampleError
	for _, workers := range []int{1, 3, 8} {
		_, err := Certify(tree, Config{Workers: workers})
		var ceErr *CounterexampleError
		if !errors.As(err, &ceErr) {
			t.Fatalf("workers %d: err = %v, want *CounterexampleError", workers, err)
		}
		if want == nil {
			want = ceErr
			continue
		}
		if !reflect.DeepEqual(ceErr.Counterexample, want.Counterexample) {
			t.Fatalf("workers %d: counterexample diverged:\n%+v\n%+v",
				workers, ceErr.Counterexample, want.Counterexample)
		}
	}
	ce := &want.Counterexample
	if ce.Scenario.NFaults == 0 {
		t.Error("counterexample needs at least one fault on this tree")
	}
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(ce.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HardViolations) == 0 || res.HardViolations[0] != ce.Proc {
		t.Errorf("replay violations %v, want leading %d", res.HardViolations, ce.Proc)
	}
}

// TestCertifyMalformedTree: a tree that fails the structural audit yields
// the dispatcher's typed error, not a crash.
func TestCertifyMalformedTree(t *testing.T) {
	app := apps.Fig1()
	bad := unsafeTree(app)
	bad.Nodes[0].ArcStart, bad.Nodes[0].ArcEnd = 0, 9
	var mte *runtime.MalformedTreeError
	if _, err := Certify(bad, Config{}); !errors.As(err, &mte) {
		t.Fatalf("err = %v, want *MalformedTreeError", mte)
	}
}

// TestCertifyConfigBounds: fault bounds outside [0, k] are rejected;
// explicit bounds below k narrow the exploration.
func TestCertifyConfigBounds(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16) // k = 2
	if _, err := Certify(tree, Config{MaxFaults: tree.App.K() + 1}); err == nil {
		t.Error("MaxFaults > k accepted")
	}
	if _, err := Certify(tree, Config{MaxFaults: -1}); err == nil {
		t.Error("negative MaxFaults accepted")
	}
	one, err := Certify(tree, Config{MaxFaults: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Certify(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if one.MaxFaults != 1 || full.MaxFaults != tree.App.K() {
		t.Errorf("resolved bounds %d/%d, want 1/%d", one.MaxFaults, full.MaxFaults, tree.App.K())
	}
	if one.Patterns >= full.Patterns {
		t.Errorf("patterns %d at k=1 not below %d at k=%d", one.Patterns, full.Patterns, tree.App.K())
	}
}

// TestCertifyCancellation: a cancelled context unwinds promptly with
// ctx.Err().
func TestCertifyCancellation(t *testing.T) {
	tree := synthesize(t, apps.CruiseController(), 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CertifyContext(ctx, tree, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCertifySinkEvents: the sink sees pattern/scenario/bisection counts
// matching the report and a worst-slack sample per pattern with hard
// completions — and never changes the report.
func TestCertifySinkEvents(t *testing.T) {
	tree := synthesize(t, apps.Fig1(), 12)
	plain, err := Certify(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	rep, err := Certify(tree, Config{Sink: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, plain) {
		t.Error("sink changed the report")
	}
	for _, c := range []struct {
		counter obs.Counter
		want    int64
	}{
		{obs.CertifyScenarios, rep.Scenarios},
		{obs.CertifyPatterns, int64(rep.Patterns)},
		{obs.CertifyPatternsPruned, int64(rep.PatternsPruned)},
		{obs.CertifyBisectionRuns, rep.BisectionRuns},
	} {
		if got := m.Counter(c.counter); got != c.want {
			t.Errorf("%s = %d, want %d", c.counter.Name(), got, c.want)
		}
	}
	if got := m.Snapshot().Histograms[obs.CertifyWorstSlack.Name()].Count; got == 0 {
		t.Error("no worst-slack samples recorded")
	}
}

// TestPatternCanonicalisation: faults beyond a victim's attempt bound must
// collapse into the capped pattern — Fig1 has single-recovery entries, so
// at k=1 nothing prunes, while a synthetic 2-fault bound on a 1-attempt
// victim must.
func TestPatternCanonicalisation(t *testing.T) {
	n := 2
	candidates := []model.ProcessID{0, 1}
	// Process 0 allows 2 attempts, process 1 only 1: the multiset {1,1}
	// caps to {1} which duplicates the size-1 pattern.
	patterns, pruned := enumeratePatterns(n, candidates, 2, []int{2, 1})
	if pruned == 0 {
		t.Fatalf("no pruning on capped victim: %d patterns", len(patterns))
	}
	seen := make(map[string]bool)
	for _, p := range patterns {
		key := ""
		for _, c := range p.counts {
			key += string(rune('0' + c))
		}
		if seen[key] {
			t.Fatalf("duplicate pattern %v survived", p.counts)
		}
		seen[key] = true
		if p.counts[1] > 1 {
			t.Fatalf("pattern %v exceeds victim 1's attempt bound", p.counts)
		}
	}
}
