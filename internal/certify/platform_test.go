package certify_test

import (
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// TestCertifyMappedTree: exhaustive certification runs mapped scenarios
// through the real dispatcher — a mapped Fig. 8 tree synthesised for the
// lp/hp platform certifies clean at its fault bound, deterministically for
// any worker count.
func TestCertifyMappedTree(t *testing.T) {
	base := apps.Fig8()
	plat := model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	var first certify.Report
	for i, workers := range []int{1, 4} {
		rep, err := certify.Certify(tree, certify.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: mapped tree failed certification: %v", workers, err)
		}
		if rep.Scenarios == 0 || rep.MaxFaults != base.K() {
			t.Fatalf("workers=%d: vacuous certification: %+v", workers, rep)
		}
		if i == 0 {
			first = rep
		} else if !reflect.DeepEqual(rep, first) {
			t.Fatalf("report differs across worker counts:\n  got  %+v\n  want %+v", rep, first)
		}
	}
}
