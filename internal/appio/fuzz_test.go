package appio

import (
	"bytes"
	"strings"
	"testing"

	"ftsched/internal/apps"
)

// FuzzDecodeApplication: the decoder must never panic and, when it
// accepts, must produce a validated application that re-encodes and
// re-decodes to an equivalent one.
func FuzzDecodeApplication(f *testing.F) {
	// Seed with the real fixtures and a few near-valid corpus entries.
	for _, app := range []interface{ Name() string }{} {
		_ = app
	}
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, apps.Fig1()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := EncodeApplication(&buf, apps.Fig8()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","period":10,"k":0,"mu":1,"processes":[],"edges":[]}`)
	f.Add(`{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]}`)
	f.Add(`{"name":"x","period":-1}`)
	f.Add(`not json at all`)
	f.Add(`{"processes":[{"kind":"soft"}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		app, err := DecodeApplication(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted applications are fully validated and reusable.
		if app.N() == 0 {
			t.Fatal("decoder accepted an empty application")
		}
		var out bytes.Buffer
		if err := EncodeApplication(&out, app); err != nil {
			t.Fatalf("accepted application does not re-encode: %v", err)
		}
		back, err := DecodeApplication(&out)
		if err != nil {
			t.Fatalf("re-encoded application does not decode: %v", err)
		}
		if back.N() != app.N() || back.Period() != app.Period() || back.K() != app.K() {
			t.Fatal("round trip changed the application")
		}
	})
}
