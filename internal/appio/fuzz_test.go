package appio

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// FuzzDecodeApplication: the decoder must never panic and, when it
// accepts, must produce a validated application that re-encodes and
// re-decodes to an equivalent one.
func FuzzDecodeApplication(f *testing.F) {
	// Seed with the real fixtures and a few near-valid corpus entries.
	for _, app := range []interface{ Name() string }{} {
		_ = app
	}
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, apps.Fig1()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := EncodeApplication(&buf, apps.Fig8()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","period":10,"k":0,"mu":1,"processes":[],"edges":[]}`)
	f.Add(`{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]}`)
	f.Add(`{"name":"x","period":-1}`)
	f.Add(`not json at all`)
	f.Add(`{"processes":[{"kind":"soft"}]}`)
	// Platform/mapping seeds: a valid heterogeneous pair, then the typed
	// rejections (non-positive/non-finite speed, negative power, mapping
	// without a platform, unknown core and process names, duplicate cores).
	buf.Reset()
	if err := EncodeApplication(&buf, mappedFig1(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	const hdr = `{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]`
	f.Add(hdr + `,"platform":[{"name":"lp","speed":1,"powerActive":1,"powerIdle":0.05},{"name":"hp","speed":2,"powerActive":3,"powerIdle":0.15}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":0,"powerActive":1,"powerIdle":0}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":-2,"powerActive":1,"powerIdle":0}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":1,"powerActive":-1,"powerIdle":0}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":1,"powerActive":1,"powerIdle":-0.5}]}`)
	f.Add(hdr + `,"platform":[{"name":"","speed":1,"powerActive":1,"powerIdle":0}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":1,"powerActive":1,"powerIdle":0},{"name":"c","speed":1,"powerActive":1,"powerIdle":0}]}`)
	f.Add(hdr + `,"mapping":[{"proc":"A","core":"c","recovery":"c"}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":1,"powerActive":1,"powerIdle":0}],"mapping":[{"proc":"A","core":"nope","recovery":"c"}]}`)
	f.Add(hdr + `,"platform":[{"name":"c","speed":1,"powerActive":1,"powerIdle":0}],"mapping":[{"proc":"NOPE","core":"c","recovery":"c"}]}`)
	// Recovery-model seeds: one valid document per model, then the
	// adversarial rejections (negative latency, zero spacing, overhead at
	// spacing, overflow-scale rollback, unknown model, muZero conflicts).
	f.Add(hdr + `,"recovery":{"model":"restart","latency":25}}`)
	f.Add(hdr + `,"recovery":{"model":"checkpoint","spacing":40,"overhead":3,"rollback":7}}`)
	f.Add(hdr + `,"recovery":{"model":"re-execution"}}`)
	f.Add(hdr + `,"recovery":{"model":"restart","latency":-1}}`)
	f.Add(hdr + `,"recovery":{"model":"checkpoint","spacing":0}}`)
	f.Add(hdr + `,"recovery":{"model":"checkpoint","spacing":10,"overhead":10}}`)
	f.Add(hdr + `,"recovery":{"model":"checkpoint","spacing":10,"overhead":1,"rollback":1125899906842624}}`)
	f.Add(hdr + `,"recovery":{"model":"martian"}}`)
	f.Add(`{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5,"muZero":true}],"edges":[]}`)
	f.Add(`{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5,"mu":3,"muZero":true}],"edges":[]}`)

	f.Fuzz(func(t *testing.T, input string) {
		app, err := DecodeApplication(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted applications are fully validated and reusable.
		if app.N() == 0 {
			t.Fatal("decoder accepted an empty application")
		}
		var out bytes.Buffer
		if err := EncodeApplication(&out, app); err != nil {
			t.Fatalf("accepted application does not re-encode: %v", err)
		}
		back, err := DecodeApplication(&out)
		if err != nil {
			t.Fatalf("re-encoded application does not decode: %v", err)
		}
		if back.N() != app.N() || back.Period() != app.Period() || back.K() != app.K() {
			t.Fatal("round trip changed the application")
		}
		if back.Recovery() != app.Recovery() {
			t.Fatalf("round trip changed the recovery model: %v -> %v", app.Recovery(), back.Recovery())
		}
	})
}

// FuzzDecodeCounterexample: the counterexample decoder — the ftsim -replay
// input path — must never panic, reject with typed position-carrying
// errors only, and round-trip every accepted record (violation events
// included) bit-identically. Seeds include a chaos-style record carrying
// the full envelope event taxonomy.
func FuzzDecodeCounterexample(f *testing.F) {
	app := apps.Fig8()
	sc := runtime.Scenario{
		Durations: []model.Time{20, 40, 80, 30, 20},
		FaultsAt:  []int{0, 2, 1, 0, 0},
		NFaults:   3,
	}
	ce := NewCounterexample(app, sc, app.HardIDs()[1], 244, []int{0, 1})
	ce.Violations = NewViolationRecords(app, []runtime.ViolationEvent{
		{Kind: runtime.BudgetExhausted, Proc: 1, At: 45, Magnitude: 1},
		{Kind: runtime.WCETOverrun, Proc: 2, At: 125, Magnitude: 40},
		{Kind: runtime.ExtraFault, Proc: 2, At: 215, Magnitude: 1},
		{Kind: runtime.TimeRegression, Proc: 3, At: 100, Magnitude: 5},
	})
	var buf bytes.Buffer
	if err := EncodeCounterexample(&buf, ce); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":0,"durations":{}}`)
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":0,"durations":{},"violations":[{"kind":"wcet-overrun","proc":"P2","at":10,"magnitude":3}]}`)
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":0,"durations":{},"violations":[{"kind":"martian","proc":"P2","at":10}]}`)
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":0,"durations":{},"violations":[{"kind":"extra-fault","proc":"NOPE","at":10}]}`)
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":0,"durations":{},"violations":[{"kind":"extra-fault","proc":"P2","at":-1}]}`)
	f.Add(`{"format":"ftsched-counterexample/v1","app":"paper-fig8","nFaults":1,"durations":{"P2":999}}`)
	f.Add(`{"format":"ftsched-counterexample/v9"}`)
	f.Add(`{"durations":`)

	f.Fuzz(func(t *testing.T, input string) {
		sc, ce, err := DecodeCounterexample(strings.NewReader(input), app)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection is %T (%v), want *DecodeError", err, err)
			}
			if de.Error() == "" {
				t.Fatal("empty DecodeError message")
			}
			return
		}
		total := 0
		for _, n := range sc.FaultsAt {
			total += n
		}
		if total != sc.NFaults {
			t.Fatalf("accepted scenario is inconsistent: faults sum to %d, NFaults %d", total, sc.NFaults)
		}
		var out bytes.Buffer
		if err := EncodeCounterexample(&out, ce); err != nil {
			t.Fatalf("accepted counterexample does not re-encode: %v", err)
		}
		sc2, ce2, err := DecodeCounterexample(&out, app)
		if err != nil {
			t.Fatalf("re-encoded counterexample does not decode: %v", err)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatal("round trip changed the scenario")
		}
		if !reflect.DeepEqual(ce.Violations, ce2.Violations) {
			t.Fatal("round trip changed the violation records")
		}
	})
}

// FuzzParseCoreSpec: the -core-spec CLI parser must never panic and must
// reject every malformed specification with a typed *DecodeError.
func FuzzParseCoreSpec(f *testing.F) {
	f.Add("lp:1:1:0.05,hp:2:3:0.15")
	f.Add("cpu:1:1:0")
	f.Add("")
	f.Add("a:b:c:d")
	f.Add("a:0:1:0")
	f.Add("a:-1:1:0")
	f.Add("a:1:-1:0")
	f.Add("a:1:1:-0.5")
	f.Add("a:1:1")
	f.Add(":1:1:0")
	f.Add("a:1:1:0,a:1:1:0")
	f.Add("a:NaN:1:0")
	f.Add("a:Inf:1:0")
	f.Fuzz(func(t *testing.T, spec string) {
		plat, err := ParseCoreSpec(spec)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection is %T (%v), want *DecodeError", err, err)
			}
			if de.Error() == "" {
				t.Fatal("empty DecodeError message")
			}
			return
		}
		if plat.NCores() == 0 {
			t.Fatal("accepted specification produced an empty platform")
		}
	})
}

// FuzzDecodeTree: both tree decoders must never panic on arbitrary input,
// and any accepted tree that passes the safety audit must survive a round
// trip through either encoding unchanged.
func FuzzDecodeTree(f *testing.F) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTree(&buf, tree); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := EncodeTreeCompact(&buf, tree); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1"}]}]}`)
	f.Add(`{"format":"ftsched-tree/v2","app":"paper-fig1","k":1,"procs":["P1"],"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}]}`)
	f.Add(`{"format":"ftsched-tree/v9"}`)
	f.Add(`{"nodes":`)
	// Adversarial time/gain bounds: negative and wrapping-sized guard times
	// must be rejected with a position-carrying typed error.
	f.Add(`{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1"}],"arcs":[{"pos":0,"kind":"completion","lo":-5,"hi":10,"child":0}]}]}`)
	f.Add(`{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1"}],"arcs":[{"pos":0,"kind":"completion","lo":0,"hi":99999999999999999,"child":0}]}]}`)
	f.Add(`{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1","recoveries":-2}]}]}`)
	// Recovery-model seeds: a real v4 tree (which must be REJECTED against
	// this canonical application), a v2 tree smuggling a recovery member,
	// and v4 headers with missing/adversarial models.
	cpApp, err := app.WithRecovery(model.CheckpointModel(40, 3, 7))
	if err != nil {
		f.Fatal(err)
	}
	cpTree, err := core.FTQS(cpApp, core.FTQSOptions{M: 8})
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := EncodeTreeCompact(&buf, cpTree); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"format":"ftsched-tree/v2","app":"paper-fig1","k":1,"procs":["P1"],"recovery":{"model":"restart","latency":5},"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}]}`)
	f.Add(`{"format":"ftsched-tree/v4","app":"paper-fig1","k":1,"procs":["P1"],"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}]}`)
	f.Add(`{"format":"ftsched-tree/v4","app":"paper-fig1","k":1,"procs":["P1"],"recovery":{"model":"restart","latency":-3},"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}]}`)
	f.Add(`{"format":"ftsched-tree/v4","app":"paper-fig1","k":1,"procs":["P1"],"recovery":{"model":"checkpoint","spacing":10,"overhead":1,"rollback":1125899906842624},"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		got, err := DecodeTree(strings.NewReader(input), app)
		if err != nil {
			// Every rejection is a typed *DecodeError with a message;
			// anything else (or a panic) is a decoder bug.
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection is %T (%v), want *DecodeError", err, err)
			}
			if de.Error() == "" {
				t.Fatal("empty DecodeError message")
			}
			return
		}
		// Decoding validates structure only; the full audit gates the
		// round-trip checks (Format and re-encoding index entries by the
		// arcs' guard positions, which only the audit bounds-checks).
		if core.VerifyTree(got) != nil {
			return
		}
		want := got.Format()
		var v1, v2 bytes.Buffer
		if err := EncodeTree(&v1, got); err != nil {
			t.Fatalf("accepted tree does not re-encode (v1): %v", err)
		}
		if err := EncodeTreeCompact(&v2, got); err != nil {
			t.Fatalf("accepted tree does not re-encode (v2): %v", err)
		}
		for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()} {
			back, err := DecodeTree(bytes.NewReader(data), app)
			if err != nil {
				t.Fatalf("%s re-encoding does not decode: %v", name, err)
			}
			if back.Format() != want {
				t.Fatalf("%s round trip changed the tree", name)
			}
		}
	})
}
