package appio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// counterexampleFormat tags the certification-counterexample file the
// ftsched -certify command writes and ftsim -replay reads. The file is
// self-contained: process references are by name, so it pairs with the
// application's JSON encoding the same way trees do.
const counterexampleFormat = "ftsched-counterexample/v1"

// Counterexample is the serialisable form of a certification
// counterexample: the exact scenario that drove the dispatcher into a
// hard-deadline miss, plus the violation details and the tree path taken,
// for human inspection and replay.
type Counterexample struct {
	Format string `json:"format"`
	App    string `json:"app"`
	// NFaults is the scenario's total injected fault count.
	NFaults int `json:"nFaults"`
	// Durations and FaultsAt describe the scenario per process name.
	Durations map[string]model.Time `json:"durations"`
	FaultsAt  map[string]int        `json:"faultsAt,omitempty"`
	// Proc is the violated hard process ("" when the counterexample is
	// informational only), with its deadline and observed completion.
	Proc       string     `json:"proc,omitempty"`
	Deadline   model.Time `json:"deadline,omitempty"`
	Completion model.Time `json:"completion,omitempty"`
	// Path is the sequence of tree node IDs the dispatcher visited
	// (switches only, starting at the root, 0).
	Path []int `json:"path,omitempty"`
	// Violations carries the envelope's event record for the scenario —
	// chaos campaigns and replays under a DegradePolicy store what the
	// containment layer saw alongside the raw scenario.
	Violations []ViolationRecord `json:"violations,omitempty"`
}

// ViolationRecord is the name-keyed serialisable form of one envelope
// event (runtime.ViolationEvent): the kind in its text form and the
// process by name, so records stay readable next to Durations/FaultsAt.
type ViolationRecord struct {
	Kind      string     `json:"kind"`
	Proc      string     `json:"proc"`
	At        model.Time `json:"at"`
	Magnitude model.Time `json:"magnitude,omitempty"`
}

// NewViolationRecords translates an envelope event record into its
// serialisable form, process IDs to names.
func NewViolationRecords(app *model.Application, events []runtime.ViolationEvent) []ViolationRecord {
	if len(events) == 0 {
		return nil
	}
	out := make([]ViolationRecord, len(events))
	for i, ev := range events {
		out[i] = ViolationRecord{
			Kind:      ev.Kind.String(),
			Proc:      app.Proc(ev.Proc).Name,
			At:        ev.At,
			Magnitude: ev.Magnitude,
		}
	}
	return out
}

// EncodeCounterexample writes a counterexample as indented JSON.
func EncodeCounterexample(w io.Writer, ce *Counterexample) error {
	out := *ce
	out.Format = counterexampleFormat
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// NewCounterexample builds the serialisable record from a scenario and its
// violation details, translating process IDs to names.
func NewCounterexample(app *model.Application, sc runtime.Scenario, proc model.ProcessID, completion model.Time, path []int) *Counterexample {
	ce := &Counterexample{
		App:       app.Name(),
		NFaults:   sc.NFaults,
		Durations: make(map[string]model.Time, len(sc.Durations)),
		Path:      append([]int(nil), path...),
	}
	for id, d := range sc.Durations {
		ce.Durations[app.Proc(model.ProcessID(id)).Name] = d
	}
	for id, f := range sc.FaultsAt {
		if f > 0 {
			if ce.FaultsAt == nil {
				ce.FaultsAt = make(map[string]int)
			}
			ce.FaultsAt[app.Proc(model.ProcessID(id)).Name] = f
		}
	}
	if proc != model.NoProcess {
		p := app.Proc(proc)
		ce.Proc = p.Name
		ce.Deadline = p.Deadline
		ce.Completion = completion
	}
	return ce
}

// DecodeCounterexample reads a counterexample and rebuilds the scenario
// against the application. Unknown processes, out-of-range times and
// negative fault counts are rejected with a *DecodeError; processes the
// file does not mention default to their WCET (the certification corner
// the engine starts from), so hand-trimmed files stay replayable.
func DecodeCounterexample(r io.Reader, app *model.Application) (runtime.Scenario, *Counterexample, error) {
	var sc runtime.Scenario
	data, err := io.ReadAll(r)
	if err != nil {
		return sc, nil, &DecodeError{Msg: "reading counterexample", Err: err}
	}
	var ce Counterexample
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ce); err != nil {
		return sc, nil, &DecodeError{Msg: "invalid counterexample JSON", Err: err}
	}
	if ce.Format != counterexampleFormat {
		return sc, nil, &DecodeError{Path: "format", Msg: fmt.Sprintf("unsupported counterexample format %q", ce.Format)}
	}
	if ce.App != app.Name() {
		return sc, nil, &DecodeError{Path: "app", Msg: fmt.Sprintf("counterexample is for application %q, not %q", ce.App, app.Name())}
	}
	n := app.N()
	sc.Durations = make([]model.Time, n)
	sc.FaultsAt = make([]int, n)
	for id := 0; id < n; id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).WCET
	}
	for name, d := range ce.Durations {
		id := app.IDByName(name)
		if id == model.NoProcess {
			return sc, nil, &DecodeError{Path: "durations." + name, Msg: "unknown process"}
		}
		if derr := checkDecodedTime("durations."+name, d); derr != nil {
			return sc, nil, derr
		}
		sc.Durations[id] = d
	}
	total := 0
	for name, f := range ce.FaultsAt {
		id := app.IDByName(name)
		if id == model.NoProcess {
			return sc, nil, &DecodeError{Path: "faultsAt." + name, Msg: "unknown process"}
		}
		if f < 0 {
			return sc, nil, &DecodeError{Path: "faultsAt." + name, Msg: "negative fault count"}
		}
		sc.FaultsAt[id] = f
		total += f
	}
	if ce.NFaults != total {
		return sc, nil, &DecodeError{Path: "nFaults", Msg: fmt.Sprintf("fault counts sum to %d, nFaults says %d", total, ce.NFaults)}
	}
	sc.NFaults = total
	for i, vr := range ce.Violations {
		path := fmt.Sprintf("violations[%d]", i)
		var kind runtime.ViolationKind
		if err := kind.UnmarshalText([]byte(vr.Kind)); err != nil {
			return sc, nil, &DecodeError{Path: path + ".kind", Msg: fmt.Sprintf("unknown violation kind %q", vr.Kind)}
		}
		if app.IDByName(vr.Proc) == model.NoProcess {
			return sc, nil, &DecodeError{Path: path + ".proc", Msg: "unknown process"}
		}
		if derr := checkDecodedTime(path+".at", vr.At); derr != nil {
			return sc, nil, derr
		}
		if derr := checkDecodedTime(path+".magnitude", vr.Magnitude); derr != nil {
			return sc, nil, derr
		}
	}
	return sc, &ce, nil
}
