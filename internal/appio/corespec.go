package appio

import (
	"fmt"
	"strconv"
	"strings"

	"ftsched/internal/model"
)

// ParseCoreSpec parses a command-line platform description of the form
//
//	name:speed:powerActive:powerIdle[,name:speed:powerActive:powerIdle...]
//
// e.g. "lp:1:1:0.05,hp:2:3:0.15" for a low-power/high-performance pair.
// Values run through the same typed validation as decoded files, so NaN,
// infinite, negative power and non-positive speed values yield a
// *DecodeError naming the offending core and field.
func ParseCoreSpec(spec string) (*model.Platform, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, &DecodeError{Path: "core-spec", Msg: "empty platform specification"}
	}
	var cores []jsonCore
	for i, part := range strings.Split(spec, ",") {
		path := fmt.Sprintf("core-spec[%d]", i)
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, &DecodeError{Path: path, Msg: fmt.Sprintf("want name:speed:powerActive:powerIdle (got %q)", part)}
		}
		num := func(field, s string) (float64, *DecodeError) {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return 0, &DecodeError{Path: path + "." + field, Msg: fmt.Sprintf("not a number: %q", s)}
			}
			return v, nil
		}
		speed, derr := num("speed", fields[1])
		if derr != nil {
			return nil, derr
		}
		active, derr := num("powerActive", fields[2])
		if derr != nil {
			return nil, derr
		}
		idle, derr := num("powerIdle", fields[3])
		if derr != nil {
			return nil, derr
		}
		cores = append(cores, jsonCore{
			Name: strings.TrimSpace(fields[0]), Speed: speed,
			PowerActive: active, PowerIdle: idle,
		})
	}
	return decodePlatform(cores)
}

// UniformPlatform builds a homogeneous platform of n unit cores named
// cpu0..cpu<n-1> (speed 1, active power 1, idle power 0) — `ftgen -cores n`
// without a -core-spec.
func UniformPlatform(n int) (*model.Platform, error) {
	if n <= 0 {
		return nil, &DecodeError{Path: "cores", Msg: fmt.Sprintf("core count must be positive (got %d)", n)}
	}
	cores := make([]model.Core, n)
	for i := range cores {
		cores[i] = model.Core{Name: fmt.Sprintf("cpu%d", i), Speed: 1, PowerActive: 1, PowerIdle: 0}
	}
	return model.NewPlatform(cores...)
}
