package appio

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/sim"
)

// treesIdentical compares two trees field for field, including the arc
// arenas.
func treesIdentical(a, b *core.Tree) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Arcs) != len(b.Arcs) {
		return false
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.SwitchPos != nb.SwitchPos || na.KRem != nb.KRem ||
			na.Depth != nb.Depth || na.DroppedOnFault != nb.DroppedOnFault ||
			na.Parent != nb.Parent || na.ArcStart != nb.ArcStart || na.ArcEnd != nb.ArcEnd {
			return false
		}
		if len(na.Schedule.Entries) != len(nb.Schedule.Entries) {
			return false
		}
		for j := range na.Schedule.Entries {
			if na.Schedule.Entries[j] != nb.Schedule.Entries[j] {
				return false
			}
		}
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			return false
		}
	}
	return true
}

// TestCompactTreeRoundTrip: the v2 encoding reconstructs the tree exactly —
// same nodes, same full schedules (prefixes re-expanded from parents), same
// arc arena — and the result passes the safety audit.
func TestCompactTreeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 8},
		{apps.Fig8(), 20},
		{apps.CruiseController(), 24},
	} {
		tree, err := core.FTQS(tc.app, core.FTQSOptions{M: tc.m})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeTreeCompact(&buf, tree); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeTree(bytes.NewReader(buf.Bytes()), tc.app)
		if err != nil {
			t.Fatalf("%s: %v", tc.app.Name(), err)
		}
		if !treesIdentical(tree, back) {
			t.Errorf("%s: compact round trip changed the tree", tc.app.Name())
		}
		if err := core.VerifyTree(back); err != nil {
			t.Errorf("%s: loaded tree fails verification: %v", tc.app.Name(), err)
		}
	}
}

// TestCompactTreeSmaller: the point of the format — interned names,
// suffix-only schedules and short arc keys must beat the v1 encoding.
func TestCompactTreeSmaller(t *testing.T) {
	app := apps.CruiseController()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 24})
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := EncodeTree(&v1, tree); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTreeCompact(&v2, tree); err != nil {
		t.Fatal(err)
	}
	if v2.Len()*2 >= v1.Len() {
		t.Errorf("compact encoding %d bytes, v1 %d bytes; want at least 2x smaller", v2.Len(), v1.Len())
	}
}

// TestCompactTreeExecution: a compact-loaded tree simulates identically.
func TestCompactTreeExecution(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTree(&buf, app)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.MonteCarlo(tree, sim.MCConfig{Scenarios: 1000, Faults: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.MonteCarlo(back, sim.MCConfig{Scenarios: 1000, Faults: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility != b.MeanUtility || a.MeanSwitches != b.MeanSwitches {
		t.Errorf("compact-loaded tree behaves differently: %+v vs %+v", a, b)
	}
}

// TestDecodeTreeCompactErrors: corruption is rejected, not mis-loaded.
func TestDecodeTreeCompactErrors(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"bad json":       `{"format":"ftsched-tree/v2",`,
		"unknown format": strings.Replace(good, "ftsched-tree/v2", "ftsched-tree/v9", 1),
		"wrong app":      strings.Replace(good, `"app":"paper-fig1"`, `"app":"other"`, 1),
		"wrong k":        strings.Replace(good, `"k":1`, `"k":3`, 1),
		"no nodes":       `{"format":"ftsched-tree/v2","app":"paper-fig1","k":1,"procs":["P1"],"nodes":[]}`,
		"unknown proc":   strings.Replace(good, `"P3"`, `"P9"`, 1),
		"unknown field":  strings.Replace(good, `"procs"`, `"nope":1,"procs"`, 1),
	}
	for name, in := range cases {
		if _, err := DecodeTree(strings.NewReader(in), app); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

// TestDecodeTreeV1Golden proves stored old-format files keep loading: the
// checked-in fixture was written by the pre-arena encoder, before the
// compact format existed.
func TestDecodeTreeV1Golden(t *testing.T) {
	data, err := os.ReadFile("testdata/fig1_tree_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	app := apps.Fig1()
	tree, err := DecodeTree(bytes.NewReader(data), app)
	if err != nil {
		t.Fatalf("golden v1 file no longer decodes: %v", err)
	}
	if err := core.VerifyTree(tree); err != nil {
		t.Fatalf("golden tree fails verification: %v", err)
	}
	// The fixture was synthesised with M=8 defaults; the loaded tree must
	// be indistinguishable from a fresh synthesis.
	fresh, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Format() != fresh.Format() {
		t.Errorf("golden tree diverged from fresh synthesis:\n--- golden ---\n%s--- fresh ---\n%s",
			tree.Format(), fresh.Format())
	}
	// And re-encoding it in v1 reproduces the file byte for byte.
	var out bytes.Buffer
	if err := EncodeTree(&out, tree); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("v1 re-encoding of the golden tree is not byte-identical")
	}
}
