package appio

import (
	"fmt"
	"strconv"
	"strings"

	"ftsched/internal/model"
)

// jsonRecovery is the on-disk form of a recovery model, shared by the
// application JSON and the v4 compact tree encoding. The canonical
// re-execution model is never written (the field is omitted), so
// pre-recovery documents round-trip byte-identically.
type jsonRecovery struct {
	Model    string     `json:"model"` // "re-execution" | "restart" | "checkpoint"
	Latency  model.Time `json:"latency,omitempty"`
	Spacing  model.Time `json:"spacing,omitempty"`
	Overhead model.Time `json:"overhead,omitempty"`
	Rollback model.Time `json:"rollback,omitempty"`
}

// recoveryJSON converts a model to its on-disk form; nil for the canonical
// model (the caller omits the field).
func recoveryJSON(m model.RecoveryModel) *jsonRecovery {
	if m.IsCanonical() {
		return nil
	}
	return &jsonRecovery{
		Model:    m.Kind.String(),
		Latency:  m.Latency,
		Spacing:  m.Spacing,
		Overhead: m.Overhead,
		Rollback: m.Rollback,
	}
}

// decodeRecovery validates and builds a recovery model from its on-disk
// form. A nil jr is the canonical model. Every time value runs through the
// decoded-time bounds (negative and overflow-scale values are rejected
// before any arithmetic can wrap), and the assembled model runs through
// model.RecoveryModel.Validate; all failures are *DecodeError values
// naming the offending field under path.
func decodeRecovery(path string, jr *jsonRecovery) (model.RecoveryModel, error) {
	if jr == nil {
		return model.ReExecutionModel(), nil
	}
	var m model.RecoveryModel
	switch jr.Model {
	case "re-execution":
		m.Kind = model.RecoverReExecution
	case "restart":
		m.Kind = model.RecoverRestart
	case "checkpoint":
		m.Kind = model.RecoverCheckpoint
	default:
		return m, &DecodeError{Path: path + ".model", Msg: fmt.Sprintf("unknown recovery model %q", jr.Model)}
	}
	for _, f := range []struct {
		name string
		v    model.Time
		dst  *model.Time
	}{
		{"latency", jr.Latency, &m.Latency},
		{"spacing", jr.Spacing, &m.Spacing},
		{"overhead", jr.Overhead, &m.Overhead},
		{"rollback", jr.Rollback, &m.Rollback},
	} {
		if derr := checkDecodedTime(path+"."+f.name, f.v); derr != nil {
			return model.RecoveryModel{}, derr
		}
		*f.dst = f.v
	}
	if err := m.Validate(); err != nil {
		return model.RecoveryModel{}, &DecodeError{Path: path, Err: err}
	}
	return m, nil
}

// applyRecovery attaches a decoded recovery model to a validated
// application; the canonical model leaves the application untouched.
func applyRecovery(app *model.Application, jr *jsonRecovery) (*model.Application, error) {
	m, err := decodeRecovery("recovery", jr)
	if err != nil {
		return nil, err
	}
	if m.IsCanonical() {
		return app, nil
	}
	withRec, err := app.WithRecovery(m)
	if err != nil {
		return nil, &DecodeError{Path: "recovery", Err: err}
	}
	return withRec, nil
}

// ParseRecoverySpec parses a command-line recovery-model description:
//
//	reexec                              the paper's re-execution with µ
//	restart:LATENCY                     full restart after a fixed latency
//	checkpoint:SPACING:OVERHEAD:ROLLBACK  checkpoint-and-rollback
//
// e.g. "restart:25" or "checkpoint:40:3:7". Values run through the same
// typed validation as decoded files, so negative, overflow-scale or
// inconsistent parameters yield a *DecodeError naming the offending field.
func ParseRecoverySpec(spec string) (model.RecoveryModel, error) {
	fields := strings.Split(strings.TrimSpace(spec), ":")
	kind := strings.TrimSpace(fields[0])
	num := func(field, s string) (model.Time, *DecodeError) {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return 0, &DecodeError{Path: "recovery." + field, Msg: fmt.Sprintf("not an integer: %q", s)}
		}
		return model.Time(v), nil
	}
	jr := &jsonRecovery{}
	switch kind {
	case "", "reexec", "re-execution":
		return model.ReExecutionModel(), nil
	case "restart":
		if len(fields) != 2 {
			return model.RecoveryModel{}, &DecodeError{Path: "recovery", Msg: fmt.Sprintf("want restart:LATENCY (got %q)", spec)}
		}
		jr.Model = "restart"
		v, derr := num("latency", fields[1])
		if derr != nil {
			return model.RecoveryModel{}, derr
		}
		jr.Latency = v
	case "checkpoint":
		if len(fields) != 4 {
			return model.RecoveryModel{}, &DecodeError{Path: "recovery", Msg: fmt.Sprintf("want checkpoint:SPACING:OVERHEAD:ROLLBACK (got %q)", spec)}
		}
		jr.Model = "checkpoint"
		for i, f := range []struct {
			name string
			dst  *model.Time
		}{{"spacing", &jr.Spacing}, {"overhead", &jr.Overhead}, {"rollback", &jr.Rollback}} {
			v, derr := num(f.name, fields[i+1])
			if derr != nil {
				return model.RecoveryModel{}, derr
			}
			*f.dst = v
		}
	default:
		return model.RecoveryModel{}, &DecodeError{Path: "recovery", Msg: fmt.Sprintf("unknown recovery model %q (want reexec, restart or checkpoint)", kind)}
	}
	return decodeRecovery("recovery", jr)
}
