package appio

import (
	"bytes"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/utility"
)

func TestRoundTripFig1(t *testing.T) {
	app := apps.Fig1()
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeApplication(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != app.N() || back.Period() != app.Period() ||
		back.K() != app.K() || back.Mu() != app.Mu() {
		t.Fatal("parameters changed in round trip")
	}
	for id := 0; id < app.N(); id++ {
		a := app.Proc(model.ProcessID(id))
		b := back.Proc(model.ProcessID(id))
		if a.Name != b.Name || a.Kind != b.Kind || a.BCET != b.BCET ||
			a.AET != b.AET || a.WCET != b.WCET || a.Deadline != b.Deadline {
			t.Errorf("process %d changed: %+v vs %+v", id, a, b)
		}
	}
	// Utility functions preserved pointwise.
	for _, id := range app.SoftIDs() {
		ua, ub := app.UtilityOf(id), back.UtilityOf(id)
		for tt := model.Time(0); tt < 400; tt += 7 {
			if ua.Value(tt) != ub.Value(tt) {
				t.Fatalf("utility of %s changed at t=%d", app.Proc(id).Name, tt)
			}
		}
	}
	// Behavioural equivalence: FTSS produces the same schedule.
	s1, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.FTSS(back)
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Errorf("FTSS differs after round trip: %s vs %s", s1, s2)
	}
}

func TestRoundTripCruiseController(t *testing.T) {
	app := apps.CruiseController()
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeApplication(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 32 || len(back.HardIDs()) != 9 {
		t.Fatal("CC structure changed")
	}
	// Per-process µ overrides preserved.
	for id := 0; id < app.N(); id++ {
		if app.MuOf(model.ProcessID(id)) != back.MuOf(model.ProcessID(id)) {
			t.Errorf("µ of %s changed", app.Proc(model.ProcessID(id)).Name)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"nope": 1}`,
		"unknown kind":    `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"weird","bcet":1,"aet":1,"wcet":1}],"edges":[]}`,
		"soft no utility": `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"soft","bcet":1,"aet":1,"wcet":1}],"edges":[]}`,
		"bad utility":     `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"soft","bcet":1,"aet":1,"wcet":1,"utility":{"mode":"step","points":[]}}],"edges":[]}`,
		"bad mode":        `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"soft","bcet":1,"aet":1,"wcet":1,"utility":{"mode":"wavy","points":[{"t":1,"v":1}]}}],"edges":[]}`,
		"dup process":     `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5},{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]}`,
		"unknown edge":    `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[["A","B"]]}`,
		"unknown edge2":   `{"name":"x","period":10,"k":0,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[["B","A"]]}`,
		"invalid app":     `{"name":"x","period":-10,"k":0,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]}`,
	}
	for name, in := range cases {
		if _, err := DecodeApplication(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	app := apps.Fig1()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, app); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "doubleoctagon", `"P1" -> "P2"`, "d=180"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTreeDOT(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTreeDOT(&buf, tree); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "S0") || !strings.Contains(out, "->") {
		t.Errorf("tree DOT output suspicious:\n%s", out)
	}
}

func TestEncodeRejectsWrappedUtilities(t *testing.T) {
	g := apps.Fig1()
	// Hyper-period merge wraps utilities in utility.Shifted.
	halfPeriod, err := g.WithFaults(g.K(), g.Mu())
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Merge("m", 1, 10, halfPeriod, mustHalf(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, m); err == nil {
		t.Error("encoding a merged application with shifted utilities should fail")
	}
}

// mustHalf builds a second graph with half of Fig1's period so the merge
// replicates it and shifts its utilities.
func mustHalf(t *testing.T) *model.Application {
	t.Helper()
	a := model.NewApplication("half", 150, 1, 10)
	a.AddProcess(model.Process{Name: "Q", Kind: model.Soft, BCET: 5, AET: 10, WCET: 20,
		Utility: utility.MustStep([]model.Time{100}, []float64{10})})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}
