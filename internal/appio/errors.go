package appio

import (
	"math"

	"ftsched/internal/model"
)

// maxDecodedTime bounds every time value accepted from storage (~1.1e12
// ticks). model.Time is an int64, but the dispatcher sums durations and
// recovery overheads along a schedule; bounding each decoded value keeps
// any realistic sum far from overflow, so a hostile file cannot wrap the
// clock. Real inputs are periods and execution times in the thousands.
const maxDecodedTime = model.Time(1) << 40

// DecodeError is the typed error every tree/counterexample decode failure
// surfaces as: a JSON-ish path to the offending position, a description,
// and (for syntax errors) the underlying encoding/json error. The fuzz
// targets assert that malformed inputs always land here — never in a
// panic.
type DecodeError struct {
	// Path locates the offending value, e.g. "nodes[3].arcs[1].lo";
	// empty for file-level problems (syntax errors, format mismatches).
	Path string
	// Msg describes the violation.
	Msg string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	s := "appio: "
	if e.Path != "" {
		s += e.Path + ": "
	}
	s += e.Msg
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap returns the underlying cause.
func (e *DecodeError) Unwrap() error { return e.Err }

// checkDecodedTime rejects negative or overflowing time values with a
// position-carrying error. (NaN cannot reach a model.Time through JSON —
// int64 fields reject non-integer tokens — but float64 gains are checked
// separately with checkDecodedGain.)
func checkDecodedTime(path string, v model.Time) *DecodeError {
	if v < 0 {
		return &DecodeError{Path: path, Msg: "negative time"}
	}
	if v > maxDecodedTime {
		return &DecodeError{Path: path, Msg: "time overflows the accepted range"}
	}
	return nil
}

// checkDecodedGain rejects NaN and infinite gains, which would poison the
// gain-descending canonical arc order.
func checkDecodedGain(path string, v float64) *DecodeError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &DecodeError{Path: path, Msg: "gain is not a finite number"}
	}
	return nil
}

// checkDecodedSpeed rejects NaN, infinite, zero and negative core speed
// factors: the analysis divides by the speed, so any of them would poison
// every scaled duration.
func checkDecodedSpeed(path string, v float64) *DecodeError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &DecodeError{Path: path, Msg: "speed is not a finite number"}
	}
	if v <= 0 {
		return &DecodeError{Path: path, Msg: "speed must be positive"}
	}
	return nil
}

// checkDecodedPower rejects NaN, infinite and negative power parameters.
func checkDecodedPower(path string, v float64) *DecodeError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &DecodeError{Path: path, Msg: "power is not a finite number"}
	}
	if v < 0 {
		return &DecodeError{Path: path, Msg: "power must be non-negative"}
	}
	return nil
}
