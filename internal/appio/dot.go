package appio

import (
	"fmt"
	"io"

	"ftsched/internal/core"
	"ftsched/internal/model"
)

// WriteDOT renders the application's process graph in Graphviz DOT format:
// hard processes as double octagons annotated with their deadlines, soft
// processes as ellipses.
func WriteDOT(w io.Writer, app *model.Application) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n", app.Name()); err != nil {
		return err
	}
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		switch p.Kind {
		case model.Hard:
			if _, err := fmt.Fprintf(w,
				"  %q [shape=doubleoctagon, label=\"%s\\nw=%d d=%d\"];\n",
				p.Name, p.Name, p.WCET, p.Deadline); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w,
				"  %q [shape=ellipse, label=\"%s\\nw=%d\"];\n",
				p.Name, p.Name, p.WCET); err != nil {
				return err
			}
		}
	}
	for id := 0; id < app.N(); id++ {
		from := app.Proc(model.ProcessID(id)).Name
		for _, s := range app.Succs(model.ProcessID(id)) {
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", from, app.Proc(s).Name); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteTreeDOT renders a quasi-static tree: one node per schedule, one edge
// per switching arc, labelled with the guarded process, the arc kind and
// the completion-time interval.
func WriteTreeDOT(w io.Writer, tree *core.Tree) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n",
		tree.App.Name()+"-tree"); err != nil {
		return err
	}
	for id := range tree.Nodes {
		n := &tree.Nodes[id]
		if _, err := fmt.Fprintf(w, "  S%d [label=\"S%d (k=%d)\\n%s\"];\n",
			id, id, n.KRem, n.Schedule.Format(tree.App)); err != nil {
			return err
		}
	}
	for id := range tree.Nodes {
		n := &tree.Nodes[id]
		for _, a := range tree.NodeArcs(core.NodeID(id)) {
			proc := tree.App.Proc(n.Schedule.Entries[a.Pos].Proc).Name
			if _, err := fmt.Fprintf(w, "  S%d -> S%d [label=\"%s %s [%d,%d]\"];\n",
				id, a.Child, proc, a.Kind, a.Lo, a.Hi); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
