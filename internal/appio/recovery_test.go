package appio

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// TestApplicationRecoveryRoundTrip: every recovery model survives the
// application JSON unchanged, and the canonical model writes no recovery
// member at all — the golden fixture must stay byte-identical.
func TestApplicationRecoveryRoundTrip(t *testing.T) {
	base := apps.Fig1()
	for _, m := range []model.RecoveryModel{
		model.RestartModel(25),
		model.RestartModel(0),
		model.CheckpointModel(40, 3, 7),
		model.CheckpointModel(40, 0, 0),
	} {
		app, err := base.WithRecovery(m)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeApplication(&buf, app); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeApplication(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v\n%s", m, err, buf.String())
		}
		if back.Recovery() != m {
			t.Errorf("round trip changed the model: %v -> %v", m, back.Recovery())
		}
		// Encoding is canonical: a second pass is byte-identical.
		var again bytes.Buffer
		if err := EncodeApplication(&again, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Errorf("%v: re-encoding is not byte-identical", m)
		}
	}

	// The canonical application's encoding carries neither a recovery nor a
	// muZero member, so the pre-recovery golden fixture decodes and
	// re-encodes byte-identically.
	golden, err := os.ReadFile("testdata/fig1_app.json")
	if err != nil {
		t.Fatal(err)
	}
	app, err := DecodeApplication(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := EncodeApplication(&out, app); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Error("canonical golden fixture no longer re-encodes byte-identically")
	}
	if bytes.Contains(out.Bytes(), []byte("recovery")) || bytes.Contains(out.Bytes(), []byte("muZero")) {
		t.Error("canonical encoding leaks recovery/muZero members")
	}
}

// TestApplicationMuZeroRoundTrip: an explicit µ=0 survives the JSON round
// trip (the muZero flag), and muZero contradicting a non-zero µ is a typed
// decode error.
func TestApplicationMuZeroRoundTrip(t *testing.T) {
	a := model.NewApplication("mu0", 100, 1, 15)
	a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 50, MuExplicit: true})
	p2 := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 1, AET: 2, WCET: 3, Deadline: 60})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"muZero": true`)) {
		t.Fatalf("explicit µ=0 not encoded: %s", buf.String())
	}
	back, err := DecodeApplication(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.MuOf(0); got != 0 {
		t.Errorf("MuOf(A) after round trip = %d, want the explicit 0", got)
	}
	if got := back.MuOf(p2); got != 15 {
		t.Errorf("MuOf(B) after round trip = %d, want the default 15", got)
	}

	const bad = `{"name":"x","period":10,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5,"mu":3,"muZero":true}],"edges":[]}`
	var de *DecodeError
	if _, err := DecodeApplication(strings.NewReader(bad)); !errors.As(err, &de) {
		t.Fatalf("muZero+mu: got %v, want *DecodeError", err)
	} else if !strings.Contains(de.Path, "muZero") {
		t.Errorf("error path %q does not name muZero", de.Path)
	}
}

// TestDecodeRecoveryErrors: adversarial recovery members are rejected with
// typed *DecodeError values naming the offending field.
func TestDecodeRecoveryErrors(t *testing.T) {
	const hdr = `{"name":"x","period":100,"k":1,"mu":1,"processes":[{"name":"A","kind":"hard","bcet":1,"aet":1,"wcet":1,"deadline":5}],"edges":[]`
	cases := []struct {
		name, body, path string
	}{
		{"unknown model", `,"recovery":{"model":"martian"}}`, "recovery.model"},
		{"negative latency", `,"recovery":{"model":"restart","latency":-1}}`, "recovery.latency"},
		{"overflow latency", `,"recovery":{"model":"restart","latency":1125899906842624}}`, "recovery.latency"},
		{"zero spacing", `,"recovery":{"model":"checkpoint"}}`, "recovery"},
		{"overhead at spacing", `,"recovery":{"model":"checkpoint","spacing":10,"overhead":10}}`, "recovery"},
		{"overflow rollback", `,"recovery":{"model":"checkpoint","spacing":10,"overhead":1,"rollback":1125899906842624}}`, "recovery.rollback"},
		{"reexec with params", `,"recovery":{"model":"re-execution","latency":3}}`, "recovery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeApplication(strings.NewReader(hdr + tc.body))
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("got %v (%T), want *DecodeError", err, err)
			}
			if de.Path != tc.path {
				t.Errorf("path = %q, want %q (err: %v)", de.Path, tc.path, de)
			}
		})
	}
}

// TestParseRecoverySpecErrors: the CLI spec parser funnels through the same
// typed validation.
func TestParseRecoverySpecErrors(t *testing.T) {
	for _, spec := range []string{
		"martian", "restart", "restart:x", "restart:-5", "restart:1:2",
		"checkpoint", "checkpoint:10", "checkpoint:10:2", "checkpoint:0:0:0",
		"checkpoint:10:10:0", "checkpoint:10:2:-1", "checkpoint:a:b:c",
	} {
		var de *DecodeError
		if _, err := ParseRecoverySpec(spec); !errors.As(err, &de) {
			t.Errorf("ParseRecoverySpec(%q) = %v, want *DecodeError", spec, err)
		}
	}
	for spec, want := range map[string]model.RecoveryModel{
		"":                    model.ReExecutionModel(),
		"reexec":              model.ReExecutionModel(),
		"re-execution":        model.ReExecutionModel(),
		"restart:25":          model.RestartModel(25),
		"restart:0":           model.RestartModel(0),
		" checkpoint:40:3:7 ": model.CheckpointModel(40, 3, 7),
	} {
		got, err := ParseRecoverySpec(spec)
		if err != nil || got != want {
			t.Errorf("ParseRecoverySpec(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
}

// TestTreeCompactRecovery: trees of recovering applications persist as v4
// and refuse to bind across model changes; canonical trees never mention
// the format.
func TestTreeCompactRecovery(t *testing.T) {
	base := apps.Fig1()
	cp := model.CheckpointModel(40, 3, 7)
	app, err := base.WithRecovery(cp)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(compactTreeFormatV4)) {
		t.Fatalf("recovering tree not written as v4: %.80s", buf.String())
	}
	back, err := DecodeTree(bytes.NewReader(buf.Bytes()), app)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyTree(back); err != nil {
		t.Fatal(err)
	}
	// Binding to the canonical application, or to a different model, fails.
	var de *DecodeError
	if _, err := DecodeTree(bytes.NewReader(buf.Bytes()), base); !errors.As(err, &de) {
		t.Fatalf("v4 tree bound to a canonical application: %v", err)
	}
	other, err := base.WithRecovery(model.RestartModel(25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTree(bytes.NewReader(buf.Bytes()), other); !errors.As(err, &de) {
		t.Fatalf("v4 tree bound across recovery models: %v", err)
	}
	// The v1 JSON format predates recovery: both directions refuse.
	if err := EncodeTree(&bytes.Buffer{}, tree); err == nil {
		t.Fatal("v1 encoder accepted a recovering tree")
	}
	v1, err := os.ReadFile("testdata/fig1_tree_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTree(bytes.NewReader(v1), app); !errors.As(err, &de) {
		t.Fatalf("v1 tree bound to a recovering application: %v", err)
	}
	// A canonical tree still writes the old format, byte-identically with
	// the golden fixture's encoding version.
	ctree, err := core.FTQS(base, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeTreeCompact(&buf, ctree); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(compactTreeFormatV4)) || bytes.Contains(buf.Bytes(), []byte(`"recovery"`)) {
		t.Error("canonical tree encoding mentions v4/recovery")
	}
}
