// Package appio serialises applications, schedules and quasi-static trees:
// a JSON interchange format for applications (used by the command-line
// tools) and Graphviz DOT renderings of process graphs and trees.
package appio

import (
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// jsonApp is the on-disk application format.
type jsonApp struct {
	Name      string        `json:"name"`
	Period    model.Time    `json:"period"`
	K         int           `json:"k"`
	Mu        model.Time    `json:"mu"`
	Processes []jsonProcess `json:"processes"`
	Edges     [][2]string   `json:"edges"`
}

type jsonProcess struct {
	Name     string       `json:"name"`
	Kind     string       `json:"kind"` // "hard" | "soft"
	BCET     model.Time   `json:"bcet"`
	AET      model.Time   `json:"aet"`
	WCET     model.Time   `json:"wcet"`
	Deadline model.Time   `json:"deadline,omitempty"`
	Mu       model.Time   `json:"mu,omitempty"`
	Release  model.Time   `json:"release,omitempty"`
	Utility  *jsonUtility `json:"utility,omitempty"`
}

type jsonUtility struct {
	Mode   string      `json:"mode"` // "step" | "linear"
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	T model.Time `json:"t"`
	V float64    `json:"v"`
}

// EncodeApplication writes the application as JSON. Soft utility functions
// must be tabulated (utility.Table, the only kind the library constructs
// for persistent applications); wrapped functions (Shifted/Scaled) are
// rejected because hyper-period expansions are derived data.
func EncodeApplication(w io.Writer, app *model.Application) error {
	ja := jsonApp{
		Name:   app.Name(),
		Period: app.Period(),
		K:      app.K(),
		Mu:     app.Mu(),
	}
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		jp := jsonProcess{
			Name:    p.Name,
			BCET:    p.BCET,
			AET:     p.AET,
			WCET:    p.WCET,
			Mu:      p.Mu,
			Release: p.Release,
		}
		switch p.Kind {
		case model.Hard:
			jp.Kind = "hard"
			jp.Deadline = p.Deadline
		case model.Soft:
			jp.Kind = "soft"
			tb, ok := p.Utility.(*utility.Table)
			if !ok {
				return fmt.Errorf("appio: process %s: only tabulated utility functions can be encoded (got %T)",
					p.Name, p.Utility)
			}
			ju := &jsonUtility{Mode: "step"}
			if tb.Mode() == utility.Linear {
				ju.Mode = "linear"
			}
			for _, pt := range tb.Points() {
				ju.Points = append(ju.Points, jsonPoint{T: pt.T, V: pt.V})
			}
			jp.Utility = ju
		}
		ja.Processes = append(ja.Processes, jp)
	}
	for id := 0; id < app.N(); id++ {
		from := app.Proc(model.ProcessID(id)).Name
		for _, s := range app.Succs(model.ProcessID(id)) {
			ja.Edges = append(ja.Edges, [2]string{from, app.Proc(s).Name})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ja)
}

// DecodeApplication reads a JSON application and validates it.
func DecodeApplication(r io.Reader) (*model.Application, error) {
	var ja jsonApp
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ja); err != nil {
		return nil, fmt.Errorf("appio: %w", err)
	}
	app := model.NewApplication(ja.Name, ja.Period, ja.K, ja.Mu)
	ids := make(map[string]model.ProcessID, len(ja.Processes))
	for _, jp := range ja.Processes {
		p := model.Process{
			Name:    jp.Name,
			BCET:    jp.BCET,
			AET:     jp.AET,
			WCET:    jp.WCET,
			Mu:      jp.Mu,
			Release: jp.Release,
		}
		switch jp.Kind {
		case "hard":
			p.Kind = model.Hard
			p.Deadline = jp.Deadline
		case "soft":
			p.Kind = model.Soft
			if jp.Utility == nil {
				return nil, fmt.Errorf("appio: soft process %s lacks a utility function", jp.Name)
			}
			mode := utility.Step
			switch jp.Utility.Mode {
			case "step", "":
			case "linear":
				mode = utility.Linear
			default:
				return nil, fmt.Errorf("appio: process %s: unknown utility mode %q", jp.Name, jp.Utility.Mode)
			}
			pts := make([]utility.Point, 0, len(jp.Utility.Points))
			for _, pt := range jp.Utility.Points {
				pts = append(pts, utility.Point{T: pt.T, V: pt.V})
			}
			tb, err := utility.NewTable(mode, pts...)
			if err != nil {
				return nil, fmt.Errorf("appio: process %s: %w", jp.Name, err)
			}
			p.Utility = tb
		default:
			return nil, fmt.Errorf("appio: process %s: unknown kind %q", jp.Name, jp.Kind)
		}
		if _, dup := ids[jp.Name]; dup {
			return nil, fmt.Errorf("appio: duplicate process %q", jp.Name)
		}
		ids[jp.Name] = app.AddProcess(p)
	}
	for _, e := range ja.Edges {
		from, ok := ids[e[0]]
		if !ok {
			return nil, fmt.Errorf("appio: edge references unknown process %q", e[0])
		}
		to, ok := ids[e[1]]
		if !ok {
			return nil, fmt.Errorf("appio: edge references unknown process %q", e[1])
		}
		if err := app.AddEdge(from, to); err != nil {
			return nil, fmt.Errorf("appio: %w", err)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("appio: %w", err)
	}
	return app, nil
}
