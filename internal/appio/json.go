// Package appio serialises applications, schedules and quasi-static trees:
// a JSON interchange format for applications (used by the command-line
// tools) and Graphviz DOT renderings of process graphs and trees.
package appio

import (
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// jsonApp is the on-disk application format. Platform and Mapping are
// omitted for the canonical single-core model, so pre-platform files
// round-trip byte-identically.
type jsonApp struct {
	Name      string        `json:"name"`
	Period    model.Time    `json:"period"`
	K         int           `json:"k"`
	Mu        model.Time    `json:"mu"`
	Processes []jsonProcess `json:"processes"`
	Edges     [][2]string   `json:"edges"`
	Platform  []jsonCore    `json:"platform,omitempty"`
	Mapping   []jsonMapping `json:"mapping,omitempty"`
	Recovery  *jsonRecovery `json:"recovery,omitempty"`
}

// jsonCore is one core of a heterogeneous platform.
type jsonCore struct {
	Name        string  `json:"name"`
	Speed       float64 `json:"speed"`
	PowerActive float64 `json:"powerActive"`
	PowerIdle   float64 `json:"powerIdle"`
}

// jsonMapping assigns one process its primary and recovery cores, by name.
type jsonMapping struct {
	Proc     string `json:"proc"`
	Core     string `json:"core"`
	Recovery string `json:"recovery"`
}

type jsonProcess struct {
	Name     string       `json:"name"`
	Kind     string       `json:"kind"` // "hard" | "soft"
	BCET     model.Time   `json:"bcet"`
	AET      model.Time   `json:"aet"`
	WCET     model.Time   `json:"wcet"`
	Deadline model.Time   `json:"deadline,omitempty"`
	Mu       model.Time   `json:"mu,omitempty"`
	MuZero   bool         `json:"muZero,omitempty"` // explicit µ=0 (fault-free recovery), distinct from "inherit"
	Release  model.Time   `json:"release,omitempty"`
	Utility  *jsonUtility `json:"utility,omitempty"`
}

type jsonUtility struct {
	Mode   string      `json:"mode"` // "step" | "linear"
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	T model.Time `json:"t"`
	V float64    `json:"v"`
}

// EncodeApplication writes the application as JSON. Soft utility functions
// must be tabulated (utility.Table, the only kind the library constructs
// for persistent applications); wrapped functions (Shifted/Scaled) are
// rejected because hyper-period expansions are derived data.
func EncodeApplication(w io.Writer, app *model.Application) error {
	ja := jsonApp{
		Name:   app.Name(),
		Period: app.Period(),
		K:      app.K(),
		Mu:     app.Mu(),
	}
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		jp := jsonProcess{
			Name:    p.Name,
			BCET:    p.BCET,
			AET:     p.AET,
			WCET:    p.WCET,
			Mu:      p.Mu,
			MuZero:  p.MuExplicit && p.Mu == 0,
			Release: p.Release,
		}
		switch p.Kind {
		case model.Hard:
			jp.Kind = "hard"
			jp.Deadline = p.Deadline
		case model.Soft:
			jp.Kind = "soft"
			tb, ok := p.Utility.(*utility.Table)
			if !ok {
				return fmt.Errorf("appio: process %s: only tabulated utility functions can be encoded (got %T)",
					p.Name, p.Utility)
			}
			ju := &jsonUtility{Mode: "step"}
			if tb.Mode() == utility.Linear {
				ju.Mode = "linear"
			}
			for _, pt := range tb.Points() {
				ju.Points = append(ju.Points, jsonPoint{T: pt.T, V: pt.V})
			}
			jp.Utility = ju
		}
		ja.Processes = append(ja.Processes, jp)
	}
	for id := 0; id < app.N(); id++ {
		from := app.Proc(model.ProcessID(id)).Name
		for _, s := range app.Succs(model.ProcessID(id)) {
			ja.Edges = append(ja.Edges, [2]string{from, app.Proc(s).Name})
		}
	}
	if app.HasPlatform() && !app.Platform().IsCanonical() {
		plat := app.Platform()
		for c := 0; c < plat.NCores(); c++ {
			cc := plat.Core(model.CoreID(c))
			ja.Platform = append(ja.Platform, jsonCore{
				Name: cc.Name, Speed: cc.Speed,
				PowerActive: cc.PowerActive, PowerIdle: cc.PowerIdle,
			})
		}
		for id := 0; id < app.N(); id++ {
			pid := model.ProcessID(id)
			ja.Mapping = append(ja.Mapping, jsonMapping{
				Proc:     app.Proc(pid).Name,
				Core:     plat.Core(app.CoreOf(pid)).Name,
				Recovery: plat.Core(app.RecoveryCoreOf(pid)).Name,
			})
		}
	}
	ja.Recovery = recoveryJSON(app.Recovery())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ja)
}

// decodePlatform validates and builds the platform of a decoded
// application; malformed speed/power values yield a *DecodeError naming
// the core and field.
func decodePlatform(cores []jsonCore) (*model.Platform, error) {
	built := make([]model.Core, len(cores))
	for i, jc := range cores {
		path := fmt.Sprintf("platform[%d]", i)
		if jc.Name == "" {
			return nil, &DecodeError{Path: path + ".name", Msg: "core name must be non-empty"}
		}
		if err := checkDecodedSpeed(path+".speed", jc.Speed); err != nil {
			return nil, err
		}
		if err := checkDecodedPower(path+".powerActive", jc.PowerActive); err != nil {
			return nil, err
		}
		if err := checkDecodedPower(path+".powerIdle", jc.PowerIdle); err != nil {
			return nil, err
		}
		built[i] = model.Core{Name: jc.Name, Speed: jc.Speed, PowerActive: jc.PowerActive, PowerIdle: jc.PowerIdle}
	}
	plat, err := model.NewPlatform(built...)
	if err != nil {
		return nil, &DecodeError{Path: "platform", Err: err}
	}
	return plat, nil
}

// applyPlatform attaches a decoded platform and mapping to a validated
// application. A missing mapping defaults to the deterministic
// model.BiasedMapping.
func applyPlatform(app *model.Application, cores []jsonCore, mapping []jsonMapping) (*model.Application, error) {
	if len(cores) == 0 {
		if len(mapping) > 0 {
			return nil, &DecodeError{Path: "mapping", Msg: "mapping requires a platform"}
		}
		return app, nil
	}
	plat, err := decodePlatform(cores)
	if err != nil {
		return nil, err
	}
	coreIDs := make(map[string]model.CoreID, plat.NCores())
	for c := 0; c < plat.NCores(); c++ {
		coreIDs[plat.Core(model.CoreID(c)).Name] = model.CoreID(c)
	}
	m := model.BiasedMapping(app, plat)
	for i, jm := range mapping {
		path := fmt.Sprintf("mapping[%d]", i)
		pid := app.IDByName(jm.Proc)
		if pid == model.NoProcess {
			return nil, &DecodeError{Path: path + ".proc", Msg: fmt.Sprintf("unknown process %q", jm.Proc)}
		}
		pc, ok := coreIDs[jm.Core]
		if !ok {
			return nil, &DecodeError{Path: path + ".core", Msg: fmt.Sprintf("unknown core %q", jm.Core)}
		}
		rc, ok := coreIDs[jm.Recovery]
		if !ok {
			return nil, &DecodeError{Path: path + ".recovery", Msg: fmt.Sprintf("unknown core %q", jm.Recovery)}
		}
		m.Primary[pid] = pc
		m.Recovery[pid] = rc
	}
	mapped, err := app.WithPlatform(plat, m)
	if err != nil {
		return nil, &DecodeError{Path: "mapping", Err: err}
	}
	return mapped, nil
}

// DecodeApplication reads a JSON application and validates it.
func DecodeApplication(r io.Reader) (*model.Application, error) {
	var ja jsonApp
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ja); err != nil {
		return nil, fmt.Errorf("appio: %w", err)
	}
	app := model.NewApplication(ja.Name, ja.Period, ja.K, ja.Mu)
	ids := make(map[string]model.ProcessID, len(ja.Processes))
	for _, jp := range ja.Processes {
		p := model.Process{
			Name:       jp.Name,
			BCET:       jp.BCET,
			AET:        jp.AET,
			WCET:       jp.WCET,
			Mu:         jp.Mu,
			MuExplicit: jp.MuZero,
			Release:    jp.Release,
		}
		if jp.MuZero && jp.Mu != 0 {
			return nil, &DecodeError{Path: fmt.Sprintf("processes[%s].muZero", jp.Name),
				Msg: "muZero requires mu to be absent or 0"}
		}
		switch jp.Kind {
		case "hard":
			p.Kind = model.Hard
			p.Deadline = jp.Deadline
		case "soft":
			p.Kind = model.Soft
			if jp.Utility == nil {
				return nil, fmt.Errorf("appio: soft process %s lacks a utility function", jp.Name)
			}
			mode := utility.Step
			switch jp.Utility.Mode {
			case "step", "":
			case "linear":
				mode = utility.Linear
			default:
				return nil, fmt.Errorf("appio: process %s: unknown utility mode %q", jp.Name, jp.Utility.Mode)
			}
			pts := make([]utility.Point, 0, len(jp.Utility.Points))
			for _, pt := range jp.Utility.Points {
				pts = append(pts, utility.Point{T: pt.T, V: pt.V})
			}
			tb, err := utility.NewTable(mode, pts...)
			if err != nil {
				return nil, fmt.Errorf("appio: process %s: %w", jp.Name, err)
			}
			p.Utility = tb
		default:
			return nil, fmt.Errorf("appio: process %s: unknown kind %q", jp.Name, jp.Kind)
		}
		if _, dup := ids[jp.Name]; dup {
			return nil, fmt.Errorf("appio: duplicate process %q", jp.Name)
		}
		ids[jp.Name] = app.AddProcess(p)
	}
	for _, e := range ja.Edges {
		from, ok := ids[e[0]]
		if !ok {
			return nil, fmt.Errorf("appio: edge references unknown process %q", e[0])
		}
		to, ok := ids[e[1]]
		if !ok {
			return nil, fmt.Errorf("appio: edge references unknown process %q", e[1])
		}
		if err := app.AddEdge(from, to); err != nil {
			return nil, fmt.Errorf("appio: %w", err)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("appio: %w", err)
	}
	app, err := applyPlatform(app, ja.Platform, ja.Mapping)
	if err != nil {
		return nil, err
	}
	return applyRecovery(app, ja.Recovery)
}
