package appio

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/sim"
)

// heteroPlatform is the two-core platform the experiments use: a low-power
// core for primaries and a 2x high-performance core for recoveries.
func heteroPlatform(tb testing.TB) *model.Platform {
	tb.Helper()
	plat, err := model.NewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return plat
}

// mappedFig1 is the Fig.1 application bound to the heterogeneous platform
// with the deterministic biased mapping.
func mappedFig1(tb testing.TB) *model.Application {
	tb.Helper()
	app := apps.Fig1()
	plat := heteroPlatform(tb)
	mapped, err := app.WithPlatform(plat, model.BiasedMapping(app, plat))
	if err != nil {
		tb.Fatal(err)
	}
	return mapped
}

// TestMappedApplicationRoundTrip: the JSON platform/mapping fields
// reconstruct the heterogeneous application exactly.
func TestMappedApplicationRoundTrip(t *testing.T) {
	app := mappedFig1(t)
	var buf bytes.Buffer
	if err := EncodeApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"platform"`) || !strings.Contains(buf.String(), `"mapping"`) {
		t.Fatalf("mapped application encoding lacks platform/mapping fields:\n%s", buf.String())
	}
	back, err := DecodeApplication(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasPlatform() || !back.Platform().Equal(app.Platform()) {
		t.Fatalf("platform changed: %v vs %v", back.Platform(), app.Platform())
	}
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if back.CoreOf(pid) != app.CoreOf(pid) || back.RecoveryCoreOf(pid) != app.RecoveryCoreOf(pid) {
			t.Errorf("process %d mapping changed: [%d %d] vs [%d %d]", id,
				back.CoreOf(pid), back.RecoveryCoreOf(pid), app.CoreOf(pid), app.RecoveryCoreOf(pid))
		}
	}
	// The canonical application must keep encoding without the new fields.
	buf.Reset()
	if err := EncodeApplication(&buf, apps.Fig1()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "platform") {
		t.Error("canonical application encoding grew a platform field")
	}
}

// TestTreeV3RoundTrip: trees of mapped applications persist in the v3
// format carrying the platform, and reconstruct exactly.
func TestTreeV3RoundTrip(t *testing.T) {
	app := mappedFig1(t)
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), compactTreeFormatV3) {
		t.Fatalf("mapped tree did not encode as v3:\n%.200s", buf.String())
	}
	back, err := DecodeTree(bytes.NewReader(buf.Bytes()), app)
	if err != nil {
		t.Fatal(err)
	}
	if !treesIdentical(tree, back) {
		t.Error("v3 round trip changed the tree")
	}
	if err := core.VerifyTree(back); err != nil {
		t.Errorf("loaded v3 tree fails verification: %v", err)
	}
}

// TestTreePlatformContract: a tree binds only to an application with the
// same platform and mapping it was synthesised for — every mismatch is a
// typed rejection, because guard bounds bake in per-core scaled timing.
func TestTreePlatformContract(t *testing.T) {
	mapped := mappedFig1(t)
	canon := apps.Fig1()

	mtree, err := core.FTQS(mapped, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := EncodeTreeCompact(&v3, mtree); err != nil {
		t.Fatal(err)
	}
	ctree, err := core.FTQS(canon, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := EncodeTree(&v1, ctree); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTreeCompact(&v2, ctree); err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		data string
		app  *model.Application
	}{
		"v1 onto mapped app":   {v1.String(), mapped},
		"v2 onto mapped app":   {v2.String(), mapped},
		"v3 onto canonical":    {v3.String(), canon},
		"v2 carrying platform": {strings.Replace(v3.String(), compactTreeFormatV3, compactTreeFormat, 1), mapped},
		"v3 without platform":  {strings.Replace(v2.String(), compactTreeFormat, compactTreeFormatV3, 1), mapped},
		"tampered mapping":     {strings.Replace(v3.String(), `"mapping":[[0,1],[0,1],[0,1]]`, `"mapping":[[0,1],[1,1],[0,1]]`, 1), mapped},
		"core out of range":    {strings.Replace(v3.String(), `"mapping":[[0,1],[0,1],[0,1]]`, `"mapping":[[0,1],[0,7],[0,1]]`, 1), mapped},
		"short mapping":        {strings.Replace(v3.String(), `"mapping":[[0,1],[0,1],[0,1]]`, `"mapping":[[0,1]]`, 1), mapped},
		"bad platform speed":   {strings.Replace(v3.String(), `"speed":2`, `"speed":-2`, 1), mapped},
	}
	for name, tc := range cases {
		if _, err := DecodeTree(strings.NewReader(tc.data), tc.app); err == nil {
			t.Errorf("%s: decode should fail", name)
		} else if de := new(DecodeError); !asDecodeError(err, &de) {
			t.Errorf("%s: rejection is %T (%v), want *DecodeError", name, err, err)
		}
	}

	// The v1 encoder has no platform notion and must refuse mapped trees.
	if err := EncodeTree(&bytes.Buffer{}, mtree); err == nil {
		t.Error("EncodeTree accepted a mapped tree")
	}
}

func asDecodeError(err error, target **DecodeError) bool {
	de, ok := err.(*DecodeError)
	if ok {
		*target = de
	}
	return ok
}

// TestGoldenV2Tree: the checked-in v2 file (written by the pre-platform
// encoder) still decodes, matches a fresh synthesis, and today's encoder
// reproduces it byte for byte on the canonical single-core application.
func TestGoldenV2Tree(t *testing.T) {
	data, err := os.ReadFile("testdata/fig1_tree_v2.json")
	if err != nil {
		t.Fatal(err)
	}
	app := apps.Fig1()
	tree, err := DecodeTree(bytes.NewReader(data), app)
	if err != nil {
		t.Fatalf("golden v2 file no longer decodes: %v", err)
	}
	if err := core.VerifyTree(tree); err != nil {
		t.Fatalf("golden tree fails verification: %v", err)
	}
	fresh, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !treesIdentical(tree, fresh) {
		t.Error("golden v2 tree diverged from fresh synthesis")
	}
	var out bytes.Buffer
	if err := EncodeTreeCompact(&out, fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("v2 encoding of the canonical tree is not byte-identical to the pre-platform golden")
	}
}

// TestGoldenApplication: the checked-in pre-platform application file
// round-trips byte-identically.
func TestGoldenApplication(t *testing.T) {
	data, err := os.ReadFile("testdata/fig1_app.json")
	if err != nil {
		t.Fatal(err)
	}
	app, err := DecodeApplication(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden application no longer decodes: %v", err)
	}
	if app.HasPlatform() {
		t.Error("pre-platform file decoded with an explicit platform")
	}
	var out bytes.Buffer
	if err := EncodeApplication(&out, app); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("re-encoding the golden application is not byte-identical")
	}
}

// TestGoldenMCStats: the Monte-Carlo statistics of the golden tree pinned
// before the platform refactor — every field to full float precision. Any
// drift here means the single-core semantics changed.
func TestGoldenMCStats(t *testing.T) {
	data, err := os.ReadFile("testdata/fig1_mcstats.txt")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(apps.Fig1(), core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.MonteCarlo(tree, sim.MCConfig{Scenarios: 2000, Faults: 1, Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("mean=%.17g\nstd=%.17g\nmin=%.17g\nmax=%.17g\np05=%.17g\np50=%.17g\np95=%.17g\nhard=%d\n",
		stats.MeanUtility, stats.StdDev, stats.MinUtility, stats.MaxUtility,
		stats.P05, stats.P50, stats.P95, stats.HardViolations)
	if got != string(data) {
		t.Errorf("Monte-Carlo statistics drifted from the pre-platform golden:\n--- got ---\n%s--- want ---\n%s", got, data)
	}
}
