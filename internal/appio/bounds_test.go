package appio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// decodeErrPath decodes the input expecting a typed *DecodeError and
// returns its position path.
func decodeErrPath(t *testing.T, input string) string {
	t.Helper()
	_, err := DecodeTree(strings.NewReader(input), apps.Fig1())
	if err == nil {
		t.Fatal("malformed tree accepted")
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T (%v), want *DecodeError", err, err)
	}
	return de.Path
}

// TestDecodeTreeBounds: out-of-range times, non-finite gains and negative
// budgets in either tree encoding must be rejected with a typed error
// naming the offending position.
func TestDecodeTreeBounds(t *testing.T) {
	const v1Head = `{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1"}],`
	const v2Head = `{"format":"ftsched-tree/v2","app":"paper-fig1","k":1,"procs":["P1"],`
	for _, tc := range []struct {
		name, input, wantPath string
	}{
		{"v1 negative lo",
			v1Head + `"arcs":[{"pos":0,"kind":"completion","lo":-5,"hi":10,"child":0}]}]}`,
			"nodes[0].arcs[0].lo"},
		{"v1 overflowing hi",
			v1Head + `"arcs":[{"pos":0,"kind":"completion","lo":0,"hi":99999999999999999,"child":0}]}]}`,
			"nodes[0].arcs[0].hi"},
		{"v1 negative recoveries",
			`{"app":"paper-fig1","k":1,"nodes":[{"id":0,"parent":-1,"entries":[{"proc":"P1","recoveries":-1}]}]}`,
			"nodes[0].entries[0].recoveries"},
		{"v1 dangling arc child",
			v1Head + `"arcs":[{"pos":0,"kind":"completion","lo":0,"hi":10,"child":9}]}]}`,
			"nodes[0].arcs[0].child"},
		{"v2 negative l",
			v2Head + `"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]],"nArcs":1}],"arcs":[{"p":0,"k":0,"l":-1,"h":5,"g":1,"c":0}]}`,
			"arcs[0].l"},
		{"v2 overflowing h",
			v2Head + `"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]],"nArcs":1}],"arcs":[{"p":0,"k":0,"l":0,"h":99999999999999999,"g":1,"c":0}]}`,
			"arcs[0].h"},
		{"v2 negative recoveries",
			v2Head + `"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,-3]]}]}`,
			"nodes[0].suffix[0]"},
		{"v2 unclaimed arcs",
			v2Head + `"nodes":[{"parent":-1,"kRem":1,"suffix":[[0,1]]}],"arcs":[{"p":0,"k":0,"l":0,"h":5,"g":1,"c":0}]}`,
			"arcs"},
		{"unsupported format",
			`{"format":"ftsched-tree/v9"}`,
			"format"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := decodeErrPath(t, tc.input); got != tc.wantPath {
				t.Errorf("error path = %q, want %q", got, tc.wantPath)
			}
		})
	}

	// NaN and Inf gains cannot appear in standard JSON, so the guard is
	// exercised directly.
	if err := checkDecodedGain("g", nanValue()); err == nil {
		t.Error("NaN gain accepted")
	}
}

func nanValue() float64 {
	zero := 0.0
	return zero / zero
}

// TestCounterexampleRoundTrip: an encoded counterexample decodes back to
// the same scenario and violation details, and the decoder rejects
// malformed files with typed position-carrying errors.
func TestCounterexampleRoundTrip(t *testing.T) {
	app := apps.Fig1()
	n := app.N()
	sc := runtime.Scenario{
		Durations: make([]model.Time, n),
		FaultsAt:  make([]int, n),
	}
	for id := 0; id < n; id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).BCET
	}
	p1 := app.IDByName("P1")
	sc.FaultsAt[p1] = 1
	sc.NFaults = 1

	ce := NewCounterexample(app, sc, p1, 200, []int{0, 2})
	var buf bytes.Buffer
	if err := EncodeCounterexample(&buf, ce); err != nil {
		t.Fatal(err)
	}
	back, decoded, err := DecodeCounterexample(&buf, app)
	if err != nil {
		t.Fatal(err)
	}
	if back.NFaults != 1 || back.FaultsAt[p1] != 1 {
		t.Errorf("faults lost in round trip: %+v", back)
	}
	for id := 0; id < n; id++ {
		if back.Durations[id] != sc.Durations[id] {
			t.Errorf("duration of process %d changed: %d != %d", id, back.Durations[id], sc.Durations[id])
		}
	}
	if decoded.Proc != "P1" || decoded.Completion != 200 || len(decoded.Path) != 2 {
		t.Errorf("violation details lost: %+v", decoded)
	}

	// Unmentioned processes default to WCET so hand-trimmed files replay.
	partial := `{"format":"ftsched-counterexample/v1","app":"paper-fig1","nFaults":0,"durations":{}}`
	wcets, _, err := DecodeCounterexample(strings.NewReader(partial), app)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		if want := app.Proc(model.ProcessID(id)).WCET; wcets.Durations[id] != want {
			t.Errorf("default duration of %d = %d, want WCET %d", id, wcets.Durations[id], want)
		}
	}

	for _, tc := range []struct {
		name, input string
	}{
		{"bad format", `{"format":"nope","app":"paper-fig1","nFaults":0,"durations":{}}`},
		{"wrong app", `{"format":"ftsched-counterexample/v1","app":"other","nFaults":0,"durations":{}}`},
		{"unknown process", `{"format":"ftsched-counterexample/v1","app":"paper-fig1","nFaults":0,"durations":{"ZZ":5}}`},
		{"negative fault", `{"format":"ftsched-counterexample/v1","app":"paper-fig1","nFaults":0,"faultsAt":{"P1":-1},"durations":{}}`},
		{"inconsistent nFaults", `{"format":"ftsched-counterexample/v1","app":"paper-fig1","nFaults":3,"faultsAt":{"P1":1},"durations":{}}`},
		{"overflowing duration", `{"format":"ftsched-counterexample/v1","app":"paper-fig1","nFaults":0,"durations":{"P1":99999999999999999}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeCounterexample(strings.NewReader(tc.input), app)
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("err = %T (%v), want *DecodeError", err, err)
			}
		})
	}
}
