package appio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file persists quasi-static trees. A deployment synthesises the tree
// off-line (host tooling), stores it, and the embedded online scheduler
// loads the flat tables; DecodeTree re-validates structure against the
// application and the caller should run core.VerifyTree afterwards for the
// full safety audit (the ftsched CLI does).
//
// Four formats exist: the original self-describing JSON (EncodeTree, kept
// byte-for-byte stable for existing files), the compact v2 encoding in
// compact.go, which mirrors the in-memory arena, v3 — v2 plus the
// platform and process→core mapping for heterogeneous deployments — and
// v4, which additionally carries the recovery model. DecodeTree detects
// the format from the leading "format" field; v1 and v2 files bind only
// to canonically-mapped (single-core) applications, because a tree's
// guard bounds bake in the platform's scaled timing, and only v4 files
// bind to applications with a non-canonical recovery model, because the
// bounds likewise bake in per-attempt and per-fault recovery costs.

type jsonTree struct {
	App   string     `json:"app"`
	K     int        `json:"k"`
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	ID             int         `json:"id"`
	Parent         int         `json:"parent"` // -1 for the root
	SwitchPos      int         `json:"switchPos"`
	KRem           int         `json:"kRem"`
	Depth          int         `json:"depth"`
	DroppedOnFault string      `json:"droppedOnFault,omitempty"`
	Entries        []jsonEntry `json:"entries"`
	Arcs           []jsonArc   `json:"arcs,omitempty"`
}

type jsonEntry struct {
	Proc       string `json:"proc"`
	Recoveries int    `json:"recoveries,omitempty"`
}

type jsonArc struct {
	Pos   int        `json:"pos"`
	Kind  string     `json:"kind"`
	Lo    model.Time `json:"lo"`
	Hi    model.Time `json:"hi"`
	Gain  float64    `json:"gain"`
	Child int        `json:"child"`
}

func kindString(k core.ArcKind) string { return k.String() }

func kindFromString(s string) (core.ArcKind, error) {
	switch s {
	case "completion":
		return core.Completion, nil
	case "fault-recovered":
		return core.FaultRecovered, nil
	case "fault-dropped":
		return core.FaultDropped, nil
	default:
		return 0, fmt.Errorf("appio: unknown arc kind %q", s)
	}
}

// EncodeTree writes a quasi-static tree as JSON. Process references are by
// name, so the file pairs with the application's JSON encoding. The v1
// format has no platform notion, so trees of non-canonically-mapped
// applications must use EncodeTreeCompact (which emits v3).
func EncodeTree(w io.Writer, tree *core.Tree) error {
	app := tree.App
	if app.HasPlatform() && !app.Platform().IsCanonical() {
		return fmt.Errorf("appio: the v1 tree format cannot carry platform %s; use EncodeTreeCompact", app.Platform())
	}
	if app.HasRecovery() {
		return fmt.Errorf("appio: the v1 tree format cannot carry recovery model %s; use EncodeTreeCompact", app.Recovery())
	}
	jt := jsonTree{App: app.Name(), K: app.K()}
	for id := range tree.Nodes {
		n := &tree.Nodes[id]
		jn := jsonNode{
			ID:        id,
			Parent:    -1,
			SwitchPos: n.SwitchPos,
			KRem:      n.KRem,
			Depth:     n.Depth,
		}
		if n.Parent != core.NoNode {
			jn.Parent = int(n.Parent)
		}
		if n.DroppedOnFault != model.NoProcess {
			jn.DroppedOnFault = app.Proc(n.DroppedOnFault).Name
		}
		for _, e := range n.Schedule.Entries {
			jn.Entries = append(jn.Entries, jsonEntry{
				Proc:       app.Proc(e.Proc).Name,
				Recoveries: e.Recoveries,
			})
		}
		for _, a := range tree.NodeArcs(core.NodeID(id)) {
			jn.Arcs = append(jn.Arcs, jsonArc{
				Pos: a.Pos, Kind: kindString(a.Kind),
				Lo: a.Lo, Hi: a.Hi, Gain: a.Gain, Child: int(a.Child),
			})
		}
		jt.Nodes = append(jt.Nodes, jn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// DecodeTree reads a tree in either format and rebinds it to the
// application. Structural errors (unknown processes, dangling references,
// ID mismatches, out-of-range times, non-finite gains) are rejected here
// with a *DecodeError carrying the offending position; run core.VerifyTree
// on the result for the safety audit.
func DecodeTree(r io.Reader, app *model.Application) (*core.Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, &DecodeError{Msg: "reading tree", Err: err}
	}
	var probe struct {
		Format string `json:"format"`
	}
	// A best-effort probe: v1 files have no "format" member and leave the
	// probe empty; anything unparseable falls through to the full decoder
	// for a precise error.
	_ = json.Unmarshal(data, &probe)
	switch probe.Format {
	case "":
		return decodeTreeV1(data, app)
	case compactTreeFormat, compactTreeFormatV3, compactTreeFormatV4:
		return decodeTreeCompact(data, app)
	default:
		return nil, &DecodeError{Path: "format", Msg: fmt.Sprintf("unsupported tree format %q", probe.Format)}
	}
}

// treeBuilder collects per-node data during decoding and flattens it into
// the arena representation, normalising arcs into the canonical order.
type treeBuilder struct {
	nodes []core.Node
	arcs  [][]core.Arc
}

func (b *treeBuilder) build(app *model.Application) *core.Tree {
	total := 0
	for _, as := range b.arcs {
		total += len(as)
	}
	t := &core.Tree{
		App:   app,
		Nodes: b.nodes,
		Arcs:  make([]core.Arc, 0, total),
	}
	for i := range t.Nodes {
		core.SortArcs(b.arcs[i])
		t.Nodes[i].ArcStart = int32(len(t.Arcs))
		t.Arcs = append(t.Arcs, b.arcs[i]...)
		t.Nodes[i].ArcEnd = int32(len(t.Arcs))
	}
	return t
}

func decodeTreeV1(data []byte, app *model.Application) (*core.Tree, error) {
	if app.HasPlatform() && !app.Platform().IsCanonical() {
		return nil, &DecodeError{Msg: fmt.Sprintf("a v1 tree predates the application's platform (%s); re-synthesise for the mapped application", app.Platform())}
	}
	if app.HasRecovery() {
		return nil, &DecodeError{Msg: fmt.Sprintf("a v1 tree predates the application's recovery model (%s); re-synthesise for it", app.Recovery())}
	}
	var jt jsonTree
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, &DecodeError{Msg: "invalid tree JSON", Err: err}
	}
	if jt.App != app.Name() {
		return nil, &DecodeError{Path: "app", Msg: fmt.Sprintf("tree was synthesised for application %q, not %q", jt.App, app.Name())}
	}
	if jt.K != app.K() {
		return nil, &DecodeError{Path: "k", Msg: fmt.Sprintf("tree assumes k=%d, application has k=%d", jt.K, app.K())}
	}
	if len(jt.Nodes) == 0 {
		return nil, &DecodeError{Path: "nodes", Msg: "tree has no nodes"}
	}
	b := &treeBuilder{
		nodes: make([]core.Node, len(jt.Nodes)),
		arcs:  make([][]core.Arc, len(jt.Nodes)),
	}
	for i, jn := range jt.Nodes {
		if jn.ID != i {
			return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].id", i), Msg: fmt.Sprintf("carries ID %d; IDs must be dense and ordered", jn.ID)}
		}
		n := &b.nodes[i]
		n.SwitchPos = jn.SwitchPos
		n.KRem = jn.KRem
		n.Depth = jn.Depth
		n.DroppedOnFault = model.NoProcess
		n.Parent = core.NoNode
		if jn.DroppedOnFault != "" {
			id := app.IDByName(jn.DroppedOnFault)
			if id == model.NoProcess {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].droppedOnFault", i), Msg: fmt.Sprintf("unknown process %q", jn.DroppedOnFault)}
			}
			n.DroppedOnFault = id
		}
		entries := make([]schedule.Entry, 0, len(jn.Entries))
		for j, je := range jn.Entries {
			id := app.IDByName(je.Proc)
			if id == model.NoProcess {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].entries[%d].proc", i, j), Msg: fmt.Sprintf("unknown process %q", je.Proc)}
			}
			if je.Recoveries < 0 {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].entries[%d].recoveries", i, j), Msg: "negative recovery budget"}
			}
			entries = append(entries, schedule.Entry{Proc: id, Recoveries: je.Recoveries})
		}
		n.Schedule = &schedule.FSchedule{Entries: entries}
	}
	for i, jn := range jt.Nodes {
		n := &b.nodes[i]
		if jn.Parent >= 0 {
			if jn.Parent >= len(b.nodes) {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].parent", i), Msg: fmt.Sprintf("parent %d out of range", jn.Parent)}
			}
			n.Parent = core.NodeID(jn.Parent)
		} else if i != 0 {
			return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].parent", i), Msg: "no parent but not the root"}
		}
		for j, ja := range jn.Arcs {
			kind, err := kindFromString(ja.Kind)
			if err != nil {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].arcs[%d].kind", i, j), Msg: "unknown arc kind", Err: err}
			}
			if ja.Child < 0 || ja.Child >= len(b.nodes) {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].arcs[%d].child", i, j), Msg: fmt.Sprintf("arc child %d out of range", ja.Child)}
			}
			// Guard bounds may be inverted (trimming's disable marker) but
			// each endpoint must be an in-range time.
			if derr := checkDecodedTime(fmt.Sprintf("nodes[%d].arcs[%d].lo", i, j), ja.Lo); derr != nil {
				return nil, derr
			}
			if derr := checkDecodedTime(fmt.Sprintf("nodes[%d].arcs[%d].hi", i, j), ja.Hi); derr != nil {
				return nil, derr
			}
			if derr := checkDecodedGain(fmt.Sprintf("nodes[%d].arcs[%d].gain", i, j), ja.Gain); derr != nil {
				return nil, derr
			}
			b.arcs[i] = append(b.arcs[i], core.Arc{
				Pos: ja.Pos, Kind: kind, Lo: ja.Lo, Hi: ja.Hi,
				Gain: ja.Gain, Child: core.NodeID(ja.Child),
			})
		}
	}
	return b.build(app), nil
}
