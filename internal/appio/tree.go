package appio

import (
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file persists quasi-static trees. A deployment synthesises the tree
// off-line (host tooling), stores it, and the embedded online scheduler
// loads the flat tables; DecodeTree re-validates structure against the
// application and the caller should run core.VerifyTree afterwards for the
// full safety audit (the ftsched CLI does).

type jsonTree struct {
	App   string     `json:"app"`
	K     int        `json:"k"`
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	ID             int         `json:"id"`
	Parent         int         `json:"parent"` // -1 for the root
	SwitchPos      int         `json:"switchPos"`
	KRem           int         `json:"kRem"`
	Depth          int         `json:"depth"`
	DroppedOnFault string      `json:"droppedOnFault,omitempty"`
	Entries        []jsonEntry `json:"entries"`
	Arcs           []jsonArc   `json:"arcs,omitempty"`
}

type jsonEntry struct {
	Proc       string `json:"proc"`
	Recoveries int    `json:"recoveries,omitempty"`
}

type jsonArc struct {
	Pos   int        `json:"pos"`
	Kind  string     `json:"kind"`
	Lo    model.Time `json:"lo"`
	Hi    model.Time `json:"hi"`
	Gain  float64    `json:"gain"`
	Child int        `json:"child"`
}

func kindString(k core.ArcKind) string { return k.String() }

func kindFromString(s string) (core.ArcKind, error) {
	switch s {
	case "completion":
		return core.Completion, nil
	case "fault-recovered":
		return core.FaultRecovered, nil
	case "fault-dropped":
		return core.FaultDropped, nil
	default:
		return 0, fmt.Errorf("appio: unknown arc kind %q", s)
	}
}

// EncodeTree writes a quasi-static tree as JSON. Process references are by
// name, so the file pairs with the application's JSON encoding.
func EncodeTree(w io.Writer, tree *core.Tree) error {
	app := tree.App
	jt := jsonTree{App: app.Name(), K: app.K()}
	for _, n := range tree.Nodes {
		jn := jsonNode{
			ID:        n.ID,
			Parent:    -1,
			SwitchPos: n.SwitchPos,
			KRem:      n.KRem,
			Depth:     n.Depth,
		}
		if n.Parent != nil {
			jn.Parent = n.Parent.ID
		}
		if n.DroppedOnFault != model.NoProcess {
			jn.DroppedOnFault = app.Proc(n.DroppedOnFault).Name
		}
		for _, e := range n.Schedule.Entries {
			jn.Entries = append(jn.Entries, jsonEntry{
				Proc:       app.Proc(e.Proc).Name,
				Recoveries: e.Recoveries,
			})
		}
		for _, a := range n.Arcs {
			jn.Arcs = append(jn.Arcs, jsonArc{
				Pos: a.Pos, Kind: kindString(a.Kind),
				Lo: a.Lo, Hi: a.Hi, Gain: a.Gain, Child: a.Child.ID,
			})
		}
		jt.Nodes = append(jt.Nodes, jn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// DecodeTree reads a tree and rebinds it to the application. Structural
// errors (unknown processes, dangling references, ID mismatches) are
// rejected here; run core.VerifyTree on the result for the safety audit.
func DecodeTree(r io.Reader, app *model.Application) (*core.Tree, error) {
	var jt jsonTree
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("appio: %w", err)
	}
	if jt.App != app.Name() {
		return nil, fmt.Errorf("appio: tree was synthesised for application %q, not %q", jt.App, app.Name())
	}
	if jt.K != app.K() {
		return nil, fmt.Errorf("appio: tree assumes k=%d, application has k=%d", jt.K, app.K())
	}
	if len(jt.Nodes) == 0 {
		return nil, fmt.Errorf("appio: tree has no nodes")
	}
	nodes := make([]*core.Node, len(jt.Nodes))
	for i, jn := range jt.Nodes {
		if jn.ID != i {
			return nil, fmt.Errorf("appio: node %d carries ID %d; IDs must be dense and ordered", i, jn.ID)
		}
		n := &core.Node{
			ID:             jn.ID,
			SwitchPos:      jn.SwitchPos,
			KRem:           jn.KRem,
			Depth:          jn.Depth,
			DroppedOnFault: model.NoProcess,
		}
		if jn.DroppedOnFault != "" {
			id := app.IDByName(jn.DroppedOnFault)
			if id == model.NoProcess {
				return nil, fmt.Errorf("appio: node %d: unknown dropped process %q", i, jn.DroppedOnFault)
			}
			n.DroppedOnFault = id
		}
		entries := make([]schedule.Entry, 0, len(jn.Entries))
		for _, je := range jn.Entries {
			id := app.IDByName(je.Proc)
			if id == model.NoProcess {
				return nil, fmt.Errorf("appio: node %d: unknown process %q", i, je.Proc)
			}
			entries = append(entries, schedule.Entry{Proc: id, Recoveries: je.Recoveries})
		}
		n.Schedule = &schedule.FSchedule{Entries: entries}
		nodes[i] = n
	}
	for i, jn := range jt.Nodes {
		n := nodes[i]
		if jn.Parent >= 0 {
			if jn.Parent >= len(nodes) {
				return nil, fmt.Errorf("appio: node %d: parent %d out of range", i, jn.Parent)
			}
			n.Parent = nodes[jn.Parent]
		} else if i != 0 {
			return nil, fmt.Errorf("appio: node %d has no parent but is not the root", i)
		}
		for _, ja := range jn.Arcs {
			kind, err := kindFromString(ja.Kind)
			if err != nil {
				return nil, err
			}
			if ja.Child < 0 || ja.Child >= len(nodes) {
				return nil, fmt.Errorf("appio: node %d: arc child %d out of range", i, ja.Child)
			}
			n.Arcs = append(n.Arcs, core.Arc{
				Pos: ja.Pos, Kind: kind, Lo: ja.Lo, Hi: ja.Hi,
				Gain: ja.Gain, Child: nodes[ja.Child],
			})
		}
	}
	return &core.Tree{App: app, Root: nodes[0], Nodes: nodes}, nil
}
