package appio

import (
	"fmt"
	"io"
	"sort"

	"ftsched/internal/model"
	"ftsched/internal/sim"
)

// WriteGantt renders an execution trace (from sim.RunTrace) as a
// time-scaled ASCII Gantt chart: one row per process that appears in the
// trace, in first-start order.
//
//	#   executing
//	x   executing, attempt ends in a detected fault
//	.   recovery overhead µ
//	!   abandonment (soft process dropped at run time)
//	^   (footer row) schedule switch taken at this time
//
// width columns span [0, span]; pass span <= 0 to use the application
// period.
func WriteGantt(w io.Writer, app *model.Application, events []sim.TraceEvent, span model.Time, width int) error {
	if width < 20 {
		width = 72
	}
	if span <= 0 {
		span = app.Period()
	}
	if span <= 0 {
		return fmt.Errorf("appio: non-positive time span")
	}
	col := func(t model.Time) int {
		c := int(int64(t) * int64(width-1) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Collect per-process segments.
	type segment struct {
		from, to model.Time
		glyph    byte
	}
	segs := map[model.ProcessID][]segment{}
	order := []model.ProcessID{}
	seen := map[model.ProcessID]bool{}
	pendingStart := map[model.ProcessID]model.Time{}
	var switches []model.Time

	for i, ev := range events {
		switch ev.Kind {
		case sim.TraceStart:
			pendingStart[ev.Proc] = ev.At
			if !seen[ev.Proc] {
				seen[ev.Proc] = true
				order = append(order, ev.Proc)
			}
		case sim.TraceFault:
			segs[ev.Proc] = append(segs[ev.Proc], segment{pendingStart[ev.Proc], ev.At, 'x'})
		case sim.TraceRecovery:
			// The recovery glyph spans the per-fault overhead of the
			// application's recovery model (µ, restart latency, or
			// rollback cost); the re-run starts right after it.
			end := ev.At + app.RecoveryOverhead(ev.Proc)
			_ = i
			segs[ev.Proc] = append(segs[ev.Proc], segment{ev.At, end, '.'})
		case sim.TraceComplete:
			segs[ev.Proc] = append(segs[ev.Proc], segment{pendingStart[ev.Proc], ev.At, '#'})
		case sim.TraceAbandon:
			segs[ev.Proc] = append(segs[ev.Proc], segment{ev.At, ev.At, '!'})
		case sim.TraceSwitch:
			switches = append(switches, ev.At)
		}
	}

	// Longest name for alignment.
	nameW := 4
	for _, id := range order {
		if n := len(app.Proc(id).Name); n > nameW {
			nameW = n
		}
	}

	fmt.Fprintf(w, "%*s  0%*s%d\n", nameW, "", width-2-len(fmt.Sprint(span)), "", span)
	for _, id := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		ss := segs[id]
		sort.SliceStable(ss, func(a, b int) bool { return ss[a].from < ss[b].from })
		for _, s := range ss {
			a, b := col(s.from), col(s.to)
			if s.glyph == '!' {
				row[a] = '!'
				continue
			}
			for c := a; c <= b; c++ {
				row[c] = s.glyph
			}
		}
		p := app.Proc(id)
		marker := ' '
		if p.Kind == model.Hard {
			marker = '*'
		}
		if _, err := fmt.Fprintf(w, "%*s%c|%s|\n", nameW, p.Name, marker, row); err != nil {
			return err
		}
	}
	if len(switches) > 0 {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, t := range switches {
			row[col(t)] = '^'
		}
		if _, err := fmt.Fprintf(w, "%*s |%s| schedule switches\n", nameW, "", row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%*s  (* = hard process; # exec, x faulted attempt, . recovery, ! abandoned)\n", nameW, "")
	return err
}
