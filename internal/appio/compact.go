package appio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// compactTreeFormat tags the v2 tree encoding. The compact format mirrors
// the in-memory arena: processes are interned once in a name table and
// referenced by index, non-root nodes store only their suffix (the shared
// prefix is reconstructed from the parent, which always has a smaller ID),
// and the arcs live in one flat arena with per-node counts. On the paper's
// benchmarks the files are 3-6x smaller than the v1 encoding and decode
// without intermediate per-node allocations beyond the entry slices.
const compactTreeFormat = "ftsched-tree/v2"

// compactTreeFormatV3 tags the v3 tree encoding: the v2 layout plus the
// platform the tree was synthesised for and the process→core mapping.
// Trees of canonically-mapped (single-core) applications keep encoding as
// v2, byte-identical to the pre-platform format.
const compactTreeFormatV3 = "ftsched-tree/v3"

// compactTreeFormatV4 tags the v4 tree encoding: the v2/v3 layout plus the
// recovery model the tree's timing was synthesised under. Trees of
// canonical (re-execution) applications keep encoding as v2 or v3,
// byte-identical to the pre-recovery formats.
const compactTreeFormatV4 = "ftsched-tree/v4"

type compactTree struct {
	Format string        `json:"format"`
	App    string        `json:"app"`
	K      int           `json:"k"`
	Procs  []string      `json:"procs"`
	Nodes  []compactNode `json:"nodes"`
	Arcs   []compactArc  `json:"arcs,omitempty"`
	// Platform and Mapping are v3-only: the cores the tree's timing
	// assumes, and per name-table process the [primary, recovery] core
	// indices. Omitted (and required absent) in v2.
	Platform []jsonCore `json:"platform,omitempty"`
	Mapping  [][2]int   `json:"mapping,omitempty"`
	// Recovery is v4-only: the recovery model the tree's guard bounds and
	// recovery budgets assume. Omitted (and required absent) in v2/v3.
	Recovery *jsonRecovery `json:"recovery,omitempty"`
}

type compactNode struct {
	Parent    int `json:"parent"` // -1 for the root
	SwitchPos int `json:"sw,omitempty"`
	KRem      int `json:"kRem"`
	Depth     int `json:"d,omitempty"`
	// Drop is the name-table index of DroppedOnFault plus one; zero means
	// no process was assumed dropped.
	Drop int `json:"drop,omitempty"`
	// Suffix holds the entries from SwitchPos on as [procIndex, recoveries]
	// pairs; the root's suffix is its complete schedule.
	Suffix [][2]int `json:"suffix"`
	// NArcs is how many entries of the arc arena belong to this node; the
	// ranges are assigned in node order.
	NArcs int `json:"nArcs,omitempty"`
}

type compactArc struct {
	P int        `json:"p"`
	K int        `json:"k"`
	L model.Time `json:"l"`
	H model.Time `json:"h"`
	G float64    `json:"g"`
	C int        `json:"c"`
}

// EncodeTreeCompact writes a quasi-static tree in the compact format:
// v2 for canonically-mapped applications (byte-identical to the
// pre-platform encoding), v3 — v2 plus the platform and mapping the
// tree's timing depends on — for mapped ones, and v4 — additionally
// carrying the recovery model — whenever the application's recovery model
// is not the canonical re-execution. DecodeTree reads all formats
// transparently.
func EncodeTreeCompact(w io.Writer, tree *core.Tree) error {
	app := tree.App
	ct := compactTree{
		Format: compactTreeFormat,
		App:    app.Name(),
		K:      app.K(),
		Procs:  make([]string, app.N()),
		Nodes:  make([]compactNode, 0, len(tree.Nodes)),
		Arcs:   make([]compactArc, 0, len(tree.Arcs)),
	}
	for i := range ct.Procs {
		ct.Procs[i] = app.Proc(model.ProcessID(i)).Name
	}
	if app.HasPlatform() && !app.Platform().IsCanonical() {
		plat := app.Platform()
		ct.Format = compactTreeFormatV3
		ct.Platform = make([]jsonCore, plat.NCores())
		for c := range ct.Platform {
			cc := plat.Core(model.CoreID(c))
			ct.Platform[c] = jsonCore{
				Name: cc.Name, Speed: cc.Speed,
				PowerActive: cc.PowerActive, PowerIdle: cc.PowerIdle,
			}
		}
		ct.Mapping = make([][2]int, app.N())
		for i := range ct.Mapping {
			pid := model.ProcessID(i)
			ct.Mapping[i] = [2]int{int(app.CoreOf(pid)), int(app.RecoveryCoreOf(pid))}
		}
	}
	if app.HasRecovery() {
		ct.Format = compactTreeFormatV4
		ct.Recovery = recoveryJSON(app.Recovery())
	}
	for id := range tree.Nodes {
		n := &tree.Nodes[id]
		cn := compactNode{
			Parent:    -1,
			SwitchPos: n.SwitchPos,
			KRem:      n.KRem,
			Depth:     n.Depth,
			NArcs:     int(n.ArcEnd - n.ArcStart),
		}
		if n.Parent != core.NoNode {
			cn.Parent = int(n.Parent)
		}
		if n.DroppedOnFault != model.NoProcess {
			cn.Drop = int(n.DroppedOnFault) + 1
		}
		suffix := n.Schedule.Entries[n.SwitchPos:]
		cn.Suffix = make([][2]int, len(suffix))
		for j, e := range suffix {
			cn.Suffix[j] = [2]int{int(e.Proc), e.Recoveries}
		}
		ct.Nodes = append(ct.Nodes, cn)
		for _, a := range tree.NodeArcs(core.NodeID(id)) {
			ct.Arcs = append(ct.Arcs, compactArc{
				P: a.Pos, K: int(a.Kind), L: a.Lo, H: a.Hi, G: a.Gain, C: int(a.Child),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

func decodeTreeCompact(data []byte, app *model.Application) (*core.Tree, error) {
	var ct compactTree
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ct); err != nil {
		return nil, &DecodeError{Msg: "invalid tree JSON", Err: err}
	}
	if ct.App != app.Name() {
		return nil, &DecodeError{Path: "app", Msg: fmt.Sprintf("tree was synthesised for application %q, not %q", ct.App, app.Name())}
	}
	if ct.K != app.K() {
		return nil, &DecodeError{Path: "k", Msg: fmt.Sprintf("tree assumes k=%d, application has k=%d", ct.K, app.K())}
	}
	if len(ct.Nodes) == 0 {
		return nil, &DecodeError{Path: "nodes", Msg: "tree has no nodes"}
	}
	// The name table decouples the file from the application's internal
	// process numbering.
	ids := make([]model.ProcessID, len(ct.Procs))
	for i, name := range ct.Procs {
		id := app.IDByName(name)
		if id == model.NoProcess {
			return nil, &DecodeError{Path: fmt.Sprintf("procs[%d]", i), Msg: fmt.Sprintf("unknown process %q in name table", name)}
		}
		ids[i] = id
	}
	if err := checkTreePlatform(&ct, app, ids); err != nil {
		return nil, err
	}
	if err := checkTreeRecovery(&ct, app); err != nil {
		return nil, err
	}
	b := &treeBuilder{
		nodes: make([]core.Node, len(ct.Nodes)),
		arcs:  make([][]core.Arc, len(ct.Nodes)),
	}
	arcCursor := 0
	for i, cn := range ct.Nodes {
		n := &b.nodes[i]
		n.SwitchPos = cn.SwitchPos
		n.KRem = cn.KRem
		n.Depth = cn.Depth
		n.DroppedOnFault = model.NoProcess
		n.Parent = core.NoNode
		if cn.Drop != 0 {
			if cn.Drop < 1 || cn.Drop > len(ids) {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].drop", i), Msg: fmt.Sprintf("drop index %d out of range", cn.Drop)}
			}
			n.DroppedOnFault = ids[cn.Drop-1]
		}
		var prefix []schedule.Entry
		if cn.Parent >= 0 {
			// Parents precede children in the arena, so the parent's full
			// schedule is already reconstructed.
			if cn.Parent >= i {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].parent", i), Msg: fmt.Sprintf("parent %d does not precede it", cn.Parent)}
			}
			n.Parent = core.NodeID(cn.Parent)
			parentEntries := b.nodes[cn.Parent].Schedule.Entries
			if cn.SwitchPos < 0 || cn.SwitchPos > len(parentEntries) {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].sw", i), Msg: fmt.Sprintf("switch position %d outside parent schedule", cn.SwitchPos)}
			}
			prefix = parentEntries[:cn.SwitchPos]
		} else {
			if i != 0 {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].parent", i), Msg: "no parent but not the root"}
			}
			if cn.SwitchPos != 0 {
				return nil, &DecodeError{Path: "nodes[0].sw", Msg: fmt.Sprintf("root switch position %d is not 0", cn.SwitchPos)}
			}
		}
		entries := make([]schedule.Entry, 0, len(prefix)+len(cn.Suffix))
		entries = append(entries, prefix...)
		for j, pair := range cn.Suffix {
			if pair[0] < 0 || pair[0] >= len(ids) {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].suffix[%d]", i, j), Msg: fmt.Sprintf("process index %d out of range", pair[0])}
			}
			if pair[1] < 0 {
				return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].suffix[%d]", i, j), Msg: "negative recovery budget"}
			}
			entries = append(entries, schedule.Entry{Proc: ids[pair[0]], Recoveries: pair[1]})
		}
		n.Schedule = &schedule.FSchedule{Entries: entries}
		if cn.NArcs < 0 || arcCursor+cn.NArcs > len(ct.Arcs) {
			return nil, &DecodeError{Path: fmt.Sprintf("nodes[%d].nArcs", i), Msg: fmt.Sprintf("arc count %d overruns the arc arena", cn.NArcs)}
		}
		for aj, ca := range ct.Arcs[arcCursor : arcCursor+cn.NArcs] {
			ai := arcCursor + aj
			if ca.K < int(core.Completion) || ca.K > int(core.FaultDropped) {
				return nil, &DecodeError{Path: fmt.Sprintf("arcs[%d].k", ai), Msg: fmt.Sprintf("unknown arc kind %d", ca.K)}
			}
			if ca.C < 0 || ca.C >= len(ct.Nodes) {
				return nil, &DecodeError{Path: fmt.Sprintf("arcs[%d].c", ai), Msg: fmt.Sprintf("arc child %d out of range", ca.C)}
			}
			if derr := checkDecodedTime(fmt.Sprintf("arcs[%d].l", ai), ca.L); derr != nil {
				return nil, derr
			}
			if derr := checkDecodedTime(fmt.Sprintf("arcs[%d].h", ai), ca.H); derr != nil {
				return nil, derr
			}
			if derr := checkDecodedGain(fmt.Sprintf("arcs[%d].g", ai), ca.G); derr != nil {
				return nil, derr
			}
			b.arcs[i] = append(b.arcs[i], core.Arc{
				Pos: ca.P, Kind: core.ArcKind(ca.K), Lo: ca.L, Hi: ca.H,
				Gain: ca.G, Child: core.NodeID(ca.C),
			})
		}
		arcCursor += cn.NArcs
	}
	if arcCursor != len(ct.Arcs) {
		return nil, &DecodeError{Path: "arcs", Msg: fmt.Sprintf("%d arcs in the arena are not claimed by any node", len(ct.Arcs)-arcCursor)}
	}
	return b.build(app), nil
}

// checkTreePlatform enforces the platform contract between a compact tree
// and the application it is being bound to. A tree's guard bounds and
// recovery budgets bake in the per-core scaled timing it was synthesised
// for, so a mismatch would silently invalidate every schedulability
// guarantee. v2 trees carry no platform and bind only to canonically-mapped
// applications; v3 trees must carry one that matches the application's
// platform and mapping exactly.
func checkTreePlatform(ct *compactTree, app *model.Application, ids []model.ProcessID) error {
	mapped := app.HasPlatform() && !app.Platform().IsCanonical()
	if ct.Format == compactTreeFormat {
		if len(ct.Platform) > 0 {
			return &DecodeError{Path: "platform", Msg: "platform field is not valid in a v2 tree"}
		}
		if len(ct.Mapping) > 0 {
			return &DecodeError{Path: "mapping", Msg: "mapping field is not valid in a v2 tree"}
		}
		if mapped {
			return &DecodeError{Path: "format", Msg: fmt.Sprintf("tree predates the application's platform (%s); re-synthesise for the mapped application", app.Platform())}
		}
		return nil
	}
	if len(ct.Platform) == 0 {
		if ct.Format == compactTreeFormatV3 {
			return &DecodeError{Path: "platform", Msg: "v3 tree lacks a platform"}
		}
		// A v4 tree of a canonically-mapped application omits the platform,
		// exactly like v2; it then binds only to such applications.
		if len(ct.Mapping) > 0 {
			return &DecodeError{Path: "mapping", Msg: "mapping field requires a platform"}
		}
		if mapped {
			return &DecodeError{Path: "format", Msg: fmt.Sprintf("tree carries no platform but the application is mapped on %s; re-synthesise for the mapped application", app.Platform())}
		}
		return nil
	}
	plat, err := decodePlatform(ct.Platform)
	if err != nil {
		return err
	}
	if !plat.Equal(app.Platform()) {
		return &DecodeError{Path: "platform", Msg: fmt.Sprintf("tree was synthesised for platform %s, application has %s", plat, app.Platform())}
	}
	if len(ct.Mapping) != len(ids) {
		return &DecodeError{Path: "mapping", Msg: fmt.Sprintf("mapping covers %d processes, name table has %d", len(ct.Mapping), len(ids))}
	}
	for i, pair := range ct.Mapping {
		path := fmt.Sprintf("mapping[%d]", i)
		for _, c := range pair {
			if c < 0 || c >= plat.NCores() {
				return &DecodeError{Path: path, Msg: fmt.Sprintf("core index %d out of range", c)}
			}
		}
		pid := ids[i]
		if model.CoreID(pair[0]) != app.CoreOf(pid) || model.CoreID(pair[1]) != app.RecoveryCoreOf(pid) {
			return &DecodeError{Path: path, Msg: fmt.Sprintf("process %q is mapped [%d %d] in the tree but [%d %d] in the application",
				ct.Procs[i], pair[0], pair[1], int(app.CoreOf(pid)), int(app.RecoveryCoreOf(pid)))}
		}
	}
	return nil
}

// checkTreeRecovery enforces the recovery contract between a compact tree
// and the application it is being bound to. A tree's guard bounds bake in
// the per-attempt checkpoint overheads and per-fault recovery costs of the
// model it was synthesised under, so a mismatch would silently invalidate
// every schedulability guarantee. v2/v3 trees carry no recovery model and
// bind only to canonical (re-execution) applications; v4 trees must carry
// one that matches the application's exactly.
func checkTreeRecovery(ct *compactTree, app *model.Application) error {
	if ct.Format != compactTreeFormatV4 {
		if ct.Recovery != nil {
			return &DecodeError{Path: "recovery", Msg: fmt.Sprintf("recovery field is not valid in a %q tree", ct.Format)}
		}
		if app.HasRecovery() {
			return &DecodeError{Path: "format", Msg: fmt.Sprintf("tree predates the application's recovery model (%s); re-synthesise for it", app.Recovery())}
		}
		return nil
	}
	if ct.Recovery == nil {
		return &DecodeError{Path: "recovery", Msg: "v4 tree lacks a recovery model"}
	}
	m, err := decodeRecovery("recovery", ct.Recovery)
	if err != nil {
		return err
	}
	if m != app.Recovery() {
		return &DecodeError{Path: "recovery", Msg: fmt.Sprintf("tree was synthesised under recovery %s, application has %s", m, app.Recovery())}
	}
	return nil
}
