package appio

import (
	"bytes"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/sim"
)

func traceScenario(t *testing.T, faults map[string]int, durs map[string]model.Time) (*model.Application, []sim.TraceEvent, sim.Result) {
	t.Helper()
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).AET
	}
	for n, d := range durs {
		sc.Durations[app.IDByName(n)] = d
	}
	for n, f := range faults {
		sc.FaultsAt[app.IDByName(n)] = f
		sc.NFaults += f
	}
	res, events, err := sim.RunTrace(tree, sc)
	if err != nil {
		t.Fatal(err)
	}
	return app, events, res
}

func TestRunTraceEvents(t *testing.T) {
	app, events, res := traceScenario(t, map[string]int{"P1": 1}, nil)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var kinds []sim.TraceEventKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
		if e.At < 0 || e.At > app.Period() {
			t.Errorf("event time %d outside cycle", e.At)
		}
	}
	// P1 faults once: expect start, fault, recovery, start, complete as
	// the first five events.
	want := []sim.TraceEventKind{sim.TraceStart, sim.TraceFault, sim.TraceRecovery, sim.TraceStart, sim.TraceComplete}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], k, kinds)
		}
	}
	if res.Recoveries != 1 {
		t.Errorf("recoveries = %d", res.Recoveries)
	}
	// Events must be time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestRunTraceMatchesRun(t *testing.T) {
	app, _, traced := traceScenario(t, nil, map[string]model.Time{"P1": 30})
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).AET
	}
	sc.Durations[app.IDByName("P1")] = 30
	plain, err := sim.Run(tree, sc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Utility != traced.Utility || plain.Switches != traced.Switches {
		t.Errorf("traced run diverges: %v vs %v", traced, plain)
	}
}

func TestWriteGantt(t *testing.T) {
	app, events, _ := traceScenario(t, map[string]int{"P1": 1, "P3": 1}, nil)
	var buf bytes.Buffer
	if err := WriteGantt(&buf, app, events, 0, 72); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P1*|", "P2 |", "x", "#", ".", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// Switch row appears when a switch happened.
	_, events2, res2 := traceScenario(t, nil, map[string]model.Time{"P1": 30})
	if res2.Switches > 0 {
		var buf2 bytes.Buffer
		if err := WriteGantt(&buf2, app, events2, 0, 72); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf2.String(), "^") {
			t.Errorf("gantt missing switch marker:\n%s", buf2.String())
		}
	}
	// Errors.
	bad := bytes.Buffer{}
	if err := WriteGantt(&bad, app, events, -1, 72); err == nil {
		// span<=0 falls back to the period, which is positive here; force
		// a zero-period failure path by passing span via a zero value:
		t.Log("period fallback used")
	}
}

func TestTraceEventKindString(t *testing.T) {
	kinds := []sim.TraceEventKind{sim.TraceStart, sim.TraceFault, sim.TraceRecovery,
		sim.TraceComplete, sim.TraceAbandon, sim.TraceSwitch}
	want := []string{"start", "fault", "recovery", "complete", "abandon", "switch"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
	if sim.TraceEventKind(99).String() != "TraceEventKind(?)" {
		t.Error("unknown kind string")
	}
}
