package appio

import (
	"bytes"
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/sim"
)

func TestTreeRoundTrip(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTree(bytes.NewReader(buf.Bytes()), app)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != tree.Size() {
		t.Fatalf("size changed: %d vs %d", back.Size(), tree.Size())
	}
	// The loaded tree passes the full safety audit.
	if err := core.VerifyTree(back); err != nil {
		t.Fatalf("loaded tree fails verification: %v", err)
	}
	// Behavioural equivalence: identical rendering.
	if tree.Format() != back.Format() {
		t.Error("tree format changed in round trip")
	}
}

func TestTreeRoundTripExecution(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTree(bytes.NewReader(buf.Bytes()), app)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.MonteCarlo(tree, sim.MCConfig{Scenarios: 1000, Faults: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.MonteCarlo(back, sim.MCConfig{Scenarios: 1000, Faults: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility != b.MeanUtility || a.MeanSwitches != b.MeanSwitches {
		t.Errorf("loaded tree behaves differently: %+v vs %+v", a, b)
	}
}

func TestDecodeTreeErrors(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"bad json":      "{",
		"wrong app":     strings.Replace(good, `"app": "paper-fig1"`, `"app": "other"`, 1),
		"wrong k":       strings.Replace(good, `"k": 1`, `"k": 3`, 1),
		"no nodes":      `{"app":"paper-fig1","k":1,"nodes":[]}`,
		"unknown proc":  strings.Replace(good, `"proc": "P3"`, `"proc": "P9"`, 1),
		"unknown kind":  strings.Replace(good, `"kind": "completion"`, `"kind": "weird"`, 1),
		"unknown field": `{"app":"paper-fig1","k":1,"nope":1,"nodes":[]}`,
	}
	for name, in := range cases {
		if _, err := DecodeTree(strings.NewReader(in), app); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
	// Wrong application object entirely.
	if _, err := DecodeTree(strings.NewReader(good), apps.Fig8()); err == nil {
		t.Error("tree bound to wrong application accepted")
	}
}
