package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

func TestShapeString(t *testing.T) {
	if Layered.String() != "layered" || SeriesParallel.String() != "series-parallel" ||
		Chains.String() != "chains" {
		t.Error("shape strings")
	}
	if Shape(9).String() != "Shape(9)" {
		t.Error("unknown shape string")
	}
}

// TestShapesProduceValidSchedulableApps: every shape yields valid DAGs that
// FTSS can schedule, across sizes.
func TestShapesProduceValidSchedulableApps(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shapes := []Shape{Layered, SeriesParallel, Chains}
		shape := shapes[rng.Intn(len(shapes))]
		n := 5 + rng.Intn(30)
		cfg := Default(n)
		cfg.Shape = shape
		app, err := Generate(rng, cfg)
		if err != nil {
			t.Logf("seed %d shape %v: %v", seed, shape, err)
			return false
		}
		s, err := core.FTSS(app)
		if err != nil {
			t.Logf("seed %d shape %v n=%d: unschedulable", seed, shape, n)
			return false
		}
		if err := schedule.Validate(app, s); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSeriesParallelStructure: the SP shape produces graphs with real fork
// and join structure (processes with multiple successors and multiple
// predecessors).
func TestSeriesParallelStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Default(30)
	cfg.Shape = SeriesParallel
	app, err := Generate(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	forks, joins, edges := 0, 0, 0
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if len(app.Succs(pid)) > 1 {
			forks++
		}
		if len(app.Preds(pid)) > 1 {
			joins++
		}
		edges += len(app.Succs(pid))
	}
	if forks == 0 || joins == 0 {
		t.Errorf("no fork/join structure: forks=%d joins=%d", forks, joins)
	}
	if edges < app.N()-1 {
		t.Errorf("suspiciously few edges: %d", edges)
	}
}

// TestChainsStructure: the chain shape yields bounded in/out degrees.
func TestChainsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Default(24)
	cfg.Shape = Chains
	app, err := Generate(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if len(app.Succs(pid)) > 1 || len(app.Preds(pid)) > 1 {
			t.Fatalf("process %d has degree > 1 in chain shape", id)
		}
	}
	if len(app.Sources()) < 2 {
		t.Error("chains shape should have several sources")
	}
}
