package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	app, err := Generate(rng, Default(30))
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 30 {
		t.Fatalf("N = %d, want 30", app.N())
	}
	if app.K() != 3 || app.Mu() != 15 {
		t.Errorf("k/µ = %d/%d, want 3/15", app.K(), app.Mu())
	}
	nHard := len(app.HardIDs())
	if nHard != 15 {
		t.Errorf("hard count = %d, want 15 (50/50)", nHard)
	}
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		if p.WCET < 10 || p.WCET > 100 {
			t.Errorf("%s WCET %d outside [10,100]", p.Name, p.WCET)
		}
		if p.BCET < 0 || p.BCET > p.WCET {
			t.Errorf("%s BCET %d outside [0,WCET]", p.Name, p.BCET)
		}
		if p.AET != p.BCET+(p.WCET-p.BCET)/2 {
			t.Errorf("%s AET not midpoint", p.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, err := Generate(rand.New(rand.NewSource(7)), Default(20))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(rand.New(rand.NewSource(7)), Default(20))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Period() != a2.Period() || a1.N() != a2.N() {
		t.Fatal("generator not deterministic")
	}
	for id := 0; id < a1.N(); id++ {
		p1, p2 := a1.Proc(model.ProcessID(id)), a2.Proc(model.ProcessID(id))
		if p1.WCET != p2.WCET || p1.BCET != p2.BCET || p1.Kind != p2.Kind || p1.Deadline != p2.Deadline {
			t.Fatalf("process %d differs between runs", id)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{},
		func() Config { c := Default(10); c.WCETMax = 5; return c }(),
		func() Config { c := Default(10); c.HardRatio = 1.5; return c }(),
		func() Config { c := Default(10); c.K = -1; return c }(),
		func() Config { c := Default(10); c.PeriodSlackMin = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Generate(rng, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestGeneratedAppsSchedulableProperty: the headline guarantee of the
// generator — FTSS always finds a fault-tolerant schedule (dropping soft
// processes if needed), across the paper's full size sweep.
func TestGeneratedAppsSchedulableProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
		n := sizes[rng.Intn(len(sizes))]
		app, err := Generate(rng, Default(n))
		if err != nil {
			t.Log(err)
			return false
		}
		s, err := core.FTSS(app)
		if err != nil {
			t.Logf("seed %d n=%d: unschedulable: %v", seed, n, err)
			return false
		}
		if err := schedule.Validate(app, s); err != nil {
			t.Logf("seed %d: invalid schedule: %v", seed, err)
			return false
		}
		if err := schedule.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
			t.Logf("seed %d: not fault tolerant: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGeneratedUtilitiesMatter: utility staircases must not all be flat at
// the completion times the schedule realises, otherwise the benchmark would
// not distinguish the algorithms.
func TestGeneratedUtilitiesMatter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	app, err := Generate(rng, Default(30))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if u := schedule.ExpectedUtility(app, s); u <= 0 {
		t.Errorf("expected utility %g, want > 0", u)
	}
}
