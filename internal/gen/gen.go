// Package gen generates random benchmark applications following the
// experimental setup of Izosimov et al. (DATE 2008), §6: applications of
// 10-50 processes with worst-case execution times uniformly distributed
// between 10 and 100 ms, best-case execution times uniform between 0 and
// the WCET, and average execution times at the midpoint ("completion time
// is uniformly distributed between the best-case and the worst-case").
//
// The paper does not publish its deadline, period or utility-function
// distributions; this package makes them explicit and reproducible (see the
// Config fields and DESIGN.md). Deadlines are drawn so that a hard-only
// schedule is always feasible — generated applications are schedulable by
// construction, with enough pressure that soft dropping decisions matter.
package gen

import (
	"fmt"
	"math/rand"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// Shape selects the dependency structure of generated graphs.
type Shape int

const (
	// Layered draws independent forward edges within a rank window — the
	// classic random-DAG benchmark shape (default).
	Layered Shape = iota
	// SeriesParallel composes the graph recursively from sequences and
	// parallel branches, the TGFF-style task-graph shape typical of
	// signal-processing applications. All edges still point forward in
	// index order.
	SeriesParallel
	// Chains builds a few independent pipelines — the worst case for
	// ordering freedom (every decision is which chain to advance).
	Chains
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Layered:
		return "layered"
	case SeriesParallel:
		return "series-parallel"
	case Chains:
		return "chains"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Config parametrises the generator. The zero value is not valid; use
// Default and override.
type Config struct {
	// N is the number of processes.
	N int
	// Shape selects the dependency structure (default Layered).
	Shape Shape
	// HardRatio is the fraction of hard processes (Table 1 uses 50/50).
	HardRatio float64
	// K is the fault bound, Mu the recovery overhead (paper: k=3, µ=15).
	K  int
	Mu model.Time
	// WCETMin and WCETMax bound the worst-case execution times
	// (paper: 10 and 100 ms).
	WCETMin, WCETMax model.Time
	// EdgeProb is the probability of a dependency between any forward
	// pair of processes within the rank window.
	EdgeProb float64
	// PeriodSlackMin/Max scale the period relative to the full worst-case
	// load ΣWCET + k·(max WCET + µ): values below 1 force dropping in the
	// worst case, values above 1 leave slack for soft recoveries.
	PeriodSlackMin, PeriodSlackMax float64
	// UtilityMin/Max bound the peak utility value of soft processes.
	UtilityMin, UtilityMax float64
}

// Default returns the paper's §6 configuration for n processes.
func Default(n int) Config {
	return Config{
		N:              n,
		HardRatio:      0.5,
		K:              3,
		Mu:             15,
		WCETMin:        10,
		WCETMax:        100,
		EdgeProb:       0.15,
		PeriodSlackMin: 0.95,
		PeriodSlackMax: 1.15,
		UtilityMin:     10,
		UtilityMax:     100,
	}
}

// Generate builds one random application. The result is always valid and
// guaranteed hard-schedulable (a schedule that drops every soft process
// meets all hard deadlines even under k faults).
func Generate(rng *rand.Rand, cfg Config) (*model.Application, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("gen: N must be positive (got %d)", cfg.N)
	}
	if cfg.WCETMin <= 0 || cfg.WCETMax < cfg.WCETMin {
		return nil, fmt.Errorf("gen: invalid WCET range [%d,%d]", cfg.WCETMin, cfg.WCETMax)
	}
	if cfg.HardRatio < 0 || cfg.HardRatio > 1 {
		return nil, fmt.Errorf("gen: HardRatio %g outside [0,1]", cfg.HardRatio)
	}
	if cfg.K < 0 || cfg.Mu < 0 {
		return nil, fmt.Errorf("gen: negative fault parameters")
	}
	if cfg.PeriodSlackMax < cfg.PeriodSlackMin || cfg.PeriodSlackMin <= 0 {
		return nil, fmt.Errorf("gen: invalid period slack range")
	}

	n := cfg.N
	// Execution times per the paper.
	wcet := make([]model.Time, n)
	bcet := make([]model.Time, n)
	aet := make([]model.Time, n)
	var sumW, maxW model.Time
	for i := 0; i < n; i++ {
		w := cfg.WCETMin + model.Time(rng.Int63n(int64(cfg.WCETMax-cfg.WCETMin)+1))
		b := model.Time(rng.Int63n(int64(w) + 1))
		wcet[i], bcet[i] = w, b
		aet[i] = b + (w-b)/2
		sumW += w
		if w > maxW {
			maxW = w
		}
	}

	// Hard/soft assignment: exact count, randomly placed.
	nHard := int(float64(n)*cfg.HardRatio + 0.5)
	if nHard > n {
		nHard = n
	}
	kind := make([]model.Kind, n)
	for i := 0; i < n; i++ {
		kind[i] = model.Soft
	}
	for _, i := range rng.Perm(n)[:nHard] {
		kind[i] = model.Hard
	}

	// Worst-case full load and period.
	fullLoad := sumW + model.Time(cfg.K)*(maxW+cfg.Mu)
	slack := cfg.PeriodSlackMin + rng.Float64()*(cfg.PeriodSlackMax-cfg.PeriodSlackMin)
	period := model.Time(float64(fullLoad) * slack)

	// Hard-only worst-case completion per process (topological = index
	// order; edges only go forward): the deadline floor that guarantees
	// schedulability when all soft processes are dropped.
	var hardMaxW model.Time
	for i := 0; i < n; i++ {
		if kind[i] == model.Hard && wcet[i] > hardMaxW {
			hardMaxW = wcet[i]
		}
	}
	recoveryHard := model.Time(cfg.K) * (hardMaxW + cfg.Mu)
	var hardCum model.Time
	floor := make([]model.Time, n)
	for i := 0; i < n; i++ {
		if kind[i] == model.Hard {
			hardCum += wcet[i]
			floor[i] = hardCum + recoveryHard
		}
	}
	// The period must accommodate the hard-only schedule.
	if period < hardCum+recoveryHard {
		period = hardCum + recoveryHard
	}

	// Average-case completion estimate in index order, for placing the
	// utility staircases where ordering decisions actually matter.
	var aetCum model.Time
	avgFinish := make([]model.Time, n)
	for i := 0; i < n; i++ {
		aetCum += aet[i]
		avgFinish[i] = aetCum
	}

	app := model.NewApplication(fmt.Sprintf("gen-n%d", n), period, cfg.K, cfg.Mu)
	ids := make([]model.ProcessID, n)
	for i := 0; i < n; i++ {
		p := model.Process{
			Name: fmt.Sprintf("P%02d", i),
			Kind: kind[i],
			BCET: bcet[i],
			AET:  aet[i],
			WCET: wcet[i],
		}
		if kind[i] == model.Hard {
			// Deadline between the feasibility floor and the period.
			head := period - floor[i]
			d := floor[i]
			if head > 0 {
				d += model.Time(rng.Float64() * 0.7 * float64(head))
			}
			p.Deadline = d
		} else {
			p.Utility = randomUtility(rng, cfg, avgFinish[i], period)
		}
		ids[i] = app.AddProcess(p)
	}

	addEdges(rng, cfg, app, ids)
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("gen: internal error: %w", err)
	}
	return app, nil
}

// addEdges wires the dependency structure selected by cfg.Shape. Every
// shape emits only forward edges in index order, which the deadline floor
// construction relies on.
func addEdges(rng *rand.Rand, cfg Config, app *model.Application, ids []model.ProcessID) {
	n := len(ids)
	switch cfg.Shape {
	case SeriesParallel:
		var build func(lo, hi int) // over index range [lo, hi)
		build = func(lo, hi int) {
			size := hi - lo
			if size <= 1 {
				return
			}
			if size == 2 || rng.Float64() < 0.4 {
				// Series: split into two sequential blocks; the last
				// element of the first feeds the first of the second.
				mid := lo + 1 + rng.Intn(size-1)
				build(lo, mid)
				build(mid, hi)
				_ = app.AddEdge(ids[mid-1], ids[mid])
				return
			}
			// Parallel: a fork node, 2..4 branches, a join node.
			inner := size - 2
			if inner < 2 {
				build(lo+1, hi)
				_ = app.AddEdge(ids[lo], ids[lo+1])
				return
			}
			branches := 2 + rng.Intn(3)
			if branches > inner {
				branches = inner
			}
			starts := []int{lo + 1}
			for b := 1; b < branches; b++ {
				starts = append(starts, lo+1+b*inner/branches)
			}
			starts = append(starts, hi-1)
			for b := 0; b < branches; b++ {
				blo, bhi := starts[b], starts[b+1]
				if blo >= bhi {
					continue
				}
				build(blo, bhi)
				_ = app.AddEdge(ids[lo], ids[blo])
				_ = app.AddEdge(ids[bhi-1], ids[hi-1])
			}
		}
		build(0, n)
	case Chains:
		chains := 2 + rng.Intn(4)
		if chains > n {
			chains = n
		}
		// Process i belongs to chain i % chains; consecutive members of
		// a chain are linked (forward in index order by construction).
		last := make([]int, chains)
		for c := range last {
			last[c] = -1
		}
		for i := 0; i < n; i++ {
			c := i % chains
			if last[c] >= 0 {
				_ = app.AddEdge(ids[last[c]], ids[i])
			}
			last[c] = i
		}
	default: // Layered
		// Random forward edges within a rank window keep graphs
		// connected-ish without serialising everything.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n && j <= i+8; j++ {
				if rng.Float64() < cfg.EdgeProb {
					_ = app.AddEdge(ids[i], ids[j])
				}
			}
		}
	}
}

// randomUtility draws a non-increasing staircase whose knees straddle the
// process's average-case completion estimate, so early completions are
// rewarded and late ones penalised.
func randomUtility(rng *rand.Rand, cfg Config, avgFinish, period model.Time) utility.Function {
	peak := cfg.UtilityMin + rng.Float64()*(cfg.UtilityMax-cfg.UtilityMin)
	if avgFinish < 1 {
		avgFinish = 1
	}
	t1 := model.Time(float64(avgFinish) * (0.6 + 0.8*rng.Float64()))
	if t1 < 1 {
		t1 = 1
	}
	t2 := t1 + 1 + model.Time(rng.Float64()*0.8*float64(avgFinish))
	t3 := t2 + 1 + model.Time(rng.Float64()*float64(period-t2)*0.5)
	if t3 <= t2 {
		t3 = t2 + 1
	}
	return utility.MustStep(
		[]model.Time{t1, t2, t3},
		[]float64{peak, peak * (0.3 + 0.4*rng.Float64()), peak * 0.1 * rng.Float64()},
	)
}
