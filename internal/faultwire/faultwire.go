// Package faultwire is a deterministic, seeded fault-injection middleware
// for the ftserved wire: it wraps the server's HTTP handler and perturbs
// requests and responses the way a hostile network or a sick process
// would — injected latency, typed error responses, connection resets
// mid-body, truncated and corrupted JSON — so the client's recovery story
// (retry, backoff, circuit breaking) can be exercised end to end without
// leaving the fault schedule to chance.
//
// # Determinism
//
// The injected-fault schedule is a pure function of (Spec, seed): the
// i-th intercepted request draws its decision from a splitmix64 stream
// reseeded with sim.ScenarioSeed(seed, i), exactly the per-scenario
// discipline the evaluation engines use. Two injectors built from the
// same spec and seed produce the same Decision for every index, whatever
// the arrival interleaving — TestScheduleDeterministic gates this. Under
// concurrency the mapping of requests to indices follows arrival order,
// so the multiset of injected faults over N requests is reproducible even
// when the per-request assignment is not.
//
// # Spec grammar
//
// A spec is a semicolon-separated list of clauses, each a fault kind with
// comma-separated key=value options:
//
//	latency:p=0.2,ms=40     delay the request 40ms before handling
//	error:p=0.1,kind=overloaded[,retry=25]
//	                        answer a typed wire error instead of handling
//	                        (kind one of overloaded, rate_limited,
//	                        draining, internal; retry = RetryAfterMillis)
//	reset:p=0.05            abort the connection mid-body (partial JSON,
//	                        then a hard close)
//	truncate:p=0.05         serve only the first half of the JSON body
//	corrupt:p=0.05          overwrite a body byte with 0x00 (never valid
//	                        JSON, so corruption is always detectable)
//	tenant=NAME             restrict injection to requests of this tenant
//
// Clauses are evaluated in spec order, first match wins, so the spec is
// also a priority list. Only POST /v1/ API requests are intercepted:
// health probes and metrics scrapes stay clean, matching the
// load-balancer contract of the server's /v1/healthz.
package faultwire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

// FaultKind enumerates the wire faults the middleware can inject.
type FaultKind int

const (
	// FaultNone leaves the request untouched.
	FaultNone FaultKind = iota
	// FaultLatency delays the request before the handler sees it.
	FaultLatency
	// FaultError answers a typed serveapi error without invoking the
	// handler.
	FaultError
	// FaultReset writes a partial response body and aborts the
	// connection (the client observes an unexpected EOF mid-body).
	FaultReset
	// FaultTruncate serves only the first half of the response body with
	// a consistent Content-Length — valid HTTP, invalid JSON.
	FaultTruncate
	// FaultCorrupt overwrites one response-body byte with 0x00, which no
	// JSON document may contain, so corruption always fails decoding.
	FaultCorrupt
)

// String returns the spec-grammar name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultError:
		return "error"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Clause is one parsed fault clause of a Spec.
type Clause struct {
	Kind FaultKind
	// Prob is the per-request injection probability in [0,1].
	Prob float64
	// Delay is the injected latency (FaultLatency).
	Delay time.Duration
	// ErrKind is the injected wire-error kind (FaultError); one of
	// serveapi.KindOverloaded, KindRateLimited, KindDraining,
	// KindInternal.
	ErrKind string
	// RetryAfterMillis is the retry hint carried by injected retryable
	// errors (FaultError; 0 for KindInternal).
	RetryAfterMillis int64
}

// Spec is a parsed -fault-spec: an ordered clause list plus an optional
// tenant filter.
type Spec struct {
	Clauses []Clause
	// Tenant restricts injection to requests of this tenant ("" = all;
	// requests without a tenant header belong to serveapi.DefaultTenant).
	Tenant string
}

// ParseError reports a -fault-spec string that failed parsing, carrying
// the offending clause so CLIs can point at it.
type ParseError struct {
	Clause string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	if e.Clause == "" {
		return "faultwire: " + e.Reason
	}
	return fmt.Sprintf("faultwire: clause %q: %s", e.Clause, e.Reason)
}

// errKindCode maps an injectable error kind to its HTTP status.
func errKindCode(kind string) (int, bool) {
	switch kind {
	case serveapi.KindRateLimited:
		return http.StatusTooManyRequests, true
	case serveapi.KindOverloaded, serveapi.KindDraining:
		return http.StatusServiceUnavailable, true
	case serveapi.KindInternal:
		return http.StatusInternalServerError, true
	}
	return 0, false
}

// ParseSpec parses the -fault-spec grammar documented in the package
// comment. An empty string is a valid, empty spec (no injection).
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	for _, raw := range strings.Split(spec, ";") {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "tenant="); ok {
			if rest == "" {
				return Spec{}, &ParseError{Clause: clause, Reason: "empty tenant name"}
			}
			s.Tenant = rest
			continue
		}
		name, opts, _ := strings.Cut(clause, ":")
		var c Clause
		switch name {
		case "latency":
			c = Clause{Kind: FaultLatency, Delay: 25 * time.Millisecond}
		case "error":
			c = Clause{Kind: FaultError, ErrKind: serveapi.KindOverloaded, RetryAfterMillis: 25}
		case "reset":
			c = Clause{Kind: FaultReset}
		case "truncate":
			c = Clause{Kind: FaultTruncate}
		case "corrupt":
			c = Clause{Kind: FaultCorrupt}
		default:
			return Spec{}, &ParseError{Clause: clause,
				Reason: "unknown fault kind (want latency, error, reset, truncate, corrupt or tenant=)"}
		}
		c.Prob = -1
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return Spec{}, &ParseError{Clause: clause, Reason: fmt.Sprintf("option %q is not key=value", kv)}
				}
				switch key {
				case "p":
					p, err := strconv.ParseFloat(val, 64)
					if err != nil || p < 0 || p > 1 {
						return Spec{}, &ParseError{Clause: clause, Reason: fmt.Sprintf("p=%s is not a probability in [0,1]", val)}
					}
					c.Prob = p
				case "ms":
					if c.Kind != FaultLatency {
						return Spec{}, &ParseError{Clause: clause, Reason: "ms= only applies to latency"}
					}
					ms, err := strconv.Atoi(val)
					if err != nil || ms <= 0 {
						return Spec{}, &ParseError{Clause: clause, Reason: fmt.Sprintf("ms=%s is not a positive integer", val)}
					}
					c.Delay = time.Duration(ms) * time.Millisecond
				case "kind":
					if c.Kind != FaultError {
						return Spec{}, &ParseError{Clause: clause, Reason: "kind= only applies to error"}
					}
					if _, ok := errKindCode(val); !ok {
						return Spec{}, &ParseError{Clause: clause,
							Reason: fmt.Sprintf("kind=%s is not injectable (want overloaded, rate_limited, draining or internal)", val)}
					}
					c.ErrKind = val
				case "retry":
					if c.Kind != FaultError {
						return Spec{}, &ParseError{Clause: clause, Reason: "retry= only applies to error"}
					}
					ms, err := strconv.Atoi(val)
					if err != nil || ms < 0 {
						return Spec{}, &ParseError{Clause: clause, Reason: fmt.Sprintf("retry=%s is not a non-negative integer", val)}
					}
					c.RetryAfterMillis = int64(ms)
				default:
					return Spec{}, &ParseError{Clause: clause, Reason: fmt.Sprintf("unknown option %q", key)}
				}
			}
		}
		if c.Prob < 0 {
			return Spec{}, &ParseError{Clause: clause, Reason: "missing p= probability"}
		}
		if c.Kind == FaultError && c.ErrKind == serveapi.KindInternal {
			c.RetryAfterMillis = 0
		}
		s.Clauses = append(s.Clauses, c)
	}
	return s, nil
}

// Decision is the injection verdict for one intercepted request. It is
// a comparable value so schedules can be diffed directly in tests.
type Decision struct {
	Kind FaultKind
	// Delay is the injected latency (FaultLatency).
	Delay time.Duration
	// Err is the injected wire error (FaultError; zero otherwise).
	Err serveapi.Error
}

// Injector applies a Spec to an http.Handler. Construct with New; an
// Injector is safe for concurrent use.
type Injector struct {
	spec Spec
	seed int64
	sink obs.Sink
	next atomic.Int64
	hits atomic.Int64
}

// New builds an injector for a parsed spec. The sink (nil = none)
// receives the Faultwire* obs counters.
func New(spec Spec, seed int64, sink obs.Sink) *Injector {
	return &Injector{spec: spec, seed: seed, sink: sink}
}

// Decision returns the deterministic injection verdict for the i-th
// intercepted request: the same (spec, seed, i) always yields the same
// decision, independent of any other index.
func (in *Injector) Decision(i int64) Decision {
	var rng sim.RNG
	rng.Reseed(sim.ScenarioSeed(in.seed, int(i)))
	for _, c := range in.spec.Clauses {
		if rng.Float64() >= c.Prob {
			continue
		}
		switch c.Kind {
		case FaultLatency:
			return Decision{Kind: FaultLatency, Delay: c.Delay}
		case FaultError:
			code, _ := errKindCode(c.ErrKind)
			return Decision{Kind: FaultError, Err: serveapi.Error{
				Code: code, Kind: c.ErrKind,
				Message:          "faultwire: injected " + c.ErrKind,
				RetryAfterMillis: c.RetryAfterMillis,
			}}
		default:
			return Decision{Kind: c.Kind}
		}
	}
	return Decision{}
}

// Injected reports the number of faults injected so far.
func (in *Injector) Injected() int64 { return in.hits.Load() }

// Intercepted reports the number of requests that consumed a schedule
// index (targeted API requests, faulted or not).
func (in *Injector) Intercepted() int64 { return in.next.Load() }

// targets reports whether a request participates in fault injection:
// POST /v1/ API calls of the targeted tenant. Health probes and metrics
// scrapes (GETs) never do.
func (in *Injector) targets(r *http.Request) bool {
	if r.Method != http.MethodPost || !strings.HasPrefix(r.URL.Path, "/v1/") {
		return false
	}
	if in.spec.Tenant == "" {
		return true
	}
	tenant := r.Header.Get(serveapi.TenantHeader)
	if tenant == "" {
		tenant = serveapi.DefaultTenant
	}
	return tenant == in.spec.Tenant
}

func (in *Injector) count(kind obs.Counter) {
	in.hits.Add(1)
	if in.sink != nil {
		in.sink.Add(obs.FaultwireInjections, 1)
		in.sink.Add(kind, 1)
	}
}

// capture is a buffering http.ResponseWriter: body faults need the whole
// response before deciding which bytes survive.
type capture struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (c *capture) Header() http.Header { return c.header }

func (c *capture) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
}

func (c *capture) Write(p []byte) (int, error) {
	c.WriteHeader(http.StatusOK)
	return c.body.Write(p)
}

// Middleware wraps next with the injector's fault schedule.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !in.targets(r) {
			next.ServeHTTP(w, r)
			return
		}
		d := in.Decision(in.next.Add(1) - 1)
		switch d.Kind {
		case FaultNone:
			next.ServeHTTP(w, r)
		case FaultLatency:
			in.count(obs.FaultwireLatency)
			t := time.NewTimer(d.Delay)
			defer t.Stop()
			select {
			case <-r.Context().Done():
			case <-t.C:
			}
			next.ServeHTTP(w, r)
		case FaultError:
			in.count(obs.FaultwireErrors)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Err.Code)
			_ = json.NewEncoder(w).Encode(serveapi.ErrorResponse{Format: serveapi.FormatV1, Err: d.Err})
		default:
			in.maul(w, r, next, d.Kind)
		}
	})
}

// maul runs the handler against a capture buffer and serves a damaged
// copy of its response.
func (in *Injector) maul(w http.ResponseWriter, r *http.Request, next http.Handler, kind FaultKind) {
	cap := &capture{header: make(http.Header)}
	next.ServeHTTP(cap, r)
	body := cap.body.Bytes()
	for k, vs := range cap.header {
		w.Header()[k] = vs
	}
	if len(body) < 2 {
		// Nothing worth damaging; pass the response through untouched
		// (the decision still consumed its schedule index).
		w.WriteHeader(cap.code)
		_, _ = w.Write(body)
		return
	}
	switch kind {
	case FaultTruncate:
		in.count(obs.FaultwireTruncates)
		half := body[:len(body)/2]
		// A consistent Content-Length makes the truncation invisible at
		// the transport layer: the client only catches it decoding JSON.
		w.Header().Set("Content-Length", strconv.Itoa(len(half)))
		w.WriteHeader(cap.code)
		_, _ = w.Write(half)
	case FaultCorrupt:
		in.count(obs.FaultwireCorrupts)
		body[len(body)/2] = 0x00
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(cap.code)
		_, _ = w.Write(body)
	case FaultReset:
		in.count(obs.FaultwireResets)
		// Promise the full body, deliver half, then abort the connection:
		// the client observes an unexpected EOF mid-body. ErrAbortHandler
		// is net/http's sanctioned way to kill a connection from a
		// handler.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(cap.code)
		_, _ = w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}
