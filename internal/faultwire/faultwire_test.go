package faultwire

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftsched/internal/serveapi"
)

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

func TestParseSpec(t *testing.T) {
	spec := mustSpec(t, "latency:p=0.2,ms=40;error:p=0.1,kind=rate_limited,retry=15;reset:p=0.05;truncate:p=0.04;corrupt:p=0.03;tenant=acme")
	want := Spec{
		Clauses: []Clause{
			{Kind: FaultLatency, Prob: 0.2, Delay: 40 * time.Millisecond},
			{Kind: FaultError, Prob: 0.1, ErrKind: serveapi.KindRateLimited, RetryAfterMillis: 15},
			{Kind: FaultReset, Prob: 0.05},
			{Kind: FaultTruncate, Prob: 0.04},
			{Kind: FaultCorrupt, Prob: 0.03},
		},
		Tenant: "acme",
	}
	if len(spec.Clauses) != len(want.Clauses) || spec.Tenant != want.Tenant {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	for i, c := range spec.Clauses {
		if c != want.Clauses[i] {
			t.Errorf("clause %d = %+v, want %+v", i, c, want.Clauses[i])
		}
	}

	// Defaults: error injects a retryable overloaded, latency has a
	// default delay, internal never carries a retry hint.
	spec = mustSpec(t, "error:p=1")
	if c := spec.Clauses[0]; c.ErrKind != serveapi.KindOverloaded || c.RetryAfterMillis <= 0 {
		t.Errorf("default error clause = %+v, want overloaded with a retry hint", c)
	}
	spec = mustSpec(t, "latency:p=1")
	if spec.Clauses[0].Delay <= 0 {
		t.Errorf("default latency clause = %+v, want a positive delay", spec.Clauses[0])
	}
	spec = mustSpec(t, "error:p=1,kind=internal,retry=99")
	if spec.Clauses[0].RetryAfterMillis != 0 {
		t.Errorf("internal error clause carries retry hint %d, want 0", spec.Clauses[0].RetryAfterMillis)
	}
	if spec := mustSpec(t, ""); len(spec.Clauses) != 0 {
		t.Errorf("empty spec has %d clauses", len(spec.Clauses))
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"explode:p=0.5",                  // unknown kind
		"latency",                        // missing p=
		"latency:ms=40",                  // missing p=
		"latency:p=2",                    // probability out of range
		"latency:p=nope",                 // not a number
		"latency:p=0.1,ms=0",             // non-positive delay
		"reset:p=0.1,ms=40",              // ms on non-latency
		"reset:p=0.1,kind=draining",      // kind on non-error
		"error:p=0.1,kind=unschedulable", // non-injectable kind
		"error:p=0.1,retry=-1",           // negative retry hint
		"latency:p",                      // option not key=value
		"latency:p=0.1,zap=3",            // unknown option
		"tenant=",                        // empty tenant
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want ParseError", bad)
		} else {
			var perr *ParseError
			if !errors.As(err, &perr) {
				t.Errorf("ParseSpec(%q) error type %T, want *ParseError", bad, err)
			}
		}
	}
}

// TestScheduleDeterministic gates the acceptance criterion: same spec +
// seed → same injected-fault schedule, independent of construction and
// of which indices are queried in what order.
func TestScheduleDeterministic(t *testing.T) {
	spec := mustSpec(t, "latency:p=0.15,ms=5;error:p=0.1;reset:p=0.05;truncate:p=0.05;corrupt:p=0.05")
	a := New(spec, 42, nil)
	b := New(spec, 42, nil)
	other := New(spec, 43, nil)

	const n = 2000
	counts := map[FaultKind]int{}
	for i := int64(0); i < n; i++ {
		da, db := a.Decision(i), b.Decision(n-1-i)
		if da != a.Decision(i) {
			t.Fatalf("Decision(%d) is not stable", i)
		}
		if db != b.Decision(n-1-i) {
			t.Fatalf("Decision(%d) is not stable", n-1-i)
		}
		if da != b.Decision(i) {
			t.Fatalf("Decision(%d) differs across injectors with identical spec+seed", i)
		}
		counts[da.Kind]++
	}
	// Every fault kind fires at its configured order of magnitude.
	for kind, p := range map[FaultKind]float64{
		FaultLatency: 0.15, FaultError: 0.1, FaultReset: 0.05,
		FaultTruncate: 0.05, FaultCorrupt: 0.05,
	} {
		got := counts[kind]
		if lo, hi := int(p*n/2), int(p*n*2); got < lo || got > hi {
			t.Errorf("kind %v fired %d/%d times, want within [%d,%d]", kind, got, n, lo, hi)
		}
	}
	// A different seed produces a different schedule.
	diff := 0
	for i := int64(0); i < n; i++ {
		if a.Decision(i) != other.Decision(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// okHandler is a stand-in API handler with a JSON body big enough to
// damage.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"format": "test/v1", "payload": strings.Repeat("x", 256),
		})
	})
}

func postV1(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader("{}"))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestMiddlewareError(t *testing.T) {
	in := New(mustSpec(t, "error:p=1,kind=rate_limited,retry=15"), 1, nil)
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	resp, body, err := postV1(t, srv.URL)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var werr serveapi.ErrorResponse
	if err := json.Unmarshal(body, &werr); err != nil {
		t.Fatalf("injected error body is not JSON: %v", err)
	}
	if werr.Err.Kind != serveapi.KindRateLimited || werr.Err.RetryAfterMillis != 15 {
		t.Errorf("injected error = %+v, want rate_limited with retry 15", werr.Err)
	}
	if in.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", in.Injected())
	}
}

func TestMiddlewareTruncateAndCorrupt(t *testing.T) {
	for _, tc := range []struct {
		spec string
	}{{"truncate:p=1"}, {"corrupt:p=1"}} {
		in := New(mustSpec(t, tc.spec), 1, nil)
		srv := httptest.NewServer(in.Middleware(okHandler()))
		resp, body, err := postV1(t, srv.URL)
		srv.Close()
		if err != nil {
			t.Fatalf("%s: post: %v", tc.spec, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200 (damage is body-level)", tc.spec, resp.StatusCode)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err == nil {
			t.Errorf("%s: damaged body still decodes as JSON", tc.spec)
		}
	}
}

func TestMiddlewareReset(t *testing.T) {
	in := New(mustSpec(t, "reset:p=1"), 1, nil)
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	_, _, err := postV1(t, srv.URL)
	if err == nil {
		t.Fatal("reset fault produced a clean response, want a transport error")
	}
}

func TestMiddlewareLatency(t *testing.T) {
	in := New(mustSpec(t, "latency:p=1,ms=30"), 1, nil)
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	start := time.Now()
	resp, _, err := postV1(t, srv.URL)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms injected latency", d)
	}
}

// TestTargeting pins which requests consume schedule indices: POST /v1/*
// of the targeted tenant only — health probes, GETs and other tenants
// pass through clean.
func TestTargeting(t *testing.T) {
	in := New(mustSpec(t, "error:p=1;tenant=acme"), 1, nil)
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, tenant string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader("{}"))
		if tenant != "" {
			req.Header.Set(serveapi.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz through p=1 error injector = %d, want 200 (exempt)", code)
	}
	if code := post("/other", "acme"); code != http.StatusOK {
		t.Errorf("POST outside /v1/ = %d, want 200 (exempt)", code)
	}
	if code := post("/v1/eval", "other"); code != http.StatusOK {
		t.Errorf("POST for untargeted tenant = %d, want 200 (exempt)", code)
	}
	if in.Intercepted() != 0 {
		t.Fatalf("exempt requests consumed %d schedule indices, want 0", in.Intercepted())
	}
	if code := post("/v1/eval", "acme"); code != http.StatusServiceUnavailable {
		t.Errorf("POST for targeted tenant = %d, want injected 503", code)
	}
	if in.Intercepted() != 1 || in.Injected() != 1 {
		t.Errorf("intercepted/injected = %d/%d, want 1/1", in.Intercepted(), in.Injected())
	}

	// Without a tenant filter the default tenant is targeted too.
	in2 := New(mustSpec(t, "error:p=1"), 1, nil)
	srv2 := httptest.NewServer(in2.Middleware(okHandler()))
	defer srv2.Close()
	resp, err := http.Post(srv2.URL+"/v1/eval", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unfiltered injector let the default tenant through: %d", resp.StatusCode)
	}
}
