package sim

import (
	"ftsched/internal/core"
	"ftsched/internal/runtime"
)

// The execution types live in internal/runtime (the online interpreter);
// sim re-exports them so simulation code and its callers keep one
// vocabulary.

// ProcessOutcome records how one process ended in a simulated cycle.
type ProcessOutcome = runtime.ProcessOutcome

const (
	// NotScheduled: the process was dropped off-line (absent from the
	// active schedule) or skipped after a schedule switch.
	NotScheduled = runtime.NotScheduled
	// Completed: the process ran to completion (possibly re-executed).
	Completed = runtime.Completed
	// AbandonedByFault: a fault hit the process and its recovery budget
	// was exhausted; it was dropped at run time.
	AbandonedByFault = runtime.AbandonedByFault
)

// Result is the outcome of executing one scenario.
type Result = runtime.Result

// The out-of-model containment vocabulary (see runtime.WithEnvelope):
// simulation callers inspect Result.Violations and chaos campaigns
// configure policies without importing internal/runtime directly.

// DegradePolicy selects how an attached envelope reacts to the first
// out-of-model event of a cycle.
type DegradePolicy = runtime.DegradePolicy

const (
	// PolicyStrict aborts the cycle with a typed *runtime.EnvelopeError.
	PolicyStrict = runtime.PolicyStrict
	// PolicyShedSoft drops remaining soft work and finishes hard
	// processes on the precomputed emergency suffix.
	PolicyShedSoft = runtime.PolicyShedSoft
	// PolicyBestEffort keeps dispatching and records the violations.
	PolicyBestEffort = runtime.PolicyBestEffort
)

// ViolationKind classifies one envelope event.
type ViolationKind = runtime.ViolationKind

const (
	// WCETOverrun: an execution exceeded the process WCET.
	WCETOverrun = runtime.WCETOverrun
	// ExtraFault: a fault was consumed beyond the application bound k.
	ExtraFault = runtime.ExtraFault
	// BudgetExhausted: a process was abandoned out of recovery budget
	// (in-model, informational).
	BudgetExhausted = runtime.BudgetExhausted
	// TimeRegression: an execution reported a negative duration.
	TimeRegression = runtime.TimeRegression
)

// ViolationEvent is one envelope event of a cycle.
type ViolationEvent = runtime.ViolationEvent

// EnvelopeConfig configures the containment layer attached with
// runtime.WithEnvelope.
type EnvelopeConfig = runtime.EnvelopeConfig

// EnvelopeError is the typed error PolicyStrict returns when a cycle
// leaves the fault model.
type EnvelopeError = runtime.EnvelopeError

// Run executes one scenario against a quasi-static tree: entries of the
// active schedule run in order; faults trigger in-slack re-execution (or
// run-time dropping for soft processes out of recovery budget); after every
// entry the node's guarded arcs are consulted and the best matching switch
// is taken. See runtime.Dispatcher for the switching machinery; bulk
// evaluation should compile the tree once with runtime.NewDispatcher
// instead of calling Run per scenario. It returns the dispatcher's typed
// errors: *runtime.MalformedTreeError for a structurally broken tree,
// *runtime.ScenarioSizeError for mis-sized scenario slices.
func Run(tree *core.Tree, sc Scenario) (Result, error) {
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		return Result{}, err
	}
	return d.Run(sc)
}
