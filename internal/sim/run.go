package sim

import (
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// ProcessOutcome records how one process ended in a simulated cycle.
type ProcessOutcome int

const (
	// NotScheduled: the process was dropped off-line (absent from the
	// active schedule) or skipped after a schedule switch.
	NotScheduled ProcessOutcome = iota
	// Completed: the process ran to completion (possibly re-executed).
	Completed
	// AbandonedByFault: a fault hit the process and its recovery budget
	// was exhausted; it was dropped at run time.
	AbandonedByFault
)

// Result is the outcome of executing one scenario.
type Result struct {
	// Utility is the total utility of the cycle: Σ α_i · U_i(t_i^c) over
	// the soft processes that completed.
	Utility float64
	// Outcomes and CompletionTimes are indexed by process ID;
	// CompletionTimes is meaningful only for Completed processes.
	Outcomes        []ProcessOutcome
	CompletionTimes []model.Time
	// HardViolations lists hard processes that missed their deadline or
	// were not executed. It must stay empty for any schedule or tree
	// synthesised by this library with NFaults <= k; a non-empty slice
	// indicates a scheduler bug.
	HardViolations []model.ProcessID
	// Makespan is the completion time of the last executed entry.
	Makespan model.Time
	// Switches counts quasi-static schedule switches taken.
	Switches int
	// FinalNode is the ID of the tree node active at the end.
	FinalNode int
	// FaultsConsumed counts injected faults that actually hit an
	// executing process.
	FaultsConsumed int
	// Recoveries counts re-executions performed.
	Recoveries int
}

// Run executes one scenario against a quasi-static tree: entries of the
// active schedule run in order; faults trigger in-slack re-execution (or
// run-time dropping for soft processes out of recovery budget); after every
// entry the node's guarded arcs are consulted and the best matching switch
// is taken. See core.Node.Next for the switching policy.
func Run(tree *core.Tree, sc Scenario) Result {
	return runTree(tree, sc, nil)
}

// runTree is Run with an optional trace-event sink.
func runTree(tree *core.Tree, sc Scenario, events *[]TraceEvent) Result {
	emit := func(e TraceEvent) {
		if events != nil {
			*events = append(*events, e)
		}
	}
	app := tree.App
	res := Result{
		Outcomes:        make([]ProcessOutcome, app.N()),
		CompletionTimes: make([]model.Time, app.N()),
	}
	faultsLeft := make([]int, app.N())
	copy(faultsLeft, sc.FaultsAt)

	node := tree.Root
	now := model.Time(0)
	for pos := 0; pos < len(node.Schedule.Entries); pos++ {
		e := node.Schedule.Entries[pos]
		p := app.Proc(e.Proc)
		start := now
		if p.Release > start {
			start = p.Release
		}

		// Execute with in-slack re-execution.
		outcome := core.CompletedOK
		faulted := false
		completed := false
		t := start
		for attempt := 0; ; attempt++ {
			emit(TraceEvent{Kind: TraceStart, At: t, Proc: e.Proc, Attempt: attempt})
			t += sc.Durations[e.Proc]
			if faultsLeft[e.Proc] > 0 {
				// This attempt is hit by a transient fault,
				// detected at the end of the execution.
				faultsLeft[e.Proc]--
				res.FaultsConsumed++
				faulted = true
				emit(TraceEvent{Kind: TraceFault, At: t, Proc: e.Proc, Attempt: attempt})
				if attempt < e.Recoveries {
					// Re-execute after the recovery overhead µ.
					emit(TraceEvent{Kind: TraceRecovery, At: t, Proc: e.Proc, Attempt: attempt})
					t += app.MuOf(e.Proc)
					res.Recoveries++
					continue
				}
				// Recovery budget exhausted: abandon.
				break
			}
			completed = true
			break
		}
		now = t

		if completed {
			res.Outcomes[e.Proc] = Completed
			res.CompletionTimes[e.Proc] = now
			emit(TraceEvent{Kind: TraceComplete, At: now, Proc: e.Proc})
			if faulted {
				outcome = core.CompletedRecovered
			}
			if p.Kind == model.Hard && now > p.Deadline {
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		} else {
			res.Outcomes[e.Proc] = AbandonedByFault
			outcome = core.DroppedByFault
			emit(TraceEvent{Kind: TraceAbandon, At: now, Proc: e.Proc})
			if p.Kind == model.Hard {
				// Cannot happen for NFaults <= k: hard entries
				// carry k recoveries. Record as violation.
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		}
		res.Makespan = now

		next := node.Next(pos, now, outcome)
		if next != node {
			node = next
			res.Switches++
			emit(TraceEvent{Kind: TraceSwitch, At: now, Proc: e.Proc, Node: node.ID})
		}
	}
	res.FinalNode = node.ID

	// Hard processes that never ran are violations too.
	for _, h := range app.HardIDs() {
		if res.Outcomes[h] != Completed {
			already := false
			for _, v := range res.HardViolations {
				if v == h {
					already = true
					break
				}
			}
			if !already {
				res.HardViolations = append(res.HardViolations, h)
			}
		}
	}

	res.Utility = totalUtility(app, res.Outcomes, res.CompletionTimes)
	return res
}

// totalUtility applies the stale-value model to the realised outcomes.
func totalUtility(app *model.Application, outcomes []ProcessOutcome, done []model.Time) float64 {
	status := make([]utility.StaleStatus, app.N())
	for id := range status {
		if outcomes[id] == Completed {
			status[id] = utility.Executed
		} else {
			status[id] = utility.Dropped
		}
	}
	alpha, err := app.StaleCoefficients(status)
	if err != nil {
		panic(err) // unreachable for a validated application
	}
	var total float64
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if app.Proc(pid).Kind != model.Soft || outcomes[id] != Completed {
			continue
		}
		total += alpha[id] * app.UtilityOf(pid).Value(done[id])
	}
	return total
}
