package sim

import (
	"ftsched/internal/core"
	"ftsched/internal/runtime"
)

// The execution types live in internal/runtime (the online interpreter);
// sim re-exports them so simulation code and its callers keep one
// vocabulary.

// ProcessOutcome records how one process ended in a simulated cycle.
type ProcessOutcome = runtime.ProcessOutcome

const (
	// NotScheduled: the process was dropped off-line (absent from the
	// active schedule) or skipped after a schedule switch.
	NotScheduled = runtime.NotScheduled
	// Completed: the process ran to completion (possibly re-executed).
	Completed = runtime.Completed
	// AbandonedByFault: a fault hit the process and its recovery budget
	// was exhausted; it was dropped at run time.
	AbandonedByFault = runtime.AbandonedByFault
)

// Result is the outcome of executing one scenario.
type Result = runtime.Result

// Run executes one scenario against a quasi-static tree: entries of the
// active schedule run in order; faults trigger in-slack re-execution (or
// run-time dropping for soft processes out of recovery budget); after every
// entry the node's guarded arcs are consulted and the best matching switch
// is taken. See runtime.Dispatcher for the switching machinery; bulk
// evaluation should compile the tree once with runtime.NewDispatcher
// instead of calling Run per scenario. It returns the dispatcher's typed
// errors: *runtime.MalformedTreeError for a structurally broken tree,
// *runtime.ScenarioSizeError for mis-sized scenario slices.
func Run(tree *core.Tree, sc Scenario) (Result, error) {
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		return Result{}, err
	}
	return d.Run(sc)
}
