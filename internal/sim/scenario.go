package sim

import (
	"fmt"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// Scenario fixes everything that is random in one operation cycle: the
// actual execution time of every process and the processes hit by
// transient faults.
//
// Modelling choices (documented in DESIGN.md): a process's re-execution
// takes the same sampled duration as its primary execution (same input
// data), and each injected fault picks a victim process uniformly at
// random among the given candidates; the fault hits the victim's next
// execution attempt. A fault aimed at a process that never starts (because
// it was dropped) does not materialise, mirroring the physical reality
// that a transient fault only matters while its victim is executing.
type Scenario struct {
	// Durations[p] is the sampled actual execution time of process p,
	// uniform on [BCET, WCET].
	Durations []model.Time
	// FaultsAt[p] is the number of faults that will hit p's first
	// execution attempts.
	FaultsAt []int
	// NFaults is the total number of injected faults.
	NFaults int
}

// Sample draws a scenario for the application: uniform execution times and
// nFaults faults aimed at uniformly chosen victims (with replacement) among
// the candidate processes. Candidates are typically the processes of the
// root schedule; pass nil to draw victims from all processes.
func Sample(app *model.Application, rng *rand.Rand, nFaults int, candidates []model.ProcessID) Scenario {
	n := app.N()
	sc := Scenario{
		Durations: make([]model.Time, n),
		FaultsAt:  make([]int, n),
		NFaults:   nFaults,
	}
	for id := 0; id < n; id++ {
		p := app.Proc(model.ProcessID(id))
		span := int64(p.WCET - p.BCET)
		d := p.BCET
		if span > 0 {
			d += model.Time(rng.Int63n(span + 1))
		}
		sc.Durations[id] = d
	}
	if nFaults > 0 {
		pool := candidates
		if pool == nil {
			pool = make([]model.ProcessID, n)
			for id := 0; id < n; id++ {
				pool[id] = model.ProcessID(id)
			}
		}
		for i := 0; i < nFaults; i++ {
			victim := pool[rng.Intn(len(pool))]
			sc.FaultsAt[victim]++
		}
	}
	return sc
}

// Validate checks a hand-built scenario against the application.
func (sc *Scenario) Validate(app *model.Application) error {
	if len(sc.Durations) != app.N() || len(sc.FaultsAt) != app.N() {
		return fmt.Errorf("sim: scenario sized for %d processes, application has %d",
			len(sc.Durations), app.N())
	}
	total := 0
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		if sc.Durations[id] < p.BCET || sc.Durations[id] > p.WCET {
			return fmt.Errorf("sim: duration %d of %s outside [%d,%d]",
				sc.Durations[id], p.Name, p.BCET, p.WCET)
		}
		if sc.FaultsAt[id] < 0 {
			return fmt.Errorf("sim: negative fault count on %s", p.Name)
		}
		total += sc.FaultsAt[id]
	}
	if total != sc.NFaults {
		return fmt.Errorf("sim: fault counts sum to %d, NFaults is %d", total, sc.NFaults)
	}
	if sc.NFaults > app.K() {
		return fmt.Errorf("sim: %d faults exceed the application bound k=%d", sc.NFaults, app.K())
	}
	return nil
}

// StaticTree wraps a single f-schedule as a degenerate one-node tree so
// that static schedules (FTSS, FTSF) run through the same online executor
// as quasi-static trees.
func StaticTree(app *model.Application, s *schedule.FSchedule) *core.Tree {
	root := &core.Node{
		ID:             0,
		Schedule:       s,
		SwitchPos:      0,
		KRem:           app.K(),
		DroppedOnFault: model.NoProcess,
	}
	return &core.Tree{App: app, Root: root, Nodes: []*core.Node{root}}
}
