package sim

import (
	"fmt"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
)

// Scenario fixes everything that is random in one operation cycle; see
// runtime.Scenario for the modelling choices.
type Scenario = runtime.Scenario

// SampleError reports a sampling request the application cannot satisfy:
// a fault count outside [0, k], or faults requested with an empty victim
// pool. Before this check, an empty pool panicked inside math/rand and an
// over-bound count silently produced scenarios the trees carry no
// guarantee for.
type SampleError struct {
	// NFaults is the requested fault count; Bound is the application's k.
	NFaults, Bound int
	// EmptyPool is set when faults were requested but the candidate pool
	// was empty.
	EmptyPool bool
}

// Error implements error.
func (e *SampleError) Error() string {
	if e.EmptyPool {
		return fmt.Sprintf("sim: cannot aim %d fault(s): empty victim candidate pool", e.NFaults)
	}
	return fmt.Sprintf("sim: fault count %d outside the application bound [0,%d]", e.NFaults, e.Bound)
}

// Sample draws a scenario for the application: uniform execution times and
// nFaults faults aimed at uniformly chosen victims (with replacement) among
// the candidate processes. Candidates are typically the processes of the
// root schedule; pass nil to draw victims from all processes. It returns a
// *SampleError when nFaults is outside [0, app.K()] or positive with an
// empty candidate pool.
func Sample(app *model.Application, rng *rand.Rand, nFaults int, candidates []model.ProcessID) (Scenario, error) {
	var sc Scenario
	err := SampleInto(&sc, app, rng, nFaults, candidates)
	return sc, err
}

// MustSample is Sample for requests known to be in bounds; it panics on a
// *SampleError.
func MustSample(app *model.Application, rng *rand.Rand, nFaults int, candidates []model.ProcessID) Scenario {
	sc, err := Sample(app, rng, nFaults, candidates)
	if err != nil {
		panic(err)
	}
	return sc
}

// SampleInto is Sample reusing the buffers of sc, for bulk evaluation. The
// random-number stream it consumes is identical to Sample's, so the two
// are interchangeable scenario for scenario. On error, sc is unchanged and
// the random stream is untouched.
func SampleInto(sc *Scenario, app *model.Application, rng *rand.Rand, nFaults int, candidates []model.ProcessID) error {
	if nFaults < 0 || nFaults > app.K() {
		return &SampleError{NFaults: nFaults, Bound: app.K()}
	}
	if nFaults > 0 && candidates != nil && len(candidates) == 0 {
		return &SampleError{NFaults: nFaults, EmptyPool: true}
	}
	n := app.N()
	if cap(sc.Durations) < n {
		sc.Durations = make([]model.Time, n)
	} else {
		sc.Durations = sc.Durations[:n]
	}
	if cap(sc.FaultsAt) < n {
		sc.FaultsAt = make([]int, n)
	} else {
		sc.FaultsAt = sc.FaultsAt[:n]
		for i := range sc.FaultsAt {
			sc.FaultsAt[i] = 0
		}
	}
	sc.NFaults = nFaults
	for id := 0; id < n; id++ {
		p := app.Proc(model.ProcessID(id))
		span := int64(p.WCET - p.BCET)
		d := p.BCET
		if span > 0 {
			d += model.Time(rng.Int63n(span + 1))
		}
		sc.Durations[id] = d
	}
	if nFaults > 0 {
		pool := candidates
		if pool == nil {
			pool = make([]model.ProcessID, n)
			for id := 0; id < n; id++ {
				pool[id] = model.ProcessID(id)
			}
		}
		for i := 0; i < nFaults; i++ {
			victim := pool[rng.Intn(len(pool))]
			sc.FaultsAt[victim]++
		}
	}
	return nil
}

// SampleRNGInto is SampleInto over the engine's fast RNG: the same
// bound checks, the same draw order (durations in process-ID order, then
// fault victims), the same buffer reuse — but drawing from a splitmix64
// stream instead of math/rand. It is the scalar reference for the batch
// sampler: filling a block of scenarios through batch planes and sampling
// each scenario individually with SampleRNGInto from the same per-scenario
// seeds produce identical scenarios (asserted by
// TestBatchSamplerMatchesScalar). The math/rand-based SampleInto remains
// for one-off sampling against an externally owned *rand.Rand; the two
// streams are unrelated.
func SampleRNGInto(sc *Scenario, app *model.Application, rng *RNG, nFaults int, candidates []model.ProcessID) error {
	if nFaults < 0 || nFaults > app.K() {
		return &SampleError{NFaults: nFaults, Bound: app.K()}
	}
	if nFaults > 0 && candidates != nil && len(candidates) == 0 {
		return &SampleError{NFaults: nFaults, EmptyPool: true}
	}
	n := app.N()
	if cap(sc.Durations) < n {
		sc.Durations = make([]model.Time, n)
	} else {
		sc.Durations = sc.Durations[:n]
	}
	if cap(sc.FaultsAt) < n {
		sc.FaultsAt = make([]int, n)
	} else {
		sc.FaultsAt = sc.FaultsAt[:n]
		for i := range sc.FaultsAt {
			sc.FaultsAt[i] = 0
		}
	}
	sc.NFaults = nFaults
	for id := 0; id < n; id++ {
		p := app.Proc(model.ProcessID(id))
		span := int64(p.WCET - p.BCET)
		d := p.BCET
		if span > 0 {
			d += model.Time(rng.Int63n(span + 1))
		}
		sc.Durations[id] = d
	}
	if nFaults > 0 {
		pool := candidates
		if pool == nil {
			pool = make([]model.ProcessID, n)
			for id := 0; id < n; id++ {
				pool[id] = model.ProcessID(id)
			}
		}
		for i := 0; i < nFaults; i++ {
			victim := pool[rng.Intn(len(pool))]
			sc.FaultsAt[victim]++
		}
	}
	return nil
}

// StaticTree wraps a single f-schedule as a degenerate one-node tree so
// that static schedules (FTSS, FTSF) run through the same online executor
// as quasi-static trees.
func StaticTree(app *model.Application, s *schedule.FSchedule) *core.Tree {
	return &core.Tree{
		App: app,
		Nodes: []core.Node{{
			Schedule:       s,
			SwitchPos:      0,
			KRem:           app.K(),
			DroppedOnFault: model.NoProcess,
			Parent:         core.NoNode,
		}},
	}
}
