// Package sim executes quasi-static trees online and evaluates them with
// Monte-Carlo simulation, reproducing the experimental methodology of
// Izosimov et al. (DATE 2008), §6: actual execution times are uniformly
// distributed between the best-case and worst-case execution times, and 0,
// 1, 2, ... k transient faults are injected per operation cycle.
//
// The online scheduler (Run) mirrors the paper's runtime model: it walks
// one root-to-leaf path of the quasi-static tree, executing the current
// f-schedule non-preemptively and consulting the precomputed switch guards
// at each completion, fault recovery, or fault-induced drop. Switching
// costs a single guard lookup — the "very low online overhead" claim of
// §1 — because all optimisation happened offline.
//
// Simulation never mutates the tree or the application; trees synthesised
// by package core (including concurrently, with FTQSOptions.Workers > 1)
// can therefore be evaluated from many goroutines at once, which is how
// MonteCarlo parallelises its scenario sweep.
//
// Scenario sampling is bound-checked: Sample and SampleInto reject fault
// counts outside [0, k] and empty victim pools with a typed *SampleError
// before consuming any RNG state or mutating the destination scenario, so
// a rejected call leaves both the RNG stream and the caller's buffers
// exactly as they were. MustSample wraps Sample for tests and examples
// where an error is a programming bug.
//
// MonteCarlo runs on the batch evaluation engine (batch.go): scenarios
// are cut into fixed 256-scenario blocks, each block is sampled
// structure-of-arrays and dispatched with reused scratch, and workers
// claim whole blocks through RunBlocks. The engine's determinism
// contract is that MCStats is bit-identical for every MCConfig.Workers
// value: scenario i is always seeded from ScenarioSeed(Seed, i), the
// block grid depends only on the scenario count, and floating-point
// partials are folded sequentially in block order after the parallel
// fill, so no schedule interleaving can reorder an addition. Chaos
// campaigns (package chaos) shard their cycles through the same
// RunBlocks driver under the same contract.
package sim
