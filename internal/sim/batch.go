// Batch evaluation engine: the throughput layer beneath MonteCarlo (and
// the chaos campaign driver). The design goal is raw scenarios/sec with
// bit-identical statistics for any worker count:
//
//   - Scenario indices are partitioned into fixed BlockSize blocks. The
//     block grid depends only on the scenario count — never on the worker
//     count — and each block is evaluated sequentially by exactly one
//     worker, so every per-block accumulator is a pure function of
//     (seed, block index).
//   - Workers stride over blocks; the fold over per-block partials runs
//     sequentially in block order on the coordinating goroutine.
//     Floating-point sums therefore always reduce in the same order, which
//     is what makes MCStats bit-identical for 1, 2 or 64 workers — the
//     same determinism discipline certify and chaos enforce.
//   - Sampling is structure-of-arrays: one completion-time plane per
//     process, filled a block at a time with the per-process BCET/span
//     constants hoisted out of the scenario loop, from per-scenario
//     splitmix64 streams (RNG) seeded with ScenarioSeed. Per-scenario
//     reseeding is what decouples the scenario stream from the
//     partitioning; doing it with RNG instead of math/rand is what makes
//     it free (a store instead of a 607-word re-expansion).
//   - Aggregation is streaming: running sum/min/max/counters per block
//     plus one fixed-bucket utility histogram per worker. No per-scenario
//     result is retained, so a 10^6-scenario evaluation allocates the same
//     few fixed buffers as a 10^3-scenario one.
//
// The compiled runtime.Dispatcher is immutable and safe for concurrent
// use, so all workers share one dispatcher and keep only their Scenario
// and Result scratch private — the "dispatcher shard" is the per-worker
// scratch, not a copy of the dispatch table.

package sim

import (
	"context"
	"math"
	"sync"

	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// BlockSize is the fixed scenario-block granularity of the sharded
// evaluation driver. It balances three pressures: blocks long enough to
// amortise per-block setup and keep the structure-of-arrays planes
// cache-resident, short enough that small evaluations still spread over
// workers, and — most importantly — fixed, because the block grid is part
// of the determinism contract: changing BlockSize changes the
// floating-point fold order and thus the last bits of MCStats.
const BlockSize = 256

// RunBlocks partitions the index range [0, n) into fixed BlockSize blocks
// and executes them on min(workers, blocks) goroutines. newRunner is
// called once per worker (allocate reusable scratch there); the returned
// function is then called with (block, lo, hi) for every block the worker
// owns, sequentially and in increasing block order per worker. Blocks are
// assigned by stride, so which worker runs a block depends on the worker
// count — anything a block writes must therefore depend only on the block
// index, never on the worker index (per-worker state may be reused as
// scratch but must not leak between blocks in index-dependent ways).
//
// Cancellation is checked before every block: on ctx expiry workers stop
// within one block and RunBlocks returns ctx.Err(). A block error stops
// the whole run; the first error in block order is not guaranteed — first
// failure wins — so treat errors as fatal, not per-block data.
func RunBlocks(ctx context.Context, n, workers int, newRunner func(worker int) func(block, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	blocks := (n + BlockSize - 1) / BlockSize
	if workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	done := ctx.Done()
	var errOnce sync.Once
	var workerErr error
	fail := func(err error) { errOnce.Do(func() { workerErr = err }) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := newRunner(w)
			for b := w; b < blocks; b += workers {
				select {
				case <-done:
					return
				default:
				}
				lo := b * BlockSize
				hi := lo + BlockSize
				if hi > n {
					hi = n
				}
				if err := run(b, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if workerErr != nil {
		return workerErr
	}
	return ctx.Err()
}

// blockStats is the streaming accumulator of one scenario block. All
// fields are exactly mergeable across blocks: the integer counters and
// min/max are associative, and the float sums are folded in fixed block
// order, so the reduction is a pure function of (seed, scenario count).
type blockStats struct {
	n              int
	sum, sumSq     float64
	min, max       float64
	hardViolations int
	degraded       int
	events         int
	switches       int64
	recoveries     int64
	// energy sums (total / active / idle), folded in block order like the
	// utility sums so the means are bit-identical for any worker count.
	energy       float64
	energyActive float64
	energyIdle   float64
}

// mcBuckets is the resolution of the streaming utility histogram behind
// the MCStats percentiles: 256 equal-width buckets over [0, the
// application's utility upper bound], each tracking (count, min, max).
// Nearest-rank selection lands in a bucket and interpolates between that
// bucket's observed min and max, so the percentile error is bounded by
// one bucket width (≤ 0.4% of the utility range) and collapses to exact
// whenever a bucket holds a single distinct value.
const mcBuckets = 256

// mcHist is one worker's utility histogram. Bucket counts and per-bucket
// min/max merge commutatively, so per-worker histograms fold to the same
// merged histogram for any worker count.
type mcHist struct {
	width  float64
	counts [mcBuckets]int64
	mins   [mcBuckets]float64
	maxs   [mcBuckets]float64
}

func newMCHist(width float64) *mcHist {
	h := &mcHist{width: width}
	for i := range h.mins {
		h.mins[i] = math.Inf(1)
		h.maxs[i] = math.Inf(-1)
	}
	return h
}

func (h *mcHist) bucket(u float64) int {
	if h.width <= 0 || u <= 0 {
		return 0
	}
	b := int(u / h.width)
	if b >= mcBuckets {
		b = mcBuckets - 1
	}
	return b
}

func (h *mcHist) add(u float64) {
	b := h.bucket(u)
	h.counts[b]++
	if u < h.mins[b] {
		h.mins[b] = u
	}
	if u > h.maxs[b] {
		h.maxs[b] = u
	}
}

// merge folds other into h; both operations commute, so merge order does
// not affect the result.
func (h *mcHist) merge(other *mcHist) {
	for b := 0; b < mcBuckets; b++ {
		h.counts[b] += other.counts[b]
		if other.mins[b] < h.mins[b] {
			h.mins[b] = other.mins[b]
		}
		if other.maxs[b] > h.maxs[b] {
			h.maxs[b] = other.maxs[b]
		}
	}
}

// quantile returns the nearest-rank p-quantile estimate: the rank's bucket
// is located by cumulative count, then the value interpolates between the
// bucket's observed min and max by rank position. Estimates are monotone
// in p and always lie between observed values, so
// Min ≤ Q(0.05) ≤ Q(0.50) ≤ Q(0.95) ≤ Max holds by construction.
func (h *mcHist) quantile(p float64, total int) float64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > int64(total) {
		rank = int64(total)
	}
	var cum int64
	for b := 0; b < mcBuckets; b++ {
		c := h.counts[b]
		if c == 0 {
			continue
		}
		if rank <= cum+c {
			if c == 1 || h.maxs[b] == h.mins[b] {
				return h.mins[b]
			}
			frac := float64(rank-cum-1) / float64(c-1)
			return h.mins[b] + (h.maxs[b]-h.mins[b])*frac
		}
		cum += c
	}
	return 0
}

// utilityUpperBound returns a sound upper bound on the total utility of
// any scenario: Σ over soft processes of U_p(0). Utility functions are
// non-increasing and non-negative, and the stale coefficients α are in
// [0, 1], so no completed set can exceed it. It depends only on the
// application, which keeps the histogram geometry — and therefore the
// percentile estimates — independent of the worker count and the
// scenario stream.
func utilityUpperBound(app *model.Application) float64 {
	var total float64
	for id := 0; id < app.N(); id++ {
		total += app.UtilityOf(model.ProcessID(id)).Value(0)
	}
	return total
}

// mcBatch wires one Monte-Carlo evaluation through the block driver.
type mcBatch struct {
	app        *model.Application
	d          *runtime.Dispatcher
	cfg        MCConfig
	candidates []model.ProcessID
	sink       obs.Sink
	// bcet and span are the hoisted per-process sampling constants,
	// read-only across workers.
	bcet []model.Time
	span []int64
	// partials is indexed by block; hists by worker.
	partials []blockStats
	hists    []*mcHist
	histW    float64
}

func newMCBatch(app *model.Application, d *runtime.Dispatcher, cfg MCConfig, candidates []model.ProcessID, sink obs.Sink) *mcBatch {
	n := app.N()
	e := &mcBatch{
		app:        app,
		d:          d,
		cfg:        cfg,
		candidates: candidates,
		sink:       sink,
		bcet:       make([]model.Time, n),
		span:       make([]int64, n),
		partials:   make([]blockStats, (cfg.Scenarios+BlockSize-1)/BlockSize),
		histW:      utilityUpperBound(app) / mcBuckets,
	}
	for id := 0; id < n; id++ {
		p := app.Proc(model.ProcessID(id))
		e.bcet[id] = p.BCET
		e.span[id] = int64(p.WCET - p.BCET)
	}
	return e
}

// runner builds one worker's block function with all scratch preallocated:
// the per-scenario RNG states, the per-process completion-time planes, the
// flat victim buffer, and the reused Scenario/Result pair. Nothing inside
// the block loop allocates, which is what keeps the steady state at ~0
// allocations per scenario (TestMonteCarloBatchAllocs).
func (e *mcBatch) runner(worker int) func(block, lo, hi int) error {
	n := e.app.N()
	nf := e.cfg.Faults
	rngs := make([]RNG, BlockSize)
	planes := make([][]model.Time, n)
	for p := range planes {
		planes[p] = make([]model.Time, BlockSize)
	}
	var victims []model.ProcessID
	if nf > 0 {
		victims = make([]model.ProcessID, nf*BlockSize)
	}
	sc := Scenario{
		Durations: make([]model.Time, n),
		FaultsAt:  make([]int, n),
		NFaults:   nf,
	}
	var res runtime.Result
	hist := newMCHist(e.histW)
	e.hists[worker] = hist

	return func(block, lo, hi int) error {
		blen := hi - lo
		// Phase 1 — reseed: one splitmix64 state per scenario of the
		// block, derived from (Seed, scenario index) exactly as the
		// scalar sampler would.
		for j := 0; j < blen; j++ {
			rngs[j].Reseed(ScenarioSeed(e.cfg.Seed, lo+j))
		}
		// Phase 2 — structure-of-arrays sampling: fill each process's
		// completion-time plane across the whole block with that
		// process's BCET/span constants held in registers. Each scenario
		// draws from its own stream in process-ID order, so the
		// per-scenario draw sequence is identical to SampleRNGInto's.
		for p := 0; p < n; p++ {
			plane := planes[p]
			base := e.bcet[p]
			if spa := e.span[p]; spa > 0 {
				for j := 0; j < blen; j++ {
					plane[j] = base + model.Time(rngs[j].Int63n(spa+1))
				}
			} else {
				for j := 0; j < blen; j++ {
					plane[j] = base
				}
			}
		}
		if nf > 0 {
			pool := e.candidates
			for j := 0; j < blen; j++ {
				r := &rngs[j]
				for f := 0; f < nf; f++ {
					victims[j*nf+f] = pool[r.Intn(len(pool))]
				}
			}
		}
		// Phase 3 — dispatch and streaming aggregation: gather each
		// scenario from the planes into the reused Scenario, run it
		// through the shared compiled dispatcher, and accumulate into
		// this block's partial (plus the worker's histogram).
		bs := &e.partials[block]
		bs.min = math.Inf(1)
		bs.max = math.Inf(-1)
		for j := 0; j < blen; j++ {
			for p := 0; p < n; p++ {
				sc.Durations[p] = planes[p][j]
				sc.FaultsAt[p] = 0
			}
			for f := 0; f < nf; f++ {
				sc.FaultsAt[victims[j*nf+f]]++
			}
			if err := e.d.RunInto(&res, sc); err != nil {
				return err
			}
			u := res.Utility
			bs.n++
			bs.sum += u
			bs.sumSq += u * u
			if u < bs.min {
				bs.min = u
			}
			if u > bs.max {
				bs.max = u
			}
			if len(res.HardViolations) > 0 {
				bs.hardViolations++
			}
			if res.Degraded {
				bs.degraded++
			}
			bs.events += len(res.Violations)
			bs.switches += int64(res.Switches)
			bs.recoveries += int64(res.Recoveries)
			bs.energy += res.Energy
			bs.energyActive += res.EnergyActive
			bs.energyIdle += res.EnergyIdle
			hist.add(u)
			if e.sink != nil {
				e.sink.Observe(obs.MCUtility, int64(math.Round(u)))
			}
		}
		return nil
	}
}

// run executes the evaluation and folds the statistics. The fold walks
// blocks in index order (float sums) and merges the per-worker histograms
// (commutative), so the returned MCStats is bit-identical for any worker
// count.
func (e *mcBatch) run(ctx context.Context) (MCStats, error) {
	workers := e.cfg.Workers
	blocks := len(e.partials)
	if workers > blocks {
		workers = blocks
	}
	e.hists = make([]*mcHist, workers)
	err := RunBlocks(ctx, e.cfg.Scenarios, workers, e.runner)

	if e.sink != nil {
		// Scenario throughput covers what actually ran, even when the
		// evaluation is abandoned for cancellation.
		var simulated int64
		for i := range e.partials {
			simulated += int64(e.partials[i].n)
		}
		e.sink.Add(obs.MCScenarios, simulated)
	}
	if err != nil {
		return MCStats{}, err
	}
	if e.sink != nil {
		e.sink.Add(obs.MCRuns, 1)
	}

	stats := MCStats{Scenarios: e.cfg.Scenarios}
	var sum, sumSq float64
	var energy, energyActive, energyIdle float64
	var switches, recoveries int64
	first := true
	for i := range e.partials {
		p := &e.partials[i]
		if p.n == 0 {
			continue
		}
		sum += p.sum
		sumSq += p.sumSq
		energy += p.energy
		energyActive += p.energyActive
		energyIdle += p.energyIdle
		if first || p.min < stats.MinUtility {
			stats.MinUtility = p.min
		}
		if first || p.max > stats.MaxUtility {
			stats.MaxUtility = p.max
		}
		first = false
		stats.HardViolations += p.hardViolations
		stats.Degraded += p.degraded
		stats.Violations += p.events
		switches += p.switches
		recoveries += p.recoveries
	}
	n := float64(e.cfg.Scenarios)
	stats.MeanUtility = sum / n
	stats.MeanSwitches = float64(switches) / n
	stats.MeanRecoveries = float64(recoveries) / n
	stats.MeanEnergy = energy / n
	stats.MeanEnergyActive = energyActive / n
	stats.MeanEnergyIdle = energyIdle / n
	if e.cfg.Scenarios > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance > 0 {
			stats.StdDev = math.Sqrt(variance)
		}
	}
	merged := e.hists[0]
	for _, h := range e.hists[1:] {
		merged.merge(h)
	}
	stats.P05 = merged.quantile(0.05, e.cfg.Scenarios)
	stats.P50 = merged.quantile(0.50, e.cfg.Scenarios)
	stats.P95 = merged.quantile(0.95, e.cfg.Scenarios)
	return stats, nil
}
