package sim

import (
	"math"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// mappedTree synthesises an FTQS tree for app bound to the lp/hp two-core
// platform with the deterministic biased mapping.
func mappedTree(t *testing.T, app *model.Application, m int) *core.Tree {
	t.Helper()
	plat := model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	mapped, err := app.WithPlatform(plat, model.BiasedMapping(app, plat))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(mapped, core.FTQSOptions{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestMonteCarloMappedWorkerInvariance: the acceptance contract for the
// platform refactor — the full MCStats struct, energy means included, is
// bit-identical for any MCConfig.Workers on mapped heterogeneous trees.
func TestMonteCarloMappedWorkerInvariance(t *testing.T) {
	fixtures := []struct {
		name string
		app  *model.Application
	}{
		{"fig1", apps.Fig1()},
		{"cc", apps.CruiseController()},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			tree := mappedTree(t, fx.app, 8)
			cfg := MCConfig{Scenarios: 1500, Faults: min(1, fx.app.K()), Seed: 21}
			cfg.Workers = 1
			base, err := MonteCarlo(tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The three means are folded independently, so the split only
			// holds to float rounding.
			if gap := base.MeanEnergy - (base.MeanEnergyActive + base.MeanEnergyIdle); base.MeanEnergyIdle <= 0 ||
				math.Abs(gap) > 1e-9*base.MeanEnergy {
				t.Fatalf("mapped energy split inconsistent: %+v", base)
			}
			for _, w := range []int{2, 8} {
				cfg.Workers = w
				got, err := MonteCarlo(tree, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Errorf("workers=%d: stats differ:\n  got  %+v\n  want %+v", w, got, base)
				}
			}
		})
	}
}
