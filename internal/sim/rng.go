package sim

import "math/bits"

// RNG is the evaluation engine's scenario random-number generator: a
// splitmix64 stream over a single 64-bit state word. It exists because the
// batch engine reseeds once per scenario (the ScenarioSeed discipline that
// makes results independent of worker partitioning), and reseeding
// math/rand's 607-word lagged-Fibonacci source costs ~11 µs — an order of
// magnitude more than simulating the scenario itself. Reseeding an RNG is
// a single store.
//
// Determinism contract: the stream drawn from a given seed is a pure
// function of the seed, identical across platforms (64-bit integer ops
// only, no floating point in the core), and frozen — changing it would
// silently change every recorded Monte-Carlo statistic and chaos report,
// so treat the constants and the draw algorithms below as part of the
// serialised-artefact surface, like a file format.
//
// Bounded draws use Lemire's multiply-shift reduction without rejection:
// the bias is at most n/2^64 per draw (< 10^-14 for every span in this
// model), which is far below Monte-Carlo noise at any scenario count this
// engine can reach, and it keeps the per-draw cost at one multiplication.
//
// An RNG is not safe for concurrent use; the engine keeps one (or one
// block of states) per worker.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds — in
// particular consecutive ScenarioSeed outputs — yield decorrelated
// streams: the first output already applies the full splitmix64 finaliser.
func NewRNG(seed int64) RNG { return RNG{state: uint64(seed)} }

// Reseed rewinds the generator to the exact state NewRNG(seed) creates.
func (r *RNG) Reseed(seed int64) { r.state = uint64(seed) }

// Uint64 advances the splitmix64 stream by one step.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n draws a near-uniform integer in [0, n). n must be positive; the
// engine only calls it with validated spans, so the check is a debug
// guard, not an error path.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive bound")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int64(hi)
}

// Intn draws a near-uniform integer in [0, n); n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 draws a uniform float in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
