package sim

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
)

// TestMonteCarloWorkerInvariance: the statistics are bit-identical for any
// worker count, because scenario i always derives from (Seed, i).
func TestMonteCarloWorkerInvariance(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	base, err := MonteCarlo(tree, MCConfig{Scenarios: 777, Faults: 1, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 777, 0} {
		got, err := MonteCarlo(tree, MCConfig{Scenarios: 777, Faults: 1, Seed: 13, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.MeanUtility != base.MeanUtility || got.StdDev != base.StdDev ||
			got.MinUtility != base.MinUtility || got.MaxUtility != base.MaxUtility ||
			got.HardViolations != base.HardViolations ||
			got.MeanSwitches != base.MeanSwitches ||
			got.MeanRecoveries != base.MeanRecoveries {
			t.Errorf("workers=%d: stats differ: %+v vs %+v", w, got, base)
		}
	}
}

// TestMonteCarloSeedSensitivity: different seeds produce different scenario
// streams (no accidental seed collapse in the mixing function).
func TestMonteCarloSeedSensitivity(t *testing.T) {
	app := apps.Fig8()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := StaticTree(app, s)
	a, err := MonteCarlo(tree, MCConfig{Scenarios: 500, Faults: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(tree, MCConfig{Scenarios: 500, Faults: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility == b.MeanUtility && a.StdDev == b.StdDev {
		t.Error("different seeds produced identical statistics — suspicious")
	}
	// Same seed: reproducible.
	c, err := MonteCarlo(tree, MCConfig{Scenarios: 500, Faults: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility != c.MeanUtility {
		t.Error("same seed not reproducible")
	}
}

func TestScenarioSeedMixing(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := ScenarioSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at i=%d", i)
		}
		seen[s] = true
	}
	// Neighbouring base seeds stay distinct too.
	if ScenarioSeed(1, 0) == ScenarioSeed(2, 0) {
		t.Error("adjacent base seeds collide at i=0")
	}
}

// TestMonteCarloPercentiles: percentiles order correctly and bound the
// mean.
func TestMonteCarloPercentiles(t *testing.T) {
	app := apps.Fig8()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	st, err := MonteCarlo(StaticTree(app, s), MCConfig{Scenarios: 2000, Faults: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(st.MinUtility <= st.P05 && st.P05 <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.MaxUtility) {
		t.Errorf("percentiles out of order: %+v", st)
	}
	if st.MeanUtility < st.P05 || st.MeanUtility > st.P95 {
		t.Errorf("mean %g outside [P05,P95] = [%g,%g]", st.MeanUtility, st.P05, st.P95)
	}
}
