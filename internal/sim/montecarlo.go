package sim

import (
	"context"
	"fmt"
	goruntime "runtime"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// MCConfig parametrises a Monte-Carlo evaluation.
type MCConfig struct {
	// Scenarios is the number of execution scenarios to simulate (the
	// paper uses 20 000 per configuration).
	Scenarios int
	// Faults is the number of transient faults injected per scenario
	// (0 <= Faults <= k).
	Faults int
	// Seed makes the evaluation reproducible.
	Seed int64
	// Workers spreads the scenario blocks over goroutines. 0 selects
	// runtime.NumCPU(); 1 forces sequential evaluation. Results are
	// bit-identical for any worker count: scenario i always derives from
	// (Seed, i) and statistics fold in fixed block order.
	Workers int
	// Dispatcher optionally reuses a pre-compiled dispatcher across
	// evaluations; nil compiles the tree internally. It must have been
	// compiled from the very tree being evaluated (pointer identity), which
	// is checked. Results are identical either way.
	Dispatcher *runtime.Dispatcher
	// Sink receives evaluation events (runs, scenario throughput, the
	// per-scenario utility distribution). When the dispatcher is built
	// internally it inherits the sink, so dispatch events flow too; a
	// caller-supplied Dispatcher keeps whatever sink it was built with. A
	// nil sink or obs.NopSink disables instrumentation. Instrumentation
	// never alters the statistics.
	Sink obs.Sink
}

// ConfigError reports an MCConfig field that fails validation, carrying
// the field name and the rejected value so CLIs and tests can react to
// the specific field instead of parsing a message.
type ConfigError struct {
	// Field is the MCConfig field name ("Scenarios", "Faults", "Workers").
	Field string
	// Value is the rejected value.
	Value int
}

// Error implements error.
func (e *ConfigError) Error() string {
	switch e.Field {
	case "Scenarios":
		return fmt.Sprintf("sim: MCConfig.Scenarios must be positive (got %d)", e.Value)
	default:
		return fmt.Sprintf("sim: MCConfig.%s must be non-negative (got %d)", e.Field, e.Value)
	}
}

// Validate normalises the configuration and rejects impossible values with
// a *ConfigError: a non-positive scenario count, a negative fault count or
// a negative worker count. Workers 0 is replaced by the CPU count. The
// fault upper bound depends on the application and is checked by
// MonteCarlo itself. Every evaluation entry point applies Validate, so CLI
// flags and library callers get the same diagnostics.
func (c MCConfig) Validate() (MCConfig, error) {
	if c.Scenarios <= 0 {
		return c, &ConfigError{Field: "Scenarios", Value: c.Scenarios}
	}
	if c.Faults < 0 {
		return c, &ConfigError{Field: "Faults", Value: c.Faults}
	}
	if c.Workers < 0 {
		return c, &ConfigError{Field: "Workers", Value: c.Workers}
	}
	if c.Workers == 0 {
		c.Workers = goruntime.NumCPU()
	}
	return c, nil
}

// MCStats aggregates a Monte-Carlo evaluation.
type MCStats struct {
	// MeanUtility is the overall utility averaged over all scenarios —
	// the paper's figure of merit.
	MeanUtility float64
	// StdDev is the sample standard deviation of the utility.
	StdDev float64
	// MinUtility and MaxUtility bound the observed utilities.
	MinUtility, MaxUtility float64
	// P05, P50 and P95 are utility percentile estimates from the engine's
	// streaming 256-bucket histogram (nearest-rank bucket, interpolated
	// between the bucket's observed min and max). The estimate error is
	// bounded by one bucket width — ≤ 0.4% of the application's utility
	// range — and Min ≤ P05 ≤ P50 ≤ P95 ≤ Max always holds. The spread
	// matters for soft real-time quality-of-service reporting, where the
	// mean hides bad tails.
	P05, P50, P95 float64
	// HardViolations counts scenarios with at least one hard-deadline
	// violation; it must be zero for correct schedules.
	HardViolations int
	// Degraded counts scenarios the dispatcher's envelope degraded —
	// PolicyShedSoft dropped soft work for the emergency hard-only
	// suffix. Zero unless the evaluation runs through a dispatcher with
	// an attached envelope (MCConfig.Dispatcher + runtime.WithEnvelope).
	Degraded int
	// Violations counts envelope violation events across all scenarios,
	// including the in-model BudgetExhausted records every dispatcher
	// reports.
	Violations int
	// MeanSwitches is the average number of schedule switches taken.
	MeanSwitches float64
	// MeanRecoveries is the average number of re-executions performed.
	MeanRecoveries float64
	// MeanEnergy is the average platform energy consumed per cycle
	// (active + idle over all cores); MeanEnergyActive and MeanEnergyIdle
	// are the two summands. On the canonical single-core platform
	// MeanEnergy equals the mean busy time of the core. Kept as scalars so
	// MCStats stays comparable; per-core breakdowns come from
	// runtime.Result.CoreEnergy.
	MeanEnergy, MeanEnergyActive, MeanEnergyIdle float64
	// Scenarios echoes the number of scenarios simulated.
	Scenarios int
}

// ScenarioSeed derives the independent seed of scenario i from the
// configuration seed with a splitmix64-style mix, so that the scenario
// stream does not depend on how scenarios are partitioned over workers.
// It is the seeding discipline of every scenario-indexed evaluation in
// this module (Monte-Carlo, chaos campaigns): derive per-index seeds from
// it and worker counts can never change results.
func ScenarioSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// MonteCarlo evaluates a quasi-static tree (or a StaticTree-wrapped
// f-schedule) over cfg.Scenarios random execution scenarios with
// cfg.Faults injected faults each, and returns the aggregate statistics.
// Evaluation runs on the batch engine (see batch.go): scenario blocks are
// spread over cfg.Workers goroutines (default: one per CPU), each scenario
// reseeds a per-scenario RNG from ScenarioSeed, and statistics stream into
// fixed accumulators folded in block order — so the result is bit-identical
// for any worker count and the steady state simulates without allocation
// regardless of the scenario count.
func MonteCarlo(tree *core.Tree, cfg MCConfig) (MCStats, error) {
	return MonteCarloContext(context.Background(), tree, cfg)
}

// MonteCarloContext is MonteCarlo honouring cancellation: every worker
// checks ctx before each scenario block, so the evaluation unwinds within
// one block's simulation time per worker and returns ctx.Err(). Partial
// statistics are discarded.
func MonteCarloContext(ctx context.Context, tree *core.Tree, cfg MCConfig) (MCStats, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return MCStats{}, err
	}
	app := tree.App
	if cfg.Faults > app.K() {
		return MCStats{}, fmt.Errorf("sim: Faults %d outside [0, k=%d]", cfg.Faults, app.K())
	}
	rootEntries := tree.Root().Schedule.Entries
	candidates := make([]model.ProcessID, 0, len(rootEntries))
	for _, e := range rootEntries {
		candidates = append(candidates, e.Proc)
	}
	var sink obs.Sink
	if obs.Live(cfg.Sink) {
		sink = cfg.Sink
	}
	if cfg.Faults > 0 && len(candidates) == 0 {
		return MCStats{}, &SampleError{NFaults: cfg.Faults, EmptyPool: true}
	}
	d := cfg.Dispatcher
	if d == nil {
		var derr error
		d, derr = runtime.NewDispatcher(tree, runtime.WithSink(sink))
		if derr != nil {
			return MCStats{}, derr
		}
	} else if d.Tree() != tree {
		return MCStats{}, fmt.Errorf("sim: MCConfig.Dispatcher was compiled from a different tree")
	}
	return newMCBatch(app, d, cfg, candidates, sink).run(ctx)
}
