package sim

import (
	"fmt"
	"math"
	"math/rand"
	goruntime "runtime"
	"sort"
	"sync"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// MCConfig parametrises a Monte-Carlo evaluation.
type MCConfig struct {
	// Scenarios is the number of execution scenarios to simulate (the
	// paper uses 20 000 per configuration).
	Scenarios int
	// Faults is the number of transient faults injected per scenario
	// (0 <= Faults <= k).
	Faults int
	// Seed makes the evaluation reproducible.
	Seed int64
	// Workers spreads the scenarios over goroutines. 0 selects
	// runtime.NumCPU(); 1 forces sequential evaluation. Results are
	// identical for any worker count: scenario i always derives from
	// (Seed, i).
	Workers int
}

// MCStats aggregates a Monte-Carlo evaluation.
type MCStats struct {
	// MeanUtility is the overall utility averaged over all scenarios —
	// the paper's figure of merit.
	MeanUtility float64
	// StdDev is the sample standard deviation of the utility.
	StdDev float64
	// MinUtility and MaxUtility bound the observed utilities.
	MinUtility, MaxUtility float64
	// P05, P50 and P95 are utility percentiles (nearest-rank) — the
	// spread matters for soft real-time quality-of-service reporting,
	// where the mean hides bad tails.
	P05, P50, P95 float64
	// HardViolations counts scenarios with at least one hard-deadline
	// violation; it must be zero for correct schedules.
	HardViolations int
	// MeanSwitches is the average number of schedule switches taken.
	MeanSwitches float64
	// MeanRecoveries is the average number of re-executions performed.
	MeanRecoveries float64
	// Scenarios echoes the number of scenarios simulated.
	Scenarios int
}

// scenarioSeed derives the independent seed of scenario i from the
// configuration seed with a splitmix64-style mix, so that the scenario
// stream does not depend on how scenarios are partitioned over workers.
func scenarioSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// mcPartial accumulates one worker's associative (exactly mergeable)
// counters; utilities are reduced separately in scenario order.
type mcPartial struct {
	n                    int
	violations           int
	switches, recoveries float64
}

func (p *mcPartial) add(r *Result) {
	p.n++
	if len(r.HardViolations) > 0 {
		p.violations++
	}
	p.switches += float64(r.Switches)
	p.recoveries += float64(r.Recoveries)
}

// MonteCarlo evaluates a quasi-static tree (or a StaticTree-wrapped
// f-schedule) over cfg.Scenarios random execution scenarios with
// cfg.Faults injected faults each, and returns the aggregate statistics.
// Scenarios are spread over cfg.Workers goroutines (default: one per CPU);
// the result is bit-identical for any worker count. The tree is compiled
// once into a shared runtime.Dispatcher; each worker reuses one scenario,
// one Result and one RNG across all its scenarios, so the steady state
// simulates without allocation.
func MonteCarlo(tree *core.Tree, cfg MCConfig) (MCStats, error) {
	if cfg.Scenarios <= 0 {
		return MCStats{}, fmt.Errorf("sim: Scenarios must be positive (got %d)", cfg.Scenarios)
	}
	app := tree.App
	if cfg.Faults < 0 || cfg.Faults > app.K() {
		return MCStats{}, fmt.Errorf("sim: Faults %d outside [0, k=%d]", cfg.Faults, app.K())
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = goruntime.NumCPU()
	}
	if workers > cfg.Scenarios {
		workers = cfg.Scenarios
	}
	rootEntries := tree.Root().Schedule.Entries
	candidates := make([]model.ProcessID, 0, len(rootEntries))
	for _, e := range rootEntries {
		candidates = append(candidates, e.Proc)
	}
	d := runtime.NewDispatcher(tree)

	// Per-scenario results are collected by index and reduced
	// sequentially afterwards, so floating-point summation order — and
	// therefore every statistic — is independent of the worker count.
	utils := make([]float64, cfg.Scenarios)
	partials := make([]mcPartial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &partials[w]
			// Reseeding one RNG per scenario produces the same stream
			// as a fresh rand.New(rand.NewSource(seed)) would, without
			// the per-scenario allocation.
			rng := rand.New(rand.NewSource(0))
			var sc Scenario
			var res Result
			for i := w; i < cfg.Scenarios; i += workers {
				rng.Seed(scenarioSeed(cfg.Seed, i))
				SampleInto(&sc, app, rng, cfg.Faults, candidates)
				d.RunInto(&res, sc)
				utils[i] = res.Utility
				p.add(&res)
			}
		}(w)
	}
	wg.Wait()

	stats := MCStats{Scenarios: cfg.Scenarios}
	for i := range partials {
		p := &partials[i]
		if p.n == 0 {
			continue
		}
		// Integer-valued accumulators and min/max are associative;
		// merging partials is exact.
		stats.HardViolations += p.violations
		stats.MeanSwitches += p.switches
		stats.MeanRecoveries += p.recoveries
	}
	var sum, sumSq float64
	for i, u := range utils {
		sum += u
		sumSq += u * u
		if i == 0 || u < stats.MinUtility {
			stats.MinUtility = u
		}
		if i == 0 || u > stats.MaxUtility {
			stats.MaxUtility = u
		}
	}
	n := float64(cfg.Scenarios)
	stats.MeanUtility = sum / n
	stats.MeanSwitches /= n
	stats.MeanRecoveries /= n
	if cfg.Scenarios > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance > 0 {
			stats.StdDev = math.Sqrt(variance)
		}
	}
	sorted := append([]float64(nil), utils...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	stats.P05, stats.P50, stats.P95 = rank(0.05), rank(0.50), rank(0.95)
	return stats, nil
}
