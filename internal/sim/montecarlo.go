package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	goruntime "runtime"
	"sort"
	"sync"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// MCConfig parametrises a Monte-Carlo evaluation.
type MCConfig struct {
	// Scenarios is the number of execution scenarios to simulate (the
	// paper uses 20 000 per configuration).
	Scenarios int
	// Faults is the number of transient faults injected per scenario
	// (0 <= Faults <= k).
	Faults int
	// Seed makes the evaluation reproducible.
	Seed int64
	// Workers spreads the scenarios over goroutines. 0 selects
	// runtime.NumCPU(); 1 forces sequential evaluation. Results are
	// identical for any worker count: scenario i always derives from
	// (Seed, i).
	Workers int
	// Dispatcher optionally reuses a pre-compiled dispatcher across
	// evaluations; nil compiles the tree internally. It must have been
	// compiled from the very tree being evaluated (pointer identity), which
	// is checked. Results are identical either way.
	Dispatcher *runtime.Dispatcher
	// Sink receives evaluation events (runs, scenario throughput, the
	// per-scenario utility distribution). When the dispatcher is built
	// internally it inherits the sink, so dispatch events flow too; a
	// caller-supplied Dispatcher keeps whatever sink it was built with. A
	// nil sink or obs.NopSink disables instrumentation. Instrumentation
	// never alters the statistics.
	Sink obs.Sink
}

// Validate normalises the configuration and rejects impossible values: a
// non-positive scenario count, a negative fault count or a negative worker
// count. Workers 0 is replaced by the CPU count. The fault upper bound
// depends on the application and is checked by MonteCarlo itself. Every
// evaluation entry point applies Validate, so CLI flags and library callers
// get the same diagnostics.
func (c MCConfig) Validate() (MCConfig, error) {
	if c.Scenarios <= 0 {
		return c, fmt.Errorf("sim: Scenarios must be positive (got %d)", c.Scenarios)
	}
	if c.Faults < 0 {
		return c, fmt.Errorf("sim: Faults must be non-negative (got %d)", c.Faults)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("sim: Workers must be non-negative (got %d)", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = goruntime.NumCPU()
	}
	return c, nil
}

// MCStats aggregates a Monte-Carlo evaluation.
type MCStats struct {
	// MeanUtility is the overall utility averaged over all scenarios —
	// the paper's figure of merit.
	MeanUtility float64
	// StdDev is the sample standard deviation of the utility.
	StdDev float64
	// MinUtility and MaxUtility bound the observed utilities.
	MinUtility, MaxUtility float64
	// P05, P50 and P95 are utility percentiles (nearest-rank) — the
	// spread matters for soft real-time quality-of-service reporting,
	// where the mean hides bad tails.
	P05, P50, P95 float64
	// HardViolations counts scenarios with at least one hard-deadline
	// violation; it must be zero for correct schedules.
	HardViolations int
	// Degraded counts scenarios the dispatcher's envelope degraded —
	// PolicyShedSoft dropped soft work for the emergency hard-only
	// suffix. Zero unless the evaluation runs through a dispatcher with
	// an attached envelope (MCConfig.Dispatcher + runtime.WithEnvelope).
	Degraded int
	// Violations counts envelope violation events across all scenarios,
	// including the in-model BudgetExhausted records every dispatcher
	// reports.
	Violations int
	// MeanSwitches is the average number of schedule switches taken.
	MeanSwitches float64
	// MeanRecoveries is the average number of re-executions performed.
	MeanRecoveries float64
	// Scenarios echoes the number of scenarios simulated.
	Scenarios int
}

// ScenarioSeed derives the independent seed of scenario i from the
// configuration seed with a splitmix64-style mix, so that the scenario
// stream does not depend on how scenarios are partitioned over workers.
// It is the seeding discipline of every scenario-indexed evaluation in
// this module (Monte-Carlo, chaos campaigns): derive per-index seeds from
// it and worker counts can never change results.
func ScenarioSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// mcPartial accumulates one worker's associative (exactly mergeable)
// counters; utilities are reduced separately in scenario order.
type mcPartial struct {
	n                    int
	violations           int
	degraded             int
	events               int
	switches, recoveries float64
}

func (p *mcPartial) add(r *Result) {
	p.n++
	if len(r.HardViolations) > 0 {
		p.violations++
	}
	if r.Degraded {
		p.degraded++
	}
	p.events += len(r.Violations)
	p.switches += float64(r.Switches)
	p.recoveries += float64(r.Recoveries)
}

// MonteCarlo evaluates a quasi-static tree (or a StaticTree-wrapped
// f-schedule) over cfg.Scenarios random execution scenarios with
// cfg.Faults injected faults each, and returns the aggregate statistics.
// Scenarios are spread over cfg.Workers goroutines (default: one per CPU);
// the result is bit-identical for any worker count. The tree is compiled
// once into a shared runtime.Dispatcher; each worker reuses one scenario,
// one Result and one RNG across all its scenarios, so the steady state
// simulates without allocation.
func MonteCarlo(tree *core.Tree, cfg MCConfig) (MCStats, error) {
	return MonteCarloContext(context.Background(), tree, cfg)
}

// MonteCarloContext is MonteCarlo honouring cancellation: every worker
// checks ctx before each scenario, so the evaluation unwinds within one
// scenario's simulation time per worker and returns ctx.Err(). Partial
// statistics are discarded.
func MonteCarloContext(ctx context.Context, tree *core.Tree, cfg MCConfig) (MCStats, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return MCStats{}, err
	}
	app := tree.App
	if cfg.Faults > app.K() {
		return MCStats{}, fmt.Errorf("sim: Faults %d outside [0, k=%d]", cfg.Faults, app.K())
	}
	workers := cfg.Workers
	if workers > cfg.Scenarios {
		workers = cfg.Scenarios
	}
	rootEntries := tree.Root().Schedule.Entries
	candidates := make([]model.ProcessID, 0, len(rootEntries))
	for _, e := range rootEntries {
		candidates = append(candidates, e.Proc)
	}
	var sink obs.Sink
	if obs.Live(cfg.Sink) {
		sink = cfg.Sink
	}
	if cfg.Faults > 0 && len(candidates) == 0 {
		return MCStats{}, &SampleError{NFaults: cfg.Faults, EmptyPool: true}
	}
	d := cfg.Dispatcher
	if d == nil {
		var derr error
		d, derr = runtime.NewDispatcher(tree, runtime.WithSink(sink))
		if derr != nil {
			return MCStats{}, derr
		}
	} else if d.Tree() != tree {
		return MCStats{}, fmt.Errorf("sim: MCConfig.Dispatcher was compiled from a different tree")
	}

	// Per-scenario results are collected by index and reduced
	// sequentially afterwards, so floating-point summation order — and
	// therefore every statistic — is independent of the worker count.
	utils := make([]float64, cfg.Scenarios)
	partials := make([]mcPartial, workers)
	done := ctx.Done()
	// Sampling and dispatch bounds were validated above, so worker errors
	// are unreachable; they are still captured (first one wins) rather
	// than dropped, because silently skipped scenarios would skew the
	// statistics.
	var errOnce sync.Once
	var workerErr error
	fail := func(err error) { errOnce.Do(func() { workerErr = err }) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &partials[w]
			// Reseeding one RNG per scenario produces the same stream
			// as a fresh rand.New(rand.NewSource(seed)) would, without
			// the per-scenario allocation.
			rng := rand.New(rand.NewSource(0))
			var sc Scenario
			var res Result
			for i := w; i < cfg.Scenarios; i += workers {
				select {
				case <-done:
					return
				default:
				}
				rng.Seed(ScenarioSeed(cfg.Seed, i))
				if err := SampleInto(&sc, app, rng, cfg.Faults, candidates); err != nil {
					fail(err)
					return
				}
				if err := d.RunInto(&res, sc); err != nil {
					fail(err)
					return
				}
				utils[i] = res.Utility
				p.add(&res)
				if sink != nil {
					sink.Observe(obs.MCUtility, int64(math.Round(res.Utility)))
				}
			}
		}(w)
	}
	wg.Wait()
	if workerErr != nil {
		return MCStats{}, workerErr
	}

	if sink != nil {
		// Scenario throughput covers what actually ran, even when the
		// evaluation below is abandoned for cancellation.
		var simulated int64
		for i := range partials {
			simulated += int64(partials[i].n)
		}
		sink.Add(obs.MCScenarios, simulated)
	}
	if err := ctx.Err(); err != nil {
		return MCStats{}, err
	}
	if sink != nil {
		sink.Add(obs.MCRuns, 1)
	}

	stats := MCStats{Scenarios: cfg.Scenarios}
	for i := range partials {
		p := &partials[i]
		if p.n == 0 {
			continue
		}
		// Integer-valued accumulators and min/max are associative;
		// merging partials is exact.
		stats.HardViolations += p.violations
		stats.Degraded += p.degraded
		stats.Violations += p.events
		stats.MeanSwitches += p.switches
		stats.MeanRecoveries += p.recoveries
	}
	var sum, sumSq float64
	for i, u := range utils {
		sum += u
		sumSq += u * u
		if i == 0 || u < stats.MinUtility {
			stats.MinUtility = u
		}
		if i == 0 || u > stats.MaxUtility {
			stats.MaxUtility = u
		}
	}
	n := float64(cfg.Scenarios)
	stats.MeanUtility = sum / n
	stats.MeanSwitches /= n
	stats.MeanRecoveries /= n
	if cfg.Scenarios > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance > 0 {
			stats.StdDev = math.Sqrt(variance)
		}
	}
	sorted := append([]float64(nil), utils...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	stats.P05, stats.P50, stats.P95 = rank(0.05), rank(0.50), rank(0.95)
	return stats, nil
}
