//go:build !race

package sim

// raceEnabled reports whether the race detector instruments this build.
// The allocation gate consults it: race instrumentation allocates per
// instrumented operation, so AllocsPerRun is meaningless under -race.
const raceEnabled = false
