package sim

import (
	"math/rand"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
)

func TestTrimNeverReducesMeasuredUtility(t *testing.T) {
	app := apps.CruiseController()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 39})
	if err != nil {
		t.Fatal(err)
	}
	// Independent evaluation seeds (different from the trim seed) so the
	// check is out-of-sample.
	evalCfg := func(f int) MCConfig { return MCConfig{Scenarios: 2000, Faults: f, Seed: 77} }
	var before [3]float64
	for f := 0; f <= 2; f++ {
		st, err := MonteCarlo(tree, evalCfg(f))
		if err != nil {
			t.Fatal(err)
		}
		before[f] = st.MeanUtility
	}
	removed, err := Trim(tree, TrimConfig{Scenarios: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("removed %d arcs, %d nodes remain", removed, tree.Size())
	if err := core.VerifyTree(tree); err != nil {
		t.Fatalf("trimmed tree fails verification: %v", err)
	}
	for f := 0; f <= 2; f++ {
		st, err := MonteCarlo(tree, evalCfg(f))
		if err != nil {
			t.Fatal(err)
		}
		if st.HardViolations != 0 {
			t.Fatalf("violations after trim (f=%d)", f)
		}
		// Out-of-sample: allow a small tolerance.
		if st.MeanUtility < before[f]*0.99 {
			t.Errorf("f=%d: utility dropped from %g to %g after trim", f, before[f], st.MeanUtility)
		}
	}
}

func TestTrimConfigValidation(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Trim(tree, TrimConfig{}); err == nil {
		t.Error("zero scenarios accepted")
	}
	if _, err := Trim(tree, TrimConfig{Scenarios: 10, Faults: []int{9}}); err == nil {
		t.Error("fault count beyond k accepted")
	}
}

func TestTrimCompactsUnreachableNodes(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 20})
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := tree.Size()
	removed, err := Trim(tree, TrimConfig{Scenarios: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if removed > 0 && tree.Size() > sizeBefore {
		t.Error("tree grew after trimming")
	}
	// Arc ranges dense after renumbering, children in range.
	prevEnd := int32(0)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.ArcStart != prevEnd || n.ArcEnd < n.ArcStart {
			t.Fatalf("node %d arc range [%d,%d) not dense after %d", i, n.ArcStart, n.ArcEnd, prevEnd)
		}
		prevEnd = n.ArcEnd
		for _, a := range tree.NodeArcs(core.NodeID(i)) {
			if a.Child < 0 || int(a.Child) >= len(tree.Nodes) {
				t.Fatalf("node %d arc child S%d out of range after compaction", i, a.Child)
			}
		}
	}
	if int(prevEnd) != len(tree.Arcs) {
		t.Fatalf("arc arena has %d entries, node ranges cover %d", len(tree.Arcs), prevEnd)
	}
	// The tree still runs.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		r := testRun(t, tree, MustSample(app, rng, i%(app.K()+1), nil))
		if len(r.HardViolations) != 0 {
			t.Fatal("violation after trim")
		}
	}
}

// TestTrimIdempotent: a second trim pass with the same configuration finds
// nothing left to remove.
func TestTrimIdempotent(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrimConfig{Scenarios: 300, Seed: 4}
	if _, err := Trim(tree, cfg); err != nil {
		t.Fatal(err)
	}
	again, err := Trim(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second trim removed %d arcs; expected 0", again)
	}
}
