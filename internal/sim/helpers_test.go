package sim

import (
	"testing"

	"ftsched/internal/core"
)

// testRun executes one scenario, failing the test on the typed errors the
// erroring Run can now return (impossible for the well-formed trees and
// correctly sized scenarios these tests build).
func testRun(t testing.TB, tree *core.Tree, sc Scenario) Result {
	t.Helper()
	r, err := Run(tree, sc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
