package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/apps"
	"ftsched/internal/baseline"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// deterministic scenario helper.
func fixedScenario(app *model.Application, durs map[string]model.Time, faults map[string]int) Scenario {
	sc := Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).AET
	}
	for n, d := range durs {
		sc.Durations[app.IDByName(n)] = d
	}
	for n, f := range faults {
		sc.FaultsAt[app.IDByName(n)] = f
		sc.NFaults += f
	}
	return sc
}

func TestRunNoFaultAverageCase(t *testing.T) {
	app := apps.Fig1()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := StaticTree(app, s)
	sc := fixedScenario(app, nil, nil)
	if err := sc.Validate(app); err != nil {
		t.Fatal(err)
	}
	r := testRun(t, tree, sc)
	// Average case of schedule S2 = P1, P3, P2: utility 60 (paper Fig. 4b2).
	if r.Utility != 60 {
		t.Errorf("utility = %g, want 60", r.Utility)
	}
	if len(r.HardViolations) != 0 {
		t.Errorf("hard violations: %v", r.HardViolations)
	}
	if r.Makespan != 160 {
		t.Errorf("makespan = %d, want 160", r.Makespan)
	}
	if r.Switches != 0 {
		t.Errorf("static schedule cannot switch, got %d", r.Switches)
	}
}

func TestRunFaultRecovery(t *testing.T) {
	app := apps.Fig1()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := StaticTree(app, s)
	// Fault hits P1; it must re-execute and still meet its deadline 180:
	// 50 + 10 + 50 = 110.
	sc := fixedScenario(app, nil, map[string]int{"P1": 1})
	r := testRun(t, tree, sc)
	if len(r.HardViolations) != 0 {
		t.Fatalf("hard violations: %v", r.HardViolations)
	}
	if r.Recoveries != 1 || r.FaultsConsumed != 1 {
		t.Errorf("recoveries/faults = %d/%d, want 1/1", r.Recoveries, r.FaultsConsumed)
	}
	if got := r.CompletionTimes[app.IDByName("P1")]; got != 110 {
		t.Errorf("P1 completed at %d, want 110", got)
	}
	if r.Outcomes[app.IDByName("P1")] != Completed {
		t.Error("P1 must complete")
	}
}

func TestRunSoftDroppedOnFault(t *testing.T) {
	app := apps.Fig1()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	// FTSS gives P3 no recoveries (paper Fig. 4b4); a fault on P3 must
	// abandon it at run time.
	tree := StaticTree(app, s)
	sc := fixedScenario(app, nil, map[string]int{"P3": 1})
	r := testRun(t, tree, sc)
	if r.Outcomes[app.IDByName("P3")] != AbandonedByFault {
		t.Errorf("P3 outcome = %v, want AbandonedByFault", r.Outcomes[app.IDByName("P3")])
	}
	if len(r.HardViolations) != 0 {
		t.Errorf("hard violations: %v", r.HardViolations)
	}
	// P2 still runs and earns utility; P3 contributes nothing.
	if r.Outcomes[app.IDByName("P2")] != Completed {
		t.Error("P2 must complete")
	}
	if r.Utility <= 0 {
		t.Errorf("utility = %g, want > 0 from P2", r.Utility)
	}
}

// TestRunQuasiStaticSwitch: with the Fig. 1 tree, an early completion of P1
// (tc = 30) must switch to the P2-first schedule and realise utility 70
// instead of 60 (paper Fig. 4b5).
func TestRunQuasiStaticSwitch(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	sc := fixedScenario(app, map[string]model.Time{"P1": 30}, nil)
	r := testRun(t, tree, sc)
	if r.Switches == 0 {
		t.Fatalf("expected a schedule switch; tree:\n%s", tree.Format())
	}
	// P1@30, then P2@80 (40), P3@140 (30): total 70.
	if r.Utility != 70 {
		t.Errorf("utility = %g, want 70", r.Utility)
	}
	// Late completion: no switch, stay with P3-first (utility 60 at AET).
	sc2 := fixedScenario(app, map[string]model.Time{"P1": 50}, nil)
	r2 := testRun(t, tree, sc2)
	if r2.Utility != 60 {
		t.Errorf("late-completion utility = %g, want 60", r2.Utility)
	}
}

// TestQuasiStaticBeatsStaticOnAverage: the headline claim — FTQS's mean
// no-fault utility must exceed FTSS's on the running example.
func TestQuasiStaticBeatsStaticOnAverage(t *testing.T) {
	app := apps.Fig1()
	ftss, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(app, core.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MCConfig{Scenarios: 4000, Faults: 0, Seed: 42}
	sStat, err := MonteCarlo(StaticTree(app, ftss), cfg)
	if err != nil {
		t.Fatal(err)
	}
	qStat, err := MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qStat.MeanUtility <= sStat.MeanUtility {
		t.Errorf("FTQS %g must beat FTSS %g", qStat.MeanUtility, sStat.MeanUtility)
	}
	if sStat.HardViolations != 0 || qStat.HardViolations != 0 {
		t.Errorf("hard violations: ftss=%d ftqs=%d", sStat.HardViolations, qStat.HardViolations)
	}
}

// TestFTSSBeatsFTSFOnAverage: the first experiment's claim on the fixtures.
func TestFTSSBeatsFTSFOnAverage(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig1(), apps.Fig8()} {
		ftss, err := core.FTSS(app)
		if err != nil {
			t.Fatal(err)
		}
		ftsf, err := baseline.FTSF(app)
		if err != nil {
			t.Fatal(err)
		}
		cfg := MCConfig{Scenarios: 3000, Faults: 0, Seed: 7}
		a, err := MonteCarlo(StaticTree(app, ftss), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MonteCarlo(StaticTree(app, ftsf), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeanUtility < b.MeanUtility {
			t.Errorf("%s: FTSS %g below FTSF %g", app.Name(), a.MeanUtility, b.MeanUtility)
		}
	}
}

// TestMonteCarloConfigValidation.
func TestMonteCarloConfigValidation(t *testing.T) {
	app := apps.Fig1()
	s, _ := core.FTSS(app)
	tree := StaticTree(app, s)
	if _, err := MonteCarlo(tree, MCConfig{Scenarios: 0}); err == nil {
		t.Error("zero scenarios accepted")
	}
	if _, err := MonteCarlo(tree, MCConfig{Scenarios: 10, Faults: 5}); err == nil {
		t.Error("faults beyond k accepted")
	}
	if _, err := MonteCarlo(tree, MCConfig{Scenarios: 10, Faults: -1}); err == nil {
		t.Error("negative faults accepted")
	}
}

// TestScenarioValidate.
func TestScenarioValidate(t *testing.T) {
	app := apps.Fig1()
	sc := fixedScenario(app, nil, nil)
	if err := sc.Validate(app); err != nil {
		t.Error(err)
	}
	bad := sc
	bad.Durations = bad.Durations[:1]
	if err := bad.Validate(app); err == nil {
		t.Error("short durations accepted")
	}
	bad2 := fixedScenario(app, map[string]model.Time{"P1": 500}, nil)
	if err := bad2.Validate(app); err == nil {
		t.Error("out-of-range duration accepted")
	}
	bad3 := fixedScenario(app, nil, map[string]int{"P1": 1})
	bad3.NFaults = 0
	if err := bad3.Validate(app); err == nil {
		t.Error("inconsistent fault count accepted")
	}
	bad4 := fixedScenario(app, nil, map[string]int{"P1": 1, "P2": 1})
	if err := bad4.Validate(app); err == nil {
		t.Error("faults beyond k accepted")
	}
}

// TestSampleDistribution: sampled durations stay within bounds, fault
// victims come from the candidate pool.
func TestSampleDistribution(t *testing.T) {
	app := apps.Fig8()
	rng := rand.New(rand.NewSource(1))
	cand := []model.ProcessID{app.IDByName("P1"), app.IDByName("P2")}
	for i := 0; i < 200; i++ {
		sc := MustSample(app, rng, 2, cand)
		if err := sc.Validate(app); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < app.N(); id++ {
			if sc.FaultsAt[id] > 0 {
				pid := model.ProcessID(id)
				if pid != cand[0] && pid != cand[1] {
					t.Fatalf("fault victim %d outside candidate pool", id)
				}
			}
		}
	}
	// nil candidates → all processes eligible.
	sc := MustSample(app, rng, 1, nil)
	if sc.NFaults != 1 {
		t.Error("NFaults mismatch")
	}
}

// randomApp builds a random schedulable-ish application for property tests.
func randomApp(rng *rand.Rand, n, k int) *model.Application {
	mu := model.Time(1 + rng.Intn(15))
	// Generous period ensures FTSS succeeds most of the time; tightness
	// is exercised elsewhere.
	a := model.NewApplication("rand", 1, k, mu)
	var wsum model.Time
	ids := make([]model.ProcessID, n)
	var maxW model.Time
	for i := 0; i < n; i++ {
		w := model.Time(10 + rng.Intn(91))
		b := model.Time(rng.Int63n(int64(w) + 1))
		e := (b + w) / 2
		wsum += w
		if w > maxW {
			maxW = w
		}
		kind := model.Soft
		if rng.Float64() < 0.5 {
			kind = model.Hard
		}
		p := model.Process{Name: procName(i), Kind: kind, BCET: b, AET: e, WCET: w}
		if kind == model.Soft {
			h1 := model.Time(30 + rng.Intn(300))
			h2 := h1 + model.Time(30+rng.Intn(300))
			p.Utility = utility.MustStep([]model.Time{h1, h2}, []float64{20 + 80*rng.Float64(), 5 + 10*rng.Float64()})
		}
		ids[i] = model.ProcessID(i)
		a.AddProcess(p)
	}
	// Random forward edges.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				_ = a.AddEdge(ids[i], ids[j])
			}
		}
	}
	// Now assign deadlines and the period from the workload volume so
	// that the app is schedulable even with k faults.
	slack := wsum + model.Time(k)*(maxW+mu) + 10
	rebuilt := model.NewApplication("rand", slack+model.Time(rng.Intn(200)), k, mu)
	var cum model.Time
	for i := 0; i < n; i++ {
		p := a.Proc(ids[i])
		cum += p.WCET
		if p.Kind == model.Hard {
			p.Deadline = cum + model.Time(k)*(maxW+mu) + model.Time(rng.Intn(100))
		}
		rebuilt.AddProcess(p)
	}
	for i := 0; i < n; i++ {
		for _, s := range a.Succs(ids[i]) {
			rebuilt.MustAddEdge(ids[i], s)
		}
	}
	if err := rebuilt.Validate(); err != nil {
		panic(err)
	}
	return rebuilt
}

func procName(i int) string {
	return "P" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}

// TestHardDeadlinesNeverViolatedProperty is the library's central safety
// property: for random applications, any tree synthesised by FTQS keeps
// every hard deadline in every scenario with at most k faults.
func TestHardDeadlinesNeverViolatedProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		app := randomApp(rng, n, k)
		tree, err := core.FTQS(app, core.FTQSOptions{M: 8, SweepSamples: 64})
		if err != nil {
			// Unschedulable random instance: nothing to check.
			return true
		}
		for trial := 0; trial < 30; trial++ {
			f := rng.Intn(k + 1)
			sc := MustSample(app, rng, f, nil)
			r := testRun(t, tree, sc)
			if len(r.HardViolations) > 0 {
				t.Logf("seed %d trial %d: violations %v (faults=%d)\n%s",
					seed, trial, r.HardViolations, f, tree.Format())
				return false
			}
			if r.Makespan > app.Period() {
				t.Logf("seed %d trial %d: makespan %d > period %d",
					seed, trial, r.Makespan, app.Period())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestUtilityNonNegativeAndBounded: realised utility is non-negative and
// never exceeds the sum of the utility maxima.
func TestUtilityBoundsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := randomApp(rng, 4+rng.Intn(8), 1+rng.Intn(2))
		s, err := core.FTSS(app)
		if err != nil {
			return true
		}
		tree := StaticTree(app, s)
		var ceiling float64
		for _, id := range app.SoftIDs() {
			ceiling += app.UtilityOf(id).Value(0)
		}
		for trial := 0; trial < 20; trial++ {
			sc := MustSample(app, rng, rng.Intn(app.K()+1), nil)
			r := testRun(t, tree, sc)
			if r.Utility < 0 || r.Utility > ceiling+1e-9 {
				t.Logf("seed %d: utility %g outside [0,%g]", seed, r.Utility, ceiling)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMoreFaultsLowerUtility: mean utility is non-increasing in the number
// of injected faults (paper Fig. 9b trend) on the fixtures.
func TestMoreFaultsLowerUtility(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for f := 0; f <= app.K(); f++ {
		st, err := MonteCarlo(tree, MCConfig{Scenarios: 3000, Faults: f, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if st.HardViolations != 0 {
			t.Fatalf("violations with %d faults", f)
		}
		// Allow a small tolerance: fault victims may be processes whose
		// dropping frees time for others.
		if st.MeanUtility > prev*1.02 {
			t.Errorf("utility rose with more faults: %g -> %g", prev, st.MeanUtility)
		}
		prev = st.MeanUtility
	}
}
