package sim

import (
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// TraceEventKind classifies execution-trace events.
type TraceEventKind int

const (
	// TraceStart: an execution attempt of a process begins.
	TraceStart TraceEventKind = iota
	// TraceFault: a transient fault is detected at the end of an attempt.
	TraceFault
	// TraceRecovery: the recovery overhead µ begins (re-execution follows).
	TraceRecovery
	// TraceComplete: the process completed.
	TraceComplete
	// TraceAbandon: the process was abandoned (soft, budget exhausted).
	TraceAbandon
	// TraceSwitch: the online scheduler switched to another schedule.
	TraceSwitch
)

// String implements fmt.Stringer.
func (k TraceEventKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceFault:
		return "fault"
	case TraceRecovery:
		return "recovery"
	case TraceComplete:
		return "complete"
	case TraceAbandon:
		return "abandon"
	case TraceSwitch:
		return "switch"
	default:
		return "TraceEventKind(?)"
	}
}

// TraceEvent is one timestamped event of a simulated cycle.
type TraceEvent struct {
	Kind TraceEventKind
	// At is the event time.
	At model.Time
	// Proc is the process concerned (undefined for TraceSwitch).
	Proc model.ProcessID
	// Attempt numbers the execution attempt (0 = primary execution).
	Attempt int
	// Node is the tree node switched to (TraceSwitch only).
	Node int
}

// RunTrace is Run with full event recording, for visualisation and
// debugging. The returned events are ordered by time (ties in execution
// order).
func RunTrace(tree *core.Tree, sc Scenario) (Result, []TraceEvent) {
	var events []TraceEvent
	res := runTree(tree, sc, &events)
	return res, events
}
