package sim

import (
	"ftsched/internal/core"
	"ftsched/internal/runtime"
)

// TraceEventKind classifies execution-trace events.
type TraceEventKind = runtime.TraceEventKind

const (
	// TraceStart: an execution attempt of a process begins.
	TraceStart = runtime.TraceStart
	// TraceFault: a transient fault is detected at the end of an attempt.
	TraceFault = runtime.TraceFault
	// TraceRecovery: the recovery overhead µ begins (re-execution follows).
	TraceRecovery = runtime.TraceRecovery
	// TraceComplete: the process completed.
	TraceComplete = runtime.TraceComplete
	// TraceAbandon: the process was abandoned (soft, budget exhausted).
	TraceAbandon = runtime.TraceAbandon
	// TraceSwitch: the online scheduler switched to another schedule.
	TraceSwitch = runtime.TraceSwitch
)

// TraceEvent is one timestamped event of a simulated cycle.
type TraceEvent = runtime.TraceEvent

// RunTrace is Run with full event recording, for visualisation and
// debugging. The returned events are ordered by time (ties in execution
// order). Errors are Run's.
func RunTrace(tree *core.Tree, sc Scenario) (Result, []TraceEvent, error) {
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		return Result{}, nil, err
	}
	return d.RunTrace(sc)
}
