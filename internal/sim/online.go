package sim

import (
	"time"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
)

// RescheduleResult extends Result with the cost profile of the purely
// online approach the paper argues against (§1: "a purely online approach,
// which computes a new schedule every time a process fails or completes,
// incurs an unacceptable overhead").
type RescheduleResult struct {
	Result
	// Reschedules counts the synthesis invocations performed during the
	// cycle (one after every completion or abandonment).
	Reschedules int
	// SynthesisTime is the total wall-clock time spent recomputing
	// schedules — on the paper's embedded target this work would execute
	// on the node itself, between processes.
	SynthesisTime time.Duration
}

// RunOnlineReschedule executes one scenario with an idealised online
// scheduler: it starts from the FTSS schedule and re-runs the suffix
// synthesis (SuffixFTSS) with the observed state after every process
// completion or run-time drop. It is the utility upper-bound comparator
// for FTQS — a quasi-static tree of unbounded size converges to it — and
// its SynthesisTime is the overhead the quasi-static approach avoids.
//
// Hard guarantees are preserved: every recomputed suffix is verified
// schedulable from the current time with the remaining fault budget; if
// the synthesis fails (or would be unsafe), the scheduler keeps the
// previous — still guaranteed — remainder.
func RunOnlineReschedule(app *model.Application, root *schedule.FSchedule, sc Scenario) RescheduleResult {
	res := RescheduleResult{
		Result: Result{
			Outcomes:        make([]ProcessOutcome, app.N()),
			CompletionTimes: make([]model.Time, app.N()),
		},
	}
	faultsLeft := make([]int, app.N())
	copy(faultsLeft, sc.FaultsAt)

	executedIDs := make([]model.ProcessID, 0, app.N())
	droppedIDs := make([]model.ProcessID, 0, app.N())
	kRem := app.K()
	now := model.Time(0)
	// The active remainder is consumed by index: root.Entries is never
	// mutated, and every accepted re-synthesis replaces the slice
	// wholesale, so no per-cycle defensive copy is needed. exSet and the
	// drop scratch are likewise reused across iterations instead of being
	// rebuilt per processed entry.
	remaining := root.Entries
	idx := 0
	exSet := make([]bool, app.N())
	dropBuf := make([]model.ProcessID, 0, app.N())

	for idx < len(remaining) {
		e := remaining[idx]
		idx++
		p := app.Proc(e.Proc)
		start := now
		if p.Release > start {
			start = p.Release
		}

		completed := false
		t := start
		rec := app.Recovery()
		dur := sc.Durations[e.Proc]
		for attempt := 0; ; attempt++ {
			// First attempt pays the recovery model's per-attempt cost
			// (checkpoint overheads); later attempts re-run only what the
			// model requires (the full duration, or the final checkpoint
			// segment). Identity under canonical re-execution.
			if attempt == 0 {
				t += rec.AttemptTime(dur)
			} else {
				t += rec.ResumeTime(dur)
			}
			if faultsLeft[e.Proc] > 0 {
				faultsLeft[e.Proc]--
				res.FaultsConsumed++
				kRem--
				if attempt < e.Recoveries {
					t += app.RecoveryOverhead(e.Proc)
					res.Recoveries++
					continue
				}
				break
			}
			completed = true
			break
		}
		now = t
		res.Makespan = now

		if completed {
			res.Outcomes[e.Proc] = Completed
			res.CompletionTimes[e.Proc] = now
			executedIDs = append(executedIDs, e.Proc)
			exSet[e.Proc] = true
			if p.Kind == model.Hard && now > p.Deadline {
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		} else {
			res.Outcomes[e.Proc] = AbandonedByFault
			droppedIDs = append(droppedIDs, e.Proc)
			if p.Kind == model.Hard {
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		}

		if idx >= len(remaining) {
			break
		}
		// Recompute the remainder for the observed state.
		if kRem < 0 {
			kRem = 0
		}
		// A process that was passed over while one of its successors
		// executed must stay out of future schedules: its consumer
		// already ran on the stale value (same soundness rule as FTQS
		// revival).
		drop := append(dropBuf[:0], droppedIDs...)
		for id := 0; id < app.N(); id++ {
			pid := model.ProcessID(id)
			if exSet[id] || res.Outcomes[id] == AbandonedByFault {
				continue
			}
			for _, s := range app.Succs(pid) {
				if exSet[s] {
					drop = append(drop, pid)
					break
				}
			}
		}
		dropBuf = drop[:0]
		t0 := time.Now()
		suffix, err := core.SuffixFTSS(app, executedIDs, drop, now, kRem)
		res.SynthesisTime += time.Since(t0)
		res.Reschedules++
		if err == nil && len(suffix) > 0 && schedule.Schedulable(app, suffix, now, kRem) {
			remaining = suffix
			idx = 0
		}
		// On failure keep the previous remainder: its shared slack was
		// sized for the faults that can still occur.
	}
	res.FinalNode = -1 // no tree node: schedules are synthesised live

	for _, h := range app.HardIDs() {
		if res.Outcomes[h] != Completed {
			already := false
			for _, v := range res.HardViolations {
				if v == h {
					already = true
					break
				}
			}
			if !already {
				res.HardViolations = append(res.HardViolations, h)
			}
		}
	}
	res.Utility = runtime.TotalUtility(app, res.Outcomes, res.CompletionTimes)
	return res
}
