package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

func buildTree(t *testing.T, m int) *core.Tree {
	t.Helper()
	tree, err := core.FTQS(apps.CruiseController(), core.FTQSOptions{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestMCConfigValidate: zero workers default to the CPU count; impossible
// values are rejected.
func TestMCConfigValidate(t *testing.T) {
	got, err := MCConfig{Scenarios: 10}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers <= 0 {
		t.Errorf("Workers not defaulted: %d", got.Workers)
	}
	for name, c := range map[string]MCConfig{
		"no scenarios":      {},
		"negative faults":   {Scenarios: 1, Faults: -1},
		"negative workers":  {Scenarios: 1, Workers: -2},
		"negative scenario": {Scenarios: -5},
	} {
		if _, err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMonteCarloDispatcherReuse: a caller-supplied pre-compiled dispatcher
// must produce bit-identical statistics, and one compiled from another tree
// must be rejected.
func TestMonteCarloDispatcherReuse(t *testing.T) {
	tree := buildTree(t, 20)
	cfg := MCConfig{Scenarios: 500, Faults: 2, Seed: 7}
	want, err := MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := runtime.MustNewDispatcher(tree)
	cfg.Dispatcher = d
	for run := 0; run < 2; run++ { // reuse across calls
		got, err := MonteCarlo(tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: reused dispatcher diverged: %+v != %+v", run, got, want)
		}
	}
	other := buildTree(t, 8)
	cfg.Dispatcher = runtime.MustNewDispatcher(other)
	if _, err := MonteCarlo(tree, cfg); err == nil {
		t.Error("dispatcher from a different tree accepted")
	}
}

// TestMonteCarloContextCancelled: cancellation unwinds the workers promptly
// and surfaces ctx.Err().
func TestMonteCarloContextCancelled(t *testing.T) {
	tree := buildTree(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MonteCarloContext(ctx, tree, MCConfig{Scenarios: 100000, Faults: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMonteCarloSinkEvents: the sink observes the run, the scenario count
// and a utility sample per scenario, and never changes the statistics.
func TestMonteCarloSinkEvents(t *testing.T) {
	tree := buildTree(t, 20)
	cfg := MCConfig{Scenarios: 400, Faults: 1, Seed: 3}
	want, err := MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	cfg.Sink = m
	got, err := MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sink changed the statistics")
	}
	if n := m.Counter(obs.MCRuns); n != 1 {
		t.Errorf("MCRuns = %d, want 1", n)
	}
	if n := m.Counter(obs.MCScenarios); n != int64(cfg.Scenarios) {
		t.Errorf("MCScenarios = %d, want %d", n, cfg.Scenarios)
	}
	if n := m.Snapshot().Histograms[obs.MCUtility.Name()].Count; n != int64(cfg.Scenarios) {
		t.Errorf("utility samples = %d, want %d", n, cfg.Scenarios)
	}
	// The internally built dispatcher inherits the sink.
	if n := m.Counter(obs.DispatchCycles); n != int64(cfg.Scenarios) {
		t.Errorf("DispatchCycles = %d, want %d", n, cfg.Scenarios)
	}
}

// TestTrimContextCancelled: cancelling mid-trim restores every disabled
// guard, leaving the tree exactly as passed in.
func TestTrimContextCancelled(t *testing.T) {
	tree := buildTree(t, 16)
	savedNodes := append([]core.Node(nil), tree.Nodes...)
	savedArcs := append([]core.Arc(nil), tree.Arcs...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	removed, err := TrimContext(ctx, tree, TrimConfig{Scenarios: 50, Seed: 9})
	if !errors.Is(err, context.Canceled) || removed != 0 {
		t.Fatalf("TrimContext = (%d, %v), want (0, context.Canceled)", removed, err)
	}
	if !reflect.DeepEqual(tree.Nodes, savedNodes) || !reflect.DeepEqual(tree.Arcs, savedArcs) {
		t.Error("cancelled trim left the tree modified")
	}
}

// TestTrimSinkEvents: trimming reports every arc evaluation and the final
// removal count.
func TestTrimSinkEvents(t *testing.T) {
	tree := buildTree(t, 12)
	arcs := len(tree.Arcs)
	m := obs.NewMetrics()
	removed, err := Trim(tree, TrimConfig{Scenarios: 30, Seed: 5, Sink: m})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Counter(obs.TrimArcsEvaluated); n != int64(arcs) {
		t.Errorf("TrimArcsEvaluated = %d, want %d", n, arcs)
	}
	if n := m.Counter(obs.TrimArcsRemoved); n != int64(removed) {
		t.Errorf("TrimArcsRemoved = %d, want %d", n, removed)
	}
	if m.Counter(obs.TrimReplays) == 0 {
		t.Error("no replays recorded")
	}
}
