package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// TrimConfig parametrises simulation-based arc trimming.
type TrimConfig struct {
	// Scenarios is the number of paired scenarios evaluated per fault
	// count (common random numbers: the same scenarios score every
	// candidate tree, so comparisons are noise-free).
	Scenarios int
	// Faults lists the fault counts to weigh (equally); nil means
	// 0..k.
	Faults []int
	// Seed makes trimming reproducible.
	Seed int64
	// Sink receives trimming events (arcs evaluated/removed, scenario
	// replays). A nil sink or obs.NopSink disables instrumentation.
	Sink obs.Sink
}

// Trim removes switch arcs whose measured effect on the mean utility is
// non-positive. Interval partitioning prices candidate arcs with an
// estimate (the completion-time sweep under the duration quadrature);
// estimation error lets marginally harmful arcs into large trees, which is
// why the utility-vs-tree-size curve can sag after its peak. Trim replays
// a fixed scenario set with and without each arc — ascending by estimated
// gain, so the most suspect arcs go first — keeps a removal only when it
// does not reduce the mean utility, prunes nodes that became unreachable,
// and renumbers the remainder. Safety is untouched: removing arcs only
// makes the online scheduler more conservative (staying with the current
// schedule is always safe), and the result still passes core.VerifyTree.
//
// Disabled arcs are marked with an empty guard (Lo > Hi) directly in the
// arc arena; the dispatcher's compiler skips them, so each evaluation
// recompiles the mutated tree once and then replays all scenarios through
// the compiled table.
//
// It returns the number of arcs removed.
func Trim(tree *core.Tree, cfg TrimConfig) (int, error) {
	return TrimContext(context.Background(), tree, cfg)
}

// TrimContext is Trim honouring cancellation, checked before every scenario
// replay. On cancellation every already-disabled guard is restored — the
// tree is left exactly as passed in — and (0, ctx.Err()) is returned.
func TrimContext(ctx context.Context, tree *core.Tree, cfg TrimConfig) (int, error) {
	if cfg.Scenarios <= 0 {
		return 0, fmt.Errorf("sim: Trim needs a positive scenario count")
	}
	app := tree.App
	faults := cfg.Faults
	if faults == nil {
		for f := 0; f <= app.K(); f++ {
			faults = append(faults, f)
		}
	}
	for _, f := range faults {
		if f < 0 || f > app.K() {
			return 0, fmt.Errorf("sim: fault count %d outside [0,%d]", f, app.K())
		}
	}

	// Fixed paired scenario set.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rootEntries := tree.Root().Schedule.Entries
	candidates := make([]model.ProcessID, 0, len(rootEntries))
	for _, e := range rootEntries {
		candidates = append(candidates, e.Proc)
	}
	var scenarios []Scenario
	for _, f := range faults {
		for i := 0; i < cfg.Scenarios; i++ {
			sc, err := Sample(app, rng, f, candidates)
			if err != nil {
				return 0, err
			}
			scenarios = append(scenarios, sc)
		}
	}
	var sink obs.Sink
	if obs.Live(cfg.Sink) {
		sink = cfg.Sink
	}
	done := ctx.Done()
	var res Result
	// eval replays the fixed scenario set through a freshly compiled
	// dispatcher; it returns ctx.Err() when cancelled mid-replay (the
	// partial mean is meaningless then) or the dispatcher's typed error
	// for a tree that went structurally bad.
	eval := func() (float64, error) {
		d, err := runtime.NewDispatcher(tree)
		if err != nil {
			return 0, err
		}
		var sum float64
		for i := range scenarios {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
			if err := d.RunInto(&res, scenarios[i]); err != nil {
				return 0, err
			}
			sum += res.Utility
		}
		if sink != nil {
			sink.Add(obs.TrimReplays, int64(len(scenarios)))
		}
		return sum / float64(len(scenarios)), nil
	}

	// Arc references into the arena, most suspect (lowest estimated
	// gain) first. The arena is node-major, so index order matches the
	// node-by-node walk the gain sort is stabilised against.
	refs := make([]int, len(tree.Arcs))
	for i := range refs {
		refs[i] = i
	}
	sort.SliceStable(refs, func(a, b int) bool {
		return tree.Arcs[refs[a]].Gain < tree.Arcs[refs[b]].Gain
	})

	baseline, err := eval()
	if err != nil {
		return 0, err
	}
	type disabledArc struct {
		ri     int
		lo, hi model.Time
	}
	var disabled []disabledArc
	restore := func() {
		for _, s := range disabled {
			tree.Arcs[s.ri].Lo, tree.Arcs[s.ri].Hi = s.lo, s.hi
		}
	}
	for _, ri := range refs {
		a := &tree.Arcs[ri]
		savedLo, savedHi := a.Lo, a.Hi
		a.Lo, a.Hi = 1, 0 // empty guard: the arc can never fire
		if sink != nil {
			sink.Add(obs.TrimArcsEvaluated, 1)
		}
		u, err := eval()
		if err != nil {
			a.Lo, a.Hi = savedLo, savedHi
			restore()
			return 0, err
		}
		if u >= baseline {
			baseline = u
			disabled = append(disabled, disabledArc{ri: ri, lo: savedLo, hi: savedHi})
			continue
		}
		a.Lo, a.Hi = savedLo, savedHi
	}
	removed := len(disabled)
	if sink != nil {
		sink.Add(obs.TrimArcsRemoved, int64(removed))
	}
	if removed == 0 {
		return 0, nil
	}

	compactTree(tree)
	return removed, nil
}

// compactTree drops disabled arcs (empty guards), prunes nodes no longer
// reachable from the root, and rebuilds both arenas with renumbered IDs.
func compactTree(tree *core.Tree) {
	// Reachability over node indices, following live arcs only. A child
	// is reachable only through arcs of its single parent, so pruning
	// can never orphan a kept node's Parent reference.
	reachable := make([]bool, len(tree.Nodes))
	reachable[0] = true
	queue := []core.NodeID{0}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, a := range tree.NodeArcs(id) {
			if a.Lo <= a.Hi && !reachable[a.Child] {
				reachable[a.Child] = true
				queue = append(queue, a.Child)
			}
		}
	}
	remap := make([]core.NodeID, len(tree.Nodes))
	kept := 0
	for i := range tree.Nodes {
		if reachable[i] {
			remap[i] = core.NodeID(kept)
			kept++
		} else {
			remap[i] = core.NoNode
		}
	}
	newNodes := make([]core.Node, 0, kept)
	newArcs := make([]core.Arc, 0, len(tree.Arcs))
	for i := range tree.Nodes {
		if !reachable[i] {
			continue
		}
		n := tree.Nodes[i]
		start := int32(len(newArcs))
		for _, a := range tree.NodeArcs(core.NodeID(i)) {
			if a.Lo > a.Hi {
				continue
			}
			a.Child = remap[a.Child]
			newArcs = append(newArcs, a)
		}
		n.ArcStart, n.ArcEnd = start, int32(len(newArcs))
		if n.Parent != core.NoNode {
			n.Parent = remap[n.Parent]
		}
		newNodes = append(newNodes, n)
	}
	tree.Nodes = newNodes
	tree.Arcs = newArcs
}
