package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"ftsched/internal/core"
	"ftsched/internal/model"
)

// TrimConfig parametrises simulation-based arc trimming.
type TrimConfig struct {
	// Scenarios is the number of paired scenarios evaluated per fault
	// count (common random numbers: the same scenarios score every
	// candidate tree, so comparisons are noise-free).
	Scenarios int
	// Faults lists the fault counts to weigh (equally); nil means
	// 0..k.
	Faults []int
	// Seed makes trimming reproducible.
	Seed int64
}

// Trim removes switch arcs whose measured effect on the mean utility is
// non-positive. Interval partitioning prices candidate arcs with an
// estimate (the completion-time sweep under the duration quadrature);
// estimation error lets marginally harmful arcs into large trees, which is
// why the utility-vs-tree-size curve can sag after its peak. Trim replays
// a fixed scenario set with and without each arc — ascending by estimated
// gain, so the most suspect arcs go first — keeps a removal only when it
// does not reduce the mean utility, prunes nodes that became unreachable,
// and renumbers the remainder. Safety is untouched: removing arcs only
// makes the online scheduler more conservative (staying with the current
// schedule is always safe), and the result still passes core.VerifyTree.
//
// It returns the number of arcs removed.
func Trim(tree *core.Tree, cfg TrimConfig) (int, error) {
	if cfg.Scenarios <= 0 {
		return 0, fmt.Errorf("sim: Trim needs a positive scenario count")
	}
	app := tree.App
	faults := cfg.Faults
	if faults == nil {
		for f := 0; f <= app.K(); f++ {
			faults = append(faults, f)
		}
	}
	for _, f := range faults {
		if f < 0 || f > app.K() {
			return 0, fmt.Errorf("sim: fault count %d outside [0,%d]", f, app.K())
		}
	}

	// Fixed paired scenario set.
	rng := rand.New(rand.NewSource(cfg.Seed))
	candidates := make([]model.ProcessID, 0, len(tree.Root.Schedule.Entries))
	for _, e := range tree.Root.Schedule.Entries {
		candidates = append(candidates, e.Proc)
	}
	var scenarios []Scenario
	for _, f := range faults {
		for i := 0; i < cfg.Scenarios; i++ {
			scenarios = append(scenarios, Sample(app, rng, f, candidates))
		}
	}
	eval := func() float64 {
		var sum float64
		for i := range scenarios {
			sum += Run(tree, scenarios[i]).Utility
		}
		return sum / float64(len(scenarios))
	}

	// Arc references, most suspect (lowest estimated gain) first.
	type ref struct {
		node *core.Node
		idx  int
	}
	var refs []ref
	for _, n := range tree.Nodes {
		for i := range n.Arcs {
			refs = append(refs, ref{n, i})
		}
	}
	sort.SliceStable(refs, func(a, b int) bool {
		return refs[a].node.Arcs[refs[a].idx].Gain < refs[b].node.Arcs[refs[b].idx].Gain
	})

	baseline := eval()
	removed := 0
	for _, r := range refs {
		a := &r.node.Arcs[r.idx]
		savedLo, savedHi := a.Lo, a.Hi
		a.Lo, a.Hi = 1, 0 // empty guard: the arc can never fire
		u := eval()
		if u >= baseline {
			baseline = u
			removed++
			continue
		}
		a.Lo, a.Hi = savedLo, savedHi
	}
	if removed == 0 {
		return 0, nil
	}

	// Compact: drop disabled arcs, then unreachable nodes, renumber.
	for _, n := range tree.Nodes {
		kept := n.Arcs[:0]
		for _, a := range n.Arcs {
			if a.Lo <= a.Hi {
				kept = append(kept, a)
			}
		}
		n.Arcs = kept
	}
	reachable := map[*core.Node]bool{tree.Root: true}
	queue := []*core.Node{tree.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, a := range n.Arcs {
			if !reachable[a.Child] {
				reachable[a.Child] = true
				queue = append(queue, a.Child)
			}
		}
	}
	var nodes []*core.Node
	for _, n := range tree.Nodes {
		if reachable[n] {
			n.ID = len(nodes)
			nodes = append(nodes, n)
		}
	}
	tree.Nodes = nodes
	return removed, nil
}
