package sim

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// TestMonteCarloRecoveryWorkerInvariance: MCStats must stay bit-identical
// across worker counts under the non-canonical recovery models too — the
// counter-stable merge makes no assumption about the fault-path arithmetic.
func TestMonteCarloRecoveryWorkerInvariance(t *testing.T) {
	base := apps.Fig1()
	fixtures := []struct {
		name string
		m    model.RecoveryModel
	}{
		{"restart", model.RestartModel(2 * base.Mu())},
		{"checkpoint", model.CheckpointModel(36, 5, base.Mu())},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			app, err := base.WithRecovery(fx.m)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
			if err != nil {
				t.Fatal(err)
			}
			cfg := MCConfig{Scenarios: 1500, Faults: 1, Seed: 21}
			cfg.Workers = 1
			baseStats, err := MonteCarlo(tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if baseStats.HardViolations != 0 {
				t.Fatalf("hard violations under %s: %+v", fx.m, baseStats)
			}
			if baseStats.MeanRecoveries == 0 {
				t.Fatalf("vacuous campaign under %s: no recoveries triggered", fx.m)
			}
			for _, w := range []int{2, 8} {
				cfg.Workers = w
				got, err := MonteCarlo(tree, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got != baseStats {
					t.Errorf("workers=%d: stats differ:\n  got  %+v\n  want %+v", w, got, baseStats)
				}
			}
		})
	}
}
