package sim

import "testing"

// TestRNGFrozenStream pins the splitmix64 stream to golden values: the
// RNG's output is part of the serialised-artefact surface (every recorded
// Monte-Carlo statistic and chaos report derives from it), so any change
// to the constants or the mixing steps must fail loudly here. The seed-0
// vector equals the published splitmix64 reference output.
func TestRNGFrozenStream(t *testing.T) {
	golden := map[int64][4]uint64{
		0:  {0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f, 0xf88bb8a8724c81ec},
		1:  {0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e, 0x71c18690ee42c90b},
		-7: {0x6c1e186443822970, 0x7a87f4dabcf192aa, 0xe8313fe1d7350611, 0x28ceb6e1eddad0c2},
	}
	for seed, want := range golden {
		r := NewRNG(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("seed %d draw %d: got %#x, want %#x — the frozen stream changed", seed, i, got, w)
			}
		}
	}
}

// TestRNGReseed: Reseed rewinds to the exact NewRNG state, which is what
// lets the batch engine reuse one generator per scenario slot.
func TestRNGReseed(t *testing.T) {
	a := NewRNG(99)
	b := NewRNG(0)
	b.Uint64() // advance, then rewind
	b.Reseed(99)
	for i := 0; i < 16; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: reseeded stream diverges (%#x vs %#x)", i, x, y)
		}
	}
}

// TestRNGBounds: bounded draws stay in [0, n) and actually reach more
// than one value; the uniform float stays in [0, 1).
func TestRNGBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Int63n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) = %d out of range", v)
		}
		seen[v] = true
		if n := r.Intn(3); n < 0 || n >= 3 {
			t.Fatalf("Intn(3) = %d out of range", n)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of range", f)
		}
	}
	if len(seen) != 7 {
		t.Errorf("Int63n(7) hit %d of 7 values in 1000 draws", len(seen))
	}
}

// TestRNGInt63nPanics: a non-positive bound is a programming error, not a
// silent zero.
func TestRNGInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	r := NewRNG(1)
	r.Int63n(0)
}
