package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

// utilSink records the per-scenario MCUtility observations; with
// Workers: 1 the single worker walks blocks in index order, so the
// recorded sequence is the scenario order.
type utilSink struct{ utilities []int64 }

func (s *utilSink) Add(obs.Counter, int64) {}
func (s *utilSink) Observe(h obs.Histogram, v int64) {
	if h == obs.MCUtility {
		s.utilities = append(s.utilities, v)
	}
}
func (s *utilSink) ObserveN(h obs.Histogram, v, n int64) {
	for ; n > 0; n-- {
		s.Observe(h, v)
	}
}

// TestBatchSamplerMatchesScalar: the engine's structure-of-arrays block
// sampler must produce, scenario for scenario, exactly what the scalar
// SampleRNGInto draws from the same per-scenario seeds — same durations,
// same fault victims. The assertion runs through the real engine: a
// sequential evaluation's per-scenario utilities (via the sink) and its
// exact aggregates must equal a hand-rolled scalar loop over the same
// dispatcher.
func TestBatchSamplerMatchesScalar(t *testing.T) {
	app := apps.CruiseController()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := StaticTree(app, s)
	const scenarios, faults = 600, 2
	const seed = 9

	sink := &utilSink{}
	st, err := MonteCarlo(tree, MCConfig{
		Scenarios: scenarios, Faults: faults, Seed: seed, Workers: 1, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.utilities) != scenarios {
		t.Fatalf("sink saw %d scenarios, want %d", len(sink.utilities), scenarios)
	}

	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	candidates := make([]model.ProcessID, 0, len(tree.Root().Schedule.Entries))
	for _, e := range tree.Root().Schedule.Entries {
		candidates = append(candidates, e.Proc)
	}
	var rng RNG
	var sc Scenario
	var res runtime.Result
	minU, maxU := math.Inf(1), math.Inf(-1)
	var hard int
	var switches int64
	for i := 0; i < scenarios; i++ {
		rng.Reseed(ScenarioSeed(seed, i))
		if err := SampleRNGInto(&sc, app, &rng, faults, candidates); err != nil {
			t.Fatal(err)
		}
		if err := d.RunInto(&res, sc); err != nil {
			t.Fatal(err)
		}
		if got := int64(math.Round(res.Utility)); got != sink.utilities[i] {
			t.Fatalf("scenario %d: batch utility %d, scalar %d — the block sampler diverged from SampleRNGInto", i, sink.utilities[i], got)
		}
		minU = math.Min(minU, res.Utility)
		maxU = math.Max(maxU, res.Utility)
		if len(res.HardViolations) > 0 {
			hard++
		}
		switches += int64(res.Switches)
	}
	if st.MinUtility != minU || st.MaxUtility != maxU {
		t.Errorf("min/max: batch [%g, %g], scalar [%g, %g]", st.MinUtility, st.MaxUtility, minU, maxU)
	}
	if st.HardViolations != hard {
		t.Errorf("hard violations: batch %d, scalar %d", st.HardViolations, hard)
	}
	if want := float64(switches) / scenarios; st.MeanSwitches != want {
		t.Errorf("mean switches: batch %g, scalar %g", st.MeanSwitches, want)
	}
}

// TestMonteCarloBatchWorkerInvariance: the full MCStats struct —
// percentile estimates included — is bit-identical for 1, 2 and 8 workers
// on all three reference fixtures. This is the engine's central contract:
// the block grid, the per-scenario seeds and the block-order fold are all
// independent of the partitioning.
func TestMonteCarloBatchWorkerInvariance(t *testing.T) {
	fixtures := []struct {
		name string
		app  *model.Application
	}{
		{"fig1", apps.Fig1()},
		{"fig8", apps.Fig8()},
		{"cc", apps.CruiseController()},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			tree, err := core.FTQS(fx.app, core.FTQSOptions{M: 8})
			if err != nil {
				t.Fatal(err)
			}
			cfg := MCConfig{Scenarios: 1500, Faults: min(1, fx.app.K()), Seed: 21}
			cfg.Workers = 1
			base, err := MonteCarlo(tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 8} {
				cfg.Workers = w
				got, err := MonteCarlo(tree, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Errorf("workers=%d: stats differ:\n  got  %+v\n  want %+v", w, got, base)
				}
			}
		})
	}
}

// TestMonteCarloBatchAllocs gates the streaming design: in steady state
// the engine allocates only its fixed per-run scratch (planes, RNG
// states, histogram), so allocations per scenario must be ~0. A
// per-scenario allocation sneaking into the hot loop trips this
// immediately (0.05 × 4096 ≈ 205 ≪ one per scenario).
func TestMonteCarloBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	app := apps.Fig8()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := StaticTree(app, s)
	d, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	const scenarios = 4096
	cfg := MCConfig{Scenarios: scenarios, Faults: 1, Seed: 5, Workers: 1, Dispatcher: d}
	run := func() {
		if _, err := MonteCarlo(tree, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up
	perScenario := testing.AllocsPerRun(3, run) / scenarios
	if perScenario > 0.05 {
		t.Errorf("allocations per scenario = %.3f, want ~0 (< 0.05)", perScenario)
	}
}

// TestRunBlocksCancel: cancellation stops the driver within one block per
// worker and surfaces ctx.Err().
func TestRunBlocksCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := RunBlocks(ctx, 10*BlockSize, 1, func(int) func(int, int, int) error {
		return func(block, lo, hi int) error {
			ran++
			if block == 2 {
				cancel()
			}
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= 10 {
		t.Errorf("all %d blocks ran despite cancellation", ran)
	}
}

// TestRunBlocksError: a block error aborts the run and is returned.
func TestRunBlocksError(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := RunBlocks(context.Background(), 4*BlockSize, 2, func(int) func(int, int, int) error {
		return func(block, lo, hi int) error {
			if block == 1 {
				return boom
			}
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestRunBlocksPartition: every index is visited exactly once, for worker
// counts below, at and above the block count.
func TestRunBlocksPartition(t *testing.T) {
	const n = 3*BlockSize + 17
	for _, workers := range []int{1, 3, 64} {
		visited := make([]int32, n)
		err := RunBlocks(context.Background(), n, workers, func(int) func(int, int, int) error {
			return func(block, lo, hi int) error {
				for i := lo; i < hi; i++ {
					visited[i]++
				}
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestMCConfigValidateTyped: invalid configurations surface as
// *ConfigError carrying the offending field and value.
func TestMCConfigValidateTyped(t *testing.T) {
	cases := []struct {
		cfg   MCConfig
		field string
		value int
	}{
		{MCConfig{Scenarios: 0}, "Scenarios", 0},
		{MCConfig{Scenarios: 10, Faults: -1}, "Faults", -1},
		{MCConfig{Scenarios: 10, Workers: -2}, "Workers", -2},
	}
	for _, c := range cases {
		_, err := c.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%+v: err = %v, want *ConfigError", c.cfg, err)
		}
		if ce.Field != c.field || ce.Value != c.value {
			t.Errorf("got {%s %d}, want {%s %d}", ce.Field, ce.Value, c.field, c.value)
		}
	}
	if _, err := (MCConfig{Scenarios: 10, Workers: -2}).Validate(); err == nil || err.Error() != "sim: MCConfig.Workers must be non-negative (got -2)" {
		t.Errorf("message = %v", err)
	}
	// The MonteCarlo entry point applies Validate.
	app := apps.Fig1()
	s, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	var ce *ConfigError
	if _, err := MonteCarlo(StaticTree(app, s), MCConfig{Scenarios: 100, Workers: -1}); !errors.As(err, &ce) {
		t.Errorf("MonteCarlo(Workers: -1) = %v, want *ConfigError", err)
	}
}
