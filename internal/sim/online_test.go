package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
)

func TestOnlineRescheduleNoFault(t *testing.T) {
	app := apps.Fig1()
	root, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	sc := fixedScenario(app, nil, nil)
	r := RunOnlineReschedule(app, root, sc)
	if len(r.HardViolations) != 0 {
		t.Fatalf("violations: %v", r.HardViolations)
	}
	// Average case: same utility as the static schedule (60).
	if r.Utility != 60 {
		t.Errorf("utility = %g, want 60", r.Utility)
	}
	if r.Reschedules != len(root.Entries)-1 {
		t.Errorf("reschedules = %d, want %d", r.Reschedules, len(root.Entries)-1)
	}
	if r.SynthesisTime <= 0 {
		t.Error("synthesis time not recorded")
	}
	if r.FinalNode != -1 {
		t.Error("FinalNode sentinel lost")
	}
}

func TestOnlineRescheduleAdaptsLikeTheTree(t *testing.T) {
	app := apps.Fig1()
	root, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	// P1 finishes at BCET 30: the ideal rescheduler must realise the
	// P2-first ordering worth 70 (like the quasi-static switch).
	sc := fixedScenario(app, map[string]model.Time{"P1": 30}, nil)
	r := RunOnlineReschedule(app, root, sc)
	if r.Utility != 70 {
		t.Errorf("utility = %g, want 70", r.Utility)
	}
}

// TestOnlineRescheduleUpperBound: over many random scenarios the ideal
// online rescheduler must do at least as well as the static schedule, and
// at least as well as the (bounded) quasi-static tree up to noise.
func TestOnlineRescheduleUpperBound(t *testing.T) {
	app := apps.Fig8()
	root, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var uStatic, uTree, uIdeal float64
	const n = 2000
	static := StaticTree(app, root)
	for i := 0; i < n; i++ {
		sc := MustSample(app, rng, 0, nil)
		uStatic += testRun(t, static, sc).Utility
		uTree += testRun(t, tree, sc).Utility
		ideal := RunOnlineReschedule(app, root, sc)
		if len(ideal.HardViolations) != 0 {
			t.Fatalf("ideal scheduler violated a deadline: %v", ideal.HardViolations)
		}
		uIdeal += ideal.Utility
	}
	uStatic /= n
	uTree /= n
	uIdeal /= n
	if uIdeal < uStatic-0.5 {
		t.Errorf("ideal %g below static %g", uIdeal, uStatic)
	}
	if uIdeal < uTree-1.0 {
		t.Errorf("ideal %g below quasi-static %g", uIdeal, uTree)
	}
	t.Logf("static %.2f <= tree %.2f <= ideal %.2f", uStatic, uTree, uIdeal)
}

// TestOnlineRescheduleSafetyProperty: hard deadlines hold for random
// applications and fault patterns, exactly as for the tree executor.
func TestOnlineRescheduleSafetyProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := randomApp(rng, 4+rng.Intn(10), 1+rng.Intn(3))
		root, err := core.FTSS(app)
		if err != nil {
			return true
		}
		for trial := 0; trial < 15; trial++ {
			sc := MustSample(app, rng, rng.Intn(app.K()+1), nil)
			r := RunOnlineReschedule(app, root, sc)
			if len(r.HardViolations) > 0 {
				t.Logf("seed %d trial %d: violations %v", seed, trial, r.HardViolations)
				return false
			}
			if r.Makespan > app.Period() {
				t.Logf("seed %d trial %d: makespan %d > period %d",
					seed, trial, r.Makespan, app.Period())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// referenceOnlineReschedule is the pre-optimisation implementation of
// RunOnlineReschedule, kept verbatim as a behavioural oracle: it copies the
// remaining entries every cycle and rebuilds the executed/dropped state per
// processed entry. The production version replaced those allocations with
// index consumption and reused buffers; this reference pins down that the
// rewrite changed nothing observable.
func referenceOnlineReschedule(app *model.Application, root *schedule.FSchedule, sc Scenario) RescheduleResult {
	res := RescheduleResult{
		Result: Result{
			Outcomes:        make([]ProcessOutcome, app.N()),
			CompletionTimes: make([]model.Time, app.N()),
		},
	}
	faultsLeft := make([]int, app.N())
	copy(faultsLeft, sc.FaultsAt)

	executedIDs := make([]model.ProcessID, 0, app.N())
	droppedIDs := make([]model.ProcessID, 0, app.N())
	kRem := app.K()
	now := model.Time(0)
	remaining := append([]schedule.Entry(nil), root.Entries...)

	for len(remaining) > 0 {
		e := remaining[0]
		remaining = remaining[1:]
		p := app.Proc(e.Proc)
		start := now
		if p.Release > start {
			start = p.Release
		}

		completed := false
		t := start
		for attempt := 0; ; attempt++ {
			t += sc.Durations[e.Proc]
			if faultsLeft[e.Proc] > 0 {
				faultsLeft[e.Proc]--
				res.FaultsConsumed++
				kRem--
				if attempt < e.Recoveries {
					t += app.MuOf(e.Proc)
					res.Recoveries++
					continue
				}
				break
			}
			completed = true
			break
		}
		now = t
		res.Makespan = now

		if completed {
			res.Outcomes[e.Proc] = Completed
			res.CompletionTimes[e.Proc] = now
			executedIDs = append(executedIDs, e.Proc)
			if p.Kind == model.Hard && now > p.Deadline {
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		} else {
			res.Outcomes[e.Proc] = AbandonedByFault
			droppedIDs = append(droppedIDs, e.Proc)
			if p.Kind == model.Hard {
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		}

		if len(remaining) == 0 {
			break
		}
		if kRem < 0 {
			kRem = 0
		}
		exSet := make(map[model.ProcessID]bool, len(executedIDs))
		for _, id := range executedIDs {
			exSet[id] = true
		}
		drop := append([]model.ProcessID(nil), droppedIDs...)
		for id := 0; id < app.N(); id++ {
			pid := model.ProcessID(id)
			if exSet[pid] || res.Outcomes[id] == AbandonedByFault {
				continue
			}
			for _, s := range app.Succs(pid) {
				if exSet[s] {
					drop = append(drop, pid)
					break
				}
			}
		}
		suffix, err := core.SuffixFTSS(app, executedIDs, drop, now, kRem)
		res.Reschedules++
		if err == nil && len(suffix) > 0 && schedule.Schedulable(app, suffix, now, kRem) {
			remaining = append([]schedule.Entry(nil), suffix...)
		}
	}
	res.FinalNode = -1

	for _, h := range app.HardIDs() {
		if res.Outcomes[h] != Completed {
			already := false
			for _, v := range res.HardViolations {
				if v == h {
					already = true
					break
				}
			}
			if !already {
				res.HardViolations = append(res.HardViolations, h)
			}
		}
	}
	res.Utility = runtime.TotalUtility(app, res.Outcomes, res.CompletionTimes)
	return res
}

// TestOnlineRescheduleMatchesReference: the buffer-reusing implementation
// must reproduce the copying reference exactly — every result field except
// the wall-clock SynthesisTime — across the paper fixtures and many random
// fault patterns.
func TestOnlineRescheduleMatchesReference(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig1(), apps.Fig8(), apps.CruiseController()} {
		root, err := core.FTSS(app)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 200; i++ {
			sc := MustSample(app, rng, i%(app.K()+1), nil)
			got := RunOnlineReschedule(app, root, sc)
			want := referenceOnlineReschedule(app, root, sc)
			got.SynthesisTime, want.SynthesisTime = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s scenario %d: results diverge:\ngot  %+v\nwant %+v",
					app.Name(), i, got, want)
			}
		}
	}
}

func TestOnlineRescheduleFaultHandling(t *testing.T) {
	app := apps.Fig1()
	root, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	// Fault on P1: recovered in place; soft processes still run.
	sc := fixedScenario(app, nil, map[string]int{"P1": 1})
	r := RunOnlineReschedule(app, root, sc)
	if len(r.HardViolations) != 0 {
		t.Fatalf("violations: %v", r.HardViolations)
	}
	if r.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", r.Recoveries)
	}
	// Fault on P3 (no recovery budget in the root): abandoned, the
	// rescheduler carries on with P2.
	sc2 := fixedScenario(app, nil, map[string]int{"P3": 1})
	r2 := RunOnlineReschedule(app, root, sc2)
	if r2.Outcomes[app.IDByName("P3")] != AbandonedByFault {
		t.Error("P3 must be abandoned")
	}
	if r2.Outcomes[app.IDByName("P2")] != Completed {
		t.Error("P2 must still complete")
	}
}
