package apps

import (
	"fmt"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// CruiseController builds the vehicle cruise controller (CC) of the paper's
// case study (§6, after [8]): 32 processes on a single microcontroller,
// nine of which — the processes critically involved with the actuators —
// are hard; k = 2 transient faults per cycle and a recovery overhead µ of
// 10% of each process's WCET.
//
// Reference [8] (a licentiate thesis) is not publicly available, so the
// process structure is reconstructed from the standard architecture of an
// automotive cruise control loop (documented in DESIGN.md): sensor
// acquisition → filtering/validation → mode logic → state estimation →
// speed control → actuation → diagnostics/communication. The time base is
// 0.1 ms ticks; the control period is 200 ms (2000 ticks).
//
// Hard processes (9): BrakeDebounce, CruiseFSM, SafetyMonitor,
// PIController, TorqueArbiter, ThrottleAct, BrakeAct, ActWatchdog,
// FaultMgr.
func CruiseController() *model.Application {
	type proc struct {
		name  string
		hard  bool
		bcet  model.Time
		wcet  model.Time
		peak  float64 // soft utility peak
		preds []string
	}
	// Declaration order is a topological order; deadlines and utility
	// knees are derived from cumulative execution-time estimates below.
	table := []proc{
		// Stage A: sensor acquisition.
		{name: "WheelFL", bcet: 10, wcet: 24, peak: 45},
		{name: "WheelFR", bcet: 10, wcet: 24, peak: 45},
		{name: "WheelRL", bcet: 10, wcet: 24, peak: 45},
		{name: "WheelRR", bcet: 10, wcet: 24, peak: 45},
		{name: "EngineRPM", bcet: 12, wcet: 30, peak: 50},
		{name: "ThrottleSens", bcet: 12, wcet: 28, peak: 40},
		{name: "BrakePedal", bcet: 8, wcet: 20, peak: 60},
		// Stage B: filtering / validation.
		{name: "SpeedFilter", bcet: 20, wcet: 48, peak: 70,
			preds: []string{"WheelFL", "WheelFR", "WheelRL", "WheelRR"}},
		{name: "RPMFilter", bcet: 16, wcet: 40, peak: 40, preds: []string{"EngineRPM"}},
		{name: "ThrottleFilter", bcet: 14, wcet: 36, peak: 35, preds: []string{"ThrottleSens"}},
		{name: "BrakeDebounce", hard: true, bcet: 10, wcet: 30, preds: []string{"BrakePedal"}},
		// Stage C: mode logic.
		{name: "DriverButtons", bcet: 8, wcet: 22, peak: 55},
		{name: "CruiseFSM", hard: true, bcet: 18, wcet: 46,
			preds: []string{"DriverButtons", "BrakeDebounce", "SpeedFilter"}},
		{name: "SetpointMgr", bcet: 12, wcet: 32, peak: 65, preds: []string{"CruiseFSM"}},
		{name: "SafetyMonitor", hard: true, bcet: 20, wcet: 50,
			preds: []string{"BrakeDebounce", "RPMFilter", "SpeedFilter"}},
		// Stage D: state estimation.
		{name: "SpeedEst", bcet: 24, wcet: 62, peak: 85, preds: []string{"SpeedFilter"}},
		{name: "AccelEst", bcet: 18, wcet: 48, peak: 50, preds: []string{"SpeedEst"}},
		{name: "SlopeEst", bcet: 22, wcet: 58, peak: 45,
			preds: []string{"AccelEst", "RPMFilter"}},
		{name: "DistanceEst", bcet: 18, wcet: 46, peak: 35, preds: []string{"SpeedEst"}},
		// Stage E: speed control.
		{name: "SpeedError", bcet: 10, wcet: 26, peak: 75,
			preds: []string{"SetpointMgr", "SpeedEst"}},
		{name: "PIController", hard: true, bcet: 20, wcet: 52, preds: []string{"SpeedError"}},
		{name: "Feedforward", bcet: 16, wcet: 42, peak: 40, preds: []string{"SlopeEst"}},
		{name: "TorqueArbiter", hard: true, bcet: 16, wcet: 40,
			preds: []string{"PIController", "Feedforward", "SafetyMonitor"}},
		// Stage F: actuation.
		{name: "ThrottleAct", hard: true, bcet: 14, wcet: 36, preds: []string{"TorqueArbiter"}},
		{name: "BrakeAct", hard: true, bcet: 14, wcet: 36, preds: []string{"TorqueArbiter"}},
		{name: "ActWatchdog", hard: true, bcet: 10, wcet: 28,
			preds: []string{"ThrottleAct", "BrakeAct"}},
		// Stage G: diagnostics / communication.
		{name: "CANRx", bcet: 16, wcet: 44, peak: 45},
		{name: "CANTx", bcet: 18, wcet: 50, peak: 55,
			preds: []string{"TorqueArbiter", "SpeedEst"}},
		{name: "DiagLogger", bcet: 24, wcet: 80, peak: 25,
			preds: []string{"SafetyMonitor", "ActWatchdog"}},
		{name: "HMIDisplay", bcet: 28, wcet: 90, peak: 35,
			preds: []string{"SpeedEst", "SetpointMgr"}},
		{name: "FaultMgr", hard: true, bcet: 18, wcet: 48,
			preds: []string{"SafetyMonitor", "CANRx"}},
		{name: "HeartBeat", bcet: 6, wcet: 16, peak: 30},
	}
	if len(table) != 32 {
		panic(fmt.Sprintf("apps: cruise controller has %d processes, want 32", len(table)))
	}

	const period = 2000 // 200 ms in 0.1 ms ticks
	const k = 2
	app := model.NewApplication("cruise-controller", period, k, 1 /* overridden per process */)

	// Cumulative estimates in declaration order drive deadlines (hard)
	// and utility knees (soft).
	var cumW, cumA, maxRec model.Time
	ids := make(map[string]model.ProcessID, len(table))
	for _, p := range table {
		mu := p.wcet / 10 // µ = 10% of WCET (paper §6)
		if mu < 1 {
			mu = 1
		}
		if rec := p.wcet + mu; rec > maxRec {
			maxRec = rec
		}
		aet := p.bcet + (p.wcet-p.bcet)/2
		cumW += p.wcet
		cumA += aet
		mp := model.Process{
			Name: p.name,
			BCET: p.bcet,
			AET:  aet,
			WCET: p.wcet,
			Mu:   mu,
		}
		if p.hard {
			mp.Kind = model.Hard
			// Feasible even if every earlier process runs at WCET
			// and both faults strike, plus a tight margin.
			d := cumW + model.Time(k)*maxRec + 60
			if d > period {
				d = period
			}
			mp.Deadline = d
		} else {
			mp.Kind = model.Soft
			// Knees straddle the average-case completion estimate so
			// that completion order genuinely matters: finishing a
			// little early earns the peak, a little late only 40%.
			t1 := cumA - cumA/8
			t2 := cumA + cumA/4 + 1
			t3 := cumA + cumA + 2
			mp.Utility = utility.MustStep(
				[]model.Time{t1, t2, t3},
				[]float64{p.peak, p.peak * 0.4, p.peak * 0.1})
		}
		id := app.AddProcess(mp)
		ids[p.name] = id
	}
	for _, p := range table {
		for _, pre := range p.preds {
			from, ok := ids[pre]
			if !ok {
				panic(fmt.Sprintf("apps: unknown predecessor %q of %q", pre, p.name))
			}
			app.MustAddEdge(from, ids[p.name])
		}
	}
	if err := app.Validate(); err != nil {
		panic(err) // fixture is statically correct
	}
	return app
}
