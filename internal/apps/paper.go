// Package apps provides ready-made applications: the worked examples of
// Izosimov et al. (DATE 2008) — used heavily by the test suites — and the
// vehicle cruise controller of the paper's case study.
package apps

import (
	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// Fig1 builds the application of the paper's Fig. 1 with the utility
// functions of Fig. 4a: the graph G1 with hard process P1 (deadline 180 ms)
// and soft processes P2, P3 fed by P1; T = 300 ms, k = 1, µ = 10 ms.
//
// The staircase utility functions are reconstructed from every value the
// paper quotes in the Fig. 4/5 discussion:
//
//	U2 = 40 (t ≤ 90), 20 (t ≤ 200), 10 (t ≤ 250), 0 after
//	U3 = 40 (t ≤ 110), 30 (t ≤ 150), 10 (t ≤ 220), 0 after
//
// so that e.g. U2(100)+U3(160) = 30 (schedule S1, average case) and
// U3(110)+U2(160) = 60 (schedule S2), as in the paper.
func Fig1() *model.Application {
	a := model.NewApplication("paper-fig1", 300, 1, 10)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	p2 := a.AddProcess(model.Process{Name: "P2", Kind: model.Soft, BCET: 30, AET: 50, WCET: 70,
		Utility: utility.MustStep([]model.Time{90, 200, 250}, []float64{40, 20, 10})})
	p3 := a.AddProcess(model.Process{Name: "P3", Kind: model.Soft, BCET: 40, AET: 60, WCET: 80,
		Utility: utility.MustStep([]model.Time{110, 150, 220}, []float64{40, 30, 10})})
	a.MustAddEdge(p1, p2)
	a.MustAddEdge(p1, p3)
	if err := a.Validate(); err != nil {
		panic(err) // fixture is statically correct
	}
	return a
}

// Fig1ReducedPeriod is the Fig. 4c variant of Fig1: the period is reduced
// to 250 ms, which forces the static scheduler to drop a soft process in
// order to keep P1 fault-tolerant.
func Fig1ReducedPeriod() *model.Application {
	a := model.NewApplication("paper-fig4c", 250, 1, 10)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	p2 := a.AddProcess(model.Process{Name: "P2", Kind: model.Soft, BCET: 30, AET: 50, WCET: 70,
		Utility: utility.MustStep([]model.Time{90, 200, 250}, []float64{40, 20, 10})})
	p3 := a.AddProcess(model.Process{Name: "P3", Kind: model.Soft, BCET: 40, AET: 60, WCET: 80,
		Utility: utility.MustStep([]model.Time{110, 150, 220}, []float64{40, 30, 10})})
	a.MustAddEdge(p1, p2)
	a.MustAddEdge(p1, p3)
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// Fig8 builds the application G2 of the paper's Fig. 8: hard processes P1
// (deadline 110 ms) and P5 (deadline 220 ms), soft processes P2, P3, P4;
// T = 220 ms, k = 2, µ = 10 ms. The utility staircases reproduce the
// quoted evaluations U(S2') = U2(60)+U3(90)+U4(130) = 80 and
// U(S2”) = U3(60) + 2/3·U4(90) = 50 (the 2/3 is P4's stale-value
// coefficient when P2 is dropped, since DP(P4) = {P2, P3}).
func Fig8() *model.Application {
	a := model.NewApplication("paper-fig8", 220, 2, 10)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 10, AET: 20, WCET: 30, Deadline: 110})
	p2 := a.AddProcess(model.Process{Name: "P2", Kind: model.Soft, BCET: 20, AET: 30, WCET: 40,
		Utility: utility.MustStep([]model.Time{60, 100, 130}, []float64{40, 20, 10})})
	p3 := a.AddProcess(model.Process{Name: "P3", Kind: model.Soft, BCET: 20, AET: 30, WCET: 40,
		Utility: utility.MustStep([]model.Time{70, 150}, []float64{30, 20})})
	p4 := a.AddProcess(model.Process{Name: "P4", Kind: model.Soft, BCET: 20, AET: 30, WCET: 40,
		Utility: utility.MustStep([]model.Time{100, 150, 200}, []float64{30, 20, 10})})
	p5 := a.AddProcess(model.Process{Name: "P5", Kind: model.Hard, BCET: 10, AET: 20, WCET: 30, Deadline: 220})
	a.MustAddEdge(p1, p2)
	a.MustAddEdge(p1, p3)
	a.MustAddEdge(p2, p4)
	a.MustAddEdge(p3, p4)
	a.MustAddEdge(p1, p5)
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}
