package apps

import (
	"testing"

	"ftsched/internal/model"
)

func TestFig1Fixture(t *testing.T) {
	app := Fig1()
	if app.N() != 3 || app.Period() != 300 || app.K() != 1 || app.Mu() != 10 {
		t.Fatalf("fig1 parameters wrong: %s", app)
	}
	if len(app.HardIDs()) != 1 || len(app.SoftIDs()) != 2 {
		t.Error("fig1 hard/soft split wrong")
	}
	// Utility spot checks straight from the paper's Fig. 4 narrative.
	u2 := app.UtilityOf(app.IDByName("P2"))
	u3 := app.UtilityOf(app.IDByName("P3"))
	if u2.Value(100) != 20 || u3.Value(160) != 10 {
		t.Error("S1 average-case utilities wrong (want 20+10=30)")
	}
	if u3.Value(110) != 40 || u2.Value(160) != 20 {
		t.Error("S2 average-case utilities wrong (want 40+20=60)")
	}
	if u2.Value(80) != 40 || u3.Value(140) != 30 {
		t.Error("early-P1 utilities wrong (want 40+30=70)")
	}
	if u3.Value(100) != 40 || u2.Value(100) != 20 {
		t.Error("Fig. 4c utilities wrong (S3=40 vs S4=20)")
	}
}

func TestFig1ReducedPeriodFixture(t *testing.T) {
	app := Fig1ReducedPeriod()
	if app.Period() != 250 {
		t.Fatalf("period = %d, want 250", app.Period())
	}
}

func TestFig8Fixture(t *testing.T) {
	app := Fig8()
	if app.N() != 5 || app.K() != 2 || app.Mu() != 10 || app.Period() != 220 {
		t.Fatalf("fig8 parameters wrong: %s", app)
	}
	if d := app.Proc(app.IDByName("P1")).Deadline; d != 110 {
		t.Errorf("P1 deadline = %d, want 110", d)
	}
	if d := app.Proc(app.IDByName("P5")).Deadline; d != 220 {
		t.Errorf("P5 deadline = %d, want 220", d)
	}
	// The quoted dropping-evaluation values.
	u2 := app.UtilityOf(app.IDByName("P2"))
	u3 := app.UtilityOf(app.IDByName("P3"))
	u4 := app.UtilityOf(app.IDByName("P4"))
	if got := u2.Value(60) + u3.Value(90) + u4.Value(130); got != 80 {
		t.Errorf("U(S2') = %g, want 80", got)
	}
	if got := u3.Value(60) + 2.0/3.0*u4.Value(90); got != 50 {
		t.Errorf("U(S2'') = %g, want 50", got)
	}
	// P4 has exactly P2 and P3 as predecessors (the stale factor 2/3).
	if got := len(app.Preds(app.IDByName("P4"))); got != 2 {
		t.Errorf("P4 preds = %d, want 2", got)
	}
}

func TestCruiseControllerFixture(t *testing.T) {
	app := CruiseController()
	if app.N() != 32 {
		t.Fatalf("CC has %d processes, want 32", app.N())
	}
	if got := len(app.HardIDs()); got != 9 {
		t.Fatalf("CC has %d hard processes, want 9", got)
	}
	if app.K() != 2 {
		t.Errorf("k = %d, want 2", app.K())
	}
	// µ is 10% of WCET for every process.
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		p := app.Proc(pid)
		wantMu := p.WCET / 10
		if wantMu < 1 {
			wantMu = 1
		}
		if app.MuOf(pid) != wantMu {
			t.Errorf("%s µ = %d, want %d (10%% of WCET %d)", p.Name, app.MuOf(pid), wantMu, p.WCET)
		}
	}
	// The actuator-critical chain must be hard.
	for _, n := range []string{"BrakeDebounce", "CruiseFSM", "SafetyMonitor", "PIController",
		"TorqueArbiter", "ThrottleAct", "BrakeAct", "ActWatchdog", "FaultMgr"} {
		id := app.IDByName(n)
		if id == model.NoProcess {
			t.Fatalf("process %s missing", n)
		}
		if app.Proc(id).Kind != model.Hard {
			t.Errorf("%s must be hard", n)
		}
	}
	// Sanity: deadlines within the period, graph acyclic (Validate ran),
	// actuators downstream of the arbiter.
	for _, h := range app.HardIDs() {
		if d := app.Proc(h).Deadline; d <= 0 || d > app.Period() {
			t.Errorf("%s deadline %d outside (0,%d]", app.Proc(h).Name, d, app.Period())
		}
	}
	ta := app.IDByName("TorqueArbiter")
	found := false
	for _, s := range app.Succs(ta) {
		if app.Proc(s).Name == "ThrottleAct" {
			found = true
		}
	}
	if !found {
		t.Error("ThrottleAct must consume TorqueArbiter output")
	}
}
