// Package utility implements the time/utility model of Izosimov et al.
// (DATE 2008), Section 2.1.
//
// Each soft process is assigned a utility function U_i(t): a non-increasing
// monotonic function of its completion time. The overall utility of an
// application is the sum of the individual utilities produced by its soft
// processes. Hard processes carry no utility function; they carry deadlines.
//
// The package also implements stale-value coefficients. When a soft process
// is dropped its successors consume "stale" inputs from the previous
// execution cycle; the degradation is captured by the coefficient
//
//	α_i = (1 + Σ_{j ∈ DP(i)} α_j) / (1 + |DP(i)|)
//
// where DP(i) is the set of direct predecessors of P_i in the application's
// polar DAG (see package model). The modified utility is
// U*_i(t) = α_i · U_i(t), and α_i = 0 for a dropped process.
//
// Utility functions are immutable once built, so evaluating them from the
// concurrent FTQS synthesis workers (package core) requires no locking.
package utility
