package utility

import "fmt"

// StaleStatus describes how a process terminated in a given scenario, for
// the purpose of stale-value accounting.
type StaleStatus int

const (
	// Executed means the process ran to completion in this cycle.
	Executed StaleStatus = iota
	// Dropped means the process was not started (or its recovery was
	// abandoned after a fault); successors consume stale inputs and its
	// own utility is zero (α = 0).
	Dropped
)

// Coefficients computes the stale-value coefficients α_i for every process,
// given the predecessor lists and the per-process execution status.
//
// preds[i] lists the direct predecessors DP(P_i) of process i; order is the
// order in which coefficients must be evaluated, so callers must pass a
// topological order of the process indices (internal/model stores processes
// topologically sorted, so the identity order works there).
//
// Per the paper (§2.1):
//
//	α_i = 0                                        if P_i is dropped
//	α_i = (1 + Σ_{j ∈ DP(i)} α_j) / (1 + |DP(i)|)  if P_i executed
//
// A process with no predecessors that executes has α = 1. The result is
// always within [0, 1].
func Coefficients(order []int, preds [][]int, status []StaleStatus) ([]float64, error) {
	n := len(preds)
	if len(status) != n {
		return nil, fmt.Errorf("utility: status length %d does not match %d processes", len(status), n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("utility: order length %d does not match %d processes", len(order), n)
	}
	alpha := make([]float64, n)
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("utility: order contains out-of-range index %d", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("utility: order visits process %d twice", i)
		}
		seen[i] = true
		if status[i] == Dropped {
			alpha[i] = 0
			continue
		}
		sum := 1.0
		for _, j := range preds[i] {
			if j < 0 || j >= n {
				return nil, fmt.Errorf("utility: process %d has out-of-range predecessor %d", i, j)
			}
			if !seen[j] {
				return nil, fmt.Errorf("utility: order is not topological: predecessor %d of %d not yet visited", j, i)
			}
			sum += alpha[j]
		}
		alpha[i] = sum / float64(1+len(preds[i]))
	}
	return alpha, nil
}

// CoefficientsInto is Coefficients without validation or allocation: alpha
// is overwritten in place. order must be a topological order and preds must
// be consistent with it (the checked Coefficients establishes this once;
// hot paths such as the runtime dispatcher then reuse the same order/preds
// every cycle). The arithmetic — including summation order — is identical
// to Coefficients, so both produce bit-identical coefficients.
func CoefficientsInto(alpha []float64, order []int, preds [][]int, status []StaleStatus) {
	for _, i := range order {
		if status[i] == Dropped {
			alpha[i] = 0
			continue
		}
		sum := 1.0
		for _, j := range preds[i] {
			sum += alpha[j]
		}
		alpha[i] = sum / float64(1+len(preds[i]))
	}
}

// CoefficientsInOrder is Coefficients with the identity visiting order
// 0..n-1, for graphs whose process indices are already topologically sorted.
func CoefficientsInOrder(preds [][]int, status []StaleStatus) ([]float64, error) {
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	return Coefficients(order, preds, status)
}
