package utility

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStepTableValues(t *testing.T) {
	// U2 from the paper's Fig. 4: 40 up to 90 ms, then 20 up to 200 ms,
	// then 10 up to 250 ms, then 0.
	u2 := MustStep([]Time{90, 200, 250}, []float64{40, 20, 10})
	cases := []struct {
		t    Time
		want float64
	}{
		{0, 40}, {80, 40}, {90, 40},
		{91, 20}, {100, 20}, {160, 20}, {200, 20},
		{201, 10}, {250, 10},
		{251, 0}, {1000, 0},
	}
	for _, c := range cases {
		if got := u2.Value(c.t); got != c.want {
			t.Errorf("U2(%d) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPaperFig2Utilities(t *testing.T) {
	// Fig. 2a: Ua is 40 until 40 ms, 20 until 80-ish; the paper states
	// Ua(60) = 20.
	ua := MustStep([]Time{40, 80}, []float64{40, 20})
	if got := ua.Value(60); got != 20 {
		t.Errorf("Ua(60) = %g, want 20", got)
	}
	// Fig. 2b: Ub(50) = 15, Uc(110) = 10; the application utility is the
	// sum, 25.
	ub := MustStep([]Time{30, 70}, []float64{30, 15})
	uc := MustStep([]Time{80, 130}, []float64{20, 10})
	if got := ub.Value(50) + uc.Value(110); got != 25 {
		t.Errorf("Ub(50)+Uc(110) = %g, want 25", got)
	}
}

func TestLinearDrop(t *testing.T) {
	u, err := NewLinearDrop(100, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    Time
		want float64
	}{
		{0, 100}, {50, 100}, {100, 50}, {125, 25}, {150, 0}, {400, 0},
	}
	for _, c := range cases {
		if got := u.Value(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("U(%d) = %g, want %g", c.t, got, c.want)
		}
	}
	if u.Horizon() != 150 {
		t.Errorf("Horizon() = %d, want 150", u.Horizon())
	}
}

func TestNewLinearDropRejectsEmptyRange(t *testing.T) {
	if _, err := NewLinearDrop(10, 100, 100); err == nil {
		t.Error("NewLinearDrop(10, 100, 100) should fail")
	}
	if _, err := NewLinearDrop(10, 100, 50); err == nil {
		t.Error("NewLinearDrop(10, 100, 50) should fail")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Step); err == nil {
		t.Error("empty table should be rejected")
	}
	if _, err := NewTable(Step, Point{10, 5}, Point{10, 3}); err == nil {
		t.Error("duplicate times should be rejected")
	}
	if _, err := NewTable(Step, Point{10, 5}, Point{20, 7}); err == nil {
		t.Error("increasing values should be rejected")
	}
	if _, err := NewTable(Step, Point{10, -1}); err == nil {
		t.Error("negative values should be rejected")
	}
	if _, err := NewStep([]Time{10}, []float64{1, 2}); err == nil {
		t.Error("mismatched slice lengths should be rejected")
	}
}

func TestZeroAndScaled(t *testing.T) {
	var z Zero
	if z.Value(0) != 0 || z.Value(1000) != 0 {
		t.Error("Zero must be identically 0")
	}
	u := MustStep([]Time{100}, []float64{30})
	s := Scaled{F: u, Alpha: 2.0 / 3.0}
	if got, want := s.Value(50), 20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Scaled.Value(50) = %g, want %g", got, want)
	}
	if s.Horizon() != u.Horizon() {
		t.Error("Scaled must preserve the horizon")
	}
}

func TestTableString(t *testing.T) {
	u := MustStep([]Time{90}, []float64{40})
	if got := u.String(); got != "step{90:40 91:0}" {
		t.Errorf("String() = %q", got)
	}
	l := MustLinearDrop(10, 0, 5)
	if got := l.String(); got != "linear{0:10 5:0}" {
		t.Errorf("String() = %q", got)
	}
}

// TestTableNonIncreasingProperty checks monotonicity of arbitrary generated
// tables at arbitrary probe points.
func TestTableNonIncreasingProperty(t *testing.T) {
	check := func(seed int64, linear bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		times := make([]Time, n)
		seenT := map[Time]bool{}
		for i := range times {
			for {
				x := Time(rng.Intn(1000))
				if !seenT[x] {
					seenT[x] = true
					times[i] = x
					break
				}
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		vals := make([]float64, n)
		v := 100 * rng.Float64()
		for i := range vals {
			vals[i] = v
			v -= rng.Float64() * 20
			if v < 0 {
				v = 0
			}
		}
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{T: times[i], V: vals[i]}
		}
		mode := Step
		if linear {
			mode = Linear
		}
		tb, err := NewTable(mode, pts...)
		if err != nil {
			t.Logf("unexpected construction error: %v", err)
			return false
		}
		prev := math.Inf(1)
		for probe := Time(-10); probe < 1100; probe += 7 {
			got := tb.Value(probe)
			if got > prev+1e-9 {
				t.Logf("value increased at t=%d: %g > %g (table %v)", probe, got, prev, tb)
				return false
			}
			if got < 0 {
				t.Logf("negative value at t=%d: %g", probe, got)
				return false
			}
			prev = got
		}
		// Beyond the horizon the function must be flat.
		h := tb.Horizon()
		if tb.Value(h) != tb.Value(h+1000) {
			t.Logf("function not flat after horizon %d", h)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoefficientsPaperExample(t *testing.T) {
	// Paper §2.1: P3 has predecessors P1 and P2. P1 dropped, P2 and P3
	// executed: α3 = (1 + 0 + 1)/(1 + 2) = 2/3. P4, the only successor of
	// P3, executed: α4 = (1 + 2/3)/(1 + 1) = 5/6.
	preds := [][]int{
		{},     // P1
		{},     // P2
		{0, 1}, // P3 <- P1, P2
		{2},    // P4 <- P3
	}
	status := []StaleStatus{Dropped, Executed, Executed, Executed}
	alpha, err := CoefficientsInOrder(preds, status)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2.0 / 3.0, 5.0 / 6.0}
	for i := range want {
		if math.Abs(alpha[i]-want[i]) > 1e-12 {
			t.Errorf("alpha[%d] = %g, want %g", i, alpha[i], want[i])
		}
	}
}

func TestCoefficientsAllExecuted(t *testing.T) {
	preds := [][]int{{}, {0}, {0, 1}, {1, 2}}
	status := []StaleStatus{Executed, Executed, Executed, Executed}
	alpha, err := CoefficientsInOrder(preds, status)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alpha {
		if math.Abs(a-1) > 1e-12 {
			t.Errorf("alpha[%d] = %g, want 1 when nothing is dropped", i, a)
		}
	}
}

func TestCoefficientsErrors(t *testing.T) {
	preds := [][]int{{}, {0}}
	if _, err := CoefficientsInOrder(preds, []StaleStatus{Executed}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Coefficients([]int{1, 0}, preds, []StaleStatus{Executed, Executed}); err == nil {
		t.Error("non-topological order should fail")
	}
	if _, err := Coefficients([]int{0, 0}, preds, []StaleStatus{Executed, Executed}); err == nil {
		t.Error("duplicate visit should fail")
	}
	if _, err := Coefficients([]int{0, 5}, preds, []StaleStatus{Executed, Executed}); err == nil {
		t.Error("out-of-range order index should fail")
	}
	bad := [][]int{{}, {7}}
	if _, err := CoefficientsInOrder(bad, []StaleStatus{Executed, Executed}); err == nil {
		t.Error("out-of-range predecessor should fail")
	}
}

// TestCoefficientsRangeProperty: α is always within [0, 1], zero exactly for
// dropped processes, and equal to 1 iff no transitive input is stale.
func TestCoefficientsRangeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		preds := make([][]int, n)
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.3 {
					preds[i] = append(preds[i], j)
				}
			}
		}
		status := make([]StaleStatus, n)
		anyDropped := false
		for i := range status {
			if rng.Float64() < 0.3 {
				status[i] = Dropped
				anyDropped = true
			}
		}
		alpha, err := CoefficientsInOrder(preds, status)
		if err != nil {
			t.Logf("unexpected error: %v", err)
			return false
		}
		// Compute "tainted" reachability from dropped processes.
		tainted := make([]bool, n)
		for i := 0; i < n; i++ {
			if status[i] == Dropped {
				tainted[i] = true
				continue
			}
			for _, j := range preds[i] {
				if tainted[j] {
					tainted[i] = true
				}
			}
		}
		for i, a := range alpha {
			if a < 0 || a > 1 {
				t.Logf("alpha[%d]=%g out of range", i, a)
				return false
			}
			if status[i] == Dropped && a != 0 {
				t.Logf("dropped process %d has alpha %g", i, a)
				return false
			}
			if status[i] == Executed {
				if tainted[i] && a >= 1 {
					t.Logf("tainted process %d has alpha %g", i, a)
					return false
				}
				if !tainted[i] && math.Abs(a-1) > 1e-12 {
					t.Logf("clean process %d has alpha %g != 1", i, a)
					return false
				}
			}
		}
		_ = anyDropped
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
