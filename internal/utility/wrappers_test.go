package utility

import (
	"testing"
)

func TestShifted(t *testing.T) {
	u := MustStep([]Time{100}, []float64{10})
	s := Shifted{F: u, By: 50}
	if s.Value(100) != 10 || s.Value(150) != 10 {
		t.Error("shifted plateau wrong")
	}
	if s.Value(151) != 0 {
		t.Error("shifted tail wrong")
	}
	if s.Horizon() != u.Horizon()+50 {
		t.Errorf("shifted horizon = %d", s.Horizon())
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	cases := map[string]func(){
		"MustStep":       func() { MustStep([]Time{1}, []float64{1, 2}) },
		"MustLinearDrop": func() { MustLinearDrop(1, 10, 5) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStepEmptyTimes(t *testing.T) {
	// Degenerate but legal: zero steps means an error (no breakpoints).
	if _, err := NewStep(nil, nil); err == nil {
		t.Error("empty NewStep should fail (no breakpoints)")
	}
}
