package utility

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Time is the discrete time base of the library, in milliseconds. The
// interval-partitioning step of the quasi-static scheduler (paper §5.1)
// explicitly assumes integer completion times, so an integer time base is
// part of the model, not merely an implementation convenience.
type Time int64

// Infinity is a time value later than any completion time that can occur in
// a valid schedule. It is used as the open upper bound of switching
// intervals.
const Infinity Time = math.MaxInt64 / 4

// Function is a non-increasing time/utility function U(t).
//
// Implementations must be monotonically non-increasing: for any t1 <= t2,
// Value(t1) >= Value(t2). Values are non-negative.
type Function interface {
	// Value returns U(t), the utility obtained if the process completes at
	// time t.
	Value(t Time) float64

	// Horizon returns the earliest time h such that Value(t) == Value(h)
	// for all t >= h, i.e. the point after which the function is flat
	// (usually at zero). Sweeps over completion times may stop at the
	// horizon.
	Horizon() Time
}

// Point is a breakpoint of a tabulated utility function.
type Point struct {
	T Time    // completion time
	V float64 // utility at T
}

// Interp selects how a Table interpolates between breakpoints.
type Interp int

const (
	// Step treats each breakpoint (T_i, V_i) as "worth V_i up to and
	// including T_i": U(t) = V_i for T_{i-1} < t <= T_i, and
	// U(t) = V_0 for t <= T_0. This matches the staircase-shaped
	// functions used in the paper's examples (Figs. 2, 4, 8).
	Step Interp = iota

	// Linear interpolates linearly between consecutive breakpoints.
	Linear
)

// Table is a piecewise utility function defined by breakpoints.
//
// Semantics: U(t) = V_0 for t <= T_0; U(t) = V_last for t >= T_last; in
// between, the value follows the configured interpolation mode. Breakpoints
// must be strictly increasing in time and non-increasing in value.
type Table struct {
	points []Point
	mode   Interp
}

var _ Function = (*Table)(nil)

// NewTable builds a tabulated utility function, validating monotonicity.
func NewTable(mode Interp, points ...Point) (*Table, error) {
	if len(points) == 0 {
		return nil, errors.New("utility: table needs at least one breakpoint")
	}
	for i := 1; i < len(points); i++ {
		if points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("utility: breakpoint times must be strictly increasing (t[%d]=%d, t[%d]=%d)",
				i-1, points[i-1].T, i, points[i].T)
		}
		if points[i].V > points[i-1].V {
			return nil, fmt.Errorf("utility: values must be non-increasing (v[%d]=%g, v[%d]=%g)",
				i-1, points[i-1].V, i, points[i].V)
		}
	}
	for i, p := range points {
		if p.V < 0 {
			return nil, fmt.Errorf("utility: values must be non-negative (v[%d]=%g)", i, p.V)
		}
	}
	cp := make([]Point, len(points))
	copy(cp, points)
	return &Table{points: cp, mode: mode}, nil
}

// MustTable is NewTable that panics on invalid input; intended for
// statically-known fixtures and tests.
func MustTable(mode Interp, points ...Point) *Table {
	t, err := NewTable(mode, points...)
	if err != nil {
		panic(err)
	}
	return t
}

// NewStep builds a staircase function: value vs[i] holds for
// ts[i-1] < t <= ts[i] (v0 before the first step time), and 0 after the last
// step time. Example: NewStep([]Time{90, 200}, []float64{40, 20}) is 40 up
// to (and including) 90 ms, 20 up to 200 ms, and 0 afterwards.
func NewStep(ts []Time, vs []float64) (*Table, error) {
	if len(ts) != len(vs) {
		return nil, fmt.Errorf("utility: NewStep needs matching slices (got %d times, %d values)", len(ts), len(vs))
	}
	pts := make([]Point, 0, len(ts)+1)
	for i := range ts {
		pts = append(pts, Point{T: ts[i], V: vs[i]})
	}
	if len(pts) > 0 {
		pts = append(pts, Point{T: ts[len(ts)-1] + 1, V: 0})
	}
	return NewTable(Step, pts...)
}

// MustStep is NewStep that panics on invalid input.
func MustStep(ts []Time, vs []float64) *Table {
	t, err := NewStep(ts, vs)
	if err != nil {
		panic(err)
	}
	return t
}

// NewLinearDrop builds a function worth v0 until tStart, decreasing linearly
// to zero at tEnd, and zero afterwards. This is the classic soft real-time
// "diminishing value after the soft deadline" shape.
func NewLinearDrop(v0 float64, tStart, tEnd Time) (*Table, error) {
	if tEnd <= tStart {
		return nil, fmt.Errorf("utility: NewLinearDrop needs tEnd > tStart (got %d <= %d)", tEnd, tStart)
	}
	return NewTable(Linear, Point{T: tStart, V: v0}, Point{T: tEnd, V: 0})
}

// MustLinearDrop is NewLinearDrop that panics on invalid input.
func MustLinearDrop(v0 float64, tStart, tEnd Time) *Table {
	t, err := NewLinearDrop(v0, tStart, tEnd)
	if err != nil {
		panic(err)
	}
	return t
}

// Value implements Function.
func (tb *Table) Value(t Time) float64 {
	pts := tb.points
	if t <= pts[0].T {
		return pts[0].V
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.V
	}
	// Find the segment [pts[i], pts[i+1]) containing t.
	i := sort.Search(len(pts), func(j int) bool { return pts[j].T >= t })
	// pts[i].T >= t > pts[i-1].T, with 0 < i < len(pts).
	if pts[i].T == t {
		return pts[i].V
	}
	switch tb.mode {
	case Linear:
		a, b := pts[i-1], pts[i]
		frac := float64(t-a.T) / float64(b.T-a.T)
		return a.V + frac*(b.V-a.V)
	default: // Step: value of the upcoming breakpoint's predecessor holds.
		return pts[i].V
	}
}

// Horizon implements Function.
func (tb *Table) Horizon() Time {
	return tb.points[len(tb.points)-1].T
}

// Points returns a copy of the table's breakpoints.
func (tb *Table) Points() []Point {
	cp := make([]Point, len(tb.points))
	copy(cp, tb.points)
	return cp
}

// Mode returns the interpolation mode.
func (tb *Table) Mode() Interp { return tb.mode }

// String renders the table compactly, e.g. "step{90:40 200:20 201:0}".
func (tb *Table) String() string {
	var sb strings.Builder
	if tb.mode == Linear {
		sb.WriteString("linear{")
	} else {
		sb.WriteString("step{")
	}
	for i, p := range tb.points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%g", p.T, p.V)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Zero is the utility function that is identically zero. It is the function
// implicitly attached to hard processes and to dropped soft processes.
type Zero struct{}

var _ Function = Zero{}

// Value implements Function.
func (Zero) Value(Time) float64 { return 0 }

// Horizon implements Function.
func (Zero) Horizon() Time { return 0 }

// Scaled wraps a Function, multiplying its value by a constant coefficient
// in [0, 1]. It implements the degraded utility U*(t) = α·U(t).
type Scaled struct {
	F     Function
	Alpha float64
}

var _ Function = Scaled{}

// Value implements Function.
func (s Scaled) Value(t Time) float64 { return s.Alpha * s.F.Value(t) }

// Horizon implements Function.
func (s Scaled) Horizon() Time { return s.F.Horizon() }

// Shifted wraps a Function, translating it along the time axis:
// Value(t) = F(t - By). It is used when a process graph is replicated over
// the hyper-period: the j-th activation of a soft process worth U(t) in its
// own period is worth U(t - j·T) on the hyper-period time line.
type Shifted struct {
	F  Function
	By Time
}

var _ Function = Shifted{}

// Value implements Function.
func (s Shifted) Value(t Time) float64 { return s.F.Value(t - s.By) }

// Horizon implements Function.
func (s Shifted) Horizon() Time { return s.F.Horizon() + s.By }
