package chaos

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// Config parametrises a chaos campaign. The zero value is invalid: pick a
// cycle count and at least one injection mode.
type Config struct {
	// Cycles is the number of operation cycles to execute.
	Cycles int
	// Seed makes the campaign reproducible: cycle i derives all random
	// choices from sim.ScenarioSeed(Seed, i).
	Seed int64
	// Workers spreads cycle blocks over goroutines through the same
	// sharded block driver Monte-Carlo evaluation uses (sim.RunBlocks).
	// 0 selects runtime.NumCPU(); 1 forces sequential execution. Reports
	// are bit-identical for any worker count.
	Workers int
	// Policy is the DegradePolicy under test; Clamp selects the
	// envelope's clamped mode (see runtime.EnvelopeConfig).
	Policy runtime.DegradePolicy
	Clamp  bool
	// BaseFaults is the number of in-model faults per cycle fed to the
	// regular scenario sampler (0 <= BaseFaults <= k).
	BaseFaults int
	// OverrunProb is the per-cycle probability of a WCET overrun
	// injection; the victim's duration becomes OverrunFactor times its
	// WCET (at least WCET+1). OverrunFactor must exceed 1 when
	// OverrunProb is positive.
	OverrunProb   float64
	OverrunFactor float64
	// StuckProb is the per-cycle probability of a stuck process: the
	// victim's execution consumes the whole period (an extreme overrun).
	StuckProb float64
	// RegressionProb is the per-cycle probability of a time regression:
	// the victim reports a negative duration.
	RegressionProb float64
	// BurstProb is the per-cycle probability of a fault burst aiming
	// ExtraFaults faults beyond the in-model base; Correlated aims the
	// whole burst at one victim. ExtraFaults must be positive when
	// BurstProb is.
	BurstProb   float64
	ExtraFaults int
	Correlated  bool
	// SoftOnly restricts every victim pool — the in-model base faults
	// included — to soft processes: the regime in which PolicyShedSoft
	// promises hard safety. Without it, faults aimed at hard processes
	// can make the (k+1)-th consumed fault land on hard work, which no
	// amount of soft shedding can absorb.
	SoftOnly bool
	// Sink receives obs.ChaosCycles / obs.ChaosInjections plus whatever
	// the dispatcher emits; nil or obs.NopSink disables instrumentation.
	Sink obs.Sink
}

// ConfigError reports a Config field that fails validation, carrying the
// field name, the rejected value and the violated constraint so CLIs, the
// library facade and the ftserved wire decoder can react to the specific
// field instead of parsing a message — the same discipline as
// sim.ConfigError.
type ConfigError struct {
	// Field is the Config field name ("Cycles", "OverrunFactor", ...).
	Field string
	// Value is the rejected value.
	Value float64
	// Constraint is the violated bound in human-readable form, e.g.
	// "must be positive" or "outside [0,1]".
	Constraint string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("chaos: Config.%s %v %s", e.Field, e.Value, e.Constraint)
}

// Validate normalises the configuration and rejects impossible values with
// a *ConfigError. The BaseFaults upper bound depends on the application
// and is checked by New itself. Every campaign entry point applies
// Validate — library, CLI and ftserved request decoding reject bad input
// identically.
func (c Config) Validate() (Config, error) {
	if c.Cycles <= 0 {
		return c, &ConfigError{Field: "Cycles", Value: float64(c.Cycles), Constraint: "must be positive"}
	}
	if c.Workers < 0 {
		return c, &ConfigError{Field: "Workers", Value: float64(c.Workers), Constraint: "must be non-negative"}
	}
	if c.Workers == 0 {
		c.Workers = goruntime.NumCPU()
	}
	if c.BaseFaults < 0 {
		return c, &ConfigError{Field: "BaseFaults", Value: float64(c.BaseFaults), Constraint: "must be non-negative"}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"OverrunProb", c.OverrunProb},
		{"StuckProb", c.StuckProb},
		{"RegressionProb", c.RegressionProb},
		{"BurstProb", c.BurstProb},
	} {
		if p.v < 0 || p.v > 1 {
			return c, &ConfigError{Field: p.name, Value: p.v, Constraint: "outside [0,1]"}
		}
	}
	if c.OverrunProb > 0 && c.OverrunFactor <= 1 {
		return c, &ConfigError{Field: "OverrunFactor", Value: c.OverrunFactor, Constraint: "must exceed 1 when OverrunProb is positive"}
	}
	if c.BurstProb > 0 && c.ExtraFaults <= 0 {
		return c, &ConfigError{Field: "ExtraFaults", Value: float64(c.ExtraFaults), Constraint: "must be positive when BurstProb is positive"}
	}
	return c, nil
}

// CycleRecord is the complete, deterministic record of one campaign
// cycle — what was injected, what the envelope reported, and how the
// cycle scored against the containment contract.
type CycleRecord struct {
	// Cycle is the cycle index (also the sim.ScenarioSeed index).
	Cycle int `json:"cycle"`
	// Injected reports whether any out-of-model perturbation was applied;
	// TouchedHard whether a perturbation was aimed at — or an
	// out-of-model violation event materialised on — a hard process.
	Injected    bool `json:"injected,omitempty"`
	TouchedHard bool `json:"touched_hard,omitempty"`
	// Violations is the cycle's envelope event record (a copy).
	Violations []runtime.ViolationEvent `json:"violations,omitempty"`
	// HardMiss: at least one hard process missed its deadline or never
	// ran. Degraded, ShedSlack and OverrunTotal mirror the Result fields.
	HardMiss     bool       `json:"hard_miss,omitempty"`
	Degraded     bool       `json:"degraded,omitempty"`
	ShedSlack    model.Time `json:"shed_slack,omitempty"`
	OverrunTotal model.Time `json:"overrun_total,omitempty"`
	// Breach: under PolicyShedSoft, a hard miss in a cycle whose
	// injections and materialised out-of-model events touched only soft
	// processes although the overrun total was covered (clamped, or
	// within the shed slack) — a containment-contract violation.
	Breach bool `json:"breach,omitempty"`
	// InModelMiss: a hard miss with no injection at all — an in-model
	// scheduler bug, certifiable with internal/certify.
	InModelMiss bool `json:"in_model_miss,omitempty"`
	// DetectionGap: a duration perturbation reached an executing process
	// but no matching violation event was reported.
	DetectionGap bool `json:"detection_gap,omitempty"`
	// Strict is the typed error PolicyStrict returned, if any.
	Strict *runtime.EnvelopeError `json:"strict,omitempty"`
	// Panic carries the recovered panic message of the cycle ("" if the
	// dispatch path behaved).
	Panic string `json:"panic,omitempty"`
}

// Report aggregates a campaign. All counters are folded from Records in
// cycle order, so reports are bit-identical across worker counts.
type Report struct {
	// Cycles echoes the cycle count; Injected counts perturbed cycles.
	Cycles   int `json:"cycles"`
	Injected int `json:"injected"`
	// Event totals across all cycles, by kind.
	Overruns        int `json:"overruns"`
	ExtraFaults     int `json:"extra_faults"`
	TimeRegressions int `json:"time_regressions"`
	BudgetExhausted int `json:"budget_exhausted"`
	// Degraded counts cycles PolicyShedSoft shed; StrictErrors counts
	// typed *runtime.EnvelopeError returns under PolicyStrict.
	Degraded     int `json:"degraded"`
	StrictErrors int `json:"strict_errors"`
	// HardMisses counts cycles with a hard violation; InModelMisses,
	// Breaches, DetectionGaps and Panics are the contract scores — all
	// four must be zero for a healthy containment layer (hard misses are
	// only legitimate when the injection itself touched hard processes or
	// overran beyond the recovered slack).
	HardMisses    int `json:"hard_misses"`
	InModelMisses int `json:"in_model_misses"`
	Breaches      int `json:"breaches"`
	DetectionGaps int `json:"detection_gaps"`
	Panics        int `json:"panics"`
	// Records holds every cycle, in order.
	Records []CycleRecord `json:"records"`
}

// injection is the per-cycle perturbation summary the contract checks
// need; durVictims is reused worker-local scratch.
type injection struct {
	any         bool
	touchedHard bool
	durVictims  []model.ProcessID
}

// Campaign is a compiled chaos campaign: the dispatcher is built once
// (with the envelope under test) and reused across Run calls. A Campaign
// is safe for concurrent use.
type Campaign struct {
	cfg  Config
	tree *core.Tree
	app  *model.Application
	d    *runtime.Dispatcher
	sink obs.Sink
	// execPool: processes of the root schedule; injPool: the victim pool
	// for both the base sampler and the injections (the soft subset of
	// execPool when Config.SoftOnly).
	execPool []model.ProcessID
	injPool  []model.ProcessID
}

// New validates cfg and compiles tree with the envelope under test.
func New(tree *core.Tree, cfg Config) (*Campaign, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	app := tree.App
	if cfg.BaseFaults > app.K() {
		return nil, fmt.Errorf("chaos: BaseFaults %d outside [0, k=%d]", cfg.BaseFaults, app.K())
	}
	var sink obs.Sink
	if obs.Live(cfg.Sink) {
		sink = cfg.Sink
	}
	d, err := runtime.NewDispatcher(tree,
		runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: cfg.Policy, Clamp: cfg.Clamp}),
		runtime.WithSink(sink))
	if err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg, tree: tree, app: app, d: d, sink: sink}
	for _, e := range tree.Root().Schedule.Entries {
		c.execPool = append(c.execPool, e.Proc)
		if !cfg.SoftOnly || app.Proc(e.Proc).Kind == model.Soft {
			c.injPool = append(c.injPool, e.Proc)
		}
	}
	if len(c.injPool) == 0 {
		return nil, fmt.Errorf("chaos: empty injection victim pool (SoftOnly=%v, %d root entries)",
			cfg.SoftOnly, len(c.execPool))
	}
	return c, nil
}

// Run executes the whole campaign; see RunContext.
func (c *Campaign) Run() (*Report, error) {
	return c.RunContext(context.Background())
}

// RunContext executes Config.Cycles seeded cycles through the compiled
// dispatcher, spread over Config.Workers goroutines by the shared batch
// driver (sim.RunBlocks), and folds the records into a Report. Each cycle
// reseeds a per-cycle sim.RNG from sim.ScenarioSeed and records into its
// own slot, so the report is bit-identical for a given seed across worker
// counts and reruns. The error is a validation or cancellation error —
// never a containment finding: panics, strict errors, misses and breaches
// are scored on the Report.
func (c *Campaign) RunContext(ctx context.Context) (*Report, error) {
	cfg := c.cfg
	records := make([]CycleRecord, cfg.Cycles)
	err := sim.RunBlocks(ctx, cfg.Cycles, cfg.Workers, func(int) func(block, lo, hi int) error {
		var rng sim.RNG
		var sc sim.Scenario
		var res runtime.Result
		var inj injection
		return func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				rng.Reseed(sim.ScenarioSeed(cfg.Seed, i))
				if err := sim.SampleRNGInto(&sc, c.app, &rng, cfg.BaseFaults, c.injPool); err != nil {
					return err
				}
				c.perturb(&sc, &rng, &inj)
				c.cycle(i, &records[i], &res, sc, &inj)
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Cycles: cfg.Cycles, Records: records}
	for i := range records {
		rec := &records[i]
		if rec.Injected {
			rep.Injected++
		}
		for _, ev := range rec.Violations {
			switch ev.Kind {
			case runtime.WCETOverrun:
				rep.Overruns++
			case runtime.ExtraFault:
				rep.ExtraFaults++
			case runtime.TimeRegression:
				rep.TimeRegressions++
			case runtime.BudgetExhausted:
				rep.BudgetExhausted++
			}
		}
		if rec.Degraded {
			rep.Degraded++
		}
		if rec.Strict != nil {
			rep.StrictErrors++
		}
		if rec.HardMiss {
			rep.HardMisses++
		}
		if rec.InModelMiss {
			rep.InModelMisses++
		}
		if rec.Breach {
			rep.Breaches++
		}
		if rec.DetectionGap {
			rep.DetectionGaps++
		}
		if rec.Panic != "" {
			rep.Panics++
		}
	}
	if c.sink != nil {
		c.sink.Add(obs.ChaosCycles, int64(rep.Cycles))
		c.sink.Add(obs.ChaosInjections, int64(rep.Injected))
	}
	return rep, nil
}

// perturb applies the configured out-of-model injections to an in-model
// base scenario. The draw sequence is fixed (overrun, stuck, regression,
// burst), so a cycle's perturbation depends only on its seed.
func (c *Campaign) perturb(sc *sim.Scenario, rng *sim.RNG, inj *injection) {
	inj.any = false
	inj.touchedHard = false
	inj.durVictims = inj.durVictims[:0]
	hit := func(p model.ProcessID) {
		inj.any = true
		if c.app.Proc(p).Kind == model.Hard {
			inj.touchedHard = true
		}
	}
	if c.cfg.OverrunProb > 0 && rng.Float64() < c.cfg.OverrunProb {
		p := c.injPool[rng.Intn(len(c.injPool))]
		wcet := c.app.Proc(p).WCET
		dur := model.Time(float64(wcet) * c.cfg.OverrunFactor)
		if dur <= wcet {
			dur = wcet + 1
		}
		sc.Durations[p] = dur
		inj.durVictims = append(inj.durVictims, p)
		hit(p)
	}
	if c.cfg.StuckProb > 0 && rng.Float64() < c.cfg.StuckProb {
		p := c.injPool[rng.Intn(len(c.injPool))]
		sc.Durations[p] = c.app.Period() + 1
		inj.durVictims = append(inj.durVictims, p)
		hit(p)
	}
	if c.cfg.RegressionProb > 0 && rng.Float64() < c.cfg.RegressionProb {
		p := c.injPool[rng.Intn(len(c.injPool))]
		sc.Durations[p] = -model.Time(1 + rng.Intn(int(c.app.Proc(p).WCET)+1))
		inj.durVictims = append(inj.durVictims, p)
		hit(p)
	}
	if c.cfg.BurstProb > 0 && rng.Float64() < c.cfg.BurstProb {
		// Aim the burst past the in-model budget: k - BaseFaults faults
		// fill the remaining bound, ExtraFaults exceed it.
		add := c.app.K() - c.cfg.BaseFaults + c.cfg.ExtraFaults
		victim := c.injPool[rng.Intn(len(c.injPool))]
		for f := 0; f < add; f++ {
			if !c.cfg.Correlated {
				victim = c.injPool[rng.Intn(len(c.injPool))]
			}
			sc.FaultsAt[victim]++
			hit(victim)
		}
		sc.NFaults += add
	}
}

// cycle executes one perturbed scenario and scores it, converting any
// panic in the dispatch path into a record instead of crashing the
// campaign.
func (c *Campaign) cycle(i int, rec *CycleRecord, res *runtime.Result, sc sim.Scenario, inj *injection) {
	rec.Cycle = i
	rec.Injected = inj.any
	rec.TouchedHard = inj.touchedHard

	err, panicked := c.dispatch(res, sc)
	if panicked != "" {
		rec.Panic = panicked
		return
	}
	if err != nil {
		var envErr *runtime.EnvelopeError
		if !errors.As(err, &envErr) {
			// Impossible for well-sized scenarios; surface loudly rather
			// than mis-scoring the cycle.
			rec.Panic = "unexpected dispatch error: " + err.Error()
			return
		}
		rec.Strict = envErr
	}
	rec.HardMiss = len(res.HardViolations) > 0
	rec.Degraded = res.Degraded
	rec.ShedSlack = res.ShedSlack
	rec.OverrunTotal = res.OverrunTotal
	if len(res.Violations) > 0 {
		rec.Violations = append([]runtime.ViolationEvent(nil), res.Violations...)
	}
	// Aimed injections and materialised excursions can land on different
	// processes: a fault burst aimed at soft work may vanish with its
	// abandoned victims and promote an in-model fault on a hard process
	// into the (k+1)-th consumed one. TouchedHard therefore also covers
	// where the out-of-model events actually surfaced.
	for _, ev := range rec.Violations {
		if ev.Kind != runtime.BudgetExhausted && c.app.Proc(ev.Proc).Kind == model.Hard {
			rec.TouchedHard = true
		}
	}

	// Detection completeness: every duration perturbation that reached an
	// executing process must surface as a violation event. Victims a tree
	// switch (or a shed, or a strict abort) kept from running are exempt —
	// a perturbation that never executes is invisible by design.
	for _, p := range inj.durVictims {
		if res.Outcomes[p] == runtime.NotScheduled {
			continue
		}
		found := false
		for _, ev := range rec.Violations {
			if ev.Proc == p && (ev.Kind == runtime.WCETOverrun || ev.Kind == runtime.TimeRegression) {
				found = true
				break
			}
		}
		if !found {
			rec.DetectionGap = true
		}
	}

	if rec.HardMiss {
		if !inj.any {
			rec.InModelMiss = true
		} else if c.cfg.Policy == runtime.PolicyShedSoft && !rec.TouchedHard {
			// The excursions touched only soft processes. The miss is a
			// contract breach unless the materialised overrun total
			// exceeded the slack shedding recovered. Under Clamp the
			// total is zero by construction — the executed timeline
			// stays in-model — so no overrun ever excuses a miss.
			if res.OverrunTotal <= res.ShedSlack {
				rec.Breach = true
			}
		}
	}
}

// Scenario re-derives the exact perturbed scenario of cycle i — the
// deterministic counterpart of what RunContext executed — so offending
// cycles can be exported as counterexample records and replayed.
func (c *Campaign) Scenario(i int) (sim.Scenario, error) {
	var sc sim.Scenario
	if i < 0 || i >= c.cfg.Cycles {
		return sc, fmt.Errorf("chaos: cycle %d outside [0, %d)", i, c.cfg.Cycles)
	}
	rng := sim.NewRNG(sim.ScenarioSeed(c.cfg.Seed, i))
	if err := sim.SampleRNGInto(&sc, c.app, &rng, c.cfg.BaseFaults, c.injPool); err != nil {
		return sc, err
	}
	var inj injection
	c.perturb(&sc, &rng, &inj)
	return sc, nil
}

// dispatch runs one scenario, converting a panic into a message.
func (c *Campaign) dispatch(res *runtime.Result, sc sim.Scenario) (err error, panicked string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = fmt.Sprint(r)
		}
	}()
	err = c.d.RunInto(res, sc)
	return
}

// Run is the one-shot form: compile a campaign for tree and execute it.
func Run(tree *core.Tree, cfg Config) (*Report, error) {
	c, err := New(tree, cfg)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// RunContext is Run honouring cancellation.
func RunContext(ctx context.Context, tree *core.Tree, cfg Config) (*Report, error) {
	c, err := New(tree, cfg)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}
