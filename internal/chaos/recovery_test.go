package chaos_test

import (
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/chaos"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// TestCampaignRecoveryDeterministic: chaos campaigns — overruns, bursts and
// all — must produce bit-identical reports across worker counts under the
// restart and checkpoint recovery models, and uphold the shed-soft
// containment contract. The overrun × partial-rollback interaction in the
// checkpoint fault path is exactly the kind of state the merge must not
// reorder.
func TestCampaignRecoveryDeterministic(t *testing.T) {
	base := apps.Fig8()
	fixtures := []struct {
		name string
		m    model.RecoveryModel
	}{
		// Latency µ keeps the restart worst case identical to canonical
		// re-execution, so Fig. 8 stays schedulable.
		{"restart", model.RestartModel(base.Mu())},
		{"checkpoint", model.CheckpointModel(maxWCET(base)/2+1, base.Mu()/2, base.Mu())},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			app, err := base.WithRecovery(fx.m)
			if err != nil {
				t.Fatal(err)
			}
			tree := synthesize(t, app, 16)
			cfg := fullChaos(runtime.PolicyShedSoft, 400)

			var reports []*chaos.Report
			for _, workers := range []int{1, 4} {
				cfg.Workers = workers
				rep, err := chaos.Run(tree, cfg)
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, rep)
			}
			if !reflect.DeepEqual(reports[0], reports[1]) {
				t.Fatalf("reports differ across worker counts under %s:\n  %+v\n  %+v",
					fx.m, summarize(reports[0]), summarize(reports[1]))
			}
			rep := reports[0]
			if rep.Injected == 0 {
				t.Fatalf("vacuous campaign under %s: %+v", fx.m, summarize(rep))
			}
			if rep.Panics != 0 || rep.Breaches != 0 || rep.InModelMisses != 0 || rep.DetectionGaps != 0 {
				t.Errorf("containment contract violated under %s: %+v", fx.m, summarize(rep))
			}
		})
	}
}

func maxWCET(app *model.Application) model.Time {
	var max model.Time
	for _, id := range app.Topo() {
		if w := app.Proc(id).WCET; w > max {
			max = w
		}
	}
	return max
}
