// Package chaos adversarially proves the runtime's out-of-model
// containment layer (runtime.WithEnvelope) by injecting assumption
// violations the paper's fault model excludes: WCET overruns of
// configurable magnitude and probability, fault bursts exceeding the
// bound k (optionally correlated on one victim), stuck processes whose
// execution consumes the whole period, and mid-cycle time regressions.
//
// A Campaign executes N seeded cycles through the real compiled
// dispatcher under a chosen DegradePolicy and scores the containment
// contract on every cycle:
//
//   - no panic, ever — a panic anywhere in the dispatch path is converted
//     to a per-cycle record and counted on Report.Panics;
//   - every injected timing excursion that reached an executing process
//     is reported on Result.Violations — gaps are counted on
//     Report.DetectionGaps;
//   - under PolicyShedSoft, a hard-deadline miss in a cycle whose
//     injections and materialised out-of-model events touched only soft
//     processes is a contract breach (Report.Breaches) whenever the
//     materialised overrun total does not exceed the slack recovered by
//     shedding — in particular, when every fault is aimed at soft
//     processes, >k bursts must never miss a hard deadline;
//   - a miss in a cycle with no injection at all is an in-model scheduler
//     bug (Report.InModelMisses), cross-checkable with internal/certify.
//
// Determinism is part of the contract: cycle i derives every random
// choice from sim.ScenarioSeed(Seed, i), records are collected by cycle
// index and folded sequentially, so a Report — including the exact
// violation-event records — is bit-identical for a given seed across
// worker counts and reruns.
package chaos
