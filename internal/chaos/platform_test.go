package chaos_test

import (
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
)

// TestCampaignMappedDeterministic: chaos campaigns on a mapped
// heterogeneous tree keep the determinism contract — the same seed yields
// a bit-identical Report for any worker count.
func TestCampaignMappedDeterministic(t *testing.T) {
	base := apps.Fig8()
	plat := model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		t.Fatal(err)
	}
	mtree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fullChaos(runtime.PolicyShedSoft, 200)

	var reports []*chaos.Report
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		c, err := chaos.New(mtree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("mapped campaign reports differ across worker counts: %+v vs %+v",
			summarize(reports[0]), summarize(reports[1]))
	}
	if reports[0].Injected == 0 {
		t.Fatalf("vacuous mapped campaign: %+v", summarize(reports[0]))
	}
}
