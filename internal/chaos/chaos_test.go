package chaos_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
)

func synthesize(t testing.TB, app *model.Application, m int) *core.Tree {
	t.Helper()
	tree, err := core.FTQS(app, core.FTQSOptions{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// fullChaos is a configuration exercising every injection kind at once.
func fullChaos(policy runtime.DegradePolicy, cycles int) chaos.Config {
	return chaos.Config{
		Cycles:         cycles,
		Seed:           42,
		Policy:         policy,
		BaseFaults:     1,
		OverrunProb:    0.3,
		OverrunFactor:  2.0,
		StuckProb:      0.05,
		RegressionProb: 0.05,
		BurstProb:      0.3,
		ExtraFaults:    2,
		SoftOnly:       true,
	}
}

// TestCampaignDeterministic: the same seed yields a bit-identical Report —
// including the exact violation-event records — for any worker count and
// across campaign re-runs on the same compiled Campaign.
func TestCampaignDeterministic(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	cfg := fullChaos(runtime.PolicyShedSoft, 300)

	var reports []*chaos.Report
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		c, err := chaos.New(tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		rerun, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, rerun) {
			t.Fatalf("workers=%d: re-run of the same campaign diverged", workers)
		}
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("reports differ across worker counts: %+v vs %+v",
				summarize(reports[0]), summarize(reports[i]))
		}
	}
	if reports[0].Injected == 0 || reports[0].Overruns == 0 || reports[0].ExtraFaults == 0 {
		t.Fatalf("vacuous campaign: %+v", summarize(reports[0]))
	}
}

func summarize(r *chaos.Report) chaos.Report {
	s := *r
	s.Records = nil
	return s
}

// TestShedSoftContractFig8 is the acceptance campaign: >=1000 seeded cycles
// on the Fig. 8 application with WCET overruns and >k fault bursts aimed at
// soft processes only, under PolicyShedSoft. The containment contract
// demands zero hard-deadline misses attributable to soft work, zero
// panics, zero in-model misses and zero detection gaps — non-vacuously.
func TestShedSoftContractFig8(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	for _, clamp := range []bool{false, true} {
		cfg := fullChaos(runtime.PolicyShedSoft, 1500)
		cfg.Clamp = clamp
		rep, err := chaos.Run(tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Panics != 0 || rep.Breaches != 0 || rep.InModelMisses != 0 || rep.DetectionGaps != 0 {
			t.Errorf("clamp=%v: contract violated: %+v", clamp, summarize(rep))
		}
		if rep.Overruns == 0 || rep.ExtraFaults == 0 || rep.Degraded == 0 {
			t.Errorf("clamp=%v: vacuous campaign: %+v", clamp, summarize(rep))
		}
		// Clamped mode keeps every duration in-model, so no overrun can
		// excuse a hard miss in a soft-only campaign: misses imply
		// breaches, and breaches are zero, so misses must be zero.
		if clamp && rep.HardMisses != 0 {
			t.Errorf("clamp=true: %d hard misses escaped containment", rep.HardMisses)
		}
	}
}

// TestPureBurstCertifyCrossCheck is the property cross-check: for trees
// that certify clean against the full fault bound, a campaign injecting
// only >k fault bursts at soft processes (zero overruns) must produce zero
// hard misses of any kind under PolicyShedSoft.
func TestPureBurstCertifyCrossCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		app  *model.Application
		m    int
	}{
		{"fig1", apps.Fig1(), 8},
		{"fig8", apps.Fig8(), 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree := synthesize(t, tc.app, tc.m)
			if _, err := certify.Certify(tree, certify.Config{}); err != nil {
				t.Fatalf("tree does not certify clean, cross-check is void: %v", err)
			}
			rep, err := chaos.Run(tree, chaos.Config{
				Cycles:      1000,
				Seed:        7,
				Policy:      runtime.PolicyShedSoft,
				BaseFaults:  tc.app.K(),
				BurstProb:   0.7,
				ExtraFaults: 3,
				SoftOnly:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.HardMisses != 0 {
				t.Errorf("%d hard misses under pure soft-aimed bursts", rep.HardMisses)
			}
			if rep.Panics != 0 || rep.InModelMisses != 0 {
				t.Errorf("contract violated: %+v", summarize(rep))
			}
			if rep.ExtraFaults == 0 || rep.Degraded == 0 {
				t.Errorf("vacuous campaign: %+v", summarize(rep))
			}
		})
	}
}

// TestStrictCampaignTypedErrors: under PolicyStrict every perturbed cycle
// whose excursion materialised ends in a typed *runtime.EnvelopeError whose
// events match the cycle's record and survive a JSON round-trip.
func TestStrictCampaignTypedErrors(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	rep, err := chaos.Run(tree, fullChaos(runtime.PolicyStrict, 400))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StrictErrors == 0 {
		t.Fatalf("vacuous: no strict errors in %d injected cycles", rep.Injected)
	}
	if rep.Panics != 0 {
		t.Fatalf("%d panics under PolicyStrict", rep.Panics)
	}
	checked := 0
	for i := range rep.Records {
		rec := &rep.Records[i]
		if rec.Strict == nil {
			continue
		}
		outOfModel := 0
		for _, ev := range rec.Violations {
			if ev.Kind != runtime.BudgetExhausted {
				outOfModel++
			}
		}
		if outOfModel == 0 {
			t.Fatalf("cycle %d: strict error with no out-of-model event", rec.Cycle)
		}
		data, err := json.Marshal(rec.Strict)
		if err != nil {
			t.Fatal(err)
		}
		var back runtime.EnvelopeError
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&back, rec.Strict) {
			t.Fatalf("cycle %d: EnvelopeError did not survive JSON round-trip", rec.Cycle)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no strict record checked")
	}
}

// TestBestEffortDetectionComplete: PolicyBestEffort never intervenes, so
// every duration excursion that executes must still surface as an event.
func TestBestEffortDetectionComplete(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	cfg := fullChaos(runtime.PolicyBestEffort, 600)
	cfg.SoftOnly = false // aim at hard processes too
	rep, err := chaos.Run(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectionGaps != 0 || rep.Panics != 0 {
		t.Fatalf("contract violated: %+v", summarize(rep))
	}
	if rep.Overruns == 0 || rep.TimeRegressions == 0 {
		t.Fatalf("vacuous campaign: %+v", summarize(rep))
	}
}

// TestCampaignSinkCounters: the campaign flushes its cycle and injection
// counts to the sink, on top of whatever the dispatcher emitted.
func TestCampaignSinkCounters(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	sink := obs.NewMetrics()
	cfg := fullChaos(runtime.PolicyShedSoft, 200)
	cfg.Sink = sink
	rep, err := chaos.Run(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Counter(obs.ChaosCycles); got != int64(rep.Cycles) {
		t.Errorf("ChaosCycles counter = %d, report says %d", got, rep.Cycles)
	}
	if got := sink.Counter(obs.ChaosInjections); got != int64(rep.Injected) {
		t.Errorf("ChaosInjections counter = %d, report says %d", got, rep.Injected)
	}
	if sink.Counter(obs.EnvelopeSheds) != int64(rep.Degraded) {
		t.Errorf("EnvelopeSheds counter = %d, report says %d",
			sink.Counter(obs.EnvelopeSheds), rep.Degraded)
	}
}

// TestCampaignCancellation: a cancelled context unwinds the campaign and
// surfaces the context error.
func TestCampaignCancellation(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := chaos.RunContext(ctx, tree, fullChaos(runtime.PolicyShedSoft, 100000)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScenarioReplayFidelity: Campaign.Scenario(i) re-derives the exact
// perturbed scenario cycle i executed — replaying it through an
// identically-configured standalone dispatcher reproduces the record's
// violation events, degradation flag and outcome bit-for-bit. This is the
// guarantee the ftsim -ce-out export path rests on.
func TestScenarioReplayFidelity(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	cfg := fullChaos(runtime.PolicyShedSoft, 200)
	c, err := chaos.New(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	d, err := runtime.NewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{
		Policy: cfg.Policy, Clamp: cfg.Clamp,
	}))
	if err != nil {
		t.Fatal(err)
	}
	replayed, withEvents := 0, 0
	for _, rec := range rep.Records {
		sc, err := c.Scenario(rec.Cycle)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(sc)
		if err != nil {
			t.Fatalf("cycle %d: replay error %v", rec.Cycle, err)
		}
		if !reflect.DeepEqual(res.Violations, rec.Violations) {
			t.Fatalf("cycle %d: replay violations %+v, record has %+v",
				rec.Cycle, res.Violations, rec.Violations)
		}
		if res.Degraded != rec.Degraded {
			t.Fatalf("cycle %d: replay degraded=%v, record says %v",
				rec.Cycle, res.Degraded, rec.Degraded)
		}
		if (len(res.HardViolations) > 0) != rec.HardMiss {
			t.Fatalf("cycle %d: replay hard violations %v, record HardMiss=%v",
				rec.Cycle, res.HardViolations, rec.HardMiss)
		}
		replayed++
		if len(rec.Violations) > 0 {
			withEvents++
		}
	}
	if replayed == 0 || withEvents == 0 {
		t.Fatalf("vacuous replay: %d cycles, %d with events", replayed, withEvents)
	}
	if _, err := c.Scenario(-1); err == nil {
		t.Fatal("Scenario(-1) accepted")
	}
	if _, err := c.Scenario(cfg.Cycles); err == nil {
		t.Fatal("Scenario(Cycles) accepted")
	}
}

// TestConfigValidation rejects impossible campaign parameters.
func TestConfigValidation(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	base := fullChaos(runtime.PolicyShedSoft, 100)
	for name, mutate := range map[string]func(*chaos.Config){
		"zero cycles":          func(c *chaos.Config) { c.Cycles = 0 },
		"negative workers":     func(c *chaos.Config) { c.Workers = -1 },
		"negative base faults": func(c *chaos.Config) { c.BaseFaults = -1 },
		"base faults above k":  func(c *chaos.Config) { c.BaseFaults = tree.App.K() + 1 },
		"overrun prob above 1": func(c *chaos.Config) { c.OverrunProb = 1.5 },
		"overrun factor <= 1":  func(c *chaos.Config) { c.OverrunFactor = 1.0 },
		"burst without faults": func(c *chaos.Config) { c.ExtraFaults = 0 },
		"unknown policy":       func(c *chaos.Config) { c.Policy = runtime.DegradePolicy(7) },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := chaos.New(tree, cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

// TestChaosSmoke is the CI -race entry point: a short campaign under every
// policy, asserting only the universal parts of the contract (no panics,
// no in-model misses, no detection gaps).
func TestChaosSmoke(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	for _, policy := range []runtime.DegradePolicy{
		runtime.PolicyStrict, runtime.PolicyShedSoft, runtime.PolicyBestEffort,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := fullChaos(policy, 150)
			cfg.Workers = 8
			rep, err := chaos.Run(tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Panics != 0 || rep.InModelMisses != 0 || rep.DetectionGaps != 0 {
				t.Fatalf("contract violated: %+v", summarize(rep))
			}
			if rep.Injected == 0 {
				t.Fatal("vacuous smoke campaign")
			}
		})
	}
}
