package baseline

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

func TestNonFaultTolerantFig1(t *testing.T) {
	app := apps.Fig1()
	s, err := NonFaultTolerant(app)
	if err != nil {
		t.Fatal(err)
	}
	// Without faults all three processes fit comfortably and the value-
	// maximal order is P1, P3, P2 (utility 60).
	if got := schedule.ExpectedUtility(app, s); got != 60 {
		t.Errorf("utility = %g, want 60", got)
	}
	for _, e := range s.Entries {
		if e.Recoveries != 0 {
			t.Error("non-fault-tolerant schedule must carry no recoveries")
		}
	}
	if len(s.Entries) != 3 {
		t.Errorf("all processes should fit, got %s", s.Format(app))
	}
}

func TestFTSFFig1(t *testing.T) {
	app := apps.Fig1()
	s, err := FTSF(app)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(app, s); err != nil {
		t.Fatal(err)
	}
	if err := schedule.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
		t.Fatalf("FTSF schedule not fault-tolerant: %v", err)
	}
	// Hard P1 gets k recoveries, soft ones none.
	for _, e := range s.Entries {
		want := 0
		if app.Proc(e.Proc).Kind == model.Hard {
			want = app.K()
		}
		if e.Recoveries != want {
			t.Errorf("%s recoveries = %d, want %d", app.Proc(e.Proc).Name, e.Recoveries, want)
		}
	}
	// For Fig. 1 everything still fits: 220 + 80 = 300 <= 300.
	if len(s.Entries) != 3 {
		t.Errorf("no dropping needed, got %s", s.Format(app))
	}
}

// TestFTSFDropsLowestUtility: when the recovery slack of the hard processes
// no longer fits, the soft process with the smallest utility contribution
// goes first.
func TestFTSFDropsLowestUtility(t *testing.T) {
	a := model.NewApplication("drop", 260, 1, 10)
	h := a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	cheap := a.AddProcess(model.Process{Name: "Cheap", Kind: model.Soft, BCET: 30, AET: 50, WCET: 70,
		Utility: utility.MustStep([]model.Time{250}, []float64{5})})
	rich := a.AddProcess(model.Process{Name: "Rich", Kind: model.Soft, BCET: 40, AET: 60, WCET: 80,
		Utility: utility.MustStep([]model.Time{250}, []float64{100})})
	a.MustAddEdge(h, cheap)
	a.MustAddEdge(h, rich)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// All three: 220 + 80 = 300 > 260; after dropping Cheap:
	// 150 + 80 = 230 <= 260.
	s, err := FTSF(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(cheap) {
		t.Errorf("Cheap should be dropped: %s", s.Format(a))
	}
	if !s.Contains(rich) {
		t.Errorf("Rich should survive: %s", s.Format(a))
	}
	if err := schedule.CheckSchedulable(a, s.Entries, 0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestFTSFNeverBeatsFTSSOnPaperApps: by construction FTSS optimises
// dropping and recovery placement jointly; FTSF patches after the fact. On
// the paper fixtures FTSS must be at least as good in expected no-fault
// utility.
func TestFTSFNeverBeatsFTSSOnPaperApps(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig1(), apps.Fig8(), apps.Fig1ReducedPeriod()} {
		fs, err := core.FTSS(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		bf, err := FTSF(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		uf := schedule.ExpectedUtility(app, fs)
		ub := schedule.ExpectedUtility(app, bf)
		if ub > uf {
			t.Errorf("%s: FTSF %g beats FTSS %g", app.Name(), ub, uf)
		}
	}
}

// TestFTSFUnschedulable: when even dropping every soft process cannot save
// the hard deadlines, FTSF reports failure.
func TestFTSFUnschedulable(t *testing.T) {
	a := model.NewApplication("un", 1000, 2, 10)
	a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FTSF(a); err == nil {
		t.Fatal("expected unschedulable")
	}
}

// TestFTSFKeepsAllHard: hard processes are never dropped by the patching
// loop.
func TestFTSFKeepsAllHard(t *testing.T) {
	app := apps.Fig8()
	s, err := FTSF(app)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range app.HardIDs() {
		if !s.Contains(h) {
			t.Errorf("hard %s dropped", app.Proc(h).Name)
		}
	}
}
