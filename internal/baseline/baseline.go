// Package baseline implements the straightforward comparison algorithm FTSF
// of Izosimov et al. (DATE 2008), §6:
//
//	"we obtain static non-fault-tolerant schedules that produce maximal
//	value (e.g. as in [3]). Those schedules are then made fault-tolerant
//	by adding recovery slacks to tolerate k faults in hard processes. The
//	soft processes with lowest utility value are dropped until the
//	application becomes schedulable."
//
// The non-fault-tolerant value-maximising scheduler (our stand-in for
// Cortés et al. [3]) is the FTSS list scheduler run with a zero fault
// budget: without recovery slack it reduces exactly to utility-driven list
// scheduling with dropping under deadlines — the single-schedule generator
// the paper references.
package baseline

import (
	"errors"
	"fmt"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

// NonFaultTolerant synthesises a maximal-value static schedule that ignores
// faults entirely: deadlines are guaranteed for worst-case execution times
// but no recovery slack is reserved.
func NonFaultTolerant(app *model.Application) (*schedule.FSchedule, error) {
	nft, err := app.WithFaults(0, app.Mu())
	if err != nil {
		return nil, err
	}
	s, err := core.FTSS(nft)
	if err != nil {
		return nil, fmt.Errorf("baseline: no value-maximal schedule exists: %w", err)
	}
	return s, nil
}

// FTSF synthesises the baseline fault-tolerant schedule: the
// non-fault-tolerant value-maximal order, patched with k recovery slacks on
// the hard processes, with the lowest-utility soft processes dropped until
// the worst-case fault scenario fits the deadlines and the period.
func FTSF(app *model.Application) (*schedule.FSchedule, error) {
	nft, err := NonFaultTolerant(app)
	if err != nil {
		return nil, err
	}
	k := app.K()
	entries := make([]schedule.Entry, 0, len(nft.Entries))
	for _, e := range nft.Entries {
		f := 0
		if app.Proc(e.Proc).Kind == model.Hard {
			f = k
		}
		entries = append(entries, schedule.Entry{Proc: e.Proc, Recoveries: f})
	}
	for {
		if schedule.Schedulable(app, entries, 0, k) {
			s := &schedule.FSchedule{Entries: entries}
			if err := schedule.Validate(app, s); err != nil {
				return nil, fmt.Errorf("baseline: internal error: %w", err)
			}
			return s, nil
		}
		idx := lowestUtilitySoft(app, entries)
		if idx < 0 {
			// Even the hard-only schedule fails; surface which constraint.
			var se *schedule.UnschedulableError
			if errors.As(schedule.CheckSchedulable(app, entries, 0, k), &se) {
				return nil, &core.UnschedulableError{
					Process: se.Proc, Deadline: se.Bound, WorstCase: se.Completion,
				}
			}
			return nil, core.ErrUnschedulable
		}
		entries = append(entries[:idx], entries[idx+1:]...)
	}
}

// lowestUtilitySoft returns the index of the scheduled soft process with
// the smallest expected utility contribution (stale-degraded, at its
// average-case completion), or -1 when no soft process remains.
func lowestUtilitySoft(app *model.Application, entries []schedule.Entry) int {
	status := make([]utility.StaleStatus, app.N())
	for i := range status {
		status[i] = utility.Dropped
	}
	for _, e := range entries {
		status[e.Proc] = utility.Executed
	}
	alpha, err := app.StaleCoefficients(status)
	if err != nil {
		panic(err) // unreachable for a validated application
	}
	c := schedule.ExpectedCompletions(app, entries, 0)
	best := -1
	var bestU float64
	for i, e := range entries {
		if app.Proc(e.Proc).Kind != model.Soft {
			continue
		}
		u := alpha[e.Proc] * app.UtilityOf(e.Proc).Value(c.Finish[i])
		if best < 0 || u < bestU {
			best, bestU = i, u
		}
	}
	return best
}
