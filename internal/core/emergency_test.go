package core_test

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// TestEmergencyPlanMatchesNaiveFilter: for every node and every position,
// the arena-backed suffix must equal filtering the remaining entries down
// to the hard processes.
func TestEmergencyPlanMatchesNaiveFilter(t *testing.T) {
	for _, tc := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 8},
		{apps.Fig8(), 16},
		{apps.CruiseController(), 20},
	} {
		tree, err := core.FTQS(tc.app, core.FTQSOptions{M: tc.m})
		if err != nil {
			t.Fatal(err)
		}
		plan := core.BuildEmergencyPlan(tree)
		for id := range tree.Nodes {
			ents := tree.Nodes[id].Schedule.Entries
			for from := 0; from <= len(ents); from++ {
				var want []schedule.Entry
				for _, e := range ents[from:] {
					if tc.app.Proc(e.Proc).Kind == model.Hard {
						want = append(want, e)
					}
				}
				got := plan.Suffix(core.NodeID(id), from)
				if len(got) != len(want) {
					t.Fatalf("%s node %d from %d: suffix has %d entries, want %d",
						tc.app.Name(), id, from, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s node %d from %d entry %d: %+v, want %+v",
							tc.app.Name(), id, from, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestEmergencyPlanSuffixSchedulable: every non-empty emergency suffix
// taken from position 0 must itself pass the worst-case schedulability
// check from time zero — dropping soft work only removes load, so the
// hard-only order inherits the node's guarantees.
func TestEmergencyPlanSuffixSchedulable(t *testing.T) {
	app := apps.Fig8()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	plan := core.BuildEmergencyPlan(tree)
	for id := range tree.Nodes {
		suffix := plan.Suffix(core.NodeID(id), 0)
		if len(suffix) == 0 {
			continue
		}
		if err := schedule.CheckSchedulable(app, suffix, 0, tree.Nodes[id].KRem); err != nil {
			t.Errorf("node %d: emergency suffix unschedulable: %v", id, err)
		}
	}
}
