package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/schedule"
)

// FTQSOptions tunes the quasi-static tree synthesis.
type FTQSOptions struct {
	// M limits the number of schedules in the tree (paper: "we are
	// interested in determining the best M schedules"). M = 1 yields the
	// bare FTSS schedule. Values below 1 are treated as 1.
	M int
	// SweepSamples bounds the number of probe points interval
	// partitioning uses per candidate arc. The sweep is exact (every
	// integer completion time, as in the paper) whenever the completion
	// window is narrower than SweepSamples; wider windows are probed with
	// a stride and guard boundaries are refined by bisection. Defaults
	// to 256.
	SweepSamples int
	// MinGain is the smallest mean utility improvement a candidate
	// sub-schedule must offer to be kept. Defaults to 1e-9 (any strict
	// improvement).
	MinGain float64
	// EvalScenarios selects how schedules are compared during interval
	// partitioning: 1 evaluates completion times at the average execution
	// times (the paper's point estimate); larger values average over a
	// deterministic quadrature of uniform execution times, which removes
	// the point estimate's optimism near guard boundaries. Defaults to 8.
	EvalScenarios int
	// DisableRevival, for ablation studies, prevents sub-schedules from
	// re-admitting processes their parent dropped. The pessimistic
	// worst-case root drops generously, and reviving its victims when
	// execution runs early is the dominant source of the quasi-static
	// utility gain (see DESIGN.md); disabling it isolates the
	// contribution of pure reordering.
	DisableRevival bool
	// Workers bounds the goroutines generating candidate sub-schedules.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces fully serial synthesis.
	// The tree is identical for every worker count: candidate generation
	// is side-effect-free and runs on a bounded worker pool, while a
	// single coordinator goroutine attaches results in the serial order.
	Workers int
	// Sink receives synthesis events (nodes expanded, memoisation and
	// prefetch hits/misses, candidates kept/rejected, worker busy time). A
	// nil sink or obs.NopSink disables instrumentation. Instrumentation
	// never alters the synthesised tree.
	Sink obs.Sink
}

// Validate normalises the options and rejects impossible values: negative
// SweepSamples, EvalScenarios or Workers, and a non-finite MinGain. Zero
// values are replaced by the documented defaults (and M < 1 by 1), so a
// zero FTQSOptions validates to the default configuration. Every synthesis
// entry point applies Validate, so CLI flags and library callers get the
// same diagnostics.
func (o FTQSOptions) Validate() (FTQSOptions, error) {
	if o.SweepSamples < 0 {
		return o, fmt.Errorf("core: FTQSOptions.SweepSamples must be non-negative, got %d", o.SweepSamples)
	}
	if o.EvalScenarios < 0 {
		return o, fmt.Errorf("core: FTQSOptions.EvalScenarios must be non-negative, got %d", o.EvalScenarios)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("core: FTQSOptions.Workers must be non-negative, got %d", o.Workers)
	}
	if math.IsNaN(o.MinGain) || math.IsInf(o.MinGain, 0) {
		return o, fmt.Errorf("core: FTQSOptions.MinGain must be finite, got %v", o.MinGain)
	}
	return o.withDefaults(), nil
}

func (o FTQSOptions) withDefaults() FTQSOptions {
	if o.M < 1 {
		o.M = 1
	}
	if o.SweepSamples <= 0 {
		o.SweepSamples = 256
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-9
	}
	if o.EvalScenarios <= 0 {
		o.EvalScenarios = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// FTQS synthesises a fault-tolerant quasi-static tree of at most opts.M
// schedules for the application (paper Fig. 6 + Fig. 7): the root
// f-schedule comes from FTSS; sub-schedules are generated layer by layer
// for the best- and worst-case completion times of every process, and
// interval partitioning derives the switching guards. Returns
// ErrUnschedulable when no root f-schedule guarantees the hard deadlines.
func FTQS(app *model.Application, opts FTQSOptions) (*Tree, error) {
	return FTQSContext(context.Background(), app, opts)
}

// FTQSContext is FTQS honouring cancellation: the coordinator checks ctx
// before every node expansion and returns ctx.Err() once it is done,
// after waiting out any in-flight speculative synthesis (no goroutines are
// leaked). The tree built so far is discarded.
func FTQSContext(ctx context.Context, app *model.Application, opts FTQSOptions) (*Tree, error) {
	root, err := FTSS(app)
	if err != nil {
		return nil, err
	}
	return FTQSFromRootContext(ctx, app, root, opts)
}

// FTQSFromRoot is FTQS starting from a pre-computed root f-schedule. The
// root must be valid for the application (schedule.Validate) and
// schedulable with k = app.K() faults; this is checked.
func FTQSFromRoot(app *model.Application, root *schedule.FSchedule, opts FTQSOptions) (*Tree, error) {
	return FTQSFromRootContext(context.Background(), app, root, opts)
}

// FTQSFromRootContext is FTQSFromRoot honouring cancellation, with the same
// node-expansion granularity as FTQSContext.
func FTQSFromRootContext(ctx context.Context, app *model.Application, root *schedule.FSchedule, opts FTQSOptions) (*Tree, error) {
	opts, err := opts.Validate()
	if err != nil {
		return nil, err
	}
	if err := schedule.Validate(app, root); err != nil {
		return nil, err
	}
	if err := schedule.CheckSchedulable(app, root.Entries, 0, app.K()); err != nil {
		return nil, unschedulableFrom(err)
	}
	b := &treeBuilder{app: app}
	b.add(&bNode{Node: Node{
		Schedule:       root,
		SwitchPos:      0,
		KRem:           app.K(),
		Depth:          0,
		DroppedOnFault: model.NoProcess,
		Parent:         NoNode,
	}})
	syn := newSynthesizer(app, opts)
	defer syn.close()
	for len(b.nodes) < opts.M {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := b.pickNext()
		if n == nil {
			break // every reachable sub-schedule is already in the tree
		}
		syn.prefetch(b)
		cands := syn.candidates(n)
		n.expanded = true
		syn.count(obs.FTQSNodesExpanded, 1)
		for _, c := range cands {
			if len(b.nodes) >= opts.M {
				break
			}
			b.attachChild(n, c)
		}
		n.arcs = dedupeSortArcs(n.arcs)
	}
	return b.build(), nil
}

// treeBuilder is the growable, pointer-linked form a tree takes during
// synthesis. Only the coordinator goroutine mutates it; build flattens it
// into the immutable arena representation handed to consumers.
type treeBuilder struct {
	app   *model.Application
	nodes []*bNode
}

// bNode is a node under construction: the final Node value (ArcStart and
// ArcEnd are assigned by build) plus the growable arc slice and the
// coordinator's expansion scratch.
type bNode struct {
	Node
	id        NodeID
	parent    *bNode
	arcs      []Arc
	expanded  bool
	dist      int
	distValid bool
}

// add assigns the node the next NodeID and appends it.
func (b *treeBuilder) add(n *bNode) *bNode {
	n.id = NodeID(len(b.nodes))
	b.nodes = append(b.nodes, n)
	return n
}

// attachChild adds the candidate as a node and wires its guard arcs.
func (b *treeBuilder) attachChild(n *bNode, c candidate) {
	full := make([]schedule.Entry, 0, c.pos+1+len(c.suffix))
	full = append(full, n.Schedule.Entries[:c.pos+1]...)
	full = append(full, c.suffix...)
	child := b.add(&bNode{
		Node: Node{
			Schedule:       &schedule.FSchedule{Entries: full},
			SwitchPos:      c.pos + 1,
			KRem:           c.kRem,
			Depth:          n.Depth + 1,
			DroppedOnFault: c.droppedOF,
			Parent:         n.id,
		},
		parent: n,
	})
	for _, iv := range c.intervals {
		n.arcs = append(n.arcs, Arc{
			Pos: c.pos, Kind: c.kind, Lo: iv.Lo, Hi: iv.Hi,
			Gain: iv.Gain, Child: child.id,
		})
	}
}

// build flattens the builder into the arena representation: nodes in
// NodeID order, each node's arcs contiguous in the shared arc slice (they
// are already in the canonical (Pos, Kind, Gain-descending) order, because
// the coordinator runs dedupeSortArcs after expanding each node).
func (b *treeBuilder) build() *Tree {
	total := 0
	for _, n := range b.nodes {
		total += len(n.arcs)
	}
	t := &Tree{
		App:   b.app,
		Nodes: make([]Node, len(b.nodes)),
		Arcs:  make([]Arc, 0, total),
	}
	for i, n := range b.nodes {
		nd := n.Node
		nd.ArcStart = int32(len(t.Arcs))
		t.Arcs = append(t.Arcs, n.arcs...)
		nd.ArcEnd = int32(len(t.Arcs))
		t.Nodes[i] = nd
	}
	return t
}

// nextToExpand returns up to k unexpanded nodes in expansion order: the
// shallowest first, and among equals the one most similar to its parent
// (smallest Kendall distance between the suffix orders), ties broken
// towards the earliest-attached node. Refining near-duplicates first
// steers the tree towards "the most different sub-schedules" overall (see
// DESIGN.md on FindMostSimilarSubschedule).
func (b *treeBuilder) nextToExpand(k int) []*bNode {
	var out []*bNode
	taken := make(map[*bNode]bool, k)
	for len(out) < k {
		var best *bNode
		for _, n := range b.nodes {
			if n.expanded || taken[n] {
				continue
			}
			if best == nil || n.Depth < best.Depth ||
				(n.Depth == best.Depth && n.simDist() < best.simDist()) {
				best = n
			}
		}
		if best == nil {
			break
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

// pickNext selects the next node to expand.
func (b *treeBuilder) pickNext() *bNode {
	if next := b.nextToExpand(1); len(next) > 0 {
		return next[0]
	}
	return nil
}

// simDist is the node's Kendall distance to its parent, computed lazily
// and cached (it depends only on the immutable schedules). Only the
// coordinator goroutine calls it.
func (n *bNode) simDist() int {
	if n.parent == nil {
		return 0
	}
	if !n.distValid {
		n.dist = kendallDistance(
			n.parent.Schedule.Entries[n.SwitchPos:],
			n.Schedule.Entries[n.SwitchPos:])
		n.distValid = true
	}
	return n.dist
}

// kendallDistance counts process pairs ordered differently in the two entry
// sequences (restricted to processes present in both).
func kendallDistance(a, b []schedule.Entry) int {
	posB := make(map[model.ProcessID]int, len(b))
	for i, e := range b {
		posB[e.Proc] = i
	}
	var common []int // positions in b of a's processes, in a's order
	for _, e := range a {
		if p, ok := posB[e.Proc]; ok {
			common = append(common, p)
		}
	}
	d := 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			if common[i] > common[j] {
				d++
			}
		}
	}
	return d
}

// candidate is a generated sub-schedule awaiting selection.
type candidate struct {
	pos       int
	kind      ArcKind
	suffix    []schedule.Entry
	kRem      int
	droppedOF model.ProcessID
	intervals []interval
	gain      float64
}

// synthesizer owns the concurrency machinery of one FTQS run: the worker
// pool, the SuffixFTSS memoization cache, and the speculative per-node
// candidate futures. Candidate generation (generate/candidatesAt/
// makeCandidate) is a pure function of the immutable application, the node
// and the options, so any number of nodes can be generated concurrently;
// only the coordinator loop in FTQSFromRoot mutates the builder.
type synthesizer struct {
	app  *model.Application
	opts FTQSOptions
	pool *pool       // nil when opts.Workers == 1 (fully serial)
	memo *suffixMemo // shared across the whole tree
	// sink receives synthesis events; nil when observability is disabled.
	// Emitting is always sound from worker goroutines (sinks are
	// concurrency-safe by contract) and never influences the tree.
	sink obs.Sink
	// futures maps a not-yet-expanded node to its in-flight candidate
	// generation. Coordinator-only.
	futures map[*bNode]*candFuture
	fwg     sync.WaitGroup
}

// count emits one counter increment if a sink is installed.
func (s *synthesizer) count(c obs.Counter, delta int64) {
	if s.sink != nil {
		s.sink.Add(c, delta)
	}
}

// candFuture is the promise of a node's candidate list.
type candFuture struct {
	done  chan struct{}
	cands []candidate
}

func newSynthesizer(app *model.Application, opts FTQSOptions) *synthesizer {
	s := &synthesizer{
		app:     app,
		opts:    opts,
		memo:    newSuffixMemo(),
		futures: make(map[*bNode]*candFuture),
	}
	if obs.Live(opts.Sink) {
		s.sink = opts.Sink
	}
	if opts.Workers > 1 {
		s.pool = newPool(opts.Workers)
	}
	return s
}

// close waits for outstanding speculative futures, shuts the pool down and
// flushes the memoisation statistics to the sink.
func (s *synthesizer) close() {
	s.fwg.Wait()
	if s.pool != nil {
		s.pool.close()
	}
	if s.sink != nil {
		hits, misses := s.memo.stats()
		s.sink.Add(obs.FTQSMemoHits, int64(hits))
		s.sink.Add(obs.FTQSMemoMisses, int64(misses))
	}
}

// prefetch starts speculative candidate generation for the nodes most
// likely to be expanded next (the first opts.Workers in expansion order),
// so their sub-schedule synthesis overlaps with the coordinator consuming
// the current node. Speculation never changes the result — the coordinator
// attaches candidates strictly in pickNext order — it only wastes bounded
// work when the M cutoff hits first.
func (s *synthesizer) prefetch(b *treeBuilder) {
	if s.pool == nil {
		return
	}
	for _, n := range b.nextToExpand(s.opts.Workers) {
		if s.futures[n] != nil {
			continue
		}
		f := &candFuture{done: make(chan struct{})}
		s.futures[n] = f
		s.fwg.Add(1)
		n := n
		go func() {
			defer s.fwg.Done()
			f.cands = s.generate(n)
			close(f.done)
		}()
	}
}

// candidates returns the node's candidate children, waiting for a
// prefetched future or computing them on the spot.
func (s *synthesizer) candidates(n *bNode) []candidate {
	if f := s.futures[n]; f != nil {
		<-f.done
		delete(s.futures, n)
		s.count(obs.FTQSPrefetchHits, 1)
		return f.cands
	}
	s.count(obs.FTQSPrefetchMisses, 1)
	return s.generate(n)
}

// generate implements CreateSubschedules for one parent (paper Fig. 7,
// line 2/7): for every position after the parent's switch point it
// synthesises (a) a completion sub-schedule assuming the entry finishes at
// its best-possible time, (b) a fault sub-schedule assuming the entry is
// hit and recovered, and (c) for soft entries without recovery budget, a
// fault sub-schedule assuming the entry is dropped. Interval partitioning
// against the parent prices each candidate. Positions are independent and
// are fanned out over the worker pool; the per-position results are
// collected in position order, so the flattened list — and therefore the
// tree — is identical to a serial run.
func (s *synthesizer) generate(n *bNode) []candidate {
	entries := n.Schedule.Entries
	droppedBase := droppedSet(s.app, n.Schedule)
	if n.DroppedOnFault != model.NoProcess {
		droppedBase.Add(n.DroppedOnFault)
	}
	nPos := len(entries) - 1 - n.SwitchPos
	if nPos <= 0 {
		return nil
	}
	perPos := make([][]candidate, nPos)
	// work synthesises one position, timing itself when a sink is live so
	// worker utilisation (busy time vs wall clock) can be derived.
	work := func(i int) {
		if s.sink == nil {
			perPos[i] = s.candidatesAt(n, n.SwitchPos+i, droppedBase)
			return
		}
		t0 := time.Now()
		perPos[i] = s.candidatesAt(n, n.SwitchPos+i, droppedBase)
		s.sink.Add(obs.FTQSWorkerBusyNanos, time.Since(t0).Nanoseconds())
	}
	if s.pool == nil {
		for i := range perPos {
			work(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(nPos)
		for i := range perPos {
			i := i
			s.pool.submit(func() {
				defer wg.Done()
				work(i)
			})
		}
		wg.Wait()
	}
	var cands []candidate
	for _, cs := range perPos {
		cands = append(cands, cs...)
	}
	s.count(obs.FTQSCandidatesKept, int64(len(cands)))
	// Best candidates first (paper: keep the sub-schedules with the most
	// significant utility improvement).
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].gain > cands[i].gain {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	return cands
}

// candidatesAt synthesises the candidate children guarded by entry pos of
// n. Side-effect-free: it reads only the immutable application, the node's
// immutable fields and the shared droppedBase set.
func (s *synthesizer) candidatesAt(n *bNode, pos int, droppedBase model.ProcSet) []candidate {
	app := s.app
	entries := n.Schedule.Entries
	prefix := entries[:pos+1]
	best := schedule.BestCaseCompletions(app, prefix, 0)
	worst := schedule.WorstCaseCompletions(app, prefix, 0, n.KRem)
	bestFinish := best.Finish[pos]
	bestStart := best.Start[pos]
	wcHi := worst.WorstCase[pos]
	e := entries[pos]
	p := app.Proc(e.Proc)

	executed := model.NewProcSet(app.N())
	for _, pe := range prefix {
		executed.Add(pe.Proc)
	}
	// A child re-optimises the remainder from scratch, so processes
	// the parent dropped become candidates again — the pessimistic
	// worst-case root drops generously, and re-admitting its
	// victims when execution runs early is the main source of the
	// quasi-static utility gain. Re-admission is only sound while
	// none of the process's successors has executed (otherwise the
	// consumer already ran on a stale value).
	dropped := model.NewProcSet(app.N())
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if !droppedBase.Has(pid) {
			continue
		}
		revivable := !s.opts.DisableRevival
		for _, sc := range app.Succs(pid) {
			if executed.Has(sc) {
				revivable = false
				break
			}
		}
		if !revivable {
			dropped.Add(pid)
		}
	}

	var out []candidate
	// The paper explores the combinations of best- and worst-case
	// execution times: every child kind is synthesised twice, once
	// for the best-possible and once for the worst-possible
	// completion of the guarded entry (§5.1). Duplicates are
	// merged by addKind (at most two candidates per kind, so a
	// direct suffix comparison replaces any signature machinery).
	addKind := func(kind ArcKind, lo Time, kRem int,
		exec, drop model.ProcSet, droppedOF model.ProcessID) {
		var firstSuffix []schedule.Entry
		haveFirst := false
		for _, genStart := range []Time{lo, wcHi} {
			if genStart < lo {
				continue
			}
			c := s.makeCandidate(n, pos, kind, exec, drop,
				lo, genStart, wcHi, kRem, droppedOF)
			if c == nil {
				continue
			}
			if haveFirst && sameEntries(c.suffix, firstSuffix) {
				s.count(obs.FTQSCandidatesRejected, 1)
				continue
			}
			firstSuffix, haveFirst = c.suffix, true
			out = append(out, *c)
		}
	}

	// (a) Completion child.
	addKind(Completion, bestFinish, n.KRem, executed, dropped, model.NoProcess)

	// (b) Fault child with recovery. The earliest fault-recovered
	// completion is the best-case attempt, the per-fault overhead, and
	// the best-case re-run under the recovery model (the full BCET for
	// re-execution and restart, the final checkpoint segment otherwise).
	if e.Recoveries > 0 && n.KRem > 0 {
		rec := app.Recovery()
		lo := bestStart + rec.AttemptTime(p.BCET) + app.RecoveryOverhead(e.Proc) + rec.ResumeTime(p.BCET)
		addKind(FaultRecovered, lo, n.KRem-1, executed, dropped, model.NoProcess)
	}

	// (c) Fault child with dropping (soft, no recovery budget).
	if p.Kind == model.Soft && e.Recoveries == 0 && n.KRem > 0 {
		lo := bestStart + p.BCET
		exWithout := executed.Clone()
		exWithout.Remove(e.Proc)
		drWith := dropped.Clone()
		drWith.Add(e.Proc)
		addKind(FaultDropped, lo, n.KRem-1, exWithout, drWith, e.Proc)
	}
	return out
}

// suffixFTSS is SuffixFTSSSet through the memoization cache: identical
// (executed set, dropped set, start, budget) requests across the whole
// tree are synthesised once. Returns nil when the suffix is infeasible or
// empty. The returned entries are shared and must not be mutated.
func (s *synthesizer) suffixFTSS(executed, dropped model.ProcSet, start Time, kRem int) []schedule.Entry {
	key := suffixKey{
		executed: executed.Key(),
		dropped:  dropped.Key(),
		start:    start,
		kRem:     kRem,
	}
	if e, ok := s.memo.get(key); ok {
		return e
	}
	suffix, err := SuffixFTSSSet(s.app, executed, dropped, start, kRem)
	if err != nil {
		suffix = nil
	}
	s.memo.put(key, suffix)
	return suffix
}

// makeCandidate synthesises one sub-schedule (assuming the guarded entry
// completes at genStart) and prices it with interval partitioning over the
// whole completion window [lo, hi]; nil when the candidate is infeasible,
// identical to the parent's own continuation, or not a strict improvement
// anywhere.
func (s *synthesizer) makeCandidate(n *bNode, pos int, kind ArcKind,
	executed, dropped model.ProcSet, lo, genStart, hi Time, kRem int,
	droppedOF model.ProcessID) *candidate {

	app := s.app
	suffix := s.suffixFTSS(executed, dropped, genStart, kRem)
	if len(suffix) == 0 {
		s.count(obs.FTQSCandidatesRejected, 1)
		return nil
	}
	parentSuffix := n.Schedule.Entries[pos+1:]
	if kind == Completion && sameEntries(suffix, parentSuffix) {
		s.count(obs.FTQSCandidatesRejected, 1)
		return nil
	}

	// Dropped-set assumptions for the two evaluators.
	parentDropped := droppedAssumption(app, n, droppedOF)
	childDropped := make([]bool, app.N())
	in := executed.Clone()
	for _, e := range suffix {
		in.Add(e.Proc)
	}
	for id := 0; id < app.N(); id++ {
		childDropped[id] = !in.Has(model.ProcessID(id))
	}

	parentEval := newSuffixEval(app, parentSuffix, parentDropped, s.opts.EvalScenarios)
	childEval := newSuffixEval(app, suffix, childDropped, s.opts.EvalScenarios)
	ivs := partitionChild(app, parentEval, childEval, suffix, lo, hi, kRem, s.opts.SweepSamples)
	if len(ivs) == 0 {
		s.count(obs.FTQSCandidatesRejected, 1)
		return nil
	}
	var gain float64
	for _, iv := range ivs {
		gain += iv.Gain * float64(iv.Hi-iv.Lo+1)
	}
	gain /= float64(hi - lo + 1)
	if gain < s.opts.MinGain {
		s.count(obs.FTQSCandidatesRejected, 1)
		return nil
	}
	return &candidate{
		pos: pos, kind: kind, suffix: suffix, kRem: kRem,
		droppedOF: droppedOF, intervals: ivs, gain: gain,
	}
}

// droppedAssumption returns the dropped set (as the []bool form the
// suffix evaluators consume) under which the parent's own continuation is
// evaluated for a given scenario: the parent's dropped processes, plus the
// entry abandoned by the fault for FaultDropped arcs.
func droppedAssumption(app *model.Application, n *bNode, droppedOF model.ProcessID) []bool {
	d := make([]bool, app.N())
	for i := range d {
		d[i] = true
	}
	for _, e := range n.Schedule.Entries {
		d[e.Proc] = false
	}
	if n.DroppedOnFault != model.NoProcess {
		d[n.DroppedOnFault] = true
	}
	if droppedOF != model.NoProcess {
		d[droppedOF] = true
	}
	return d
}

// droppedSet marks every process of the application absent from the
// schedule.
func droppedSet(app *model.Application, s *schedule.FSchedule) model.ProcSet {
	d := model.NewProcSet(app.N())
	for id := 0; id < app.N(); id++ {
		d.Add(model.ProcessID(id))
	}
	for _, e := range s.Entries {
		d.Remove(e.Proc)
	}
	return d
}

func sameEntries(a, b []schedule.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
