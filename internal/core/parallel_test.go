package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/gen"
	"ftsched/internal/model"
)

// requireTreesEqual compares two quasi-static trees entry for entry and
// arc for arc — the contract of FTQSOptions.Workers is that the produced
// tree is bit-identical for every worker count.
func requireTreesEqual(t *testing.T, label string, a, b *Tree) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("%s: tree sizes differ: %d vs %d", label, a.Size(), b.Size())
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.SwitchPos != nb.SwitchPos ||
			na.KRem != nb.KRem || na.Depth != nb.Depth ||
			na.DroppedOnFault != nb.DroppedOnFault {
			t.Fatalf("%s: node %d headers differ: %+v vs %+v", label, i, na, nb)
		}
		if na.Parent != nb.Parent {
			t.Fatalf("%s: node %d parents differ: S%d vs S%d",
				label, i, na.Parent, nb.Parent)
		}
		if !sameEntries(na.Schedule.Entries, nb.Schedule.Entries) {
			t.Fatalf("%s: node %d schedules differ:\n%v\n%v",
				label, i, na.Schedule.Entries, nb.Schedule.Entries)
		}
		arcsA, arcsB := a.NodeArcs(NodeID(i)), b.NodeArcs(NodeID(i))
		if len(arcsA) != len(arcsB) {
			t.Fatalf("%s: node %d arc counts differ: %d vs %d",
				label, i, len(arcsA), len(arcsB))
		}
		for j := range arcsA {
			if arcsA[j] != arcsB[j] {
				t.Fatalf("%s: node %d arc %d differs: %+v vs %+v",
					label, i, j, arcsA[j], arcsB[j])
			}
		}
	}
}

// TestFTQSParallelDeterminism: the parallel synthesis (Workers > 1) must
// produce a tree entry-for-entry identical to the serial one (Workers = 1)
// — on the paper's fixtures and on generated applications. Run under
// -race this also audits the worker pool and the memoization cache.
func TestFTQSParallelDeterminism(t *testing.T) {
	type testApp struct {
		name string
		app  *model.Application
		m    int
	}
	cases := []testApp{
		{"fig1", apps.Fig1(), 12},
		{"fig8", apps.Fig8(), 40},
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{15, 20} {
		for attempt := 0; attempt < 30; attempt++ {
			app, err := gen.Generate(rng, gen.Default(n))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := FTSS(app); err != nil {
				continue
			}
			cases = append(cases, testApp{app.Name(), app, 16})
			break
		}
	}
	if len(cases) < 4 {
		t.Fatal("could not generate two schedulable applications")
	}
	for _, tc := range cases {
		serial, err := FTQS(tc.app, FTQSOptions{M: tc.m, Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		for _, w := range []int{2, 4, 8} {
			par, err := FTQS(tc.app, FTQSOptions{M: tc.m, Workers: w})
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, w, err)
			}
			requireTreesEqual(t, tc.name, serial, par)
		}
	}
}

// TestFTQSParallelGoldenTree: the paper-mode golden tree of the running
// example survives parallel synthesis unchanged.
func TestFTQSParallelGoldenTree(t *testing.T) {
	app := apps.Fig1()
	serial, err := FTQS(app, FTQSOptions{M: 4, EvalScenarios: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FTQS(app, FTQSOptions{M: 4, EvalScenarios: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != par.Format() {
		t.Errorf("parallel golden tree drifted:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Format(), par.Format())
	}
}

// procSetOf builds a ProcSet over n processes from explicit members.
func procSetOf(n int, ids ...model.ProcessID) model.ProcSet {
	s := model.NewProcSet(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// TestSuffixMemo: identical (executed set, dropped set, start, budget)
// requests hit the cache; differing inputs miss.
func TestSuffixMemo(t *testing.T) {
	app := apps.Fig8()
	s := newSynthesizer(app, FTQSOptions{M: 4}.withDefaults())
	defer s.close()

	n := app.N()
	p0 := model.ProcessID(0)
	p1 := model.ProcessID(1)
	first := s.suffixFTSS(procSetOf(n, p0, p1), procSetOf(n), 100, 1)
	second := s.suffixFTSS(procSetOf(n, p1, p0), procSetOf(n), 100, 1) // same set, fresh ProcSet value
	if !sameEntries(first, second) {
		t.Error("memoized suffix differs for the same executed set")
	}
	hits, misses := s.memo.stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different start time is a different synthesis.
	s.suffixFTSS(procSetOf(n, p0, p1), procSetOf(n), 101, 1)
	if h, m := s.memo.stats(); h != 1 || m != 2 {
		t.Errorf("hits=%d misses=%d after new start, want 1/2", h, m)
	}
	// A different dropped set is a different synthesis.
	s.suffixFTSS(procSetOf(n, p0), procSetOf(n, p1), 100, 1)
	if h, m := s.memo.stats(); h != 1 || m != 3 {
		t.Errorf("hits=%d misses=%d after new dropped set, want 1/3", h, m)
	}
}

// TestSuffixMemoKeyAllocs: forming the memo key from ProcSets and probing
// the cache must not allocate — the string-keyed cache this replaced
// built a fresh key string per lookup.
func TestSuffixMemoKeyAllocs(t *testing.T) {
	app := apps.CruiseController()
	n := app.N()
	executed := procSetOf(n, 0, 3, 7, 12)
	dropped := procSetOf(n, 20, 25)
	memo := newSuffixMemo()
	memo.put(suffixKey{executed: executed.Key(), dropped: dropped.Key(), start: 100, kRem: 1}, nil)
	allocs := testing.AllocsPerRun(100, func() {
		key := suffixKey{
			executed: executed.Key(),
			dropped:  dropped.Key(),
			start:    100,
			kRem:     1,
		}
		if _, ok := memo.get(key); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("memo key construction + lookup allocates %.1f times per run, want 0", allocs)
	}
}

// TestSuffixMemoHitsDuringSynthesis: a real tree synthesis must actually
// exercise the cache (sibling candidates re-request identical suffixes).
func TestSuffixMemoHitsDuringSynthesis(t *testing.T) {
	app := apps.Fig8()
	opts := FTQSOptions{M: 40}.withDefaults()
	s := newSynthesizer(app, opts)
	defer s.close()
	root, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	b := &treeBuilder{app: app}
	b.add(&bNode{Node: Node{
		Schedule: root, KRem: app.K(),
		DroppedOnFault: model.NoProcess, Parent: NoNode,
	}})
	for len(b.nodes) < opts.M {
		n := b.pickNext()
		if n == nil {
			break
		}
		cands := s.candidates(n)
		n.expanded = true
		for _, c := range cands {
			if len(b.nodes) >= opts.M {
				break
			}
			b.attachChild(n, c)
		}
		n.arcs = dedupeSortArcs(n.arcs)
	}
	hits, misses := s.memo.stats()
	if misses == 0 {
		t.Fatal("memo never consulted")
	}
	if hits == 0 {
		t.Error("memo never hit during a 40-node synthesis")
	}
}

// TestPool: every submitted task runs exactly once and close drains.
func TestPool(t *testing.T) {
	p := newPool(4)
	var n atomic.Int64
	var wg sync.WaitGroup
	const tasks = 100
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		p.submit(func() {
			defer wg.Done()
			n.Add(1)
		})
	}
	wg.Wait()
	p.close()
	if n.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", n.Load(), tasks)
	}
}
