package core

import (
	"sync"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// suffixMemo caches SuffixFTSS results for the lifetime of one FTQS
// synthesis. Tree nodes that share an executed prefix (as a set — the
// list scheduler only consumes the membership, never the order), a dropped
// set, a start time and a fault budget request the exact same suffix
// synthesis; without the cache each of them pays the full list-scheduler
// run again. A nil cached value records that the synthesis failed or
// produced an empty suffix, which callers treat alike.
//
// Cached suffixes are shared between candidates and must therefore never
// be mutated; every consumer in this package copies before appending.
type suffixMemo struct {
	mu           sync.Mutex
	m            map[string][]schedule.Entry
	hits, misses int
}

func newSuffixMemo() *suffixMemo {
	return &suffixMemo{m: make(map[string][]schedule.Entry)}
}

// suffixMemoKey packs the synthesis inputs into a canonical string: one
// bitset for the executed processes, one for the dropped processes, the
// start time and the remaining fault budget. n is the application size.
func suffixMemoKey(n int, executed, dropped []model.ProcessID, start Time, kRem int) string {
	words := (n + 7) / 8
	b := make([]byte, 2*words+9)
	for _, id := range executed {
		b[int(id)>>3] |= 1 << (uint(id) & 7)
	}
	for _, id := range dropped {
		b[words+int(id)>>3] |= 1 << (uint(id) & 7)
	}
	off := 2 * words
	u := uint64(start)
	for i := 0; i < 8; i++ {
		b[off+i] = byte(u >> (8 * uint(i)))
	}
	b[off+8] = byte(kRem)
	return string(b)
}

func (c *suffixMemo) get(key string) ([]schedule.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

func (c *suffixMemo) put(key string, entries []schedule.Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = entries
}

// stats reports (hits, misses) for tests and benchmarks.
func (c *suffixMemo) stats() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
