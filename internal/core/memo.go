package core

import (
	"sync"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// suffixKey identifies one SuffixFTSS request: the executed and dropped
// process sets (as comparable bitset snapshots — the list scheduler only
// consumes membership, never order), the start time and the fault budget.
// Building a key is allocation-free for applications that fit the inline
// words of model.ProcKey (≤256 processes).
type suffixKey struct {
	executed, dropped model.ProcKey
	start             Time
	kRem              int
}

// suffixMemo caches SuffixFTSS results for the lifetime of one FTQS
// synthesis. Tree nodes that share an executed prefix, a dropped set, a
// start time and a fault budget request the exact same suffix synthesis;
// without the cache each of them pays the full list-scheduler run again. A
// nil cached value records that the synthesis failed or produced an empty
// suffix, which callers treat alike.
//
// Cached suffixes are shared between candidates and must therefore never
// be mutated; every consumer in this package copies before appending.
type suffixMemo struct {
	mu           sync.Mutex
	m            map[suffixKey][]schedule.Entry
	hits, misses int
}

func newSuffixMemo() *suffixMemo {
	return &suffixMemo{m: make(map[suffixKey][]schedule.Entry)}
}

func (c *suffixMemo) get(key suffixKey) ([]schedule.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

func (c *suffixMemo) put(key suffixKey, entries []schedule.Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = entries
}

// stats reports (hits, misses) for tests and benchmarks.
func (c *suffixMemo) stats() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
