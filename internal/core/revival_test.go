package core

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
)

// TestDisableRevivalInvariant: with revival disabled, no node may schedule
// a process its parent (transitively, the root) dropped — the tree can
// only reorder and re-drop.
func TestDisableRevivalInvariant(t *testing.T) {
	app := apps.CruiseController()
	tree, err := FTQS(app, FTQSOptions{M: 24, DisableRevival: true})
	if err != nil {
		t.Fatal(err)
	}
	rootHas := make(map[model.ProcessID]bool)
	for _, e := range tree.Root().Schedule.Entries {
		rootHas[e.Proc] = true
	}
	for id := range tree.Nodes {
		for _, e := range tree.Nodes[id].Schedule.Entries {
			if !rootHas[e.Proc] {
				t.Errorf("S%d schedules %s, which the root dropped (revival disabled)",
					id, app.Proc(e.Proc).Name)
			}
		}
	}
}

// TestRevivalAddsProcesses: with revival enabled (default), at least one
// node of the CC tree re-admits a process the pessimistic root dropped —
// the mechanism behind the quasi-static gain.
func TestRevivalAddsProcesses(t *testing.T) {
	app := apps.CruiseController()
	tree, err := FTQS(app, FTQSOptions{M: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root().Schedule.Dropped(app)) == 0 {
		t.Skip("root drops nothing; revival has no headroom here")
	}
	rootHas := make(map[model.ProcessID]bool)
	for _, e := range tree.Root().Schedule.Entries {
		rootHas[e.Proc] = true
	}
	revived := false
	for _, n := range tree.Nodes[1:] {
		for _, e := range n.Schedule.Entries {
			if !rootHas[e.Proc] {
				revived = true
			}
		}
	}
	if !revived {
		t.Error("no node revives a root-dropped process")
	}
}

// TestRevivalSoundness: a revived process never appears after one of its
// successors has already executed in the same schedule (the consumer would
// have read a stale value).
func TestRevivalSoundness(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig8(), apps.CruiseController()} {
		tree, err := FTQS(app, FTQSOptions{M: 32})
		if err != nil {
			t.Fatal(err)
		}
		for id := range tree.Nodes {
			n := &tree.Nodes[id]
			pos := make(map[model.ProcessID]int)
			for i, e := range n.Schedule.Entries {
				pos[e.Proc] = i
			}
			for _, e := range n.Schedule.Entries {
				for _, s := range app.Succs(e.Proc) {
					if sp, ok := pos[s]; ok && sp < pos[e.Proc] {
						t.Errorf("%s: S%d runs %s after its consumer %s",
							app.Name(), id, app.Proc(e.Proc).Name, app.Proc(s).Name)
					}
				}
			}
		}
	}
}
