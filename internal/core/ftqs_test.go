package core

import (
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

// TestFTQSFig1Tree checks the quasi-static tree for the paper's running
// example against the Fig. 5 discussion. Our root is the average-case
// optimal FTSS order P1, P3, P2; the paper presents the same two group-1
// schedules with the complementary labelling: its S1_1 = (P1, P2, P3) is
// used when P1 completes early and it switches to S2_1 = (P1, P3, P2) when
// t_c(P1) > 40. Here that surfaces as a completion child with suffix
// (P2, P3) whose guard must end at exactly t_c(P1) = 40.
func TestFTQSFig1Tree(t *testing.T) {
	app := apps.Fig1()
	// EvalScenarios 1 selects the paper's average-execution-time point
	// estimate, under which the guard boundary is exactly tc(P1) = 40.
	tree, err := FTQS(app, FTQSOptions{M: 12, EvalScenarios: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 2 {
		t.Fatalf("tree has %d nodes, want at least 2", tree.Size())
	}
	root := tree.Root()
	if !orderIs(app, root.Schedule.Entries, "P1", "P3", "P2") {
		t.Fatalf("root order = %v", names(app, root.Schedule.Entries))
	}

	// Find the completion arc after P1 (pos 0).
	rootArcs := tree.NodeArcs(0)
	var arc *Arc
	for i := range rootArcs {
		a := &rootArcs[i]
		if a.Pos == 0 && a.Kind == Completion {
			arc = a
			break
		}
	}
	if arc == nil {
		t.Fatalf("no completion arc after P1; tree:\n%s", tree.Format())
	}
	child := tree.Node(arc.Child)
	if !orderIs(app, child.Schedule.Entries[1:], "P2", "P3") {
		t.Errorf("child suffix = %v, want [P2 P3]", names(app, child.Schedule.Entries[1:]))
	}
	// The switch is profitable exactly for tc(P1) in [30, 40]: at 40 the
	// P2-first order yields U2(90)+U3(150) = 70 > 60, at 41 it collapses
	// to 30 (paper: "If process P1 completes after 40, the scheduler
	// switches to [the P3-first schedule]").
	if arc.Lo != 30 || arc.Hi != 40 {
		t.Errorf("guard = [%d,%d], want [30,40]", arc.Lo, arc.Hi)
	}
	// A fault arc after P1 must exist too (group 2 of Fig. 5): with the
	// fault budget consumed, late re-execution completions favour P2
	// first or drop a soft process.
	hasFault := false
	for _, a := range rootArcs {
		if a.Kind == FaultRecovered && a.Pos == 0 {
			hasFault = true
			if tree.Node(a.Child).KRem != 0 {
				t.Errorf("fault child KRem = %d, want 0", tree.Node(a.Child).KRem)
			}
		}
	}
	if !hasFault {
		t.Logf("tree:\n%s", tree.Format())
		t.Error("no FaultRecovered arc after P1")
	}
}

// TestFTQSSafetyOfGuards: every arc guard must keep the child schedulable
// at the guard's upper bound — the safety bound t_i^c of §5.1.
func TestFTQSSafetyOfGuards(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig1(), apps.Fig8(), apps.Fig1ReducedPeriod()} {
		tree, err := FTQS(app, FTQSOptions{M: 30})
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		for id := range tree.Nodes {
			n := &tree.Nodes[id]
			for _, a := range tree.NodeArcs(NodeID(id)) {
				child := tree.Node(a.Child)
				suffix := child.Schedule.Entries[child.SwitchPos:]
				if !schedule.Schedulable(app, suffix, a.Hi, child.KRem) {
					t.Errorf("%s: arc to S%d unsafe at guard end %d", app.Name(), a.Child, a.Hi)
				}
				if a.Lo > a.Hi {
					t.Errorf("%s: empty guard [%d,%d]", app.Name(), a.Lo, a.Hi)
				}
				if a.Pos >= len(n.Schedule.Entries) {
					t.Errorf("%s: arc position %d out of range", app.Name(), a.Pos)
				}
			}
		}
	}
}

// TestFTQSTreeInvariants: structural invariants of the tree for all paper
// fixtures — root first, prefixes shared with parents, fault children lose
// exactly one unit of budget, sizes respect M, arc ranges dense and in the
// canonical order.
func TestFTQSTreeInvariants(t *testing.T) {
	app := apps.Fig8()
	for _, m := range []int{1, 2, 3, 5, 10, 40} {
		tree, err := FTQS(app, FTQSOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Size() > m {
			t.Errorf("M=%d: size %d exceeds limit", m, tree.Size())
		}
		prevEnd := int32(0)
		for i := range tree.Nodes {
			n := &tree.Nodes[i]
			if n.ArcStart != prevEnd || n.ArcEnd < n.ArcStart {
				t.Errorf("node %d arc range [%d,%d) not dense after %d", i, n.ArcStart, n.ArcEnd, prevEnd)
			}
			prevEnd = n.ArcEnd
			arcs := tree.NodeArcs(NodeID(i))
			for j := 1; j < len(arcs); j++ {
				a, b := arcs[j-1], arcs[j]
				if a.Pos > b.Pos || (a.Pos == b.Pos && a.Kind > b.Kind) ||
					(a.Pos == b.Pos && a.Kind == b.Kind && a.Gain < b.Gain) {
					t.Errorf("node %d arcs %d,%d violate canonical order", i, j-1, j)
				}
			}
			if i == 0 {
				if n != tree.Root() || n.Parent != NoNode || n.Depth != 0 {
					t.Error("malformed root")
				}
				continue
			}
			if n.Parent == NoNode {
				t.Errorf("node %d has no parent", i)
				continue
			}
			parent := tree.Node(n.Parent)
			if n.Depth != parent.Depth+1 {
				t.Errorf("node %d depth %d, parent depth %d", i, n.Depth, parent.Depth)
			}
			if n.KRem != parent.KRem && n.KRem != parent.KRem-1 {
				t.Errorf("node %d KRem %d vs parent %d", i, n.KRem, parent.KRem)
			}
			// Shared prefix with parent, except a FaultDropped entry.
			for j := 0; j < n.SwitchPos && j < len(parent.Schedule.Entries); j++ {
				if n.Schedule.Entries[j] != parent.Schedule.Entries[j] {
					t.Errorf("node %d prefix diverges from parent at %d", i, j)
				}
			}
		}
		if int(prevEnd) != len(tree.Arcs) {
			t.Errorf("M=%d: arc arena has %d entries, node ranges cover %d", m, len(tree.Arcs), prevEnd)
		}
	}
}

// TestFTQSM1IsFTSS: a tree bounded to one schedule is exactly the FTSS
// schedule with no arcs — the baseline row of the paper's Table 1.
func TestFTQSM1IsFTSS(t *testing.T) {
	app := apps.Fig1()
	tree, err := FTQS(app, FTQSOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 {
		t.Fatalf("size = %d, want 1", tree.Size())
	}
	if len(tree.NodeArcs(0)) != 0 {
		t.Errorf("root has %d arcs, want 0", len(tree.NodeArcs(0)))
	}
	ftss, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(tree.Root().Schedule.Entries, ftss.Entries) {
		t.Error("M=1 root differs from FTSS")
	}
}

// TestFTQSMonotoneSize: growing M never shrinks the tree.
func TestFTQSMonotoneSize(t *testing.T) {
	app := apps.Fig8()
	prev := 0
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		tree, err := FTQS(app, FTQSOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Size() < prev {
			t.Errorf("M=%d: size %d < previous %d", m, tree.Size(), prev)
		}
		prev = tree.Size()
	}
}

// TestFTQSUnschedulable propagates FTSS failure.
func TestFTQSUnschedulable(t *testing.T) {
	a := model.NewApplication("un", 1000, 2, 10)
	a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FTQS(a, FTQSOptions{M: 5}); err == nil {
		t.Fatal("expected unschedulable")
	}
}

// TestFTQSFromRootValidation rejects broken roots.
func TestFTQSFromRootValidation(t *testing.T) {
	app := apps.Fig1()
	bad := &schedule.FSchedule{Entries: []schedule.Entry{
		{Proc: app.IDByName("P2")}, // hard P1 missing
	}}
	if _, err := FTQSFromRoot(app, bad, FTQSOptions{M: 3}); err == nil {
		t.Error("invalid root accepted")
	}
	// Structurally valid but not schedulable for k: P1 with recoveries
	// but deadline too tight cannot be constructed here (Validate
	// requires k recoveries), so instead check an over-tight period via
	// an artificial application.
	tight := model.NewApplication("tight", 90, 1, 10)
	h := tight.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 30, AET: 40, WCET: 50, Deadline: 90})
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	root := &schedule.FSchedule{Entries: []schedule.Entry{{Proc: h, Recoveries: 1}}}
	if _, err := FTQSFromRoot(tight, root, FTQSOptions{M: 3}); err == nil {
		t.Error("unschedulable root accepted")
	}
}

// TestTreeNext exercises the online switching policy.
func TestTreeNext(t *testing.T) {
	app := apps.Fig1()
	tree, err := FTQS(app, FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	const root NodeID = 0
	// Early completion of P1 must switch to the P2-first child.
	n := tree.Next(root, 0, 30, CompletedOK)
	if n == root {
		t.Fatal("no switch for early completion")
	}
	if !orderIs(app, tree.Node(n).Schedule.Entries[1:], "P2", "P3") {
		t.Errorf("switched to %v", names(app, tree.Node(n).Schedule.Entries))
	}
	// Past the guard, stay.
	if got := tree.Next(root, 0, 41, CompletedOK); got != root {
		t.Errorf("unexpected switch at tc=41 to S%d", got)
	}
	// Unknown positions and outcomes stay put.
	if got := tree.Next(root, 2, 500, CompletedOK); got != root {
		t.Error("switch on last entry?")
	}
	if got := tree.Next(root, 0, 30, DroppedByFault); got != root {
		t.Error("hard process cannot be dropped; no FaultDropped arc may match")
	}
}

// TestArcKindString and tree formatting smoke test.
func TestFormatting(t *testing.T) {
	if Completion.String() != "completion" ||
		FaultRecovered.String() != "fault-recovered" ||
		FaultDropped.String() != "fault-dropped" {
		t.Error("ArcKind strings")
	}
	if got := ArcKind(9).String(); got != "ArcKind(9)" {
		t.Errorf("ArcKind(9) = %q", got)
	}
	app := apps.Fig1()
	tree, err := FTQS(app, FTQSOptions{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := tree.Format()
	if !strings.Contains(f, "S0") || !strings.Contains(f, "P1") {
		t.Errorf("Format output suspicious:\n%s", f)
	}
}

// TestFTQSFaultDroppedChild: a soft process without recovery budget gets a
// FaultDropped child whose suffix was synthesised with it dropped.
func TestFTQSFaultDroppedChild(t *testing.T) {
	// Build an app where a soft process sits in the middle and has no
	// spare slack for recoveries, followed by more soft work.
	a := model.NewApplication("fd", 300, 1, 10)
	h := a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 40, AET: 60, WCET: 80, Deadline: 170})
	s1 := a.AddProcess(model.Process{Name: "S1", Kind: model.Soft, BCET: 40, AET: 60, WCET: 80,
		Utility: utility.MustStep([]model.Time{150, 250}, []float64{50, 25})})
	s2 := a.AddProcess(model.Process{Name: "S2", Kind: model.Soft, BCET: 30, AET: 40, WCET: 60,
		Utility: utility.MustStep([]model.Time{200, 280}, []float64{40, 15})})
	a.MustAddEdge(h, s1)
	a.MustAddEdge(s1, s2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := FTQS(a, FTQSOptions{M: 20})
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	_ = s2
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.DroppedOnFault != model.NoProcess {
			if a.Proc(n.DroppedOnFault).Kind != model.Soft {
				t.Error("FaultDropped child for a hard process")
			}
			if n.Schedule.Contains(n.DroppedOnFault) {
				// The dropped entry stays in the prefix for
				// bookkeeping; it must not reappear in the suffix.
				idx := n.Schedule.IndexOf(n.DroppedOnFault)
				if idx >= n.SwitchPos {
					t.Error("dropped process scheduled in suffix")
				}
			}
		}
	}
}

// TestFTQSFig1GoldenTree locks the paper-mode (EvalScenarios = 1) tree for
// the running example: the root order, the guard boundary at tc(P1) = 40
// and the fault group are all stated in the paper's Fig. 5 narrative, so a
// change in this rendering means the reproduction changed behaviour.
func TestFTQSFig1GoldenTree(t *testing.T) {
	app := apps.Fig1()
	tree, err := FTQS(app, FTQSOptions{M: 4, EvalScenarios: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Format()
	want := "" +
		"S0   depth=0 kRem=1  P1(f=1) P3 P2(f=1)\n" +
		"     after P1 (completion) tc in [30,40] -> S2 (gain 10.00)\n" +
		"     after P1 (completion) tc in [141,150] -> S3 (gain 10.00)\n" +
		"     after P1 (fault-recovered) tc in [141,150] -> S1 (gain 10.00)\n" +
		"S1   depth=1 kRem=0  P1(f=1) P2 | dropped: P3\n" +
		"S2   depth=1 kRem=1  P1(f=1) P2 P3(f=1)\n" +
		"S3   depth=1 kRem=1  P1(f=1) P2 | dropped: P3\n"
	if got != want {
		t.Errorf("golden tree changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFTQSLayeredExpansion: with a generous M the synthesis expands beyond
// the first layer (sub-schedules of sub-schedules, paper §5.1), the deep
// nodes still verify, and exploration saturates — growing M further adds
// nothing once every combination is covered.
func TestFTQSLayeredExpansion(t *testing.T) {
	app := apps.Fig8()
	tree, err := FTQS(app, FTQSOptions{M: 40})
	if err != nil {
		t.Fatal(err)
	}
	maxDepth := 0
	for i := range tree.Nodes {
		if tree.Nodes[i].Depth > maxDepth {
			maxDepth = tree.Nodes[i].Depth
		}
	}
	if maxDepth < 2 {
		t.Errorf("max depth = %d, want multi-layer expansion", maxDepth)
	}
	if err := VerifyTree(tree); err != nil {
		t.Errorf("deep tree fails verification: %v", err)
	}
	bigger, err := FTQS(app, FTQSOptions{M: 100})
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Size() != tree.Size() {
		t.Errorf("exploration did not saturate: %d vs %d nodes", bigger.Size(), tree.Size())
	}
}
