package core

import (
	"fmt"
	"sort"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

// Time re-exports the model time base.
type Time = model.Time

// ErrUnschedulable is returned when no f-schedule can guarantee the hard
// deadlines for the requested number of faults.
var ErrUnschedulable = fmt.Errorf("core: application is not schedulable")

// FTSS synthesises the root f-schedule for the application: a static
// schedule ordered by the list-scheduling heuristic of §5.2, with shared
// recovery slack sized for k = app.K() transient faults. Hard deadlines are
// guaranteed for the worst-case execution times; the process order (and the
// dropping decisions) maximise the expected utility for the average
// execution times.
func FTSS(app *model.Application) (*schedule.FSchedule, error) {
	st := newFTSSState(app, nil, nil, 0, app.K())
	entries, err := st.run()
	if err != nil {
		return nil, err
	}
	return &schedule.FSchedule{Entries: entries}, nil
}

// SuffixFTSS completes a partially executed schedule: given the set of
// processes already executed or already dropped, the current time, and the
// remaining fault budget, it returns the f-schedule for the remaining
// processes. FTQS uses it to build the sub-schedules of the quasi-static
// tree; it is exported because it is also the natural building block for an
// (out-of-scope) fully online rescheduler, which the paper uses as the
// "ideal but too slow" comparison point.
func SuffixFTSS(app *model.Application, executed, dropped []model.ProcessID, start Time, kRemaining int) ([]schedule.Entry, error) {
	ex := make([]bool, app.N())
	dr := make([]bool, app.N())
	for _, id := range executed {
		ex[id] = true
	}
	for _, id := range dropped {
		dr[id] = true
	}
	st := newFTSSState(app, ex, dr, start, kRemaining)
	return st.run()
}

// SuffixFTSSSet is SuffixFTSS with the executed/dropped state as bitsets,
// the representation FTQS carries end-to-end.
func SuffixFTSSSet(app *model.Application, executed, dropped model.ProcSet, start Time, kRemaining int) ([]schedule.Entry, error) {
	ex := make([]bool, app.N())
	dr := make([]bool, app.N())
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if executed.Has(pid) {
			ex[id] = true
		}
		if dropped.Has(pid) {
			dr[id] = true
		}
	}
	st := newFTSSState(app, ex, dr, start, kRemaining)
	return st.run()
}

// ftssState carries the list-scheduler state of one FTSS run.
type ftssState struct {
	app   *model.Application
	kRem  int  // faults still to tolerate
	start Time // absolute time at which the (suffix) schedule begins

	entries   []schedule.Entry // placed so far (suffix only)
	nowE      Time             // AET-based clock for utility projections
	scheduled []bool           // executed before start, or placed
	dropped   []bool
	ready     []model.ProcessID // the ready list R
}

func newFTSSState(app *model.Application, executed, dropped []bool, start Time, kRem int) *ftssState {
	if executed == nil {
		executed = make([]bool, app.N())
	}
	if dropped == nil {
		dropped = make([]bool, app.N())
	}
	st := &ftssState{
		app:       app,
		kRem:      kRem,
		start:     start,
		nowE:      start,
		scheduled: executed,
		dropped:   dropped,
	}
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if !st.scheduled[id] && !st.dropped[id] && st.predsDone(pid) {
			st.ready = append(st.ready, pid)
		}
	}
	return st
}

// aetOn returns the expected fault-free attempt time of p on its primary
// core. The utility projections keep a scalar expected-time clock even on
// mapped platforms — the projection is a ranking heuristic, and the exact
// mapped timeline is enforced separately by schedule.CheckSchedulable —
// but the durations feeding the clock are speed-scaled and inflated by
// the recovery model's per-attempt checkpoint overheads, so low-power-core
// and checkpoint-heavy placements are priced honestly. Identity on the
// canonical platform under re-execution.
func (st *ftssState) aetOn(p model.ProcessID) Time {
	return st.app.Recovery().AttemptTime(st.rawAETOn(p))
}

// rawAETOn is the speed-scaled expected execution time on the primary
// core, without attempt overheads (the quantity checkpoint segment
// geometry is computed over).
func (st *ftssState) rawAETOn(p model.ProcessID) Time {
	return st.app.Platform().Scale(st.app.CoreOf(p), st.app.Proc(p).AET)
}

// recAETOn is the expected re-run time after a fault, scaled on the
// recovery core. Recovery re-runs take no checkpoints (a checkpoint
// rollback re-runs only the final, checkpoint-free segment — see
// recoveryBeneficial), so no attempt inflation applies.
func (st *ftssState) recAETOn(p model.ProcessID) Time {
	return st.app.Platform().Scale(st.app.RecoveryCoreOf(p), st.app.Proc(p).AET)
}

func (st *ftssState) predsDone(p model.ProcessID) bool {
	for _, q := range st.app.Preds(p) {
		if !st.scheduled[q] && !st.dropped[q] {
			return false
		}
	}
	return true
}

// run executes the FTSS main loop (paper Fig. 8).
func (st *ftssState) run() ([]schedule.Entry, error) {
	for len(st.ready) > 0 {
		st.determineDropping()
		if len(st.ready) == 0 {
			continue // everything ready was dropped; successors now ready
		}
		sched := st.schedulableSet()
		for len(sched) == 0 {
			// Sacrificing a re-execution of an already placed soft
			// process only costs fault-scenario utility, whereas
			// dropping a ready process costs its whole utility; try
			// the cheap option first (cf. the paper's Fig. 4
			// discussion, where P3's re-execution is dropped so that
			// P2 can execute).
			if st.stripOneRecovery() {
				sched = st.schedulableSet()
				continue
			}
			if !st.forcedDropping() {
				return nil, st.unschedulable()
			}
			if len(st.ready) == 0 {
				break
			}
			sched = st.schedulableSet()
		}
		if len(st.ready) == 0 {
			continue
		}
		if len(sched) == 0 {
			return nil, st.unschedulable()
		}
		best := st.bestProcess(sched)
		st.place(best)
	}
	// Defensive final verification; the per-placement checks imply it.
	if err := schedule.CheckSchedulable(st.app, st.entries, st.start, st.kRem); err != nil {
		return nil, unschedulableFrom(err)
	}
	return st.entries, nil
}

// unschedulable diagnoses why the run is stuck: the placed entries plus
// the bare hard tail is the least-constrained continuation, so its
// CheckSchedulable verdict names the offending process; if that passes, the
// conflict is per-candidate and the first failing S_iH is reported instead.
func (st *ftssState) unschedulable() error {
	cand := append([]schedule.Entry(nil), st.entries...)
	cand = append(cand, st.hardTail(model.NoProcess)...)
	if err := schedule.CheckSchedulable(st.app, cand, st.start, st.kRem); err != nil {
		return unschedulableFrom(err)
	}
	for _, p := range st.ready {
		c := st.candidateWithHardTail(p, st.recoveriesFor(p))
		if err := schedule.CheckSchedulable(st.app, c, st.start, st.kRem); err != nil {
			return unschedulableFrom(err)
		}
	}
	return ErrUnschedulable
}

// removeReady deletes p from the ready list.
func (st *ftssState) removeReady(p model.ProcessID) {
	for i, q := range st.ready {
		if q == p {
			st.ready = append(st.ready[:i], st.ready[i+1:]...)
			return
		}
	}
}

// addReadySuccessors inserts the successors of p that became ready.
func (st *ftssState) addReadySuccessors(p model.ProcessID) {
	for _, s := range st.app.Succs(p) {
		if !st.scheduled[s] && !st.dropped[s] && st.predsDone(s) {
			st.ready = append(st.ready, s)
		}
	}
	// Keep the ready list deterministic.
	sort.Slice(st.ready, func(i, j int) bool { return st.ready[i] < st.ready[j] })
}

// drop marks a soft process as dropped and promotes its ready successors.
func (st *ftssState) drop(p model.ProcessID) {
	st.dropped[p] = true
	st.removeReady(p)
	st.addReadySuccessors(p)
}

// determineDropping implements line 3 of FTSS: every ready soft process is
// evaluated with the dropping heuristic and dropped when executing it does
// not increase the projected utility.
func (st *ftssState) determineDropping() {
	// Iterate over a snapshot: drops mutate the ready list.
	snapshot := append([]model.ProcessID(nil), st.ready...)
	for _, p := range snapshot {
		if st.app.Proc(p).Kind != model.Soft || st.dropped[p] {
			continue
		}
		with, without := st.dropDelta(p)
		if with <= without {
			st.drop(p)
		}
	}
}

// dropDelta builds the two evaluation schedules S_i' (with p) and S_i”
// (without p) over the unscheduled soft processes and returns their
// projected utilities (paper §5.2: "In schedule S_i”, if U(S_i') <=
// U(S_i”), P_i is dropped and the stale value is passed instead").
func (st *ftssState) dropDelta(p model.ProcessID) (with, without float64) {
	with = st.softProjection(model.NoProcess)
	without = st.softProjection(p)
	return with, without
}

// softProjection estimates the utility obtainable from the still
// unscheduled soft processes, assuming they run back-to-back from the
// current expected time, with excluded (if any) additionally dropped.
// The order is chosen greedily by utility density (the same MU measure the
// main loop uses), respecting precedence within the projected set, so the
// estimate reflects the best order the scheduler could realistically pick —
// a plain topological order would systematically undervalue keeping a
// process whose siblings are more urgent. Stale-value coefficients reflect
// the combined dropped set.
func (st *ftssState) softProjection(excluded model.ProcessID) float64 {
	app := st.app
	// Status for stale coefficients: everything that is not dropped is
	// assumed to execute.
	dropped := make([]bool, app.N())
	copy(dropped, st.dropped)
	if excluded != model.NoProcess {
		dropped[excluded] = true
	}
	alpha := staleAlpha(app, dropped)

	remaining := make(map[model.ProcessID]bool)
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if !st.scheduled[id] && !dropped[id] && app.Proc(pid).Kind == model.Soft {
			remaining[pid] = true
		}
	}
	now := st.nowE
	var total float64
	for len(remaining) > 0 {
		best := model.NoProcess
		bestDensity := 0.0
		var bestDone Time
		for pid := range remaining {
			blocked := false
			for _, q := range app.Preds(pid) {
				if remaining[q] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			p := app.Proc(pid)
			s := now
			if p.Release > s {
				s = p.Release
			}
			aet := st.aetOn(pid)
			done := s + aet
			density := alpha[pid] * app.UtilityOf(pid).Value(done)
			if aet > 0 {
				density /= float64(aet)
			}
			if best == model.NoProcess || density > bestDensity ||
				(density == bestDensity && pid < best) {
				best, bestDensity, bestDone = pid, density, done
			}
		}
		if best == model.NoProcess {
			break // unreachable for a DAG; defensive
		}
		delete(remaining, best)
		now = bestDone
		total += alpha[best] * app.UtilityOf(best).Value(bestDone)
	}
	return total
}

// staleAlpha computes stale coefficients under the assumption that every
// process outside the dropped set executes.
func staleAlpha(app *model.Application, dropped []bool) []float64 {
	status := make([]utility.StaleStatus, app.N())
	for i := range status {
		if dropped[i] {
			status[i] = utility.Dropped
		}
	}
	alpha, err := app.StaleCoefficients(status)
	if err != nil {
		// Unreachable for a validated application.
		panic(err)
	}
	return alpha
}

// schedulableSet implements GetSchedulable (line 4): the subset A of the
// ready list whose members lead to a schedulable solution. For each ready
// process P_i, the shortest valid schedule S_iH containing P_i and all
// unscheduled hard processes (every other soft process dropped) is checked
// against the hard deadlines and the period, with the remaining fault
// budget.
func (st *ftssState) schedulableSet() []model.ProcessID {
	var out []model.ProcessID
	for _, p := range st.ready {
		if st.leadsToSchedulable(p) {
			out = append(out, p)
		}
	}
	return out
}

func (st *ftssState) leadsToSchedulable(p model.ProcessID) bool {
	cand := st.candidateWithHardTail(p, st.recoveriesFor(p))
	return schedule.Schedulable(st.app, cand, st.start, st.kRem)
}

// recoveriesFor returns the recovery budget a process receives when first
// placed: hard processes must tolerate every remaining fault; soft
// processes start without recoveries (they are added one by one afterwards,
// see addRecoverySlack).
func (st *ftssState) recoveriesFor(p model.ProcessID) int {
	if st.app.Proc(p).Kind == model.Hard {
		return st.kRem
	}
	return 0
}

// candidateWithHardTail builds entries = placed + P_i(f) + unscheduled hard
// processes in deadline order, the schedule S_iH of the paper.
func (st *ftssState) candidateWithHardTail(p model.ProcessID, f int) []schedule.Entry {
	cand := make([]schedule.Entry, 0, len(st.entries)+1+st.app.N())
	cand = append(cand, st.entries...)
	cand = append(cand, schedule.Entry{Proc: p, Recoveries: f})
	cand = append(cand, st.hardTail(p)...)
	return cand
}

// hardTail returns the unscheduled hard processes (other than exclude) in a
// precedence-feasible earliest-deadline order, each with the full remaining
// recovery budget. Deadlines are first tightened along hard→hard edges
// within the set (Blazewicz/Chetto modification, d'_i = min(d_i,
// d'_s − wcet_s)) so that picking the ready process with the smallest
// modified deadline yields a feasibility-optimal order in the classical
// model; edges passing through soft processes impose nothing here because
// S_iH assumes every other soft process dropped (stale inputs).
func (st *ftssState) hardTail(exclude model.ProcessID) []schedule.Entry {
	app := st.app
	inSet := make([]bool, app.N())
	var set []model.ProcessID
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if pid == exclude || st.scheduled[id] || st.dropped[id] {
			continue
		}
		if app.Proc(pid).Kind != model.Hard {
			continue
		}
		inSet[id] = true
		set = append(set, pid)
	}
	if len(set) == 0 {
		return nil
	}
	// Modified deadlines, reverse topological order.
	dmod := make([]Time, app.N())
	topo := app.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		pid := topo[i]
		if !inSet[pid] {
			continue
		}
		d := app.Proc(pid).Deadline
		for _, s := range app.Succs(pid) {
			if inSet[s] {
				if cand := dmod[s] - app.Proc(s).WCET; cand < d {
					d = cand
				}
			}
		}
		dmod[pid] = d
	}
	// Precedence-aware EDF: repeatedly take the ready process (all
	// in-set predecessors placed) with the smallest modified deadline.
	placed := make([]bool, app.N())
	tail := make([]schedule.Entry, 0, len(set))
	for len(tail) < len(set) {
		best := model.NoProcess
		for _, pid := range set {
			if placed[pid] {
				continue
			}
			ready := true
			for _, q := range app.Preds(pid) {
				if inSet[q] && !placed[q] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if best == model.NoProcess ||
				dmod[pid] < dmod[best] ||
				(dmod[pid] == dmod[best] && pid < best) {
				best = pid
			}
		}
		if best == model.NoProcess {
			break // unreachable for a DAG; defensive
		}
		placed[best] = true
		tail = append(tail, schedule.Entry{Proc: best, Recoveries: st.kRem})
	}
	return tail
}

// stripOneRecovery removes one re-execution from a placed soft entry to
// free shared recovery slack for processes that would otherwise be force-
// dropped. Among the placed soft entries with a recovery budget it picks
// the one whose single recovery occupies the most slack (largest wcet + µ),
// breaking ties towards the most recently placed entry, whose recovery was
// the most marginal decision. Returns false when no recovery is left to
// strip.
func (st *ftssState) stripOneRecovery() bool {
	best := -1
	var bestCost Time
	for i, e := range st.entries {
		if e.Recoveries == 0 || st.app.Proc(e.Proc).Kind != model.Soft {
			continue
		}
		cost := st.app.WorstRecoveryCost(e.Proc)
		if best < 0 || cost > bestCost || (cost == bestCost && i > best) {
			best, bestCost = i, cost
		}
	}
	if best < 0 {
		return false
	}
	st.entries[best].Recoveries--
	return true
}

// forcedDropping implements lines 5-9: when no ready process leads to a
// schedulable solution, the soft process whose removal costs the least
// utility is dropped. The paper removes from the ready list; when the
// ready list holds no soft process we extend the rule to any unscheduled
// soft process — a pending soft process can transitively block a hard
// process whose early position the schedulability analysis relies on
// (S_iH assumes all other soft processes dropped), and dropping it is the
// only move that restores consistency. In the limit every soft process is
// dropped and the hard-only schedule remains, so a hard-schedulable
// application can never be declared unschedulable here. Returns false when
// no soft process is left to sacrifice.
func (st *ftssState) forcedDropping() bool {
	pick := func(candidates []model.ProcessID) model.ProcessID {
		best := model.NoProcess
		bestCost := 0.0
		for _, p := range candidates {
			if st.app.Proc(p).Kind != model.Soft {
				continue
			}
			with, without := st.dropDelta(p)
			cost := with - without // utility lost by dropping p
			if best == model.NoProcess || cost < bestCost ||
				(cost == bestCost && p < best) {
				best, bestCost = p, cost
			}
		}
		return best
	}
	if p := pick(st.ready); p != model.NoProcess {
		st.drop(p)
		return true
	}
	var pending []model.ProcessID
	for id := 0; id < st.app.N(); id++ {
		if !st.scheduled[id] && !st.dropped[id] {
			pending = append(pending, model.ProcessID(id))
		}
	}
	if p := pick(pending); p != model.NoProcess {
		st.drop(p)
		return true
	}
	return false
}

// bestProcess implements SoftPriority + GetBestProcess (lines 11-12): the
// schedulable soft process with the highest priority, or — when the ready
// list holds no soft process — the schedulable hard process with the
// earliest deadline.
//
// The priority is a one-step rollout of the scheduler's own greedy
// projection: candidate p scores the utility of "p now, then the best
// greedy continuation of the remaining soft processes". The paper's MU
// function (after Cortés et al. [3], not reproduced there) is a
// utility-density measure; the same density measure orders the greedy
// continuations inside softProjection, and the rollout on top of it scores
// slightly better against the exact optimum (internal/optimal) than
// ranking by density directly.
func (st *ftssState) bestProcess(sched []model.ProcessID) model.ProcessID {
	bestSoft := model.NoProcess
	bestScore := 0.0
	for _, p := range sched {
		proc := st.app.Proc(p)
		if proc.Kind != model.Soft {
			continue
		}
		s := st.nowE
		if proc.Release > s {
			s = proc.Release
		}
		done := s + st.aetOn(p)
		alpha := staleAlpha(st.app, st.dropped)
		score := alpha[p]*st.app.UtilityOf(p).Value(done) +
			st.rolloutProjection(done, p)
		if bestSoft == model.NoProcess || score > bestScore ||
			(score == bestScore && p < bestSoft) {
			bestSoft, bestScore = p, score
		}
	}
	if bestSoft != model.NoProcess {
		return bestSoft
	}
	bestHard := model.NoProcess
	for _, p := range sched {
		if st.app.Proc(p).Kind != model.Hard {
			continue
		}
		if bestHard == model.NoProcess ||
			st.app.Proc(p).Deadline < st.app.Proc(bestHard).Deadline {
			bestHard = p
		}
	}
	return bestHard
}

// rolloutProjection estimates the utility of the unscheduled soft
// processes other than placed, projected greedily from time t — the
// continuation value of scheduling placed first.
func (st *ftssState) rolloutProjection(t Time, placed model.ProcessID) float64 {
	savedNow := st.nowE
	savedSched := st.scheduled[placed]
	st.nowE = t
	st.scheduled[placed] = true
	total := st.softProjection(model.NoProcess)
	st.nowE = savedNow
	st.scheduled[placed] = savedSched
	return total
}

// place schedules p at the current position, assigns its recovery slack and
// promotes its successors (lines 13-15).
func (st *ftssState) place(p model.ProcessID) {
	proc := st.app.Proc(p)
	entry := schedule.Entry{Proc: p, Recoveries: st.recoveriesFor(p)}
	st.entries = append(st.entries, entry)
	st.scheduled[p] = true
	st.removeReady(p)

	s := st.nowE
	if proc.Release > s {
		s = proc.Release
	}
	st.nowE = s + st.aetOn(p)

	if proc.Kind == model.Soft {
		st.addRecoverySlack(len(st.entries) - 1)
	}
	st.addReadySuccessors(p)
}

// addRecoverySlack implements line 14 for soft processes: re-executions are
// added one by one while (a) the schedule including all unscheduled hard
// processes stays schedulable and (b) the re-execution survives the
// dropping heuristic — recovering the process in its fault scenario must be
// worth more than abandoning it and letting the remaining soft processes
// start earlier.
func (st *ftssState) addRecoverySlack(idx int) {
	p := st.entries[idx].Proc
	for f := 1; f <= st.kRem; f++ {
		st.entries[idx].Recoveries = f
		cand := append([]schedule.Entry(nil), st.entries...)
		cand = append(cand, st.hardTail(model.NoProcess)...)
		if !schedule.Schedulable(st.app, cand, st.start, st.kRem) {
			st.entries[idx].Recoveries = f - 1
			return
		}
		if !st.recoveryBeneficial(p, f) {
			st.entries[idx].Recoveries = f - 1
			return
		}
	}
}

// recoveryBeneficial compares, in the scenario where p's execution is hit
// by its f-th fault, the projected utility of recovering p against the
// projected utility of dropping it (the failed attempts' time is spent
// either way; the recovery additionally costs the per-fault overhead plus
// another re-run under the application's recovery model).
func (st *ftssState) recoveryBeneficial(p model.ProcessID, f int) bool {
	app := st.app
	rec := app.Recovery()
	// Time at which recovery from the f-th fault would begin: the process
	// started at nowE - attempt time (it was just placed), ran its primary
	// attempt plus f-1 recovery re-runs, each followed by the per-fault
	// overhead (µ, restart latency, or rollback cost). Re-execution and
	// restart re-run the whole expected duration on the recovery core;
	// a checkpoint rollback re-runs only the final segment of the
	// primary-core attempt.
	atP := st.aetOn(p)
	oh := app.RecoveryOverhead(p)
	var rerun Time
	if rec.Kind == model.RecoverCheckpoint {
		rerun = rec.ResumeTime(st.rawAETOn(p))
	} else {
		rerun = st.recAETOn(p)
	}
	startP := st.nowE - atP
	failed := startP + atP + oh + Time(f-1)*(rerun+oh)
	// Option A: recover; p completes at failed + rerun.
	withAlpha := staleAlpha(app, st.dropped)
	doneAt := failed + rerun
	utilWith := withAlpha[p]*app.UtilityOf(p).Value(doneAt) + st.tailProjection(doneAt, model.NoProcess)
	// Option B: abandon p (drop it); the rest starts at failed - overhead
	// (no recovery overhead is paid for a process that is not recovered).
	utilWithout := st.tailProjection(failed-oh, p)
	return utilWith > utilWithout
}

// tailProjection estimates the utility of the unscheduled soft processes
// from a given start time, with extraDropped additionally dropped.
func (st *ftssState) tailProjection(from Time, extraDropped model.ProcessID) float64 {
	saved := st.nowE
	st.nowE = from
	defer func() { st.nowE = saved }()
	return st.softProjection(extraDropped)
}
