package core

import (
	"strings"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
)

func TestVerifyTreeAcceptsSynthesised(t *testing.T) {
	for _, app := range []*model.Application{apps.Fig1(), apps.Fig8(), apps.CruiseController()} {
		tree, err := FTQS(app, FTQSOptions{M: 24})
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if err := VerifyTree(tree); err != nil {
			t.Errorf("%s: synthesised tree rejected:\n%v", app.Name(), err)
		}
	}
}

func TestVerifyTreeDetectsCorruption(t *testing.T) {
	app := apps.Fig1()
	fresh := func() *Tree {
		tree, err := FTQS(app, FTQSOptions{M: 8})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}

	cases := []struct {
		name    string
		corrupt func(*Tree) bool // returns false if not applicable
		want    string
	}{
		{"budget out of range", func(tr *Tree) bool {
			tr.Nodes[1].KRem = 99
			return len(tr.Nodes) > 1
		}, "fault budget"},
		{"guard widened past safety", func(tr *Tree) bool {
			if len(tr.Arcs) == 0 {
				return false
			}
			tr.Arcs[0].Hi = app.Period() * 2
			return true
		}, "unsafe switch"},
		{"empty guard", func(tr *Tree) bool {
			if len(tr.Arcs) == 0 {
				return false
			}
			tr.Arcs[0].Lo = tr.Arcs[0].Hi + 1
			return true
		}, "empty guard"},
		{"dangling arc", func(tr *Tree) bool {
			if len(tr.Arcs) == 0 {
				return false
			}
			tr.Arcs[0].Child = NodeID(len(tr.Nodes))
			return true
		}, "dangling"},
		{"prefix divergence", func(tr *Tree) bool {
			if len(tr.Nodes) < 2 || tr.Nodes[1].SwitchPos < 1 {
				return false
			}
			tr.Nodes[1].Schedule.Entries[0].Recoveries++
			return true
		}, "prefix diverges"},
		{"hard dropped from a node", func(tr *Tree) bool {
			if len(tr.Nodes) < 2 {
				return false
			}
			// Remove the first entry (P1, hard) from the child.
			tr.Nodes[1].Schedule.Entries = tr.Nodes[1].Schedule.Entries[1:]
			return true
		}, "missing from schedule"},
	}
	for _, c := range cases {
		tr := fresh()
		if !c.corrupt(tr) {
			t.Logf("%s: not applicable to this tree; skipped", c.name)
			continue
		}
		err := VerifyTree(tr)
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerifyTreeMalformedRoot(t *testing.T) {
	err := VerifyTree(&Tree{App: apps.Fig1()})
	if err == nil || !strings.Contains(err.Error(), "missing root") {
		t.Errorf("missing root not detected: %v", err)
	}
}

func TestVerifyIssueString(t *testing.T) {
	if got := (VerifyIssue{Node: 3, Arc: -1, Msg: "x"}).String(); got != "S3: x" {
		t.Errorf("node issue = %q", got)
	}
	if got := (VerifyIssue{Node: 3, Arc: 2, Msg: "x"}).String(); got != "S3/arc2: x" {
		t.Errorf("arc issue = %q", got)
	}
}

func TestMemoryFootprint(t *testing.T) {
	app := apps.Fig1()
	one, err := FTQS(app, FTQSOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := FTQS(app, FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	b1 := one.MemoryFootprint()
	bm := many.MemoryFootprint()
	if b1 <= 0 {
		t.Errorf("footprint %d, want positive", b1)
	}
	if bm <= b1 {
		t.Errorf("bigger tree must cost more memory: %d vs %d", bm, b1)
	}
	// Exact for the single-node tree: header 6 + 3 entries × 3 bytes.
	if b1 != 6+3*3 {
		t.Errorf("M=1 footprint = %d, want 15", b1)
	}
}

// TestVerifyTreeOnRandomTrees: synthesised trees for random applications
// always pass the audit.
func TestVerifyTreeOnRandomTrees(t *testing.T) {
	app := apps.CruiseController()
	for _, m := range []int{2, 8, 39} {
		tree, err := FTQS(app, FTQSOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyTree(tree); err != nil {
			t.Errorf("M=%d: %v", m, err)
		}
	}
}

// TestVerifyTreeFaultBudgetMismatch: a fault-recovered arc whose child
// keeps the parent's budget must be flagged (its suffix analysis assumed a
// consumed fault).
func TestVerifyTreeFaultBudgetMismatch(t *testing.T) {
	app := apps.Fig1()
	tree, err := FTQS(app, FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	patched := false
	for id := range tree.Nodes {
		n := &tree.Nodes[id]
		for _, a := range tree.NodeArcs(NodeID(id)) {
			if a.Kind == FaultRecovered {
				tree.Nodes[a.Child].KRem = n.KRem // wrong: must be KRem-1
				patched = true
			}
		}
	}
	if !patched {
		t.Skip("no fault arcs in this tree")
	}
	err = VerifyTree(tree)
	if err == nil || !strings.Contains(err.Error(), "fault child") {
		t.Errorf("budget mismatch not detected: %v", err)
	}
}
