package core

import (
	"fmt"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file implements a static safety audit of quasi-static trees. The
// online scheduler's correctness rests on invariants that the synthesis is
// designed to maintain; VerifyTree re-checks them independently, so a tree
// loaded from storage, produced by a modified synthesis, or hand-edited
// can be trusted before deployment on the single guarantee that matters:
// no reachable execution can miss a hard deadline.
//
// The audit is split in two layers. VerifyStructure checks only the arena
// invariants an interpreter needs to walk the tree without faulting —
// index ranges, schedule presence, acyclic parent links — and is what
// runtime.NewDispatcher runs before compiling a tree. VerifyTree runs the
// structural audit first and then the semantic one (fault budgets, prefix
// sharing, guard safety bounds) on whatever the structural pass did not
// flag.

// VerifyIssue is one finding of the audit.
type VerifyIssue struct {
	// Node is the ID of the offending node.
	Node int
	// Arc indexes the offending arc within the node, or -1 for node-level
	// findings.
	Arc int
	// Msg describes the violation.
	Msg string
}

// String implements fmt.Stringer.
func (v VerifyIssue) String() string {
	if v.Arc < 0 {
		return fmt.Sprintf("S%d: %s", v.Node, v.Msg)
	}
	return fmt.Sprintf("S%d/arc%d: %s", v.Node, v.Arc, v.Msg)
}

// VerifyError aggregates audit findings.
type VerifyError struct {
	Issues []VerifyIssue
}

// Error implements error.
func (e *VerifyError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: tree verification found %d issue(s):", len(e.Issues))
	for _, i := range e.Issues {
		sb.WriteString("\n  ")
		sb.WriteString(i.String())
	}
	return sb.String()
}

// VerifyStructure audits only the arena invariants that make a tree safe
// to *walk*: a root exists and is bound to an application, every node has
// a schedule whose entries reference valid processes with non-negative
// recovery budgets, every arc range lies inside the arc arena, every arc
// guard position and child reference is in range, parent references are in
// range and acyclic, and DroppedOnFault markers are valid process IDs.
//
// It says nothing about deadlines: a structurally valid tree can still be
// unsafe. Run VerifyTree for the full audit. runtime.NewDispatcher applies
// VerifyStructure so that a hostile tree yields a typed error instead of
// an index panic.
func VerifyStructure(t *Tree) error {
	issues := structureIssues(t)
	if len(issues) == 0 {
		return nil
	}
	return &VerifyError{Issues: issues}
}

// structureIssues is the shared structural pass behind VerifyStructure and
// VerifyTree.
func structureIssues(t *Tree) []VerifyIssue {
	if t == nil || len(t.Nodes) == 0 {
		return []VerifyIssue{{Node: -1, Arc: -1, Msg: "malformed tree: missing root"}}
	}
	if t.App == nil {
		return []VerifyIssue{{Node: -1, Arc: -1, Msg: "malformed tree: no application bound"}}
	}
	var issues []VerifyIssue
	nodeIssue := func(id NodeID, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: -1, Msg: fmt.Sprintf(msg, args...)})
	}
	arcIssue := func(id NodeID, arc int, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: arc, Msg: fmt.Sprintf(msg, args...)})
	}
	nProcs := t.App.N()
	if t.Nodes[0].Parent != NoNode {
		nodeIssue(0, "root has parent S%d", t.Nodes[0].Parent)
	}
	for idx := range t.Nodes {
		id := NodeID(idx)
		n := &t.Nodes[idx]
		if n.Schedule == nil {
			nodeIssue(id, "missing schedule")
			continue
		}
		for j, e := range n.Schedule.Entries {
			if e.Proc < 0 || int(e.Proc) >= nProcs {
				nodeIssue(id, "entry %d references process %d outside [0,%d)", j, e.Proc, nProcs)
			}
			if e.Recoveries < 0 {
				nodeIssue(id, "entry %d has negative recovery budget %d", j, e.Recoveries)
			}
		}
		if n.DroppedOnFault != model.NoProcess && (n.DroppedOnFault < 0 || int(n.DroppedOnFault) >= nProcs) {
			nodeIssue(id, "dropped-on-fault marker %d outside [0,%d)", n.DroppedOnFault, nProcs)
		}
		if id != 0 && (n.Parent < 0 || int(n.Parent) >= len(t.Nodes) || n.Parent == id) {
			nodeIssue(id, "parent S%d out of range", n.Parent)
		}
		if n.ArcStart < 0 || n.ArcEnd < n.ArcStart || int(n.ArcEnd) > len(t.Arcs) {
			nodeIssue(id, "arc range [%d,%d) outside arena of %d arcs", n.ArcStart, n.ArcEnd, len(t.Arcs))
			continue
		}
		arcs := t.NodeArcs(id)
		for ai := range arcs {
			a := &arcs[ai]
			if a.Pos < 0 || a.Pos >= len(n.Schedule.Entries) {
				arcIssue(id, ai, "guard position %d out of range", a.Pos)
			}
			if a.Child < 0 || int(a.Child) >= len(t.Nodes) {
				arcIssue(id, ai, "dangling arc to S%d", a.Child)
			}
		}
	}
	// Parent links must form a forest rooted at S0: walking up from any
	// node must terminate within len(Nodes) steps. A cycle here would hang
	// any ancestry walk (and signals a corrupted arena even though the
	// forward-only dispatcher cannot loop on it).
	for idx := range t.Nodes {
		cur := NodeID(idx)
		steps := 0
		for cur != NoNode && steps <= len(t.Nodes) {
			p := t.Nodes[cur].Parent
			if p < 0 || int(p) >= len(t.Nodes) {
				break // out-of-range parents were reported above
			}
			cur = p
			steps++
		}
		if steps > len(t.Nodes) {
			nodeIssue(NodeID(idx), "parent chain is cyclic")
			break // one report suffices; every node on the cycle would repeat it
		}
	}
	return issues
}

// VerifyTree audits a quasi-static tree:
//
//   - the arena is structurally well-formed (see VerifyStructure);
//   - the root schedule is structurally valid (schedule.Validate) and
//     schedulable from time zero with k = App.K() faults;
//   - every node's fault budget is consistent with its parent's (equal for
//     completion children, one less for fault children) and non-negative;
//   - every node shares its parent's prefix up to its switch position;
//   - every arc guard is non-empty, within the node's entry range, and —
//     the safety bound t_i^c of §5.1 — the child's suffix is schedulable
//     when entered at the guard's *upper* end with the child's fault
//     budget (schedulability is monotone in the entry time, so the upper
//     end covers the whole guard);
//   - FaultDropped arcs drop a soft process, never a hard one;
//   - every hard process appears in every node's schedule.
//
// It returns nil when the tree is safe, or a *VerifyError listing every
// violation.
func VerifyTree(t *Tree) error {
	issues := structureIssues(t)
	if t == nil || len(t.Nodes) == 0 || t.App == nil {
		return &VerifyError{Issues: issues}
	}
	app := t.App
	nodeIssue := func(id NodeID, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: -1, Msg: fmt.Sprintf(msg, args...)})
	}
	arcIssue := func(id NodeID, arc int, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: arc, Msg: fmt.Sprintf(msg, args...)})
	}
	// usable reports whether the semantic checks can safely dereference
	// the node: schedule present, entry processes in range.
	usable := func(n *Node) bool {
		if n.Schedule == nil {
			return false
		}
		for _, e := range n.Schedule.Entries {
			if e.Proc < 0 || int(e.Proc) >= app.N() {
				return false
			}
		}
		return true
	}

	root := t.Root()
	if usable(root) {
		if err := schedule.Validate(app, root.Schedule); err != nil {
			nodeIssue(0, "invalid root schedule: %v", err)
		}
		if err := schedule.CheckSchedulable(app, root.Schedule.Entries, 0, app.K()); err != nil {
			nodeIssue(0, "root not schedulable: %v", err)
		}
	}

	for idx := range t.Nodes {
		id := NodeID(idx)
		n := &t.Nodes[idx]
		if !usable(n) {
			continue // structural issues already recorded
		}
		if n.ArcStart < 0 || n.ArcEnd < n.ArcStart || int(n.ArcEnd) > len(t.Arcs) {
			continue
		}
		if n.KRem < 0 || n.KRem > app.K() {
			nodeIssue(id, "fault budget %d outside [0,%d]", n.KRem, app.K())
		}
		var parent *Node
		if id != 0 && n.Parent >= 0 && int(n.Parent) < len(t.Nodes) {
			parent = &t.Nodes[n.Parent]
			if !usable(parent) {
				parent = nil
			}
		}
		if parent != nil {
			if n.KRem != parent.KRem && n.KRem != parent.KRem-1 {
				nodeIssue(id, "fault budget %d inconsistent with parent's %d", n.KRem, parent.KRem)
			}
			if n.SwitchPos <= 0 || n.SwitchPos > len(n.Schedule.Entries) {
				nodeIssue(id, "switch position %d out of range", n.SwitchPos)
			}
			limit := n.SwitchPos
			if limit > len(parent.Schedule.Entries) {
				limit = len(parent.Schedule.Entries)
			}
			for j := 0; j < limit; j++ {
				if n.Schedule.Entries[j] != parent.Schedule.Entries[j] {
					nodeIssue(id, "prefix diverges from parent at entry %d", j)
					break
				}
			}
		}
		// Hard coverage: every hard process must be in the schedule,
		// except a DroppedOnFault marker can never be hard.
		if n.DroppedOnFault != model.NoProcess &&
			n.DroppedOnFault >= 0 && int(n.DroppedOnFault) < app.N() &&
			app.Proc(n.DroppedOnFault).Kind == model.Hard {
			nodeIssue(id, "fault-dropped process %s is hard", app.Proc(n.DroppedOnFault).Name)
		}
		for _, h := range app.HardIDs() {
			if !n.Schedule.Contains(h) {
				nodeIssue(id, "hard process %s missing from schedule", app.Proc(h).Name)
			}
		}

		arcs := t.NodeArcs(id)
		for ai := range arcs {
			a := &arcs[ai]
			if a.Pos < 0 || a.Pos >= len(n.Schedule.Entries) {
				continue // structural issue already recorded
			}
			if a.Lo > a.Hi {
				arcIssue(id, ai, "empty guard [%d,%d]", a.Lo, a.Hi)
			}
			if a.Child < 0 || int(a.Child) >= len(t.Nodes) {
				continue // dangling arc already recorded
			}
			child := &t.Nodes[a.Child]
			if child.Parent != id {
				arcIssue(id, ai, "child S%d does not point back to this node", a.Child)
			}
			if child.SwitchPos != a.Pos+1 {
				arcIssue(id, ai, "child S%d switch position %d does not follow guard position %d",
					a.Child, child.SwitchPos, a.Pos)
			}
			switch a.Kind {
			case Completion:
				// Completion children must keep the budget.
				if child.KRem != n.KRem {
					arcIssue(id, ai, "completion child S%d changes fault budget %d -> %d",
						a.Child, n.KRem, child.KRem)
				}
			case FaultRecovered:
				// Fault children must decrement it: their suffixes were
				// synthesised after one consumed fault.
				if child.KRem != n.KRem-1 {
					arcIssue(id, ai, "fault child S%d has budget %d, want %d",
						a.Child, child.KRem, n.KRem-1)
				}
			case FaultDropped:
				if child.KRem != n.KRem-1 {
					arcIssue(id, ai, "fault-dropped child S%d has budget %d, want %d",
						a.Child, child.KRem, n.KRem-1)
				}
				if child.DroppedOnFault != n.Schedule.Entries[a.Pos].Proc {
					arcIssue(id, ai, "fault-dropped child S%d does not mark the guarded entry", a.Child)
				}
			default:
				arcIssue(id, ai, "unknown arc kind %d", int(a.Kind))
			}
			// The safety bound: the child suffix entered at the guard's
			// upper end must keep every hard deadline and the period.
			if usable(child) && child.SwitchPos >= 0 && child.SwitchPos <= len(child.Schedule.Entries) {
				suffix := child.Schedule.Entries[child.SwitchPos:]
				if err := schedule.CheckSchedulable(app, suffix, a.Hi, child.KRem); err != nil {
					arcIssue(id, ai, "unsafe switch at guard end %d: %v", a.Hi, err)
				}
			}
		}
	}
	if len(issues) == 0 {
		return nil
	}
	return &VerifyError{Issues: issues}
}
