package core

import (
	"fmt"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file implements a static safety audit of quasi-static trees. The
// online scheduler's correctness rests on invariants that the synthesis is
// designed to maintain; VerifyTree re-checks them independently, so a tree
// loaded from storage, produced by a modified synthesis, or hand-edited
// can be trusted before deployment on the single guarantee that matters:
// no reachable execution can miss a hard deadline.

// VerifyIssue is one finding of the audit.
type VerifyIssue struct {
	// Node is the ID of the offending node.
	Node int
	// Arc indexes the offending arc within the node, or -1 for node-level
	// findings.
	Arc int
	// Msg describes the violation.
	Msg string
}

// String implements fmt.Stringer.
func (v VerifyIssue) String() string {
	if v.Arc < 0 {
		return fmt.Sprintf("S%d: %s", v.Node, v.Msg)
	}
	return fmt.Sprintf("S%d/arc%d: %s", v.Node, v.Arc, v.Msg)
}

// VerifyError aggregates audit findings.
type VerifyError struct {
	Issues []VerifyIssue
}

// Error implements error.
func (e *VerifyError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: tree verification found %d issue(s):", len(e.Issues))
	for _, i := range e.Issues {
		sb.WriteString("\n  ")
		sb.WriteString(i.String())
	}
	return sb.String()
}

// VerifyTree audits a quasi-static tree:
//
//   - the arena is well-formed: every node's arc range lies inside the arc
//     slice, every arc's child and every parent reference is a valid
//     NodeID, and the root has no parent;
//   - the root schedule is structurally valid (schedule.Validate) and
//     schedulable from time zero with k = App.K() faults;
//   - every node's fault budget is consistent with its parent's (equal for
//     completion children, one less for fault children) and non-negative;
//   - every node shares its parent's prefix up to its switch position;
//   - every arc guard is non-empty, within the node's entry range, and —
//     the safety bound t_i^c of §5.1 — the child's suffix is schedulable
//     when entered at the guard's *upper* end with the child's fault
//     budget (schedulability is monotone in the entry time, so the upper
//     end covers the whole guard);
//   - FaultDropped arcs drop a soft process, never a hard one;
//   - every hard process appears in every node's schedule.
//
// It returns nil when the tree is safe, or a *VerifyError listing every
// violation.
func VerifyTree(t *Tree) error {
	var issues []VerifyIssue
	app := t.App
	nodeIssue := func(id NodeID, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: -1, Msg: fmt.Sprintf(msg, args...)})
	}
	arcIssue := func(id NodeID, arc int, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: int(id), Arc: arc, Msg: fmt.Sprintf(msg, args...)})
	}

	if len(t.Nodes) == 0 {
		return &VerifyError{Issues: []VerifyIssue{{Node: -1, Arc: -1, Msg: "malformed tree: missing root"}}}
	}
	root := t.Root()
	if root.Parent != NoNode {
		nodeIssue(0, "root has parent S%d", root.Parent)
	}
	if err := schedule.Validate(app, root.Schedule); err != nil {
		nodeIssue(0, "invalid root schedule: %v", err)
	}
	if err := schedule.CheckSchedulable(app, root.Schedule.Entries, 0, app.K()); err != nil {
		nodeIssue(0, "root not schedulable: %v", err)
	}

	for idx := range t.Nodes {
		id := NodeID(idx)
		n := &t.Nodes[idx]
		if n.ArcStart < 0 || n.ArcEnd < n.ArcStart || int(n.ArcEnd) > len(t.Arcs) {
			nodeIssue(id, "arc range [%d,%d) outside arena of %d arcs", n.ArcStart, n.ArcEnd, len(t.Arcs))
			continue
		}
		if n.KRem < 0 || n.KRem > app.K() {
			nodeIssue(id, "fault budget %d outside [0,%d]", n.KRem, app.K())
		}
		var parent *Node
		if id != 0 {
			if n.Parent < 0 || int(n.Parent) >= len(t.Nodes) {
				nodeIssue(id, "parent S%d out of range", n.Parent)
			} else {
				parent = &t.Nodes[n.Parent]
			}
		}
		if parent != nil {
			if n.KRem != parent.KRem && n.KRem != parent.KRem-1 {
				nodeIssue(id, "fault budget %d inconsistent with parent's %d", n.KRem, parent.KRem)
			}
			if n.SwitchPos <= 0 || n.SwitchPos > len(n.Schedule.Entries) {
				nodeIssue(id, "switch position %d out of range", n.SwitchPos)
			}
			limit := n.SwitchPos
			if limit > len(parent.Schedule.Entries) {
				limit = len(parent.Schedule.Entries)
			}
			for j := 0; j < limit; j++ {
				if n.Schedule.Entries[j] != parent.Schedule.Entries[j] {
					nodeIssue(id, "prefix diverges from parent at entry %d", j)
					break
				}
			}
		}
		// Hard coverage: every hard process must be in the schedule,
		// except a DroppedOnFault marker can never be hard.
		if n.DroppedOnFault != model.NoProcess &&
			app.Proc(n.DroppedOnFault).Kind == model.Hard {
			nodeIssue(id, "fault-dropped process %s is hard", app.Proc(n.DroppedOnFault).Name)
		}
		for _, h := range app.HardIDs() {
			if !n.Schedule.Contains(h) {
				nodeIssue(id, "hard process %s missing from schedule", app.Proc(h).Name)
			}
		}

		arcs := t.NodeArcs(id)
		for ai := range arcs {
			a := &arcs[ai]
			if a.Pos < 0 || a.Pos >= len(n.Schedule.Entries) {
				arcIssue(id, ai, "guard position %d out of range", a.Pos)
				continue
			}
			if a.Lo > a.Hi {
				arcIssue(id, ai, "empty guard [%d,%d]", a.Lo, a.Hi)
			}
			if a.Child < 0 || int(a.Child) >= len(t.Nodes) {
				arcIssue(id, ai, "dangling arc to S%d", a.Child)
				continue
			}
			child := &t.Nodes[a.Child]
			if child.Parent != id {
				arcIssue(id, ai, "child S%d does not point back to this node", a.Child)
			}
			if child.SwitchPos != a.Pos+1 {
				arcIssue(id, ai, "child S%d switch position %d does not follow guard position %d",
					a.Child, child.SwitchPos, a.Pos)
			}
			switch a.Kind {
			case Completion:
				// Completion children must keep the budget.
				if child.KRem != n.KRem {
					arcIssue(id, ai, "completion child S%d changes fault budget %d -> %d",
						a.Child, n.KRem, child.KRem)
				}
			case FaultRecovered:
				// Fault children must decrement it: their suffixes were
				// synthesised after one consumed fault.
				if child.KRem != n.KRem-1 {
					arcIssue(id, ai, "fault child S%d has budget %d, want %d",
						a.Child, child.KRem, n.KRem-1)
				}
			case FaultDropped:
				if child.KRem != n.KRem-1 {
					arcIssue(id, ai, "fault-dropped child S%d has budget %d, want %d",
						a.Child, child.KRem, n.KRem-1)
				}
				if child.DroppedOnFault != n.Schedule.Entries[a.Pos].Proc {
					arcIssue(id, ai, "fault-dropped child S%d does not mark the guarded entry", a.Child)
				}
			default:
				arcIssue(id, ai, "unknown arc kind %d", int(a.Kind))
			}
			// The safety bound: the child suffix entered at the guard's
			// upper end must keep every hard deadline and the period.
			if child.SwitchPos >= 0 && child.SwitchPos <= len(child.Schedule.Entries) {
				suffix := child.Schedule.Entries[child.SwitchPos:]
				if err := schedule.CheckSchedulable(app, suffix, a.Hi, child.KRem); err != nil {
					arcIssue(id, ai, "unsafe switch at guard end %d: %v", a.Hi, err)
				}
			}
		}
	}
	if len(issues) == 0 {
		return nil
	}
	return &VerifyError{Issues: issues}
}
