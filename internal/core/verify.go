package core

import (
	"fmt"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file implements a static safety audit of quasi-static trees. The
// online scheduler's correctness rests on invariants that the synthesis is
// designed to maintain; VerifyTree re-checks them independently, so a tree
// loaded from storage, produced by a modified synthesis, or hand-edited
// can be trusted before deployment on the single guarantee that matters:
// no reachable execution can miss a hard deadline.

// VerifyIssue is one finding of the audit.
type VerifyIssue struct {
	// Node is the ID of the offending node.
	Node int
	// Arc indexes the offending arc within the node, or -1 for node-level
	// findings.
	Arc int
	// Msg describes the violation.
	Msg string
}

// String implements fmt.Stringer.
func (v VerifyIssue) String() string {
	if v.Arc < 0 {
		return fmt.Sprintf("S%d: %s", v.Node, v.Msg)
	}
	return fmt.Sprintf("S%d/arc%d: %s", v.Node, v.Arc, v.Msg)
}

// VerifyError aggregates audit findings.
type VerifyError struct {
	Issues []VerifyIssue
}

// Error implements error.
func (e *VerifyError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: tree verification found %d issue(s):", len(e.Issues))
	for _, i := range e.Issues {
		sb.WriteString("\n  ")
		sb.WriteString(i.String())
	}
	return sb.String()
}

// VerifyTree audits a quasi-static tree:
//
//   - the root schedule is structurally valid (schedule.Validate) and
//     schedulable from time zero with k = App.K() faults;
//   - every node's fault budget is consistent with its parent's (equal for
//     completion children, one less for fault children) and non-negative;
//   - every node shares its parent's prefix up to its switch position;
//   - every arc guard is non-empty, within the node's entry range, and —
//     the safety bound t_i^c of §5.1 — the child's suffix is schedulable
//     when entered at the guard's *upper* end with the child's fault
//     budget (schedulability is monotone in the entry time, so the upper
//     end covers the whole guard);
//   - FaultDropped arcs drop a soft process, never a hard one;
//   - every hard process appears in every node's schedule.
//
// It returns nil when the tree is safe, or a *VerifyError listing every
// violation.
func VerifyTree(t *Tree) error {
	var issues []VerifyIssue
	app := t.App
	nodeIssue := func(n *Node, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: n.ID, Arc: -1, Msg: fmt.Sprintf(msg, args...)})
	}
	arcIssue := func(n *Node, arc int, msg string, args ...any) {
		issues = append(issues, VerifyIssue{Node: n.ID, Arc: arc, Msg: fmt.Sprintf(msg, args...)})
	}

	if t.Root == nil || len(t.Nodes) == 0 || t.Nodes[0] != t.Root {
		return &VerifyError{Issues: []VerifyIssue{{Node: -1, Arc: -1, Msg: "malformed tree: missing root"}}}
	}
	if err := schedule.Validate(app, t.Root.Schedule); err != nil {
		nodeIssue(t.Root, "invalid root schedule: %v", err)
	}
	if err := schedule.CheckSchedulable(app, t.Root.Schedule.Entries, 0, app.K()); err != nil {
		nodeIssue(t.Root, "root not schedulable: %v", err)
	}

	for _, n := range t.Nodes {
		if n.KRem < 0 || n.KRem > app.K() {
			nodeIssue(n, "fault budget %d outside [0,%d]", n.KRem, app.K())
		}
		if n.Parent != nil {
			if n.KRem != n.Parent.KRem && n.KRem != n.Parent.KRem-1 {
				nodeIssue(n, "fault budget %d inconsistent with parent's %d", n.KRem, n.Parent.KRem)
			}
			if n.SwitchPos <= 0 || n.SwitchPos > len(n.Schedule.Entries) {
				nodeIssue(n, "switch position %d out of range", n.SwitchPos)
			}
			limit := n.SwitchPos
			if limit > len(n.Parent.Schedule.Entries) {
				limit = len(n.Parent.Schedule.Entries)
			}
			for j := 0; j < limit; j++ {
				if n.Schedule.Entries[j] != n.Parent.Schedule.Entries[j] {
					nodeIssue(n, "prefix diverges from parent at entry %d", j)
					break
				}
			}
		}
		// Hard coverage: every hard process must be in the schedule,
		// except a DroppedOnFault marker can never be hard.
		if n.DroppedOnFault != model.NoProcess &&
			app.Proc(n.DroppedOnFault).Kind == model.Hard {
			nodeIssue(n, "fault-dropped process %s is hard", app.Proc(n.DroppedOnFault).Name)
		}
		for _, h := range app.HardIDs() {
			if !n.Schedule.Contains(h) {
				nodeIssue(n, "hard process %s missing from schedule", app.Proc(h).Name)
			}
		}

		for ai := range n.Arcs {
			a := &n.Arcs[ai]
			if a.Pos < 0 || a.Pos >= len(n.Schedule.Entries) {
				arcIssue(n, ai, "guard position %d out of range", a.Pos)
				continue
			}
			if a.Lo > a.Hi {
				arcIssue(n, ai, "empty guard [%d,%d]", a.Lo, a.Hi)
			}
			if a.Child == nil {
				arcIssue(n, ai, "dangling arc")
				continue
			}
			if a.Child.Parent != n {
				arcIssue(n, ai, "child S%d does not point back to this node", a.Child.ID)
			}
			if a.Child.SwitchPos != a.Pos+1 {
				arcIssue(n, ai, "child S%d switch position %d does not follow guard position %d",
					a.Child.ID, a.Child.SwitchPos, a.Pos)
			}
			switch a.Kind {
			case Completion:
				// Completion children must keep the budget.
				if a.Child.KRem != n.KRem {
					arcIssue(n, ai, "completion child S%d changes fault budget %d -> %d",
						a.Child.ID, n.KRem, a.Child.KRem)
				}
			case FaultRecovered:
				// Fault children must decrement it: their suffixes were
				// synthesised after one consumed fault.
				if a.Child.KRem != n.KRem-1 {
					arcIssue(n, ai, "fault child S%d has budget %d, want %d",
						a.Child.ID, a.Child.KRem, n.KRem-1)
				}
			case FaultDropped:
				if a.Child.KRem != n.KRem-1 {
					arcIssue(n, ai, "fault-dropped child S%d has budget %d, want %d",
						a.Child.ID, a.Child.KRem, n.KRem-1)
				}
				if a.Child.DroppedOnFault != n.Schedule.Entries[a.Pos].Proc {
					arcIssue(n, ai, "fault-dropped child S%d does not mark the guarded entry", a.Child.ID)
				}
			default:
				arcIssue(n, ai, "unknown arc kind %d", int(a.Kind))
			}
			// The safety bound: the child suffix entered at the guard's
			// upper end must keep every hard deadline and the period.
			suffix := a.Child.Schedule.Entries[a.Child.SwitchPos:]
			if err := schedule.CheckSchedulable(app, suffix, a.Hi, a.Child.KRem); err != nil {
				arcIssue(n, ai, "unsafe switch at guard end %d: %v", a.Hi, err)
			}
		}
	}
	if len(issues) == 0 {
		return nil
	}
	return &VerifyError{Issues: issues}
}
