// Package core implements the scheduling contribution of Izosimov et al.
// (DATE 2008): FTSS, the static scheduling heuristic for fault tolerance and
// utility maximisation (§5.2), and FTQS, the quasi-static tree synthesis
// built on top of it (§5.1), together with the runtime switching policy that
// an online scheduler executes.
//
// # Invariants the algorithms rely on
//
// The application graph is a polar DAG (paper §2): a single source and a
// single sink delimit every operation cycle, so "all predecessors have
// completed" is a well-defined readiness condition and a schedule is a
// topological order of the scheduled subset. model.Application.Validate
// enforces polarity and acyclicity before anything in this package runs.
//
// Execution is non-preemptive on a single computation node (paper §2.2):
// once a process starts it runs to completion (or to a fault), so a
// schedule is fully described by an ordering plus per-process recovery
// counts, and completion times are prefix sums. Re-execution is the only
// fault-tolerance mechanism; the shared recovery slack that pays for it is
// documented in package schedule.
//
// A model.Application is immutable after Validate: FTSS, FTQS and the
// simulator only read it, which is what makes concurrent synthesis sound.
//
// # Concurrency and determinism
//
// FTQS fans candidate sub-schedule generation out over a bounded worker
// pool (FTQSOptions.Workers) and memoises suffix syntheses that differ only
// in the order history was accumulated. Candidate generation is
// side-effect-free; a single coordinator goroutine attaches results to the
// tree in the serial expansion order, so the synthesised tree is identical
// — entry for entry, guard for guard — for every worker count.
package core
