package core

import (
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// EmergencyPlan holds, for every node of a tree, the precomputed hard-only
// suffix schedules the runtime envelope falls back to when it sheds soft
// work after an out-of-model event (a WCET overrun, a fault beyond the
// application bound k, a time regression). Shedding must not allocate or
// scan on the per-cycle hot path, so the plan is built once per tree — two
// flat arenas plus per-(node, position) offsets — and a shed resolves to a
// single slice expression.
//
// The hard-only subsequence of a valid f-schedule is itself a valid order:
// precedence among hard processes is preserved (they keep their relative
// positions) and a dropped soft predecessor is explicitly allowed by the
// model — the successor consumes a stale value. Every hard entry carries
// its full recovery budget (Recoveries == k, a schedule.Validate
// invariant), so the suffix retains the paper's worst-case guarantees
// for any faults still within the bound.
type EmergencyPlan struct {
	// entries is the flat arena of hard-only entries, grouped per node;
	// node i owns entries[nodeStart[i]:nodeStart[i+1]].
	entries   []schedule.Entry
	nodeStart []int32
	// offsets[offStart[i]+p] counts the hard entries among positions
	// [0, p) of node i's schedule, for p in [0, len(schedule)]; the
	// arena-relative start of the hard suffix from position p.
	offsets  []int32
	offStart []int32
}

// BuildEmergencyPlan precomputes the hard-only suffix schedules of every
// node. The tree must have a schedule on every node (guaranteed after
// VerifyStructure, which the runtime dispatcher runs first).
func BuildEmergencyPlan(t *Tree) *EmergencyPlan {
	p := &EmergencyPlan{
		nodeStart: make([]int32, len(t.Nodes)+1),
		offStart:  make([]int32, len(t.Nodes)+1),
	}
	app := t.App
	for id := range t.Nodes {
		p.nodeStart[id] = int32(len(p.entries))
		p.offStart[id] = int32(len(p.offsets))
		ents := t.Nodes[id].Schedule.Entries
		hard := int32(0)
		for pos := 0; pos <= len(ents); pos++ {
			p.offsets = append(p.offsets, hard)
			if pos < len(ents) && app.Proc(ents[pos].Proc).Kind == model.Hard {
				p.entries = append(p.entries, ents[pos])
				hard++
			}
		}
	}
	p.nodeStart[len(t.Nodes)] = int32(len(p.entries))
	p.offStart[len(t.Nodes)] = int32(len(p.offsets))
	return p
}

// Suffix returns the hard-only remainder of node id's schedule from entry
// position from (inclusive): exactly the hard entries among
// Schedule.Entries[from:], in order, as a subslice of the plan's arena
// (no allocation; must not be modified). from may be len(Entries), which
// yields an empty suffix.
func (p *EmergencyPlan) Suffix(id NodeID, from int) []schedule.Entry {
	off := p.nodeStart[id] + p.offsets[p.offStart[id]+int32(from)]
	return p.entries[off:p.nodeStart[id+1]:p.nodeStart[id+1]]
}
