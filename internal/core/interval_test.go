package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

func TestPartitionSimpleWindow(t *testing.T) {
	// win on [10, 20] within sweep [0, 50].
	win := func(tt Time) bool { return tt >= 10 && tt <= 20 }
	gain := func(tt Time) float64 { return 2 }
	ivs := partition(0, 50, 64, win, gain)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v, want one", ivs)
	}
	if ivs[0].Lo != 10 || ivs[0].Hi != 20 {
		t.Errorf("interval = [%d,%d], want [10,20]", ivs[0].Lo, ivs[0].Hi)
	}
	if ivs[0].Gain != 2 {
		t.Errorf("gain = %g, want 2", ivs[0].Gain)
	}
}

func TestPartitionMultipleWindows(t *testing.T) {
	win := func(tt Time) bool { return (tt >= 5 && tt <= 9) || (tt >= 30 && tt <= 42) }
	gain := func(tt Time) float64 { return 1 }
	ivs := partition(0, 60, 61, win, gain) // exact sweep: stride 1
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v, want two", ivs)
	}
	if ivs[0].Lo != 5 || ivs[0].Hi != 9 || ivs[1].Lo != 30 || ivs[1].Hi != 42 {
		t.Errorf("intervals = %v", ivs)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if ivs := partition(10, 5, 8, nil, nil); ivs != nil {
		t.Error("empty range must yield nil")
	}
	all := func(Time) bool { return true }
	one := func(Time) float64 { return 1 }
	ivs := partition(7, 7, 8, all, one)
	if len(ivs) != 1 || ivs[0].Lo != 7 || ivs[0].Hi != 7 {
		t.Errorf("point range = %v", ivs)
	}
	none := func(Time) bool { return false }
	if ivs := partition(0, 100, 16, none, one); len(ivs) != 0 {
		t.Error("no-win sweep must yield nothing")
	}
}

// TestPartitionBoundaryRefinement: with a coarse stride, refined boundaries
// must still be exact for a single wide window.
func TestPartitionBoundaryRefinement(t *testing.T) {
	win := func(tt Time) bool { return tt >= 123 && tt <= 887 }
	gain := func(Time) float64 { return 1 }
	ivs := partition(0, 1000, 16, win, gain) // stride 62
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	if ivs[0].Lo != 123 || ivs[0].Hi != 887 {
		t.Errorf("refined interval = [%d,%d], want [123,887]", ivs[0].Lo, ivs[0].Hi)
	}
}

// TestPartitionSoundnessProperty: every reported interval endpoint must
// satisfy win, for random single-window predicates and strides.
func TestPartitionSoundnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := Time(rng.Intn(100))
		hi := lo + Time(1+rng.Intn(1000))
		a := lo + Time(rng.Int63n(int64(hi-lo+1)))
		b := a + Time(rng.Int63n(int64(hi-a+1)))
		win := func(tt Time) bool { return tt >= a && tt <= b }
		gain := func(Time) float64 { return 1 }
		samples := 2 + rng.Intn(64)
		for _, iv := range partition(lo, hi, samples, win, gain) {
			if !win(iv.Lo) || !win(iv.Hi) {
				t.Logf("seed %d: interval [%d,%d] outside window [%d,%d]", seed, iv.Lo, iv.Hi, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxSafeStart(t *testing.T) {
	app := apps.Fig1()
	p2 := app.IDByName("P2")
	entries := []schedule.Entry{{Proc: p2, Recoveries: 0}}
	// P2 alone (soft) only constrains the period 300: latest start is
	// 300 - 70 = 230.
	got := maxSafeStart(app, entries, 0, 1000, 0)
	if got != 230 {
		t.Errorf("maxSafeStart = %d, want 230", got)
	}
	// Unsafe even at lo.
	if got := maxSafeStart(app, entries, 250, 1000, 0); got != 249 {
		t.Errorf("unsafe lo: got %d, want lo-1", got)
	}
	// Hard process bounded by its deadline minus recovery.
	p1 := app.IDByName("P1")
	he := []schedule.Entry{{Proc: p1, Recoveries: 1}}
	// WCC = start + 70 + 80 <= 180 → start <= 30.
	if got := maxSafeStart(app, he, 0, 1000, 1); got != 30 {
		t.Errorf("hard maxSafeStart = %d, want 30", got)
	}
}

func TestKendallDistance(t *testing.T) {
	e := func(ids ...model.ProcessID) []schedule.Entry {
		out := make([]schedule.Entry, len(ids))
		for i, id := range ids {
			out[i] = schedule.Entry{Proc: id}
		}
		return out
	}
	if d := kendallDistance(e(1, 2, 3), e(1, 2, 3)); d != 0 {
		t.Errorf("identical = %d", d)
	}
	if d := kendallDistance(e(1, 2, 3), e(3, 2, 1)); d != 3 {
		t.Errorf("reversed = %d, want 3", d)
	}
	if d := kendallDistance(e(1, 2, 3), e(2, 1, 3)); d != 1 {
		t.Errorf("one swap = %d, want 1", d)
	}
	// Disjoint processes: no common pairs.
	if d := kendallDistance(e(1, 2), e(3, 4)); d != 0 {
		t.Errorf("disjoint = %d, want 0", d)
	}
	// Partial overlap.
	if d := kendallDistance(e(1, 2, 5), e(9, 2, 1)); d != 1 {
		t.Errorf("partial = %d, want 1", d)
	}
}

// TestSuffixEvalQuadratureDeterminism: the same (entries, dropped,
// scenarios) always produce identical evaluations, and the 1-scenario mode
// equals the plain AET walk.
func TestSuffixEvalQuadratureDeterminism(t *testing.T) {
	app := apps.Fig8()
	s, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	dset := droppedSet(app, s)
	dropped := make([]bool, app.N())
	for id := 0; id < app.N(); id++ {
		dropped[id] = dset.Has(model.ProcessID(id))
	}
	e1 := newSuffixEval(app, s.Entries, dropped, 8)
	e2 := newSuffixEval(app, s.Entries, dropped, 8)
	for tt := Time(0); tt < 200; tt += 5 {
		if e1.from(tt) != e2.from(tt) {
			t.Fatalf("non-deterministic evaluation at t=%d", tt)
		}
	}
	point := newSuffixEval(app, s.Entries, dropped, 1)
	c := schedule.ExpectedCompletions(app, s.Entries, 0)
	var want float64
	alpha := staleAlpha(app, dropped)
	for i, en := range s.Entries {
		if app.Proc(en.Proc).Kind == model.Soft {
			want += alpha[en.Proc] * app.UtilityOf(en.Proc).Value(c.Finish[i])
		}
	}
	if got := point.from(0); got != want {
		t.Errorf("point evaluation %g != AET walk %g", got, want)
	}
}

// TestQuadFracProperties: fractions lie in [0,1) and are identical for the
// same (sample, process) pair.
func TestQuadFracProperties(t *testing.T) {
	for j := 0; j < 16; j++ {
		for p := model.ProcessID(0); p < 50; p++ {
			f := quadFrac(j, 16, p)
			if f < 0 || f >= 1 {
				t.Fatalf("quadFrac(%d,16,%d) = %g", j, p, f)
			}
			if f != quadFrac(j, 16, p) {
				t.Fatal("quadFrac not deterministic")
			}
		}
	}
}

// TestFTQSDeterminism: tree synthesis is fully deterministic.
func TestFTQSDeterminism(t *testing.T) {
	app := apps.Fig8()
	t1, err := FTQS(app, FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := FTQS(app, FTQSOptions{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Format() != t2.Format() {
		t.Error("FTQS is not deterministic")
	}
}
