package core

import (
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

func names(app *model.Application, entries []schedule.Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = app.Proc(e.Proc).Name
	}
	return out
}

func orderIs(app *model.Application, entries []schedule.Entry, want ...string) bool {
	got := names(app, entries)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFTSSFig1PrefersS2: the paper's Fig. 4 discussion concludes that for
// the Fig. 1 application the static scheduler must prefer the order
// S2 = P1, P3, P2 (average-case utility 60) over S1 = P1, P2, P3 (utility
// 30).
func TestFTSSFig1PrefersS2(t *testing.T) {
	app := apps.Fig1()
	s, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if !orderIs(app, s.Entries, "P1", "P3", "P2") {
		t.Fatalf("FTSS order = %v, want [P1 P3 P2]", names(app, s.Entries))
	}
	if got := schedule.ExpectedUtility(app, s); got != 60 {
		t.Errorf("expected utility = %g, want 60", got)
	}
	if err := schedule.Validate(app, s); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if err := schedule.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
		t.Errorf("schedule not fault-tolerant: %v", err)
	}
	// P1 is hard: full recovery budget.
	if s.Entries[0].Recoveries != 1 {
		t.Errorf("P1 recoveries = %d, want 1", s.Entries[0].Recoveries)
	}
	// Fig. 4b4: re-executing P3 cannot complete within T and is not
	// beneficial, so P3 carries no recovery, while P2 (last) can afford
	// one: makespan 220 + max(80, 80) = 300 <= 300.
	if s.Entries[1].Recoveries != 0 {
		t.Errorf("P3 recoveries = %d, want 0", s.Entries[1].Recoveries)
	}
	if s.Entries[2].Recoveries != 1 {
		t.Errorf("P2 recoveries = %d, want 1", s.Entries[2].Recoveries)
	}
}

// TestFTSSFig4cDropsP2: with the period reduced to 250 ms (Fig. 4c) the
// worst-case fault scenario no longer accommodates all three processes; the
// paper drops P2 and keeps S3 = P1, P3 (utility 40 beats S4's 20).
func TestFTSSFig4cDropsP2(t *testing.T) {
	app := apps.Fig1ReducedPeriod()
	s, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(app.IDByName("P3")) {
		t.Errorf("P3 should be kept, schedule = %s", s.Format(app))
	}
	if s.Contains(app.IDByName("P2")) {
		// P2 may only stay if the worst case still fits; verify.
		if err := schedule.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
			t.Errorf("P2 kept but schedule unsafe: %v", err)
		}
	}
	if err := schedule.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
		t.Errorf("schedule not fault-tolerant: %v", err)
	}
	// The hard process must still tolerate the fault.
	if s.Entries[0].Proc != app.IDByName("P1") || s.Entries[0].Recoveries != 1 {
		t.Errorf("P1 must come first with 1 recovery, got %s", s.Format(app))
	}
}

// TestFTSSFig8: the Fig. 8 application cannot keep all three soft
// processes in the worst case (ΣWCET = 180 plus 80 of two-fault recovery
// slack exceeds T = 220), so exactly one soft process must be dropped; the
// dropping heuristic keeps P2 (the paper's walk-through: U(S2') = 80 >
// U(S2”) = 50) and the hard processes are always kept with full recovery.
func TestFTSSFig8(t *testing.T) {
	app := apps.Fig8()
	s, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"P1", "P5"} {
		if !s.Contains(app.IDByName(n)) {
			t.Errorf("hard process %s dropped in %s", n, s.Format(app))
		}
	}
	if !s.Contains(app.IDByName("P2")) {
		t.Errorf("P2 must be kept (paper: U(S2') > U(S2'')): %s", s.Format(app))
	}
	softKept := 0
	for _, n := range []string{"P2", "P3", "P4"} {
		if s.Contains(app.IDByName(n)) {
			softKept++
		}
	}
	if softKept != 2 {
		t.Errorf("exactly one soft process must be dropped, kept %d: %s", softKept, s.Format(app))
	}
	if err := schedule.Validate(app, s); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if err := schedulableWithK(app, s); err != nil {
		t.Errorf("not fault-tolerant: %v", err)
	}
	// P1 must be first (it is the only source and hard).
	if s.Entries[0].Proc != app.IDByName("P1") {
		t.Errorf("P1 not first: %s", s.Format(app))
	}
	// The surviving schedule should reach the best achievable expected
	// utility for this forced-drop situation (60 with our staircases).
	if got := schedule.ExpectedUtility(app, s); got < 60 {
		t.Errorf("expected utility = %g, want >= 60", got)
	}
}

func schedulableWithK(app *model.Application, s *schedule.FSchedule) error {
	return schedule.CheckSchedulable(app, s.Entries, 0, app.K())
}

// TestFig8DroppingEvaluation reproduces the S2'/S2” comparison directly:
// the projection with P2 present must exceed the projection with P2
// dropped (80 vs 50 in the paper's timing).
func TestFig8DroppingEvaluation(t *testing.T) {
	app := apps.Fig8()
	p1 := app.IDByName("P1")
	executed := make([]bool, app.N())
	executed[p1] = true
	st := newFTSSState(app, executed, nil, 30, app.K()) // after P1's WCET
	with, without := st.dropDelta(app.IDByName("P2"))
	if with <= without {
		t.Errorf("U(S2') = %g should exceed U(S2'') = %g", with, without)
	}
	// With the paper's completion chain P2@60, P3@90, P4@130 the utility
	// is 40+20+20 = 80; our greedy may order slightly differently but
	// must reach at least that value.
	if with < 80 {
		t.Errorf("U(S2') = %g, want >= 80", with)
	}
	// Without P2: P3@60 (30) + stale-degraded P4: 2/3 * U4(90) = 20.
	if without != 50 {
		t.Errorf("U(S2'') = %g, want 50", without)
	}
}

// TestFig8HardTailSchedulability reproduces the S2H check: scheduling P2
// right after P1 leaves the only unscheduled hard process P5 completing
// before its deadline 220 in the worst-case two-fault scenario.
func TestFig8HardTailSchedulability(t *testing.T) {
	app := apps.Fig8()
	p1 := app.IDByName("P1")
	executed := make([]bool, app.N())
	executed[p1] = true
	st := newFTSSState(app, executed, nil, 30, app.K())
	if !st.leadsToSchedulable(app.IDByName("P2")) {
		t.Error("P2 must lead to a schedulable solution (paper: P5 completes at 170 <= 220)")
	}
}

// TestFTSSUnschedulable: a hard process whose deadline cannot absorb k
// re-executions makes the application unschedulable.
func TestFTSSUnschedulable(t *testing.T) {
	a := model.NewApplication("un", 1000, 2, 10)
	a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FTSS(a); err == nil {
		t.Fatal("expected unschedulable")
	}
}

// TestFTSSForcedDropping: two soft processes ahead of a tight hard deadline;
// the scheduler must drop (or defer) enough soft work to protect the hard
// process. The cheap soft process is sacrificed first.
func TestFTSSForcedDropping(t *testing.T) {
	a := model.NewApplication("fd", 500, 0, 5)
	s1 := a.AddProcess(model.Process{Name: "SoftCheap", Kind: model.Soft, BCET: 100, AET: 100, WCET: 100,
		Utility: utility.MustStep([]model.Time{400}, []float64{5})})
	s2 := a.AddProcess(model.Process{Name: "SoftRich", Kind: model.Soft, BCET: 100, AET: 100, WCET: 100,
		Utility: utility.MustStep([]model.Time{400}, []float64{500})})
	h := a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 200})
	_ = s1
	_ = s2
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := FTSS(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedulableWithK(a, s); err != nil {
		t.Fatalf("not schedulable: %v", err)
	}
	if !s.Contains(h) {
		t.Fatal("hard process missing")
	}
	// Only one of the two soft processes fits before H's deadline; the
	// rich one must be the survivor ahead of H, and H meets its deadline.
	idx := s.IndexOf(h)
	c := schedule.WorstCaseCompletions(a, s.Entries, 0, 0)
	if c.WorstCase[idx] > 200 {
		t.Errorf("H completes at %d > 200", c.WorstCase[idx])
	}
	if !s.Contains(s2) {
		t.Errorf("SoftRich should survive: %s", s.Format(a))
	}
}

// TestFTSSRespectsPrecedence: a soft successor is never scheduled before
// its predecessor.
func TestFTSSRespectsPrecedence(t *testing.T) {
	app := apps.Fig8()
	s, err := FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(app, s); err != nil {
		t.Fatal(err)
	}
	// P4 must come after both P2 and P3 (its predecessors).
	i4 := s.IndexOf(app.IDByName("P4"))
	if i4 >= 0 {
		for _, n := range []string{"P2", "P3"} {
			if i := s.IndexOf(app.IDByName(n)); i >= 0 && i > i4 {
				t.Errorf("%s scheduled after its successor P4", n)
			}
		}
	}
}

// TestSuffixFTSSAfterFault: completing the Fig. 1 application after P1
// recovered from the single fault (budget exhausted) still schedules the
// soft processes when time allows.
func TestSuffixFTSSAfterFault(t *testing.T) {
	app := apps.Fig1()
	p1 := app.IDByName("P1")
	// P1 re-executed, completing at 150 (worst case); no faults remain.
	suffix, err := SuffixFTSS(app, []model.ProcessID{p1}, nil, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(suffix) == 0 {
		t.Fatal("suffix empty; soft processes should still fit")
	}
	// Makespan from 150: both soft fit (150 + 70 + 80 = 300 <= 300).
	if !schedule.Schedulable(app, suffix, 150, 0) {
		t.Error("suffix must be schedulable")
	}
	// Late start: only one soft process fits; the scheduler must drop.
	suffix2, err := SuffixFTSS(app, []model.ProcessID{p1}, nil, 240, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(suffix2) > 1 {
		t.Errorf("from t=240 only one soft process fits, got %d entries", len(suffix2))
	}
}

// TestFTSSHardOnlyEDF: with no soft processes, FTSS degenerates to
// earliest-deadline-first among ready hard processes.
func TestFTSSHardOnlyEDF(t *testing.T) {
	a := model.NewApplication("edf", 1000, 1, 5)
	h1 := a.AddProcess(model.Process{Name: "H1", Kind: model.Hard, BCET: 10, AET: 10, WCET: 10, Deadline: 900})
	h2 := a.AddProcess(model.Process{Name: "H2", Kind: model.Hard, BCET: 10, AET: 10, WCET: 10, Deadline: 100})
	h3 := a.AddProcess(model.Process{Name: "H3", Kind: model.Hard, BCET: 10, AET: 10, WCET: 10, Deadline: 500})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := FTSS(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.ProcessID{h2, h3, h1}
	for i, id := range want {
		if s.Entries[i].Proc != id {
			t.Fatalf("order = %v, want EDF [H2 H3 H1]", names(a, s.Entries))
		}
	}
	for _, e := range s.Entries {
		if e.Recoveries != 1 {
			t.Errorf("hard process %d recoveries = %d, want 1", e.Proc, e.Recoveries)
		}
	}
}

// TestFTSSDropsWorthlessSoft: a soft process whose utility is already zero
// at its earliest completion is dropped outright.
func TestFTSSDropsWorthlessSoft(t *testing.T) {
	a := model.NewApplication("wz", 1000, 0, 5)
	slow := a.AddProcess(model.Process{Name: "Slow", Kind: model.Soft, BCET: 200, AET: 300, WCET: 400,
		Utility: utility.MustStep([]model.Time{100}, []float64{50})}) // worthless after 100
	good := a.AddProcess(model.Process{Name: "Good", Kind: model.Soft, BCET: 10, AET: 20, WCET: 30,
		Utility: utility.MustStep([]model.Time{500}, []float64{10})})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := FTSS(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(slow) {
		t.Errorf("worthless process kept: %s", s.Format(a))
	}
	if !s.Contains(good) {
		t.Errorf("valuable process dropped: %s", s.Format(a))
	}
}

// TestFTSSReleaseRespected: releases from hyper-period merging delay starts.
func TestFTSSReleaseRespected(t *testing.T) {
	a := model.NewApplication("rel", 1000, 0, 5)
	a.AddProcess(model.Process{Name: "Late", Kind: model.Hard, BCET: 10, AET: 10, WCET: 10,
		Deadline: 700, Release: 600})
	a.AddProcess(model.Process{Name: "Early", Kind: model.Hard, BCET: 10, AET: 10, WCET: 10, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := FTSS(a)
	if err != nil {
		t.Fatal(err)
	}
	c := schedule.WorstCaseCompletions(a, s.Entries, 0, 0)
	li := s.IndexOf(a.IDByName("Late"))
	if c.Start[li] < 600 {
		t.Errorf("Late started at %d before its release 600", c.Start[li])
	}
}
