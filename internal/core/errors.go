package core

import (
	"errors"
	"fmt"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// UnschedulableError is the typed form of ErrUnschedulable: synthesis could
// not guarantee the hard deadlines, and the error names the constraint that
// broke first. It matches errors.Is(err, ErrUnschedulable), so existing
// sentinel checks keep working; errors.As recovers the detail.
type UnschedulableError struct {
	// Process is the hard process whose deadline cannot be met, or
	// model.NoProcess when the application period itself is exceeded.
	Process model.ProcessID
	// Deadline is the violated bound: the process deadline, or the period.
	Deadline Time
	// WorstCase is the offending worst-case completion time.
	WorstCase Time
}

// Error implements error.
func (e *UnschedulableError) Error() string {
	if e.Process == model.NoProcess {
		return fmt.Sprintf("core: application is not schedulable: worst-case makespan %d exceeds period %d",
			e.WorstCase, e.Deadline)
	}
	return fmt.Sprintf("core: application is not schedulable: process #%d misses deadline %d (worst-case completion %d)",
		e.Process, e.Deadline, e.WorstCase)
}

// Unwrap makes errors.Is(err, ErrUnschedulable) hold for the typed error.
func (e *UnschedulableError) Unwrap() error { return ErrUnschedulable }

// unschedulableFrom lifts a schedule-level schedulability diagnosis into
// the typed core error. A nil or unrecognised cause degrades to the bare
// sentinel (wrapped, so the cause's text is kept).
func unschedulableFrom(cause error) error {
	var se *schedule.UnschedulableError
	if errors.As(cause, &se) {
		return &UnschedulableError{Process: se.Proc, Deadline: se.Bound, WorstCase: se.Completion}
	}
	if cause != nil {
		return fmt.Errorf("%w: %v", ErrUnschedulable, cause)
	}
	return ErrUnschedulable
}
