package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/obs"
)

// unschedulableApp is a single hard process whose deadline cannot absorb
// k = 2 re-executions.
func unschedulableApp(t *testing.T) *model.Application {
	t.Helper()
	a := model.NewApplication("un", 1000, 2, 10)
	a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestUnschedulableErrorTyped: synthesis failures keep matching the
// sentinel via errors.Is and additionally carry the offending process,
// its deadline and the worst-case completion via errors.As.
func TestUnschedulableErrorTyped(t *testing.T) {
	app := unschedulableApp(t)
	for name, synth := range map[string]func() error{
		"FTSS": func() error { _, err := FTSS(app); return err },
		"FTQS": func() error { _, err := FTQS(app, FTQSOptions{M: 4}); return err },
	} {
		err := synth()
		if err == nil {
			t.Fatalf("%s: expected unschedulable", name)
		}
		if !errors.Is(err, ErrUnschedulable) {
			t.Errorf("%s: errors.Is(err, ErrUnschedulable) = false for %v", name, err)
		}
		var ue *UnschedulableError
		if !errors.As(err, &ue) {
			t.Fatalf("%s: error %v does not carry *UnschedulableError", name, err)
		}
		if ue.Process != app.IDByName("H") {
			t.Errorf("%s: offending process = %d, want %d", name, ue.Process, app.IDByName("H"))
		}
		if ue.Deadline != 100 {
			t.Errorf("%s: deadline = %d, want 100", name, ue.Deadline)
		}
		// 3 executions + 2 recoveries: 3*80 + 2*10 = 260.
		if ue.WorstCase <= ue.Deadline {
			t.Errorf("%s: worst-case completion %d does not exceed the deadline", name, ue.WorstCase)
		}
	}
}

// TestFTQSOptionsValidate: the zero value validates to the documented
// defaults; impossible values are rejected.
func TestFTQSOptionsValidate(t *testing.T) {
	got, err := FTQSOptions{}.Validate()
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	want := FTQSOptions{}.withDefaults()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Validate() = %+v, want defaults %+v", got, want)
	}
	for name, o := range map[string]FTQSOptions{
		"negative sweep":   {SweepSamples: -1},
		"negative eval":    {EvalScenarios: -2},
		"negative workers": {Workers: -1},
		"NaN gain":         {MinGain: math.NaN()},
		"Inf gain":         {MinGain: math.Inf(1)},
	} {
		if _, err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFTQSContextCancellation: a cancelled context aborts synthesis with
// ctx.Err(), both when cancelled up front and mid-run, without leaking the
// speculative synthesis goroutines.
func TestFTQSContextCancellation(t *testing.T) {
	app := apps.CruiseController()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FTQSContext(ctx, app, FTQSOptions{M: 64, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	// Large M so the synthesis is still running when cancel fires on any
	// host; a fast host finishing early returns a valid tree, which is
	// also correct — only an error other than ctx.Err() is a failure.
	tree, err := FTQSContext(ctx, app, FTQSOptions{M: 100000, Workers: 4})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v", err)
	}
	if err == nil && tree == nil {
		t.Fatal("nil tree without error")
	}

	// The deferred synthesizer close must have reaped workers and futures.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestFTQSSinkEvents: a live sink observes a consistent synthesis picture
// and never changes the resulting tree.
func TestFTQSSinkEvents(t *testing.T) {
	app := apps.Fig8()
	plain, err := FTQS(app, FTQSOptions{M: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	tree, err := FTQS(app, FTQSOptions{M: 16, Workers: 2, Sink: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree.Nodes, plain.Nodes) || !reflect.DeepEqual(tree.Arcs, plain.Arcs) {
		t.Error("sink changed the synthesised tree")
	}

	expanded := m.Counter(obs.FTQSNodesExpanded)
	if expanded == 0 {
		t.Error("no node expansions recorded")
	}
	if hits, misses := m.Counter(obs.FTQSPrefetchHits), m.Counter(obs.FTQSPrefetchMisses); hits+misses != expanded {
		t.Errorf("prefetch hits(%d)+misses(%d) != expansions(%d)", hits, misses, expanded)
	}
	if m.Counter(obs.FTQSMemoHits)+m.Counter(obs.FTQSMemoMisses) == 0 {
		t.Error("no memoisation traffic recorded")
	}
	// 16 nodes were attached (15 beyond the root), so at least that many
	// candidates were kept.
	if kept := m.Counter(obs.FTQSCandidatesKept); kept < int64(len(tree.Nodes)-1) {
		t.Errorf("candidates kept = %d, want >= %d", kept, len(tree.Nodes)-1)
	}
	if m.Counter(obs.FTQSWorkerBusyNanos) == 0 {
		t.Error("no worker busy time recorded")
	}
}
