package core

import (
	"fmt"
	"sort"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// ArcKind distinguishes why a schedule switch is taken (paper Fig. 5: the
// no-fault group-1 switches are driven by completion times, the group-2..4
// switches by fault occurrences).
type ArcKind int

const (
	// Completion arcs are evaluated when the guarded entry completes
	// without a fault having hit it: the child re-optimises the remaining
	// order for the observed completion time.
	Completion ArcKind = iota
	// FaultRecovered arcs are evaluated when the guarded entry was hit by
	// a fault and recovered by re-execution: the child re-optimises the
	// remainder with one unit of fault budget consumed.
	FaultRecovered
	// FaultDropped arcs are evaluated when the guarded entry (a soft
	// process without recovery budget) was hit by a fault and dropped:
	// the child's suffix was synthesised with the entry in the dropped
	// set, so downstream stale-value decisions are consistent.
	FaultDropped
)

// String implements fmt.Stringer.
func (k ArcKind) String() string {
	switch k {
	case Completion:
		return "completion"
	case FaultRecovered:
		return "fault-recovered"
	case FaultDropped:
		return "fault-dropped"
	default:
		return fmt.Sprintf("ArcKind(%d)", int(k))
	}
}

// NodeID addresses a schedule within its Tree: the index into Tree.Nodes.
// The root is always NodeID 0.
type NodeID int32

// NoNode is the sentinel for "no node" (e.g. the root's parent).
const NoNode NodeID = -1

// Arc is a guarded schedule switch: when entry Pos of the owning node's
// schedule reaches outcome Kind with an observed completion time
// tc ∈ [Lo, Hi], the online scheduler switches to Child, which shares the
// executed prefix and continues with its own suffix.
type Arc struct {
	// Pos is the index of the guarded entry in the owning node's
	// schedule.
	Pos int
	// Kind selects the entry outcome the guard applies to.
	Kind ArcKind
	// Lo and Hi bound the observed completion time of the entry
	// (inclusive). Hi is utility.Infinity-free: it is always a concrete
	// bound, at most the child's safety bound t_i^c (paper §5.1).
	Lo, Hi Time
	// Gain is the mean expected-utility improvement of the child over the
	// parent across the guard interval; used to order overlapping arcs.
	Gain float64
	// Child is the schedule to switch to.
	Child NodeID
}

// Node is one schedule of the quasi-static tree. Nodes are plain values
// stored contiguously in Tree.Nodes and addressed by NodeID; their outgoing
// arcs occupy the dense range [ArcStart, ArcEnd) of Tree.Arcs.
type Node struct {
	// Schedule is the complete f-schedule (from time zero); for non-root
	// nodes the entries before SwitchPos coincide with the parent's.
	Schedule *schedule.FSchedule
	// SwitchPos is the index of the first entry that may differ from the
	// parent (0 for the root).
	SwitchPos int
	// KRem is the number of faults the node's suffix analysis tolerates
	// from its switch point: K for the root and completion children, one
	// less than the parent for fault children.
	KRem int
	// Depth is the layer of the node (root = 0).
	Depth int
	// DroppedOnFault marks, for a FaultDropped child, the entry that the
	// suffix synthesis assumed dropped (model.NoProcess otherwise).
	DroppedOnFault model.ProcessID
	// Parent is NoNode for the root.
	Parent NodeID
	// ArcStart and ArcEnd delimit the node's outgoing arcs in Tree.Arcs.
	// Within the range, arcs are grouped by (Pos, Kind) ascending and
	// ordered by descending Gain inside a group — the invariant Next's
	// binary search and the runtime dispatch compiler rely on.
	ArcStart, ArcEnd int32
}

// Tree is the fault-tolerant quasi-static tree Φ produced by FTQS, stored
// as two flat arenas: Nodes (root first, addressed by NodeID) and Arcs
// (dense per-node ranges). A tree is therefore trivially shareable across
// goroutines, cheap to serialise, and walkable without chasing pointers;
// see internal/runtime for the compiled dispatch layer built on top of it.
type Tree struct {
	// App is the application the tree was synthesised for.
	App *model.Application
	// Nodes lists every schedule in the tree, root first.
	Nodes []Node
	// Arcs is the arc arena; node i owns Arcs[Nodes[i].ArcStart:Nodes[i].ArcEnd].
	Arcs []Arc
}

// Size returns the number of schedules in the tree (the paper's "nodes"
// column in Table 1; 1 means the tree degenerates to the FTSS schedule).
func (t *Tree) Size() int { return len(t.Nodes) }

// Root returns the node the online scheduler starts with. The pointer is
// valid as long as Tree.Nodes is not reallocated.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// Node returns the node with the given ID.
func (t *Tree) Node(id NodeID) *Node { return &t.Nodes[id] }

// NodeArcs returns the outgoing arcs of a node: a subslice of the arc
// arena, which must not be appended to.
func (t *Tree) NodeArcs(id NodeID) []Arc {
	n := &t.Nodes[id]
	return t.Arcs[n.ArcStart:n.ArcEnd:n.ArcEnd]
}

// EntryOutcome describes what happened to a schedule entry at run time; the
// online scheduler passes it to Next to select the applicable arcs.
type EntryOutcome int

const (
	// CompletedOK: the entry completed, possibly after earlier entries
	// consumed fault budget, but this entry itself was not hit.
	CompletedOK EntryOutcome = iota
	// CompletedRecovered: the entry was hit by one or more faults and
	// completed via re-execution.
	CompletedRecovered
	// DroppedByFault: the entry was hit and abandoned (soft process with
	// exhausted or zero recovery budget).
	DroppedByFault
)

// Next returns the node to continue with after entry pos of node id
// completes (or is abandoned) at time tc with the given outcome. It returns
// id itself when no arc guard matches — staying with the current schedule
// is always safe because its recovery slack covers any remaining fault
// pattern.
//
// A recovered entry prefers FaultRecovered arcs and falls back to
// Completion arcs (both assume the entry's outputs exist; switching is safe
// because the child tolerates at least the faults that can still occur). A
// dropped entry matches only FaultDropped arcs, whose suffixes were
// synthesised with consistent stale-value decisions.
func (t *Tree) Next(id NodeID, pos int, tc Time, outcome EntryOutcome) NodeID {
	switch outcome {
	case CompletedOK:
		if c := t.match(id, pos, Completion, tc); c != NoNode {
			return c
		}
	case CompletedRecovered:
		if c := t.match(id, pos, FaultRecovered, tc); c != NoNode {
			return c
		}
		if c := t.match(id, pos, Completion, tc); c != NoNode {
			return c
		}
	case DroppedByFault:
		if c := t.match(id, pos, FaultDropped, tc); c != NoNode {
			return c
		}
	}
	return id
}

// match finds the best arc of node id guarding (pos, kind) whose interval
// contains tc, or NoNode. It binary-searches the node's arc range for the
// start of the (pos, kind) group — the range is sorted by (Pos, Kind) — and
// takes the first containing arc, which has the highest gain because groups
// are gain-descending (overlapping guards from different children are
// resolved in favour of the largest expected improvement).
func (t *Tree) match(id NodeID, pos int, kind ArcKind, tc Time) NodeID {
	n := &t.Nodes[id]
	arcs := t.Arcs[n.ArcStart:n.ArcEnd]
	lo, hi := 0, len(arcs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		a := &arcs[mid]
		if a.Pos < pos || (a.Pos == pos && a.Kind < kind) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(arcs); lo++ {
		a := &arcs[lo]
		if a.Pos != pos || a.Kind != kind {
			break
		}
		if tc >= a.Lo && tc <= a.Hi {
			return a.Child
		}
	}
	return NoNode
}

// SortArcs orders a node's arcs into the canonical arena order: ascending
// (Pos, Kind), descending Gain within a group, stable. Next's binary
// search and the runtime dispatch compiler rely on it; loaders must apply
// it to externally supplied arcs (a no-op for anything this library
// wrote).
func SortArcs(arcs []Arc) []Arc {
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].Pos != arcs[j].Pos {
			return arcs[i].Pos < arcs[j].Pos
		}
		if arcs[i].Kind != arcs[j].Kind {
			return arcs[i].Kind < arcs[j].Kind
		}
		return arcs[i].Gain > arcs[j].Gain
	})
	return arcs
}

// Format renders the tree for humans: one line per node with its schedule,
// plus one line per arc with its guard.
func (t *Tree) Format() string {
	var sb strings.Builder
	for id := range t.Nodes {
		n := &t.Nodes[id]
		fmt.Fprintf(&sb, "S%-3d depth=%d kRem=%d  %s\n", id, n.Depth, n.KRem, n.Schedule.Format(t.App))
		for _, a := range t.NodeArcs(NodeID(id)) {
			name := t.App.Proc(n.Schedule.Entries[a.Pos].Proc).Name
			fmt.Fprintf(&sb, "     after %s (%s) tc in [%d,%d] -> S%d (gain %.2f)\n",
				name, a.Kind, a.Lo, a.Hi, a.Child, a.Gain)
		}
	}
	return sb.String()
}
