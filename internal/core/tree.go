package core

import (
	"fmt"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// ArcKind distinguishes why a schedule switch is taken (paper Fig. 5: the
// no-fault group-1 switches are driven by completion times, the group-2..4
// switches by fault occurrences).
type ArcKind int

const (
	// Completion arcs are evaluated when the guarded entry completes
	// without a fault having hit it: the child re-optimises the remaining
	// order for the observed completion time.
	Completion ArcKind = iota
	// FaultRecovered arcs are evaluated when the guarded entry was hit by
	// a fault and recovered by re-execution: the child re-optimises the
	// remainder with one unit of fault budget consumed.
	FaultRecovered
	// FaultDropped arcs are evaluated when the guarded entry (a soft
	// process without recovery budget) was hit by a fault and dropped:
	// the child's suffix was synthesised with the entry in the dropped
	// set, so downstream stale-value decisions are consistent.
	FaultDropped
)

// String implements fmt.Stringer.
func (k ArcKind) String() string {
	switch k {
	case Completion:
		return "completion"
	case FaultRecovered:
		return "fault-recovered"
	case FaultDropped:
		return "fault-dropped"
	default:
		return fmt.Sprintf("ArcKind(%d)", int(k))
	}
}

// Arc is a guarded schedule switch: when entry Pos of the owning node's
// schedule reaches outcome Kind with an observed completion time
// tc ∈ [Lo, Hi], the online scheduler switches to Child, which shares the
// executed prefix and continues with its own suffix.
type Arc struct {
	// Pos is the index of the guarded entry in the owning node's
	// schedule.
	Pos int
	// Kind selects the entry outcome the guard applies to.
	Kind ArcKind
	// Lo and Hi bound the observed completion time of the entry
	// (inclusive). Hi is utility.Infinity-free: it is always a concrete
	// bound, at most the child's safety bound t_i^c (paper §5.1).
	Lo, Hi Time
	// Gain is the mean expected-utility improvement of the child over the
	// parent across the guard interval; used to order overlapping arcs.
	Gain float64
	// Child is the schedule to switch to.
	Child *Node
}

// Node is one schedule of the quasi-static tree.
type Node struct {
	// ID is the node's index in Tree.Nodes; the root has ID 0.
	ID int
	// Schedule is the complete f-schedule (from time zero); for non-root
	// nodes the entries before SwitchPos coincide with the parent's.
	Schedule *schedule.FSchedule
	// SwitchPos is the index of the first entry that may differ from the
	// parent (0 for the root).
	SwitchPos int
	// KRem is the number of faults the node's suffix analysis tolerates
	// from its switch point: K for the root and completion children, one
	// less than the parent for fault children.
	KRem int
	// Depth is the layer of the node (root = 0).
	Depth int
	// DroppedOnFault marks, for a FaultDropped child, the entry that the
	// suffix synthesis assumed dropped (model.NoProcess otherwise).
	DroppedOnFault model.ProcessID
	// Parent is nil for the root.
	Parent *Node
	// Arcs are the outgoing guarded switches, grouped by Pos and sorted
	// by descending Gain within a (Pos, Kind) group.
	Arcs []Arc

	expanded bool
	// dist caches simDist (the Kendall distance to the parent's suffix);
	// only the FTQS coordinator goroutine touches it.
	dist      int
	distValid bool
}

// Tree is the fault-tolerant quasi-static tree Φ produced by FTQS.
type Tree struct {
	// App is the application the tree was synthesised for.
	App *model.Application
	// Root is the f-schedule the online scheduler starts with.
	Root *Node
	// Nodes lists every schedule in the tree, root first.
	Nodes []*Node
}

// Size returns the number of schedules in the tree (the paper's "nodes"
// column in Table 1; 1 means the tree degenerates to the FTSS schedule).
func (t *Tree) Size() int { return len(t.Nodes) }

// EntryOutcome describes what happened to a schedule entry at run time; the
// online scheduler passes it to Next to select the applicable arcs.
type EntryOutcome int

const (
	// CompletedOK: the entry completed, possibly after earlier entries
	// consumed fault budget, but this entry itself was not hit.
	CompletedOK EntryOutcome = iota
	// CompletedRecovered: the entry was hit by one or more faults and
	// completed via re-execution.
	CompletedRecovered
	// DroppedByFault: the entry was hit and abandoned (soft process with
	// exhausted or zero recovery budget).
	DroppedByFault
)

// Next returns the node to continue with after entry pos of n completes (or
// is abandoned) at time tc with the given outcome. It returns n itself when
// no arc guard matches — staying with the current schedule is always safe
// because its recovery slack covers any remaining fault pattern.
//
// A recovered entry prefers FaultRecovered arcs and falls back to
// Completion arcs (both assume the entry's outputs exist; switching is safe
// because the child tolerates at least the faults that can still occur). A
// dropped entry matches only FaultDropped arcs, whose suffixes were
// synthesised with consistent stale-value decisions.
func (n *Node) Next(pos int, tc Time, outcome EntryOutcome) *Node {
	var kinds []ArcKind
	switch outcome {
	case CompletedOK:
		kinds = []ArcKind{Completion}
	case CompletedRecovered:
		kinds = []ArcKind{FaultRecovered, Completion}
	case DroppedByFault:
		kinds = []ArcKind{FaultDropped}
	}
	for _, k := range kinds {
		bestGain := 0.0
		var best *Node
		for i := range n.Arcs {
			a := &n.Arcs[i]
			if a.Pos != pos || a.Kind != k {
				continue
			}
			if tc < a.Lo || tc > a.Hi {
				continue
			}
			if best == nil || a.Gain > bestGain {
				best, bestGain = a.Child, a.Gain
			}
		}
		if best != nil {
			return best
		}
	}
	return n
}

// Format renders the tree for humans: one line per node with its schedule,
// plus one line per arc with its guard.
func (t *Tree) Format() string {
	var sb strings.Builder
	for _, n := range t.Nodes {
		fmt.Fprintf(&sb, "S%-3d depth=%d kRem=%d  %s\n", n.ID, n.Depth, n.KRem, n.Schedule.Format(t.App))
		for _, a := range n.Arcs {
			name := t.App.Proc(n.Schedule.Entries[a.Pos].Proc).Name
			fmt.Fprintf(&sb, "     after %s (%s) tc in [%d,%d] -> S%d (gain %.2f)\n",
				name, a.Kind, a.Lo, a.Hi, a.Child.ID, a.Gain)
		}
	}
	return sb.String()
}
