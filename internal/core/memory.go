package core

// MemoryFootprint estimates the bytes an embedded deployment needs to
// store the quasi-static tree: the motivation behind limiting the tree to
// M schedules in the paper's Table 1 ("Less nodes in the tree means that
// less memory is needed to store them").
//
// The estimate assumes a compact table encoding rather than Go's in-memory
// representation: each schedule entry is a (process id, recoveries) pair
// (3 bytes), each node carries its entry table plus a small header (switch
// position, fault budget, dropped-on-fault marker: 6 bytes), and each arc
// is a (position, kind, lo, hi, child) record (2 + 1 + 4 + 4 + 2 = 13
// bytes, with 32-bit completion times). Shared prefixes are charged to
// every node, matching the flat tables an online scheduler would index
// directly.
func (t *Tree) MemoryFootprint() int {
	const (
		entryBytes  = 3
		headerBytes = 6
		arcBytes    = 13
	)
	total := 0
	for i := range t.Nodes {
		n := &t.Nodes[i]
		total += headerBytes + entryBytes*len(n.Schedule.Entries) + arcBytes*int(n.ArcEnd-n.ArcStart)
	}
	return total
}
