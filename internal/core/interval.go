package core

import (
	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// This file implements interval partitioning (paper §5.1): for a candidate
// sub-schedule SS_i attached after process P_i of a parent schedule SS_P,
// all possible (integer) completion times of P_i are traced and the
// expected utilities produced by SS_P and SS_i are compared. The guard of
// the switch arc is the set of completion times where SS_i is both safe
// (hard deadlines hold with the remaining fault budget) and strictly
// better. Beyond the safety bound t_i^c the parent schedule must be kept.

// suffixEval is a lightweight expected-utility evaluator for a fixed suffix
// under fixed stale-value assumptions. It exists because interval
// partitioning evaluates the same suffix at hundreds of start times; the
// stale coefficients depend only on the dropped set, so they are computed
// once.
//
// With scenarios == 1 the evaluator reproduces the paper's point estimate:
// every process takes exactly its average execution time. With
// scenarios > 1 it averages over a small deterministic quadrature of
// uniform execution times instead. The point estimate systematically
// overvalues switching near guard boundaries (the utility staircases make
// E[U(completion)] < U(E[completion])); the quadrature removes that bias.
// Crucially, the duration sample of a process depends only on the process
// and the sample index — common random numbers — so comparing two
// evaluators is a paired comparison with no sampling noise between them.
type suffixEval struct {
	app     *model.Application
	alpha   []float64
	entries []schedule.Entry
	// durs[j][i] is the duration of entries[i] in quadrature sample j.
	durs [][]Time
}

// newSuffixEval prepares an evaluator for the given suffix entries. dropped
// marks the processes assumed dropped in this scenario (everything not
// dropped is assumed to execute, which is exactly the assumption under
// which the suffix was synthesised). scenarios selects the quadrature size
// (1 = paper-faithful average execution times).
func newSuffixEval(app *model.Application, entries []schedule.Entry, dropped []bool, scenarios int) *suffixEval {
	if scenarios < 1 {
		scenarios = 1
	}
	e := &suffixEval{app: app, alpha: staleAlpha(app, dropped), entries: entries}
	// The rows are wall-clock attempt times, so the recovery model's
	// per-attempt checkpoint overheads are baked in at construction
	// (identity under re-execution and restart) and the evaluation loop
	// stays a plain sum.
	rec := app.Recovery()
	e.durs = make([][]Time, scenarios)
	for j := range e.durs {
		row := make([]Time, len(entries))
		for i, en := range entries {
			p := app.Proc(en.Proc)
			if scenarios == 1 {
				row[i] = rec.AttemptTime(p.AET)
				continue
			}
			row[i] = rec.AttemptTime(p.BCET + Time(quadFrac(j, scenarios, en.Proc)*float64(p.WCET-p.BCET)+0.5))
		}
		e.durs[j] = row
	}
	return e
}

// quadFrac returns the duration fraction of sample j for a process: a
// low-discrepancy stratified point, rotated per process by the golden
// ratio so durations decorrelate across processes while remaining
// identical for the same process in any evaluator.
func quadFrac(j, scenarios int, p model.ProcessID) float64 {
	const phi = 0.618033988749895
	f := (float64(j)+0.5)/float64(scenarios) + phi*float64(p+1)
	return f - float64(int(f))
}

// from returns the expected utility of the suffix when its first entry
// starts at time t (no further faults), averaged over the quadrature.
func (e *suffixEval) from(t Time) float64 {
	var total float64
	for _, row := range e.durs {
		now := t
		for i, en := range e.entries {
			p := e.app.Proc(en.Proc)
			s := now
			if p.Release > s {
				s = p.Release
			}
			now = s + row[i]
			if p.Kind == model.Soft {
				total += e.alpha[en.Proc] * e.app.UtilityOf(en.Proc).Value(now)
			}
		}
	}
	return total / float64(len(e.durs))
}

// horizon returns the latest time at which the suffix utility can still
// change: past it, every utility function has gone flat.
func (e *suffixEval) horizon() Time {
	var h Time
	for _, en := range e.entries {
		p := e.app.Proc(en.Proc)
		if p.Kind != model.Soft {
			continue
		}
		if hh := e.app.UtilityOf(en.Proc).Horizon(); hh > h {
			h = hh
		}
	}
	return h
}

// maxSafeStart returns the largest start time t in [lo, hi] for which the
// suffix remains schedulable with k remaining faults, or lo-1 when even lo
// is unsafe. Schedulability is monotone in the start time (starting later
// never helps), so binary search applies.
func maxSafeStart(app *model.Application, entries []schedule.Entry, lo, hi Time, k int) Time {
	if !schedule.Schedulable(app, entries, lo, k) {
		return lo - 1
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if schedule.Schedulable(app, entries, mid, k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// interval is a candidate guard [Lo, Hi] with its mean utility gain.
type interval struct {
	Lo, Hi Time
	Gain   float64
}

// partition sweeps completion times t ∈ [lo, hi] and returns the maximal
// intervals where win(t) holds, together with the mean gain(t) over each
// interval. The sweep uses at most samples probe points; boundaries between
// differing neighbouring probes are refined by bisection on win, so guards
// are exact when win is a union of intervals wider than the probe stride
// and conservative otherwise.
func partition(lo, hi Time, samples int, win func(Time) bool, gain func(Time) float64) []interval {
	if hi < lo {
		return nil
	}
	if samples < 2 {
		samples = 2
	}
	stride := (hi - lo) / Time(samples-1)
	if stride < 1 {
		stride = 1
	}
	var probes []Time
	for t := lo; t <= hi; t += stride {
		probes = append(probes, t)
	}
	if probes[len(probes)-1] != hi {
		probes = append(probes, hi)
	}

	// refine finds the exact boundary between a winning and a losing
	// probe by bisection on win.
	refine := func(winT, loseT Time) Time {
		for {
			var a, b Time
			if winT < loseT {
				a, b = winT, loseT
			} else {
				a, b = loseT, winT
			}
			if b-a <= 1 {
				return winT
			}
			mid := (a + b) / 2
			if win(mid) == win(winT) {
				winT = mid
			} else {
				loseT = mid
			}
		}
	}

	var out []interval
	var cur *interval
	var gainSum float64
	var gainN int
	flush := func() {
		if cur != nil {
			if gainN > 0 {
				cur.Gain = gainSum / float64(gainN)
			}
			out = append(out, *cur)
			cur = nil
			gainSum, gainN = 0, 0
		}
	}
	prevWin := false
	var prevT Time
	for i, t := range probes {
		w := win(t)
		switch {
		case w && cur == nil:
			start := t
			if i > 0 && !prevWin {
				start = refine(t, prevT)
			}
			cur = &interval{Lo: start, Hi: t}
			gainSum += gain(t)
			gainN++
		case w:
			cur.Hi = t
			gainSum += gain(t)
			gainN++
		case !w && cur != nil:
			cur.Hi = refine(prevT, t)
			flush()
		}
		prevWin, prevT = w, t
	}
	flush()
	return out
}

// partitionChild runs interval partitioning for one candidate child. It
// compares the parent's remaining entries (after pos) against the child's
// suffix for every completion time of the guarded entry in [lo, hi], and
// returns the arcs to attach. kRem is the fault budget of the child's
// suffix analysis; the parent evaluator and child evaluator carry the
// dropped-set assumptions of their respective scenarios.
func partitionChild(app *model.Application, parentEval, childEval *suffixEval,
	childSuffix []schedule.Entry, lo, hi Time, kRem, samples int) []interval {

	safeMax := maxSafeStart(app, childSuffix, lo, hi, kRem)
	if safeMax < lo {
		return nil
	}
	// Beyond both horizons the utilities are flat; no need to sweep on.
	if h := maxTime(parentEval.horizon(), childEval.horizon()); hi > h && h >= lo {
		hi = h
	}
	if hi > safeMax {
		hi = safeMax
	}
	win := func(t Time) bool { return childEval.from(t) > parentEval.from(t) }
	gainF := func(t Time) float64 { return childEval.from(t) - parentEval.from(t) }
	return partition(lo, hi, samples, win, gainF)
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// dedupeSortArcs orders a node's arcs into the canonical order; it is the
// synthesis-side name for SortArcs.
func dedupeSortArcs(arcs []Arc) []Arc { return SortArcs(arcs) }
