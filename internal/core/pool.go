package core

import "sync"

// pool is the bounded worker pool behind parallel FTQS synthesis: a fixed
// set of goroutines consuming closures from an unbuffered channel. Tasks
// are leaves of the synthesis — they never submit further tasks — so a
// submitter blocked in submit always unblocks once a worker finishes its
// current task; the pool cannot deadlock.
type pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// newPool starts workers goroutines. workers must be >= 1.
func newPool(workers int) *pool {
	p := &pool{tasks: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// submit hands f to a worker, blocking until one accepts it.
func (p *pool) submit(f func()) { p.tasks <- f }

// close shuts the pool down after all accepted tasks have finished. No
// submit may be in flight or follow.
func (p *pool) close() {
	close(p.tasks)
	p.wg.Wait()
}
