package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

// TestWireDeterminism is the wire-vs-library contract: for every fixture
// application, Monte-Carlo statistics and certification reports served by
// ftserved are identical — after the JSON round-trip — to the in-process
// results, for any server worker count, and whether the tree was a cache
// hit or compiled for the request. MCStats carries no slices, so == is
// full bit-identity; the certify report's fault vector needs DeepEqual.
func TestWireDeterminism(t *testing.T) {
	fixtures := []struct {
		name string
		app  *model.Application
		m    int
		mc   serveapi.MCConfigJSON
		cert *serveapi.CertifyConfigJSON // nil skips certification
	}{
		{
			name: "fig1", app: apps.Fig1(), m: 8,
			mc:   serveapi.MCConfigJSON{Scenarios: 4000, Faults: 1, Seed: 42},
			cert: &serveapi.CertifyConfigJSON{MaxFaults: 1},
		},
		{
			name: "fig8", app: apps.Fig8(), m: 6,
			mc:   serveapi.MCConfigJSON{Scenarios: 4000, Faults: 1, Seed: 7},
			cert: &serveapi.CertifyConfigJSON{MaxFaults: 1},
		},
		{
			name: "cruise-controller", app: apps.CruiseController(), m: 4,
			mc: serveapi.MCConfigJSON{Scenarios: 1000, Faults: 1, Seed: 1},
			// Exhaustive certification of the 32-process controller is a
			// benchmark, not a unit test; eval coverage suffices here.
		},
	}

	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			// In-process reference, computed once.
			tree, err := core.FTQS(fx.app, core.FTQSOptions{M: fx.m})
			if err != nil {
				t.Fatalf("FTQS: %v", err)
			}
			wantStats, err := sim.MonteCarlo(tree, sim.MCConfig{
				Scenarios: fx.mc.Scenarios, Faults: fx.mc.Faults, Seed: fx.mc.Seed,
			})
			if err != nil {
				t.Fatalf("MonteCarlo: %v", err)
			}
			var wantReport certify.Report
			if fx.cert != nil {
				wantReport, err = certify.Certify(tree, certify.Config{MaxFaults: fx.cert.MaxFaults})
				if err != nil {
					t.Fatalf("Certify: %v", err)
				}
			}

			for _, workers := range []int{1, 3} {
				for _, mode := range []string{"miss", "hit"} {
					t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
						_, ts := newTestServer(t, Config{})
						ref := serveapi.TreeRef{App: appJSON(t, fx.app),
							Options: &serveapi.FTQSOptionsJSON{M: fx.m}}
						if mode == "hit" {
							// Prime the cache, then address by key only.
							syn := synthesize(t, ts.URL, fx.app, serveapi.FTQSOptionsJSON{M: fx.m})
							ref = serveapi.TreeRef{TreeKey: syn.TreeKey}
						}

						mc := fx.mc
						mc.Workers = workers
						var eval serveapi.EvalResponse
						if code := post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{
							Format: serveapi.FormatV1, TreeRef: ref, Config: mc,
						}, &eval); code != http.StatusOK {
							t.Fatalf("eval: status %d", code)
						}
						if eval.CacheHit != (mode == "hit") {
							t.Fatalf("cache hit = %v in %s mode", eval.CacheHit, mode)
						}
						if got := eval.Stats.Stats(); got != wantStats {
							t.Fatalf("served stats diverge from in-process:\nserved = %+v\nlocal  = %+v", got, wantStats)
						}

						if fx.cert == nil {
							return
						}
						cert := *fx.cert
						cert.Workers = workers
						var cr serveapi.CertifyResponse
						if code := post(t, ts.URL+"/v1/certify", "", serveapi.CertifyRequest{
							Format: serveapi.FormatV1, TreeRef: ref, Config: cert,
						}, &cr); code != http.StatusOK {
							t.Fatalf("certify: status %d", code)
						}
						if !cr.Certified {
							t.Fatalf("served certification failed: %+v", cr)
						}
						if got := cr.Report.Report(); !reflect.DeepEqual(got, wantReport) {
							t.Fatalf("served report diverges from in-process:\nserved = %+v\nlocal  = %+v", got, wantReport)
						}
					})
				}
			}
		})
	}
}
