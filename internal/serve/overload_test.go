package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
)

// overloadServer builds a server with a fake clock, a tight rate limit
// (so rejections are easy to provoke) and shedding enabled at 3
// rejections per 10s window (critical at 12).
func overloadServer(t *testing.T) (*Server, *httptest.Server, *time.Time) {
	t.Helper()
	clock := time.Unix(1_700_000_000, 0)
	s, ts := newTestServer(t, Config{
		Limits:   Limits{RatePerSec: 1, Burst: 1},
		Overload: OverloadConfig{Window: 10 * time.Second, DegradeAfter: 3},
		Now:      func() time.Time { return clock },
	})
	return s, ts, &clock
}

// health fetches /v1/healthz.
func health(t *testing.T, url string) serveapi.HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h serveapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return h
}

// reject provokes n admission rejections (the burst-1 bucket rejects
// every request after the first in the same instant).
func reject(t *testing.T, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		code := post(t, url+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1}, nil)
		if code != http.StatusTooManyRequests && code != http.StatusNotFound && code != http.StatusBadRequest {
			t.Fatalf("rejection probe %d returned %d", i, code)
		}
	}
}

func TestOverloadShedsExpensiveBeforeCheap(t *testing.T) {
	s, ts, clock := overloadServer(t)

	if h := health(t, ts.URL); h.Status != HealthOK || len(h.Shedding) != 0 {
		t.Fatalf("fresh server health = %+v, want ok with no shedding", h)
	}

	// Burn the single token, then provoke 3 rate-limit rejections:
	// enough for degraded, not critical.
	post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1}, nil)
	reject(t, ts.URL, 3)

	h := health(t, ts.URL)
	if h.Status != HealthDegraded {
		t.Fatalf("health after 3 rejections = %q, want degraded", h.Status)
	}
	if want := []string{"certify", "chaos"}; !equalStrings(h.Shedding, want) {
		t.Fatalf("degraded shedding = %v, want %v", h.Shedding, want)
	}

	// Degraded: certify and chaos are refused with a retryable typed
	// 503 before admission — even though the token bucket would also
	// have rejected, the shed answer must not consume tokens or feed
	// the rejection window.
	werr := wireErr(t, ts.URL+"/v1/certify", "", serveapi.CertifyRequest{Format: serveapi.FormatV1},
		http.StatusServiceUnavailable, serveapi.KindOverloaded)
	if werr.RetryAfterMillis <= 0 {
		t.Errorf("shed response carries no RetryAfterMillis: %+v", werr)
	}
	wireErr(t, ts.URL+"/v1/chaos", "", serveapi.ChaosRequest{Format: serveapi.FormatV1},
		http.StatusServiceUnavailable, serveapi.KindOverloaded)
	if got := s.Metrics().Counter(obs.ServeShed); got != 2 {
		t.Errorf("ServeShed = %d, want 2", got)
	}
	if got := s.Metrics().Counter(obs.ServeDegraded); got == 0 {
		t.Error("ServeDegraded never fired on the ok→degraded transition")
	}

	// Cheap endpoints still reach admission in degraded state: eval is
	// answered by the token bucket (429), not the shedder (503).
	wireErr(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1},
		http.StatusTooManyRequests, serveapi.KindRateLimited)

	// Push to critical: synthesize and reload join the shed list, but
	// dispatch and eval are never shed.
	reject(t, ts.URL, 12)
	h = health(t, ts.URL)
	if want := []string{"certify", "chaos", "reload", "synthesize"}; !equalStrings(h.Shedding, want) {
		t.Fatalf("critical shedding = %v, want %v", h.Shedding, want)
	}
	wireErr(t, ts.URL+"/v1/synthesize", "", serveapi.SynthesizeRequest{Format: serveapi.FormatV1},
		http.StatusServiceUnavailable, serveapi.KindOverloaded)
	wireErr(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1},
		http.StatusTooManyRequests, serveapi.KindRateLimited)

	// The window drains with the clock: 11 fake seconds later the
	// server is ok again and certify reaches admission.
	*clock = clock.Add(11 * time.Second)
	if h := health(t, ts.URL); h.Status != HealthOK || len(h.Shedding) != 0 {
		t.Fatalf("health after window drain = %+v, want ok", h)
	}
	// The bucket refilled with the same clock advance, so certify now
	// fails on decoding (bad request), proving it passed the shedder.
	wireErr(t, ts.URL+"/v1/certify", "", serveapi.CertifyRequest{Format: serveapi.FormatV1},
		http.StatusBadRequest, serveapi.KindBadRequest)
}

func TestDrainingTrumpsDegraded(t *testing.T) {
	s, ts, _ := overloadServer(t)
	post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1}, nil)
	reject(t, ts.URL, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if h := health(t, ts.URL); h.Status != HealthDraining {
		t.Fatalf("draining degraded server reports %q, want draining", h.Status)
	}
}

func TestSheddingDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: Limits{RatePerSec: 1, Burst: 1}})
	post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1}, nil)
	for i := 0; i < 50; i++ {
		post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{Format: serveapi.FormatV1}, nil)
	}
	if h := health(t, ts.URL); h.Status != HealthOK {
		t.Fatalf("zero-value Overload config degraded the server: %+v", h)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
