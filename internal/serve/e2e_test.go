package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftsched/internal/apps"
	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

// TestScrapeDuringDrainObservesCounters is the end-to-end drain contract
// of the ftserved composition: while accepted requests are still running
// out a drain, the metrics endpoint keeps answering scrapes, and the
// final scrape — taken after the drain completes but before the metrics
// server shuts down (the ftserved shutdown order) — accounts for every
// accepted request. Nothing accepted is lost, nothing rejected is
// silently dropped.
func TestScrapeDuringDrainObservesCounters(t *testing.T) {
	collector := obs.NewMetrics()
	maddr, mshutdown, err := obs.Serve("127.0.0.1:0", collector)
	if err != nil {
		t.Fatal(err)
	}
	defer mshutdown()

	s, ts := newTestServer(t, Config{Metrics: collector})
	app := apps.Fig8()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 6})

	// A dispatch batch big enough to still be in flight when Drain starts.
	cycles := make([]serveapi.CycleJSON, 0, 2000)
	var rng sim.RNG
	for i := 0; i < 2000; i++ {
		rng.Reseed(sim.ScenarioSeed(11, i))
		var sc sim.Scenario
		if err := sim.SampleRNGInto(&sc, app, &rng, i%(app.K()+1), nil); err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, serveapi.CycleJSONOf(sc))
	}
	req := serveapi.DispatchRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
		Cycles:  cycles,
	}

	var accepted, rejected atomic.Int64
	inFlight := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var resp serveapi.DispatchResponse
		close(inFlight)
		switch code := post(t, ts.URL+"/v1/dispatch", "", req, &resp); code {
		case http.StatusOK:
			accepted.Add(1)
		case http.StatusServiceUnavailable:
			rejected.Add(1)
		default:
			t.Errorf("dispatch during drain: status %d", code)
		}
	}()
	<-inFlight

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(t.Context()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Scrape while the drain is in progress: the endpoint must answer.
	mid := scrape(t, maddr)
	if !strings.Contains(mid, "ftsched_serve_requests_total") {
		t.Fatalf("mid-drain scrape missing serve counters:\n%.300s", mid)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-done
	if got := accepted.Load() + rejected.Load(); got != 1 {
		t.Fatalf("request neither completed nor rejected (accepted %d, rejected %d)",
			accepted.Load(), rejected.Load())
	}

	// The post-drain, pre-shutdown scrape sees the fully drained counters:
	// synthesize + every accepted dispatch, nothing in flight.
	final := scrape(t, maddr)
	want := "ftsched_serve_requests_total " + strconv.FormatInt(1+accepted.Load(), 10)
	if !strings.Contains(final, want) {
		t.Fatalf("final scrape missing %q:\n%s", want, grepLines(final, "ftsched_serve_"))
	}
	if err := mshutdown(); err != nil {
		t.Fatalf("metrics shutdown after drain: %v", err)
	}
}

func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape body: %v", err)
	}
	return string(body)
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
