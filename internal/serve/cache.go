package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"ftsched/internal/appio"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

// compiled is the immutable artifact one cache entry currently serves:
// the synthesised tree and its compiled dispatcher, plus reload
// bookkeeping. Handlers load it once per request through an atomic
// pointer, so a hot reload swaps the whole artifact without a lock on the
// request path — in-flight cycles keep dispatching on the compiled state
// they loaded.
type compiled struct {
	tree *core.Tree
	disp *runtime.Dispatcher
	// generation counts reloads of the entry (0 = first compilation).
	generation int
	// arcsTrimmed is the trim count of the latest reload (0 otherwise).
	arcsTrimmed int
}

// entry is one cached application: the decoded model, its canonical
// encoding (the hash pre-image, kept for reload re-synthesis and
// debugging), the normalised synthesis options, and the atomically
// swappable compiled artifact.
type entry struct {
	key     string
	app     *appEntry
	opts    core.FTQSOptions
	state   atomic.Pointer[compiled]
	lastUse atomic.Int64
	// mu serialises compilation and reload of this entry so concurrent
	// misses for the same key synthesise once.
	mu sync.Mutex
}

type appEntry struct {
	app  *model.Application
	json []byte
}

// Cache is the bounded compiled-tree cache: one entry per
// (application, FTQS options) pair, keyed by the canonical hash, evicted
// least-recently-used beyond Cap. All methods are safe for concurrent
// use.
type Cache struct {
	cap  int
	sink obs.Sink

	mu      sync.Mutex
	entries map[string]*entry
	clock   atomic.Int64
}

// NewCache builds a cache holding at most capacity compiled trees
// (capacity < 1 selects DefaultCacheSize). The sink receives cache hit,
// miss and reload counters and is attached to every compiled dispatcher,
// so dispatch instrumentation flows regardless of which tenant triggered
// the compile.
func NewCache(capacity int, sink obs.Sink) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, sink: sink, entries: make(map[string]*entry)}
}

// DefaultCacheSize bounds the cache when the server config leaves it zero.
const DefaultCacheSize = 64

// Len reports the number of cached trees.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Key derives the cache key of an application/options pair: a sha256 over
// the canonical application encoding (which embeds k and the platform)
// and the normalised synthesis options. Workers and Sink are excluded —
// synthesised trees are bit-identical for every worker count (the FTQS
// determinism contract), so they are execution hints, not identity.
func Key(appJSON []byte, opts core.FTQSOptions) string {
	h := sha256.New()
	h.Write(appJSON)
	fmt.Fprintf(h, "|m=%d|sweep=%d|gain=%g|eval=%d|norevival=%t",
		opts.M, opts.SweepSamples, opts.MinGain, opts.EvalScenarios, opts.DisableRevival)
	return hex.EncodeToString(h.Sum(nil))
}

// normalizeOptions validates wire options and strips the execution hints
// that do not participate in tree identity.
func normalizeOptions(o *serveapi.FTQSOptionsJSON) (core.FTQSOptions, error) {
	var raw core.FTQSOptions
	if o != nil {
		raw = o.Core()
	}
	opts, err := raw.Validate()
	if err != nil {
		return core.FTQSOptions{}, err
	}
	opts.Sink = nil
	return opts, nil
}

// Resolve returns the compiled artifact a TreeRef addresses, compiling on
// a miss when the request embeds the application. The boolean reports a
// cache hit. Misses synthesise under the entry lock (one compile per key,
// however many concurrent requests race for it) and honour ctx.
func (c *Cache) Resolve(ctx context.Context, ref serveapi.TreeRef) (*entry, *compiled, bool, *serveapi.Error) {
	if ref.TreeKey != "" {
		e := c.lookup(ref.TreeKey)
		if e != nil {
			if st := e.state.Load(); st != nil {
				c.count(obs.ServeCacheHits)
				return e, st, true, nil
			}
		}
		if len(ref.App) == 0 {
			c.count(obs.ServeCacheMisses)
			return nil, nil, false, &serveapi.Error{
				Code: http.StatusNotFound, Kind: serveapi.KindUnknownTree,
				Message: fmt.Sprintf("tree %q is not cached and the request embeds no application to recompile it from", ref.TreeKey),
			}
		}
	}
	e, st, hit, werr := c.compile(ctx, ref.App, ref.Options)
	if werr != nil {
		return nil, nil, false, werr
	}
	if ref.TreeKey != "" && e.key != ref.TreeKey {
		return nil, nil, false, &serveapi.Error{
			Code: http.StatusBadRequest, Kind: serveapi.KindBadRequest,
			Message: fmt.Sprintf("tree_key %q does not match the embedded application (derived %q)", ref.TreeKey, e.key),
		}
	}
	return e, st, hit, nil
}

// compile resolves an embedded application to a compiled entry, reusing
// the cache when the derived key is already present.
func (c *Cache) compile(ctx context.Context, appJSON []byte, optsJSON *serveapi.FTQSOptionsJSON) (*entry, *compiled, bool, *serveapi.Error) {
	if len(appJSON) == 0 {
		return nil, nil, false, &serveapi.Error{
			Code: http.StatusBadRequest, Kind: serveapi.KindBadRequest,
			Message: "request embeds no application",
		}
	}
	opts, err := normalizeOptions(optsJSON)
	if err != nil {
		return nil, nil, false, &serveapi.Error{
			Code: http.StatusBadRequest, Kind: serveapi.KindInvalidConfig, Message: err.Error(),
		}
	}
	app, err := appio.DecodeApplication(bytes.NewReader(appJSON))
	if err != nil {
		return nil, nil, false, serveapi.WireError(err)
	}
	// Canonicalise: the key is derived from our own encoding of the
	// decoded application, so formatting and field order in the request
	// cannot split identical applications into distinct entries.
	var canon bytes.Buffer
	if err := appio.EncodeApplication(&canon, app); err != nil {
		return nil, nil, false, serveapi.WireError(err)
	}
	key := Key(canon.Bytes(), opts)

	e := c.intern(key, app, canon.Bytes(), opts)
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.state.Load(); st != nil {
		c.count(obs.ServeCacheHits)
		return e, st, true, nil
	}
	c.count(obs.ServeCacheMisses)
	st, werr := c.synthesize(ctx, e, 0, nil)
	if werr != nil {
		return nil, nil, false, werr
	}
	e.state.Store(st)
	return e, st, false, nil
}

// lookup touches and returns the entry for key, or nil.
func (c *Cache) lookup(key string) *entry {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e != nil {
		e.lastUse.Store(c.clock.Add(1))
	}
	return e
}

// intern returns the entry for key, inserting (and evicting the
// least-recently-used entry beyond capacity) if absent.
func (c *Cache) intern(key string, app *model.Application, appJSON []byte, opts core.FTQSOptions) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.lastUse.Store(c.clock.Add(1))
		return e
	}
	for len(c.entries) >= c.cap {
		var victim *entry
		for _, e := range c.entries {
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victim = e
			}
		}
		delete(c.entries, victim.key)
	}
	e := &entry{key: key, app: &appEntry{app: app, json: append([]byte(nil), appJSON...)}, opts: opts}
	e.lastUse.Store(c.clock.Add(1))
	c.entries[key] = e
	return e
}

// synthesize builds a fresh compiled artifact for an entry: FTQS
// synthesis, optional trimming, dispatcher compilation. Callers hold
// e.mu.
func (c *Cache) synthesize(ctx context.Context, e *entry, generation int, trim *serveapi.TrimJSON) (*compiled, *serveapi.Error) {
	opts := e.opts
	opts.Sink = c.sink
	tree, err := core.FTQSContext(ctx, e.app.app, opts)
	if err != nil {
		return nil, serveapi.WireError(err)
	}
	trimmed := 0
	if trim != nil {
		trimmed, err = sim.TrimContext(ctx, tree, sim.TrimConfig{
			Scenarios: trim.Scenarios, Seed: trim.Seed, Sink: c.sink,
		})
		if err != nil {
			return nil, serveapi.WireError(err)
		}
	}
	disp, err := runtime.NewDispatcher(tree, runtime.WithSink(c.sink))
	if err != nil {
		return nil, serveapi.WireError(err)
	}
	return &compiled{tree: tree, disp: disp, generation: generation, arcsTrimmed: trimmed}, nil
}

// Reload re-synthesises the tree behind key from its stored application
// and options — optionally trimmed — and swaps it in atomically.
// Requests that loaded the old artifact finish on it; the swap is the
// only mutation, so no request ever observes a half-built tree.
func (c *Cache) Reload(ctx context.Context, key string, trim *serveapi.TrimJSON) (*compiled, *serveapi.Error) {
	e := c.lookup(key)
	if e == nil {
		return nil, &serveapi.Error{
			Code: http.StatusNotFound, Kind: serveapi.KindUnknownTree,
			Message: fmt.Sprintf("tree %q is not cached", key),
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	gen := 0
	if old := e.state.Load(); old != nil {
		gen = old.generation + 1
	}
	st, werr := c.synthesize(ctx, e, gen, trim)
	if werr != nil {
		return nil, werr
	}
	e.state.Store(st)
	c.count(obs.ServeReloads)
	return st, nil
}

func (c *Cache) count(ctr obs.Counter) {
	if c.sink != nil {
		c.sink.Add(ctr, 1)
	}
}
