package serve

import (
	"sort"
	"sync"
	"time"

	"ftsched/internal/obs"
)

// OverloadConfig governs graceful degradation: when admission rejections
// (rate-limit 429s and in-flight 503s) pile up inside a sliding window,
// the server starts shedding whole endpoints — most expensive first —
// with typed, retryable 503s, keeping the cheap real-time path alive.
//
// Two tiers, by endpoint cost:
//
//	degraded  (≥ DegradeAfter rejections): shed certify and chaos — the
//	          exhaustive engines, worth minutes of CPU per request
//	critical  (≥ CriticalAfter rejections): also shed synthesize and
//	          reload — tree compilation is seconds of CPU
//
// dispatch and eval are never shed: they are the microsecond-per-cycle
// paths embedded devices depend on, and the whole point of degrading is
// to protect them. Shed responses bypass admission entirely, so they
// never feed the rejection window back into itself — the window drains
// as pressure falls and the server re-enters ok on its own.
//
// The zero value disables shedding (DegradeAfter 0).
type OverloadConfig struct {
	// Window is the sliding window rejections are counted over
	// (default 10s).
	Window time.Duration
	// DegradeAfter is the rejection count within Window at which the
	// server enters degraded state (0 disables shedding entirely).
	DegradeAfter int
	// CriticalAfter is the count at which the server enters critical
	// state (default 4× DegradeAfter).
	CriticalAfter int
	// RetryAfterMillis is the retry hint on shed responses
	// (default 250).
	RetryAfterMillis int64
}

// withDefaults fills unset knobs.
func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.CriticalAfter <= 0 {
		c.CriticalAfter = 4 * c.DegradeAfter
	}
	if c.RetryAfterMillis <= 0 {
		c.RetryAfterMillis = 250
	}
	return c
}

// Health states of the shedding state machine, surfaced on /v1/healthz.
// Both shed tiers report "degraded" on the wire; the Shedding list says
// how deep the degradation goes.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDraining = "draining"
)

// shedClass maps each endpoint to the overload level at which it is
// shed; endpoints absent from the map are never shed.
var shedClass = map[string]int{
	"certify":    1,
	"chaos":      1,
	"synthesize": 2,
	"reload":     2,
}

// shedder tracks admission rejections over a sliding window and decides
// the overload level. It is deliberately simple — a pruned timestamp
// list under a mutex — because it only sees rejections, which are rare
// by construction, never the request hot path.
type shedder struct {
	cfg  OverloadConfig
	sink obs.Sink

	mu        sync.Mutex
	times     []time.Time
	lastLevel int
}

func newShedder(cfg OverloadConfig, sink obs.Sink) *shedder {
	return &shedder{cfg: cfg.withDefaults(), sink: sink}
}

// enabled reports whether shedding is configured at all.
func (sh *shedder) enabled() bool { return sh.cfg.DegradeAfter > 0 }

// prune drops rejections older than the window. Callers hold sh.mu.
func (sh *shedder) prune(now time.Time) {
	cut := now.Add(-sh.cfg.Window)
	i := 0
	for i < len(sh.times) && !sh.times[i].After(cut) {
		i++
	}
	if i > 0 {
		sh.times = append(sh.times[:0], sh.times[i:]...)
	}
}

// record notes one admission rejection.
func (sh *shedder) record(now time.Time) {
	if !sh.enabled() {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.prune(now)
	sh.times = append(sh.times, now)
}

// level returns the current overload level: 0 ok, 1 degraded,
// 2 critical. Entering a degraded or critical state from below emits
// ServeDegraded.
func (sh *shedder) level(now time.Time) int {
	if !sh.enabled() {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.prune(now)
	lvl := 0
	switch n := len(sh.times); {
	case n >= sh.cfg.CriticalAfter:
		lvl = 2
	case n >= sh.cfg.DegradeAfter:
		lvl = 1
	}
	if lvl > sh.lastLevel {
		sh.sink.Add(obs.ServeDegraded, 1)
	}
	sh.lastLevel = lvl
	return lvl
}

// shedding lists the endpoints shed at a level, sorted for stable wire
// output.
func shedding(level int) []string {
	if level <= 0 {
		return nil
	}
	var names []string
	for name, min := range shedClass {
		if level >= min {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// healthStatus names a level (draining is decided by the caller).
func healthStatus(level int) string {
	if level > 0 {
		return HealthDegraded
	}
	return HealthOK
}
