// Package serve is the ftserved service layer: a long-running,
// multi-tenant HTTP/JSON server that owns a bounded cache of compiled
// quasi-static trees and serves synthesis, Monte-Carlo evaluation,
// certification, chaos campaigns and per-cycle dispatch decisions over
// the versioned wire contract of internal/serveapi.
//
// # Request lifecycle
//
// Every request passes the same gate: drain check (a draining server
// rejects new work with a typed 503 KindDraining while accepted requests
// run to completion), tenant resolution (the X-FTSched-Tenant header),
// admission control (token-bucket rate limit → 429 KindRateLimited,
// in-flight cap → 503 KindOverloaded), then the endpoint. Rejections are
// always JSON bodies of serveapi.ErrorResponse — never dropped
// connections — so a fleet of embedded devices can branch on Kind.
//
// # Determinism
//
// The server adds no randomness of its own: evaluation, certification and
// chaos run the same deterministic engines the library exposes, with the
// same seed-derived scenario streams, so a response is bit-identical
// (after JSON round-trip) to the equivalent in-process call, for any
// server worker count and whether the tree came from the cache or was
// compiled for the request.
//
// # Hot reload
//
// POST /v1/reload re-synthesises a cached tree from its stored
// application and swaps the compiled artifact behind an atomic pointer.
// Requests load the artifact once at admission; in-flight cycles
// therefore finish on the tree they started with, and the first request
// admitted after the swap dispatches on the new one.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/appio"
	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

// Config parametrises a Server.
type Config struct {
	// CacheSize bounds the compiled-tree cache (0 = DefaultCacheSize).
	CacheSize int
	// Limits is the default admission policy applied to every tenant.
	Limits Limits
	// Metrics is the process-wide collector (nil = a fresh one). The
	// serve counters land both here and on the requesting tenant's own
	// collector.
	Metrics *obs.Metrics
	// MaxWorkers clamps per-request worker hints (0 = no clamp). On a
	// shared server this keeps one request from oversubscribing the host.
	MaxWorkers int
	// Overload governs graceful degradation under sustained admission
	// pressure (zero value = shedding disabled).
	Overload OverloadConfig
	// Now overrides the admission clock (tests); nil = time.Now.
	Now func() time.Time
}

// Server implements the ftsched-api/v1 service.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *Cache
	tenants *tenants
	shed    *shedder
	now     func() time.Time

	draining atomic.Bool
	wg       sync.WaitGroup
	mux      *http.ServeMux
}

// New builds a Server.
func New(cfg Config) *Server {
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		cache:   NewCache(cfg.CacheSize, m),
		tenants: newTenants(cfg.Limits),
		shed:    newShedder(cfg.Overload, m),
		now:     now,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.wrap("synthesize", s.synthesize))
	mux.HandleFunc("POST /v1/eval", s.wrap("eval", s.eval))
	mux.HandleFunc("POST /v1/certify", s.wrap("certify", s.certify))
	mux.HandleFunc("POST /v1/chaos", s.wrap("chaos", s.chaos))
	mux.HandleFunc("POST /v1/dispatch", s.wrap("dispatch", s.dispatch))
	mux.HandleFunc("POST /v1/reload", s.wrap("reload", s.reload))
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("/v1/tenants/{tenant}/", s.tenantMetrics)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the process-wide collector (for obs.Serve).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Cache returns the compiled-tree cache (tests and the health endpoint).
func (s *Server) Cache() *Cache { return s.cache }

// Drain stops admitting new work and waits for every accepted request to
// complete (or ctx to expire). After Drain returns nil, zero accepted
// requests are still executing — the graceful-shutdown contract ftserved
// builds on.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// endpoint is one wire operation: decode and execute, returning the
// response value or a typed error.
type endpoint func(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error)

// wrap is the request gate shared by every POST endpoint: drain check,
// overload shedding, admission control, bounded body read, execution,
// instrumentation.
func (s *Server) wrap(name string, fn endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Admission order matters for the drain contract: the WaitGroup
		// registration happens before the drain re-check, so Drain's
		// Wait can never miss a request that saw draining=false.
		s.wg.Add(1)
		defer s.wg.Done()
		tenant := s.tenants.get(r.Header.Get(serveapi.TenantHeader))
		if s.draining.Load() {
			writeError(w, &serveapi.Error{
				Code: http.StatusServiceUnavailable, Kind: serveapi.KindDraining,
				Message: "server is draining", Tenant: tenant.name,
			})
			return
		}
		// Shedding sits before admission so shed responses neither
		// consume tenant tokens nor count as rejections — the window
		// only measures genuine admission pressure, and therefore
		// drains (and the server recovers) once clients back off.
		if min, shed := shedClass[name]; shed && s.shed.level(s.now()) >= min {
			s.metrics.Add(obs.ServeShed, 1)
			writeError(w, &serveapi.Error{
				Code: http.StatusServiceUnavailable, Kind: serveapi.KindOverloaded,
				Message:          "shedding " + name + " under overload",
				Tenant:           tenant.name,
				RetryAfterMillis: s.shed.cfg.RetryAfterMillis,
			})
			return
		}
		done, werr := tenant.admit(s.now())
		if werr != nil {
			s.shed.record(s.now())
			writeError(w, werr)
			return
		}
		defer done()

		ctx := r.Context()
		if ms := r.Header.Get(serveapi.DeadlineHeader); ms != "" {
			// The caller shipped its remaining budget: cancel engine
			// work server-side once the client has given up on it.
			if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}

		start := s.now()
		body, err := io.ReadAll(io.LimitReader(r.Body, serveapi.MaxRequestBytes+1))
		if err != nil {
			writeError(w, &serveapi.Error{
				Code: http.StatusBadRequest, Kind: serveapi.KindBadRequest,
				Message: "reading request body: " + err.Error(), Tenant: tenant.name,
			})
			return
		}
		if len(body) > serveapi.MaxRequestBytes {
			writeError(w, &serveapi.Error{
				Code: http.StatusRequestEntityTooLarge, Kind: serveapi.KindBadRequest,
				Message: fmt.Sprintf("request body exceeds %d bytes", serveapi.MaxRequestBytes),
				Tenant:  tenant.name,
			})
			return
		}

		resp, werr := fn(r.Context(), tenant, body)
		nanos := s.now().Sub(start).Nanoseconds()
		for _, sink := range []obs.Sink{s.metrics, tenant.metrics} {
			sink.Add(obs.ServeRequests, 1)
			sink.Observe(obs.ServeRequestNanos, nanos)
		}
		if werr != nil {
			if werr.Tenant == "" {
				werr.Tenant = tenant.name
			}
			writeError(w, werr)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func writeError(w http.ResponseWriter, werr *serveapi.Error) {
	writeJSON(w, werr.Code, serveapi.ErrorResponse{Format: serveapi.FormatV1, Err: *werr})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// clampWorkers applies the server-wide worker bound to a request hint.
// Results are worker-invariant across the whole engine stack, so the
// clamp changes latency, never bytes.
func (s *Server) clampWorkers(n int) int {
	if s.cfg.MaxWorkers > 0 && (n == 0 || n > s.cfg.MaxWorkers) {
		return s.cfg.MaxWorkers
	}
	return n
}

func (s *Server) synthesize(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, werr := serveapi.DecodeSynthesizeRequest(body)
	if werr != nil {
		return nil, werr
	}
	start := s.now()
	e, st, hit, werr := s.cache.Resolve(ctx, serveapi.TreeRef{App: req.App, Options: &req.Options})
	if werr != nil {
		return nil, werr
	}
	resp := &serveapi.SynthesizeResponse{
		Format:     serveapi.FormatV1,
		TreeKey:    e.key,
		CacheHit:   hit,
		Nodes:      len(st.tree.Nodes),
		Arcs:       len(st.tree.Arcs),
		Generation: st.generation,
	}
	if !hit {
		resp.CompileMillis = float64(s.now().Sub(start).Nanoseconds()) / 1e6
	}
	if req.IncludeTree {
		var buf strings.Builder
		if err := appio.EncodeTreeCompact(&buf, st.tree); err != nil {
			return nil, serveapi.WireError(err)
		}
		resp.Tree = json.RawMessage(buf.String())
	}
	return resp, nil
}

func (s *Server) eval(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, cfg, werr := serveapi.DecodeEvalRequest(body)
	if werr != nil {
		return nil, werr
	}
	e, st, hit, werr := s.cache.Resolve(ctx, req.TreeRef)
	if werr != nil {
		return nil, werr
	}
	cfg.Workers = s.clampWorkers(cfg.Workers)
	cfg.Dispatcher = st.disp
	cfg.Sink = t.metrics
	stats, err := sim.MonteCarloContext(ctx, st.tree, cfg)
	if err != nil {
		return nil, serveapi.WireError(err)
	}
	return &serveapi.EvalResponse{
		Format: serveapi.FormatV1, TreeKey: e.key, CacheHit: hit,
		Stats: serveapi.StatsJSON(stats),
	}, nil
}

func (s *Server) certify(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, cfg, werr := serveapi.DecodeCertifyRequest(body)
	if werr != nil {
		return nil, werr
	}
	e, st, hit, werr := s.cache.Resolve(ctx, req.TreeRef)
	if werr != nil {
		return nil, werr
	}
	cfg.Workers = s.clampWorkers(cfg.Workers)
	cfg.Sink = t.metrics
	report, err := certify.CertifyContext(ctx, st.tree, cfg)
	resp := &serveapi.CertifyResponse{
		Format: serveapi.FormatV1, TreeKey: e.key, CacheHit: hit,
		Certified: err == nil,
		Report:    serveapi.ReportJSON(report),
	}
	if err != nil {
		ceErr, ok := asCounterexample(err)
		if !ok {
			return nil, serveapi.WireError(err)
		}
		ce := ceErr.Counterexample
		resp.Counterexample = appio.NewCounterexample(st.tree.App, ce.Scenario, ce.Proc, ce.Completion, ce.Path)
	}
	return resp, nil
}

func asCounterexample(err error) (*certify.CounterexampleError, bool) {
	var ceErr *certify.CounterexampleError
	ok := errors.As(err, &ceErr)
	return ceErr, ok
}

func (s *Server) chaos(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, cfg, werr := serveapi.DecodeChaosRequest(body)
	if werr != nil {
		return nil, werr
	}
	e, st, hit, werr := s.cache.Resolve(ctx, req.TreeRef)
	if werr != nil {
		return nil, werr
	}
	cfg.Workers = s.clampWorkers(cfg.Workers)
	cfg.Sink = t.metrics
	report, err := chaos.RunContext(ctx, st.tree, cfg)
	if err != nil {
		return nil, serveapi.WireError(err)
	}
	if !req.IncludeRecords {
		report.Records = nil
	}
	return &serveapi.ChaosResponse{
		Format: serveapi.FormatV1, TreeKey: e.key, CacheHit: hit, Report: report,
	}, nil
}

func (s *Server) dispatch(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, werr := serveapi.DecodeDispatchRequest(body)
	if werr != nil {
		return nil, werr
	}
	e, st, hit, werr := s.cache.Resolve(ctx, req.TreeRef)
	if werr != nil {
		return nil, werr
	}
	app := st.tree.App

	// The served tree's guarantees only cover in-model scenarios; every
	// cycle is validated against the application before any dispatch, so
	// a batch is all-or-nothing and a rejection names the cycle.
	scenarios := make([]runtime.Scenario, len(req.Cycles))
	for i, c := range req.Cycles {
		scenarios[i] = c.Scenario()
		if err := scenarios[i].Validate(app); err != nil {
			return nil, &serveapi.Error{
				Code: http.StatusBadRequest, Kind: serveapi.KindBadRequest,
				Message: fmt.Sprintf("cycle %d is out of model: %v", i, err),
			}
		}
	}

	// Batches shard over the same block driver Monte-Carlo evaluation
	// uses: workers claim whole 256-cycle blocks with reused scratch,
	// and results land positionally, so the response is independent of
	// the worker count.
	results := make([]serveapi.CycleResultJSON, len(scenarios))
	workers := s.clampWorkers(req.Workers)
	err := sim.RunBlocks(ctx, len(scenarios), workers, func(int) func(block, lo, hi int) error {
		var res runtime.Result
		return func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := st.disp.RunInto(&res, scenarios[i]); err != nil {
					return fmt.Errorf("cycle %d: %w", i, err)
				}
				results[i] = serveapi.ResultJSON(&res)
			}
			return nil
		}
	})
	if err != nil {
		return nil, serveapi.WireError(err)
	}
	for _, sink := range []obs.Sink{s.metrics, t.metrics} {
		sink.Observe(obs.ServeBatchCycles, int64(len(scenarios)))
	}
	return &serveapi.DispatchResponse{
		Format: serveapi.FormatV1, TreeKey: e.key, CacheHit: hit, Results: results,
	}, nil
}

func (s *Server) reload(ctx context.Context, t *Tenant, body []byte) (any, *serveapi.Error) {
	req, werr := serveapi.DecodeReloadRequest(body)
	if werr != nil {
		return nil, werr
	}
	st, werr := s.cache.Reload(ctx, req.TreeKey, req.Trim)
	if werr != nil {
		return nil, werr
	}
	return &serveapi.ReloadResponse{
		Format:      serveapi.FormatV1,
		TreeKey:     req.TreeKey,
		Nodes:       len(st.tree.Nodes),
		Arcs:        len(st.tree.Arcs),
		ArcsTrimmed: st.arcsTrimmed,
		Generation:  st.generation,
	}, nil
}

// healthz is served outside the admission gate: load balancers and drain
// watchers must see the server even when every tenant is saturated. The
// Status field walks the ok → degraded → draining state machine:
// degraded while the overload shedder is active (Shedding lists the
// endpoints currently refused), draining once Drain has begun
// (terminal — a draining server never reports degraded recovery).
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	level := s.shed.level(s.now())
	status := healthStatus(level)
	if s.draining.Load() {
		status = HealthDraining
	}
	writeJSON(w, http.StatusOK, serveapi.HealthResponse{
		Format:   serveapi.FormatV1,
		Status:   status,
		Draining: s.draining.Load(),
		Shedding: shedding(level),
		Trees:    s.cache.Len(),
		Tenants:  s.tenants.count(),
		InFlight: s.tenants.totalInFlight(),
	})
}

// tenantMetrics serves one tenant's obs.Handler (Prometheus /metrics,
// expvar, pprof) under /v1/tenants/{tenant}/. Unknown tenants 404 with a
// typed body; tenants exist once they have sent a request.
func (s *Server) tenantMetrics(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t := s.tenants.lookup(name)
	if t == nil {
		writeError(w, &serveapi.Error{
			Code: http.StatusNotFound, Kind: serveapi.KindBadRequest,
			Message: fmt.Sprintf("unknown tenant %q", name), Tenant: name,
		})
		return
	}
	prefix := "/v1/tenants/" + name
	http.StripPrefix(prefix, obs.Handler(t.metrics)).ServeHTTP(w, r)
}
